// Rediscovering CVE-2023-30456 (paper Section 5.5.1), step by step.
//
// The bug: KVM's nested VMX code on Intel misses the consistency check
// that "IA-32e mode guest" requires CR4.PAE=1. Real CPUs silently tolerate
// the combination, so a malicious L1 can enter L2 in long mode with
// CR4.PAE=0 — and KVM's shadow-paging code, trusting CR4.PAE literally,
// indexes its page-walk array out of bounds.
//
// Trigger requirements (all reproduced here):
//   1. kvm-intel loaded with nested=1 but ept=0 (vCPU configurator space),
//   2. VMCS12 with the IA-32e entry control set and guest CR4.PAE clear
//      (exactly one bit across the valid/invalid boundary — VM state
//      validator space),
//   3. an otherwise fully valid VMCS12 so the entry reaches the MMU load.
//
//   $ ./build/examples/cve_2023_30456
#include <cstdio>

#include "src/core/necofuzz.h"

using namespace neco;

int main() {
  std::printf("== Rediscovering CVE-2023-30456 in sim-KVM ==\n\n");

  // Step 1: show the hardware quirk the bug depends on.
  {
    VmxCpu cpu;
    Vmcs state = MakeDefaultVmcs();
    state.Write(VmcsField::kGuestCr4, Cr4::kVmxe);  // PAE cleared.
    uint32_t entry =
        static_cast<uint32_t>(state.Read(VmcsField::kVmEntryControls));
    state.Write(VmcsField::kVmEntryControls, entry & ~EntryCtl::kLoadEfer);

    VmcsValidator validator(HostVmxCapabilities());
    const ViolationList predicted = validator.Validate(state);
    const EntryOutcome hw = cpu.TryEntry(state, /*launch=*/true);
    std::printf("spec model says:  %s\n",
                predicted.empty()
                    ? "valid"
                    : std::string(CheckIdName(predicted.front())).c_str());
    std::printf("real CPU says:    %s\n",
                hw.entered() ? "VM entry succeeds (quirk!)" : "rejected");
    std::printf("-> the manual documents the constraint; silicon ignores "
                "it. Hypervisors must not trust either blindly.\n\n");
  }

  // Step 2: fuzz sim-KVM; the configurator must find ept=0 and the
  // validator must produce the one-bit-across-the-boundary state. The
  // engine builds the target from its registry name.
  CampaignOptions options;
  options.arch = Arch::kIntel;
  options.iterations = 30000;
  options.samples = 6;
  options.seed = 2023;
  std::printf("fuzzing sim-KVM (Intel, %llu iterations)...\n",
              static_cast<unsigned long long>(options.iterations));
  const CampaignResult result = CampaignEngine("kvm", options).Run().merged;
  std::printf("coverage: %.1f%%, %zu unique findings\n\n",
              result.final_percent, result.findings.size());

  bool found = false;
  for (const AnomalyReport& report : result.findings) {
    std::printf("[%s] %s\n    %s\n",
                std::string(AnomalyKindName(report.kind)).c_str(),
                report.bug_id.c_str(), report.message.c_str());
    found |= report.bug_id == "kvm-nvmx-cr4pae-oob";
  }
  std::printf("\nCVE-2023-30456 %s\n",
              found ? "REDISCOVERED (fixed upstream by commit 112e660: add "
                      "the missing CR0/CR4 consistency checks)"
                    : "not hit in this budget — raise iterations");

  // Step 3: the minimized reproducer, as a developer report would show it.
  std::printf("\nminimized reproducer:\n");
  std::printf("  modprobe kvm-intel nested=1 ept=0\n");
  std::printf("  VMCS12: VM_ENTRY_CONTROLS |= IA32E_MODE_GUEST;\n");
  std::printf("          GUEST_CR4 &= ~CR4_PAE;  GUEST_CR0 |= CR0_PG;\n");
  std::printf("  vmlaunch  -> UBSAN array-index-out-of-bounds in the "
              "guest page walk\n");
  return found ? 0 : 1;
}
