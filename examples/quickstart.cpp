// Quickstart: drive a CampaignEngine session against the simulated KVM's
// nested-virtualization code for a few thousand iterations on both vendor
// architectures, streaming progress through a CampaignObserver and
// printing what the campaign found.
//
//   $ ./build/examples/quickstart
//
// Pass --state-dir=<dir> to journal each campaign's state (one
// subdirectory per architecture). Kill the process at any point and run
// the same command again: the campaign resumes from the last committed
// epoch, prints only the events past the resume point, and lands on the
// identical result — an uninterrupted run and an interrupted-plus-resumed
// run are indistinguishable.
//
//   $ ./build/examples/quickstart --state-dir=/tmp/necofuzz-state
//
// Add --snapshot-every=<N> to materialize a campaign snapshot every N
// committed epochs. Resume then costs O(tail): the journal loads the
// newest snapshot and replays only the epochs past its horizon instead
// of the whole history, and everything below the previous horizon is
// compacted away. The result is still bit-identical.
//
//   $ ./build/examples/quickstart --state-dir=/tmp/necofuzz-state \
//         --snapshot-every=4
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/necofuzz.h"

namespace {

// Streams the campaign while it runs: one line per merged coverage sample,
// one per new deduplicated finding. Delivery is deterministic and
// merge-ordered, so this output is identical across identical runs.
class ProgressPrinter : public neco::CampaignObserver {
 public:
  void OnSample(const neco::SampleEvent& event) override {
    std::printf("  sample %2zu  %6llu iters  %5.1f%% (%zu lines)\n",
                event.epoch,
                static_cast<unsigned long long>(event.iteration),
                event.percent, event.covered_points);
  }
  void OnFinding(const neco::FindingEvent& event) override {
    std::printf("  FINDING [%s] %s\n      %s\n",
                std::string(neco::AnomalyKindName(event.report.kind)).c_str(),
                event.report.bug_id.c_str(), event.report.message.c_str());
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string state_dir;
  size_t snapshot_every = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--state-dir=", 12) == 0) {
      state_dir = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--snapshot-every=", 17) == 0) {
      snapshot_every = static_cast<size_t>(std::strtoull(argv[i] + 17,
                                                         nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--state-dir=<dir>] [--snapshot-every=<N>]\n",
                   argv[0]);
      return 2;
    }
  }

  neco::SimKvm kvm;

  for (const neco::Arch arch : {neco::Arch::kIntel, neco::Arch::kAmd}) {
    const std::string arch_name(neco::ArchName(arch));
    neco::CampaignOptions options;
    options.arch = arch;
    options.iterations = 8000;
    options.samples = 8;
    options.seed = 42;
    if (!state_dir.empty()) {
      // One journal per campaign: the two architectures are different
      // campaigns (different fingerprints), so each gets its own subdir.
      options.state_dir = state_dir + "/" + arch_name;
      // Snapshot cadence only matters when journaling: it bounds how many
      // epochs a resume has to replay (and how many journal files survive
      // compaction). It is not part of the campaign fingerprint, so the
      // cadence may change between incarnations of the same campaign.
      options.snapshot_every_epochs = snapshot_every;
    }

    std::printf("=== NecoFuzz vs sim-KVM (%s) ===\n", arch_name.c_str());

    // A borrowed-target session: the engine runs one inline shard against
    // `kvm`. Pass a registry name ("kvm") instead to let the engine build
    // private instances and shard across options.workers threads.
    neco::CampaignEngine engine(kvm, options);
    ProgressPrinter progress;
    engine.AddObserver(&progress);
    const neco::EngineResult result = engine.Run();

    std::printf("coverage of %s: %.1f%% (%zu / %zu lines)\n",
                std::string(kvm.nested_coverage(arch).name()).c_str(),
                result.merged.final_percent, result.merged.covered_points,
                result.merged.total_points);
    std::printf("corpus: %llu entries, %llu bitmap edges, %llu restarts\n",
                static_cast<unsigned long long>(
                    result.merged.fuzzer_stats.queue_size),
                static_cast<unsigned long long>(
                    result.merged.fuzzer_stats.bitmap_edges),
                static_cast<unsigned long long>(
                    result.merged.watchdog_restarts));
    if (!state_dir.empty()) {
      std::printf(
          "journal: %llu epochs replayed, %llu committed this run, "
          "%llu crash artifacts, %llu bytes fsync'd\n",
          static_cast<unsigned long long>(result.journal.replayed_epochs),
          static_cast<unsigned long long>(result.journal.commits),
          static_cast<unsigned long long>(result.journal.crash_artifacts),
          static_cast<unsigned long long>(result.journal.bytes_written));
      if (snapshot_every != 0) {
        std::printf(
            "snapshots: horizon at epoch %llu, %llu written this run, "
            "%llu journal files compacted\n",
            static_cast<unsigned long long>(result.journal.snapshot_epochs),
            static_cast<unsigned long long>(result.journal.snapshots),
            static_cast<unsigned long long>(result.journal.compacted_files));
      }
    }
    if (result.merged.findings.empty()) {
      std::printf("no anomalies detected\n");
    }
    std::printf("\n");
  }
  return 0;
}
