// Quickstart: fuzz the simulated KVM's nested-virtualization code for a
// few thousand iterations on both vendor architectures and print what the
// campaign found.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "src/core/necofuzz.h"

int main() {
  neco::SimKvm kvm;

  for (const neco::Arch arch : {neco::Arch::kIntel, neco::Arch::kAmd}) {
    neco::CampaignOptions options;
    options.arch = arch;
    options.iterations = 8000;
    options.samples = 8;
    options.seed = 42;

    std::printf("=== NecoFuzz vs sim-KVM (%s) ===\n",
                std::string(neco::ArchName(arch)).c_str());
    const neco::CampaignResult result = neco::RunCampaign(kvm, options);

    std::printf("coverage of %s: %.1f%% (%zu / %zu lines)\n",
                std::string(kvm.nested_coverage(arch).name()).c_str(),
                result.final_percent, result.covered_points,
                result.total_points);
    std::printf("corpus: %llu entries, %llu bitmap edges, %llu restarts\n",
                static_cast<unsigned long long>(result.fuzzer_stats.queue_size),
                static_cast<unsigned long long>(
                    result.fuzzer_stats.bitmap_edges),
                static_cast<unsigned long long>(result.watchdog_restarts));
    std::printf("coverage over time:");
    for (const auto& sample : result.series) {
      std::printf(" %.0f%%", sample.percent);
    }
    std::printf("\n");
    if (result.findings.empty()) {
      std::printf("no anomalies detected\n");
    }
    for (const auto& finding : result.findings) {
      std::printf("FINDING [%s] %s\n    %s\n",
                  std::string(neco::AnomalyKindName(finding.kind)).c_str(),
                  finding.bug_id.c_str(), finding.message.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
