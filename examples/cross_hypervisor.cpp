// Hypervisor independence (paper RQ3): the identical NecoFuzz stack —
// fuzzer, VM generator, agent — retargeted at three different L0
// hypervisors by swapping only the registry name handed to CampaignEngine
// (the target's config adapter differs underneath). Prints the registered
// target list and a per-target summary of coverage and findings.
//
//   $ ./build/examples/cross_hypervisor
#include <cstdio>
#include <string>

#include "src/core/necofuzz.h"

using namespace neco;

namespace {

void FuzzTarget(const char* name, Arch arch, uint64_t iterations) {
  CampaignOptions options;
  options.arch = arch;
  options.iterations = iterations;
  options.samples = 4;
  options.seed = 7;
  CampaignEngine engine(name, options);
  const CampaignResult result = engine.Run().merged;
  std::printf("  %-12s %-6s  cov %5.1f%% (%3zu/%3zu lines)  restarts %-4llu",
              name, std::string(ArchName(arch)).c_str(),
              result.final_percent, result.covered_points,
              result.total_points,
              static_cast<unsigned long long>(result.watchdog_restarts));
  if (result.findings.empty()) {
    std::printf("  no findings\n");
    return;
  }
  std::printf("\n");
  for (const AnomalyReport& report : result.findings) {
    std::printf("      -> [%s] %s\n",
                std::string(AnomalyKindName(report.kind)).c_str(),
                report.bug_id.c_str());
  }
}

}  // namespace

int main() {
  constexpr uint64_t kIterations = 15000;
  std::printf("== One fuzzing stack, three hypervisors ==\n");
  std::printf("(the adapter translates the vCPU configuration into each "
              "hypervisor's own interface)\n\n");

  // The engine resolves targets through the hypervisor registry;
  // out-of-tree simulators join via RegisterHypervisor(name, factory).
  std::printf("registered targets:");
  for (const std::string& name : ListHypervisors()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  // Show the adapter translations for the same configuration.
  const VcpuConfig config = VcpuConfig::Default(Arch::kIntel);
  for (const char* name : {"kvm", "xen", "virtualbox"}) {
    const auto adapter = MakeAdapterFor(name);
    std::printf("%s:\n  params: ", name);
    for (const std::string& p : adapter->ModuleParams(config)) {
      std::printf("%s ", p.c_str());
    }
    std::printf("\n  vm:     ");
    for (const std::string& a : adapter->VmCommandLine(config)) {
      std::printf("%s ", a.c_str());
    }
    std::printf("\n");
  }
  std::printf("\ncampaigns (%llu iterations each):\n",
              static_cast<unsigned long long>(kIterations));

  FuzzTarget("kvm", Arch::kIntel, kIterations);
  FuzzTarget("kvm", Arch::kAmd, kIterations);
  FuzzTarget("xen", Arch::kIntel, kIterations);
  FuzzTarget("xen", Arch::kAmd, kIterations);
  FuzzTarget("virtualbox", Arch::kIntel, kIterations);

  std::printf("\nthe same boundary-state generator reached "
              "nested-virtualization code in every target; only the thin "
              "adapter differs per hypervisor.\n");
  return 0;
}
