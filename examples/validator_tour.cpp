// A tour of the VM state validator: raw bytes -> specification rounding ->
// boundary mutation, and the hardware-as-oracle loop that corrects the
// validator's own model at runtime (paper Sections 3.4 and 4.3).
//
//   $ ./build/examples/validator_tour
#include <cstdio>

#include "src/core/necofuzz.h"

using namespace neco;

namespace {

void Show(const char* label, const Vmcs& v) {
  std::printf("%-22s cr0=%012llx cr4=%08llx efer=%06llx rflags=%08llx "
              "activity=%llu cs.ar=%05llx\n",
              label,
              static_cast<unsigned long long>(v.Read(VmcsField::kGuestCr0)),
              static_cast<unsigned long long>(v.Read(VmcsField::kGuestCr4)),
              static_cast<unsigned long long>(
                  v.Read(VmcsField::kGuestIa32Efer)),
              static_cast<unsigned long long>(
                  v.Read(VmcsField::kGuestRflags)),
              static_cast<unsigned long long>(
                  v.Read(VmcsField::kGuestActivityState)),
              static_cast<unsigned long long>(
                  v.Read(VmcsField::kGuestCsArBytes)));
}

}  // namespace

int main() {
  VmcsValidator validator(HostVmxCapabilities());
  VmxCpu cpu;
  Rng rng(0x70e2);

  std::printf("== 1. Rounding: raw bytes to a specification-valid VMCS ==\n");
  Vmcs raw;
  {
    std::vector<uint8_t> image(Vmcs::BitImageSize());
    for (auto& b : image) {
      b = static_cast<uint8_t>(rng.Next());
    }
    raw.FromBitImage(image);
  }
  Show("raw (random)", raw);
  std::printf("  spec violations: %zu\n", validator.Validate(raw).size());

  const Vmcs rounded = validator.RoundToValid(raw);
  Show("rounded", rounded);
  std::printf("  spec violations: %zu\n", validator.Validate(rounded).size());
  {
    Vmcs probe = rounded;
    probe.set_launch_state(Vmcs::LaunchState::kClear);
    std::printf("  hardware entry:  %s\n",
                cpu.TryEntry(probe, true).entered() ? "SUCCEEDS" : "fails");
  }

  std::printf("\n== 2. Boundary mutation: step back across the edge ==\n");
  Vmcs mutated = rounded;
  FuzzInput directive_bytes = MakeRandomInput(rng);
  ByteReader directives(directive_bytes);
  validator.BoundaryMutate(mutated, directives);
  Show("boundary-mutated", mutated);
  const ViolationList violations = validator.Validate(mutated);
  if (violations.empty()) {
    std::printf("  still valid (the flipped bits were don't-care) — also a "
                "useful probe\n");
  } else {
    std::printf("  now violates: %s — exactly one subtle step past valid\n",
                std::string(CheckIdName(violations.front())).c_str());
  }

  std::printf("\n== 3. Hardware as oracle: the validator corrects itself ==\n");
  VmxHardwareOracle oracle(cpu, validator);
  // Feed the oracle the documented-but-unenforced corner directly...
  {
    Vmcs corner = MakeDefaultVmcs();
    corner.Write(VmcsField::kGuestCr4, Cr4::kVmxe);  // PAE off, IA-32e on.
    const uint32_t entry =
        static_cast<uint32_t>(corner.Read(VmcsField::kVmEntryControls));
    corner.Write(VmcsField::kVmEntryControls, entry & ~EntryCtl::kLoadEfer);
    std::printf("  CVE-shaped corner: prediction %s hardware on first "
                "contact\n",
                oracle.VerifyOnce(corner) ? "matches" : "MISMATCHES");
    std::printf("  ... and %s after learning\n",
                oracle.VerifyOnce(corner) ? "matches" : "MISMATCHES");
  }
  // ...then calibrate over random boundary states until quiet.
  Rng calib_rng(1);
  const uint64_t first_pass = oracle.Calibrate(calib_rng, 300);
  const uint64_t second_pass = oracle.Calibrate(calib_rng, 300);
  std::printf("  calibration mismatches: first pass %llu, second pass %llu\n",
              static_cast<unsigned long long>(first_pass),
              static_cast<unsigned long long>(second_pass));
  std::printf("  learned quirks: %zu suppressed checks, %zu silent fixups\n",
              validator.quirks().suppressed_checks.size(),
              validator.quirks().learned_fixups.size());
  for (CheckId id : validator.quirks().suppressed_checks) {
    std::printf("    - silicon does not enforce: %s\n",
                std::string(CheckIdName(id)).c_str());
  }
  std::printf("\nthe guest_cr4_pae_for_ia32e quirk learned above is "
              "precisely the gap behind CVE-2023-30456.\n");
  return 0;
}
