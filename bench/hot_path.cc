// Data-plane micro-benchmark: the per-execution coverage hot path and the
// shard-delta wire codec, the two loops every fuzzing iteration and every
// epoch boundary pay for.
//
// Three sections, all on fixed seeds (bit-reproducible inputs):
//
//  * classify+merge ns/exec at several trace densities — the SparseTrace
//    path Fuzzer::Run uses (touched words only) against the scalar
//    full-bitmap path the seed shipped (a 64 KiB clear + byte loop per
//    execution). The ratio is the headline number of the burn-down.
//  * delta extract/apply — CoverageBitmap::ExtractDeltaSince (word skip
//    vs scalar) and CoverageUnit::ExtractDeltaSince in the saturated
//    steady state, where nearly every scan finds nothing new.
//  * ShardDelta encode/decode MB/s — the exact-size two-pass encoder and
//    the strict decoder, on a representative epoch record; the zero-copy
//    (corpus-referencing) Encode overload is measured separately.
//  * exec_core execs/sec — the VM-lifecycle setup path per execution:
//    configurator Generate + cold StartVm against a configurator-memo
//    probe + snapshot RestoreVm, per sim target (Intel configs), plus the
//    cached-path rate at several config-diversity levels through a
//    capacity-16 LRU (d=64 deliberately thrashes it).
//
// `--smoke` shrinks budgets for CI; `--json=PATH` writes the
// schema_version-1 result file tools/check_bench_json.py diffs against
// the checked-in BENCH_hotpath.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/config/configurator.h"
#include "src/core/snapshot_cache.h"
#include "src/core/wire.h"
#include "src/fuzz/bitmap.h"
#include "src/hv/coverage.h"
#include "src/hv/factory.h"
#include "src/support/rng.h"

namespace neco {
namespace {

using Clock = std::chrono::steady_clock;

// Keeps results observable so the optimizer cannot delete a timed loop.
volatile uint64_t g_sink = 0;

template <typename Fn>
double TimeSeconds(Fn&& fn) {
  const auto start = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Pre-generated per-exec traces: `variants` distinct edge-id lists of
// `density` hits each, cycled through by the timed loops so consecutive
// executions differ (as they do in a real campaign) without paying RNG
// cost inside the measurement.
std::vector<std::vector<uint32_t>> MakeTraces(size_t density,
                                              size_t variants,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> traces(variants);
  for (auto& trace : traces) {
    trace.reserve(density);
    for (size_t i = 0; i < density; ++i) {
      trace.push_back(static_cast<uint32_t>(rng.Next()));
    }
  }
  return traces;
}

// The current per-exec path: sparse accumulate, classify and merge only
// the touched words, O(trace) clear.
double SparseNsPerExec(const std::vector<std::vector<uint32_t>>& traces,
                       uint64_t execs) {
  CoverageBitmap virgin;
  SparseTrace trace;
  uint64_t sink = 0;
  const double secs = TimeSeconds([&] {
    for (uint64_t i = 0; i < execs; ++i) {
      const std::vector<uint32_t>& edges = traces[i % traces.size()];
      trace.Clear();
      for (const uint32_t edge : edges) {
        trace.Add(edge);
      }
      trace.ClassifyCounts();
      sink += static_cast<uint64_t>(trace.MergeInto(virgin));
    }
  });
  g_sink = g_sink + sink;
  return secs * 1e9 / static_cast<double>(execs);
}

// The seed's per-exec path: a full 64 KiB bitmap cleared every execution,
// then byte-at-a-time classify and merge over all 65,536 cells.
double ScalarNsPerExec(const std::vector<std::vector<uint32_t>>& traces,
                       uint64_t execs) {
  CoverageBitmap virgin;
  CoverageBitmap trace;
  uint64_t sink = 0;
  const double secs = TimeSeconds([&] {
    for (uint64_t i = 0; i < execs; ++i) {
      const std::vector<uint32_t>& edges = traces[i % traces.size()];
      trace.Clear();
      for (const uint32_t edge : edges) {
        trace.Add(edge);
      }
      trace.ClassifyCountsScalar();
      sink += static_cast<uint64_t>(trace.MergeIntoScalar(virgin));
    }
  });
  g_sink = g_sink + sink;
  return secs * 1e9 / static_cast<double>(execs);
}

void BenchClassifyMerge(BenchJson& json, bool smoke) {
  const uint64_t sparse_execs = smoke ? 20000 : 200000;
  const uint64_t scalar_execs = smoke ? 1000 : 10000;
  std::printf("\n[per-exec classify+merge, ns/exec]\n");
  std::printf("  %8s %12s %12s %9s\n", "density", "sparse_ns", "scalar_ns",
              "speedup");
  for (const size_t density : {16, 64, 256, 1024}) {
    const auto traces = MakeTraces(density, 64, 0x1000 + density);
    const double sparse_ns = SparseNsPerExec(traces, sparse_execs);
    const double scalar_ns = ScalarNsPerExec(traces, scalar_execs);
    const double speedup = sparse_ns > 0 ? scalar_ns / sparse_ns : 0.0;
    std::printf("  %8zu %12.1f %12.1f %8.1fx\n", density, sparse_ns,
                scalar_ns, speedup);
    const std::string suffix = "_d" + std::to_string(density);
    json.Metric("classify_merge_sparse_ns" + suffix, "ns", sparse_ns);
    json.Metric("classify_merge_scalar_ns" + suffix, "ns", scalar_ns);
    json.Metric("classify_merge_speedup" + suffix, "x", speedup);
  }
}

void BenchDeltaExtract(BenchJson& json, bool smoke) {
  const uint64_t iters = smoke ? 2000 : 20000;

  // Saturated steady state: the map carries a realistic covered set, the
  // snapshots have caught up, so every timed extract scans and finds
  // nothing — the shape of all but the first few epochs of a campaign.
  CoverageBitmap map;
  Rng rng(0x2000);
  for (int i = 0; i < 4096; ++i) {
    map.Add(static_cast<uint32_t>(rng.Next()));
  }
  map.ClassifyCounts();
  CoverageBitmap word_snapshot;
  CoverageBitmap scalar_snapshot;
  const BitmapDelta seed_delta = map.ExtractDeltaSince(word_snapshot);
  (void)map.ExtractDeltaSinceScalar(scalar_snapshot);

  uint64_t sink = 0;
  const double word_secs = TimeSeconds([&] {
    for (uint64_t i = 0; i < iters; ++i) {
      sink += map.ExtractDeltaSince(word_snapshot).size();
    }
  });
  const double scalar_secs = TimeSeconds([&] {
    for (uint64_t i = 0; i < iters; ++i) {
      sink += map.ExtractDeltaSinceScalar(scalar_snapshot).size();
    }
  });
  CoverageBitmap target;
  const double apply_secs = TimeSeconds([&] {
    for (uint64_t i = 0; i < iters; ++i) {
      target.ApplyDelta(seed_delta);
    }
  });
  g_sink = g_sink + sink + target.CountNonZero();

  // The line-coverage side: an arbitrary-size (not 8-aligned) hit vector
  // in the same caught-up steady state.
  CoverageUnit unit("bench", 40001);
  for (int i = 0; i < 12000; ++i) {
    unit.Hit(static_cast<size_t>(rng.Below(40001)));
  }
  (void)unit.DrainTrace();
  std::vector<uint8_t> unit_word_snapshot;
  std::vector<uint8_t> unit_scalar_snapshot;
  (void)unit.ExtractDeltaSince(unit_word_snapshot);
  (void)unit.ExtractDeltaSinceScalar(unit_scalar_snapshot);
  sink = 0;
  const double unit_word_secs = TimeSeconds([&] {
    for (uint64_t i = 0; i < iters; ++i) {
      sink += unit.ExtractDeltaSince(unit_word_snapshot).size();
    }
  });
  const double unit_scalar_secs = TimeSeconds([&] {
    for (uint64_t i = 0; i < iters; ++i) {
      sink += unit.ExtractDeltaSinceScalar(unit_scalar_snapshot).size();
    }
  });
  g_sink = g_sink + sink;

  const double d = static_cast<double>(iters);
  std::printf("\n[delta extract/apply, ns/call, saturated steady state]\n");
  std::printf("  bitmap extract   word %10.1f   scalar %10.1f\n",
              word_secs * 1e9 / d, scalar_secs * 1e9 / d);
  std::printf("  bitmap apply          %10.1f   (%zu-cell delta)\n",
              apply_secs * 1e9 / d, seed_delta.size());
  std::printf("  covunit extract  word %10.1f   scalar %10.1f\n",
              unit_word_secs * 1e9 / d, unit_scalar_secs * 1e9 / d);
  json.Metric("bitmap_extract_delta_ns", "ns", word_secs * 1e9 / d);
  json.Metric("bitmap_extract_delta_scalar_ns", "ns", scalar_secs * 1e9 / d);
  json.Metric("bitmap_apply_delta_ns", "ns", apply_secs * 1e9 / d);
  json.Metric("covunit_extract_delta_ns", "ns", unit_word_secs * 1e9 / d);
  json.Metric("covunit_extract_delta_scalar_ns", "ns",
              unit_scalar_secs * 1e9 / d);
}

// A representative epoch record: a few hundred novelty cells and covered
// points, a handful of 2 KiB queue discoveries, a finding, a crash pair.
ShardDelta MakeShardDelta(std::vector<FuzzInput>* corpus) {
  Rng rng(0x3000);
  ShardDelta delta;
  delta.worker = 3;
  delta.epoch = 7;
  delta.iterations = 2500;
  delta.imported = 2;
  for (int i = 0; i < 512; ++i) {
    delta.virgin.Append(static_cast<uint32_t>(rng.Below(1 << 16)),
                        static_cast<uint8_t>(1 + rng.Below(255)));
  }
  for (int i = 0; i < 384; ++i) {
    delta.covered_points.push_back(static_cast<uint32_t>(rng.Below(40000)));
  }
  corpus->clear();
  for (int i = 0; i < 16; ++i) {
    corpus->push_back(MakeRandomInput(rng));
  }
  delta.queue_entries = *corpus;
  delta.findings.push_back(
      {AnomalyKind::kAssertion, "bench-bug-1", "benchmark finding"});
  delta.crash_ids.push_back("bench-bug-1");
  delta.crash_inputs.push_back(MakeRandomInput(rng));
  return delta;
}

void BenchWireCodec(BenchJson& json, bool smoke) {
  const uint64_t iters = smoke ? 2000 : 20000;
  std::vector<FuzzInput> corpus;
  const ShardDelta delta = MakeShardDelta(&corpus);
  std::vector<const FuzzInput*> refs;
  for (const FuzzInput& input : corpus) {
    refs.push_back(&input);
  }
  const wire::Buffer frame = wire::Encode(delta);
  const double frame_mb =
      static_cast<double>(frame.size()) / (1024.0 * 1024.0);

  uint64_t sink = 0;
  const double encode_secs = TimeSeconds([&] {
    for (uint64_t i = 0; i < iters; ++i) {
      sink += wire::Encode(delta).size();
    }
  });
  const double encode_ref_secs = TimeSeconds([&] {
    for (uint64_t i = 0; i < iters; ++i) {
      sink += wire::Encode(delta, refs).size();
    }
  });
  ShardDelta decoded;
  const double decode_secs = TimeSeconds([&] {
    for (uint64_t i = 0; i < iters; ++i) {
      sink += wire::Decode(frame, &decoded) ? 1 : 0;
    }
  });
  g_sink = g_sink + sink;

  const double d = static_cast<double>(iters);
  const double encode_mbs = frame_mb * d / encode_secs;
  const double encode_ref_mbs = frame_mb * d / encode_ref_secs;
  const double decode_mbs = frame_mb * d / decode_secs;
  std::printf("\n[ShardDelta wire codec, %zu-byte frame]\n", frame.size());
  std::printf("  encode %10.1f MB/s   encode(refs) %10.1f MB/s   "
              "decode %10.1f MB/s\n",
              encode_mbs, encode_ref_mbs, decode_mbs);
  json.Metric("shard_delta_frame_bytes", "bytes",
              static_cast<double>(frame.size()));
  json.Metric("shard_delta_encode_mb_s", "MB/s", encode_mbs);
  json.Metric("shard_delta_encode_ref_mb_s", "MB/s", encode_ref_mbs);
  json.Metric("shard_delta_decode_mb_s", "MB/s", decode_mbs);
}

// --- exec_core: Generate+StartVm vs memo+RestoreVm ------------------------

// Distinct 128-byte config slices (as minimal FuzzInputs the memo can key)
// and the VcpuConfigs they generate.
struct ConfigPool {
  std::vector<FuzzInput> slices;
  std::vector<VcpuConfig> configs;
};

ConfigPool MakeConfigPool(size_t count, uint64_t seed) {
  Rng rng(seed);
  ConfigPool pool;
  for (size_t i = 0; i < count; ++i) {
    FuzzInput slice(InputPartition::kConfigSize);
    for (auto& b : slice) {
      b = static_cast<uint8_t>(rng.Next());
    }
    ByteReader reader(slice);
    pool.configs.push_back(
        VcpuConfigurator().Generate(reader, Arch::kIntel));
    pool.slices.push_back(std::move(slice));
  }
  return pool;
}

// The miss path the Agent pays per execution before this PR: derive the
// config from input bytes, then module reload + VM boot.
double ColdExecsPerSec(Hypervisor& hv, const ConfigPool& pool,
                       uint64_t execs) {
  uint64_t sink = 0;
  const double secs = TimeSeconds([&] {
    for (uint64_t i = 0; i < execs; ++i) {
      ByteReader reader(pool.slices[i % pool.slices.size()]);
      const VcpuConfig config =
          VcpuConfigurator().Generate(reader, Arch::kIntel);
      hv.StartVm(config);
      sink += config.memory_mb;
    }
  });
  g_sink = g_sink + sink;
  return static_cast<double>(execs) / secs;
}

// The hit path: memo probe for the config, snapshot-cache probe for the
// boot, RestoreVm — through the real cache structures the Agent uses.
double HitExecsPerSec(Hypervisor& hv, const ConfigPool& pool,
                      uint64_t execs) {
  ConfiguratorMemo memo;
  SnapshotCache cache(pool.configs.size());
  for (size_t i = 0; i < pool.configs.size(); ++i) {
    ConfiguratorMemo::Key key;
    if (ConfiguratorMemo::MakeKey(pool.slices[i], &key)) {
      memo.Insert(key, pool.configs[i]);
    }
    hv.StartVm(pool.configs[i]);
    VmSnapshot snap = hv.SnapshotVm();
    if (snap.data == nullptr) {
      snap.config = pool.configs[i];
    }
    cache.Put(FingerprintConfig(pool.configs[i]), std::move(snap));
  }
  uint64_t sink = 0;
  const double secs = TimeSeconds([&] {
    for (uint64_t i = 0; i < execs; ++i) {
      const size_t idx = i % pool.slices.size();
      ConfiguratorMemo::Key key;
      (void)ConfiguratorMemo::MakeKey(pool.slices[idx], &key);
      const VcpuConfig* memoized = memo.Lookup(key);
      VcpuConfig config;
      if (memoized != nullptr) {
        config = *memoized;
      } else {
        // Direct-mapped memo slot collision: regenerate, as the Agent does.
        ByteReader reader(pool.slices[idx]);
        config = VcpuConfigurator().Generate(reader, Arch::kIntel);
      }
      const VmSnapshot* snap = cache.Get(FingerprintConfig(config));
      hv.RestoreVm(*snap);
      sink += config.memory_mb;
    }
  });
  g_sink = g_sink + sink;
  return static_cast<double>(execs) / secs;
}

// The cached path end to end (hits and misses both) when the input stream
// cycles through `diversity` distinct configs and the LRU holds 16:
// d <= 16 converges to all-hits, d = 64 thrashes back to all-misses.
double CachedExecsPerSec(Hypervisor& hv, const ConfigPool& pool,
                         size_t diversity, uint64_t execs) {
  ConfiguratorMemo memo;
  SnapshotCache cache(16);
  uint64_t sink = 0;
  const double secs = TimeSeconds([&] {
    for (uint64_t i = 0; i < execs; ++i) {
      const size_t idx = i % diversity;
      ConfiguratorMemo::Key key;
      (void)ConfiguratorMemo::MakeKey(pool.slices[idx], &key);
      const VcpuConfig* memoized = memo.Lookup(key);
      VcpuConfig config;
      if (memoized != nullptr) {
        config = *memoized;
      } else {
        ByteReader reader(pool.slices[idx]);
        config = VcpuConfigurator().Generate(reader, Arch::kIntel);
        memo.Insert(key, config);
      }
      const uint64_t fingerprint = FingerprintConfig(config);
      const VmSnapshot* snap = cache.Get(fingerprint);
      if (snap != nullptr) {
        hv.RestoreVm(*snap);
      } else {
        hv.StartVm(config);
        VmSnapshot captured = hv.SnapshotVm();
        if (captured.data == nullptr) {
          captured.config = config;
        }
        cache.Put(fingerprint, std::move(captured));
      }
      sink += config.memory_mb;
    }
  });
  g_sink = g_sink + sink;
  return static_cast<double>(execs) / secs;
}

void BenchExecCore(BenchJson& json, bool smoke) {
  struct Target {
    const char* name;  // Registry name.
    const char* tag;   // Metric-name suffix.
  };
  const Target kTargets[] = {
      {"kvm", "kvm"}, {"xen", "xen"}, {"virtualbox", "vbox"}};
  const uint64_t cold_execs = smoke ? 500 : 50000;
  const uint64_t hit_execs = smoke ? 2000 : 500000;
  const uint64_t cached_execs = smoke ? 1000 : 100000;
  const ConfigPool pool = MakeConfigPool(64, 0x4000);

  std::printf("\n[exec_core VM-lifecycle setup, execs/sec, Intel configs]\n");
  std::printf("  %12s %12s %12s %9s\n", "target", "cold", "snapshot_hit",
              "speedup");
  for (const Target& t : kTargets) {
    auto hv = FindHypervisorFactory(t.name)();
    const double cold = ColdExecsPerSec(*hv, pool, cold_execs);
    const double hit = HitExecsPerSec(*hv, pool, hit_execs);
    const double speedup = cold > 0 ? hit / cold : 0.0;
    std::printf("  %12s %12.0f %12.0f %8.1fx\n", t.name, cold, hit, speedup);
    const std::string tag = t.tag;
    json.Metric("exec_core_cold_execs_s_" + tag, "execs/s", cold);
    json.Metric("exec_core_hit_execs_s_" + tag, "execs/s", hit);
    json.Metric("exec_core_speedup_" + tag, "x", speedup);
    for (const size_t d : {1, 4, 16, 64}) {
      const double cached = CachedExecsPerSec(*hv, pool, d, cached_execs);
      std::printf("  %12s   cached d=%-3zu %12.0f\n", t.name, d, cached);
      json.Metric("exec_core_cached_execs_s_" + tag + "_d" +
                      std::to_string(d),
                  "execs/s", cached);
    }
  }
}

}  // namespace
}  // namespace neco

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") != 0 &&
        std::strncmp(argv[i], "--json=", 7) != 0) {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  const bool smoke = neco::ParseSmokeFlag(argc, argv);
  const std::string json_path = neco::ParseJsonPathFlag(argc, argv);

  neco::PrintHeader(std::string("Data-plane hot-path micro-benchmark — "
                                "fixed seeds, steady-state shapes") +
                    (smoke ? " [smoke]" : ""));
  neco::BenchJson json("hot_path", smoke);
  neco::BenchClassifyMerge(json, smoke);
  neco::BenchDeltaExtract(json, smoke);
  neco::BenchWireCodec(json, smoke);
  neco::BenchExecCore(json, smoke);

  if (!json_path.empty()) {
    if (!json.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
