// Reproduces Figure 3: coverage progression over the 48-hour-equivalent
// budget for NecoFuzz vs Syzkaller (IRIS shown as its saturation level,
// since it terminates within minutes). Prints one series per tool per
// vendor, plus an ASCII sparkline.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/baseline.h"
#include "src/core/necofuzz.h"

namespace neco {
namespace {

constexpr int kSamples = 16;
uint64_t g_budget = HoursToIters(48);

void PrintSeries(const char* name, const std::vector<CoverageSample>& series,
                 uint64_t budget) {
  std::printf("  %-10s", name);
  for (const CoverageSample& sample : series) {
    std::printf(" %5.1f", sample.percent);
  }
  std::printf("\n");
}

void Sparkline(const char* name,
               const std::vector<CoverageSample>& series) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  std::printf("  %-10s|", name);
  for (const CoverageSample& sample : series) {
    const int level =
        static_cast<int>(sample.percent / 100.0 * 7.999);
    std::printf("%s", kLevels[level < 0 ? 0 : (level > 7 ? 7 : level)]);
  }
  std::printf("|\n");
}

void RunArch(Arch arch) {
  std::printf("\n(%s) time axis: %d samples over the 48h-equivalent "
              "budget (%llu iterations)\n",
              std::string(ArchName(arch)).c_str(), kSamples,
              static_cast<unsigned long long>(g_budget));
  std::printf("  %-10s", "hours:");
  for (int i = 1; i <= kSamples; ++i) {
    std::printf(" %5.1f", 48.0 * i / kSamples);
  }
  std::printf("\n");

  SimKvm kvm;
  CampaignOptions options;
  options.arch = arch;
  options.iterations = g_budget;
  options.samples = kSamples;
  options.seed = 1;
  const CampaignResult neco = CampaignEngine(kvm, options).Run().merged;
  PrintSeries("NecoFuzz", neco.series, g_budget);

  SyzkallerSim syzkaller(1);
  const BaselineResult syz = syzkaller.Run(kvm, arch, g_budget, kSamples);
  PrintSeries("Syzkaller", syz.series, g_budget);

  if (arch == Arch::kIntel) {
    IrisSim iris(1);
    const BaselineResult iris_result = iris.Run(kvm, arch, g_budget, 4);
    std::printf("  %-10s %5.1f (saturates immediately; terminated after "
                "%llu of %llu iterations)\n",
                "IRIS", iris_result.final_percent,
                static_cast<unsigned long long>(
                    iris_result.series.empty()
                        ? 0
                        : iris_result.series.back().iteration),
                static_cast<unsigned long long>(g_budget));
  }

  std::printf("\n");
  Sparkline("NecoFuzz", neco.series);
  Sparkline("Syzkaller", syz.series);
}

}  // namespace
}  // namespace neco

int main(int argc, char** argv) {
  if (neco::ParseSmokeFlag(argc, argv)) {
    // --smoke (CI): shrink the budget so the bench exercises the full code
    // path in seconds rather than reproducing the paper's time axis.
    neco::g_budget = neco::HoursToIters(1);
  }
  neco::PrintHeader(
      "Figure 3 — coverage transition over 48 hours (nested-virt code)\n"
      "(paper shape: NecoFuzz ramps ~70->84.7% on Intel, ~65->74.2% on "
      "AMD;\n Syzkaller converges slowly; IRIS saturates within minutes)");
  neco::RunArch(neco::Arch::kIntel);
  neco::RunArch(neco::Arch::kAmd);
  return 0;
}
