// Reproduces Table 6: the six previously-unknown vulnerabilities across
// KVM, Xen and VirtualBox, rediscovered by running full NecoFuzz campaigns
// against each simulated hypervisor and matching the findings against the
// paper's rows (hypervisor, CPU vendor, cause, detection method).
#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "src/core/necofuzz.h"

namespace neco {
namespace {

uint64_t g_budget = HoursToIters(36);

struct PaperRow {
  int number;
  const char* hypervisor;
  const char* cpu;
  const char* cause;
  const char* detection;
  const char* status;
  // Bug ids in this repository that correspond to the row (either counts).
  const char* id_a;
  const char* id_b;
};

constexpr PaperRow kPaperRows[] = {
    {1, "KVM", "Intel", "VM State Handling Flaw", "UBSAN",
     "Fixed, CVE-2023-30456", "kvm-nvmx-cr4pae-oob", nullptr},
    {2, "VirtualBox", "Intel", "VM State Handling Flaw", "VM Crash",
     "Fixed, CVE-2024-21106", "vbox-msr-noncanonical", nullptr},
    {3, "KVM", "Intel, AMD", "Page Table Handling Flaw", "Assertion",
     "Fixed", "kvm-nvmx-dummy-root", "kvm-nsvm-dummy-root"},
    {4, "Xen", "Intel", "VM State Handling Flaw", "Host Crash", "Fixed",
     "xen-nvmx-activity-state", nullptr},
    {5, "Xen", "AMD", "VM State Handling Flaw", "Assertion", "Confirmed",
     "xen-nsvm-lma-pg", nullptr},
    {6, "Xen", "AMD", "VM State Handling Flaw", "Assertion", "Confirmed",
     "xen-nsvm-vgif-assert", nullptr},
};

void Collect(Hypervisor& target, Arch arch,
             std::map<std::string, AnomalyReport>& found,
             uint64_t& executions) {
  CampaignOptions options;
  options.arch = arch;
  options.iterations = g_budget;
  options.samples = 2;
  options.seed = 1;
  const CampaignResult result = CampaignEngine(target, options).Run().merged;
  executions += options.iterations;
  for (const AnomalyReport& report : result.findings) {
    found.emplace(report.bug_id, report);
  }
}

}  // namespace
}  // namespace neco

int main(int argc, char** argv) {
  using namespace neco;
  if (ParseSmokeFlag(argc, argv)) {
    // --smoke (CI): shrink the budget so the bench exercises the full code
    // path in seconds rather than reproducing the paper's campaigns.
    g_budget = HoursToIters(1);
  }
  PrintHeader(
      "Table 6 — newly discovered vulnerabilities in nested "
      "virtualization\n(full NecoFuzz campaigns against sim-KVM, sim-Xen "
      "and sim-VirtualBox)");

  std::map<std::string, AnomalyReport> found;
  uint64_t executions = 0;
  {
    SimKvm kvm;
    Collect(kvm, Arch::kIntel, found, executions);
    Collect(kvm, Arch::kAmd, found, executions);
  }
  {
    SimXen xen;
    Collect(xen, Arch::kIntel, found, executions);
    Collect(xen, Arch::kAmd, found, executions);
  }
  {
    SimVbox vbox;
    Collect(vbox, Arch::kIntel, found, executions);
  }
  std::printf("  campaigns executed %llu test cases in total\n\n",
              static_cast<unsigned long long>(executions));

  std::printf("  %-2s %-11s %-11s %-26s %-11s %s\n", "No", "Hypervisor",
              "CPU", "Cause", "Detection", "Rediscovered / Detail");
  int rediscovered = 0;
  for (const PaperRow& row : kPaperRows) {
    const AnomalyReport* report = nullptr;
    if (found.count(row.id_a) != 0) {
      report = &found.at(row.id_a);
    } else if (row.id_b != nullptr && found.count(row.id_b) != 0) {
      report = &found.at(row.id_b);
    }
    std::printf("  %-2d %-11s %-11s %-26s %-11s ", row.number,
                row.hypervisor, row.cpu, row.cause, row.detection);
    if (report != nullptr) {
      ++rediscovered;
      std::printf("YES [%s] %s\n",
                  std::string(AnomalyKindName(report->kind)).c_str(),
                  report->bug_id.c_str());
      std::printf("     %-52s %s (%s)\n", "", report->message.substr(0, 90).c_str(),
                  row.status);
    } else {
      std::printf("not in this run\n");
    }
  }
  std::printf("\n  rediscovered %d / 6 vulnerabilities (paper: 6 new "
              "findings, 2 CVEs)\n",
              rediscovered);
  // Extra findings beyond the paper's table, if any.
  for (const auto& [id, report] : found) {
    bool known = false;
    for (const PaperRow& row : kPaperRows) {
      known |= id == row.id_a || (row.id_b != nullptr && id == row.id_b);
    }
    if (!known) {
      std::printf("  additional finding: [%s] %s\n",
                  std::string(AnomalyKindName(report.kind)).c_str(),
                  id.c_str());
    }
  }
  return 0;
}
