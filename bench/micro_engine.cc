// Google-benchmark microbenchmarks for the engine hot paths: validator
// rounding, boundary mutation, the hardware entry checks, AFL havoc, the
// coverage bitmap, and one full agent execution. These are sanity numbers
// for the simulated-time mapping documented in DESIGN.md, not a paper
// table.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "src/core/necofuzz.h"

namespace neco {
namespace {

Vmcs RandomVmcs(Rng& rng) {
  Vmcs v;
  for (const VmcsFieldInfo& info : VmcsFieldTable()) {
    v.Write(info.field, rng.Next());
  }
  return v;
}

void BM_ValidatorRoundToValid(benchmark::State& state) {
  VmcsValidator validator(HostVmxCapabilities());
  Rng rng(1);
  Vmcs raw = RandomVmcs(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validator.RoundToValid(raw));
  }
}
BENCHMARK(BM_ValidatorRoundToValid);

void BM_ValidatorBoundaryMutate(benchmark::State& state) {
  VmcsValidator validator(HostVmxCapabilities());
  Rng rng(2);
  Vmcs base = validator.RoundToValid(RandomVmcs(rng));
  FuzzInput directives = MakeRandomInput(rng);
  for (auto _ : state) {
    Vmcs copy = base;
    ByteReader reader(directives);
    validator.BoundaryMutate(copy, reader);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_ValidatorBoundaryMutate);

void BM_HardwareEntryChecks(benchmark::State& state) {
  const Vmcs golden = MakeDefaultVmcs();
  const VmxCapabilities caps = HostVmxCapabilities();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CheckVmxEntry(golden, caps, VmxCheckProfile::Hardware()));
  }
}
BENCHMARK(BM_HardwareEntryChecks);

void BM_SvmVmrunChecks(benchmark::State& state) {
  const Vmcb golden = MakeDefaultVmcb();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CheckVmrun(golden, SvmCaps{}, SvmCheckProfile::Hardware()));
  }
}
BENCHMARK(BM_SvmVmrunChecks);

void BM_HavocMutation(benchmark::State& state) {
  Mutator mutator(3);
  FuzzInput input = MakeRandomInput(mutator.rng());
  for (auto _ : state) {
    mutator.Havoc(input);
    benchmark::DoNotOptimize(input.data());
  }
}
BENCHMARK(BM_HavocMutation);

void BM_BitmapClassifyAndMerge(benchmark::State& state) {
  CoverageBitmap virgin;
  Rng rng(4);
  for (auto _ : state) {
    CoverageBitmap trace;
    for (int i = 0; i < 200; ++i) {
      trace.Add(static_cast<uint32_t>(rng.Next()));
    }
    trace.ClassifyCounts();
    benchmark::DoNotOptimize(trace.MergeInto(virgin));
  }
}
BENCHMARK(BM_BitmapClassifyAndMerge);

void BM_AgentExecuteOneIntel(benchmark::State& state) {
  SimKvm kvm;
  AgentOptions options;
  options.arch = Arch::kIntel;
  Agent agent(kvm, options);
  Rng rng(5);
  FuzzInput input = MakeRandomInput(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.ExecuteOne(input));
  }
}
BENCHMARK(BM_AgentExecuteOneIntel);

void BM_AgentExecuteOneAmd(benchmark::State& state) {
  SimKvm kvm;
  AgentOptions options;
  options.arch = Arch::kAmd;
  Agent agent(kvm, options);
  Rng rng(6);
  FuzzInput input = MakeRandomInput(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.ExecuteOne(input));
  }
}
BENCHMARK(BM_AgentExecuteOneAmd);

void BM_VmcsBitImageRoundTrip(benchmark::State& state) {
  Rng rng(7);
  const Vmcs v = RandomVmcs(rng);
  for (auto _ : state) {
    Vmcs back;
    back.FromBitImage(v.ToBitImage());
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_VmcsBitImageRoundTrip);

}  // namespace
}  // namespace neco

// Not BENCHMARK_MAIN(): google-benchmark rejects flags it does not know,
// and every bench in this repo must accept --smoke (enforced by
// necolint's bench-smoke rule). Strip the flag and substitute a tiny
// measurement time so CI exercises every benchmark in seconds.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  char min_time[] = "--benchmark_min_time=0.01";
  if (smoke) {
    args.push_back(min_time);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
