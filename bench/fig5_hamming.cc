// Reproduces Figure 5: the distribution of Hamming distances over the
// 8,000-bit / 165-field VMCS state layout, repeated 10,000 times:
//
//  * "Random vs Validated"  — distance between a randomly generated state
//    and its validated (rounded) counterpart: how far raw entropy sits
//    from the valid region (paper: mean 492.61, std 53.85).
//  * "Default vs Validated" — distance between a default-derived input and
//    its validated counterpart: near-valid inputs need few corrections
//    (paper: mean 284.69, std 36.43).
//  * "Inter Post-Validation" — pairwise distance between validated states:
//    internal diversity of the generated population (paper: mean 353.65,
//    std 63.94).
//
// Substitution note (see EXPERIMENTS.md): this validator preserves the
// entropy of unconstrained fields, so the inter-validation diversity is
// larger than the paper's Bochs-derived implementation; the qualitative
// claims (near-valid yet diverse; default inputs need fewer corrections)
// are the reproduction target.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/necofuzz.h"
#include "src/support/stats.h"

namespace neco {
namespace {

int g_repetitions = 10000;

void PrintDistribution(const char* name, const RunningStats& stats,
                       const std::vector<double>& values) {
  std::printf("  %-24s mean: %7.2f bits   std: %6.2f\n", name, stats.mean(),
              stats.stddev());
  // ASCII violin: histogram over 16 buckets of the observed range.
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
  }
  if (hi <= lo) {
    hi = lo + 1;
  }
  int buckets[16] = {0};
  for (double v : values) {
    int b = static_cast<int>((v - lo) / (hi - lo) * 15.999);
    buckets[b < 0 ? 0 : (b > 15 ? 15 : b)]++;
  }
  int peak = 1;
  for (int b : buckets) {
    peak = b > peak ? b : peak;
  }
  std::printf("    %7.0f |", lo);
  for (int b : buckets) {
    const int level = b * 8 / peak;
    std::printf("%c", " .:-=+*##"[level]);
  }
  std::printf("| %7.0f\n", hi);
}

}  // namespace
}  // namespace neco

int main(int argc, char** argv) {
  using namespace neco;
  if (ParseSmokeFlag(argc, argv)) {
    // --smoke (CI): enough repetitions to exercise every distribution, not
    // enough to reproduce the paper's statistics.
    g_repetitions = 200;
  }
  PrintHeader(
      "Figure 5 — distribution of VM-state Hamming distances\n"
      "(10,000 repetitions over the 165-field / 8,000-bit VMCS layout)");
  std::printf("  layout: %zu fields, %zu bits total\n", VmcsFieldCount(),
              VmcsTotalBits());

  VmcsValidator validator(HostVmxCapabilities());
  Rng rng(0xf16005);
  Mutator mutator(0xf16005);
  const auto default_image = MakeDefaultVmcs().ToBitImage();

  RunningStats random_stats, default_stats, inter_stats;
  std::vector<double> random_vals, default_vals, inter_vals;
  std::vector<uint8_t> previous;

  for (int i = 0; i < g_repetitions; ++i) {
    std::vector<uint8_t> raw_image(Vmcs::BitImageSize());
    for (auto& b : raw_image) {
      b = static_cast<uint8_t>(rng.Next());
    }
    Vmcs raw;
    raw.FromBitImage(raw_image);
    const auto validated = validator.RoundToValid(raw).ToBitImage();

    const double d_random =
        static_cast<double>(HammingDistance(raw_image, validated));
    random_stats.Add(d_random);
    random_vals.push_back(d_random);

    if (!previous.empty()) {
      const double d_inter =
          static_cast<double>(HammingDistance(previous, validated));
      inter_stats.Add(d_inter);
      inter_vals.push_back(d_inter);
    }
    previous = validated;

    FuzzInput drifted = default_image;
    mutator.Havoc(drifted, 8);
    Vmcs near_default;
    near_default.FromBitImage(drifted);
    const auto validated_default =
        validator.RoundToValid(near_default).ToBitImage();
    const double d_default =
        static_cast<double>(HammingDistance(drifted, validated_default));
    default_stats.Add(d_default);
    default_vals.push_back(d_default);
  }

  PrintDistribution("Random vs Validated", random_stats, random_vals);
  PrintDistribution("Default vs Validated", default_stats, default_vals);
  PrintDistribution("Inter Post-Validation", inter_stats, inter_vals);

  std::printf(
      "\n  probability a random state is already valid: ~2^-%.1f\n",
      random_stats.mean());
  std::printf("  (paper: 492.61/53.85, 284.69/36.43, 353.65/63.94)\n");
  return 0;
}
