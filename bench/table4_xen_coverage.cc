// Reproduces Table 4: Xen code coverage of nested-virtualization-specific
// code after the 24-hour-equivalent budget — NecoFuzz vs the Xen Test
// Framework, with the set-difference rows.
//
// Paper reference: NecoFuzz 83.4% (Intel) / 79.0% (AMD),
//                  XTF 20.4% / 10.8%.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/baseline.h"
#include "src/core/necofuzz.h"

namespace neco {
namespace {

int g_runs = 5;
uint64_t g_budget = HoursToIters(24);

void RunArch(Arch arch) {
  SimXen xen;
  const size_t total = xen.nested_coverage(arch).total_points();
  std::printf("\n[%s] instrumented lines in %s: %zu\n",
              std::string(ArchName(arch)).c_str(),
              std::string(xen.nested_coverage(arch).name()).c_str(), total);

  std::vector<size_t> neco_set;
  size_t neco_lines = 0;
  const MultiRunStats neco = MedianOverRuns(g_runs, [&](uint64_t seed) {
    CampaignOptions options;
    options.arch = arch;
    options.iterations = g_budget;
    options.samples = 4;
    options.seed = seed;
    const CampaignResult result = CampaignEngine(xen, options).Run().merged;
    if (seed == 1) {
      neco_set = result.covered_set;
      neco_lines = result.covered_points;
    }
    return result.final_percent;
  });

  XtfSim xtf;
  const BaselineResult xtf_result = xtf.Run(xen, arch, 1, 1);

  std::printf("  %-20s %8s %8s\n", "tool", "cov%", "#line");
  std::printf("  %-20s %7.1f%% %8zu   (95%% CI %.1f-%.1f)\n", "NecoFuzz",
              neco.median, neco_lines, neco.ci_low, neco.ci_high);
  std::printf("  %-20s %7.1f%% %8zu\n", "XTF", xtf_result.final_percent,
              xtf_result.covered_points);
  const auto inter = CoverageIntersect(neco_set, xtf_result.covered_set);
  const auto neco_only = CoverageSubtract(neco_set, xtf_result.covered_set);
  const auto xtf_only = CoverageSubtract(xtf_result.covered_set, neco_set);
  auto pct = [total](size_t n) {
    return 100.0 * static_cast<double>(n) / static_cast<double>(total);
  };
  std::printf("  %-20s %7.1f%% %8zu\n", "NecoFuzz∩XTF", pct(inter.size()),
              inter.size());
  std::printf("  %-20s %7.1f%% %8zu\n", "NecoFuzz-XTF", pct(neco_only.size()),
              neco_only.size());
  std::printf("  %-20s %7.1f%% %8zu\n", "XTF-NecoFuzz", pct(xtf_only.size()),
              xtf_only.size());
  std::printf("  advantage: +%.1f pp over XTF\n",
              neco.median - xtf_result.final_percent);
}

}  // namespace
}  // namespace neco

int main(int argc, char** argv) {
  if (neco::ParseSmokeFlag(argc, argv)) {
    // --smoke (CI): shrink runs and budget so the bench exercises the full
    // code path in seconds rather than reproducing the paper's medians.
    neco::g_runs = 2;
    neco::g_budget = neco::HoursToIters(1);
  }

  neco::PrintHeader(
      "Table 4 — Xen coverage of nested-virtualization-specific code (24h "
      "budget)\n(paper: NecoFuzz 83.4%/79.0% vs XTF 20.4%/10.8%)");
  neco::RunArch(neco::Arch::kIntel);
  neco::RunArch(neco::Arch::kAmd);
  return 0;
}
