// Shared helpers for the paper-reproduction benches: iteration-to-hours
// mapping, multi-seed medians with 95% confidence intervals (the Klees et
// al. methodology the paper follows), table formatting, common flag
// parsing, and machine-readable JSON output.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "src/support/stats.h"

namespace neco {

// The paper's campaigns run for wall-clock hours; the simulator executes a
// fuzzing iteration in microseconds. Benches map a fixed iteration budget
// onto the paper's time axis: kItersPerHour iterations ~ "1 hour".
constexpr uint64_t kItersPerHour = 500;

inline uint64_t HoursToIters(double hours) {
  return static_cast<uint64_t>(hours * kItersPerHour);
}

struct MultiRunStats {
  double median = 0.0;
  double ci_low = 0.0;
  double ci_high = 0.0;
  std::vector<double> values;
};

// Run `runs` seeded repetitions of `f(seed)` and summarize.
inline MultiRunStats MedianOverRuns(int runs,
                                    const std::function<double(uint64_t)>& f) {
  MultiRunStats out;
  RunningStats stats;
  for (int i = 0; i < runs; ++i) {
    const double v = f(static_cast<uint64_t>(i) + 1);
    out.values.push_back(v);
    stats.Add(v);
  }
  out.median = Median(out.values);
  const double hw = ConfidenceHalfWidth95(stats);
  out.ci_low = stats.mean() - hw;
  out.ci_high = stats.mean() + hw;
  return out;
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

// --- Common flags --------------------------------------------------------

// Every bench supports `--smoke`: a budget shrunk enough for CI to
// exercise the full code path in seconds (necolint enforces the flag's
// presence in each bench).
inline bool ParseSmokeFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return true;
    }
  }
  return false;
}

// `--json=PATH` for benches that emit a machine-readable result file;
// empty when absent.
inline std::string ParseJsonPathFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      return std::string(argv[i] + 7);
    }
  }
  return std::string();
}

// --- Machine-readable bench output (schema_version 1) --------------------
//
// The shape CI diffs against a checked-in baseline (BENCH_hotpath.json,
// validated by tools/check_bench_json.py):
//
//   {"bench": "<name>", "schema_version": 1, "smoke": <bool>,
//    "metrics": [{"name": "...", "unit": "...", "value": <number>}, ...]}
//
// Metric names must not depend on the budget: a smoke run must produce
// the same metric set as the full run the baseline was captured from.
class BenchJson {
 public:
  BenchJson(std::string bench, bool smoke)
      : bench_(std::move(bench)), smoke_(smoke) {}

  void Metric(std::string name, std::string unit, double value) {
    metrics_.push_back({std::move(name), std::move(unit), value});
  }

  std::string Dump() const {
    std::string out = "{\"bench\": \"" + bench_ +
                      "\", \"schema_version\": 1, \"smoke\": ";
    out += smoke_ ? "true" : "false";
    out += ", \"metrics\": [";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      char value[64];
      std::snprintf(value, sizeof(value), "%.6g", metrics_[i].value);
      if (i != 0) {
        out += ", ";
      }
      out += "{\"name\": \"" + metrics_[i].name + "\", \"unit\": \"" +
             metrics_[i].unit + "\", \"value\": " + value + "}";
    }
    out += "]}\n";
    return out;
  }

  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    const std::string text = Dump();
    const bool wrote =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return (std::fclose(f) == 0) && wrote;
  }

 private:
  struct MetricRow {
    std::string name;
    std::string unit;
    double value;
  };

  std::string bench_;
  bool smoke_;
  std::vector<MetricRow> metrics_;
};

}  // namespace neco

#endif  // BENCH_BENCH_UTIL_H_
