// Shared helpers for the paper-reproduction benches: iteration-to-hours
// mapping, multi-seed medians with 95% confidence intervals (the Klees et
// al. methodology the paper follows), and table formatting.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/support/stats.h"

namespace neco {

// The paper's campaigns run for wall-clock hours; the simulator executes a
// fuzzing iteration in microseconds. Benches map a fixed iteration budget
// onto the paper's time axis: kItersPerHour iterations ~ "1 hour".
constexpr uint64_t kItersPerHour = 500;

inline uint64_t HoursToIters(double hours) {
  return static_cast<uint64_t>(hours * kItersPerHour);
}

struct MultiRunStats {
  double median = 0.0;
  double ci_low = 0.0;
  double ci_high = 0.0;
  std::vector<double> values;
};

// Run `runs` seeded repetitions of `f(seed)` and summarize.
inline MultiRunStats MedianOverRuns(int runs,
                                    const std::function<double(uint64_t)>& f) {
  MultiRunStats out;
  RunningStats stats;
  for (int i = 0; i < runs; ++i) {
    const double v = f(static_cast<uint64_t>(i) + 1);
    out.values.push_back(v);
    stats.Add(v);
  }
  out.median = Median(out.values);
  const double hw = ConfidenceHalfWidth95(stats);
  out.ci_low = stats.mean() - hw;
  out.ci_high = stats.mean() + hw;
  return out;
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

}  // namespace neco

#endif  // BENCH_BENCH_UTIL_H_
