// Reproduces Table 2: KVM code coverage for nested virtualization-specific
// code (Intel and AMD), comparing NecoFuzz against Syzkaller, IRIS,
// Selftests and KVM-unit-tests, including the set-difference rows and the
// Mann-Whitney / Cohen's d statistics of Section 5.1's methodology.
//
// Paper reference (medians after 48 h):
//   Intel: NecoFuzz 84.7%, Syzkaller 61.4%, IRIS 52.3%,
//          Selftests 57.8%, KVM-unit-tests 72.0%
//   AMD:   NecoFuzz 74.2%, Syzkaller  7.0%, Selftests 73.4%,
//          KVM-unit-tests 69.8%
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/baseline.h"
#include "src/core/necofuzz.h"

namespace neco {
namespace {

int g_runs = 5;
uint64_t g_budget = HoursToIters(48);

struct ToolRow {
  std::string name;
  double median_pct = 0.0;
  double ci_low = 0.0;
  double ci_high = 0.0;
  size_t lines = 0;
  std::vector<size_t> covered_set;  // From the seed-1 run.
  std::vector<double> samples;
  bool available = true;
};

void PrintRow(const ToolRow& row, size_t total) {
  if (!row.available) {
    std::printf("  %-22s %8s %8s\n", row.name.c_str(), "-", "-");
    return;
  }
  std::printf("  %-22s %7.1f%% %8zu   (95%% CI %.1f-%.1f)\n",
              row.name.c_str(), row.median_pct, row.lines, row.ci_low,
              row.ci_high);
}

void PrintSetRow(const char* label, const std::vector<size_t>& set,
                 size_t total) {
  std::printf("  %-22s %7.1f%% %8zu\n", label,
              100.0 * static_cast<double>(set.size()) /
                  static_cast<double>(total),
              set.size());
}

void RunArch(Arch arch) {
  SimKvm kvm;
  const size_t total = kvm.nested_coverage(arch).total_points();
  std::printf("\n[%s] instrumented lines in %s: %zu\n",
              std::string(ArchName(arch)).c_str(),
              std::string(kvm.nested_coverage(arch).name()).c_str(), total);

  ToolRow neco;
  neco.name = "NecoFuzz";
  {
    const MultiRunStats stats = MedianOverRuns(g_runs, [&](uint64_t seed) {
      CampaignOptions options;
      options.arch = arch;
      options.iterations = g_budget;
      options.samples = 4;
      options.seed = seed;
      const CampaignResult result =
          CampaignEngine(kvm, options).Run().merged;
      if (seed == 1) {
        neco.covered_set = result.covered_set;
        neco.lines = result.covered_points;
      }
      return result.final_percent;
    });
    neco.median_pct = stats.median;
    neco.ci_low = stats.ci_low;
    neco.ci_high = stats.ci_high;
    neco.samples = stats.values;
  }

  ToolRow syz;
  syz.name = "Syzkaller";
  {
    const MultiRunStats stats = MedianOverRuns(g_runs, [&](uint64_t seed) {
      SyzkallerSim tool(seed);
      const BaselineResult result = tool.Run(kvm, arch, g_budget, 4);
      if (seed == 1) {
        syz.covered_set = result.covered_set;
        syz.lines = result.covered_points;
      }
      return result.final_percent;
    });
    syz.median_pct = stats.median;
    syz.ci_low = stats.ci_low;
    syz.ci_high = stats.ci_high;
    syz.samples = stats.values;
  }

  ToolRow iris;
  iris.name = "IRIS";
  if (arch == Arch::kIntel) {
    IrisSim tool(3);
    const BaselineResult result = tool.Run(kvm, arch, g_budget, 4);
    iris.median_pct = iris.ci_low = iris.ci_high = result.final_percent;
    iris.lines = result.covered_points;
    iris.covered_set = result.covered_set;
    if (result.terminated_early) {
      iris.name += " (crashed early)";
    }
  } else {
    iris.available = false;  // Intel-only tool.
  }

  ToolRow selftests;
  selftests.name = "Selftests";
  {
    SelftestsSim tool;
    const BaselineResult result = tool.Run(kvm, arch, 1, 1);
    selftests.median_pct = selftests.ci_low = selftests.ci_high =
        result.final_percent;
    selftests.lines = result.covered_points;
    selftests.covered_set = result.covered_set;
  }

  ToolRow kut;
  kut.name = "KVM-unit-tests";
  {
    KvmUnitTestsSim tool;
    const BaselineResult result = tool.Run(kvm, arch, 1, 1);
    kut.median_pct = kut.ci_low = kut.ci_high = result.final_percent;
    kut.lines = result.covered_points;
    kut.covered_set = result.covered_set;
  }

  std::printf("  %-22s %8s %8s\n", "tool", "cov%", "#line");
  PrintRow(neco, total);
  PrintRow(syz, total);
  PrintSetRow("Syzkaller-NecoFuzz",
              CoverageSubtract(syz.covered_set, neco.covered_set), total);
  PrintSetRow("NecoFuzz-Syzkaller",
              CoverageSubtract(neco.covered_set, syz.covered_set), total);
  PrintSetRow("NecoFuzz∩Syzkaller",
              CoverageIntersect(neco.covered_set, syz.covered_set), total);
  PrintRow(iris, total);
  PrintRow(selftests, total);
  PrintSetRow("Selftests-NecoFuzz",
              CoverageSubtract(selftests.covered_set, neco.covered_set),
              total);
  PrintSetRow("NecoFuzz-Selftests",
              CoverageSubtract(neco.covered_set, selftests.covered_set),
              total);
  PrintSetRow("NecoFuzz∩Selftests",
              CoverageIntersect(neco.covered_set, selftests.covered_set),
              total);
  PrintRow(kut, total);

  std::printf("  improvement over Syzkaller: %.1fx",
              syz.median_pct > 0 ? neco.median_pct / syz.median_pct : 0.0);
  if (iris.available) {
    std::printf(", over IRIS: %.1fx", neco.median_pct / iris.median_pct);
  }
  std::printf("\n  NecoFuzz vs Syzkaller: p=%.4f (Mann-Whitney U), "
              "Cohen's d=%.2f\n",
              MannWhitneyUP(neco.samples, syz.samples),
              [&] {
                RunningStats a, b;
                for (double v : neco.samples) a.Add(v);
                for (double v : syz.samples) b.Add(v);
                return CohensD(a, b);
              }());
}

}  // namespace
}  // namespace neco

int main(int argc, char** argv) {
  if (neco::ParseSmokeFlag(argc, argv)) {
    // --smoke (CI): shrink runs and budget so the bench exercises the full
    // code path in seconds rather than reproducing the paper's medians.
    neco::g_runs = 2;
    neco::g_budget = neco::HoursToIters(1);
  }

  neco::PrintHeader(
      "Table 2 — KVM coverage of nested-virtualization-specific code\n"
      "(median of 5 runs at the 48h-equivalent budget; paper: NecoFuzz "
      "84.7%/74.2%,\n Syzkaller 61.4%/7.0%, IRIS 52.3%/-, Selftests "
      "57.8%/73.4%, KVM-unit-tests 72.0%/69.8%)");
  neco::RunArch(neco::Arch::kIntel);
  neco::RunArch(neco::Arch::kAmd);
  return 0;
}
