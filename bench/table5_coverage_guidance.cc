// Reproduces Table 5: the effect of coverage guidance. The paper's
// counter-intuitive finding is that the breadth-first mode (no guidance)
// slightly BEATS the coverage-guided mode, because the validator's
// rounding collapses guided micro-variations into equivalent post-rounding
// states (Section 5.6).
//
// Paper reference (Intel / AMD at 48 h):
//   w/o coverage guidance  84.7% / 74.2%
//   with coverage guidance 81.7% / 71.8%
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/necofuzz.h"

namespace neco {
namespace {

int g_runs = 5;
uint64_t g_budget = HoursToIters(48);

void RunArch(Arch arch) {
  SimKvm kvm;
  std::printf("\n[%s]\n", std::string(ArchName(arch)).c_str());
  double breadth_first = 0.0;
  for (const bool guidance : {false, true}) {
    const MultiRunStats stats = MedianOverRuns(g_runs, [&](uint64_t seed) {
      CampaignOptions options;
      options.arch = arch;
      options.iterations = g_budget;
      options.samples = 2;
      options.seed = seed;
      options.fuzzer.coverage_guidance = guidance;
      return CampaignEngine(kvm, options).Run().merged.final_percent;
    });
    std::printf("  %-26s %7.1f%%   (95%% CI %.1f-%.1f)\n",
                guidance ? "with coverage guidance" : "w/o coverage guidance",
                stats.median, stats.ci_low, stats.ci_high);
    if (!guidance) {
      breadth_first = stats.median;
    } else {
      std::printf("  guidance effect: %+.1f pp (paper: about -3 pp — "
                  "breadth-first wins)\n",
                  stats.median - breadth_first);
    }
  }
}

}  // namespace
}  // namespace neco

int main(int argc, char** argv) {
  if (neco::ParseSmokeFlag(argc, argv)) {
    // --smoke (CI): shrink runs and budget so the bench exercises the full
    // code path in seconds rather than reproducing the paper's medians.
    neco::g_runs = 2;
    neco::g_budget = neco::HoursToIters(1);
  }

  neco::PrintHeader(
      "Table 5 — effect of coverage guidance in NecoFuzz (48h budget)\n"
      "(paper: w/o 84.7%/74.2%, with 81.7%/71.8%; the boundary-oriented\n"
      " breadth-first strategy makes guidance nearly irrelevant, enabling\n"
      " black-box fuzzing of closed-source hypervisors)");
  neco::RunArch(neco::Arch::kIntel);
  neco::RunArch(neco::Arch::kAmd);
  return 0;
}
