// Durable-state resume bench: wall-time and bytes replayed for resuming
// an interrupted campaign, snapshot-anchored (snapshot_every_epochs=10)
// against replay-only (the pre-snapshot protocol), on the same campaign.
//
// Procedure (fixed seed, bit-reproducible):
//  1. run the uninterrupted golden campaign (no state_dir),
//  2. run it journaled twice — once with a snapshot cadence, once
//     replay-only — then rewind each MANIFEST's commit point to 5 epochs
//     before the end: the exact on-disk shape of a campaign SIGKILLed
//     right after that commit (stale later-epoch files included),
//  3. time the resume of each directory. The snapshot resume replays
//     only the tail between the horizon and the commit point; the
//     replay-only resume re-executes the whole committed prefix, so the
//     gap grows linearly with campaign length.
//
// The determinism contract is measured, not assumed: the snapshot resume
// is repeated under thread, process, and socket shards (from copies of
// the same state dir) and each EngineResult is compared against the
// golden run — the bit_identical_shard_modes metric is the count that
// matched, and a mismatch fails tools/check_bench_json.py outright
// (values must be positive, and the baseline records 3).
//
// `--smoke` shrinks the campaign for CI; `--json=PATH` writes the
// schema_version-1 result file diffed against the checked-in
// BENCH_state.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/engine.h"
#include "src/core/state/commit.h"
#include "src/core/state/journal.h"
#include "src/core/state/snapshot.h"
#include "src/core/wire.h"

namespace neco {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

template <typename Fn>
double TimeSeconds(Fn&& fn) {
  const auto start = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// The benched campaign: `epochs` epochs of 40 iterations per worker,
// corpus-synced and coverage-guided so the snapshot carries every state
// section (corpus, virgin maps, quirk tables, crash artifacts).
CampaignOptions BenchOptions(size_t epochs) {
  CampaignOptions options;
  options.arch = Arch::kAmd;
  options.workers = 2;
  options.samples = static_cast<int>(epochs);
  options.iterations = 2 * 40 * epochs;
  options.seed = 11;
  options.merge_batch = 1;
  options.fuzzer.coverage_guidance = true;
  return options;
}

// Rewinds the journal's commit point to `committed` and its snapshot
// horizon to the newest snapshot file at or below it — the on-disk shape
// of a campaign killed right after that epoch's commit.
void RewindCommitPoint(const fs::path& state, size_t committed) {
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(state / "MANIFEST", &bytes)) {
    std::fprintf(stderr, "cannot read %s\n", (state / "MANIFEST").c_str());
    std::exit(1);
  }
  CampaignManifestRecord manifest;
  if (!wire::Decode(bytes.data(), bytes.size(), &manifest)) {
    std::fprintf(stderr, "corrupt MANIFEST in %s\n", state.c_str());
    std::exit(1);
  }
  manifest.committed_epochs = committed;
  size_t horizon = 0;
  for (size_t h = 1; h <= committed; ++h) {
    if (fs::exists(state / SnapshotFileName(h))) {
      horizon = h;
    }
  }
  manifest.snapshot_epochs = horizon;
  const wire::Buffer frame = wire::Encode(manifest);
  std::ofstream out(state / "MANIFEST", std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
}

// Total size of the epoch files a resume of this directory will verify:
// the committed prefix minus the materialized horizon.
uint64_t ReplayedBytes(const fs::path& state, size_t horizon,
                       size_t committed) {
  uint64_t bytes = 0;
  for (size_t e = horizon; e < committed; ++e) {
    std::error_code ec;
    const auto size = fs::file_size(state / CampaignJournal::EpochFileName(e),
                                    ec);
    if (!ec) {
      bytes += size;
    }
  }
  return bytes;
}

uint64_t DirectoryBytes(const fs::path& dir) {
  uint64_t bytes = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file(ec)) {
      bytes += it->file_size(ec);
    }
  }
  return bytes;
}

// The determinism comparison the state tests pin, minus gtest: true when
// the resumed campaign landed on the golden run's merged state bit for
// bit (run-local journal/pipeline counters excluded by design).
bool SameResult(const EngineResult& a, const EngineResult& b) {
  if (a.merged.covered_set != b.merged.covered_set ||
      a.merged.covered_points != b.merged.covered_points ||
      a.merged.final_percent != b.merged.final_percent ||
      a.merged.fuzzer_stats.iterations != b.merged.fuzzer_stats.iterations ||
      a.merged.fuzzer_stats.queue_size != b.merged.fuzzer_stats.queue_size ||
      a.merged.fuzzer_stats.unique_anomalies !=
          b.merged.fuzzer_stats.unique_anomalies ||
      a.corpus_imports != b.corpus_imports ||
      a.merged.series.size() != b.merged.series.size() ||
      a.merged.findings.size() != b.merged.findings.size() ||
      a.crashes != b.crashes) {
    return false;
  }
  for (size_t i = 0; i < a.merged.series.size(); ++i) {
    if (a.merged.series[i].iteration != b.merged.series[i].iteration ||
        a.merged.series[i].percent != b.merged.series[i].percent) {
      return false;
    }
  }
  for (size_t i = 0; i < a.merged.findings.size(); ++i) {
    if (a.merged.findings[i].bug_id != b.merged.findings[i].bug_id) {
      return false;
    }
  }
  return true;
}

int RunBench(bool smoke, const std::string& json_path) {
  const size_t epochs = smoke ? 20 : 200;
  const size_t cadence = 10;
  const size_t committed = epochs - 5;  // Kill point: 5 epochs short.
  const size_t horizon = committed - committed % cadence;

  const fs::path root =
      fs::temp_directory_path() /
      ("necofuzz-bench-state-" + std::to_string(::getpid()));
  fs::remove_all(root);
  fs::create_directories(root);

  PrintHeader(std::string("Durable-state resume: snapshot-anchored vs "
                          "replay-only, ") +
              std::to_string(epochs) + "-epoch campaign" +
              (smoke ? " [smoke]" : ""));

  CampaignOptions options = BenchOptions(epochs);
  EngineResult golden;
  const double golden_s =
      TimeSeconds([&] { golden = CampaignEngine("kvm", options).Run(); });
  std::printf("  golden run           %8.3f s  (%zu epochs, %llu iters)\n",
              golden_s, golden.merged.series.size(),
              (unsigned long long)golden.merged.fuzzer_stats.iterations);

  // Prepare the two interrupted state dirs from completed journaled runs.
  const fs::path snap_dir = root / "snapshot";
  const fs::path replay_dir = root / "replay";
  options.state_dir = snap_dir.string();
  options.snapshot_every_epochs = cadence;
  CampaignEngine("kvm", options).Run();
  options.state_dir = replay_dir.string();
  options.snapshot_every_epochs = 0;
  CampaignEngine("kvm", options).Run();

  // Copies for the cross-shard-mode identity runs, made before the
  // timed resumes consume the originals.
  const fs::path snap_proc = root / "snapshot-processes";
  const fs::path snap_sock = root / "snapshot-sockets";
  fs::copy(snap_dir, snap_proc, fs::copy_options::recursive);
  fs::copy(snap_dir, snap_sock, fs::copy_options::recursive);
  for (const fs::path& dir :
       {snap_dir, replay_dir, snap_proc, snap_sock}) {
    RewindCommitPoint(dir, committed);
  }

  const uint64_t snap_bytes = ReplayedBytes(snap_dir, horizon, committed);
  const uint64_t replay_bytes = ReplayedBytes(replay_dir, 0, committed);
  const uint64_t snap_dir_bytes = DirectoryBytes(snap_dir);
  const uint64_t replay_dir_bytes = DirectoryBytes(replay_dir);

  // The timed resumes (thread shards, the default transport).
  options.snapshot_every_epochs = cadence;
  options.state_dir = snap_dir.string();
  EngineResult snap_result;
  const double snap_s = TimeSeconds(
      [&] { snap_result = CampaignEngine("kvm", options).Run(); });
  options.snapshot_every_epochs = 0;
  options.state_dir = replay_dir.string();
  EngineResult replay_result;
  const double replay_s = TimeSeconds(
      [&] { replay_result = CampaignEngine("kvm", options).Run(); });
  const double speedup = snap_s > 0 ? replay_s / snap_s : 0.0;

  std::printf("  snapshot resume      %8.3f s  (replayed %llu epochs, "
              "%llu bytes)\n",
              snap_s, (unsigned long long)snap_result.journal.replayed_epochs,
              (unsigned long long)snap_bytes);
  std::printf("  replay-only resume   %8.3f s  (replayed %llu epochs, "
              "%llu bytes)\n",
              replay_s,
              (unsigned long long)replay_result.journal.replayed_epochs,
              (unsigned long long)replay_bytes);
  std::printf("  resume speedup       %7.1fx\n", speedup);
  std::printf("  state dir bytes      snapshot %llu   replay-only %llu\n",
              (unsigned long long)snap_dir_bytes,
              (unsigned long long)replay_dir_bytes);

  // Identity: the snapshot resume must land on the golden result in
  // every shard mode.
  int identical = SameResult(golden, snap_result) ? 1 : 0;
  options.snapshot_every_epochs = cadence;
  options.shard_mode = ShardMode::kProcesses;
  options.state_dir = snap_proc.string();
  identical += SameResult(golden, CampaignEngine("kvm", options).Run());
  options.shard_mode = ShardMode::kSockets;
  options.state_dir = snap_sock.string();
  identical += SameResult(golden, CampaignEngine("kvm", options).Run());
  std::printf("  bit-identical modes  %d/3%s\n", identical,
              SameResult(golden, replay_result) ? "" :
              "  (replay-only DIVERGED)");

  BenchJson json("state_resume", smoke);
  json.Metric("campaign_epochs", "epochs", static_cast<double>(epochs));
  json.Metric("golden_run_s", "s", golden_s);
  json.Metric("snapshot_resume_s", "s", snap_s);
  json.Metric("replay_resume_s", "s", replay_s);
  json.Metric("resume_speedup", "x", speedup);
  json.Metric("snapshot_replayed_epochs", "epochs",
              static_cast<double>(snap_result.journal.replayed_epochs));
  json.Metric("replay_replayed_epochs", "epochs",
              static_cast<double>(replay_result.journal.replayed_epochs));
  json.Metric("snapshot_replayed_bytes", "bytes",
              static_cast<double>(snap_bytes));
  json.Metric("replay_replayed_bytes", "bytes",
              static_cast<double>(replay_bytes));
  json.Metric("snapshot_state_dir_bytes", "bytes",
              static_cast<double>(snap_dir_bytes));
  json.Metric("replay_state_dir_bytes", "bytes",
              static_cast<double>(replay_dir_bytes));
  // 3 when thread, process, and socket resumes all matched the golden
  // run; anything less is non-positive or short of the baseline and
  // fails the JSON check.
  json.Metric("bit_identical_shard_modes", "ok",
              static_cast<double>(identical) *
                  (SameResult(golden, replay_result) ? 1.0 : 0.0));

  fs::remove_all(root);

  if (!json_path.empty()) {
    if (!json.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace neco

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") != 0 &&
        std::strncmp(argv[i], "--json=", 7) != 0) {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  return neco::RunBench(neco::ParseSmokeFlag(argc, argv),
                        neco::ParseJsonPathFlag(argc, argv));
}
