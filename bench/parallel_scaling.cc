// Parallel campaign scaling: iterations/sec and merged coverage for the
// sharded engine at 1/2/4/8 workers against SimKvm, at a fixed total
// iteration budget (pFSCK-style worker scaling of the checking loop).
//
// `--transport={inproc,process,socket}` picks the shard transport: thread
// shards over the in-proc queue (default), fork/exec'd process shards
// over pipes, or exec'd shard children dialing a loopback TCP listener —
// this binary registers the hidden --necofuzz-shard-child entrypoint, so
// process and socket modes spawn real exec'd children of this executable
// (socket children bootstrap purely from the hello/config handshake, the
// exact shape a remote launcher runs on another machine). Results are
// identical across transports by construction; the per-transport columns
// (wire bytes moved, queue depth, wait time) show what the medium costs.
//
// Three sections:
//  * NecoFuzz's default breadth-first mode (no corpus, so no cross-shard
//    syncing and no feedback frames — shards only meet in the pipeline),
//  * guided mode where shards exchange queue entries at every sample
//    boundary (the "imports" column),
//  * the merge-pipeline mode: a merge_batch sweep at a fixed worker
//    count reporting queue depth and worker idle time (publish + feedback
//    waits), the counters that show the many-core win once hardware
//    allows. Results are identical across batches by construction; only
//    the pipeline counters move.
//
// `--smoke` shrinks the budget and sweep so CI can exercise the pipeline
// path under optimization in seconds. `--json=PATH` writes the
// schema_version-1 result file (same shape as bench/hot_path's).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/engine.h"

namespace neco {
namespace {

uint64_t g_budget = 20000;
ShardMode g_shard_mode = ShardMode::kThreads;
BenchJson* g_json = nullptr;

CampaignOptions BaseOptions(int workers, bool coverage_guidance) {
  CampaignOptions options;
  options.arch = Arch::kIntel;
  options.iterations = g_budget;
  options.samples = 8;
  options.seed = 1;
  options.workers = workers;
  options.fuzzer.coverage_guidance = coverage_guidance;
  options.shard_mode = g_shard_mode;
  if (g_shard_mode != ShardMode::kThreads) {
    // Exercise the full fork/exec path: children are fresh processes of
    // this binary entering through MaybeRunShardChild (dialing the
    // loopback listener in socket mode).
    options.shard_exec_path = "/proc/self/exe";
  }
  return options;
}

double TransportWaitSeconds(const EngineResult& result) {
  return result.transport.publish_wait_seconds +
         result.pipeline.feedback_wait_seconds;
}

uint64_t TransportWireBytes(const EngineResult& result) {
  return result.transport.delta_bytes + result.transport.feedback_bytes;
}

void RunAt(int workers, bool coverage_guidance) {
  const CampaignOptions options = BaseOptions(workers, coverage_guidance);

  const auto start = std::chrono::steady_clock::now();
  const EngineResult result = CampaignEngine("kvm", options).Run();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf(
      "  %7d %12.0f %9.2f%% %9zu %10llu %8llu %8.1f %7zu %8.3f\n", workers,
      secs > 0 ? static_cast<double>(g_budget) / secs : 0.0,
      result.merged.final_percent, result.merged.covered_points,
      static_cast<unsigned long long>(result.merged.findings.size()),
      static_cast<unsigned long long>(result.corpus_imports),
      static_cast<double>(TransportWireBytes(result)) / 1024.0,
      result.transport.max_queue_depth, TransportWaitSeconds(result));
  if (g_json != nullptr) {
    const std::string suffix =
        std::string(coverage_guidance ? "_guided_w" : "_bf_w") +
        std::to_string(workers);
    g_json->Metric("iters_per_sec" + suffix, "iters/s",
                   secs > 0 ? static_cast<double>(g_budget) / secs : 0.0);
    g_json->Metric("coverage" + suffix, "%", result.merged.final_percent);
    g_json->Metric("wire_kb" + suffix, "KiB",
                   static_cast<double>(TransportWireBytes(result)) / 1024.0);
  }
}

void RunSection(const char* title, bool coverage_guidance,
                const std::vector<int>& worker_counts) {
  std::printf("\n%s\n", title);
  std::printf("  %7s %12s %10s %9s %10s %8s %8s %7s %8s\n", "workers",
              "iters/sec", "coverage", "#lines", "findings", "imports",
              "wire_kb", "qmax", "idle_s");
  for (int workers : worker_counts) {
    RunAt(workers, coverage_guidance);
  }
}

void RunMergeBatch(int workers, int merge_batch) {
  CampaignOptions options = BaseOptions(workers, true);
  options.merge_batch = merge_batch;

  const auto start = std::chrono::steady_clock::now();
  const EngineResult result = CampaignEngine("kvm", options).Run();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const TransportStats& t = result.transport;

  std::printf(
      "  %7d %12.0f %8llu %8llu %8.1f %7zu %7.2f %9.3f %9.3f %9.2f%%\n",
      merge_batch, secs > 0 ? static_cast<double>(g_budget) / secs : 0.0,
      static_cast<unsigned long long>(t.deltas),
      static_cast<unsigned long long>(result.pipeline.flushes),
      static_cast<double>(TransportWireBytes(result)) / 1024.0,
      t.max_queue_depth, t.avg_queue_depth, t.publish_wait_seconds,
      result.pipeline.feedback_wait_seconds, result.merged.final_percent);
  if (g_json != nullptr) {
    const std::string suffix = "_batch" + std::to_string(merge_batch);
    g_json->Metric("coverage" + suffix, "%", result.merged.final_percent);
    g_json->Metric("wire_kb" + suffix, "KiB",
                   static_cast<double>(TransportWireBytes(result)) / 1024.0);
  }
}

void RunMergeBatchSection(int workers, const std::vector<int>& batches) {
  std::printf(
      "\n[merge-pipeline mode: merge_batch sweep at %d workers, guided]\n",
      workers);
  std::printf("  %7s %12s %8s %8s %8s %7s %7s %9s %9s %10s\n", "batch",
              "iters/sec", "deltas", "flushes", "wire_kb", "qmax", "qavg",
              "pub_wait", "fb_wait", "coverage");
  for (int batch : batches) {
    RunMergeBatch(workers, batch);
  }
}

}  // namespace
}  // namespace neco

int main(int argc, char** argv) {
  // Process-mode shards re-enter this binary with the hidden shard-child
  // arguments; nothing below runs in that case.
  if (const int code = neco::MaybeRunShardChild(argc, argv); code >= 0) {
    return code;
  }
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--transport=process") == 0) {
      neco::g_shard_mode = neco::ShardMode::kProcesses;
    } else if (std::strcmp(argv[i], "--transport=socket") == 0) {
      neco::g_shard_mode = neco::ShardMode::kSockets;
    } else if (std::strcmp(argv[i], "--transport=inproc") == 0) {
      neco::g_shard_mode = neco::ShardMode::kThreads;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json=PATH] "
                   "[--transport={inproc,process,socket}]\n",
                   argv[0]);
      return 2;
    }
  }
  neco::BenchJson json("parallel_scaling", smoke);
  if (!json_path.empty()) {
    neco::g_json = &json;
  }
  if (smoke) {
    neco::g_budget = 2000;
  }
  const char* medium =
      neco::g_shard_mode == neco::ShardMode::kProcesses
          ? "process shards over pipes (fork/exec)"
          : neco::g_shard_mode == neco::ShardMode::kSockets
                ? "socket shards over loopback TCP (exec + dial)"
                : "thread shards over the in-proc queue";
  char title[256];
  std::snprintf(title, sizeof(title),
                "Parallel campaign scaling — SimKvm, Intel, fixed "
                "%llu-iteration budget\nsplit across worker shards "
                "(seed + worker_id each), delta merge pipeline,\n"
                "transport: %s%s",
                static_cast<unsigned long long>(neco::g_budget), medium,
                smoke ? " [smoke]" : "");
  neco::PrintHeader(title);
  const std::vector<int> workers =
      smoke ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  neco::RunSection("[breadth-first, the paper's default mode]", false,
                   workers);
  neco::RunSection("[coverage-guided, cross-shard corpus sync active]", true,
                   workers);
  neco::RunMergeBatchSection(4, smoke ? std::vector<int>{1, 8}
                                      : std::vector<int>{1, 8, 32});
  if (!json_path.empty()) {
    if (!json.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
