// Parallel campaign scaling: iterations/sec and merged coverage for the
// sharded engine at 1/2/4/8 workers against SimKvm, at a fixed total
// iteration budget (pFSCK-style worker scaling of the checking loop).
//
// Two sections: NecoFuzz's default breadth-first mode (no corpus, so no
// cross-shard syncing happens), and guided mode where shards exchange
// queue entries at every sample boundary (the "imports" column).
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/engine.h"

namespace neco {
namespace {

constexpr uint64_t kBudget = 20000;

void RunAt(int workers, bool coverage_guidance) {
  CampaignOptions options;
  options.arch = Arch::kIntel;
  options.iterations = kBudget;
  options.samples = 8;
  options.seed = 1;
  options.workers = workers;
  options.fuzzer.coverage_guidance = coverage_guidance;

  const auto start = std::chrono::steady_clock::now();
  const EngineResult result = CampaignEngine("kvm", options).Run();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf(
      "  %7d %12.0f %9.2f%% %9zu %10llu %8llu\n", workers,
      secs > 0 ? static_cast<double>(kBudget) / secs : 0.0,
      result.merged.final_percent, result.merged.covered_points,
      static_cast<unsigned long long>(result.merged.findings.size()),
      static_cast<unsigned long long>(result.corpus_imports));
}

void RunSection(const char* title, bool coverage_guidance) {
  std::printf("\n%s\n", title);
  std::printf("  %7s %12s %10s %9s %10s %8s\n", "workers", "iters/sec",
              "coverage", "#lines", "findings", "imports");
  for (int workers : {1, 2, 4, 8}) {
    RunAt(workers, coverage_guidance);
  }
}

}  // namespace
}  // namespace neco

int main() {
  neco::PrintHeader(
      "Parallel campaign scaling — SimKvm, Intel, fixed 20k-iteration "
      "budget\nsplit across worker shards (seed + worker_id each)");
  neco::RunSection("[breadth-first, the paper's default mode]", false);
  neco::RunSection("[coverage-guided, cross-shard corpus sync active]", true);
  return 0;
}
