// Reproduces Table 3 and Figure 4: the contribution of each VM-generator
// component, measured by disabling one component at a time (and all of
// them) at the 24-hour-equivalent budget.
//
// Paper reference (Intel / AMD at 24 h):
//   with ALL              84.7% / 74.2%
//   w/o VM exec harness   78.6% / 54.0%
//   w/o VM state validator 67.8% / 58.4%
//   w/o vCPU configurator 73.7% / 68.2%
//   w/o ALL               56.5% / 51.7%
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/necofuzz.h"

namespace neco {
namespace {

int g_runs = 5;
constexpr int kSamples = 8;
uint64_t g_budget = HoursToIters(24);

struct Mode {
  const char* name;
  bool harness;
  bool validator;
  bool configurator;
};

constexpr Mode kModes[] = {
    {"with ALL", true, true, true},
    {"w/o VM execution harness", false, true, true},
    {"w/o VM state validator", true, false, true},
    {"w/o vCPU configurator", true, true, false},
    {"w/o ALL", false, false, false},
};

void RunArch(Arch arch) {
  SimKvm kvm;
  std::printf("\n[%s]\n", std::string(ArchName(arch)).c_str());
  std::printf("  %-28s %8s   %s\n", "configuration", "cov@24h",
              "progression (Figure 4)");
  double with_all = 0.0;
  for (const Mode& mode : kModes) {
    std::vector<CoverageSample> series;
    const MultiRunStats stats = MedianOverRuns(g_runs, [&](uint64_t seed) {
      CampaignOptions options;
      options.arch = arch;
      options.iterations = g_budget;
      options.samples = kSamples;
      options.seed = seed;
      options.agent.use_harness = mode.harness;
      options.agent.use_validator = mode.validator;
      options.agent.use_configurator = mode.configurator;
      const CampaignResult result =
          CampaignEngine(kvm, options).Run().merged;
      if (seed == 1) {
        series = result.series;
      }
      return result.final_percent;
    });
    if (std::string(mode.name) == "with ALL") {
      with_all = stats.median;
    }
    std::printf("  %-28s %7.1f%%  ", mode.name, stats.median);
    for (const CoverageSample& sample : series) {
      std::printf(" %5.1f", sample.percent);
    }
    if (with_all > 0.0 && std::string(mode.name) != "with ALL") {
      std::printf("   (-%.1f pp)", with_all - stats.median);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace neco

int main(int argc, char** argv) {
  if (neco::ParseSmokeFlag(argc, argv)) {
    // --smoke (CI): shrink runs and budget so the bench exercises the full
    // code path in seconds rather than reproducing the paper's medians.
    neco::g_runs = 2;
    neco::g_budget = neco::HoursToIters(1);
  }

  neco::PrintHeader(
      "Table 3 / Figure 4 — component ablation at the 24h-equivalent "
      "budget\n(median of 5 runs; every component must contribute: paper "
      "drops of 6.1-20.2 pp)");
  neco::RunArch(neco::Arch::kIntel);
  neco::RunArch(neco::Arch::kAmd);
  return 0;
}
