#!/usr/bin/env python3
"""Validate a bench/hot_path JSON emission against the checked-in baseline.

Usage: check_bench_json.py BASELINE.json CURRENT.json [--max-regression X]

Two classes of check, with different severity:

  * Schema drift is FATAL (exit 1): wrong/missing schema_version, metric
    sets that do not match the baseline's, unit changes, non-finite or
    non-positive values. These mean the bench and its baseline no longer
    describe the same measurement, which silently invalidates every
    number in README/ROADMAP.

  * Performance regression is a REPORT, not a failure (exit 0): CI
    machines are noisy and the smoke run uses a reduced budget, so a
    ratio against the full-run baseline is advisory. Any metric slower
    than --max-regression (default 10x) is printed so a human can look,
    but the step stays green.

Speedup-style metrics (unit "x") and size metrics (unit "bytes") are
compared in the appropriate direction; throughput ("MB/s") regresses
downward, latency ("ns") regresses upward.
"""

import argparse
import json
import math
import sys

FATAL = 1

# unit -> True if larger is better (throughput/speedup), False if smaller
# is better (latency). Units not listed (e.g. "bytes") are informational
# and only schema-checked.
DIRECTION = {
    "ns": False,
    "MB/s": True,
    "x": True,
    "execs/s": True,
}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"FATAL: cannot load {path}: {err}")
        sys.exit(FATAL)


def check_schema(doc, path):
    errors = []
    if doc.get("schema_version") != 1:
        errors.append(f"{path}: schema_version must be 1, got "
                      f"{doc.get('schema_version')!r}")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        errors.append(f"{path}: missing bench name")
    if not isinstance(doc.get("smoke"), bool):
        errors.append(f"{path}: smoke must be a boolean")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        errors.append(f"{path}: metrics must be a non-empty list")
        return errors, {}
    table = {}
    for m in metrics:
        name = m.get("name")
        unit = m.get("unit")
        value = m.get("value")
        if not isinstance(name, str) or not name:
            errors.append(f"{path}: metric with missing name: {m!r}")
            continue
        if name in table:
            errors.append(f"{path}: duplicate metric {name}")
        if not isinstance(unit, str) or not unit:
            errors.append(f"{path}: {name}: missing unit")
        if (not isinstance(value, (int, float)) or isinstance(value, bool)
                or not math.isfinite(value) or value <= 0):
            errors.append(f"{path}: {name}: value must be a finite positive "
                          f"number, got {value!r}")
            continue
        table[name] = (unit, float(value))
    return errors, table


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regression", type=float, default=10.0,
                        help="advisory ratio threshold (default 10x)")
    args = parser.parse_args()

    base_doc = load(args.baseline)
    cur_doc = load(args.current)

    errors, base = check_schema(base_doc, args.baseline)
    cur_errors, cur = check_schema(cur_doc, args.current)
    errors += cur_errors

    if base_doc.get("bench") != cur_doc.get("bench"):
        errors.append(f"bench name mismatch: {base_doc.get('bench')!r} vs "
                      f"{cur_doc.get('bench')!r}")

    # Metric names are budget-independent by design: a smoke run must
    # produce exactly the metric set the full-run baseline recorded.
    for name in sorted(set(base) - set(cur)):
        errors.append(f"metric {name} present in baseline, missing from "
                      f"current run")
    for name in sorted(set(cur) - set(base)):
        errors.append(f"metric {name} emitted by current run but absent "
                      f"from the baseline — regenerate {args.baseline}")
    for name in sorted(set(base) & set(cur)):
        if base[name][0] != cur[name][0]:
            errors.append(f"{name}: unit changed {base[name][0]!r} -> "
                          f"{cur[name][0]!r}")

    if errors:
        for e in errors:
            print(f"FATAL: {e}")
        print(f"\n{len(errors)} schema error(s); bench and baseline no "
              f"longer agree.")
        sys.exit(FATAL)

    regressions = []
    for name in sorted(base):
        unit, base_v = base[name]
        _, cur_v = cur[name]
        if unit not in DIRECTION:
            continue
        ratio = base_v / cur_v if DIRECTION[unit] else cur_v / base_v
        if ratio > args.max_regression:
            regressions.append((name, unit, base_v, cur_v, ratio))

    print(f"OK: {len(cur)} metrics match the baseline schema "
          f"(smoke={cur_doc['smoke']}).")
    if regressions:
        print(f"\nADVISORY: {len(regressions)} metric(s) more than "
              f"{args.max_regression:g}x worse than the checked-in "
              f"baseline (noisy CI + smoke budgets make this "
              f"non-fatal; investigate if it persists):")
        for name, unit, base_v, cur_v, ratio in regressions:
            print(f"  {name}: baseline {base_v:g} {unit}, "
                  f"current {cur_v:g} {unit} ({ratio:.1f}x worse)")
    sys.exit(0)


if __name__ == "__main__":
    main()
