// necolint — the repo's invariant checker.
//
// clang-tidy and -Wthread-safety see one translation unit at a time; the
// invariants below are *repo-wide* contracts that no general-purpose tool
// knows about, so they get their own scanner. It runs as a ctest and as a
// CI step over src/ (tests may deliberately violate rules to prove error
// paths; production code may not).
//
// Rules (each has a seeded-violation fixture in tools/necolint/testdata
// proving it fires — see tests/lint_test.cc):
//
//   wire-negative-test   Every record type with a Decode() codec in
//                        src/core/wire.h must appear in a wire_test.cc
//                        TEST whose name marks it as a rejection test
//                        (Truncat/Corrupt/Reject/NeverCrash/Invalid).
//                        A codec whose only tests are round-trips will
//                        happily accept torn pipe frames and bad disk
//                        sectors.
//   raw-strerror         std::strerror writes a static buffer; two
//                        worker threads formatting errors concurrently
//                        race. Use neco::SafeStrerror
//                        (src/support/errno_util.h). gai_strerror (no
//                        errno, thread-safe on glibc) and the strerror_r
//                        inside the wrapper itself are exempt.
//   fd-cloexec           The engine fork/execs shard children; any
//                        descriptor created without close-on-exec leaks
//                        into them. ::pipe/::accept/::dup/::creat are
//                        banned outright (pipe2/accept4/fcntl-based
//                        alternatives exist); ::socket and ::open calls
//                        must name SOCK_CLOEXEC / O_CLOEXEC in the same
//                        statement.
//   fsync-outside-commit fsync placement IS the crash-consistency
//                        argument (see src/core/state/commit.cc). A
//                        stray fsync elsewhere means durable-state logic
//                        leaked out of the commit primitive, where no
//                        torn-write analysis covers it.
//   state-atomic-write   Durable-state files are crash-consistent only
//                        because every write is AtomicWriteFile's
//                        temp+rename+fsync sequence. Under
//                        src/core/state/ (commit.cc itself exempt),
//                        ofstream/fopen are banned and ::open may only
//                        name O_RDONLY — a direct write path there has
//                        no torn-write analysis behind it.
//   wire-buffer-hygiene  Raw new[] is banned in src/ (std::vector /
//                        unique_ptr exist), and memcpy in src/core/ is
//                        confined to wire.cc's codec helpers: hand-rolled
//                        byte copies around wire buffers are how frame
//                        corruption bugs start.
//   bench-smoke          Every bench binary under bench/ must support
//                        --smoke (a seconds-scale budget), so CI can
//                        exercise every bench's code path on each push
//                        instead of only the full multi-minute runs.
//   snapshot-equivalence A class overriding Hypervisor::SnapshotVm must
//                        be pinned by an equivalence test: some tests/
//                        *.cc file has to reference the class name
//                        together with both SnapshotVm and RestoreVm.
//                        Restore-vs-cold-boot bit-equivalence is the
//                        load-bearing contract of the snapshot cache —
//                        an unpinned override is how a subtly-stateful
//                        restore silently corrupts campaign determinism.
//
// The scanner is textual by design: it strips comments and string
// literals, then pattern-matches. That keeps it dependency-free (no
// libclang in the build image) and fast enough to run on every build.
// Cost: it cannot see through macros or match C++ semantically — rules
// are written so the textual form IS the contract (e.g. syscalls are
// matched in their ::-qualified spelling, the repo's idiom for them).

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;  // Relative to the scanned root.
  size_t line = 0;
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string rel_path;   // Forward-slash, relative to root.
  std::string code;       // Comments and string/char literals blanked.
  std::vector<size_t> line_starts;  // Offset of each line in `code`.
};

size_t LineOf(const SourceFile& file, size_t offset) {
  size_t line = 1;
  for (size_t start : file.line_starts) {
    if (start > offset) {
      break;
    }
    ++line;
  }
  return line - 1 == 0 ? 1 : line - 1;
}

// Blanks comments, string literals, and char literals with spaces so
// rule patterns never fire inside them; newlines are preserved so line
// numbers survive. Handles //, /* */, "..." with escapes, '...' with
// escapes, and R"delim(...)delim" raw strings.
std::string StripCommentsAndStrings(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  const size_t n = text.size();
  auto blank = [&](char c) { out.push_back(c == '\n' ? '\n' : ' '); };
  while (i < n) {
    const char c = text[i];
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') {
        blank(text[i++]);
      }
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      blank(text[i++]);
      blank(text[i++]);
      while (i < n && !(text[i] == '*' && i + 1 < n && text[i + 1] == '/')) {
        blank(text[i++]);
      }
      if (i < n) {
        blank(text[i++]);
        blank(text[i++]);
      }
    } else if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
               (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                               text[i - 1])) &&
                           text[i - 1] != '_'))) {
      // Raw string: R"delim( ... )delim"
      size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') {
        delim.push_back(text[j++]);
      }
      const std::string closer = ")" + delim + "\"";
      const size_t end = text.find(closer, j);
      const size_t stop = end == std::string::npos ? n : end + closer.size();
      while (i < stop) {
        blank(text[i++]);
      }
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      blank(text[i++]);
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          blank(text[i++]);
        }
        blank(text[i++]);
      }
      if (i < n) {
        blank(text[i++]);
      }
    } else {
      out.push_back(c);
      ++i;
    }
  }
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Finds `needle` at an identifier boundary on the left (so "strerror"
// does not match inside "SafeStrerror"), starting at `from`.
size_t FindWordStart(const std::string& haystack, const std::string& needle,
                     size_t from) {
  size_t pos = from;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || !IsIdentChar(haystack[pos - 1])) {
      return pos;
    }
    pos += needle.size();
  }
  return std::string::npos;
}

bool HasSuffix(const std::string& value, const std::string& suffix) {
  return value.size() >= suffix.size() &&
         value.compare(value.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

std::vector<SourceFile> LoadSources(const fs::path& root) {
  std::vector<SourceFile> files;
  const fs::path src = root / "src";
  if (!fs::exists(src)) {
    return files;
  }
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    SourceFile file;
    file.rel_path = fs::relative(entry.path(), root).generic_string();
    file.code = StripCommentsAndStrings(text.str());
    file.line_starts.push_back(0);
    for (size_t i = 0; i < file.code.size(); ++i) {
      if (file.code[i] == '\n') {
        file.line_starts.push_back(i + 1);
      }
    }
    files.push_back(std::move(file));
  }
  // Deterministic report order regardless of directory iteration order.
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel_path < b.rel_path;
            });
  return files;
}

const SourceFile* FindFile(const std::vector<SourceFile>& files,
                           const std::string& rel_path) {
  for (const SourceFile& file : files) {
    if (file.rel_path == rel_path) {
      return &file;
    }
  }
  return nullptr;
}

// --- Rule: wire-negative-test -------------------------------------------

bool NameMarksRejectionTest(const std::string& test_name) {
  for (const char* marker : {"Truncat", "Corrupt", "Reject", "NeverCrash",
                             "Invalid", "MustAgree"}) {
    if (test_name.find(marker) != std::string::npos) {
      return true;
    }
  }
  return false;
}

void CheckWireNegativeTests(const fs::path& root,
                            const std::vector<SourceFile>& files,
                            std::vector<Violation>* out) {
  const SourceFile* wire = FindFile(files, "src/core/wire.h");
  if (wire == nullptr) {
    return;  // Fixture roots without a wire layer skip the rule.
  }

  // Collect the record names: `bool Decode(const uint8_t* ..., Name* out)`.
  struct RecordDecl {
    std::string name;
    size_t line;
  };
  std::vector<RecordDecl> records;
  size_t pos = 0;
  while ((pos = FindWordStart(wire->code, "Decode", pos)) !=
         std::string::npos) {
    const size_t open = wire->code.find('(', pos);
    if (open == std::string::npos) {
      break;
    }
    const size_t close = wire->code.find(')', open);
    if (close == std::string::npos) {
      break;
    }
    const std::string params = wire->code.substr(open + 1, close - open - 1);
    // Only the raw-byte overloads define a codec; the Buffer convenience
    // overload and the templated helper reuse them.
    if (params.find("uint8_t") != std::string::npos) {
      const size_t star = params.rfind('*');
      if (star != std::string::npos && star > 0) {
        size_t end = star;
        while (end > 0 && std::isspace(static_cast<unsigned char>(
                              params[end - 1]))) {
          --end;
        }
        size_t begin = end;
        while (begin > 0 && IsIdentChar(params[begin - 1])) {
          --begin;
        }
        const std::string name = params.substr(begin, end - begin);
        if (!name.empty() && name != "uint8_t" &&
            std::isupper(static_cast<unsigned char>(name[0]))) {
          bool seen = false;
          for (const RecordDecl& record : records) {
            seen = seen || record.name == name;
          }
          if (!seen) {
            records.push_back({name, LineOf(*wire, pos)});
          }
        }
      }
    }
    pos = close;
  }

  // Split tests/wire_test.cc into TEST blocks.
  const fs::path test_path = root / "tests" / "wire_test.cc";
  std::ifstream in(test_path, std::ios::binary);
  if (!in) {
    for (const RecordDecl& record : records) {
      out->push_back({"src/core/wire.h", record.line, "wire-negative-test",
                      record.name +
                          ": tests/wire_test.cc is missing, so no codec "
                          "has rejection coverage"});
    }
    return;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::string tests = StripCommentsAndStrings(text.str());

  struct TestBlock {
    std::string name;
    std::string body;
  };
  std::vector<TestBlock> blocks;
  size_t t = 0;
  while ((t = FindWordStart(tests, "TEST", t)) != std::string::npos) {
    const size_t open = tests.find('(', t);
    const size_t comma = tests.find(',', open);
    const size_t close = tests.find(')', comma);
    if (open == std::string::npos || comma == std::string::npos ||
        close == std::string::npos) {
      break;
    }
    std::string name = tests.substr(comma + 1, close - comma - 1);
    name.erase(0, name.find_first_not_of(" \t\n"));
    name.erase(name.find_last_not_of(" \t\n") + 1);
    const size_t next = FindWordStart(tests, "TEST", close);
    blocks.push_back({name, tests.substr(close, (next == std::string::npos
                                                     ? tests.size()
                                                     : next) -
                                                    close)});
    t = close;
  }

  for (const RecordDecl& record : records) {
    bool covered = false;
    for (const TestBlock& block : blocks) {
      if (NameMarksRejectionTest(block.name) &&
          FindWordStart(block.body, record.name, 0) != std::string::npos) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      out->push_back(
          {"src/core/wire.h", record.line, "wire-negative-test",
           record.name +
               " has a Decode codec but no truncation/corruption "
               "rejection test in tests/wire_test.cc (add it to a TEST "
               "whose name says Truncat/Corrupt/Reject/NeverCrash)"});
    }
  }
}

// --- Rule: raw-strerror --------------------------------------------------

void CheckRawStrerror(const std::vector<SourceFile>& files,
                      std::vector<Violation>* out) {
  for (const SourceFile& file : files) {
    if (HasSuffix(file.rel_path, "support/errno_util.h") ||
        HasSuffix(file.rel_path, "support/errno_util.cc")) {
      continue;  // The thread-safe wrapper itself.
    }
    size_t pos = 0;
    while ((pos = FindWordStart(file.code, "strerror", pos)) !=
           std::string::npos) {
      const size_t after = pos + std::string("strerror").size();
      // strerror_r / strerror_l are the thread-safe primitives;
      // gai_strerror has no shared buffer for errno-style use here.
      const bool is_variant = after < file.code.size() &&
                              IsIdentChar(file.code[after]);
      const bool is_gai = pos >= 4 &&
                          file.code.compare(pos - 4, 4, "gai_") == 0;
      if (!is_variant && !is_gai) {
        out->push_back({file.rel_path, LineOf(file, pos), "raw-strerror",
                        "std::strerror is not thread-safe; use "
                        "neco::SafeStrerror (src/support/errno_util.h)"});
      }
      pos = after;
    }
  }
}

// --- Rule: fd-cloexec ----------------------------------------------------

// The statement containing `offset`: from the previous ';', '{' or '}'
// to the next ';'.
std::string StatementAround(const std::string& code, size_t offset) {
  size_t begin = code.find_last_of(";{}", offset);
  begin = begin == std::string::npos ? 0 : begin + 1;
  size_t end = code.find(';', offset);
  end = end == std::string::npos ? code.size() : end;
  return code.substr(begin, end - begin);
}

void CheckCloexec(const std::vector<SourceFile>& files,
                  std::vector<Violation>* out) {
  struct BannedCall {
    const char* pattern;
    const char* message;
  };
  const BannedCall banned[] = {
      {"::pipe(", "::pipe leaks descriptors into exec'd shard children; "
                  "use ::pipe2(fds, O_CLOEXEC)"},
      {"::accept(", "::accept leaks the connection into exec'd shard "
                    "children; use ::accept4(..., SOCK_CLOEXEC)"},
      {"::dup(", "::dup clears FD_CLOEXEC; use ::fcntl(fd, F_DUPFD_CLOEXEC, "
                 "0) or ::dup3"},
      {"::creat(", "::creat cannot take O_CLOEXEC; use ::open(..., O_CREAT "
                   "| O_CLOEXEC, ...)"},
  };
  struct FlagCall {
    const char* pattern;
    const char* flag;
    const char* message;
  };
  const FlagCall flagged[] = {
      {"::socket(", "SOCK_CLOEXEC",
       "::socket without SOCK_CLOEXEC leaks into exec'd shard children"},
      {"::open(", "O_CLOEXEC",
       "::open without O_CLOEXEC leaks into exec'd shard children"},
  };
  for (const SourceFile& file : files) {
    for (const BannedCall& call : banned) {
      size_t pos = 0;
      while ((pos = file.code.find(call.pattern, pos)) != std::string::npos) {
        out->push_back(
            {file.rel_path, LineOf(file, pos), "fd-cloexec", call.message});
        pos += 1;
      }
    }
    for (const FlagCall& call : flagged) {
      size_t pos = 0;
      while ((pos = file.code.find(call.pattern, pos)) != std::string::npos) {
        if (StatementAround(file.code, pos).find(call.flag) ==
            std::string::npos) {
          out->push_back(
              {file.rel_path, LineOf(file, pos), "fd-cloexec", call.message});
        }
        pos += 1;
      }
    }
  }
}

// --- Rule: fsync-outside-commit -----------------------------------------

void CheckFsync(const std::vector<SourceFile>& files,
                std::vector<Violation>* out) {
  for (const SourceFile& file : files) {
    if (HasSuffix(file.rel_path, "core/state/commit.cc")) {
      continue;
    }
    for (const char* call : {"fsync", "fdatasync"}) {
      size_t pos = 0;
      while ((pos = FindWordStart(file.code, call, pos)) !=
             std::string::npos) {
        const size_t after = pos + std::string(call).size();
        if (after < file.code.size() && !IsIdentChar(file.code[after])) {
          out->push_back(
              {file.rel_path, LineOf(file, pos), "fsync-outside-commit",
               "durability lives in src/core/state/commit.cc "
               "(AtomicWriteFile/FsyncFd); a stray fsync has no "
               "crash-consistency analysis behind it"});
        }
        pos = after;
      }
    }
  }
}

// --- Rule: state-atomic-write --------------------------------------------

void CheckStateAtomicWrite(const std::vector<SourceFile>& files,
                           std::vector<Violation>* out) {
  for (const SourceFile& file : files) {
    if (file.rel_path.rfind("src/core/state/", 0) != 0 ||
        HasSuffix(file.rel_path, "core/state/commit.cc")) {
      continue;  // The atomic write primitive is the one legitimate home.
    }
    // Stream/stdio writers cannot express temp+rename+fsync at all, so
    // their mere presence is a write path escaping the commit primitive.
    for (const char* call : {"ofstream", "fopen"}) {
      size_t pos = 0;
      while ((pos = FindWordStart(file.code, call, pos)) !=
             std::string::npos) {
        out->push_back(
            {file.rel_path, LineOf(file, pos), "state-atomic-write",
             std::string(call) +
                 " under src/core/state/ bypasses AtomicWriteFile "
                 "(src/core/state/commit.h); durable-state writes must "
                 "use the temp+rename+fsync commit primitive"});
        pos += std::string(call).size();
      }
    }
    // ::open may only read: a creating, truncating, or writable mode is
    // a file-creating write outside the crash-consistency analysis.
    size_t pos = 0;
    while ((pos = file.code.find("::open(", pos)) != std::string::npos) {
      if (StatementAround(file.code, pos).find("O_RDONLY") ==
          std::string::npos) {
        out->push_back(
            {file.rel_path, LineOf(file, pos), "state-atomic-write",
             "::open under src/core/state/ must be O_RDONLY; "
             "file-creating writes go through AtomicWriteFile "
             "(src/core/state/commit.h)"});
      }
      pos += 1;
    }
  }
}

// --- Rule: wire-buffer-hygiene ------------------------------------------

void CheckBufferHygiene(const std::vector<SourceFile>& files,
                        std::vector<Violation>* out) {
  for (const SourceFile& file : files) {
    // Raw new[] anywhere in src/.
    size_t pos = 0;
    while ((pos = FindWordStart(file.code, "new", pos)) !=
           std::string::npos) {
      const size_t after = pos + 3;
      if (after < file.code.size() && !IsIdentChar(file.code[after])) {
        // `new Type[...]` — scan forward over the type name to a '['
        // before any '(', ';' or '{'.
        size_t scan = after;
        while (scan < file.code.size() &&
               (IsIdentChar(file.code[scan]) ||
                std::isspace(static_cast<unsigned char>(file.code[scan])) ||
                file.code[scan] == ':' || file.code[scan] == '<' ||
                file.code[scan] == '>')) {
          ++scan;
        }
        if (scan < file.code.size() && file.code[scan] == '[') {
          out->push_back({file.rel_path, LineOf(file, pos),
                          "wire-buffer-hygiene",
                          "raw new[] is banned in src/; use std::vector "
                          "or std::make_unique<T[]>"});
        }
      }
      pos = after;
    }

    // memcpy in src/core/ outside the wire codec.
    if (file.rel_path.rfind("src/core/", 0) == 0 &&
        !HasSuffix(file.rel_path, "core/wire.cc")) {
      size_t mpos = 0;
      while ((mpos = FindWordStart(file.code, "memcpy", mpos)) !=
             std::string::npos) {
        out->push_back({file.rel_path, LineOf(file, mpos),
                        "wire-buffer-hygiene",
                        "memcpy in src/core/ is confined to wire.cc's "
                        "codec helpers; use the wire append/read helpers "
                        "instead of hand-rolled byte copies"});
        mpos += 6;
      }
    }
  }
}

// --- Rule: bench-smoke ---------------------------------------------------

// Every bench binary must take --smoke. The flag's spelling lives inside
// string literals (argv comparisons, usage lines), which the shared
// scanner blanks — so this rule reads the RAW file text instead of the
// stripped SourceFile form.
void CheckBenchSmoke(const fs::path& root, std::vector<Violation>* out) {
  const fs::path bench = root / "bench";
  if (!fs::exists(bench)) {
    return;  // Fixture roots without benches skip the rule.
  }
  std::vector<std::string> missing;
  for (const auto& entry : fs::recursive_directory_iterator(bench)) {
    if (!entry.is_regular_file() ||
        entry.path().extension().string() != ".cc") {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    if (text.str().find("--smoke") == std::string::npos) {
      missing.push_back(fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(missing.begin(), missing.end());
  for (const std::string& rel : missing) {
    out->push_back({rel, 1, "bench-smoke",
                    "bench binaries must support a --smoke flag (shrunk "
                    "seconds-scale budget) so CI can exercise them on "
                    "every push"});
  }
}

// --- Rule: snapshot-equivalence ------------------------------------------

// The class name owning the declaration at `offset`: the identifier after
// the nearest preceding `class` keyword (skipping `enum class`).
std::string EnclosingClassName(const SourceFile& file, size_t offset) {
  size_t best = std::string::npos;
  size_t pos = 0;
  while ((pos = FindWordStart(file.code, "class", pos)) !=
         std::string::npos) {
    if (pos > offset) {
      break;
    }
    // `enum class X` declares a scoped enum, not a class.
    size_t before = pos;
    while (before > 0 && std::isspace(static_cast<unsigned char>(
                             file.code[before - 1]))) {
      --before;
    }
    const bool is_enum =
        before >= 4 && file.code.compare(before - 4, 4, "enum") == 0;
    if (!is_enum) {
      best = pos;
    }
    pos += 5;
  }
  if (best == std::string::npos) {
    return std::string();
  }
  size_t begin = best + 5;
  while (begin < file.code.size() &&
         std::isspace(static_cast<unsigned char>(file.code[begin]))) {
    ++begin;
  }
  size_t end = begin;
  while (end < file.code.size() && IsIdentChar(file.code[end])) {
    ++end;
  }
  return file.code.substr(begin, end - begin);
}

void CheckSnapshotEquivalence(const fs::path& root,
                              const std::vector<SourceFile>& files,
                              std::vector<Violation>* out) {
  struct OverrideDecl {
    std::string file;
    size_t line;
    std::string class_name;
  };
  std::vector<OverrideDecl> decls;
  for (const SourceFile& file : files) {
    size_t pos = 0;
    while ((pos = FindWordStart(file.code, "SnapshotVm", pos)) !=
           std::string::npos) {
      // Only override declarations: the base-class virtual (no `override`
      // in its statement) and call sites don't obligate a test.
      if (StatementAround(file.code, pos).find("override") !=
          std::string::npos) {
        const std::string class_name = EnclosingClassName(file, pos);
        bool seen = false;
        for (const OverrideDecl& decl : decls) {
          seen = seen || (decl.class_name == class_name &&
                          decl.file == file.rel_path);
        }
        if (!class_name.empty() && !seen) {
          decls.push_back({file.rel_path, LineOf(file, pos), class_name});
        }
      }
      pos += std::string("SnapshotVm").size();
    }
  }
  if (decls.empty()) {
    return;
  }

  // A decl is covered when one tests/*.cc references the class name and
  // both snapshot hooks (the equivalence suite by construction).
  std::vector<std::string> test_sources;
  const fs::path tests = root / "tests";
  if (fs::exists(tests)) {
    for (const auto& entry : fs::recursive_directory_iterator(tests)) {
      if (!entry.is_regular_file() ||
          entry.path().extension().string() != ".cc") {
        continue;
      }
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream text;
      text << in.rdbuf();
      test_sources.push_back(StripCommentsAndStrings(text.str()));
    }
  }
  for (const OverrideDecl& decl : decls) {
    bool covered = false;
    for (const std::string& source : test_sources) {
      if (FindWordStart(source, decl.class_name, 0) != std::string::npos &&
          FindWordStart(source, "SnapshotVm", 0) != std::string::npos &&
          FindWordStart(source, "RestoreVm", 0) != std::string::npos) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      out->push_back(
          {decl.file, decl.line, "snapshot-equivalence",
           decl.class_name +
               " overrides SnapshotVm but no tests/*.cc references the "
               "class together with SnapshotVm and RestoreVm; pin the "
               "restore-vs-cold-boot equivalence in the snapshot suite"});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: necolint <repo-root>\n"
                 "Scans <repo-root>/src against the repo invariants; see "
                 "the header comment for the rule list.\n";
    return 2;
  }
  const fs::path root = argv[1];
  if (!fs::exists(root / "src")) {
    std::cerr << "necolint: no src/ under " << root << "\n";
    return 2;
  }

  const std::vector<SourceFile> files = LoadSources(root);
  std::vector<Violation> violations;
  CheckWireNegativeTests(root, files, &violations);
  CheckRawStrerror(files, &violations);
  CheckCloexec(files, &violations);
  CheckFsync(files, &violations);
  CheckStateAtomicWrite(files, &violations);
  CheckBufferHygiene(files, &violations);
  CheckBenchSmoke(root, &violations);
  CheckSnapshotEquivalence(root, files, &violations);

  for (const Violation& v : violations) {
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  if (!violations.empty()) {
    std::cout << violations.size() << " violation"
              << (violations.size() == 1 ? "" : "s") << "\n";
    return 1;
  }
  return 0;
}
