// Fixture: hand-rolled buffer handling in src/core/ outside wire.cc.
// Two seeded wire-buffer-hygiene violations: a raw new[] and a memcpy.
#include <cstdint>
#include <cstring>

uint8_t* CopyFrame(const uint8_t* data, unsigned size) {
  uint8_t* buffer = new uint8_t[size];  // Seeded violation: raw new[].
  std::memcpy(buffer, data, size);      // Seeded violation: memcpy.
  return buffer;
}
