// Fixture: two codecs, only one with rejection coverage. The lint must
// flag UncoveredRecord and accept CoveredRecord.
#ifndef FIXTURE_WIRE_H_
#define FIXTURE_WIRE_H_

#include <cstddef>
#include <cstdint>

struct CoveredRecord {
  uint64_t value = 0;
};
struct UncoveredRecord {
  uint64_t value = 0;
};

bool Decode(const uint8_t* data, size_t size, CoveredRecord* out);
bool Decode(const uint8_t* data, size_t size, UncoveredRecord* out);

#endif  // FIXTURE_WIRE_H_
