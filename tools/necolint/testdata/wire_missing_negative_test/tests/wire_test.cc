// Fixture test file: CoveredRecord has a truncation test; UncoveredRecord
// only round-trips (the gap the lint exists to catch).
#include "src/core/wire.h"

#define TEST(suite, name) void suite##_##name()

TEST(WireTest, CoveredRecordEveryTruncationIsRejected) {
  CoveredRecord out;
  Decode(nullptr, 0, &out);
}

TEST(WireTest, UncoveredRecordRoundTripIsIdentity) {
  UncoveredRecord out;
  Decode(nullptr, 0, &out);
}
