// Fixture: descriptor creation without close-on-exec. Four seeded
// fd-cloexec violations (::pipe, bare ::open, bare ::socket, ::dup) and
// two compliant calls that must NOT fire.
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

int MakeFds() {
  int fds[2];
  if (::pipe(fds) != 0) {  // Seeded violation: banned call.
    return -1;
  }
  const int plain = ::open("/dev/null", O_RDONLY);  // Seeded violation.
  const int sock =
      ::socket(AF_INET, SOCK_STREAM, 0);  // Seeded violation.
  const int copy = ::dup(plain);          // Seeded violation.

  // Compliant: flag named in the same statement, even across lines.
  const int good_open = ::open("/dev/null",
                               O_RDONLY | O_CLOEXEC);
  const int good_sock = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  return fds[0] + plain + sock + copy + good_open + good_sock;
}
