// Fixture: an fsync outside src/core/state/commit.cc — durable-state
// logic leaking out of the commit primitive.
#include <unistd.h>

bool Flush(int fd) {
  return ::fsync(fd) == 0;  // Seeded violation: fsync-outside-commit.
}
