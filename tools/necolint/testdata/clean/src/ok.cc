// Fixture: a file every rule accepts — the lint must exit 0 on this root.
#include <fcntl.h>
#include <string>
#include <vector>

// Mentions that must not fire: strerror, ::pipe(, fsync, memcpy, new[]
// all live in comments or string literals only.
const char* kDoc = "call strerror via SafeStrerror; never ::pipe( or fsync";

std::vector<unsigned char> MakeBuffer(unsigned size) {
  std::vector<unsigned char> buffer(size);
  const int fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  buffer[0] = fd >= 0 ? 1 : 0;
  return buffer;
}
