// Seeded state-atomic-write violations: a durable-state file written
// through ofstream and through a writable ::open, both bypassing
// AtomicWriteFile. The O_RDONLY open below is the one allowed shape.
#include <fcntl.h>

#include <fstream>
#include <string>

namespace neco {

void PersistIndexUnsafely(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);  // Fires.
  out << "index";
}

int CreateStateFileUnsafely(const char* path) {
  return ::open(path, O_WRONLY | O_CREAT | O_CLOEXEC, 0644);  // Fires.
}

int ReadStateFile(const char* path) {
  return ::open(path, O_RDONLY | O_CLOEXEC);  // Allowed: read-only.
}

}  // namespace neco
