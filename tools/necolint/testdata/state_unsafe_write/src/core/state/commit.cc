// The commit primitive itself is exempt: this is where the temp file is
// created, written, fsync'd, and renamed over the target.
#include <fcntl.h>

namespace neco {

int OpenTempForAtomicWrite(const char* path) {
  return ::open(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
}

}  // namespace neco
