// Fixture: two backends override the snapshot hooks; only CoveredHv is
// referenced by an equivalence test, so UncoveredHv must be flagged.
#ifndef FIXTURE_SIMS_H_
#define FIXTURE_SIMS_H_

struct VmSnapshot {};

class HypervisorBase {
 public:
  virtual ~HypervisorBase() = default;
  virtual VmSnapshot SnapshotVm() { return {}; }
  virtual void RestoreVm(const VmSnapshot& snapshot) {}
};

class CoveredHv : public HypervisorBase {
 public:
  VmSnapshot SnapshotVm() override;
  void RestoreVm(const VmSnapshot& snapshot) override;
};

class UncoveredHv : public HypervisorBase {
 public:
  VmSnapshot SnapshotVm() override;
  void RestoreVm(const VmSnapshot& snapshot) override;
};

#endif  // FIXTURE_SIMS_H_
