// Equivalence coverage for CoveredHv only.
#include "src/hv/sims.h"

void PinCoveredHv() {
  CoveredHv hv;
  VmSnapshot snap = hv.SnapshotVm();
  hv.RestoreVm(snap);
}
