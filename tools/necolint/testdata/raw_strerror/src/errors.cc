// Fixture: a raw strerror call (flagged) amid the exempt spellings.
#include <cerrno>
#include <cstring>
#include <string>

std::string Fine(int err) {
  char buf[256];
  // strerror_r is the thread-safe primitive: exempt.
  if (::strerror_r(err, buf, sizeof(buf)) != 0) {
    buf[0] = '\0';
  }
  return buf;
}

// A comment mentioning strerror( must not fire either.
std::string Bad(int err) {
  return std::strerror(err);  // Seeded violation: raw-strerror.
}
