// Fixture: a clean source file so only the seeded bench violation fires.
int Answer() { return 42; }
