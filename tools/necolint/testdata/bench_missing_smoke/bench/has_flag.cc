// Fixture: a compliant bench — parses --smoke, must NOT fire.
#include <cstdio>
#include <cstring>

int main(int argc, char** argv) {
  const bool smoke =
      argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf(smoke ? "smoke\n" : "full\n");
  return 0;
}
