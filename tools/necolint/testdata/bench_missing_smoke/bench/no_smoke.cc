// Fixture: a bench binary with no smoke-budget flag — the bench-smoke
// rule must flag this file. (Even a comment spelling the flag would
// satisfy the textual rule, so this file must never mention it.)
#include <cstdio>

int main() {
  std::printf("full multi-minute run only\n");
  return 0;
}
