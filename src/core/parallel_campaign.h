// Sharded multi-worker fuzzing campaign (pFSCK-style parallelization of
// the formerly serial RunCampaign loop).
//
// RunParallelCampaign spawns options.workers threads. Each worker owns a
// private Hypervisor built from the factory (CoverageUnit is not
// thread-safe, so simulators stay per-worker), a private Agent, and a
// Fuzzer shard seeded deterministically with options.seed + worker_id.
// The total iteration budget is split across shards.
//
// Workers run in lock-step epochs (one per coverage sample). At every
// epoch boundary a barrier fires and exactly one thread merges the shard
// states into the global campaign view:
//   * per-worker virgin bitmaps OR into a global seen-edges map,
//   * per-worker covered-point sets union into the global covered set
//     (the series sample for that epoch),
//   * anomaly findings dedup by bug id into the global findings map,
//   * new corpus entries publish to a shared pool, which the other
//     shards import at the start of their next epoch (corpus syncing).
// Because merge order is worker-id order and the barrier serializes
// epochs, a run is deterministic for a fixed (seed, workers) pair.
#ifndef SRC_CORE_PARALLEL_CAMPAIGN_H_
#define SRC_CORE_PARALLEL_CAMPAIGN_H_

#include <vector>

#include "src/core/campaign.h"
#include "src/hv/factory.h"

namespace neco {

struct ParallelCampaignResult {
  // The global merged view, shaped exactly like a serial CampaignResult.
  // With workers == 1 it reproduces RunCampaign bit for bit.
  CampaignResult merged;
  // Each shard's own final state (per-worker coverage is a subset of the
  // merged coverage).
  std::vector<CampaignResult> per_worker;
  // Queue entries adopted across shards over the whole campaign.
  uint64_t corpus_imports = 0;
};

ParallelCampaignResult RunParallelCampaign(const HypervisorFactory& factory,
                                           const CampaignOptions& options);

}  // namespace neco

#endif  // SRC_CORE_PARALLEL_CAMPAIGN_H_
