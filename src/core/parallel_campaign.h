// Deprecated shim over the unified campaign engine (src/core/engine.h).
//
// PR 1's sharded RunParallelCampaign survives as a thin wrapper: the
// lock-step-epoch worker loop, deterministic barrier merge, and
// cross-shard corpus sync now live in CampaignEngine, which runs the same
// schedule for serial and sharded campaigns and streams progress to
// CampaignObservers. New code should construct an engine session directly.
#ifndef SRC_CORE_PARALLEL_CAMPAIGN_H_
#define SRC_CORE_PARALLEL_CAMPAIGN_H_

#include "src/core/engine.h"

namespace neco {

// Historical name for the engine's result shape.
using ParallelCampaignResult = EngineResult;

// Deprecated: construct a CampaignEngine and Run() it. Equivalent to
// CampaignEngine(factory, options).Run().
[[deprecated("use CampaignEngine(factory, options).Run()")]]
ParallelCampaignResult RunParallelCampaign(const HypervisorFactory& factory,
                                           const CampaignOptions& options);

}  // namespace neco

#endif  // SRC_CORE_PARALLEL_CAMPAIGN_H_
