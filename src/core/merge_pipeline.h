// The delta-based merge pipeline: a bounded MPSC queue of encoded
// ShardDelta records drained by a single merge loop.
//
// This replaces the per-epoch stop-the-world barrier the campaign engine
// used through PR 2. Workers publish self-contained, wire-encoded deltas
// (src/core/wire.h) and immediately continue fuzzing; the merge loop —
// run on its own thread by CampaignEngine — decodes them, assigns
// deterministic epoch numbers, and folds them into the global virgin
// bitmap, covered set, finding-dedup map, and corpus pool in fixed
// (epoch, worker) order. Observer events therefore fire in exactly the
// same merge-ordered sequence the barrier produced, for any merge_batch
// and any thread timing; only wall-clock interleaving changes.
//
// Workers block in exactly two places:
//  * Publish(), when the bounded queue is full (backpressure against a
//    slow drainer), and
//  * WaitForFeedback(), when corpus syncing needs the previous epoch's
//    merged state (pool entries + global novelty) and the drainer has not
//    folded it yet.
// With corpus syncing off — NecoFuzz's default breadth-first mode — the
// second site disappears entirely and shards never wait for each other.
//
// Determinism: the pool boundary and global-novelty delta are recorded
// per finalized epoch, so a worker asking for "the merged state through
// epoch E" gets the same answer no matter how far ahead the drainer has
// already folded. That property is what makes results independent of
// merge_batch (tested in tests/engine_test.cc).
#ifndef SRC_CORE_MERGE_PIPELINE_H_
#define SRC_CORE_MERGE_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/campaign.h"
#include "src/core/wire.h"
#include "src/fuzz/bitmap.h"

namespace neco {

class CampaignObserver;

struct MergePipelineOptions {
  int workers = 1;
  // Global epoch count (max over shards); every worker must publish one
  // delta per epoch, empty deltas included, so the drainer can tell a
  // complete epoch from a pending one.
  size_t epochs = 0;
  size_t total_points = 0;  // Line-coverage universe size.
  // Deltas drained per flush; 1 reproduces the barrier-era one-merge-per-
  // delta cadence. Results are identical for any value.
  int merge_batch = 1;
  // Encoded deltas in flight before Publish() blocks; 0 derives a default
  // from workers and merge_batch.
  size_t queue_capacity = 0;
};

// Counters for bench/parallel_scaling's merge-pipeline mode: how deep the
// queue ran and how long workers sat idle (blocked publishing or waiting
// for feedback) instead of fuzzing.
struct MergePipelineStats {
  uint64_t deltas = 0;       // Shard deltas published.
  uint64_t delta_bytes = 0;  // Encoded bytes through the queue.
  uint64_t flushes = 0;      // Drainer wake-ups.
  size_t max_queue_depth = 0;
  double avg_queue_depth = 0.0;  // Sampled after each publish.
  uint64_t publish_blocks = 0;   // Publishes that found the queue full.
  double publish_wait_seconds = 0.0;
  double feedback_wait_seconds = 0.0;
};

class MergePipeline {
 public:
  // Observers are borrowed; every dispatch is exception-guarded (the
  // first escaping exception is recorded, later ones are dropped) so a
  // throwing observer can never strand worker threads — the engine
  // rethrows observer_error() after everything joined.
  MergePipeline(MergePipelineOptions options,
                std::vector<CampaignObserver*> observers);

  // --- Producer side (worker threads) ---

  // Enqueues one wire-encoded ShardDelta; blocks while the queue is full.
  // Returns false when the pipeline was aborted.
  bool Publish(wire::Buffer encoded_delta);

  // The merged state a syncing shard absorbs at an epoch boundary.
  struct Feedback {
    // Other shards' pool entries, in deterministic pool order.
    std::vector<FuzzInput> pool_entries;
    // Global novelty (cells merged into the global virgin map) since this
    // worker's previous feedback.
    BitmapDelta virgin;
  };

  // Blocks until epoch `through_epoch` is finalized, then fills `out`
  // with everything merged through it that `worker` has not seen yet.
  // Returns false when the pipeline was aborted.
  bool WaitForFeedback(size_t through_epoch, int worker, Feedback* out);

  // --- Drainer ---

  // Decodes and folds published deltas until every epoch is finalized (or
  // Abort()). The engine runs this on a dedicated merge thread; observer
  // events fire here, never concurrently. Throws std::runtime_error on a
  // corrupt delta.
  void RunMergeLoop();

  // Unblocks every Publish/WaitForFeedback (they return false) and makes
  // RunMergeLoop return; used when a worker dies so nobody waits forever.
  void Abort();
  bool aborted() const { return aborted_; }

  // --- Exception-guarded observer dispatch for the final assembly ---
  void NotifyShardDone(const ShardDoneEvent& event);
  void NotifyFinish(const FinishEvent& event);
  std::exception_ptr observer_error() const;

  // --- Merged state; read after RunMergeLoop() returned ---
  const CoverageBitmap& virgin() const { return global_virgin_; }
  const std::vector<uint8_t>& covered() const { return global_covered_; }
  size_t covered_points() const { return covered_count_; }
  const std::map<std::string, AnomalyReport>& findings() const {
    return global_findings_;
  }
  const std::vector<CoverageSample>& series() const { return series_; }
  size_t finalized_epochs() const;
  MergePipelineStats stats() const;

 private:
  // What a finalized epoch leaves behind for later feedback requests.
  struct EpochFeedback {
    BitmapDelta virgin;   // Cells the fold newly set globally.
    size_t pool_end = 0;  // Pool size when the epoch was finalized.
  };
  struct PoolEntry {
    int origin = 0;
    FuzzInput input;
  };
  struct WorkerCursor {
    size_t pool = 0;   // Pool entries already handed to this worker.
    size_t epoch = 0;  // Next feedback epoch to hand out.
  };

  bool PopBatch(std::vector<wire::Buffer>* out);
  void Stage(std::unique_ptr<ShardDelta> delta);
  void FoldReadyEpochs();
  template <typename Fn>
  void Notify(Fn&& fn);

  MergePipelineOptions options_;
  std::vector<CampaignObserver*> observers_;
  size_t queue_capacity_ = 0;
  std::atomic<bool> aborted_{false};

  // Bounded MPSC queue of encoded deltas (+ queue-side stats).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<wire::Buffer> queue_;
  MergePipelineStats stats_;  // Fields guarded as documented in stats().
  double queue_depth_sum_ = 0.0;

  // Drainer-only staging: decoded deltas waiting for their epoch to
  // complete (all workers' records present).
  std::map<uint64_t, std::vector<std::unique_ptr<ShardDelta>>> staged_;
  size_t next_epoch_ = 0;

  // Global merged state; written by the drainer under state_mu_, read by
  // WaitForFeedback and (unlocked, after the drainer joined) the engine.
  mutable std::mutex state_mu_;
  std::condition_variable feedback_cv_;
  CoverageBitmap global_virgin_;
  std::vector<uint8_t> global_covered_;
  size_t covered_count_ = 0;
  std::map<std::string, AnomalyReport> global_findings_;
  std::vector<PoolEntry> pool_;
  std::vector<CoverageSample> series_;
  uint64_t total_iterations_ = 0;
  std::vector<EpochFeedback> feedback_;  // Indexed by finalized epoch.
  std::vector<WorkerCursor> cursors_;
  size_t finalized_ = 0;

  mutable std::mutex error_mu_;
  std::exception_ptr observer_error_;
};

}  // namespace neco

#endif  // SRC_CORE_MERGE_PIPELINE_H_
