// The delta merge pipeline: a single drain loop over a ShardTransport.
//
// PR 3 replaced the per-epoch stop-the-world barrier with this pipeline;
// PR 4 split it from its medium. Workers publish self-contained,
// wire-encoded ShardDeltas (src/core/wire.h) into a ShardTransport
// (src/core/transport/) — an in-process bounded queue for thread shards,
// pipes from fork/exec'd children for process shards — and the merge loop
// drains whichever transport it was given, decodes, assigns deterministic
// epoch numbers, and folds into the global virgin bitmap, covered set,
// finding-dedup map, and corpus pool in fixed (epoch, worker) order.
// Observer events therefore fire in exactly the same merge-ordered
// sequence the barrier produced, for any merge_batch, any thread timing,
// and any transport; only wall-clock interleaving changes.
//
// Feedback (the merged state corpus-syncing shards absorb at epoch
// boundaries) flows back two ways, same content either way:
//  * thread shards pull it: WaitForFeedback() blocks until the epoch is
//    finalized, then snapshots against per-worker cursors;
//  * process shards get it pushed: with options.push_feedback the drainer
//    encodes a FeedbackRecord per worker right after finalizing an epoch
//    and sends it through the transport, using the same cursors — so a
//    shard sees identical feedback whichever side of the fork it runs on.
//
// Determinism: the pool boundary and global-novelty delta are recorded
// per finalized epoch, so a worker asking for "the merged state through
// epoch E" gets the same answer no matter how far ahead the drainer has
// already folded. That property is what makes results independent of
// merge_batch and of the transport (tested in tests/engine_test.cc).
#ifndef SRC_CORE_MERGE_PIPELINE_H_
#define SRC_CORE_MERGE_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/campaign.h"
#include "src/core/transport/transport.h"
#include "src/core/wire.h"
#include "src/fuzz/bitmap.h"
#include "src/support/mutex.h"
#include "src/support/thread_annotations.h"

namespace neco {

class CampaignJournal;
class CampaignObserver;

struct MergePipelineOptions {
  int workers = 1;
  // Global epoch count (max over shards); every worker must publish one
  // delta per epoch, empty deltas included, so the drainer can tell a
  // complete epoch from a pending one.
  size_t epochs = 0;
  size_t total_points = 0;  // Line-coverage universe size.
  // Deltas drained per flush; 1 reproduces the barrier-era one-merge-per-
  // delta cadence. Results are identical for any value.
  int merge_batch = 1;
  // Push an encoded FeedbackRecord to every worker through the transport
  // after finalizing each epoch (process shards; mutually exclusive with
  // the workers calling WaitForFeedback — both advance the same per-worker
  // cursors).
  bool push_feedback = false;
  // Durable campaign state (src/core/state/journal.h), borrowed; null for
  // a memory-resident campaign. With a journal, every finalized epoch is
  // committed — crash artifacts, then the epoch's raw delta frames, then
  // the manifest — BEFORE its observer events fire, so an event stream
  // never gets ahead of what a resume can reproduce.
  CampaignJournal* journal = nullptr;
  // Epochs already committed by a previous incarnation. The fold replays
  // them: merged state, cursors, and feedback advance exactly as they
  // originally did, the re-published frames are verified byte-for-byte
  // against the journal, and observer events are suppressed — the stream
  // resumes precisely where the interrupted run's commits stopped.
  size_t resume_epochs = 0;
  // Materialized-snapshot cadence (journal mode; 0 disables): at every
  // snapshot_every-th epoch the workers publish a WorkerStateRecord frame
  // right before that epoch's ShardDelta, the drainer stages them, and
  // the fold assembles + commits a CampaignSnapshot in the same commit as
  // the epoch — durably on disk before any of the epoch's observer
  // events fire.
  size_t snapshot_every = 0;
  // Resume seed (borrowed, may be null): the merged half of the snapshot
  // the campaign restarts from. The pipeline then starts with epochs
  // [0, restore->epochs_covered) already finalized — merged state,
  // feedback bookkeeping, and per-worker cursors positioned exactly as
  // the original incarnation left them at the horizon — and the fold
  // begins at the horizon instead of epoch 0.
  const SnapshotMergedStateRecord* restore = nullptr;
  // Crash-artifact metadata stamped into persisted records (journal mode).
  std::string hypervisor;
  std::string arch;
};

// Drain-loop counters (the transport counts bytes and queue depth itself;
// see TransportStats).
struct MergePipelineStats {
  uint64_t flushes = 0;  // Drainer wake-ups.
  // Time thread shards spent blocked in WaitForFeedback (always 0 with
  // push_feedback — a process shard's wait happens in its own process).
  double feedback_wait_seconds = 0.0;
};

class MergePipeline {
 public:
  // The transport is borrowed and must outlive the pipeline. Observers are
  // borrowed; every dispatch is exception-guarded (the first escaping
  // exception is recorded, later ones are dropped) so a throwing observer
  // can never strand worker threads — the engine rethrows observer_error()
  // after everything joined.
  MergePipeline(MergePipelineOptions options, ShardTransport* transport,
                std::vector<CampaignObserver*> observers);

  // --- Thread-shard feedback (pull side) ---

  // The merged state a syncing shard absorbs at an epoch boundary (the
  // in-memory twin of the wire FeedbackRecord).
  struct Feedback {
    // Other shards' pool entries, in deterministic pool order.
    std::vector<FuzzInput> pool_entries;
    // Global novelty (cells merged into the global virgin map) since this
    // worker's previous feedback.
    BitmapDelta virgin;
  };

  // Blocks until epoch `through_epoch` is finalized, then fills `out`
  // with everything merged through it that `worker` has not seen yet.
  // Returns false when the pipeline was aborted.
  bool WaitForFeedback(size_t through_epoch, int worker, Feedback* out)
      NECO_EXCLUDES(state_mu_);

  // --- Drainer ---

  // Drains the transport and folds published deltas until every epoch is
  // finalized (or Abort()). The engine runs this on a dedicated merge
  // thread (inline for process shards); observer events fire here, never
  // concurrently. Throws std::runtime_error on a corrupt delta or a
  // transport failure (a dead shard surfaces here, never as a hang).
  void RunMergeLoop() NECO_EXCLUDES(state_mu_);

  // Aborts the transport (unblocking its producers and Drain) and every
  // WaitForFeedback (they return false); used when a worker dies so
  // nobody waits forever.
  void Abort() NECO_EXCLUDES(state_mu_);
  bool aborted() const { return aborted_; }

  // --- Exception-guarded observer dispatch for the final assembly ---
  void NotifyShardDone(const ShardDoneEvent& event)
      NECO_EXCLUDES(error_mu_);
  void NotifyFinish(const FinishEvent& event) NECO_EXCLUDES(error_mu_);
  std::exception_ptr observer_error() const NECO_EXCLUDES(error_mu_);

  // --- Merged state accessors ---
  // The returned references stay valid for the pipeline's lifetime, but
  // their *contents* are only stable once RunMergeLoop() returned (and
  // the merge thread joined) — which is the only time the engine reads
  // them. Each accessor still takes the lock for the member access so the
  // discipline is compiler-checked end to end, not waived for readers.
  const CoverageBitmap& virgin() const NECO_EXCLUDES(state_mu_);
  const std::vector<uint8_t>& covered() const NECO_EXCLUDES(state_mu_);
  size_t covered_points() const NECO_EXCLUDES(state_mu_);
  const std::map<std::string, AnomalyReport>& findings() const
      NECO_EXCLUDES(state_mu_);
  const std::vector<CoverageSample>& series() const NECO_EXCLUDES(state_mu_);
  size_t finalized_epochs() const NECO_EXCLUDES(state_mu_);
  MergePipelineStats stats() const NECO_EXCLUDES(state_mu_);

 private:
  // What a finalized epoch leaves behind for later feedback requests.
  struct EpochFeedback {
    BitmapDelta virgin;   // Cells the fold newly set globally.
    size_t pool_end = 0;  // Pool size when the epoch was finalized.
  };
  struct PoolEntry {
    int origin = 0;
    FuzzInput input;
  };
  struct WorkerCursor {
    size_t pool = 0;   // Pool entries already handed to this worker.
    size_t epoch = 0;  // Next feedback epoch to hand out.
  };

  // A decoded delta plus (journal mode only) the exact frame bytes it
  // arrived as — what CommitEpoch persists and VerifyEpoch compares.
  struct StagedDelta {
    std::unique_ptr<ShardDelta> delta;
    wire::Buffer raw;
  };

  void Stage(std::unique_ptr<ShardDelta> delta, wire::Buffer raw);
  // Stages a worker's full-state record for its snapshot epoch (drainer
  // thread only, like Stage). FIFO framing per worker guarantees the
  // state frame precedes the same epoch's delta, so by the time an epoch
  // can fold every worker's state is staged.
  void StageWorkerState(std::unique_ptr<WorkerStateRecord> record);
  // Whether `epoch`'s fold commits a materialized snapshot.
  bool SnapshotEpoch(size_t epoch) const {
    return options_.snapshot_every != 0 &&
           (epoch + 1) % options_.snapshot_every == 0;
  }
  void FoldReadyEpochs() NECO_EXCLUDES(state_mu_);
  // Snapshots `worker`'s unseen merged state through `through_epoch` and
  // advances its cursors; caller holds state_mu_ and the epoch must be
  // finalized. Shared by WaitForFeedback and the push_feedback path.
  void BuildFeedbackLocked(size_t through_epoch, int worker, Feedback* out)
      NECO_REQUIRES(state_mu_);
  // Encodes and pushes every worker's FeedbackRecord for `epoch`; throws
  // on a transport failure.
  void PushEpochFeedback(size_t epoch) NECO_EXCLUDES(state_mu_);
  template <typename Fn>
  void Notify(Fn&& fn) NECO_EXCLUDES(error_mu_);

  MergePipelineOptions options_;
  ShardTransport* transport_;
  std::vector<CampaignObserver*> observers_;
  std::atomic<bool> aborted_{false};

  // Drainer-only staging: decoded deltas waiting for their epoch to
  // complete (all workers' records present). Single-threaded by
  // construction (only RunMergeLoop touches them), hence unguarded.
  std::map<uint64_t, std::vector<StagedDelta>> staged_;
  // Worker-state records published for snapshot epochs, keyed by epoch;
  // consumed (or, for replayed epochs, discarded) when the epoch folds.
  // Drainer-only, like staged_.
  std::map<uint64_t, std::vector<std::unique_ptr<WorkerStateRecord>>>
      staged_states_;
  size_t next_epoch_ = 0;

  // Global merged state: written by the drainer under state_mu_, read by
  // WaitForFeedback (worker threads) and — through the locking accessors
  // above — the engine.
  mutable Mutex state_mu_;
  CondVar feedback_cv_;
  MergePipelineStats stats_ NECO_GUARDED_BY(state_mu_);
  CoverageBitmap global_virgin_ NECO_GUARDED_BY(state_mu_);
  std::vector<uint8_t> global_covered_ NECO_GUARDED_BY(state_mu_);
  size_t covered_count_ NECO_GUARDED_BY(state_mu_) = 0;
  std::map<std::string, AnomalyReport> global_findings_
      NECO_GUARDED_BY(state_mu_);
  std::vector<PoolEntry> pool_ NECO_GUARDED_BY(state_mu_);
  std::vector<CoverageSample> series_ NECO_GUARDED_BY(state_mu_);
  uint64_t total_iterations_ NECO_GUARDED_BY(state_mu_) = 0;
  // Indexed by finalized epoch.
  std::vector<EpochFeedback> feedback_ NECO_GUARDED_BY(state_mu_);
  std::vector<WorkerCursor> cursors_ NECO_GUARDED_BY(state_mu_);
  size_t finalized_ NECO_GUARDED_BY(state_mu_) = 0;

  mutable Mutex error_mu_;
  std::exception_ptr observer_error_ NECO_GUARDED_BY(error_mu_);
};

}  // namespace neco

#endif  // SRC_CORE_MERGE_PIPELINE_H_
