#include "src/core/parallel_campaign.h"

namespace neco {

ParallelCampaignResult RunParallelCampaign(const HypervisorFactory& factory,
                                           const CampaignOptions& options) {
  CampaignEngine engine(factory, options);
  return engine.Run();
}

}  // namespace neco
