// ShardSupervisor — spawns, monitors, and reaps process-level shard
// children (the process half of PipeTransport).
//
// Two spawn modes, one per process-sharding flavor:
//
//  * SpawnFork: fork() a child that runs a callback in a copy of the
//    parent's address space and _exit()s with its return value. This is
//    the default — it needs no binary support, so gtest suites can spawn
//    real process shards — and it is how CampaignEngine runs
//    shard_mode = processes when no exec path is configured.
//  * SpawnExec: fork() + execv() a binary with the hidden
//    --necofuzz-shard-child arguments (see MaybeRunShardChild in
//    src/core/engine.h). The child is a fresh process that reads its
//    ShardChildConfigRecord off an inherited pipe; this is the shape that
//    generalizes to remote machines.
//
// The supervisor's job is to make a crashed shard a *recorded error*, not
// a hang: WaitAll() reaps every child and reports how each one ended
// (exit code or terminating signal), KillAll() tears down a failed
// campaign, and the destructor guarantees nothing is leaked as a zombie
// even on an exception path.
//
// Spawning must happen before the parent starts its worker/merge threads
// (fork from a multithreaded process only copies the calling thread, which
// would strand locks in the child). CampaignEngine respects this: children
// are spawned first, and in process mode the merge loop runs inline.
#ifndef SRC_CORE_TRANSPORT_SUPERVISOR_H_
#define SRC_CORE_TRANSPORT_SUPERVISOR_H_

#include <signal.h>
#include <sys/types.h>

#include <functional>
#include <string>
#include <vector>

namespace neco {

// How one shard child ended.
struct ShardExit {
  int worker = -1;
  pid_t pid = -1;
  bool reaped = false;
  int exit_code = -1;    // Valid when the child exited normally.
  int term_signal = 0;   // Nonzero when a signal terminated it (e.g. 9).

  bool clean() const { return reaped && term_signal == 0 && exit_code == 0; }
  // "exited with status 1" / "killed by signal 9" — for error messages.
  std::string Describe() const;
};

class ShardSupervisor {
 public:
  ShardSupervisor();
  // Kills (SIGKILL) and reaps any children still running, so an exception
  // path through the engine can never leak zombies or orphan fuzzers.
  ~ShardSupervisor();

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  // Forks a child that runs `body` and _exit()s with its return value (the
  // body never returns into the parent's stack). Returns the child pid, or
  // -1 when fork failed. `body` is responsible for closing the parent-side
  // pipe ends it inherited.
  pid_t SpawnFork(int worker, const std::function<int()>& body);

  // Forks and execs `exec_path` with `argv` (argv[0] is supplied by the
  // supervisor). `keep_fds` are inherited descriptors the child must keep
  // (its pipe ends) — they get FD_CLOEXEC cleared, since the engine now
  // creates every campaign descriptor close-on-exec; every other
  // descriptor above stderr is closed before exec as a second line of
  // defense against non-CLOEXEC descriptors the embedding process holds.
  // Returns the child pid, or -1 when fork failed; exec failure surfaces
  // as exit code 127 at WaitAll().
  pid_t SpawnExec(int worker, const std::string& exec_path,
                  const std::vector<std::string>& argv,
                  const std::vector<int>& keep_fds);

  size_t spawned() const { return children_.size(); }

  // Blocks until every child exited; returns their fates in spawn order.
  // Safe to call repeatedly (already-reaped children keep their record).
  std::vector<ShardExit> WaitAll();

  // Non-blocking reap pass (WNOHANG): harvests children that already
  // died — on an error path this identifies the culprit before KillAll()
  // turns every survivor into "killed by signal 9".
  std::vector<ShardExit> ReapExited();

  // Reaps `worker`'s child, polling briefly (a known-dead child's pipe
  // EOF can be observable microseconds before the zombie is waitable —
  // process teardown closes descriptors first). Gives up after ~1s so a
  // misjudged caller degrades to the ReapExited answer instead of
  // hanging; returns the child's record either way.
  ShardExit WaitWorker(int worker);

  // Signals every not-yet-reaped child. With SIGKILL this guarantees a
  // subsequent WaitAll() returns promptly.
  void KillAll(int sig);

 private:
  // Single-threaded by contract (hence no mutex / NECO_GUARDED_BY): the
  // supervisor is owned by the engine's campaign thread, which spawns
  // before any worker or merge thread exists (see the fork constraint
  // above) and reaps after they joined. fork/waitpid from two threads
  // would be a design error, not a data race to annotate around.
  std::vector<ShardExit> children_;
  // The embedder's full SIGPIPE disposition (sigaction, not just a
  // handler pointer — a host's SA_SIGINFO action must survive the round
  // trip), restored by the destructor. See the SIGPIPE constraint note in
  // transport.h.
  struct sigaction previous_sigpipe_ {};
};

}  // namespace neco

#endif  // SRC_CORE_TRANSPORT_SUPERVISOR_H_
