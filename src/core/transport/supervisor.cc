#include "src/core/transport/supervisor.h"

#include <errno.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>

namespace neco {

std::string ShardExit::Describe() const {
  if (!reaped) {
    return "still running";
  }
  if (term_signal != 0) {
    return "killed by signal " + std::to_string(term_signal);
  }
  return "exited with status " + std::to_string(exit_code);
}

ShardSupervisor::ShardSupervisor() {
  // A shard child can die at any moment, turning the parent's next
  // feedback-pipe write into an EPIPE. The default SIGPIPE disposition
  // would kill the whole campaign process instead; ignoring it keeps the
  // failure a recoverable error code (PipeTransport turns it into a
  // recorded shard error). The previous disposition is restored when the
  // supervisor (which outlives every pipe write of its campaign) goes
  // away, so the embedding process does not keep the side effect.
  previous_sigpipe_ = ::signal(SIGPIPE, SIG_IGN);
}

ShardSupervisor::~ShardSupervisor() {
  KillAll(SIGKILL);
  WaitAll();
  ::signal(SIGPIPE, previous_sigpipe_);
}

pid_t ShardSupervisor::SpawnFork(int worker,
                                 const std::function<int()>& body) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    return -1;
  }
  if (pid == 0) {
    // Child: run the shard body and leave without unwinding the parent's
    // stack or running its atexit handlers (they belong to the parent).
    int code = 1;
    try {
      code = body();
    } catch (...) {
      code = 1;
    }
    ::_exit(code);
  }
  children_.push_back(ShardExit{worker, pid, false, -1, 0});
  return pid;
}

pid_t ShardSupervisor::SpawnExec(int worker, const std::string& exec_path,
                                 const std::vector<std::string>& argv,
                                 const std::vector<int>& keep_fds) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    return -1;
  }
  if (pid == 0) {
    // Close every inherited descriptor the child must not hold open —
    // above all the *other* shards' pipe ends, which would otherwise keep
    // their streams from ever reaching EOF when a sibling dies.
    const long max_fd = ::sysconf(_SC_OPEN_MAX);
    for (int fd = 3; fd < (max_fd > 0 ? max_fd : 1024); ++fd) {
      bool keep = false;
      for (int k : keep_fds) {
        keep = keep || k == fd;
      }
      if (!keep) {
        ::close(fd);
      }
    }
    std::vector<char*> args;
    args.push_back(const_cast<char*>(exec_path.c_str()));
    for (const std::string& arg : argv) {
      args.push_back(const_cast<char*>(arg.c_str()));
    }
    args.push_back(nullptr);
    ::execv(exec_path.c_str(), args.data());
    ::_exit(127);  // Exec failed; surfaces at WaitAll().
  }
  children_.push_back(ShardExit{worker, pid, false, -1, 0});
  return pid;
}

namespace {

void Reap(ShardExit& child, int flags) {
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(child.pid, &status, flags);
  } while (r < 0 && errno == EINTR);
  if (r <= 0) {
    return;  // Still running (WNOHANG) or already reaped elsewhere.
  }
  child.reaped = true;
  if (WIFEXITED(status)) {
    child.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    child.term_signal = WTERMSIG(status);
  }
}

}  // namespace

std::vector<ShardExit> ShardSupervisor::WaitAll() {
  for (ShardExit& child : children_) {
    if (!child.reaped) {
      Reap(child, 0);
    }
  }
  return children_;
}

std::vector<ShardExit> ShardSupervisor::ReapExited() {
  for (ShardExit& child : children_) {
    if (!child.reaped) {
      Reap(child, WNOHANG);
    }
  }
  return children_;
}

ShardExit ShardSupervisor::WaitWorker(int worker) {
  for (ShardExit& child : children_) {
    if (child.worker != worker) {
      continue;
    }
    for (int attempt = 0; attempt < 500 && !child.reaped; ++attempt) {
      Reap(child, WNOHANG);
      if (!child.reaped) {
        ::usleep(2000);
      }
    }
    return child;
  }
  return ShardExit{};
}

void ShardSupervisor::KillAll(int sig) {
  for (const ShardExit& child : children_) {
    if (!child.reaped && child.pid > 0) {
      ::kill(child.pid, sig);
    }
  }
}

}  // namespace neco
