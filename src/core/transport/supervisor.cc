#include "src/core/transport/supervisor.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>

namespace neco {

std::string ShardExit::Describe() const {
  if (!reaped) {
    return "still running";
  }
  if (term_signal != 0) {
    return "killed by signal " + std::to_string(term_signal);
  }
  return "exited with status " + std::to_string(exit_code);
}

ShardSupervisor::ShardSupervisor() {
  // A shard child can die at any moment, turning the parent's next
  // feedback write (pipe or socket) into an EPIPE. The default SIGPIPE
  // disposition would kill the whole campaign process instead; ignoring
  // it keeps the failure a recoverable error code (the transport turns it
  // into a recorded shard error). The disposition is scoped, not
  // clobbered: sigaction saves the embedding application's full previous
  // action — including an SA_SIGINFO handler, which the old
  // signal()-based save could not represent — and the destructor (which
  // outlives every feedback write of its campaign) restores it.
  struct sigaction ignore_action {};
  ignore_action.sa_handler = SIG_IGN;
  ::sigemptyset(&ignore_action.sa_mask);
  ::sigaction(SIGPIPE, &ignore_action, &previous_sigpipe_);
}

ShardSupervisor::~ShardSupervisor() {
  KillAll(SIGKILL);
  WaitAll();
  ::sigaction(SIGPIPE, &previous_sigpipe_, nullptr);
}

pid_t ShardSupervisor::SpawnFork(int worker,
                                 const std::function<int()>& body) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    return -1;
  }
  if (pid == 0) {
    // Child: run the shard body and leave without unwinding the parent's
    // stack or running its atexit handlers (they belong to the parent).
    int code = 1;
    try {
      code = body();
    } catch (...) {
      code = 1;
    }
    ::_exit(code);
  }
  children_.push_back(ShardExit{worker, pid, false, -1, 0});
  return pid;
}

pid_t ShardSupervisor::SpawnExec(int worker, const std::string& exec_path,
                                 const std::vector<std::string>& argv,
                                 const std::vector<int>& keep_fds) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    return -1;
  }
  if (pid == 0) {
    // The engine creates every campaign descriptor O_CLOEXEC, so the exec
    // below sheds them automatically; the child's own channel ends are
    // the exception and get the flag cleared here. The close sweep stays
    // as a second line of defense so a non-CLOEXEC descriptor leaked by
    // the embedding process cannot reach the child either — between the
    // two, an exec'd shard starts with stdio plus exactly its keep_fds
    // (asserted via /proc/self/fd in tests/transport_test.cc).
    for (int k : keep_fds) {
      ::fcntl(k, F_SETFD, 0);
    }
    const long max_fd = ::sysconf(_SC_OPEN_MAX);
    for (int fd = 3; fd < (max_fd > 0 ? max_fd : 1024); ++fd) {
      bool keep = false;
      for (int k : keep_fds) {
        keep = keep || k == fd;
      }
      if (!keep) {
        ::close(fd);
      }
    }
    std::vector<char*> args;
    args.push_back(const_cast<char*>(exec_path.c_str()));
    for (const std::string& arg : argv) {
      args.push_back(const_cast<char*>(arg.c_str()));
    }
    args.push_back(nullptr);
    ::execv(exec_path.c_str(), args.data());
    ::_exit(127);  // Exec failed; surfaces at WaitAll().
  }
  children_.push_back(ShardExit{worker, pid, false, -1, 0});
  return pid;
}

namespace {

void Reap(ShardExit& child, int flags) {
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(child.pid, &status, flags);
  } while (r < 0 && errno == EINTR);
  if (r <= 0) {
    return;  // Still running (WNOHANG) or already reaped elsewhere.
  }
  child.reaped = true;
  if (WIFEXITED(status)) {
    child.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    child.term_signal = WTERMSIG(status);
  }
}

}  // namespace

std::vector<ShardExit> ShardSupervisor::WaitAll() {
  for (ShardExit& child : children_) {
    if (!child.reaped) {
      Reap(child, 0);
    }
  }
  return children_;
}

std::vector<ShardExit> ShardSupervisor::ReapExited() {
  for (ShardExit& child : children_) {
    if (!child.reaped) {
      Reap(child, WNOHANG);
    }
  }
  return children_;
}

ShardExit ShardSupervisor::WaitWorker(int worker) {
  for (ShardExit& child : children_) {
    if (child.worker != worker) {
      continue;
    }
    for (int attempt = 0; attempt < 500 && !child.reaped; ++attempt) {
      Reap(child, WNOHANG);
      if (!child.reaped) {
        ::usleep(2000);
      }
    }
    return child;
  }
  return ShardExit{};
}

void ShardSupervisor::KillAll(int sig) {
  for (const ShardExit& child : children_) {
    if (!child.reaped && child.pid > 0) {
      ::kill(child.pid, sig);
    }
  }
}

}  // namespace neco
