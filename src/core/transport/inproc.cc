#include "src/core/transport/inproc.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace neco {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

InProcTransport::InProcTransport(InProcTransportOptions options) {
  const int workers = std::max(options.workers, 1);
  const int merge_batch = std::max(options.merge_batch, 1);
  capacity_ = options.capacity;
  if (capacity_ == 0) {
    capacity_ = std::max<size_t>(2 * static_cast<size_t>(workers),
                                 static_cast<size_t>(merge_batch));
  }
}

bool InProcTransport::Publish(wire::Buffer encoded_delta) {
  MutexLock lock(&mu_);
  if (queue_.size() >= capacity_ && !aborted_) {
    ++stats_.publish_blocks;
    const auto start = Clock::now();
    while (queue_.size() >= capacity_ && !aborted_) {
      not_full_.Wait(mu_);
    }
    stats_.publish_wait_seconds += SecondsSince(start);
  }
  if (aborted_) {
    return false;
  }
  ++stats_.deltas;
  stats_.delta_bytes += encoded_delta.size();
  queue_.push_back(std::move(encoded_delta));
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  queue_depth_sum_ += static_cast<double>(queue_.size());
  not_empty_.NotifyOne();
  return true;
}

bool InProcTransport::Drain(size_t max_batch, std::vector<wire::Buffer>* out) {
  out->clear();
  MutexLock lock(&mu_);
  while (queue_.empty() && !aborted_) {
    not_empty_.Wait(mu_);
  }
  if (aborted_) {
    return false;
  }
  const size_t n = std::min(queue_.size(), std::max<size_t>(max_batch, 1));
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  not_full_.NotifyAll();
  return true;
}

bool InProcTransport::SendFeedback(int /*worker*/,
                                   const wire::Buffer& /*frame*/) {
  // Thread shards pull feedback from MergePipeline::WaitForFeedback;
  // nothing travels through the transport.
  return true;
}

void InProcTransport::Abort() {
  aborted_ = true;
  MutexLock lock(&mu_);
  not_empty_.NotifyAll();
  not_full_.NotifyAll();
}

TransportStats InProcTransport::stats() const {
  MutexLock lock(&mu_);
  TransportStats out = stats_;
  out.avg_queue_depth =
      out.deltas == 0 ? 0.0
                      : queue_depth_sum_ / static_cast<double>(out.deltas);
  return out;
}

}  // namespace neco
