#include "src/core/transport/pipe.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace neco {
namespace {

bool ReadExact(int fd, uint8_t* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::read(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      return false;  // EOF mid-frame.
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool WritePipeFrame(int fd, const wire::Buffer& frame) {
  const uint8_t* data = frame.data();
  size_t size = frame.size();
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

bool ReadPipeFrame(int fd, wire::Buffer* out) {
  out->assign(wire::kFrameHeaderSize, 0);
  if (!ReadExact(fd, out->data(), wire::kFrameHeaderSize)) {
    return false;
  }
  size_t frame_size = 0;
  if (!wire::FrameSize(out->data(), out->size(), &frame_size)) {
    return false;
  }
  out->resize(frame_size);
  return ReadExact(fd, out->data() + wire::kFrameHeaderSize,
                   frame_size - wire::kFrameHeaderSize);
}

PipeTransport::PipeTransport(std::vector<PipeShardChannel> channels) {
  for (const PipeShardChannel& ch : channels) {
    Channel channel;
    channel.worker = ch.worker;
    channel.delta_fd = ch.delta_fd;
    channel.feedback_fd = ch.feedback_fd;
    // Delta reads are driven by poll(); non-blocking reads let ReadChannel
    // drain exactly what arrived without ever stalling the drainer.
    // Feedback writes stay blocking (backpressure against a slow child).
    if (channel.delta_fd >= 0) {
      const int flags = ::fcntl(channel.delta_fd, F_GETFL, 0);
      ::fcntl(channel.delta_fd, F_SETFL, flags | O_NONBLOCK);
    }
    channels_.push_back(std::move(channel));
  }
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    // Without the self-pipe a cross-thread Abort() could not wake a
    // drainer blocked in poll(); fail construction instead of risking a
    // hang later.
    for (Channel& channel : channels_) {
      ::close(channel.delta_fd);
      ::close(channel.feedback_fd);
    }
    throw std::runtime_error("PipeTransport: abort pipe creation failed: " +
                             std::string(std::strerror(errno)));
  }
  abort_rd_ = fds[0];
  abort_wr_ = fds[1];
}

PipeTransport::~PipeTransport() {
  for (Channel& channel : channels_) {
    if (channel.delta_fd >= 0) {
      ::close(channel.delta_fd);
    }
    if (channel.feedback_fd >= 0) {
      ::close(channel.feedback_fd);
    }
  }
  if (abort_rd_ >= 0) {
    ::close(abort_rd_);
  }
  if (abort_wr_ >= 0) {
    ::close(abort_wr_);
  }
}

void PipeTransport::SetError(const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  if (error_.empty()) {
    error_ = message;
  }
}

std::string PipeTransport::error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

void PipeTransport::ExtractFrames(Channel& channel) {
  size_t offset = 0;
  while (channel.buffer.size() - offset >= wire::kFrameHeaderSize) {
    const uint8_t* head = channel.buffer.data() + offset;
    const size_t available = channel.buffer.size() - offset;
    size_t frame_size = 0;
    if (!wire::FrameSize(head, available, &frame_size)) {
      SetError("shard " + std::to_string(channel.worker) +
               " sent a corrupt frame header");
      break;
    }
    if (available < frame_size) {
      break;  // Frame still arriving.
    }
    wire::Buffer frame(head, head + frame_size);
    offset += frame_size;

    wire::RecordType type;
    wire::PeekType(frame.data(), frame.size(), &type);
    if (type == wire::RecordType::kShardDelta) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.deltas;
      stats_.delta_bytes += frame.size();
      pending_.push_back(std::move(frame));
      stats_.max_queue_depth =
          std::max(stats_.max_queue_depth, pending_.size());
      queue_depth_sum_ += static_cast<double>(pending_.size());
    } else if (type == wire::RecordType::kShardResult) {
      auto result = std::make_unique<ShardResultRecord>();
      if (!wire::Decode(frame, result.get()) ||
          result->worker != channel.worker || channel.result != nullptr) {
        SetError("shard " + std::to_string(channel.worker) +
                 " sent an invalid result record");
        break;
      }
      channel.result = std::move(result);
    } else {
      SetError("shard " + std::to_string(channel.worker) +
               " sent an unexpected record type");
      break;
    }
  }
  channel.buffer.erase(channel.buffer.begin(),
                       channel.buffer.begin() + static_cast<long>(offset));
}

void PipeTransport::ReadChannel(Channel& channel) {
  uint8_t chunk[65536];
  while (true) {
    const ssize_t n = ::read(channel.delta_fd, chunk, sizeof(chunk));
    if (n > 0) {
      channel.buffer.insert(channel.buffer.end(), chunk, chunk + n);
      ExtractFrames(channel);
      if (static_cast<size_t>(n) < sizeof(chunk)) {
        return;  // Pipe drained for now.
      }
      continue;
    }
    if (n == 0) {
      // EOF. Clean only when the shard already delivered its final
      // result record with no partial frame left behind.
      channel.open = false;
      if (channel.result == nullptr || !channel.buffer.empty()) {
        int expected = -1;
        dead_worker_.compare_exchange_strong(expected, channel.worker);
        SetError("shard " + std::to_string(channel.worker) +
                 " closed its delta stream mid-campaign");
      }
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    }
    channel.open = false;
    SetError("shard " + std::to_string(channel.worker) +
             " delta pipe read failed: " + std::strerror(errno));
    return;
  }
}

bool PipeTransport::PumpOnce() {
  if (aborted_) {
    return false;
  }
  if (!error().empty()) {
    return false;
  }
  std::vector<pollfd> fds;
  std::vector<Channel*> polled;
  for (Channel& channel : channels_) {
    if (channel.open) {
      fds.push_back({channel.delta_fd, POLLIN, 0});
      polled.push_back(&channel);
    }
  }
  if (polled.empty()) {
    SetError("every shard closed its delta stream before the campaign "
             "completed");
    return false;
  }
  if (abort_rd_ >= 0) {
    fds.push_back({abort_rd_, POLLIN, 0});
  }
  int r;
  do {
    r = ::poll(fds.data(), fds.size(), -1);
  } while (r < 0 && errno == EINTR);
  if (r < 0) {
    SetError(std::string("poll failed: ") + std::strerror(errno));
    return false;
  }
  if (aborted_) {
    return false;
  }
  for (size_t i = 0; i < polled.size(); ++i) {
    if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
      ReadChannel(*polled[i]);
    }
  }
  return error().empty();
}

bool PipeTransport::Drain(size_t max_batch, std::vector<wire::Buffer>* out) {
  out->clear();
  while (pending_.empty()) {
    if (!PumpOnce()) {
      return false;
    }
  }
  const size_t n = std::min(pending_.size(), std::max<size_t>(max_batch, 1));
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return true;
}

bool PipeTransport::SendFeedback(int worker, const wire::Buffer& frame) {
  if (aborted_) {
    return false;
  }
  for (Channel& channel : channels_) {
    if (channel.worker != worker) {
      continue;
    }
    if (channel.feedback_fd < 0 ||
        !WritePipeFrame(channel.feedback_fd, frame)) {
      if (errno == EPIPE) {
        // No read end left: the child is gone.
        int expected = -1;
        dead_worker_.compare_exchange_strong(expected, worker);
      }
      SetError("feedback write to shard " + std::to_string(worker) +
               " failed (shard dead?)");
      return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.feedback_records;
    stats_.feedback_bytes += frame.size();
    return true;
  }
  SetError("feedback for unknown shard " + std::to_string(worker));
  return false;
}

bool PipeTransport::CollectResults() {
  auto all_collected = [&] {
    for (const Channel& channel : channels_) {
      if (channel.result == nullptr) {
        return false;
      }
    }
    return true;
  };
  while (!all_collected()) {
    if (!PumpOnce()) {
      return false;
    }
  }
  return true;
}

const ShardResultRecord* PipeTransport::shard_result(int worker) const {
  for (const Channel& channel : channels_) {
    if (channel.worker == worker) {
      return channel.result.get();
    }
  }
  return nullptr;
}

void PipeTransport::Abort() {
  aborted_ = true;
  if (abort_wr_ >= 0) {
    const uint8_t byte = 1;
    // Best-effort wake-up; the atomic flag is the source of truth.
    [[maybe_unused]] const ssize_t n = ::write(abort_wr_, &byte, 1);
  }
}

TransportStats PipeTransport::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  TransportStats out = stats_;
  out.avg_queue_depth =
      out.deltas == 0 ? 0.0
                      : queue_depth_sum_ / static_cast<double>(out.deltas);
  return out;
}

}  // namespace neco
