#include "src/core/transport/pipe.h"

#include <utility>

namespace neco {
namespace {

std::vector<StreamShardChannel> ToStreamChannels(
    const std::vector<PipeShardChannel>& channels) {
  std::vector<StreamShardChannel> out;
  out.reserve(channels.size());
  for (const PipeShardChannel& ch : channels) {
    out.push_back({ch.worker, ch.delta_fd, ch.feedback_fd});
  }
  return out;
}

}  // namespace

PipeTransport::PipeTransport(std::vector<PipeShardChannel> channels)
    : FrameStreamTransport(ToStreamChannels(channels)) {}

}  // namespace neco
