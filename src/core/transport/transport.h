// ShardTransport — how encoded campaign records move between worker
// shards and the merge pipeline's drain loop.
//
// PR 3 made shards communicate exclusively through serialized ShardDelta
// records (src/core/wire.h); this layer makes the medium those records
// travel over pluggable. The merge pipeline (src/core/merge_pipeline.h)
// drains *a transport* — it no longer owns a queue — so the same drain /
// stage / fold loop serves:
//
//  * InProcTransport (src/core/transport/inproc.h): the bounded in-memory
//    MPSC deque the pipeline historically embedded, for thread shards
//    inside one process,
//  * PipeTransport (src/core/transport/pipe.h): length-prefixed frames
//    from fork/exec'd child-shard processes over pipes, with per-epoch
//    FeedbackRecord frames flowing back, for campaigns that scale past
//    one process, and
//  * SocketTransport (src/core/transport/socket.h): the same frames over
//    TCP connections shard children dial into, for campaigns that scale
//    past one machine (both stream backends share the poll/demux engine
//    in src/core/transport/stream.h).
//
// The contract is deterministic content: a transport moves opaque encoded
// frames without reordering records from the same shard, so the fold — and
// therefore merged results and observer event sequences — is identical
// whichever backend carried the bytes (pinned in tests/engine_test.cc).
//
// SIGPIPE constraint: the stream backends write to descriptors whose peer
// can die at any moment, which must surface as an error code (EPIPE), not
// a process-killing signal. ShardSupervisor (src/core/transport/
// supervisor.h) scopes that for a campaign — it saves the embedding
// process's SIGPIPE disposition via sigaction on construction, installs
// SIG_IGN, and restores the saved disposition on destruction. An
// application embedding the library keeps its own SIGPIPE handler outside
// campaign lifetimes, but must not install one concurrently with a
// running campaign (the save/restore would race it).
#ifndef SRC_CORE_TRANSPORT_TRANSPORT_H_
#define SRC_CORE_TRANSPORT_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/wire.h"

namespace neco {

// Byte / wait counters a transport reports into EngineResult::transport
// (the per-transport columns of bench/parallel_scaling).
struct TransportStats {
  uint64_t deltas = 0;           // ShardDelta frames delivered to the drainer.
  uint64_t delta_bytes = 0;      // Encoded delta bytes through the transport.
  uint64_t feedback_records = 0; // Feedback/config frames sent toward shards.
  uint64_t feedback_bytes = 0;
  size_t max_queue_depth = 0;    // Frames buffered drainer-side.
  double avg_queue_depth = 0.0;  // Sampled once per enqueued frame.
  uint64_t publish_blocks = 0;   // Producer-side backpressure events (in-proc
                                 // only: a child process blocks in the pipe
                                 // buffer, invisible to the parent).
  double publish_wait_seconds = 0.0;
};

class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  // Drainer side: blocks until at least one encoded ShardDelta is
  // available, then moves up to `max_batch` of them into `*out` (cleared
  // first). Returns false when no delta will ever arrive again — the
  // transport was aborted, or a producer failed (see error()).
  virtual bool Drain(size_t max_batch, std::vector<wire::Buffer>* out) = 0;

  // Ships one encoded frame (a FeedbackRecord, or a ShardChildConfigRecord
  // at startup) toward shard `worker`. In-process transports no-op and
  // return true: thread shards read merged state straight from the
  // pipeline (MergePipeline::WaitForFeedback). Returns false when the
  // shard can no longer receive (dead child / aborted transport); the
  // failure is also recorded in error().
  virtual bool SendFeedback(int worker, const wire::Buffer& frame) = 0;

  // Unblocks Drain() and every producer; both fail fast afterwards. Safe
  // to call from any thread, repeatedly.
  virtual void Abort() = 0;

  // Non-empty after a transport-level failure (producer died mid-stream,
  // corrupt frame header, broken pipe). Drain() returns false once set.
  virtual std::string error() const = 0;

  virtual TransportStats stats() const = 0;
};

}  // namespace neco

#endif  // SRC_CORE_TRANSPORT_TRANSPORT_H_
