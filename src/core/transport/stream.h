// FrameStreamTransport — the shared poll/demux engine behind every
// byte-stream ShardTransport backend.
//
// PR 4's PipeTransport already treated its descriptors as plain byte
// streams carrying length-prefixed wire frames; this base class is that
// engine hoisted out of pipe.cc so a TCP socket (src/core/transport/
// socket.h) and a pipe pair (src/core/transport/pipe.h) share one
// implementation of:
//
//  * poll(2)-driven reassembly of wire frames from N shard streams,
//  * ShardDelta / ShardResultRecord demultiplexing,
//  * FeedbackRecord writes back toward shards (slow-peer aware: a full
//    buffer polls for writability and retries; only a real error is a
//    failure),
//  * the fail-fast dead-shard model (EOF or connection reset before the
//    shard's result record arrived fails Drain() and names the worker in
//    dead_worker(), so the engine can attribute an exit status), and
//  * the self-pipe that lets Abort() wake a drainer blocked in poll().
//
// A channel is a (read fd, write fd) pair; the two may be the same
// descriptor (a socket) — the transport closes it exactly once. Every
// descriptor the transport creates for itself carries O_CLOEXEC, so
// exec'd shard children cannot inherit it.
#ifndef SRC_CORE_TRANSPORT_STREAM_H_
#define SRC_CORE_TRANSPORT_STREAM_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/core/transport/transport.h"
#include "src/support/mutex.h"
#include "src/support/thread_annotations.h"

namespace neco {

// --- Child-side frame I/O (also used by the shard-child loop) ------------

// Writes one complete frame, looping over partial writes. A non-blocking
// descriptor whose buffer is full (EAGAIN/EWOULDBLOCK) is a *slow* peer,
// not a dead one: the write polls for writability and retries, so only a
// real error (EPIPE after the peer died, a reset connection, ...) returns
// false — with errno preserved for the caller to attribute.
bool WritePipeFrame(int fd, const wire::Buffer& frame);

// Blocks until one complete frame was read into `*out`. Returns false on
// EOF, a read error, or an invalid frame header. Works on any byte-stream
// descriptor: pipes and sockets alike.
bool ReadPipeFrame(int fd, wire::Buffer* out);

// --- Parent side ---------------------------------------------------------

// The parent-side descriptors of one shard's byte stream. The transport
// takes ownership; read_fd and write_fd may be the same descriptor.
struct StreamShardChannel {
  int worker = 0;
  int read_fd = -1;   // ShardDelta / ShardResultRecord frames arrive here.
  int write_fd = -1;  // Config + FeedbackRecord frames leave here.
};

class FrameStreamTransport : public ShardTransport {
 public:
  ~FrameStreamTransport() override;

  FrameStreamTransport(const FrameStreamTransport&) = delete;
  FrameStreamTransport& operator=(const FrameStreamTransport&) = delete;

  // ShardTransport:
  bool Drain(size_t max_batch, std::vector<wire::Buffer>* out) override;
  bool SendFeedback(int worker, const wire::Buffer& frame) override
      NECO_EXCLUDES(mu_);
  void Abort() override;
  std::string error() const override NECO_EXCLUDES(mu_);
  TransportStats stats() const override NECO_EXCLUDES(mu_);

  // After the merge loop finished: keeps reading until every shard's
  // ShardResultRecord arrived (they follow the final deltas, so they may
  // or may not be buffered already). Returns false on abort or error.
  bool CollectResults();

  // Worker `worker`'s final summary, or nullptr if it never arrived.
  const ShardResultRecord* shard_result(int worker) const;

  // The first worker observed dead (mid-campaign EOF / connection reset
  // on its delta stream, or EPIPE writing its feedback), or -1. "Dead" is
  // a kernel-level fact — those conditions only arise once the child's
  // descriptors closed — so the engine can reap this specific child for
  // its exit status when composing the shard error. (A corrupt frame
  // does NOT set this: the sender of garbage may well still be running.)
  int dead_worker() const { return dead_worker_; }

 protected:
  // Creates the abort self-pipe (O_CLOEXEC) and adopts `channels`,
  // setting every read descriptor non-blocking. Throws std::runtime_error
  // — closing everything it was handed — when the self-pipe cannot be
  // created or an fcntl fails (a channel built on a bad descriptor must
  // fail construction, not silently hand F_SETFL garbage).
  explicit FrameStreamTransport(std::vector<StreamShardChannel> channels);

  // Registers one more channel after construction (the socket transport
  // adopts connections as their handshakes complete). Sets the read
  // descriptor non-blocking; on failure closes the descriptor, records
  // the error, and returns false. Must not race Drain()/CollectResults().
  bool AdoptChannel(const StreamShardChannel& channel);

  void SetError(const std::string& message) NECO_EXCLUDES(mu_);
  bool aborted() const { return aborted_; }
  int abort_rd() const { return abort_rd_; }

 private:
  struct Channel {
    int worker = 0;
    int read_fd = -1;
    int write_fd = -1;
    bool open = true;
    std::vector<uint8_t> buffer;  // Partial-frame bytes read so far.
    std::unique_ptr<ShardResultRecord> result;
  };

  // Sets `fd` non-blocking; false (with errno set) when fcntl fails.
  static bool SetNonBlocking(int fd);
  static void CloseChannelFds(Channel& channel);

  // Blocks in poll() until a delta stream made progress, then reads and
  // demultiplexes. Returns false on abort or transport error.
  bool PumpOnce();
  // Drains `channel`'s readable bytes and cuts complete frames.
  void ReadChannel(Channel& channel);
  void ExtractFrames(Channel& channel) NECO_EXCLUDES(mu_);
  void MarkDead(int worker);

  // Drainer-thread-only state: channels, reassembly buffers, and the
  // decoded-order frame queue are touched exclusively by Drain()/
  // CollectResults()/SendFeedback() callers on the merge thread (the
  // engine sequences AcceptShards/AdoptChannel before the first Drain),
  // hence unguarded. Cross-thread communication happens via aborted_ /
  // dead_worker_ (atomics) and the mu_-guarded error/stats below.
  std::vector<Channel> channels_;
  std::deque<wire::Buffer> pending_;  // Decoded-order ShardDelta frames.
  int abort_rd_ = -1;  // Self-pipe: Abort() wakes the poll loop.
  int abort_wr_ = -1;
  std::atomic<bool> aborted_{false};
  std::atomic<int> dead_worker_{-1};

  mutable Mutex mu_;
  std::string error_ NECO_GUARDED_BY(mu_);
  TransportStats stats_ NECO_GUARDED_BY(mu_);
  double queue_depth_sum_ NECO_GUARDED_BY(mu_) = 0.0;
};

}  // namespace neco

#endif  // SRC_CORE_TRANSPORT_STREAM_H_
