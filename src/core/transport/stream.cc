#include "src/core/transport/stream.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/support/errno_util.h"

namespace neco {
namespace {

bool ReadExact(int fd, uint8_t* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::read(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      return false;  // EOF mid-frame.
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

// Blocks until `fd` is writable again. POLLERR/POLLHUP deliberately fall
// through to the retried write: it reports the real errno (EPIPE, ...),
// which is how the caller tells a dead peer from a slow one.
bool WaitWritable(int fd) {
  pollfd p{fd, POLLOUT, 0};
  int r;
  do {
    r = ::poll(&p, 1, -1);
  } while (r < 0 && errno == EINTR);
  return r >= 0;
}

}  // namespace

bool WritePipeFrame(int fd, const wire::Buffer& frame) {
  const uint8_t* data = frame.data();
  size_t size = frame.size();
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Full buffer on a non-blocking descriptor: the peer is slow, not
        // dead. Park until it drains, then retry.
        if (!WaitWritable(fd)) {
          return false;
        }
        continue;
      }
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

bool ReadPipeFrame(int fd, wire::Buffer* out) {
  out->assign(wire::kFrameHeaderSize, 0);
  if (!ReadExact(fd, out->data(), wire::kFrameHeaderSize)) {
    return false;
  }
  size_t frame_size = 0;
  if (!wire::FrameSize(out->data(), out->size(), &frame_size)) {
    return false;
  }
  out->resize(frame_size);
  return ReadExact(fd, out->data() + wire::kFrameHeaderSize,
                   frame_size - wire::kFrameHeaderSize);
}

bool FrameStreamTransport::SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void FrameStreamTransport::CloseChannelFds(Channel& channel) {
  if (channel.read_fd >= 0) {
    ::close(channel.read_fd);
  }
  if (channel.write_fd >= 0 && channel.write_fd != channel.read_fd) {
    ::close(channel.write_fd);
  }
  channel.read_fd = -1;
  channel.write_fd = -1;
}

FrameStreamTransport::FrameStreamTransport(
    std::vector<StreamShardChannel> channels) {
  for (const StreamShardChannel& ch : channels) {
    Channel channel;
    channel.worker = ch.worker;
    channel.read_fd = ch.read_fd;
    channel.write_fd = ch.write_fd;
    channels_.push_back(std::move(channel));
  }
  // The constructor owns every descriptor it was handed from here on: any
  // failure below must close them all before throwing (the destructor
  // will not run for a half-constructed object).
  auto fail = [&](const std::string& message) {
    for (Channel& channel : channels_) {
      CloseChannelFds(channel);
    }
    if (abort_rd_ >= 0) {
      ::close(abort_rd_);
    }
    if (abort_wr_ >= 0) {
      ::close(abort_wr_);
    }
    throw std::runtime_error("FrameStreamTransport: " + message + ": " +
                             SafeStrerror(errno));
  };

  int fds[2] = {-1, -1};
  // Without the self-pipe a cross-thread Abort() could not wake a drainer
  // blocked in poll(); fail construction instead of risking a hang later.
  // O_CLOEXEC: an exec'd shard child must not inherit the parent's wake-up
  // channel.
  if (::pipe2(fds, O_CLOEXEC) != 0) {
    fail("abort pipe creation failed");
  }
  abort_rd_ = fds[0];
  abort_wr_ = fds[1];

  for (Channel& channel : channels_) {
    // Delta reads are driven by poll(); non-blocking reads let ReadChannel
    // drain exactly what arrived without ever stalling the drainer. (On a
    // socket, read_fd == write_fd shares the flag — WritePipeFrame handles
    // the resulting EAGAIN by polling for writability.)
    if (!SetNonBlocking(channel.read_fd)) {
      fail("fcntl(O_NONBLOCK) failed for shard " +
           std::to_string(channel.worker));
    }
  }
}

FrameStreamTransport::~FrameStreamTransport() {
  for (Channel& channel : channels_) {
    CloseChannelFds(channel);
  }
  if (abort_rd_ >= 0) {
    ::close(abort_rd_);
  }
  if (abort_wr_ >= 0) {
    ::close(abort_wr_);
  }
}

bool FrameStreamTransport::AdoptChannel(const StreamShardChannel& ch) {
  Channel channel;
  channel.worker = ch.worker;
  channel.read_fd = ch.read_fd;
  channel.write_fd = ch.write_fd;
  if (!SetNonBlocking(channel.read_fd)) {
    SetError("fcntl(O_NONBLOCK) failed for shard " +
             std::to_string(channel.worker) + ": " + SafeStrerror(errno));
    CloseChannelFds(channel);
    return false;
  }
  channels_.push_back(std::move(channel));
  return true;
}

void FrameStreamTransport::SetError(const std::string& message) {
  MutexLock lock(&mu_);
  if (error_.empty()) {
    error_ = message;
  }
}

std::string FrameStreamTransport::error() const {
  MutexLock lock(&mu_);
  return error_;
}

void FrameStreamTransport::MarkDead(int worker) {
  int expected = -1;
  dead_worker_.compare_exchange_strong(expected, worker);
}

void FrameStreamTransport::ExtractFrames(Channel& channel) {
  size_t offset = 0;
  while (channel.buffer.size() - offset >= wire::kFrameHeaderSize) {
    const uint8_t* head = channel.buffer.data() + offset;
    const size_t available = channel.buffer.size() - offset;
    size_t frame_size = 0;
    if (!wire::FrameSize(head, available, &frame_size)) {
      SetError("shard " + std::to_string(channel.worker) +
               " sent a corrupt frame header");
      break;
    }
    if (available < frame_size) {
      break;  // Frame still arriving.
    }
    wire::Buffer frame(head, head + frame_size);
    offset += frame_size;

    wire::RecordType type;
    wire::PeekType(frame.data(), frame.size(), &type);
    if (type == wire::RecordType::kShardDelta ||
        type == wire::RecordType::kWorkerState) {
      // Worker-state frames (snapshot epochs) ride the delta queue so the
      // drainer sees them in publish order — FIFO per channel is what
      // guarantees a state frame lands before its epoch's delta.
      MutexLock lock(&mu_);
      ++stats_.deltas;
      stats_.delta_bytes += frame.size();
      pending_.push_back(std::move(frame));
      stats_.max_queue_depth =
          std::max(stats_.max_queue_depth, pending_.size());
      queue_depth_sum_ += static_cast<double>(pending_.size());
    } else if (type == wire::RecordType::kShardResult) {
      auto result = std::make_unique<ShardResultRecord>();
      if (!wire::Decode(frame, result.get()) ||
          result->worker != channel.worker || channel.result != nullptr) {
        SetError("shard " + std::to_string(channel.worker) +
                 " sent an invalid result record");
        break;
      }
      channel.result = std::move(result);
    } else {
      SetError("shard " + std::to_string(channel.worker) +
               " sent an unexpected record type");
      break;
    }
  }
  channel.buffer.erase(channel.buffer.begin(),
                       channel.buffer.begin() + static_cast<long>(offset));
}

void FrameStreamTransport::ReadChannel(Channel& channel) {
  uint8_t chunk[65536];
  while (true) {
    const ssize_t n = ::read(channel.read_fd, chunk, sizeof(chunk));
    if (n > 0) {
      channel.buffer.insert(channel.buffer.end(), chunk, chunk + n);
      ExtractFrames(channel);
      if (static_cast<size_t>(n) < sizeof(chunk)) {
        return;  // Stream drained for now.
      }
      continue;
    }
    if (n == 0) {
      // EOF. Clean only when the shard already delivered its final
      // result record with no partial frame left behind.
      channel.open = false;
      if (channel.result == nullptr || !channel.buffer.empty()) {
        MarkDead(channel.worker);
        SetError("shard " + std::to_string(channel.worker) +
                 " closed its delta stream mid-campaign");
      }
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    }
    channel.open = false;
    if (errno == ECONNRESET || errno == EPIPE) {
      // A socket peer that vanished (child SIGKILLed before EOF could be
      // sent cleanly) surfaces as a reset, not an EOF — same fate, same
      // attribution.
      MarkDead(channel.worker);
      SetError("shard " + std::to_string(channel.worker) +
               " dropped its connection mid-campaign: " +
               SafeStrerror(errno));
      return;
    }
    SetError("shard " + std::to_string(channel.worker) +
             " delta stream read failed: " + SafeStrerror(errno));
    return;
  }
}

bool FrameStreamTransport::PumpOnce() {
  if (aborted_) {
    return false;
  }
  if (!error().empty()) {
    return false;
  }
  std::vector<pollfd> fds;
  std::vector<Channel*> polled;
  for (Channel& channel : channels_) {
    if (channel.open) {
      fds.push_back({channel.read_fd, POLLIN, 0});
      polled.push_back(&channel);
    }
  }
  if (polled.empty()) {
    SetError("every shard closed its delta stream before the campaign "
             "completed");
    return false;
  }
  if (abort_rd_ >= 0) {
    fds.push_back({abort_rd_, POLLIN, 0});
  }
  int r;
  do {
    r = ::poll(fds.data(), fds.size(), -1);
  } while (r < 0 && errno == EINTR);
  if (r < 0) {
    SetError(std::string("poll failed: ") + SafeStrerror(errno));
    return false;
  }
  if (aborted_) {
    return false;
  }
  for (size_t i = 0; i < polled.size(); ++i) {
    if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
      ReadChannel(*polled[i]);
    }
  }
  return error().empty();
}

bool FrameStreamTransport::Drain(size_t max_batch,
                                 std::vector<wire::Buffer>* out) {
  out->clear();
  while (pending_.empty()) {
    if (!PumpOnce()) {
      return false;
    }
  }
  const size_t n = std::min(pending_.size(), std::max<size_t>(max_batch, 1));
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return true;
}

bool FrameStreamTransport::SendFeedback(int worker,
                                        const wire::Buffer& frame) {
  if (aborted_) {
    return false;
  }
  for (Channel& channel : channels_) {
    if (channel.worker != worker) {
      continue;
    }
    if (channel.write_fd < 0 || !WritePipeFrame(channel.write_fd, frame)) {
      // WritePipeFrame already absorbed EAGAIN (a slow-but-alive peer is
      // backpressure, not a failure), so reaching here means a real
      // error; EPIPE/ECONNRESET specifically mean the peer is gone.
      const int err = errno;
      if (channel.write_fd >= 0 &&
          (err == EPIPE || err == ECONNRESET)) {
        MarkDead(worker);
        SetError("feedback write to shard " + std::to_string(worker) +
                 " failed: shard dead (" + SafeStrerror(err) + ")");
      } else {
        SetError("feedback write to shard " + std::to_string(worker) +
                 " failed: " +
                 (channel.write_fd < 0 ? "no stream" : SafeStrerror(err)));
      }
      return false;
    }
    MutexLock lock(&mu_);
    ++stats_.feedback_records;
    stats_.feedback_bytes += frame.size();
    return true;
  }
  SetError("feedback for unknown shard " + std::to_string(worker));
  return false;
}

bool FrameStreamTransport::CollectResults() {
  auto all_collected = [&] {
    for (const Channel& channel : channels_) {
      if (channel.result == nullptr) {
        return false;
      }
    }
    return true;
  };
  while (!all_collected()) {
    if (!PumpOnce()) {
      return false;
    }
  }
  return true;
}

const ShardResultRecord* FrameStreamTransport::shard_result(
    int worker) const {
  for (const Channel& channel : channels_) {
    if (channel.worker == worker) {
      return channel.result.get();
    }
  }
  return nullptr;
}

void FrameStreamTransport::Abort() {
  aborted_ = true;
  if (abort_wr_ >= 0) {
    const uint8_t byte = 1;
    // Best-effort wake-up; the atomic flag is the source of truth.
    [[maybe_unused]] const ssize_t n = ::write(abort_wr_, &byte, 1);
  }
}

TransportStats FrameStreamTransport::stats() const {
  MutexLock lock(&mu_);
  TransportStats out = stats_;
  out.avg_queue_depth =
      out.deltas == 0 ? 0.0
                      : queue_depth_sum_ / static_cast<double>(out.deltas);
  return out;
}

}  // namespace neco
