// PipeTransport — process-level shard transport over POSIX pipes.
//
// Each child shard (fork/exec'd by ShardSupervisor) holds the write end of
// a delta pipe and the read end of a feedback pipe. The child writes
// length-prefixed wire frames (src/core/wire.h) in a fixed sequence —
// one ShardDelta per epoch, then one ShardResultRecord — and, when corpus
// syncing is on, blocks reading one FeedbackRecord frame before every
// epoch after the first. The parent-side PipeTransport poll(2)s all delta
// pipes, cuts complete frames out of the byte streams, and demultiplexes:
// ShardDelta frames feed MergePipeline's drain loop in arrival order;
// ShardResultRecord frames park in per-worker slots the engine collects
// after the merge completes.
//
// Failure model: a shard that dies (crash, kill -9, clean-but-early exit)
// closes its delta pipe; EOF before the shard's ShardResultRecord arrived
// is recorded as a transport error and Drain() fails fast — the drainer
// never hangs waiting for an epoch that cannot complete. Writing feedback
// to a dead shard surfaces the same way (EPIPE; SIGPIPE is ignored, see
// ShardSupervisor). The engine turns transport errors plus the
// supervisor's exit reports into one thrown shard error.
//
// Deadlock freedom with syncing on: feedback for epoch E is only sent
// after every shard's epoch-E delta was *decoded*, at which point each
// shard's next blocking operation is reading that feedback — so the
// parent's feedback write always has a reader, no matter how small the
// pipe buffer is.
#ifndef SRC_CORE_TRANSPORT_PIPE_H_
#define SRC_CORE_TRANSPORT_PIPE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/transport/transport.h"

namespace neco {

// --- Child-side frame I/O (also used by the shard-child loop) ------------

// Writes one complete frame, looping over partial writes. Returns false on
// any write error (EPIPE after the parent died, etc.).
bool WritePipeFrame(int fd, const wire::Buffer& frame);

// Blocks until one complete frame was read into `*out`. Returns false on
// EOF, a read error, or an invalid frame header.
bool ReadPipeFrame(int fd, wire::Buffer* out);

// --- Parent side ---------------------------------------------------------

// The parent-side descriptors of one shard's pipe pair. PipeTransport
// takes ownership and closes them.
struct PipeShardChannel {
  int worker = 0;
  int delta_fd = -1;     // Read end: ShardDelta / ShardResultRecord frames.
  int feedback_fd = -1;  // Write end: config + FeedbackRecord frames.
};

class PipeTransport : public ShardTransport {
 public:
  explicit PipeTransport(std::vector<PipeShardChannel> channels);
  ~PipeTransport() override;

  PipeTransport(const PipeTransport&) = delete;
  PipeTransport& operator=(const PipeTransport&) = delete;

  // ShardTransport:
  bool Drain(size_t max_batch, std::vector<wire::Buffer>* out) override;
  bool SendFeedback(int worker, const wire::Buffer& frame) override;
  void Abort() override;
  std::string error() const override;
  TransportStats stats() const override;

  // After the merge loop finished: keeps reading until every shard's
  // ShardResultRecord arrived (they follow the final deltas, so they may
  // or may not be buffered already). Returns false on abort or error.
  bool CollectResults();

  // Worker `worker`'s final summary, or nullptr if it never arrived.
  const ShardResultRecord* shard_result(int worker) const;

  // The first worker observed dead (mid-campaign EOF on its delta pipe,
  // or EPIPE writing its feedback), or -1. "Dead" is a kernel-level fact
  // — those conditions only arise once the child's descriptors closed —
  // so the engine can reap this specific child for its exit status when
  // composing the shard error. (A corrupt frame does NOT set this: the
  // sender of garbage may well still be running.)
  int dead_worker() const { return dead_worker_; }

 private:
  struct Channel {
    int worker = 0;
    int delta_fd = -1;
    int feedback_fd = -1;
    bool open = true;
    std::vector<uint8_t> buffer;  // Partial-frame bytes read so far.
    std::unique_ptr<ShardResultRecord> result;
  };

  // Blocks in poll() until a delta stream made progress, then reads and
  // demultiplexes. Returns false on abort or transport error.
  bool PumpOnce();
  // Drains `channel`'s readable bytes and cuts complete frames.
  void ReadChannel(Channel& channel);
  void ExtractFrames(Channel& channel);
  void SetError(const std::string& message);

  std::vector<Channel> channels_;
  std::deque<wire::Buffer> pending_;  // Decoded-order ShardDelta frames.
  int abort_rd_ = -1;  // Self-pipe: Abort() wakes the poll loop.
  int abort_wr_ = -1;
  std::atomic<bool> aborted_{false};
  std::atomic<int> dead_worker_{-1};

  mutable std::mutex mu_;  // Guards error_ and stats_.
  std::string error_;
  TransportStats stats_;
  double queue_depth_sum_ = 0.0;
};

}  // namespace neco

#endif  // SRC_CORE_TRANSPORT_PIPE_H_
