// PipeTransport — process-level shard transport over POSIX pipes.
//
// Each child shard (fork/exec'd by ShardSupervisor) holds the write end of
// a delta pipe and the read end of a feedback pipe. The child writes
// length-prefixed wire frames (src/core/wire.h) in a fixed sequence —
// one ShardDelta per epoch, then one ShardResultRecord — and, when corpus
// syncing is on, blocks reading one FeedbackRecord frame before every
// epoch after the first. The parent side is the shared byte-stream engine
// (FrameStreamTransport, src/core/transport/stream.h): poll all delta
// pipes, cut complete frames out of the streams, demultiplex ShardDelta
// frames into MergePipeline's drain loop and ShardResultRecord frames
// into per-worker slots.
//
// Failure model: a shard that dies (crash, kill -9, clean-but-early exit)
// closes its delta pipe; EOF before the shard's ShardResultRecord arrived
// is recorded as a transport error and Drain() fails fast — the drainer
// never hangs waiting for an epoch that cannot complete. Writing feedback
// to a dead shard surfaces the same way (EPIPE; SIGPIPE is scoped by
// ShardSupervisor, see transport.h). The engine turns transport errors
// plus the supervisor's exit reports into one thrown shard error.
//
// Deadlock freedom with syncing on: feedback for epoch E is only sent
// after every shard's epoch-E delta was *decoded*, at which point each
// shard's next blocking operation is reading that feedback — so the
// parent's feedback write always has a reader, no matter how small the
// pipe buffer is.
#ifndef SRC_CORE_TRANSPORT_PIPE_H_
#define SRC_CORE_TRANSPORT_PIPE_H_

#include <vector>

#include "src/core/transport/stream.h"

namespace neco {

// The parent-side descriptors of one shard's pipe pair. PipeTransport
// takes ownership and closes them.
struct PipeShardChannel {
  int worker = 0;
  int delta_fd = -1;     // Read end: ShardDelta / ShardResultRecord frames.
  int feedback_fd = -1;  // Write end: config + FeedbackRecord frames.
};

class PipeTransport : public FrameStreamTransport {
 public:
  // Throws std::runtime_error (closing every descriptor it was handed)
  // when the abort self-pipe cannot be created or a channel descriptor
  // fails fcntl — a transport built on bad descriptors must not limp into
  // the drain loop.
  explicit PipeTransport(std::vector<PipeShardChannel> channels);
};

}  // namespace neco

#endif  // SRC_CORE_TRANSPORT_PIPE_H_
