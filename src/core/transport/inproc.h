// InProcTransport — the bounded in-memory MPSC queue for thread shards.
//
// This is the deque MergePipeline owned through PR 3, hoisted out behind
// the ShardTransport interface: worker threads Publish() wire-encoded
// ShardDeltas, the merge thread Drain()s them in arrival order, and a full
// queue applies backpressure (the publisher blocks until the drainer
// catches up or the transport is aborted).
//
// SendFeedback() is a no-op: thread shards live in the pipeline's address
// space and pull merged state directly through
// MergePipeline::WaitForFeedback, so nothing needs to travel back.
#ifndef SRC_CORE_TRANSPORT_INPROC_H_
#define SRC_CORE_TRANSPORT_INPROC_H_

#include <atomic>
#include <deque>

#include "src/core/transport/transport.h"
#include "src/support/mutex.h"
#include "src/support/thread_annotations.h"

namespace neco {

struct InProcTransportOptions {
  int workers = 1;
  // The drain batch the merge pipeline will use; feeds the derived
  // capacity so the common cadence never blocks a publisher.
  int merge_batch = 1;
  // Encoded deltas in flight before Publish() blocks. 0 does NOT mean
  // unbounded: it derives the default max(2 * workers, merge_batch) —
  // room for one full epoch of deltas plus a flush in flight. Explicit
  // values are honored as-is (minimum 1); callers that really want an
  // effectively unbounded queue pass SIZE_MAX. The resolved value is
  // readable through capacity(). Covered in tests/merge_pipeline_test.cc.
  size_t capacity = 0;
};

class InProcTransport : public ShardTransport {
 public:
  explicit InProcTransport(InProcTransportOptions options);

  // Producer side (worker threads): enqueues one encoded ShardDelta,
  // blocking while the queue is at capacity. Returns false when the
  // transport was aborted.
  bool Publish(wire::Buffer encoded_delta) NECO_EXCLUDES(mu_);

  // The resolved queue bound (after the 0 -> derived-default rule).
  size_t capacity() const { return capacity_; }

  // ShardTransport:
  bool Drain(size_t max_batch, std::vector<wire::Buffer>* out) override
      NECO_EXCLUDES(mu_);
  bool SendFeedback(int worker, const wire::Buffer& frame) override;
  void Abort() override NECO_EXCLUDES(mu_);
  std::string error() const override { return {}; }
  TransportStats stats() const override NECO_EXCLUDES(mu_);

 private:
  size_t capacity_ = 0;  // Const after construction.
  std::atomic<bool> aborted_{false};

  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<wire::Buffer> queue_ NECO_GUARDED_BY(mu_);
  TransportStats stats_ NECO_GUARDED_BY(mu_);
  double queue_depth_sum_ NECO_GUARDED_BY(mu_) = 0.0;
};

}  // namespace neco

#endif  // SRC_CORE_TRANSPORT_INPROC_H_
