// SocketTransport — multi-machine shard transport over TCP.
//
// The parent listens; shard children dial in. A fresh connection must
// open with exactly one ShardHelloRecord frame naming its worker; the
// parent replies with that worker's ShardChildConfigRecord and from then
// on the connection is an ordinary byte-stream channel of the shared
// engine (FrameStreamTransport, src/core/transport/stream.h): ShardDelta
// frames stream up, FeedbackRecord frames stream down, one
// ShardResultRecord — now carrying the shard's crash reproduction inputs
// — closes the campaign, exactly as over pipes.
//
// Handshake policy is reconnect-or-fail: a connection that handshakes
// badly (stray dialer, garbage bytes, unknown or duplicate worker, wrong
// magic) is dropped and the listener keeps accepting, so a launcher may
// retry a failed dial; when the accept deadline passes with shards still
// missing, the campaign fails with an error naming how many checked in.
// After the handshake the policy hardens to fail-fast: an abruptly closed
// socket (child SIGKILLed before EOF, connection reset) is the existing
// dead-shard error, attributed to the worker via dead_worker() — never a
// hung drainer.
//
// Who dials is pluggable (CampaignOptions::remote_launcher): the default
// local launcher forks or execs subprocesses of this process, so tests
// and single-machine campaigns need no ssh; a remote launcher starts the
// same --necofuzz-shard-child binary on another machine and points it at
// listen_address:port().
#ifndef SRC_CORE_TRANSPORT_SOCKET_H_
#define SRC_CORE_TRANSPORT_SOCKET_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/core/transport/stream.h"

namespace neco {

struct SocketTransportOptions {
  int workers = 1;
  // Interface to bind; "127.0.0.1" serves the local-launcher case,
  // "0.0.0.0" (plus a routable address handed to the launcher) the
  // multi-machine one.
  std::string address = "127.0.0.1";
  uint16_t port = 0;  // 0 binds an ephemeral port; see port().
  // Handshake deadline for AcceptShards().
  double accept_timeout_seconds = 30.0;
};

class SocketTransport : public FrameStreamTransport {
 public:
  // Binds and listens immediately (the listener must exist before any
  // child is launched, so a child can never dial into nothing). Throws
  // std::runtime_error when the socket cannot be created or bound.
  explicit SocketTransport(SocketTransportOptions options);
  ~SocketTransport() override;

  // The resolved listen port (meaningful after an ephemeral bind); what
  // the launcher hands to children.
  uint16_t port() const { return port_; }

  // The listening descriptor — exposed so a fork-mode child body can
  // close its inherited copy (exec'd children never see it: O_CLOEXEC).
  int listen_fd() const { return listen_fd_; }

  // Runs the handshake loop until every worker in [0, workers) has dialed
  // in, sent a valid ShardHelloRecord, and been answered with
  // `config_for_worker(worker)` — or the accept deadline passed, or
  // Abort() was called, or `keep_waiting` (when set, polled between
  // accept rounds) returned false (the engine uses it to fail fast when a
  // local child died before completing its handshake). Bad connections
  // are dropped and accepting continues (reconnect-or-fail). On success
  // the listener is closed and every connection is an adopted channel;
  // on failure error() names what went wrong. Call exactly once, before
  // the first Drain().
  bool AcceptShards(
      const std::function<wire::Buffer(int worker)>& config_for_worker,
      const std::function<bool()>& keep_waiting = nullptr);

 private:
  // Single-threaded: written in the constructor and AcceptShards(), both
  // of which the engine sequences before the merge thread's first
  // Drain(). Shared mutable state (error/stats) lives in the
  // mu_-guarded base class.
  SocketTransportOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
};

// Child side of the handshake: dials `address:port` (retrying briefly on
// a refused connection, in case the listener's accept queue is briefly
// full) and sends the ShardHelloRecord for `worker`. Returns the
// connected descriptor — the caller reads its ShardChildConfigRecord
// frame next — or -1 with a human-readable reason in `*error`.
int DialShardSocket(const std::string& address, uint16_t port, int worker,
                    std::string* error);

}  // namespace neco

#endif  // SRC_CORE_TRANSPORT_SOCKET_H_
