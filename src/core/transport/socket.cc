#include "src/core/transport/socket.h"

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <set>
#include <stdexcept>
#include <vector>

#include "src/support/errno_util.h"

namespace neco {
namespace {

// getaddrinfo wrapper; prefers a numeric parse (no resolver dependency
// for the loopback/tests case) and falls back to a name lookup for
// multi-machine hostnames.
addrinfo* ResolveAddress(const std::string& address, uint16_t port,
                         bool passive, std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = (passive ? AI_PASSIVE : 0) | AI_NUMERICHOST;
  const std::string port_text = std::to_string(port);
  addrinfo* result = nullptr;
  int rc = ::getaddrinfo(address.empty() ? nullptr : address.c_str(),
                         port_text.c_str(), &hints, &result);
  if (rc != 0) {
    hints.ai_flags = passive ? AI_PASSIVE : 0;
    rc = ::getaddrinfo(address.empty() ? nullptr : address.c_str(),
                       port_text.c_str(), &hints, &result);
  }
  if (rc != 0) {
    *error = "cannot resolve " + address + ": " + ::gai_strerror(rc);
    return nullptr;
  }
  return result;
}

uint16_t BoundPort(int fd) {
  sockaddr_storage name{};
  socklen_t name_len = sizeof(name);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&name), &name_len) != 0) {
    return 0;
  }
  if (name.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<sockaddr_in*>(&name)->sin_port);
  }
  if (name.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<sockaddr_in6*>(&name)->sin6_port);
  }
  return 0;
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportOptions options)
    : FrameStreamTransport({}), options_(std::move(options)) {
  std::string resolve_error;
  addrinfo* info = ResolveAddress(options_.address, options_.port,
                                  /*passive=*/true, &resolve_error);
  if (info == nullptr) {
    throw std::runtime_error("SocketTransport: " + resolve_error);
  }
  std::string last_error = "no usable address";
  for (addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                            ai->ai_protocol);
    if (fd < 0) {
      last_error = std::string("socket() failed: ") + SafeStrerror(errno);
      continue;
    }
    const int yes = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, options_.workers + 8) != 0) {
      last_error = std::string("bind/listen failed: ") + SafeStrerror(errno);
      ::close(fd);
      continue;
    }
    listen_fd_ = fd;
    port_ = BoundPort(fd);
    break;
  }
  ::freeaddrinfo(info);
  if (listen_fd_ < 0) {
    throw std::runtime_error("SocketTransport: cannot listen on " +
                             options_.address + ":" +
                             std::to_string(options_.port) + ": " +
                             last_error);
  }
}

SocketTransport::~SocketTransport() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
}

bool SocketTransport::AcceptShards(
    const std::function<wire::Buffer(int worker)>& config_for_worker,
    const std::function<bool()>& keep_waiting) {
  // A connection that said hello becomes a channel; one that has not yet
  // is parked here with whatever bytes arrived so far.
  struct PendingConn {
    int fd = -1;
    std::vector<uint8_t> buffer;
  };
  std::vector<PendingConn> pending;
  std::set<int> claimed;
  auto close_pending = [&] {
    for (PendingConn& conn : pending) {
      ::close(conn.fd);
    }
    pending.clear();
  };

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(
                            options_.accept_timeout_seconds);
  while (claimed.size() < static_cast<size_t>(options_.workers)) {
    if (aborted()) {
      SetError("socket handshake aborted");
      close_pending();
      return false;
    }
    if (keep_waiting && !keep_waiting()) {
      SetError("a shard died before completing the socket handshake (" +
               std::to_string(claimed.size()) + " of " +
               std::to_string(options_.workers) + " connected)");
      close_pending();
      return false;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::
        milliseconds>(deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      SetError("timed out waiting for shards to dial in (" +
               std::to_string(claimed.size()) + " of " +
               std::to_string(options_.workers) + " connected within " +
               std::to_string(options_.accept_timeout_seconds) + "s)");
      close_pending();
      return false;
    }

    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    const size_t polled_pending = pending.size();  // fds[1+i] <-> pending[i]
    for (const PendingConn& conn : pending) {
      fds.push_back({conn.fd, POLLIN, 0});
    }
    fds.push_back({abort_rd(), POLLIN, 0});
    // Cap each wait so keep_waiting() gets polled even while nothing
    // dials (a dead child never produces a poll event here).
    const int wait_ms = static_cast<int>(
        std::min<long long>(remaining.count(), keep_waiting ? 100 : 1000));
    int r;
    do {
      r = ::poll(fds.data(), fds.size(), wait_ms);
    } while (r < 0 && errno == EINTR);
    if (r < 0) {
      SetError(std::string("poll failed during handshake: ") +
               SafeStrerror(errno));
      close_pending();
      return false;
    }

    if (fds[0].revents & POLLIN) {
      const int conn = ::accept4(listen_fd_, nullptr, nullptr,
                                 SOCK_CLOEXEC | SOCK_NONBLOCK);
      if (conn >= 0) {
        pending.push_back({conn, {}});
        // Delta/feedback frames are latency-sensitive epoch boundaries.
        const int yes = 1;
        ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
      }
    }

    // Walk only the connections that were in this round's poll set (a
    // just-accepted one gets read next round); fds[1 + i] mirrors
    // pending[i]. Descending order keeps the mapping valid across
    // erases.
    for (size_t i = polled_pending; i-- > 0;) {
      if (!(fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR))) {
        continue;
      }
      PendingConn& conn = pending[i];
      uint8_t chunk[512];
      const ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR)) {
        continue;
      }
      bool reject = n <= 0;  // EOF or error before a full hello.
      int worker = -1;
      if (!reject) {
        conn.buffer.insert(conn.buffer.end(), chunk, chunk + n);
        size_t frame_size = 0;
        if (conn.buffer.size() >= wire::kFrameHeaderSize &&
            !wire::FrameSize(conn.buffer.data(), conn.buffer.size(),
                             &frame_size)) {
          reject = true;  // Not even a valid frame header.
        } else if (frame_size == 0 || conn.buffer.size() < frame_size) {
          continue;  // Hello still arriving.
        } else {
          ShardHelloRecord hello;
          // Exactly one hello frame and nothing else: a shard child
          // blocks on its config before sending anything more, so
          // trailing bytes mean this is not a shard child.
          reject = conn.buffer.size() != frame_size ||
                   !wire::Decode(conn.buffer.data(), frame_size, &hello) ||
                   hello.worker < 0 || hello.worker >= options_.workers ||
                   claimed.count(hello.worker) != 0;
          worker = hello.worker;
        }
      }
      if (reject) {
        // Reconnect-or-fail: drop this dialer, keep listening — the
        // launcher may retry, and a stray connection must not sink the
        // campaign.
        ::close(conn.fd);
        pending.erase(pending.begin() + static_cast<long>(i));
        continue;
      }
      if (!WritePipeFrame(conn.fd, config_for_worker(worker))) {
        ::close(conn.fd);
        pending.erase(pending.begin() + static_cast<long>(i));
        continue;  // The launcher may dial again.
      }
      const int fd = conn.fd;
      pending.erase(pending.begin() + static_cast<long>(i));
      if (!AdoptChannel({worker, fd, fd})) {
        close_pending();
        return false;
      }
      claimed.insert(worker);
    }
  }
  close_pending();  // Stray dialers that arrived after the roster filled.
  ::close(listen_fd_);
  listen_fd_ = -1;
  return true;
}

int DialShardSocket(const std::string& address, uint16_t port, int worker,
                    std::string* error) {
  std::string resolve_error;
  addrinfo* info =
      ResolveAddress(address, port, /*passive=*/false, &resolve_error);
  if (info == nullptr) {
    *error = resolve_error;
    return -1;
  }
  int fd = -1;
  std::string last_error = "no usable address";
  for (addrinfo* ai = info; ai != nullptr && fd < 0; ai = ai->ai_next) {
    const int candidate = ::socket(
        ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC, ai->ai_protocol);
    if (candidate < 0) {
      last_error = std::string("socket() failed: ") + SafeStrerror(errno);
      continue;
    }
    // The parent listens before launching children, so a refusal can only
    // be a transiently full accept queue; retry briefly rather than
    // declaring the shard unlaunchable.
    for (int attempt = 0; attempt < 50; ++attempt) {
      int rc;
      do {
        rc = ::connect(candidate, ai->ai_addr, ai->ai_addrlen);
      } while (rc != 0 && errno == EINTR);
      if (rc == 0) {
        fd = candidate;
        break;
      }
      last_error = std::string("connect failed: ") + SafeStrerror(errno);
      if (errno != ECONNREFUSED && errno != ETIMEDOUT) {
        break;
      }
      ::usleep(20000);
    }
    if (fd < 0) {
      ::close(candidate);
    }
  }
  ::freeaddrinfo(info);
  if (fd < 0) {
    *error = last_error;
    return -1;
  }
  const int yes = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
  ShardHelloRecord hello;
  hello.worker = worker;
  if (!WritePipeFrame(fd, wire::Encode(hello))) {
    *error = std::string("hello write failed: ") + SafeStrerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace neco
