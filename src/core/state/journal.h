// CampaignJournal — crash-consistent, resumable campaign state.
//
// A journaling campaign (CampaignOptions::state_dir) commits its progress
// at epoch granularity. The journal is a redo log: the unit of commit is
// the epoch's worker ShardDelta frames — the exact wire bytes the merge
// pipeline folded — because replaying committed deltas in (epoch, worker)
// order reconstructs the merged campaign state bit for bit (the
// determinism contract from the delta pipeline). Layout under state_dir:
//
//   MANIFEST                  wire CampaignManifestRecord: the campaign
//                             fingerprint + committed_epochs, the journal's
//                             commit point
//   epoch-<N>.journal         N's worker delta frames (worker order) +
//                             a trailing EpochCommitRecord (checksum +
//                             merged-state summary)
//   crashes/                  a CrashStore (src/core/repro): one
//                             .input/.report/.record triple per crash
//
// Commit protocol per epoch (every file via AtomicWriteFile, commit.h):
//   1. persist the epoch's new crash artifacts (idempotent; each .record
//      rename is that crash's own commit point),
//   2. write epoch-<N>.journal,
//   3. advance MANIFEST.committed_epochs — THE commit point.
// A kill anywhere in between leaves either a fully committed epoch or an
// invisible partial one (stale temp files, an epoch file the manifest
// does not name yet); resuming recommits it byte-identically.
//
// Resume: the engine re-runs the campaign from scratch — shards re-derive
// their state deterministically — and the pipeline *verifies* each
// replayed epoch's frames byte-for-byte against the journal (divergence
// means the state dir belongs to a different build/seed/target and the
// campaign fails loudly), suppressing observer events until the resume
// point. Events for an epoch only ever fire after its commit, so an
// interrupted run's observers plus the resumed run's observers see
// exactly the uninterrupted stream.
#ifndef SRC_CORE_STATE_JOURNAL_H_
#define SRC_CORE_STATE_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "src/core/repro/crash_store.h"
#include "src/core/state/commit.h"
#include "src/core/wire.h"

namespace neco {

// Journal counters, surfaced in EngineResult::journal. The wall-clock
// fsync time is excluded from any determinism comparison (like the
// pipeline/transport stats).
struct JournalStats {
  uint64_t commits = 0;          // Epochs committed by this run.
  uint64_t replayed_epochs = 0;  // Committed epochs verified on resume.
  uint64_t bytes_written = 0;    // Payload bytes durably written.
  uint64_t crash_artifacts = 0;  // Crash records persisted by this run.
  double fsync_seconds = 0.0;    // Wall time spent in fsync.
  size_t committed_epochs = 0;   // Manifest commit point after the run.
};

class CampaignJournal {
 public:
  // Opens (or creates) the journal at `dir`. A fresh directory starts at
  // committed_epochs = 0; an existing one must carry a manifest whose
  // fingerprint matches `fingerprint` exactly (committed_epochs aside) —
  // a mismatch, or a corrupt manifest, throws std::runtime_error.
  CampaignJournal(std::filesystem::path dir,
                  const CampaignManifestRecord& fingerprint);

  size_t committed_epochs() const { return committed_epochs_; }

  // Commits the next epoch (`epoch` must equal committed_epochs()):
  // writes the epoch file from `frames` + `summary` (checksum and frame
  // count are filled here), then advances the manifest. Throws
  // std::runtime_error on any write failure.
  void CommitEpoch(size_t epoch, const std::vector<wire::Buffer>& frames,
                   EpochCommitRecord summary);

  // Loads a committed epoch's delta frames (worker order). Throws
  // std::runtime_error when the file is missing, torn, fails its
  // checksum, or trails anything but a matching EpochCommitRecord.
  std::vector<wire::Buffer> LoadEpoch(size_t epoch) const;

  // Resume verification: checks that a replayed epoch's re-published
  // frames are byte-identical to the committed ones. Divergence throws —
  // it means the state dir was produced by a different campaign or
  // binary, and silently mixing the two states would corrupt both.
  void VerifyEpoch(size_t epoch, const std::vector<wire::Buffer>& frames);

  // Persists one crash artifact through the store (idempotent by bug id).
  // Returns whether the artifact was new. Throws on write failure.
  bool SaveCrashArtifact(const CrashRecord& record);

  CrashStore& crash_store() { return crash_store_; }
  JournalStats stats() const;
  const std::filesystem::path& directory() const { return dir_; }

  static std::string EpochFileName(size_t epoch) {
    return "epoch-" + std::to_string(epoch) + ".journal";
  }

 private:
  std::filesystem::path ManifestPath() const { return dir_ / "MANIFEST"; }
  void WriteManifest();

  std::filesystem::path dir_;
  CampaignManifestRecord manifest_;
  size_t committed_epochs_ = 0;
  CrashStore crash_store_;
  JournalStats stats_;
  CommitStats commit_stats_;
};

}  // namespace neco

#endif  // SRC_CORE_STATE_JOURNAL_H_
