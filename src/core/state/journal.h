// CampaignJournal — crash-consistent, resumable campaign state.
//
// A journaling campaign (CampaignOptions::state_dir) commits its progress
// at epoch granularity. The journal is a redo log: the unit of commit is
// the epoch's worker ShardDelta frames — the exact wire bytes the merge
// pipeline folded — because replaying committed deltas in (epoch, worker)
// order reconstructs the merged campaign state bit for bit (the
// determinism contract from the delta pipeline). Layout under state_dir:
//
//   MANIFEST                  wire CampaignManifestRecord: the campaign
//                             fingerprint + committed_epochs (the
//                             journal's commit point) + snapshot_epochs
//                             (the materialized horizon) + the committed
//                             crash-artifact count
//   epoch-<N>.journal         N's worker delta frames (worker order) +
//                             a trailing EpochCommitRecord (checksum +
//                             merged-state summary)
//   snapshot-<H>.state        the full merged campaign state through
//                             epoch H-1 (src/core/state/snapshot.h);
//                             resume loads the newest one and replays
//                             only the tail past it
//   crashes/                  a CrashStore (src/core/repro): one
//                             .input/.report/.record triple per crash
//
// Commit protocol per epoch (every file via AtomicWriteFile, commit.h):
//   1. persist the epoch's new crash artifacts (idempotent; each .record
//      rename is that crash's own commit point),
//   2. write epoch-<N>.journal,
//   3. at a snapshot epoch, write snapshot-<N+1>.state,
//   4. advance MANIFEST — THE commit point: committed_epochs,
//      snapshot_epochs, and the crash count move in one atomic write,
//   5. after the manifest is durable, compact: epoch and snapshot files
//      behind the *previous* horizon are deleted (one fallback generation
//      is always kept, so a corrupt newest snapshot degrades to the older
//      one, and only then to full replay).
// A kill anywhere in between leaves either a fully committed epoch or an
// invisible partial one (stale temp files, an epoch or snapshot file the
// manifest does not name yet); resuming recommits it byte-identically. A
// kill mid-compaction leaves extra already-superseded files, which the
// next compaction sweep (a bounded directory scan) removes — torn
// compaction is always recoverable because deletion never precedes the
// manifest advance.
//
// Resume: the engine seeds shards and pipeline from the newest loadable
// snapshot (LoadLatestSnapshot) and re-runs only the tail; each replayed
// tail epoch is still *verified* byte-for-byte against the journal
// (divergence means the state dir belongs to a different
// build/seed/target and the campaign fails loudly), with observer events
// suppressed until the resume point. Events for an epoch only ever fire
// after its commit, so an interrupted run's observers plus the resumed
// run's observers see exactly the uninterrupted stream — with or without
// a snapshot in the middle.
#ifndef SRC_CORE_STATE_JOURNAL_H_
#define SRC_CORE_STATE_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "src/core/repro/crash_store.h"
#include "src/core/state/commit.h"
#include "src/core/state/snapshot.h"
#include "src/core/wire.h"

namespace neco {

// Journal counters, surfaced in EngineResult::journal. The wall-clock
// fields (fsync time, reload time) are excluded from any determinism
// comparison (like the pipeline/transport stats).
struct JournalStats {
  uint64_t commits = 0;          // Epochs committed by this run.
  uint64_t replayed_epochs = 0;  // Committed epochs verified on resume.
  uint64_t bytes_written = 0;    // Payload bytes durably written.
  uint64_t crash_artifacts = 0;  // Crash records persisted by this run.
  uint64_t snapshots = 0;        // Snapshot files committed by this run.
  uint64_t compacted_files = 0;  // Superseded files deleted by this run.
  uint64_t reload_ns = 0;        // Wall time opening durable state: crash
                                 // store reload + snapshot load.
  double fsync_seconds = 0.0;    // Wall time spent in fsync.
  size_t committed_epochs = 0;   // Manifest commit point after the run.
  size_t snapshot_epochs = 0;    // Manifest snapshot horizon after the run.
};

class CampaignJournal {
 public:
  // Opens (or creates) the journal at `dir`. A fresh directory starts at
  // committed_epochs = 0; an existing one must carry a manifest whose
  // fingerprint matches `fingerprint` exactly (committed_epochs aside) —
  // a mismatch, or a corrupt manifest, throws std::runtime_error.
  CampaignJournal(std::filesystem::path dir,
                  const CampaignManifestRecord& fingerprint);

  size_t committed_epochs() const { return committed_epochs_; }

  // The materialized horizon: epochs [0, snapshot_epochs()) are covered
  // by a committed snapshot file, so a resume replays only
  // [snapshot_epochs(), committed_epochs()).
  size_t snapshot_epochs() const { return snapshot_epochs_; }

  // Commits the next epoch (`epoch` must equal committed_epochs()):
  // writes the epoch file from `frames` + `summary` (checksum and frame
  // count are filled here), then advances the manifest. Throws
  // std::runtime_error on any write failure.
  //
  // When `snapshot` is non-null it must materialize exactly epochs
  // [0, epoch + 1); its file is made durable between the epoch file and
  // the manifest advance, the manifest moves committed_epochs and
  // snapshot_epochs in one atomic write, and files behind the previous
  // horizon are compacted away afterwards — durability strictly before
  // any deletion.
  void CommitEpoch(size_t epoch, const std::vector<wire::Buffer>& frames,
                   EpochCommitRecord summary,
                   const CampaignSnapshot* snapshot = nullptr);

  // Loads the newest decodable snapshot at or below the manifest horizon
  // into `*out` and returns its horizon. Returns 0 (out untouched) when
  // no snapshot loads — a torn or corrupt file is a recoverable
  // condition, not an error: the scan falls back to the previous
  // generation, and a 0 return means full replay.
  size_t LoadLatestSnapshot(CampaignSnapshot* out);

  // Loads a committed epoch's delta frames (worker order). Throws
  // std::runtime_error when the file is missing, torn, fails its
  // checksum, or trails anything but a matching EpochCommitRecord.
  std::vector<wire::Buffer> LoadEpoch(size_t epoch) const;

  // Resume verification: checks that a replayed epoch's re-published
  // frames are byte-identical to the committed ones. Divergence throws —
  // it means the state dir was produced by a different campaign or
  // binary, and silently mixing the two states would corrupt both.
  // Streams the committed file in fixed-size chunks (running FNV-1a +
  // in-place comparison) instead of buffering it, so verification of a
  // large epoch costs one chunk of memory, not a copy of the file.
  void VerifyEpoch(size_t epoch, const std::vector<wire::Buffer>& frames);

  // Persists one crash artifact through the store (idempotent by bug id).
  // Returns whether the artifact was new. Throws on write failure.
  bool SaveCrashArtifact(const CrashRecord& record);

  CrashStore& crash_store() { return crash_store_; }
  JournalStats stats() const;
  const std::filesystem::path& directory() const { return dir_; }

  static std::string EpochFileName(size_t epoch) {
    return "epoch-" + std::to_string(epoch) + ".journal";
  }

 private:
  std::filesystem::path ManifestPath() const { return dir_ / "MANIFEST"; }
  void WriteManifest();
  // Deletes epoch and snapshot files strictly below `horizon` (a bounded
  // directory scan, so a torn previous compaction is swept up too).
  // Deletion-only: errors are ignored — a file that refuses to die is
  // retried by the next sweep, never a commit failure.
  void CompactBelow(size_t horizon);
  // Reads and strictly decodes dir/MANIFEST before any member that
  // depends on it constructs (the crash store takes its artifact-count
  // hint from here). nullopt for a fresh directory; throws on a corrupt
  // file.
  static std::optional<CampaignManifestRecord> ReadManifestFile(
      const std::filesystem::path& dir);

  std::filesystem::path dir_;
  CampaignManifestRecord manifest_;
  // The manifest found on open (nullopt for a fresh directory); consumed
  // by the constructor body. Declared before crash_store_ so the store's
  // member-initializer can read the artifact-count hint.
  std::optional<CampaignManifestRecord> disk_manifest_;
  size_t committed_epochs_ = 0;
  size_t snapshot_epochs_ = 0;
  CrashStore crash_store_;
  JournalStats stats_;
  CommitStats commit_stats_;
};

}  // namespace neco

#endif  // SRC_CORE_STATE_JOURNAL_H_
