// The durable-write primitive under NecoFuzz's crash-consistent state
// (TxFS-style transactional journaling): write to a temp file, fsync the
// file, atomically rename it into place, then fsync the parent directory
// so the rename itself is durable. A state transition built out of this
// primitive either happened atomically and durably, or it didn't happen
// at all — a reader after power loss or kill -9 sees the old contents or
// the new contents, never a torn mix, and never a renamed file whose
// bytes were lost.
//
// CampaignJournal (journal.h) and CrashStore (src/core/repro) build every
// on-disk mutation out of AtomicWriteFile; nothing in the state layer
// writes a file any other way.
#ifndef SRC_CORE_STATE_COMMIT_H_
#define SRC_CORE_STATE_COMMIT_H_

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace neco {

// Durability accounting for the commit primitive; EngineResult surfaces
// the journal's accumulated totals.
struct CommitStats {
  uint64_t files = 0;          // Atomic writes completed.
  uint64_t bytes = 0;          // Payload bytes durably written.
  double fsync_seconds = 0.0;  // Wall time spent in fsync (file + dir).
};

// Atomically and durably replaces `path` with `size` bytes of `data`
// (temp file `<path>.tmp` → fsync → rename → fsync parent directory).
// Returns false and fills `*error` (errno text, path) on any failure; the
// temp file is removed on the failure paths that created it. `stats` (may
// be null) accumulates the write.
bool AtomicWriteFile(const std::filesystem::path& path, const uint8_t* data,
                     size_t size, std::string* error,
                     CommitStats* stats = nullptr);

// Reads a whole file; returns false (and clears `*out`) when the file
// cannot be opened or read.
bool ReadFileBytes(const std::filesystem::path& path,
                   std::vector<uint8_t>* out);

}  // namespace neco

#endif  // SRC_CORE_STATE_COMMIT_H_
