// Materialized campaign snapshots — the O(tail) side of resume.
//
// A snapshot file (snapshot-<horizon>.state under the state dir) holds
// the complete merged campaign state at an epoch boundary, so a resumed
// campaign deserializes it and replays only the epochs past the horizon
// instead of re-executing the whole history. File layout (wire v6,
// src/core/wire.h):
//
//   frame 0      SnapshotMergedStateRecord — the merge pipeline's global
//                state (virgin map, covered set, findings, corpus pool
//                slice, series, feedback bookkeeping)
//   frame 1..W   one WorkerStateRecord per shard, worker-id order
//   trailer      CampaignSnapshotRecord — magic + horizon + worker count
//                + FNV-1a checksum over the preceding frames
//
// The shape deliberately mirrors an epoch journal file (frames + a
// checksummed trailer) so the same strict frame-cutting discipline
// applies: DecodeSnapshotFile() rejects a torn, truncated, or damaged
// file outright, and the journal falls back — older snapshot generation
// first, full replay last. A snapshot is committed through
// AtomicWriteFile and only becomes load-bearing when the MANIFEST's
// snapshot_epochs advances past it, so a kill mid-snapshot leaves the
// previous commit point fully intact.
#ifndef SRC_CORE_STATE_SNAPSHOT_H_
#define SRC_CORE_STATE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/wire.h"

namespace neco {

// The in-memory form of one snapshot file: everything a campaign needs to
// continue bit-exactly from `epochs_covered` committed epochs.
struct CampaignSnapshot {
  uint64_t epochs_covered = 0;  // The horizon: epochs [0, epochs_covered)
                                // are materialized here.
  SnapshotMergedStateRecord merged;
  std::vector<WorkerStateRecord> workers;  // Worker-id order.
};

// "snapshot-<horizon>.state".
std::string SnapshotFileName(size_t horizon);

// Serializes the snapshot into one file image (frames + trailer, checksum
// filled here). The caller makes it durable through AtomicWriteFile.
wire::Buffer EncodeSnapshotFile(const CampaignSnapshot& snapshot);

// Strict inverse: cuts frames, validates the trailer (magic, horizon,
// worker count, checksum) and every record, and fills `*out`. Returns
// false — never throws — on any tear or corruption: an unreadable
// snapshot is a recoverable condition (resume falls back), not an error.
bool DecodeSnapshotFile(const uint8_t* data, size_t size,
                        CampaignSnapshot* out);

}  // namespace neco

#endif  // SRC_CORE_STATE_SNAPSHOT_H_
