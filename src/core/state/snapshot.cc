#include "src/core/state/snapshot.h"

#include <utility>

namespace neco {
namespace {

// Same FNV-1a 64 the journal uses over epoch files: cheap, endian-free,
// deterministic across hosts.
uint64_t Fnv1a(uint64_t hash, const uint8_t* data, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}
constexpr uint64_t kFnvOffset = 14695981039346656037ULL;

}  // namespace

std::string SnapshotFileName(size_t horizon) {
  return "snapshot-" + std::to_string(horizon) + ".state";
}

wire::Buffer EncodeSnapshotFile(const CampaignSnapshot& snapshot) {
  std::vector<wire::Buffer> frames;
  frames.reserve(1 + snapshot.workers.size());
  frames.push_back(wire::Encode(snapshot.merged));
  for (const WorkerStateRecord& worker : snapshot.workers) {
    frames.push_back(wire::Encode(worker));
  }

  CampaignSnapshotRecord trailer;
  trailer.epochs_covered = snapshot.epochs_covered;
  trailer.workers = static_cast<int>(snapshot.workers.size());
  trailer.checksum = kFnvOffset;
  size_t total = 0;
  for (const wire::Buffer& frame : frames) {
    trailer.checksum = Fnv1a(trailer.checksum, frame.data(), frame.size());
    total += frame.size();
  }
  const wire::Buffer trailer_frame = wire::Encode(trailer);

  wire::Buffer file;
  file.reserve(total + trailer_frame.size());
  for (const wire::Buffer& frame : frames) {
    file.insert(file.end(), frame.begin(), frame.end());
  }
  file.insert(file.end(), trailer_frame.begin(), trailer_frame.end());
  return file;
}

bool DecodeSnapshotFile(const uint8_t* data, size_t size,
                        CampaignSnapshot* out) {
  // Pass 1: cut frames (offset + length only, no decode yet) and find the
  // trailer. Any tear — a frame header that does not fit, a length that
  // overruns the file, trailing garbage — rejects the whole file.
  struct Cut {
    size_t pos = 0;
    size_t size = 0;
  };
  std::vector<Cut> cuts;
  size_t pos = 0;
  while (pos < size) {
    size_t frame_size = 0;
    if (!wire::FrameSize(data + pos, size - pos, &frame_size) ||
        frame_size > size - pos) {
      return false;
    }
    cuts.push_back({pos, frame_size});
    pos += frame_size;
  }
  if (cuts.size() < 2) {
    return false;  // At least the merged record and the trailer.
  }

  const Cut trailer_cut = cuts.back();
  cuts.pop_back();
  CampaignSnapshotRecord trailer;
  if (!wire::Decode(data + trailer_cut.pos, trailer_cut.size, &trailer)) {
    return false;
  }
  // The trailer must account for exactly the frames present (one merged
  // record plus one per worker) and their bytes must hash to its checksum
  // — a truncated-then-repadded or spliced file fails here even when each
  // surviving frame decodes cleanly.
  if (trailer.workers < 0 ||
      cuts.size() != 1 + static_cast<size_t>(trailer.workers)) {
    return false;
  }
  uint64_t checksum = kFnvOffset;
  for (const Cut& cut : cuts) {
    checksum = Fnv1a(checksum, data + cut.pos, cut.size);
  }
  if (checksum != trailer.checksum) {
    return false;
  }

  CampaignSnapshot snapshot;
  snapshot.epochs_covered = trailer.epochs_covered;
  if (!wire::Decode(data + cuts[0].pos, cuts[0].size, &snapshot.merged) ||
      snapshot.merged.epochs_covered != trailer.epochs_covered) {
    return false;
  }
  snapshot.workers.resize(static_cast<size_t>(trailer.workers));
  for (size_t w = 0; w < snapshot.workers.size(); ++w) {
    WorkerStateRecord& worker = snapshot.workers[w];
    if (!wire::Decode(data + cuts[w + 1].pos, cuts[w + 1].size, &worker) ||
        worker.worker != static_cast<int>(w) ||
        worker.epochs_covered != trailer.epochs_covered) {
      return false;
    }
  }
  *out = std::move(snapshot);
  return true;
}

}  // namespace neco
