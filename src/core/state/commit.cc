#include "src/core/state/commit.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

#include "src/support/errno_util.h"

namespace neco {
namespace {

using Clock = std::chrono::steady_clock;

std::string ErrnoText(const std::string& what,
                      const std::filesystem::path& path, int err) {
  return what + " " + path.string() + ": " + SafeStrerror(err);
}

// Fsync under timing; EINTR-retried like the write loop below.
bool FsyncFd(int fd, CommitStats* stats) {
  const auto start = Clock::now();
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (stats != nullptr) {
    stats->fsync_seconds +=
        std::chrono::duration<double>(Clock::now() - start).count();
  }
  return rc == 0;
}

}  // namespace

bool AtomicWriteFile(const std::filesystem::path& path, const uint8_t* data,
                     size_t size, std::string* error, CommitStats* stats) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    if (error != nullptr) *error = ErrnoText("open", tmp, errno);
    return false;
  }
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      if (error != nullptr) *error = ErrnoText("write", tmp, err);
      return false;
    }
    written += static_cast<size_t>(n);
  }
  if (!FsyncFd(fd, stats)) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    if (error != nullptr) *error = ErrnoText("fsync", tmp, err);
    return false;
  }
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    if (error != nullptr) *error = ErrnoText("close", tmp, err);
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    if (error != nullptr) *error = ErrnoText("rename", tmp, err);
    return false;
  }
  // The rename is only durable once the directory entry is; without this
  // fsync a crash can resurrect the old file (or neither).
  const std::filesystem::path dir =
      path.has_parent_path() ? path.parent_path()
                             : std::filesystem::path(".");
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd < 0) {
    if (error != nullptr) *error = ErrnoText("open dir", dir, errno);
    return false;
  }
  if (!FsyncFd(dir_fd, stats)) {
    const int err = errno;
    ::close(dir_fd);
    if (error != nullptr) *error = ErrnoText("fsync dir", dir, err);
    return false;
  }
  ::close(dir_fd);
  if (stats != nullptr) {
    ++stats->files;
    stats->bytes += size;
  }
  return true;
}

bool ReadFileBytes(const std::filesystem::path& path,
                   std::vector<uint8_t>* out) {
  out->clear();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return false;
  }
  uint8_t chunk[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      out->clear();
      return false;
    }
    if (n == 0) {
      break;
    }
    out->insert(out->end(), chunk, chunk + n);
  }
  ::close(fd);
  return true;
}

}  // namespace neco
