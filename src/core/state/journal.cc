#include "src/core/state/journal.h"

#include <stdexcept>
#include <utility>

namespace neco {
namespace {

// FNV-1a 64: cheap, endian-free, and deterministic across hosts — all an
// integrity check over already-strictly-decoded frames needs.
uint64_t Fnv1a(uint64_t hash, const uint8_t* data, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}
constexpr uint64_t kFnvOffset = 14695981039346656037ULL;

uint64_t ChecksumFrames(const std::vector<wire::Buffer>& frames) {
  uint64_t hash = kFnvOffset;
  for (const wire::Buffer& frame : frames) {
    hash = Fnv1a(hash, frame.data(), frame.size());
  }
  return hash;
}

// The fingerprint fields must match exactly; committed_epochs is the only
// mutable field of the manifest.
std::string FingerprintMismatch(const CampaignManifestRecord& disk,
                                const CampaignManifestRecord& run) {
  auto differs = [](const std::string& field) {
    return "fingerprint mismatch (" + field + ")";
  };
  if (disk.epochs != run.epochs) return differs("epochs");
  if (disk.workers != run.workers) return differs("workers");
  if (disk.samples != run.samples) return differs("samples");
  if (disk.arch != run.arch) return differs("arch");
  if (disk.iterations != run.iterations) return differs("iterations");
  if (disk.seed != run.seed) return differs("seed");
  if (disk.corpus_sync != run.corpus_sync) return differs("corpus_sync");
  if (disk.coverage_guidance != run.coverage_guidance) {
    return differs("coverage_guidance");
  }
  if (disk.havoc_stack != run.havoc_stack) return differs("havoc_stack");
  if (disk.splice_percent != run.splice_percent) {
    return differs("splice_percent");
  }
  if (disk.use_harness != run.use_harness) return differs("use_harness");
  if (disk.use_validator != run.use_validator) {
    return differs("use_validator");
  }
  if (disk.use_configurator != run.use_configurator) {
    return differs("use_configurator");
  }
  if (disk.oracle_interval != run.oracle_interval) {
    return differs("oracle_interval");
  }
  if (disk.target != run.target) return differs("target");
  return {};
}

}  // namespace

CampaignJournal::CampaignJournal(std::filesystem::path dir,
                                 const CampaignManifestRecord& fingerprint)
    : dir_(std::move(dir)),
      manifest_(fingerprint),
      // Creating crashes/ creates the state dir itself on the way.
      crash_store_(dir_ / "crashes") {
  manifest_.committed_epochs = 0;
  std::error_code ec;
  if (std::filesystem::exists(ManifestPath(), ec)) {
    std::vector<uint8_t> bytes;
    CampaignManifestRecord disk;
    if (!ReadFileBytes(ManifestPath(), &bytes) ||
        !wire::Decode(bytes.data(), bytes.size(), &disk)) {
      throw std::runtime_error("CampaignJournal: corrupt manifest at " +
                               ManifestPath().string());
    }
    const std::string mismatch = FingerprintMismatch(disk, fingerprint);
    if (!mismatch.empty()) {
      throw std::runtime_error(
          "CampaignJournal: " + dir_.string() +
          " belongs to a different campaign: " + mismatch +
          "; use a fresh state_dir (or the original options) to resume");
    }
    manifest_.committed_epochs = disk.committed_epochs;
    committed_epochs_ = static_cast<size_t>(disk.committed_epochs);
  } else {
    // Stamp the fingerprint immediately: a directory is claimed by its
    // campaign at open, so even a run that dies before its first commit
    // rejects a mismatched resume.
    WriteManifest();
  }
}

void CampaignJournal::WriteManifest() {
  manifest_.committed_epochs = committed_epochs_;
  const wire::Buffer frame = wire::Encode(manifest_);
  std::string error;
  if (!AtomicWriteFile(ManifestPath(), frame.data(), frame.size(), &error,
                       &commit_stats_)) {
    throw std::runtime_error("CampaignJournal: " + error);
  }
}

void CampaignJournal::CommitEpoch(size_t epoch,
                                  const std::vector<wire::Buffer>& frames,
                                  EpochCommitRecord summary) {
  if (epoch != committed_epochs_) {
    throw std::logic_error("CampaignJournal: commit for epoch " +
                           std::to_string(epoch) + " but commit point is " +
                           std::to_string(committed_epochs_));
  }
  summary.epoch = epoch;
  summary.workers = static_cast<int>(frames.size());
  summary.checksum = ChecksumFrames(frames);
  wire::Buffer file;
  for (const wire::Buffer& frame : frames) {
    file.insert(file.end(), frame.begin(), frame.end());
  }
  const wire::Buffer trailer = wire::Encode(summary);
  file.insert(file.end(), trailer.begin(), trailer.end());
  std::string error;
  if (!AtomicWriteFile(dir_ / EpochFileName(epoch), file.data(), file.size(),
                       &error, &commit_stats_)) {
    throw std::runtime_error("CampaignJournal: " + error);
  }
  // Only now — with the epoch file durable — does the commit point move.
  ++committed_epochs_;
  WriteManifest();
  ++stats_.commits;
}

std::vector<wire::Buffer> CampaignJournal::LoadEpoch(size_t epoch) const {
  const std::filesystem::path path = dir_ / EpochFileName(epoch);
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes)) {
    throw std::runtime_error("CampaignJournal: cannot read " + path.string());
  }
  std::vector<wire::Buffer> frames;
  size_t pos = 0;
  while (pos < bytes.size()) {
    size_t frame_size = 0;
    if (!wire::FrameSize(bytes.data() + pos, bytes.size() - pos,
                         &frame_size) ||
        frame_size > bytes.size() - pos) {
      throw std::runtime_error("CampaignJournal: torn epoch file " +
                               path.string());
    }
    frames.emplace_back(bytes.begin() + static_cast<ptrdiff_t>(pos),
                        bytes.begin() + static_cast<ptrdiff_t>(pos) +
                            static_cast<ptrdiff_t>(frame_size));
    pos += frame_size;
  }
  EpochCommitRecord trailer;
  if (frames.empty() ||
      !wire::Decode(frames.back().data(), frames.back().size(), &trailer)) {
    throw std::runtime_error(
        "CampaignJournal: epoch file missing its commit record: " +
        path.string());
  }
  frames.pop_back();
  if (trailer.epoch != epoch ||
      trailer.workers != static_cast<int>(frames.size()) ||
      trailer.checksum != ChecksumFrames(frames)) {
    throw std::runtime_error("CampaignJournal: corrupt epoch file " +
                             path.string());
  }
  return frames;
}

void CampaignJournal::VerifyEpoch(size_t epoch,
                                  const std::vector<wire::Buffer>& frames) {
  const std::vector<wire::Buffer> committed = LoadEpoch(epoch);
  if (committed.size() != frames.size()) {
    throw std::runtime_error(
        "CampaignJournal: epoch " + std::to_string(epoch) + " replayed " +
        std::to_string(frames.size()) + " deltas but the journal committed " +
        std::to_string(committed.size()));
  }
  for (size_t i = 0; i < frames.size(); ++i) {
    if (committed[i] != frames[i]) {
      throw std::runtime_error(
          "CampaignJournal: resume divergence at epoch " +
          std::to_string(epoch) + ", shard " + std::to_string(i) +
          " — the state dir was produced by a different campaign or binary");
    }
  }
  ++stats_.replayed_epochs;
}

bool CampaignJournal::SaveCrashArtifact(const CrashRecord& record) {
  const bool fresh = crash_store_.Save(record);
  if (fresh) {
    ++stats_.crash_artifacts;
  }
  return fresh;
}

JournalStats CampaignJournal::stats() const {
  JournalStats out = stats_;
  out.bytes_written = commit_stats_.bytes;
  out.fsync_seconds = commit_stats_.fsync_seconds;
  out.committed_epochs = committed_epochs_;
  return out;
}

}  // namespace neco
