#include "src/core/state/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "src/support/errno_util.h"

namespace neco {
namespace {

// FNV-1a 64: cheap, endian-free, and deterministic across hosts — all an
// integrity check over already-strictly-decoded frames needs.
uint64_t Fnv1a(uint64_t hash, const uint8_t* data, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}
constexpr uint64_t kFnvOffset = 14695981039346656037ULL;

uint64_t ChecksumFrames(const std::vector<wire::Buffer>& frames) {
  uint64_t hash = kFnvOffset;
  for (const wire::Buffer& frame : frames) {
    hash = Fnv1a(hash, frame.data(), frame.size());
  }
  return hash;
}

// Parses "<prefix><decimal><suffix>" (an epoch or snapshot file name)
// into its number; false for anything else, including a bare or
// non-numeric middle, so stray files in the state dir are never touched.
bool ParseIndexedName(const std::string& name, const std::string& prefix,
                      const std::string& suffix, size_t* out) {
  if (name.size() <= prefix.size() + suffix.size() ||
      name.compare(0, prefix.size(), prefix) != 0 ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  size_t value = 0;
  for (size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  *out = value;
  return true;
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

// The fingerprint fields must match exactly; committed_epochs,
// snapshot_epochs, and crash_artifacts are the manifest's only mutable
// fields.
std::string FingerprintMismatch(const CampaignManifestRecord& disk,
                                const CampaignManifestRecord& run) {
  auto differs = [](const std::string& field) {
    return "fingerprint mismatch (" + field + ")";
  };
  if (disk.epochs != run.epochs) return differs("epochs");
  if (disk.workers != run.workers) return differs("workers");
  if (disk.samples != run.samples) return differs("samples");
  if (disk.arch != run.arch) return differs("arch");
  if (disk.iterations != run.iterations) return differs("iterations");
  if (disk.seed != run.seed) return differs("seed");
  if (disk.corpus_sync != run.corpus_sync) return differs("corpus_sync");
  if (disk.coverage_guidance != run.coverage_guidance) {
    return differs("coverage_guidance");
  }
  if (disk.havoc_stack != run.havoc_stack) return differs("havoc_stack");
  if (disk.splice_percent != run.splice_percent) {
    return differs("splice_percent");
  }
  if (disk.use_harness != run.use_harness) return differs("use_harness");
  if (disk.use_validator != run.use_validator) {
    return differs("use_validator");
  }
  if (disk.use_configurator != run.use_configurator) {
    return differs("use_configurator");
  }
  if (disk.oracle_interval != run.oracle_interval) {
    return differs("oracle_interval");
  }
  if (disk.target != run.target) return differs("target");
  return {};
}

}  // namespace

std::optional<CampaignManifestRecord> CampaignJournal::ReadManifestFile(
    const std::filesystem::path& dir) {
  const std::filesystem::path path = dir / "MANIFEST";
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return std::nullopt;
  }
  std::vector<uint8_t> bytes;
  CampaignManifestRecord disk;
  if (!ReadFileBytes(path, &bytes) ||
      !wire::Decode(bytes.data(), bytes.size(), &disk)) {
    throw std::runtime_error("CampaignJournal: corrupt manifest at " +
                             path.string());
  }
  return disk;
}

CampaignJournal::CampaignJournal(std::filesystem::path dir,
                                 const CampaignManifestRecord& fingerprint)
    : dir_(std::move(dir)),
      manifest_(fingerprint),
      // The manifest is read before the crash store constructs so the
      // store can take the committed artifact count as its reload hint
      // (0 skips the directory scan outright).
      disk_manifest_(ReadManifestFile(dir_)),
      // Creating crashes/ creates the state dir itself on the way.
      crash_store_(dir_ / "crashes",
                   disk_manifest_.has_value()
                       ? std::optional<uint64_t>(disk_manifest_->crash_artifacts)
                       : std::nullopt) {
  stats_.reload_ns += crash_store_.reload_ns();
  manifest_.committed_epochs = 0;
  manifest_.snapshot_epochs = 0;
  manifest_.crash_artifacts = 0;
  if (disk_manifest_.has_value()) {
    const std::string mismatch =
        FingerprintMismatch(*disk_manifest_, fingerprint);
    if (!mismatch.empty()) {
      throw std::runtime_error(
          "CampaignJournal: " + dir_.string() +
          " belongs to a different campaign: " + mismatch +
          "; use a fresh state_dir (or the original options) to resume");
    }
    committed_epochs_ = static_cast<size_t>(disk_manifest_->committed_epochs);
    snapshot_epochs_ = static_cast<size_t>(disk_manifest_->snapshot_epochs);
    manifest_.committed_epochs = disk_manifest_->committed_epochs;
    manifest_.snapshot_epochs = disk_manifest_->snapshot_epochs;
    manifest_.crash_artifacts = disk_manifest_->crash_artifacts;
    disk_manifest_.reset();
  } else {
    // Stamp the fingerprint immediately: a directory is claimed by its
    // campaign at open, so even a run that dies before its first commit
    // rejects a mismatched resume.
    WriteManifest();
  }
}

void CampaignJournal::WriteManifest() {
  manifest_.committed_epochs = committed_epochs_;
  manifest_.snapshot_epochs = snapshot_epochs_;
  manifest_.crash_artifacts = crash_store_.records().size();
  const wire::Buffer frame = wire::Encode(manifest_);
  std::string error;
  if (!AtomicWriteFile(ManifestPath(), frame.data(), frame.size(), &error,
                       &commit_stats_)) {
    throw std::runtime_error("CampaignJournal: " + error);
  }
}

void CampaignJournal::CommitEpoch(size_t epoch,
                                  const std::vector<wire::Buffer>& frames,
                                  EpochCommitRecord summary,
                                  const CampaignSnapshot* snapshot) {
  if (epoch != committed_epochs_) {
    throw std::logic_error("CampaignJournal: commit for epoch " +
                           std::to_string(epoch) + " but commit point is " +
                           std::to_string(committed_epochs_));
  }
  if (snapshot != nullptr && snapshot->epochs_covered != epoch + 1) {
    throw std::logic_error(
        "CampaignJournal: snapshot covers " +
        std::to_string(snapshot->epochs_covered) +
        " epochs but the commit advances the point to " +
        std::to_string(epoch + 1));
  }
  summary.epoch = epoch;
  summary.workers = static_cast<int>(frames.size());
  summary.checksum = ChecksumFrames(frames);
  wire::Buffer file;
  for (const wire::Buffer& frame : frames) {
    file.insert(file.end(), frame.begin(), frame.end());
  }
  const wire::Buffer trailer = wire::Encode(summary);
  file.insert(file.end(), trailer.begin(), trailer.end());
  std::string error;
  if (!AtomicWriteFile(dir_ / EpochFileName(epoch), file.data(), file.size(),
                       &error, &commit_stats_)) {
    throw std::runtime_error("CampaignJournal: " + error);
  }
  if (snapshot != nullptr) {
    // The snapshot file is durable before the manifest names it; a kill
    // in between leaves an invisible file the next snapshot overwrites.
    const wire::Buffer image = EncodeSnapshotFile(*snapshot);
    if (!AtomicWriteFile(dir_ / SnapshotFileName(epoch + 1), image.data(),
                         image.size(), &error, &commit_stats_)) {
      throw std::runtime_error("CampaignJournal: " + error);
    }
  }
  // Only now — with the epoch (and snapshot) file durable — does the
  // commit point move; both cursors advance in one atomic manifest write.
  const size_t previous_horizon = snapshot_epochs_;
  ++committed_epochs_;
  if (snapshot != nullptr) {
    snapshot_epochs_ = epoch + 1;
  }
  WriteManifest();
  ++stats_.commits;
  if (snapshot != nullptr) {
    ++stats_.snapshots;
    // Retention: everything the *previous* horizon still needed is now
    // superseded twice over — delete it. Keeping one fallback generation
    // (snapshot-<previous>.state plus the epochs from it forward) means a
    // corrupt newest snapshot costs a shorter tail, not a full replay.
    CompactBelow(previous_horizon);
  }
}

void CampaignJournal::CompactBelow(size_t horizon) {
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir_, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    size_t index = 0;
    const bool epoch_file =
        ParseIndexedName(name, "epoch-", ".journal", &index) &&
        index < horizon;
    const bool snapshot_file =
        ParseIndexedName(name, "snapshot-", ".state", &index) &&
        index < horizon;
    if (!epoch_file && !snapshot_file) {
      continue;
    }
    std::error_code remove_ec;
    if (std::filesystem::remove(it->path(), remove_ec) && !remove_ec) {
      ++stats_.compacted_files;
    }
  }
}

size_t CampaignJournal::LoadLatestSnapshot(CampaignSnapshot* out) {
  const auto start = std::chrono::steady_clock::now();
  // Candidates: committed snapshot files at or below the manifest
  // horizon. Files above it exist only after a kill between the snapshot
  // write and the manifest advance — they were never the commit point, so
  // they are not trusted (the interrupted epoch recommits them).
  std::vector<size_t> horizons;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir_, ec), end;
       !ec && it != end; it.increment(ec)) {
    size_t horizon = 0;
    if (ParseIndexedName(it->path().filename().string(), "snapshot-",
                         ".state", &horizon) &&
        horizon != 0 && horizon <= snapshot_epochs_) {
      horizons.push_back(horizon);
    }
  }
  std::sort(horizons.begin(), horizons.end(),
            [](size_t a, size_t b) { return a > b; });
  for (size_t horizon : horizons) {
    std::vector<uint8_t> bytes;
    CampaignSnapshot snapshot;
    if (!ReadFileBytes(dir_ / SnapshotFileName(horizon), &bytes) ||
        !DecodeSnapshotFile(bytes.data(), bytes.size(), &snapshot) ||
        snapshot.epochs_covered != horizon) {
      continue;  // Torn or damaged: fall back to the older generation.
    }
    *out = std::move(snapshot);
    stats_.reload_ns += ElapsedNs(start);
    return horizon;
  }
  stats_.reload_ns += ElapsedNs(start);
  return 0;
}

std::vector<wire::Buffer> CampaignJournal::LoadEpoch(size_t epoch) const {
  const std::filesystem::path path = dir_ / EpochFileName(epoch);
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes)) {
    throw std::runtime_error("CampaignJournal: cannot read " + path.string());
  }
  std::vector<wire::Buffer> frames;
  size_t pos = 0;
  while (pos < bytes.size()) {
    size_t frame_size = 0;
    if (!wire::FrameSize(bytes.data() + pos, bytes.size() - pos,
                         &frame_size) ||
        frame_size > bytes.size() - pos) {
      throw std::runtime_error("CampaignJournal: torn epoch file " +
                               path.string());
    }
    frames.emplace_back(bytes.begin() + static_cast<ptrdiff_t>(pos),
                        bytes.begin() + static_cast<ptrdiff_t>(pos) +
                            static_cast<ptrdiff_t>(frame_size));
    pos += frame_size;
  }
  EpochCommitRecord trailer;
  if (frames.empty() ||
      !wire::Decode(frames.back().data(), frames.back().size(), &trailer)) {
    throw std::runtime_error(
        "CampaignJournal: epoch file missing its commit record: " +
        path.string());
  }
  frames.pop_back();
  if (trailer.epoch != epoch ||
      trailer.workers != static_cast<int>(frames.size()) ||
      trailer.checksum != ChecksumFrames(frames)) {
    throw std::runtime_error("CampaignJournal: corrupt epoch file " +
                             path.string());
  }
  return frames;
}

void CampaignJournal::VerifyEpoch(size_t epoch,
                                  const std::vector<wire::Buffer>& frames) {
  const std::filesystem::path path = dir_ / EpochFileName(epoch);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw std::runtime_error("CampaignJournal: cannot open " + path.string() +
                             ": " + SafeStrerror(errno));
  }
  // Stream the committed file in fixed chunks: each chunk is compared in
  // place against the re-published frames and folded into a running
  // FNV-1a, so the file is never buffered whole — only the trailer (and,
  // on a frame-count mismatch, the excess tail) accumulates.
  auto divergence = [&](size_t shard) {
    ::close(fd);
    return std::runtime_error(
        "CampaignJournal: resume divergence at epoch " +
        std::to_string(epoch) + ", shard " + std::to_string(shard) +
        " — the state dir was produced by a different campaign or binary");
  };
  uint64_t checksum = kFnvOffset;
  size_t frame_index = 0;
  size_t frame_offset = 0;
  std::vector<uint8_t> chunk(64 * 1024);
  std::vector<uint8_t> tail;  // Bytes past the last re-published frame.
  while (true) {
    const ssize_t n = ::read(fd, chunk.data(), chunk.size());
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      // A failing read mid-verify is an I/O problem, not a divergence:
      // surface the errno so the operator can tell the two apart.
      const std::string detail = SafeStrerror(errno);
      ::close(fd);
      throw std::runtime_error("CampaignJournal: short read on " +
                               path.string() + ": " + detail);
    }
    if (n == 0) {
      break;
    }
    size_t pos = 0;
    const size_t got = static_cast<size_t>(n);
    while (pos < got && frame_index < frames.size()) {
      const wire::Buffer& frame = frames[frame_index];
      const size_t take = std::min(got - pos, frame.size() - frame_offset);
      if (!std::equal(chunk.begin() + static_cast<ptrdiff_t>(pos),
                      chunk.begin() + static_cast<ptrdiff_t>(pos + take),
                      frame.begin() + static_cast<ptrdiff_t>(frame_offset))) {
        throw divergence(frame_index);
      }
      checksum = Fnv1a(checksum, chunk.data() + pos, take);
      pos += take;
      frame_offset += take;
      if (frame_offset == frame.size()) {
        ++frame_index;
        frame_offset = 0;
      }
    }
    tail.insert(tail.end(), chunk.begin() + static_cast<ptrdiff_t>(pos),
                chunk.begin() + static_cast<ptrdiff_t>(got));
  }
  ::close(fd);
  if (frame_index < frames.size()) {
    // The file ended inside the re-published frames: fewer committed
    // deltas than replayed ones (or a torn file — either way, not ours).
    throw std::runtime_error(
        "CampaignJournal: epoch " + std::to_string(epoch) + " replayed " +
        std::to_string(frames.size()) +
        " deltas but the journal committed fewer: torn or foreign file " +
        path.string());
  }
  // The tail must be frames too: zero or more excess committed deltas
  // (a worker-count mismatch) and then exactly the commit record.
  size_t committed = frames.size();
  size_t pos = 0;
  size_t trailer_pos = 0;
  while (pos < tail.size()) {
    size_t frame_size = 0;
    if (!wire::FrameSize(tail.data() + pos, tail.size() - pos, &frame_size) ||
        frame_size > tail.size() - pos) {
      throw std::runtime_error("CampaignJournal: torn epoch file " +
                               path.string());
    }
    trailer_pos = pos;
    pos += frame_size;
    ++committed;
  }
  EpochCommitRecord summary;
  if (committed == frames.size() ||
      !wire::Decode(tail.data() + trailer_pos, tail.size() - trailer_pos,
                    &summary)) {
    throw std::runtime_error(
        "CampaignJournal: epoch file missing its commit record: " +
        path.string());
  }
  --committed;  // The trailer is not a delta.
  if (committed != frames.size()) {
    throw std::runtime_error(
        "CampaignJournal: epoch " + std::to_string(epoch) + " replayed " +
        std::to_string(frames.size()) + " deltas but the journal committed " +
        std::to_string(committed));
  }
  if (summary.epoch != epoch ||
      summary.workers != static_cast<int>(frames.size()) ||
      summary.checksum != checksum) {
    throw std::runtime_error("CampaignJournal: corrupt epoch file " +
                             path.string());
  }
  ++stats_.replayed_epochs;
}

bool CampaignJournal::SaveCrashArtifact(const CrashRecord& record) {
  const bool fresh = crash_store_.Save(record);
  if (fresh) {
    ++stats_.crash_artifacts;
  }
  return fresh;
}

JournalStats CampaignJournal::stats() const {
  JournalStats out = stats_;
  out.bytes_written = commit_stats_.bytes;
  out.fsync_seconds = commit_stats_.fsync_seconds;
  out.committed_epochs = committed_epochs_;
  out.snapshot_epochs = snapshot_epochs_;
  return out;
}

}  // namespace neco
