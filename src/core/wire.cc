#include "src/core/wire.h"

#include <cstring>

#include "src/cpu/entry_check.h"
#include "src/cpu/vmx_checks.h"

namespace neco {
namespace wire {
namespace {

constexpr size_t kHeaderSize = kFrameHeaderSize;

// --- Little-endian writer ------------------------------------------------
//
// Encoding is two-pass: every payload is a generic lambda run first
// against a Sizer (which only accumulates the byte count) and then
// against a Writer over an exactly-sized buffer. One pass of arithmetic
// buys a single allocation per record with capacity == size — no
// push_back growth doubling, no over-reserve slack riding along a pipe
// write — and the shared lambda makes the two passes impossible to
// desynchronize.

// Pass 1: same method surface as Writer, accumulates the payload size.
class Sizer {
 public:
  void U8(uint8_t) { size_ += 1; }
  void U16(uint16_t) { size_ += 2; }
  void U32(uint32_t) { size_ += 4; }
  void U64(uint64_t) { size_ += 8; }
  void I32(int) { size_ += 4; }
  void F64(double) { size_ += 8; }
  void Str(const std::string& s) { size_ += 4 + s.size(); }
  void Bytes(const std::vector<uint8_t>& b) { size_ += 4 + b.size(); }

  size_t size() const { return size_; }

 private:
  size_t size_ = 0;
};

// Pass 2: indexed writes into the pre-sized buffer; bulk payloads go
// through one memcpy instead of a per-byte loop.
class Writer {
 public:
  Writer(Buffer& out, size_t pos) : out_(out), pos_(pos) {}

  void U8(uint8_t v) { out_[pos_++] = v; }
  void U16(uint16_t v) {
    for (int i = 0; i < 2; ++i) {
      out_[pos_++] = static_cast<uint8_t>(v >> (8 * i));
    }
  }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_[pos_++] = static_cast<uint8_t>(v >> (8 * i));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_[pos_++] = static_cast<uint8_t>(v >> (8 * i));
    }
  }
  void I32(int v) { U32(static_cast<uint32_t>(v)); }
  void F64(double v) {
    uint64_t image = 0;
    static_assert(sizeof(image) == sizeof(v));
    std::memcpy(&image, &v, sizeof(image));
    U64(image);
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Append(s.data(), s.size());
  }
  void Bytes(const std::vector<uint8_t>& b) {
    U32(static_cast<uint32_t>(b.size()));
    Append(b.data(), b.size());
  }

 private:
  void Append(const void* data, size_t n) {
    if (n != 0) {
      std::memcpy(out_.data() + pos_, data, n);
      pos_ += n;
    }
  }

  Buffer& out_;
  size_t pos_;
};

// Frames one record: sizes the payload, allocates header + payload
// exactly, writes the header (length known up front — no patching), then
// writes the payload. `payload` must be a generic lambda ([](auto& w))
// so the same body drives both passes.
template <typename PayloadFn>
Buffer Frame(RecordType type, PayloadFn&& payload) {
  Sizer sizer;
  payload(sizer);
  const size_t length = sizer.size();
  Buffer out(kHeaderSize + length);
  out[0] = static_cast<uint8_t>(type);
  out[1] = kVersion;
  for (int i = 0; i < 4; ++i) {
    out[2 + static_cast<size_t>(i)] = static_cast<uint8_t>(length >> (8 * i));
  }
  Writer writer(out, kHeaderSize);
  payload(writer);
  return out;
}

// --- Bounds-checked little-endian reader ---------------------------------

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return ok_ ? size_ - pos_ : 0; }
  bool ok() const { return ok_; }
  Reader& Fail() {
    ok_ = false;
    return *this;
  }
  // A record must consume its payload exactly; trailing bytes are corrupt.
  bool Done() const { return ok_ && pos_ == size_; }

  uint8_t U8() {
    if (!Require(1)) return 0;
    return data_[pos_++];
  }
  uint16_t U16() {
    if (!Require(2)) return 0;
    uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<uint16_t>(
          v | static_cast<uint16_t>(data_[pos_++]) << (8 * i));
    }
    return v;
  }
  uint32_t U32() {
    if (!Require(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  uint64_t U64() {
    if (!Require(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  int I32() { return static_cast<int>(static_cast<int32_t>(U32())); }
  double F64() {
    const uint64_t image = U64();
    double v = 0.0;
    std::memcpy(&v, &image, sizeof(v));
    return v;
  }
  std::string Str() {
    const uint32_t n = U32();
    if (!Require(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<uint8_t> Bytes() {
    const uint32_t n = U32();
    if (!Require(n)) return {};
    std::vector<uint8_t> b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }
  // Guards a count field before a reserve/loop: each element needs at
  // least `element_size` bytes, so a count the remaining payload cannot
  // possibly hold is corrupt (and would otherwise trigger a huge
  // allocation from four attacker-controlled bytes).
  bool FitsCount(uint32_t count, size_t element_size) {
    if (!ok_ || count > remaining() / element_size) {
      ok_ = false;
      return false;
    }
    return true;
  }

 private:
  bool Require(size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Validates the frame header and returns a reader over the payload (with
// ok() == false on any header problem).
Reader OpenFrame(const uint8_t* data, size_t size, RecordType expected) {
  if (data == nullptr || size < kHeaderSize ||
      data[0] != static_cast<uint8_t>(expected) || data[1] != kVersion) {
    return Reader(nullptr, 0).Fail();
  }
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(data[2 + i]) << (8 * i);
  }
  if (length != size - kHeaderSize) {
    return Reader(nullptr, 0).Fail();
  }
  return Reader(data + kHeaderSize, size - kHeaderSize);
}

// --- Shared payload pieces -----------------------------------------------

template <typename W>
void WriteReport(W& w, const AnomalyReport& report) {
  w.U8(static_cast<uint8_t>(report.kind));
  w.Str(report.bug_id);
  w.Str(report.message);
}

bool ReadReport(Reader& r, AnomalyReport* out) {
  const uint8_t kind = r.U8();
  if (kind > static_cast<uint8_t>(AnomalyKind::kLogWarning)) {
    return false;
  }
  out->kind = static_cast<AnomalyKind>(kind);
  out->bug_id = r.Str();
  out->message = r.Str();
  return r.ok();
}

// BitmapDelta wire form: count + (cell, bits) pairs — the shape every
// virgin-map section already uses inline; the snapshot records carry
// three of them, so the shared helpers keep those codecs readable.
template <typename W>
void WriteBitmapDelta(W& w, const BitmapDelta& delta) {
  w.U32(static_cast<uint32_t>(delta.size()));
  for (size_t i = 0; i < delta.size(); ++i) {
    w.U32(delta.cells[i]);
    w.U8(delta.bits[i]);
  }
}

bool ReadBitmapDelta(Reader& r, BitmapDelta* out) {
  *out = {};
  const uint32_t count = r.U32();
  if (!r.FitsCount(count, 5)) return false;
  out->Reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t cell = r.U32();
    out->Append(cell, r.U8());
  }
  return r.ok();
}

}  // namespace

namespace {

// Shared ShardDelta payload; `queue` writes the queue-entry section
// (count + entries), so the owning and referencing Encode overloads
// produce byte-identical frames from the same body.
template <typename QueueFn>
Buffer EncodeShardDeltaWith(const ShardDelta& record, QueueFn&& queue) {
  return Frame(RecordType::kShardDelta, [&](auto& w) {
    w.I32(record.worker);
    w.U64(record.epoch);
    w.U64(record.iterations);
    w.U64(record.imported);
    w.U32(static_cast<uint32_t>(record.virgin.size()));
    for (size_t i = 0; i < record.virgin.size(); ++i) {
      w.U32(record.virgin.cells[i]);
      w.U8(record.virgin.bits[i]);
    }
    w.U32(static_cast<uint32_t>(record.covered_points.size()));
    for (uint32_t point : record.covered_points) {
      w.U32(point);
    }
    queue(w);
    w.U32(static_cast<uint32_t>(record.findings.size()));
    for (const AnomalyReport& report : record.findings) {
      WriteReport(w, report);
    }
    w.U32(static_cast<uint32_t>(record.crash_ids.size()));
    for (const std::string& id : record.crash_ids) {
      w.Str(id);
    }
    w.U32(static_cast<uint32_t>(record.crash_inputs.size()));
    for (const FuzzInput& input : record.crash_inputs) {
      w.Bytes(input);
    }
  });
}

}  // namespace

Buffer Encode(const ShardDelta& record) {
  return EncodeShardDeltaWith(record, [&](auto& w) {
    w.U32(static_cast<uint32_t>(record.queue_entries.size()));
    for (const FuzzInput& input : record.queue_entries) {
      w.Bytes(input);
    }
  });
}

Buffer Encode(const ShardDelta& record,
              const std::vector<const FuzzInput*>& queue_entries) {
  return EncodeShardDeltaWith(record, [&](auto& w) {
    w.U32(static_cast<uint32_t>(queue_entries.size()));
    for (const FuzzInput* input : queue_entries) {
      w.Bytes(*input);
    }
  });
}

bool Decode(const uint8_t* data, size_t size, ShardDelta* out) {
  Reader r = OpenFrame(data, size, RecordType::kShardDelta);
  out->worker = r.I32();
  out->epoch = r.U64();
  out->iterations = r.U64();
  out->imported = r.U64();
  out->virgin = {};
  const uint32_t virgin_count = r.U32();
  // FitsCount bounds each count by the remaining payload, so the
  // reserves below size by trusted arithmetic, not attacker bytes.
  if (!r.FitsCount(virgin_count, 5)) return false;
  out->virgin.Reserve(virgin_count);
  for (uint32_t i = 0; i < virgin_count; ++i) {
    const uint32_t cell = r.U32();
    out->virgin.Append(cell, r.U8());
  }
  out->covered_points.clear();
  const uint32_t covered_count = r.U32();
  if (!r.FitsCount(covered_count, 4)) return false;
  out->covered_points.reserve(covered_count);
  for (uint32_t i = 0; i < covered_count; ++i) {
    out->covered_points.push_back(r.U32());
  }
  out->queue_entries.clear();
  const uint32_t queue_count = r.U32();
  if (!r.FitsCount(queue_count, 4)) return false;
  out->queue_entries.reserve(queue_count);
  for (uint32_t i = 0; i < queue_count; ++i) {
    out->queue_entries.push_back(r.Bytes());
  }
  out->findings.clear();
  const uint32_t finding_count = r.U32();
  if (!r.FitsCount(finding_count, 9)) return false;
  out->findings.reserve(finding_count);
  for (uint32_t i = 0; i < finding_count; ++i) {
    AnomalyReport report;
    if (!ReadReport(r, &report)) return false;
    out->findings.push_back(std::move(report));
  }
  out->crash_ids.clear();
  const uint32_t crash_count = r.U32();
  if (!r.FitsCount(crash_count, 4)) return false;
  out->crash_ids.reserve(crash_count);
  for (uint32_t i = 0; i < crash_count; ++i) {
    out->crash_ids.push_back(r.Str());
  }
  out->crash_inputs.clear();
  const uint32_t input_count = r.U32();
  // The arrays are parallel by contract; a record that disagrees with
  // itself is corrupt.
  if (input_count != crash_count || !r.FitsCount(input_count, 4)) {
    return false;
  }
  out->crash_inputs.reserve(input_count);
  for (uint32_t i = 0; i < input_count; ++i) {
    out->crash_inputs.push_back(r.Bytes());
  }
  return r.Done();
}

Buffer Encode(const SampleEvent& record) {
  return Frame(RecordType::kSample, [&](auto& w) {
    w.U64(record.epoch);
    w.U64(record.iteration);
    w.F64(record.percent);
    w.U64(record.covered_points);
  });
}

bool Decode(const uint8_t* data, size_t size, SampleEvent* out) {
  Reader r = OpenFrame(data, size, RecordType::kSample);
  out->epoch = static_cast<size_t>(r.U64());
  out->iteration = r.U64();
  out->percent = r.F64();
  out->covered_points = static_cast<size_t>(r.U64());
  return r.Done();
}

Buffer Encode(const FindingEvent& record) {
  return Frame(RecordType::kFinding, [&](auto& w) {
    w.U64(record.epoch);
    w.I32(record.worker);
    WriteReport(w, record.report);
  });
}

bool Decode(const uint8_t* data, size_t size, FindingEvent* out) {
  Reader r = OpenFrame(data, size, RecordType::kFinding);
  out->epoch = static_cast<size_t>(r.U64());
  out->worker = r.I32();
  if (!ReadReport(r, &out->report)) return false;
  return r.Done();
}

Buffer Encode(const CorpusSyncEvent& record) {
  return Frame(RecordType::kCorpusSync, [&](auto& w) {
    w.U64(record.epoch);
    w.I32(record.worker);
    w.U64(record.published);
    w.U64(record.imported);
  });
}

bool Decode(const uint8_t* data, size_t size, CorpusSyncEvent* out) {
  Reader r = OpenFrame(data, size, RecordType::kCorpusSync);
  out->epoch = static_cast<size_t>(r.U64());
  out->worker = r.I32();
  out->published = r.U64();
  out->imported = r.U64();
  return r.Done();
}

Buffer Encode(const ShardDoneEvent& record) {
  return Frame(RecordType::kShardDone, [&](auto& w) {
    w.I32(record.worker);
    w.U64(record.iterations);
    w.F64(record.final_percent);
    w.U64(record.covered_points);
    w.U64(record.queue_size);
    w.U64(record.findings);
    w.U64(record.corpus_imports);
    w.U64(record.watchdog_restarts);
  });
}

bool Decode(const uint8_t* data, size_t size, ShardDoneEvent* out) {
  Reader r = OpenFrame(data, size, RecordType::kShardDone);
  out->worker = r.I32();
  out->iterations = r.U64();
  out->final_percent = r.F64();
  out->covered_points = static_cast<size_t>(r.U64());
  out->queue_size = r.U64();
  out->findings = static_cast<size_t>(r.U64());
  out->corpus_imports = r.U64();
  out->watchdog_restarts = r.U64();
  return r.Done();
}

Buffer Encode(const FinishEvent& record) {
  return Frame(RecordType::kFinish, [&](auto& w) {
    w.I32(record.workers);
    w.U64(record.epochs);
    w.U64(record.iterations);
    w.F64(record.final_percent);
    w.U64(record.covered_points);
    w.U64(record.total_points);
    w.U64(record.findings);
    w.U64(record.corpus_imports);
  });
}

bool Decode(const uint8_t* data, size_t size, FinishEvent* out) {
  Reader r = OpenFrame(data, size, RecordType::kFinish);
  out->workers = r.I32();
  out->epochs = static_cast<size_t>(r.U64());
  out->iterations = r.U64();
  out->final_percent = r.F64();
  out->covered_points = static_cast<size_t>(r.U64());
  out->total_points = static_cast<size_t>(r.U64());
  out->findings = static_cast<size_t>(r.U64());
  out->corpus_imports = r.U64();
  return r.Done();
}

Buffer Encode(const FeedbackRecord& record) {
  return Frame(RecordType::kFeedback, [&](auto& w) {
    w.U64(record.epoch);
    w.I32(record.worker);
    w.U32(static_cast<uint32_t>(record.pool_entries.size()));
    for (const FuzzInput& input : record.pool_entries) {
      w.Bytes(input);
    }
    w.U32(static_cast<uint32_t>(record.virgin.size()));
    for (size_t i = 0; i < record.virgin.size(); ++i) {
      w.U32(record.virgin.cells[i]);
      w.U8(record.virgin.bits[i]);
    }
  });
}

bool Decode(const uint8_t* data, size_t size, FeedbackRecord* out) {
  Reader r = OpenFrame(data, size, RecordType::kFeedback);
  out->epoch = r.U64();
  out->worker = r.I32();
  out->pool_entries.clear();
  const uint32_t pool_count = r.U32();
  if (!r.FitsCount(pool_count, 4)) return false;
  out->pool_entries.reserve(pool_count);
  for (uint32_t i = 0; i < pool_count; ++i) {
    out->pool_entries.push_back(r.Bytes());
  }
  out->virgin = {};
  const uint32_t virgin_count = r.U32();
  if (!r.FitsCount(virgin_count, 5)) return false;
  out->virgin.Reserve(virgin_count);
  for (uint32_t i = 0; i < virgin_count; ++i) {
    const uint32_t cell = r.U32();
    out->virgin.Append(cell, r.U8());
  }
  return r.Done();
}

Buffer Encode(const ShardResultRecord& record) {
  return Frame(RecordType::kShardResult, [&](auto& w) {
    w.I32(record.worker);
    w.F64(record.final_percent);
    w.U64(record.covered_points);
    w.U64(record.total_points);
    w.U32(static_cast<uint32_t>(record.covered_set.size()));
    for (uint32_t point : record.covered_set) {
      w.U32(point);
    }
    w.U32(static_cast<uint32_t>(record.findings.size()));
    for (const AnomalyReport& report : record.findings) {
      WriteReport(w, report);
    }
    w.U64(record.iterations);
    w.U64(record.queue_size);
    w.U64(record.unique_anomalies);
    w.U64(record.bitmap_edges);
    w.U64(record.watchdog_restarts);
    w.U64(record.imports);
    w.U64(record.snapshot_hits);
    w.U64(record.snapshot_misses);
    w.U64(record.config_memo_hits);
    w.U64(record.restore_ns);
    w.U32(static_cast<uint32_t>(record.crash_ids.size()));
    for (const std::string& id : record.crash_ids) {
      w.Str(id);
    }
    w.U32(static_cast<uint32_t>(record.crash_inputs.size()));
    for (const FuzzInput& input : record.crash_inputs) {
      w.Bytes(input);
    }
  });
}

bool Decode(const uint8_t* data, size_t size, ShardResultRecord* out) {
  Reader r = OpenFrame(data, size, RecordType::kShardResult);
  out->worker = r.I32();
  out->final_percent = r.F64();
  out->covered_points = r.U64();
  out->total_points = r.U64();
  out->covered_set.clear();
  const uint32_t covered_count = r.U32();
  if (!r.FitsCount(covered_count, 4)) return false;
  out->covered_set.reserve(covered_count);
  for (uint32_t i = 0; i < covered_count; ++i) {
    out->covered_set.push_back(r.U32());
  }
  out->findings.clear();
  const uint32_t finding_count = r.U32();
  if (!r.FitsCount(finding_count, 9)) return false;
  out->findings.reserve(finding_count);
  for (uint32_t i = 0; i < finding_count; ++i) {
    AnomalyReport report;
    if (!ReadReport(r, &report)) return false;
    out->findings.push_back(std::move(report));
  }
  out->iterations = r.U64();
  out->queue_size = r.U64();
  out->unique_anomalies = r.U64();
  out->bitmap_edges = r.U64();
  out->watchdog_restarts = r.U64();
  out->imports = r.U64();
  out->snapshot_hits = r.U64();
  out->snapshot_misses = r.U64();
  out->config_memo_hits = r.U64();
  out->restore_ns = r.U64();
  out->crash_ids.clear();
  const uint32_t crash_count = r.U32();
  if (!r.FitsCount(crash_count, 4)) return false;
  out->crash_ids.reserve(crash_count);
  for (uint32_t i = 0; i < crash_count; ++i) {
    out->crash_ids.push_back(r.Str());
  }
  out->crash_inputs.clear();
  const uint32_t input_count = r.U32();
  // The arrays are parallel by contract; a record that disagrees with
  // itself is corrupt.
  if (input_count != crash_count || !r.FitsCount(input_count, 4)) {
    return false;
  }
  out->crash_inputs.reserve(input_count);
  for (uint32_t i = 0; i < input_count; ++i) {
    out->crash_inputs.push_back(r.Bytes());
  }
  return r.Done();
}

Buffer Encode(const ShardChildConfigRecord& record) {
  return Frame(RecordType::kChildConfig, [&](auto& w) {
    w.Str(record.target);
    w.I32(record.worker);
    w.I32(record.workers);
    w.U64(record.epochs);
    w.U8(record.arch);
    w.U64(record.iterations);
    w.I32(record.samples);
    w.U64(record.seed);
    w.U8(record.syncing);
    w.U8(record.coverage_guidance);
    w.U32(record.havoc_stack);
    w.U32(record.splice_percent);
    w.U8(record.use_harness);
    w.U8(record.use_validator);
    w.U8(record.use_configurator);
    w.U32(record.oracle_interval);
    w.U64(record.snapshot_cache_size);
    w.Str(record.crash_dir);
    w.U64(record.start_epoch);
    w.U64(record.snapshot_every);
  });
}

bool Decode(const uint8_t* data, size_t size, ShardChildConfigRecord* out) {
  Reader r = OpenFrame(data, size, RecordType::kChildConfig);
  out->target = r.Str();
  out->worker = r.I32();
  out->workers = r.I32();
  out->epochs = r.U64();
  out->arch = r.U8();
  if (r.ok() && out->arch > 1) return false;  // Arch::{kIntel,kAmd}.
  out->iterations = r.U64();
  out->samples = r.I32();
  out->seed = r.U64();
  out->syncing = r.U8();
  out->coverage_guidance = r.U8();
  out->havoc_stack = r.U32();
  out->splice_percent = r.U32();
  out->use_harness = r.U8();
  out->use_validator = r.U8();
  out->use_configurator = r.U8();
  out->oracle_interval = r.U32();
  out->snapshot_cache_size = r.U64();
  out->crash_dir = r.Str();
  out->start_epoch = r.U64();
  out->snapshot_every = r.U64();
  // start_epoch > epochs would schedule a tail that ends before it
  // begins; nothing legitimate encodes that.
  if (r.ok() && out->start_epoch > out->epochs) return false;
  return r.Done();
}

Buffer Encode(const ShardHelloRecord& record) {
  return Frame(RecordType::kShardHello, [&](auto& w) {
    w.U32(record.magic);
    w.I32(record.worker);
  });
}

bool Decode(const uint8_t* data, size_t size, ShardHelloRecord* out) {
  Reader r = OpenFrame(data, size, RecordType::kShardHello);
  out->magic = r.U32();
  if (r.ok() && out->magic != ShardHelloRecord::kMagic) {
    return false;  // A stray peer, not a shard child.
  }
  out->worker = r.I32();
  return r.Done();
}

Buffer Encode(const CampaignManifestRecord& record) {
  return Frame(RecordType::kManifest, [&](auto& w) {
    w.U32(record.magic);
    w.U64(record.committed_epochs);
    w.U64(record.snapshot_epochs);
    w.U64(record.crash_artifacts);
    w.U64(record.epochs);
    w.I32(record.workers);
    w.I32(record.samples);
    w.U8(record.arch);
    w.U64(record.iterations);
    w.U64(record.seed);
    w.U8(record.corpus_sync);
    w.U8(record.coverage_guidance);
    w.U32(record.havoc_stack);
    w.U32(record.splice_percent);
    w.U8(record.use_harness);
    w.U8(record.use_validator);
    w.U8(record.use_configurator);
    w.U32(record.oracle_interval);
    w.Str(record.target);
  });
}

bool Decode(const uint8_t* data, size_t size, CampaignManifestRecord* out) {
  Reader r = OpenFrame(data, size, RecordType::kManifest);
  out->magic = r.U32();
  if (r.ok() && out->magic != CampaignManifestRecord::kMagic) {
    return false;  // Not a NecoFuzz state manifest.
  }
  out->committed_epochs = r.U64();
  out->snapshot_epochs = r.U64();
  out->crash_artifacts = r.U64();
  // A manifest whose snapshot horizon ran ahead of its commit point is
  // internally inconsistent — the snapshot must cover a committed prefix.
  if (r.ok() && out->snapshot_epochs > out->committed_epochs) return false;
  out->epochs = r.U64();
  out->workers = r.I32();
  out->samples = r.I32();
  out->arch = r.U8();
  if (r.ok() && out->arch > 1) return false;  // Arch::{kIntel,kAmd}.
  out->iterations = r.U64();
  out->seed = r.U64();
  out->corpus_sync = r.U8();
  out->coverage_guidance = r.U8();
  out->havoc_stack = r.U32();
  out->splice_percent = r.U32();
  out->use_harness = r.U8();
  out->use_validator = r.U8();
  out->use_configurator = r.U8();
  out->oracle_interval = r.U32();
  out->target = r.Str();
  return r.Done();
}

Buffer Encode(const EpochCommitRecord& record) {
  return Frame(RecordType::kEpochCommit, [&](auto& w) {
    w.U64(record.epoch);
    w.I32(record.workers);
    w.U64(record.checksum);
    w.U64(record.iterations);
    w.U64(record.covered_points);
    w.U64(record.pool_end);
    w.U64(record.findings);
    w.U64(record.crash_artifacts);
    w.F64(record.percent);
  });
}

bool Decode(const uint8_t* data, size_t size, EpochCommitRecord* out) {
  Reader r = OpenFrame(data, size, RecordType::kEpochCommit);
  out->epoch = r.U64();
  out->workers = r.I32();
  out->checksum = r.U64();
  out->iterations = r.U64();
  out->covered_points = r.U64();
  out->pool_end = r.U64();
  out->findings = r.U64();
  out->crash_artifacts = r.U64();
  out->percent = r.F64();
  return r.Done();
}

Buffer Encode(const CrashArtifactRecord& record) {
  return Frame(RecordType::kCrashArtifact, [&](auto& w) {
    w.U64(record.seq);
    WriteReport(w, record.report);
    w.Str(record.hypervisor);
    w.Str(record.arch);
    w.U64(record.iteration);
    w.Bytes(record.input);
  });
}

bool Decode(const uint8_t* data, size_t size, CrashArtifactRecord* out) {
  Reader r = OpenFrame(data, size, RecordType::kCrashArtifact);
  out->seq = r.U64();
  if (!ReadReport(r, &out->report)) return false;
  out->hypervisor = r.Str();
  out->arch = r.Str();
  out->iteration = r.U64();
  out->input = r.Bytes();
  return r.Done();
}

Buffer Encode(const WorkerStateRecord& record) {
  return Frame(RecordType::kWorkerState, [&](auto& w) {
    w.I32(record.worker);
    w.U64(record.epochs_covered);
    for (uint64_t word : record.mutator_rng.s) {
      w.U64(word);
    }
    for (uint64_t word : record.corpus_rng.s) {
      w.U64(word);
    }
    w.U64(record.iterations);
    w.U32(static_cast<uint32_t>(record.corpus.size()));
    for (const QueueEntry& entry : record.corpus) {
      w.Bytes(entry.input);
      w.U64(entry.discovered_at_iter);
      w.U64(entry.times_fuzzed);
      w.U64(entry.new_edges);
      w.U8(entry.favored ? 1 : 0);
    }
    WriteBitmapDelta(w, record.virgin);
    w.U32(static_cast<uint32_t>(record.crash_ids.size()));
    for (const std::string& id : record.crash_ids) {
      w.Str(id);
    }
    w.U32(static_cast<uint32_t>(record.crash_inputs.size()));
    for (const FuzzInput& input : record.crash_inputs) {
      w.Bytes(input);
    }
    w.U64(record.executions);
    w.U64(record.watchdog_restarts);
    w.U64(record.snapshot_hits);
    w.U64(record.snapshot_misses);
    w.U64(record.config_memo_hits);
    w.U64(record.restore_ns);
    w.U32(static_cast<uint32_t>(record.findings.size()));
    for (const AnomalyReport& report : record.findings) {
      WriteReport(w, report);
    }
    w.U32(static_cast<uint32_t>(record.vmx_suppressed_checks.size()));
    for (uint16_t check : record.vmx_suppressed_checks) {
      w.U16(check);
    }
    w.U32(static_cast<uint32_t>(record.vmx_learned_fixups.size()));
    for (uint8_t fixup : record.vmx_learned_fixups) {
      w.U8(fixup);
    }
    w.U32(static_cast<uint32_t>(record.svm_suppressed_checks.size()));
    for (uint16_t check : record.svm_suppressed_checks) {
      w.U16(check);
    }
    w.U8(record.host_crashed);
    w.U64(record.host_restarts);
    w.U32(static_cast<uint32_t>(record.covered.size()));
    for (uint32_t point : record.covered) {
      w.U32(point);
    }
    w.U64(record.hit_events);
    w.U64(record.imports);
  });
}

bool Decode(const uint8_t* data, size_t size, WorkerStateRecord* out) {
  Reader r = OpenFrame(data, size, RecordType::kWorkerState);
  out->worker = r.I32();
  out->epochs_covered = r.U64();
  for (uint64_t& word : out->mutator_rng.s) {
    word = r.U64();
  }
  for (uint64_t& word : out->corpus_rng.s) {
    word = r.U64();
  }
  out->iterations = r.U64();
  out->corpus.clear();
  const uint32_t corpus_count = r.U32();
  // Each entry is at least a length prefix + three counters + a flag.
  if (!r.FitsCount(corpus_count, 29)) return false;
  out->corpus.reserve(corpus_count);
  for (uint32_t i = 0; i < corpus_count; ++i) {
    QueueEntry entry;
    entry.input = r.Bytes();
    entry.discovered_at_iter = r.U64();
    entry.times_fuzzed = r.U64();
    entry.new_edges = static_cast<size_t>(r.U64());
    entry.favored = r.U8() != 0;
    out->corpus.push_back(std::move(entry));
  }
  if (!ReadBitmapDelta(r, &out->virgin)) return false;
  out->crash_ids.clear();
  const uint32_t crash_count = r.U32();
  if (!r.FitsCount(crash_count, 4)) return false;
  out->crash_ids.reserve(crash_count);
  for (uint32_t i = 0; i < crash_count; ++i) {
    out->crash_ids.push_back(r.Str());
  }
  out->crash_inputs.clear();
  const uint32_t input_count = r.U32();
  // The arrays are parallel by contract; a record that disagrees with
  // itself is corrupt.
  if (input_count != crash_count || !r.FitsCount(input_count, 4)) {
    return false;
  }
  out->crash_inputs.reserve(input_count);
  for (uint32_t i = 0; i < input_count; ++i) {
    out->crash_inputs.push_back(r.Bytes());
  }
  out->executions = r.U64();
  out->watchdog_restarts = r.U64();
  out->snapshot_hits = r.U64();
  out->snapshot_misses = r.U64();
  out->config_memo_hits = r.U64();
  out->restore_ns = r.U64();
  out->findings.clear();
  const uint32_t finding_count = r.U32();
  if (!r.FitsCount(finding_count, 9)) return false;
  out->findings.reserve(finding_count);
  for (uint32_t i = 0; i < finding_count; ++i) {
    AnomalyReport report;
    if (!ReadReport(r, &report)) return false;
    out->findings.push_back(std::move(report));
  }
  out->vmx_suppressed_checks.clear();
  const uint32_t vmx_check_count = r.U32();
  if (!r.FitsCount(vmx_check_count, 2)) return false;
  out->vmx_suppressed_checks.reserve(vmx_check_count);
  for (uint32_t i = 0; i < vmx_check_count; ++i) {
    const uint16_t check = r.U16();
    // Quirk values index the CheckId / VmxFixupId enums; anything at or
    // past the kCount sentinel cannot round-trip through the validators.
    if (r.ok() && check >= static_cast<uint16_t>(CheckId::kCount)) {
      return false;
    }
    out->vmx_suppressed_checks.push_back(check);
  }
  out->vmx_learned_fixups.clear();
  const uint32_t fixup_count = r.U32();
  if (!r.FitsCount(fixup_count, 1)) return false;
  out->vmx_learned_fixups.reserve(fixup_count);
  for (uint32_t i = 0; i < fixup_count; ++i) {
    const uint8_t fixup = r.U8();
    if (r.ok() && fixup >= static_cast<uint8_t>(VmxFixupId::kCount)) {
      return false;
    }
    out->vmx_learned_fixups.push_back(fixup);
  }
  out->svm_suppressed_checks.clear();
  const uint32_t svm_check_count = r.U32();
  if (!r.FitsCount(svm_check_count, 2)) return false;
  out->svm_suppressed_checks.reserve(svm_check_count);
  for (uint32_t i = 0; i < svm_check_count; ++i) {
    const uint16_t check = r.U16();
    if (r.ok() && check >= static_cast<uint16_t>(CheckId::kCount)) {
      return false;
    }
    out->svm_suppressed_checks.push_back(check);
  }
  out->host_crashed = r.U8();
  out->host_restarts = r.U64();
  out->covered.clear();
  const uint32_t covered_count = r.U32();
  if (!r.FitsCount(covered_count, 4)) return false;
  out->covered.reserve(covered_count);
  for (uint32_t i = 0; i < covered_count; ++i) {
    out->covered.push_back(r.U32());
  }
  out->hit_events = r.U64();
  out->imports = r.U64();
  return r.Done();
}

Buffer Encode(const SnapshotMergedStateRecord& record) {
  return Frame(RecordType::kSnapshotMerged, [&](auto& w) {
    w.U64(record.epochs_covered);
    WriteBitmapDelta(w, record.virgin);
    w.U32(static_cast<uint32_t>(record.covered.size()));
    for (uint32_t point : record.covered) {
      w.U32(point);
    }
    w.U32(static_cast<uint32_t>(record.findings.size()));
    for (const AnomalyReport& report : record.findings) {
      WriteReport(w, report);
    }
    w.U64(record.prior_pool_end);
    w.U64(record.pool_end);
    w.U32(static_cast<uint32_t>(record.pool_origins.size()));
    for (size_t i = 0; i < record.pool_origins.size(); ++i) {
      w.I32(record.pool_origins[i]);
      w.Bytes(record.pool_inputs[i]);
    }
    w.U32(static_cast<uint32_t>(record.series_iterations.size()));
    for (size_t i = 0; i < record.series_iterations.size(); ++i) {
      w.U64(record.series_iterations[i]);
      w.F64(record.series_percents[i]);
    }
    w.U64(record.total_iterations);
    WriteBitmapDelta(w, record.feedback_virgin);
  });
}

bool Decode(const uint8_t* data, size_t size, SnapshotMergedStateRecord* out) {
  Reader r = OpenFrame(data, size, RecordType::kSnapshotMerged);
  out->epochs_covered = r.U64();
  if (!ReadBitmapDelta(r, &out->virgin)) return false;
  out->covered.clear();
  const uint32_t covered_count = r.U32();
  if (!r.FitsCount(covered_count, 4)) return false;
  out->covered.reserve(covered_count);
  for (uint32_t i = 0; i < covered_count; ++i) {
    out->covered.push_back(r.U32());
  }
  out->findings.clear();
  const uint32_t finding_count = r.U32();
  if (!r.FitsCount(finding_count, 9)) return false;
  out->findings.reserve(finding_count);
  for (uint32_t i = 0; i < finding_count; ++i) {
    AnomalyReport report;
    if (!ReadReport(r, &report)) return false;
    out->findings.push_back(std::move(report));
  }
  out->prior_pool_end = r.U64();
  out->pool_end = r.U64();
  out->pool_origins.clear();
  out->pool_inputs.clear();
  const uint32_t pool_count = r.U32();
  if (!r.FitsCount(pool_count, 8)) return false;
  // The shipped slice is exactly [prior_pool_end, pool_end); a record
  // whose bounds and slice disagree is corrupt.
  if (r.ok() && (out->prior_pool_end > out->pool_end ||
                 out->pool_end - out->prior_pool_end != pool_count)) {
    return false;
  }
  out->pool_origins.reserve(pool_count);
  out->pool_inputs.reserve(pool_count);
  for (uint32_t i = 0; i < pool_count; ++i) {
    out->pool_origins.push_back(r.I32());
    out->pool_inputs.push_back(r.Bytes());
  }
  out->series_iterations.clear();
  out->series_percents.clear();
  const uint32_t series_count = r.U32();
  if (!r.FitsCount(series_count, 16)) return false;
  out->series_iterations.reserve(series_count);
  out->series_percents.reserve(series_count);
  for (uint32_t i = 0; i < series_count; ++i) {
    out->series_iterations.push_back(r.U64());
    out->series_percents.push_back(r.F64());
  }
  out->total_iterations = r.U64();
  if (!ReadBitmapDelta(r, &out->feedback_virgin)) return false;
  return r.Done();
}

Buffer Encode(const CampaignSnapshotRecord& record) {
  return Frame(RecordType::kCampaignSnapshot, [&](auto& w) {
    w.U32(record.magic);
    w.U64(record.epochs_covered);
    w.I32(record.workers);
    w.U64(record.checksum);
  });
}

bool Decode(const uint8_t* data, size_t size, CampaignSnapshotRecord* out) {
  Reader r = OpenFrame(data, size, RecordType::kCampaignSnapshot);
  out->magic = r.U32();
  if (r.ok() && out->magic != CampaignSnapshotRecord::kMagic) {
    return false;  // Not a NecoFuzz snapshot trailer.
  }
  out->epochs_covered = r.U64();
  out->workers = r.I32();
  out->checksum = r.U64();
  return r.Done();
}

bool PeekType(const uint8_t* data, size_t size, RecordType* out) {
  if (data == nullptr || size < kHeaderSize) {
    return false;
  }
  const uint8_t type = data[0];
  if (type < static_cast<uint8_t>(RecordType::kShardDelta) ||
      type > static_cast<uint8_t>(RecordType::kCampaignSnapshot)) {
    return false;
  }
  *out = static_cast<RecordType>(type);
  return true;
}

bool FrameSize(const uint8_t* data, size_t size, size_t* out) {
  RecordType type;
  if (!PeekType(data, size, &type)) {
    return false;
  }
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(data[2 + i]) << (8 * i);
  }
  if (length > kMaxFramePayload) {
    return false;
  }
  *out = kHeaderSize + static_cast<size_t>(length);
  return true;
}

}  // namespace wire
}  // namespace neco
