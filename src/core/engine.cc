#include "src/core/engine.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>

#include "src/core/agent.h"
#include "src/fuzz/fuzzer.h"

namespace neco {
namespace {

struct WorkerState {
  Hypervisor* hv = nullptr;  // Owned or borrowed.
  std::unique_ptr<Hypervisor> owned;
  std::unique_ptr<Agent> agent;
  std::unique_ptr<Fuzzer> fuzzer;
  // Per-epoch iteration steps; mirrors the serial campaign's chunking so
  // worker 0 of a one-worker campaign replays the historical serial
  // schedule exactly.
  std::vector<uint64_t> steps;
  // Covered-point snapshot backing CoverageUnit::ExtractDeltaSince.
  std::vector<uint8_t> covered_seen;
  // Finding ids already shipped in a delta (the agent's findings map is
  // bug-id-sorted, so per-epoch diffs against this set come out sorted —
  // the order ShardDelta::findings promises).
  std::unordered_set<std::string> shipped_findings;
  uint64_t imports = 0;  // Pool entries adopted (post-dedup).
};

}  // namespace

CampaignEngine::CampaignEngine(std::string_view target,
                               CampaignOptions options)
    : factory_(ResolveHypervisorFactory(target)),
      options_(std::move(options)) {}

CampaignEngine::CampaignEngine(HypervisorFactory factory,
                               CampaignOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {}

CampaignEngine::CampaignEngine(Hypervisor& target, CampaignOptions options)
    : borrowed_(&target), options_(std::move(options)) {}

CampaignEngine& CampaignEngine::AddObserver(CampaignObserver* observer) {
  if (observer != nullptr) {
    observers_.push_back(observer);
  }
  return *this;
}

EngineResult CampaignEngine::Run() {
  const CampaignOptions& options = options_;
  // A borrowed target is a single instance, hence a single inline shard.
  const int workers =
      borrowed_ != nullptr ? 1 : (options.workers > 0 ? options.workers : 1);
  const int samples = options.samples > 0 ? options.samples : 1;

  std::vector<WorkerState> states(static_cast<size_t>(workers));
  size_t epochs = 0;
  for (int w = 0; w < workers; ++w) {
    WorkerState& state = states[static_cast<size_t>(w)];
    if (borrowed_ != nullptr) {
      state.hv = borrowed_;
    } else {
      state.owned = factory_();
      state.hv = state.owned.get();
    }
    CoverageUnit& cov = state.hv->nested_coverage(options.arch);
    cov.ResetCoverage();
    state.hv->sanitizers().Clear();

    AgentOptions agent_options = options.agent;
    agent_options.arch = options.arch;
    state.agent = std::make_unique<Agent>(*state.hv, agent_options);

    FuzzerOptions fuzzer_options = options.fuzzer;
    fuzzer_options.seed = options.seed + static_cast<uint64_t>(w);
    state.fuzzer = std::make_unique<Fuzzer>(fuzzer_options,
                                            state.agent->MakeExecutor());

    const uint64_t base = options.iterations / static_cast<uint64_t>(workers);
    const uint64_t rem = options.iterations % static_cast<uint64_t>(workers);
    const uint64_t budget = base + (static_cast<uint64_t>(w) < rem ? 1 : 0);
    state.steps = ChunkSchedule(budget, samples);
    epochs = std::max(epochs, state.steps.size());
  }

  const size_t total_points =
      states[0].hv->nested_coverage(options.arch).total_points();
  // Corpus syncing needs a corpus: in breadth-first mode (guidance off)
  // nothing is ever queued or exported, so shards run fully decoupled —
  // no feedback waits — instead of idling on empty exchanges.
  const bool syncing =
      options.corpus_sync && workers > 1 && options.fuzzer.coverage_guidance;

  MergePipelineOptions pipeline_options;
  pipeline_options.workers = workers;
  pipeline_options.epochs = epochs;
  pipeline_options.total_points = total_points;
  pipeline_options.merge_batch = options.merge_batch;
  MergePipeline pipeline(pipeline_options, observers_);

  // A worker or merge-thread failure must not strand the other threads at
  // the queue or the feedback wait: record the first exception, abort the
  // pipeline (unblocking everybody), and rethrow after the join.
  std::mutex error_mu;
  std::exception_ptr fatal;
  auto capture = [&](std::exception_ptr error) {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!fatal) {
        fatal = error;
      }
    }
    pipeline.Abort();
  };

  auto worker_main = [&](int w) {
    WorkerState& state = states[static_cast<size_t>(w)];
    try {
      // Every worker publishes one delta per global epoch — empty ones
      // past its own schedule — so the drainer can finalize epochs
      // without tracking per-shard schedules.
      for (size_t epoch = 0; epoch < epochs; ++epoch) {
        uint64_t imported = 0;
        if (syncing && epoch > 0) {
          MergePipeline::Feedback feedback;
          if (!pipeline.WaitForFeedback(epoch - 1, w, &feedback)) {
            return;
          }
          for (const FuzzInput& input : feedback.pool_entries) {
            // The fuzzer hash-guards imports, so an identical entry
            // re-published by several shards joins this queue only once.
            if (state.fuzzer->ImportCorpusEntry(input)) {
              ++imported;
            }
          }
          state.imports += imported;
          // Mark the merged global novelty seen (not novel here, not
          // re-exported) and skip the just-imported entries at the next
          // export: re-publishing them would bounce inputs between
          // shards, duplicating without bound.
          state.fuzzer->ApplyVirginDelta(feedback.virgin);
          state.fuzzer->MarkQueueExported();
        }
        if (epoch < state.steps.size()) {
          state.fuzzer->Run(state.steps[epoch]);
        }

        if (!syncing) {
          // Nothing consumes queue entries without syncing; skip the
          // per-epoch input copies entirely.
          state.fuzzer->MarkQueueExported();
        }
        FuzzerDelta fuzzer_delta = state.fuzzer->ExportDelta();
        ShardDelta delta;
        delta.worker = w;
        delta.epoch = epoch;
        delta.iterations = fuzzer_delta.iterations;
        delta.imported = imported;
        delta.virgin = std::move(fuzzer_delta.virgin);
        delta.queue_entries = std::move(fuzzer_delta.queue_entries);
        delta.covered_points =
            state.hv->nested_coverage(options.arch)
                .ExtractDeltaSince(state.covered_seen);
        for (const auto& [id, report] : state.agent->findings()) {
          if (state.shipped_findings.insert(id).second) {
            delta.findings.push_back(report);
          }
        }
        if (!pipeline.Publish(wire::Encode(delta))) {
          return;
        }
      }
    } catch (...) {
      capture(std::current_exception());
    }
  };

  std::thread merge_thread([&] {
    try {
      pipeline.RunMergeLoop();
    } catch (...) {
      capture(std::current_exception());
    }
  });

  if (workers == 1) {
    worker_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back(worker_main, w);
    }
    for (auto& thread : threads) {
      thread.join();
    }
  }
  merge_thread.join();
  if (fatal) {
    std::rethrow_exception(fatal);
  }

  EngineResult out;
  out.pipeline = pipeline.stats();
  out.merged.series = pipeline.series();
  out.merged.total_points = total_points;
  const std::vector<uint8_t>& global_covered = pipeline.covered();
  for (size_t i = 0; i < global_covered.size(); ++i) {
    if (global_covered[i] != 0) {
      out.merged.covered_set.push_back(i);
    }
  }
  out.merged.covered_points = out.merged.covered_set.size();
  out.merged.final_percent =
      total_points == 0 ? 0.0
                        : 100.0 * static_cast<double>(out.merged.covered_points) /
                              static_cast<double>(total_points);
  for (const auto& [id, report] : pipeline.findings()) {
    out.merged.findings.push_back(report);
  }
  out.merged.fuzzer_stats.bitmap_edges = pipeline.virgin().CountNonZero();

  std::unordered_set<std::string> crash_ids;
  for (int w = 0; w < workers; ++w) {
    WorkerState& state = states[static_cast<size_t>(w)];
    CampaignResult wr;
    CoverageUnit& cov = state.hv->nested_coverage(options.arch);
    wr.final_percent = cov.percent();
    wr.covered_points = cov.covered_points();
    wr.total_points = cov.total_points();
    wr.covered_set = cov.CoveredSet();
    for (const auto& [id, report] : state.agent->findings()) {
      wr.findings.push_back(report);
    }
    wr.fuzzer_stats = state.fuzzer->stats();
    wr.watchdog_restarts = state.agent->watchdog_restarts();

    out.merged.fuzzer_stats.iterations += wr.fuzzer_stats.iterations;
    out.merged.fuzzer_stats.queue_size += wr.fuzzer_stats.queue_size;
    for (const auto& [id, input] : state.fuzzer->crashes()) {
      crash_ids.insert(id);
    }
    out.merged.watchdog_restarts += wr.watchdog_restarts;
    out.corpus_imports += state.imports;

    const ShardDoneEvent event{w,
                               wr.fuzzer_stats.iterations,
                               wr.final_percent,
                               wr.covered_points,
                               wr.fuzzer_stats.queue_size,
                               wr.findings.size(),
                               state.imports,
                               wr.watchdog_restarts};
    pipeline.NotifyShardDone(event);
    out.per_worker.push_back(std::move(wr));
  }
  out.merged.fuzzer_stats.unique_anomalies = crash_ids.size();

  const FinishEvent event{workers,
                          epochs,
                          out.merged.fuzzer_stats.iterations,
                          out.merged.final_percent,
                          out.merged.covered_points,
                          out.merged.total_points,
                          out.merged.findings.size(),
                          out.corpus_imports};
  pipeline.NotifyFinish(event);
  if (std::exception_ptr error = pipeline.observer_error()) {
    std::rethrow_exception(error);
  }
  return out;
}

}  // namespace neco
