#include "src/core/engine.h"

#include <algorithm>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>

#include "src/core/agent.h"
#include "src/fuzz/fuzzer.h"

namespace neco {
namespace {

// Cyclic barrier whose last arriver runs a completion step before
// releasing the waiters. The completion step is the single-threaded,
// deterministic point where shard states merge (and observer events
// fire); everyone else is parked on the condition variable, so their
// fuzzer/hypervisor state is safe to read (the barrier mutex orders those
// writes before the merge reads).
class EpochBarrier {
 public:
  EpochBarrier(int parties, std::function<void()> on_complete)
      : parties_(parties), on_complete_(std::move(on_complete)) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t phase = phase_;
    if (++waiting_ == parties_) {
      on_complete_();
      waiting_ = 0;
      ++phase_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return phase_ != phase; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const int parties_;
  int waiting_ = 0;
  uint64_t phase_ = 0;
  std::function<void()> on_complete_;
};

// An input one shard found interesting, published for the others.
struct PoolEntry {
  int origin = 0;
  FuzzInput input;
};

struct WorkerState {
  Hypervisor* hv = nullptr;            // Owned or borrowed.
  std::unique_ptr<Hypervisor> owned;
  std::unique_ptr<Agent> agent;
  std::unique_ptr<Fuzzer> fuzzer;
  // Per-epoch iteration steps; mirrors the serial campaign's chunking so
  // worker 0 of a one-worker campaign replays the historical RunCampaign
  // schedule exactly.
  std::vector<uint64_t> steps;
  size_t export_cursor = 0;      // Own queue entries already published.
  size_t import_cursor = 0;      // Pool entries already considered.
  uint64_t imports = 0;          // Entries adopted (post-dedup).
  uint64_t reported_imports = 0; // Imports already streamed to observers.
};

}  // namespace

CampaignEngine::CampaignEngine(std::string_view target,
                               CampaignOptions options)
    : factory_(ResolveHypervisorFactory(target)),
      options_(std::move(options)) {}

CampaignEngine::CampaignEngine(HypervisorFactory factory,
                               CampaignOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {}

CampaignEngine::CampaignEngine(Hypervisor& target, CampaignOptions options)
    : borrowed_(&target), options_(std::move(options)) {}

CampaignEngine& CampaignEngine::AddObserver(CampaignObserver* observer) {
  if (observer != nullptr) {
    observers_.push_back(observer);
  }
  return *this;
}

EngineResult CampaignEngine::Run() {
  const CampaignOptions& options = options_;
  // A borrowed target is a single instance, hence a single inline shard.
  const int workers =
      borrowed_ != nullptr ? 1 : (options.workers > 0 ? options.workers : 1);
  const int samples = options.samples > 0 ? options.samples : 1;

  std::vector<WorkerState> states(static_cast<size_t>(workers));
  size_t epochs = 0;
  for (int w = 0; w < workers; ++w) {
    WorkerState& state = states[static_cast<size_t>(w)];
    if (borrowed_ != nullptr) {
      state.hv = borrowed_;
    } else {
      state.owned = factory_();
      state.hv = state.owned.get();
    }
    CoverageUnit& cov = state.hv->nested_coverage(options.arch);
    cov.ResetCoverage();
    state.hv->sanitizers().Clear();

    AgentOptions agent_options = options.agent;
    agent_options.arch = options.arch;
    state.agent = std::make_unique<Agent>(*state.hv, agent_options);

    FuzzerOptions fuzzer_options = options.fuzzer;
    fuzzer_options.seed = options.seed + static_cast<uint64_t>(w);
    state.fuzzer = std::make_unique<Fuzzer>(fuzzer_options,
                                            state.agent->MakeExecutor());

    const uint64_t base = options.iterations / static_cast<uint64_t>(workers);
    const uint64_t rem = options.iterations % static_cast<uint64_t>(workers);
    const uint64_t budget = base + (static_cast<uint64_t>(w) < rem ? 1 : 0);
    state.steps = ChunkSchedule(budget, samples);
    epochs = std::max(epochs, state.steps.size());
  }

  const size_t total_points =
      states[0].hv->nested_coverage(options.arch).total_points();

  // Global merged state; touched only inside the barrier completion step.
  CoverageBitmap global_virgin;
  std::vector<uint8_t> global_covered(total_points, 0);
  std::map<std::string, AnomalyReport> global_findings;
  std::vector<PoolEntry> pool;
  std::vector<CoverageSample> series;
  uint64_t total_done = 0;
  size_t current_epoch = 0;

  EpochBarrier barrier(workers, [&] {
    for (auto& state : states) {
      if (current_epoch < state.steps.size()) {
        total_done += state.steps[current_epoch];
      }
    }
    for (int w = 0; w < workers; ++w) {
      WorkerState& state = states[static_cast<size_t>(w)];
      uint64_t published = 0;
      if (options.corpus_sync && workers > 1) {
        for (FuzzInput& input :
             state.fuzzer->ExportCorpus(state.export_cursor)) {
          pool.push_back({w, std::move(input)});
          ++published;
        }
        state.export_cursor = state.fuzzer->corpus().size();
      }
      const uint64_t imported = state.imports - state.reported_imports;
      state.reported_imports = state.imports;
      if (published != 0 || imported != 0) {
        const CorpusSyncEvent event{current_epoch, w, published, imported};
        for (CampaignObserver* observer : observers_) {
          observer->OnCorpusSync(event);
        }
      }
      state.fuzzer->virgin_map().MergeInto(global_virgin);
      const auto& hits = state.hv->nested_coverage(options.arch).hits();
      for (size_t i = 0; i < hits.size() && i < global_covered.size(); ++i) {
        global_covered[i] |= hits[i];
      }
      for (const auto& [id, report] : state.agent->findings()) {
        if (global_findings.emplace(id, report).second) {
          const FindingEvent event{current_epoch, w, report};
          for (CampaignObserver* observer : observers_) {
            observer->OnFinding(event);
          }
        }
      }
    }
    size_t covered = 0;
    for (uint8_t h : global_covered) {
      covered += h != 0;
    }
    series.push_back(
        {total_done, total_points == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(covered) /
                               static_cast<double>(total_points)});
    const SampleEvent event{current_epoch, total_done, series.back().percent,
                           covered};
    for (CampaignObserver* observer : observers_) {
      observer->OnSample(event);
    }
    ++current_epoch;
  });

  auto worker_main = [&](int w) {
    WorkerState& state = states[static_cast<size_t>(w)];
    for (size_t epoch = 0; epoch < epochs; ++epoch) {
      if (options.corpus_sync && workers > 1) {
        // The pool and the global virgin map only change inside the
        // barrier completion step, so reading them here is race-free.
        const size_t pool_size = pool.size();
        for (size_t i = state.import_cursor; i < pool_size; ++i) {
          // The fuzzer hash-guards imports, so an identical entry
          // re-published by several shards joins this queue only once.
          if (pool[i].origin != w &&
              state.fuzzer->ImportCorpusEntry(pool[i].input)) {
            ++state.imports;
          }
        }
        state.import_cursor = pool_size;
        // Skip the just-imported entries at the next export: re-publishing
        // them would bounce inputs between shards, duplicating without
        // bound. Own discoveries made during Run land after this cursor.
        state.export_cursor = state.fuzzer->corpus().size();
        state.fuzzer->MergeVirginFrom(global_virgin);
      }
      if (epoch < state.steps.size()) {
        state.fuzzer->Run(state.steps[epoch]);
      }
      barrier.ArriveAndWait();
    }
  };

  if (workers == 1) {
    worker_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back(worker_main, w);
    }
    for (auto& thread : threads) {
      thread.join();
    }
  }

  EngineResult out;
  out.merged.series = std::move(series);
  out.merged.total_points = total_points;
  size_t covered = 0;
  for (size_t i = 0; i < global_covered.size(); ++i) {
    if (global_covered[i] != 0) {
      ++covered;
      out.merged.covered_set.push_back(i);
    }
  }
  out.merged.covered_points = covered;
  out.merged.final_percent =
      total_points == 0 ? 0.0
                        : 100.0 * static_cast<double>(covered) /
                              static_cast<double>(total_points);
  for (const auto& [id, report] : global_findings) {
    out.merged.findings.push_back(report);
  }
  out.merged.fuzzer_stats.bitmap_edges = global_virgin.CountNonZero();

  std::unordered_set<std::string> crash_ids;
  for (int w = 0; w < workers; ++w) {
    WorkerState& state = states[static_cast<size_t>(w)];
    CampaignResult wr;
    CoverageUnit& cov = state.hv->nested_coverage(options.arch);
    wr.final_percent = cov.percent();
    wr.covered_points = cov.covered_points();
    wr.total_points = cov.total_points();
    wr.covered_set = cov.CoveredSet();
    for (const auto& [id, report] : state.agent->findings()) {
      wr.findings.push_back(report);
    }
    wr.fuzzer_stats = state.fuzzer->stats();
    wr.watchdog_restarts = state.agent->watchdog_restarts();

    out.merged.fuzzer_stats.iterations += wr.fuzzer_stats.iterations;
    out.merged.fuzzer_stats.queue_size += wr.fuzzer_stats.queue_size;
    for (const auto& [id, input] : state.fuzzer->crashes()) {
      crash_ids.insert(id);
    }
    out.merged.watchdog_restarts += wr.watchdog_restarts;
    out.corpus_imports += state.imports;

    const ShardDoneEvent event{w,
                               wr.fuzzer_stats.iterations,
                               wr.final_percent,
                               wr.covered_points,
                               wr.fuzzer_stats.queue_size,
                               wr.findings.size(),
                               state.imports,
                               wr.watchdog_restarts};
    for (CampaignObserver* observer : observers_) {
      observer->OnShardDone(event);
    }
    out.per_worker.push_back(std::move(wr));
  }
  out.merged.fuzzer_stats.unique_anomalies = crash_ids.size();

  const FinishEvent event{workers,
                          epochs,
                          out.merged.fuzzer_stats.iterations,
                          out.merged.final_percent,
                          out.merged.covered_points,
                          out.merged.total_points,
                          out.merged.findings.size(),
                          out.corpus_imports};
  for (CampaignObserver* observer : observers_) {
    observer->OnFinish(event);
  }
  return out;
}

}  // namespace neco
