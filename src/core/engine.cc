#include "src/core/engine.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>

#include "src/arch/cpu_features.h"
#include "src/core/agent.h"
#include "src/core/transport/inproc.h"
#include "src/core/transport/pipe.h"
#include "src/core/transport/socket.h"
#include "src/core/transport/supervisor.h"
#include "src/fuzz/fuzzer.h"
#include "src/support/errno_util.h"
#include "src/support/mutex.h"

namespace neco {
namespace {

// --- One shard's private campaign state ----------------------------------

struct ShardContext {
  Hypervisor* hv = nullptr;  // Owned or borrowed.
  std::unique_ptr<Hypervisor> owned;
  std::unique_ptr<Agent> agent;
  std::unique_ptr<Fuzzer> fuzzer;
  // Per-epoch iteration steps; mirrors the serial campaign's chunking so
  // worker 0 of a one-worker campaign replays the historical serial
  // schedule exactly.
  std::vector<uint64_t> steps;
  // Covered-point snapshot backing CoverageUnit::ExtractDeltaSince.
  std::vector<uint8_t> covered_seen;
  // Finding ids already shipped in a delta (the agent's findings map is
  // bug-id-sorted, so per-epoch diffs against this set come out sorted —
  // the order ShardDelta::findings promises).
  std::unordered_set<std::string> shipped_findings;
  uint64_t imports = 0;  // Pool entries adopted (post-dedup).
};

// What the engine needs from a finished shard, whichever side of a fork it
// ran on: thread shards fill this from their ShardContext, process shards
// ship it as a ShardResultRecord.
struct ShardOutcome {
  CampaignResult result;
  uint64_t imports = 0;
  std::vector<std::string> crash_ids;
  std::vector<FuzzInput> crash_inputs;  // Parallel to crash_ids.
};

uint64_t ShardBudget(uint64_t iterations, int workers, int w) {
  const uint64_t base = iterations / static_cast<uint64_t>(workers);
  const uint64_t rem = iterations % static_cast<uint64_t>(workers);
  return base + (static_cast<uint64_t>(w) < rem ? 1 : 0);
}

// The global epoch count: the longest shard schedule. Pure arithmetic, so
// the parent of a process campaign and every exec'd child agree without
// sharing memory.
size_t ComputeEpochs(uint64_t iterations, int workers, int samples) {
  size_t epochs = 0;
  for (int w = 0; w < workers; ++w) {
    epochs = std::max(
        epochs, ChunkSchedule(ShardBudget(iterations, workers, w), samples)
                    .size());
  }
  return epochs;
}

void InitShard(ShardContext& state, Hypervisor* borrowed,
               const HypervisorFactory& factory,
               const CampaignOptions& options, int workers, int w,
               int samples) {
  if (borrowed != nullptr) {
    state.hv = borrowed;
  } else {
    state.owned = factory();
    state.hv = state.owned.get();
  }
  CoverageUnit& cov = state.hv->nested_coverage(options.arch);
  cov.ResetCoverage();
  state.hv->sanitizers().Clear();

  AgentOptions agent_options = options.agent;
  agent_options.arch = options.arch;
  state.agent = std::make_unique<Agent>(*state.hv, agent_options);

  FuzzerOptions fuzzer_options = options.fuzzer;
  fuzzer_options.seed = options.seed + static_cast<uint64_t>(w);
  state.fuzzer =
      std::make_unique<Fuzzer>(fuzzer_options, state.agent->MakeExecutor());

  state.steps =
      ChunkSchedule(ShardBudget(options.iterations, workers, w), samples);
}

// --- Worker state capture/restore (materialized snapshots) ---------------

// Serializes everything a shard needs to continue past `horizon` epochs
// as if it never stopped: fuzzer (corpus, RNG streams, virgin map, crash
// dedup), agent (throughput counters, findings, learned quirk tables),
// coverage unit, host-crash flags, and the export bookkeeping. Captured
// AFTER the epoch's delta was assembled, so every "already shipped"
// cursor is included at its post-export position.
WorkerStateRecord ExportWorkerState(ShardContext& state,
                                    const CampaignOptions& options, int w,
                                    size_t horizon) {
  WorkerStateRecord record;
  record.worker = w;
  record.epochs_covered = horizon;
  state.fuzzer->ExportState(&record);
  state.agent->ExportState(&record);
  const CoverageUnit& cov = state.hv->nested_coverage(options.arch);
  for (size_t point : cov.CoveredSet()) {
    record.covered.push_back(static_cast<uint32_t>(point));
  }
  record.hit_events = cov.hit_events();
  record.host_crashed = state.hv->host_crashed() ? 1 : 0;
  record.host_restarts = state.hv->host_restarts();
  record.imports = state.imports;
  return record;
}

// The inverse: seeds a freshly initialized shard from its snapshot record
// so the next epoch runs bit-identically to the incarnation that wrote
// it. `record` is consumed (corpus entries are moved, not copied).
void ImportWorkerState(ShardContext& state, const CampaignOptions& options,
                       WorkerStateRecord* record) {
  state.fuzzer->ImportState(record);
  state.agent->ImportState(*record);
  CoverageUnit& cov = state.hv->nested_coverage(options.arch);
  cov.RestoreCoverage(record->covered, record->hit_events);
  // The snapshot's coverage was exported right after a delta, so the
  // restored "already shipped" baseline is the full restored map.
  state.covered_seen = cov.hits();
  state.hv->RestoreHostCrashState(record->host_crashed != 0,
                                  record->host_restarts);
  state.imports = record->imports;
  for (const AnomalyReport& report : record->findings) {
    state.shipped_findings.insert(report.bug_id);
  }
}

// The shard epoch loop, shared by thread workers and process children:
// absorb the previous epoch's feedback (when syncing), fuzz one step,
// publish one wire-encoded ShardDelta. `get_feedback` and `publish`
// abstract the transport direction; either returning false means the
// campaign is going down and the shard stops quietly. Every worker
// publishes one delta per global epoch — empty ones past its own schedule
// — so the drainer can finalize epochs without tracking per-shard
// schedules. A snapshot-resumed shard starts at `start_epoch` instead of
// 0; with a snapshot cadence it additionally publishes a
// WorkerStateRecord frame right before each snapshot epoch's delta.
bool RunShardEpochs(
    ShardContext& state, const CampaignOptions& options, int w,
    size_t epochs, bool syncing, size_t start_epoch, size_t snapshot_every,
    const std::function<bool(size_t, MergePipeline::Feedback*)>& get_feedback,
    const std::function<bool(wire::Buffer)>& publish,
    const std::function<void(int, size_t)>& fault_hook) {
  for (size_t epoch = start_epoch; epoch < epochs; ++epoch) {
    if (fault_hook) {
      fault_hook(w, epoch);
    }
    uint64_t imported = 0;
    if (syncing && epoch > 0) {
      MergePipeline::Feedback feedback;
      if (!get_feedback(epoch - 1, &feedback)) {
        return false;
      }
      for (const FuzzInput& input : feedback.pool_entries) {
        // The fuzzer hash-guards imports, so an identical entry
        // re-published by several shards joins this queue only once.
        if (state.fuzzer->ImportCorpusEntry(input)) {
          ++imported;
        }
      }
      state.imports += imported;
      // Mark the merged global novelty seen (not novel here, not
      // re-exported) and skip the just-imported entries at the next
      // export: re-publishing them would bounce inputs between shards,
      // duplicating without bound.
      state.fuzzer->ApplyVirginDelta(feedback.virgin);
      state.fuzzer->MarkQueueExported();
    }
    if (epoch < state.steps.size()) {
      state.fuzzer->Run(state.steps[epoch]);
    }

    if (!syncing) {
      // Nothing consumes queue entries without syncing; skip the
      // per-epoch input copies entirely.
      state.fuzzer->MarkQueueExported();
    }
    FuzzerDelta fuzzer_delta = state.fuzzer->ExportDelta();
    ShardDelta delta;
    delta.worker = w;
    delta.epoch = epoch;
    delta.iterations = fuzzer_delta.iterations;
    delta.imported = imported;
    delta.virgin = std::move(fuzzer_delta.virgin);
    for (auto& [id, input] : fuzzer_delta.crashes) {
      delta.crash_ids.push_back(std::move(id));
      delta.crash_inputs.push_back(std::move(input));
    }
    delta.covered_points = state.hv->nested_coverage(options.arch)
                               .ExtractDeltaSince(state.covered_seen);
    for (const auto& [id, report] : state.agent->findings()) {
      if (state.shipped_findings.insert(id).second) {
        delta.findings.push_back(report);
      }
    }
    // At a snapshot epoch, capture the shard's full state — after the
    // delta assembly above, so every export cursor sits at its shipped
    // position — and publish it BEFORE the delta: per-channel FIFO then
    // guarantees the drainer has the state staged by the time the epoch
    // can fold.
    if (snapshot_every != 0 && (epoch + 1) % snapshot_every == 0) {
      if (!publish(wire::Encode(
              ExportWorkerState(state, options, w, epoch + 1)))) {
        return false;
      }
    }
    // Queue entries are serialized straight out of the fuzzer's corpus
    // (fuzzer_delta holds pointers, valid until the fuzzer's next Run);
    // delta.queue_entries stays empty — the bytes exist once, in the
    // corpus and then in the frame.
    if (!publish(wire::Encode(delta, fuzzer_delta.queue_entries))) {
      return false;
    }
  }
  return true;
}

ShardOutcome CollectOutcome(ShardContext& state,
                            const CampaignOptions& options) {
  ShardOutcome out;
  CampaignResult& wr = out.result;
  CoverageUnit& cov = state.hv->nested_coverage(options.arch);
  wr.final_percent = cov.percent();
  wr.covered_points = cov.covered_points();
  wr.total_points = cov.total_points();
  wr.covered_set = cov.CoveredSet();
  for (const auto& [id, report] : state.agent->findings()) {
    wr.findings.push_back(report);
  }
  wr.fuzzer_stats = state.fuzzer->stats();
  wr.watchdog_restarts = state.agent->watchdog_restarts();
  wr.agent_stats = state.agent->stats();
  out.imports = state.imports;
  for (const auto& [id, input] : state.fuzzer->crashes()) {
    out.crash_ids.push_back(id);
    out.crash_inputs.push_back(input);
  }
  return out;
}

ShardOutcome OutcomeFromRecord(const ShardResultRecord& record) {
  ShardOutcome out;
  CampaignResult& wr = out.result;
  wr.final_percent = record.final_percent;
  wr.covered_points = static_cast<size_t>(record.covered_points);
  wr.total_points = static_cast<size_t>(record.total_points);
  for (uint32_t point : record.covered_set) {
    wr.covered_set.push_back(point);
  }
  wr.findings = record.findings;
  wr.fuzzer_stats.iterations = record.iterations;
  wr.fuzzer_stats.queue_size = record.queue_size;
  wr.fuzzer_stats.unique_anomalies = record.unique_anomalies;
  wr.fuzzer_stats.bitmap_edges = record.bitmap_edges;
  wr.watchdog_restarts = record.watchdog_restarts;
  wr.agent_stats.executions = record.iterations;
  wr.agent_stats.watchdog_restarts = record.watchdog_restarts;
  wr.agent_stats.snapshot_hits = record.snapshot_hits;
  wr.agent_stats.snapshot_misses = record.snapshot_misses;
  wr.agent_stats.config_memo_hits = record.config_memo_hits;
  wr.agent_stats.restore_ns = record.restore_ns;
  out.imports = record.imports;
  out.crash_ids = record.crash_ids;
  out.crash_inputs = record.crash_inputs;
  return out;
}

ShardResultRecord RecordFromContext(ShardContext& state,
                                    const CampaignOptions& options, int w) {
  ShardResultRecord record;
  ShardOutcome outcome = CollectOutcome(state, options);
  const CampaignResult& wr = outcome.result;
  record.worker = w;
  record.final_percent = wr.final_percent;
  record.covered_points = wr.covered_points;
  record.total_points = wr.total_points;
  for (size_t point : wr.covered_set) {
    record.covered_set.push_back(static_cast<uint32_t>(point));
  }
  record.findings = wr.findings;
  record.iterations = wr.fuzzer_stats.iterations;
  record.queue_size = wr.fuzzer_stats.queue_size;
  record.unique_anomalies = wr.fuzzer_stats.unique_anomalies;
  record.bitmap_edges = wr.fuzzer_stats.bitmap_edges;
  record.watchdog_restarts = wr.watchdog_restarts;
  record.snapshot_hits = wr.agent_stats.snapshot_hits;
  record.snapshot_misses = wr.agent_stats.snapshot_misses;
  record.config_memo_hits = wr.agent_stats.config_memo_hits;
  record.restore_ns = wr.agent_stats.restore_ns;
  record.imports = outcome.imports;
  record.crash_ids = std::move(outcome.crash_ids);
  record.crash_inputs = std::move(outcome.crash_inputs);
  return record;
}

// Closes every registered descriptor on destruction unless released;
// keeps the process-shard setup's error paths from leaking 2 x workers
// pipe ends however they unwind.
class FdCloser {
 public:
  ~FdCloser() {
    for (int fd : fds_) {
      ::close(fd);
    }
  }
  void Add(int fd) { fds_.push_back(fd); }
  void Release() { fds_.clear(); }

 private:
  std::vector<int> fds_;
};

// Whether shards exchange corpus entries: syncing needs a corpus, and in
// breadth-first mode (guidance off) nothing is ever queued or exported, so
// shards run fully decoupled instead of idling on empty exchanges.
bool ResolveSyncing(const CampaignOptions& options, int workers) {
  return options.corpus_sync && workers > 1 &&
         options.fuzzer.coverage_guidance;
}

// The journal fingerprint: everything the campaign's results depend on.
// merge_batch and shard_mode are deliberately absent — results are
// invariant to both, so a campaign may resume under a different transport
// or batch size than it started with.
CampaignManifestRecord MakeManifest(const CampaignOptions& options,
                                    const std::string& target, int workers,
                                    int samples, size_t epochs,
                                    bool syncing) {
  CampaignManifestRecord manifest;
  manifest.epochs = epochs;
  manifest.workers = workers;
  manifest.samples = samples;
  manifest.arch = static_cast<uint8_t>(options.arch);
  manifest.iterations = options.iterations;
  manifest.seed = options.seed;
  manifest.corpus_sync = syncing ? 1 : 0;
  manifest.coverage_guidance = options.fuzzer.coverage_guidance ? 1 : 0;
  manifest.havoc_stack = options.fuzzer.havoc_stack;
  manifest.splice_percent = options.fuzzer.splice_percent;
  manifest.use_harness = options.agent.use_harness ? 1 : 0;
  manifest.use_validator = options.agent.use_validator ? 1 : 0;
  manifest.use_configurator = options.agent.use_configurator ? 1 : 0;
  manifest.oracle_interval = options.agent.oracle_interval;
  manifest.target = target;
  return manifest;
}

// --- The shard child loop (process/socket mode, fork and exec flavors) ---

// `delta_fd` and `feedback_fd` are the same descriptor for a socket-mode
// child: the frames are direction-tagged by type, so one full-duplex
// stream carries both. `restore` (consumed; null for a fresh start) seeds
// the shard from its snapshot record before the tail runs.
int RunShardChildLoop(const HypervisorFactory& factory,
                      const CampaignOptions& options, int workers, int w,
                      int samples, size_t epochs, bool syncing,
                      size_t start_epoch, size_t snapshot_every,
                      WorkerStateRecord* restore, int delta_fd,
                      int feedback_fd) {
  // The parent may die or abort at any time; a write into the closed pipe
  // must come back as an error code, not a process-killing SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  ShardContext state;
  InitShard(state, nullptr, factory, options, workers, w, samples);
  if (restore != nullptr) {
    ImportWorkerState(state, options, restore);
  }
  const bool completed = RunShardEpochs(
      state, options, w, epochs, syncing, start_epoch, snapshot_every,
      [&](size_t through_epoch, MergePipeline::Feedback* out) {
        wire::Buffer frame;
        FeedbackRecord record;
        if (!ReadPipeFrame(feedback_fd, &frame) ||
            !wire::Decode(frame, &record) || record.worker != w ||
            record.epoch != through_epoch) {
          return false;  // Parent gone or stream corrupt: stop quietly.
        }
        out->pool_entries = std::move(record.pool_entries);
        out->virgin = std::move(record.virgin);
        return true;
      },
      [&](wire::Buffer frame) { return WritePipeFrame(delta_fd, frame); },
      options.shard_fault_for_test);
  if (!completed) {
    return 2;  // Aborted mid-campaign; the parent reports its own error.
  }
  const ShardResultRecord record = RecordFromContext(state, options, w);
  if (!WritePipeFrame(delta_fd, wire::Encode(record))) {
    return 2;
  }
  ::close(delta_fd);
  if (feedback_fd != delta_fd) {
    ::close(feedback_fd);
  }
  return 0;
}

// --- Result assembly (shared by both shard modes) ------------------------

EngineResult AssembleResult(MergePipeline& pipeline,
                            ShardTransport& transport,
                            std::vector<ShardOutcome> outcomes, int workers,
                            size_t epochs, size_t total_points,
                            CampaignJournal* journal) {
  EngineResult out;
  out.pipeline = pipeline.stats();
  out.transport = transport.stats();
  if (journal != nullptr) {
    out.journal = journal->stats();
  }
  out.merged.series = pipeline.series();
  out.merged.total_points = total_points;
  const std::vector<uint8_t>& global_covered = pipeline.covered();
  for (size_t i = 0; i < global_covered.size(); ++i) {
    if (global_covered[i] != 0) {
      out.merged.covered_set.push_back(i);
    }
  }
  out.merged.covered_points = out.merged.covered_set.size();
  out.merged.final_percent =
      total_points == 0
          ? 0.0
          : 100.0 * static_cast<double>(out.merged.covered_points) /
                static_cast<double>(total_points);
  for (const auto& [id, report] : pipeline.findings()) {
    out.merged.findings.push_back(report);
  }
  out.merged.fuzzer_stats.bitmap_edges = pipeline.virgin().CountNonZero();

  std::unordered_set<std::string> crash_ids;
  for (int w = 0; w < workers; ++w) {
    ShardOutcome& outcome = outcomes[static_cast<size_t>(w)];
    CampaignResult& wr = outcome.result;
    out.merged.fuzzer_stats.iterations += wr.fuzzer_stats.iterations;
    out.merged.fuzzer_stats.queue_size += wr.fuzzer_stats.queue_size;
    for (const std::string& id : outcome.crash_ids) {
      crash_ids.insert(id);
    }
    std::vector<std::pair<std::string, FuzzInput>> shard_crashes;
    const size_t crash_count =
        std::min(outcome.crash_ids.size(), outcome.crash_inputs.size());
    shard_crashes.reserve(crash_count);
    for (size_t i = 0; i < crash_count; ++i) {
      shard_crashes.emplace_back(std::move(outcome.crash_ids[i]),
                                 std::move(outcome.crash_inputs[i]));
    }
    out.crashes.push_back(std::move(shard_crashes));
    out.merged.watchdog_restarts += wr.watchdog_restarts;
    out.merged.agent_stats.executions += wr.agent_stats.executions;
    out.merged.agent_stats.watchdog_restarts +=
        wr.agent_stats.watchdog_restarts;
    out.merged.agent_stats.snapshot_hits += wr.agent_stats.snapshot_hits;
    out.merged.agent_stats.snapshot_misses += wr.agent_stats.snapshot_misses;
    out.merged.agent_stats.config_memo_hits +=
        wr.agent_stats.config_memo_hits;
    out.merged.agent_stats.restore_ns += wr.agent_stats.restore_ns;
    out.corpus_imports += outcome.imports;

    const ShardDoneEvent event{w,
                               wr.fuzzer_stats.iterations,
                               wr.final_percent,
                               wr.covered_points,
                               wr.fuzzer_stats.queue_size,
                               wr.findings.size(),
                               outcome.imports,
                               wr.watchdog_restarts};
    pipeline.NotifyShardDone(event);
    out.per_worker.push_back(std::move(wr));
  }
  out.merged.fuzzer_stats.unique_anomalies = crash_ids.size();

  const FinishEvent event{workers,
                          epochs,
                          out.merged.fuzzer_stats.iterations,
                          out.merged.final_percent,
                          out.merged.covered_points,
                          out.merged.total_points,
                          out.merged.findings.size(),
                          out.corpus_imports};
  pipeline.NotifyFinish(event);
  if (std::exception_ptr error = pipeline.observer_error()) {
    std::rethrow_exception(error);
  }
  return out;
}

}  // namespace

CampaignEngine::CampaignEngine(std::string_view target,
                               CampaignOptions options)
    : factory_(ResolveHypervisorFactory(target)),
      target_name_(target),
      options_(std::move(options)) {}

CampaignEngine::CampaignEngine(HypervisorFactory factory,
                               CampaignOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {}

CampaignEngine::CampaignEngine(Hypervisor& target, CampaignOptions options)
    : borrowed_(&target), options_(std::move(options)) {}

CampaignEngine& CampaignEngine::AddObserver(CampaignObserver* observer) {
  if (observer != nullptr) {
    observers_.push_back(observer);
  }
  return *this;
}

EngineResult CampaignEngine::Run() {
  // A borrowed target is a single instance, hence a single inline shard
  // (and nothing that could cross a fork).
  const int workers =
      borrowed_ != nullptr ? 1
                           : (options_.workers > 0 ? options_.workers : 1);
  const int samples = options_.samples > 0 ? options_.samples : 1;
  // Durable state: open (or create) the journal before any shard starts.
  // A fingerprint mismatch — the directory belongs to a different
  // campaign — throws here, before anything runs.
  std::unique_ptr<CampaignJournal> journal;
  CampaignSnapshot snapshot;
  size_t horizon = 0;
  if (!options_.state_dir.empty()) {
    const size_t epochs =
        ComputeEpochs(options_.iterations, workers, samples);
    journal = std::make_unique<CampaignJournal>(
        options_.state_dir,
        MakeManifest(options_, target_name_, workers, samples, epochs,
                     ResolveSyncing(options_, workers)));
    // O(tail) resume: seed everything from the newest loadable snapshot
    // and replay only the epochs past its horizon. A 0 return (no
    // snapshot, or every candidate torn/corrupt) degrades to full replay
    // — never an error. The worker-count check is belt and braces: the
    // fingerprint already pins `workers`.
    horizon = journal->LoadLatestSnapshot(&snapshot);
    if (horizon != 0 &&
        snapshot.workers.size() != static_cast<size_t>(workers)) {
      horizon = 0;
    }
  }
  CampaignSnapshot* resume = horizon != 0 ? &snapshot : nullptr;
  if (borrowed_ == nullptr && options_.shard_mode != ShardMode::kThreads) {
    // kProcesses and kSockets share the epoch/merge loop; only the
    // transport setup differs.
    return RunWithProcessShards(workers, samples, journal.get(), resume);
  }
  return RunWithThreadShards(workers, samples, journal.get(), resume);
}

EngineResult CampaignEngine::RunWithThreadShards(int workers, int samples,
                                                 CampaignJournal* journal,
                                                 CampaignSnapshot* snapshot) {
  const CampaignOptions& options = options_;

  std::vector<ShardContext> states(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    InitShard(states[static_cast<size_t>(w)], borrowed_, factory_, options,
              workers, w, samples);
  }
  const size_t start_epoch =
      snapshot != nullptr ? snapshot->epochs_covered : 0;
  const size_t snapshot_every =
      journal != nullptr ? options.snapshot_every_epochs : 0;
  if (snapshot != nullptr) {
    for (int w = 0; w < workers; ++w) {
      ImportWorkerState(states[static_cast<size_t>(w)], options,
                        &snapshot->workers[static_cast<size_t>(w)]);
    }
  }
  const size_t epochs = ComputeEpochs(options.iterations, workers, samples);
  const size_t total_points =
      states[0].hv->nested_coverage(options.arch).total_points();
  const bool syncing = ResolveSyncing(options, workers);

  InProcTransportOptions transport_options;
  transport_options.workers = workers;
  transport_options.merge_batch = options.merge_batch;
  InProcTransport transport(transport_options);

  MergePipelineOptions pipeline_options;
  pipeline_options.workers = workers;
  pipeline_options.epochs = epochs;
  pipeline_options.total_points = total_points;
  pipeline_options.merge_batch = options.merge_batch;
  if (journal != nullptr) {
    pipeline_options.journal = journal;
    pipeline_options.resume_epochs =
        std::min(journal->committed_epochs(), epochs);
    pipeline_options.snapshot_every = snapshot_every;
    pipeline_options.restore =
        snapshot != nullptr ? &snapshot->merged : nullptr;
    pipeline_options.hypervisor = std::string(states[0].hv->name());
    pipeline_options.arch = std::string(ArchName(options.arch));
  }
  MergePipeline pipeline(pipeline_options, &transport, observers_);

  // A worker or merge-thread failure must not strand the other threads at
  // the queue or the feedback wait: record the first exception, abort the
  // pipeline (unblocking everybody), and rethrow after the join. (`fatal`
  // is a local, so clang's analysis cannot tie it to error_mu the way
  // NECO_GUARDED_BY ties members; the capture lambda is its only writer.)
  Mutex error_mu;
  std::exception_ptr fatal;
  auto capture = [&](std::exception_ptr error) {
    {
      MutexLock lock(&error_mu);
      if (!fatal) {
        fatal = error;
      }
    }
    pipeline.Abort();
  };

  auto worker_main = [&](int w) {
    ShardContext& state = states[static_cast<size_t>(w)];
    try {
      RunShardEpochs(
          state, options, w, epochs, syncing, start_epoch, snapshot_every,
          [&](size_t through_epoch, MergePipeline::Feedback* out) {
            return pipeline.WaitForFeedback(through_epoch, w, out);
          },
          [&](wire::Buffer frame) {
            return transport.Publish(std::move(frame));
          },
          /*fault_hook=*/nullptr);
    } catch (...) {
      capture(std::current_exception());
    }
  };

  std::thread merge_thread([&] {
    try {
      pipeline.RunMergeLoop();
    } catch (...) {
      capture(std::current_exception());
    }
  });

  if (workers == 1) {
    worker_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back(worker_main, w);
    }
    for (auto& thread : threads) {
      thread.join();
    }
  }
  merge_thread.join();
  if (fatal) {
    std::rethrow_exception(fatal);
  }

  std::vector<ShardOutcome> outcomes;
  outcomes.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    outcomes.push_back(
        CollectOutcome(states[static_cast<size_t>(w)], options));
  }
  return AssembleResult(pipeline, transport, std::move(outcomes), workers,
                        epochs, total_points, journal);
}

EngineResult CampaignEngine::RunWithProcessShards(int workers, int samples,
                                                  CampaignJournal* journal,
                                                  CampaignSnapshot* snapshot) {
  const CampaignOptions& options = options_;
  const size_t start_epoch =
      snapshot != nullptr ? snapshot->epochs_covered : 0;
  const size_t snapshot_every =
      journal != nullptr ? options.snapshot_every_epochs : 0;
  const bool sockets = options.shard_mode == ShardMode::kSockets;
  const bool exec_mode = !options.shard_exec_path.empty();
  const bool remote = sockets && options.remote_launcher != nullptr;
  if ((exec_mode || remote) && target_name_.empty()) {
    throw std::invalid_argument(
        "CampaignEngine: exec-mode and remote-launched shards rebuild the "
        "target from the registry, so the session must be constructed by "
        "name");
  }

  const size_t epochs = ComputeEpochs(options.iterations, workers, samples);
  const bool syncing = ResolveSyncing(options, workers);
  size_t total_points = 0;
  std::string hv_name;
  {
    // One throwaway instance answers the coverage-universe question the
    // thread path reads off its worker states (and names the target for
    // persisted crash artifacts).
    const std::unique_ptr<Hypervisor> probe = factory_();
    total_points = probe->nested_coverage(options.arch).total_points();
    hv_name = std::string(probe->name());
  }

  // Everything an exec'd or remote child needs to rebuild its shard; fork
  // children receive (and discard) the same record so the handshake is
  // uniform.
  auto child_config = [&](int w) {
    ShardChildConfigRecord config;
    config.target = target_name_;
    config.worker = w;
    config.workers = workers;
    config.epochs = epochs;
    config.arch = static_cast<uint8_t>(options.arch);
    config.iterations = options.iterations;
    config.samples = samples;
    config.seed = options.seed;
    config.syncing = syncing ? 1 : 0;
    config.coverage_guidance = options.fuzzer.coverage_guidance ? 1 : 0;
    config.havoc_stack = options.fuzzer.havoc_stack;
    config.splice_percent = options.fuzzer.splice_percent;
    config.use_harness = options.agent.use_harness ? 1 : 0;
    config.use_validator = options.agent.use_validator ? 1 : 0;
    config.use_configurator = options.agent.use_configurator ? 1 : 0;
    config.oracle_interval = options.agent.oracle_interval;
    config.snapshot_cache_size = options.agent.snapshot_cache_size;
    config.crash_dir = options.agent.crash_dir;
    config.start_epoch = start_epoch;
    config.snapshot_every = snapshot_every;
    wire::Buffer frame = wire::Encode(config);
    // Snapshot resume: the shard's materialized state rides the same
    // stream, framed right behind the config (children read one frame at
    // a time, so the concatenation demuxes itself).
    if (snapshot != nullptr) {
      const wire::Buffer state =
          wire::Encode(snapshot->workers[static_cast<size_t>(w)]);
      frame.insert(frame.end(), state.begin(), state.end());
    }
    return frame;
  };

  // The supervisor also scopes SIGPIPE (see transport.h) for every
  // feedback write below — constructed before any child or socket exists.
  ShardSupervisor supervisor;
  std::unique_ptr<FrameStreamTransport> transport;
  SocketTransport* socket_transport = nullptr;

  if (sockets) {
    SocketTransportOptions transport_options;
    transport_options.workers = workers;
    transport_options.address = options.listen_address;
    transport_options.port = options.listen_port;
    transport_options.accept_timeout_seconds = options.socket_accept_timeout;
    auto owned = std::make_unique<SocketTransport>(transport_options);
    socket_transport = owned.get();
    transport = std::move(owned);
    const uint16_t port = socket_transport->port();

    for (int w = 0; w < workers; ++w) {
      if (remote) {
        if (!options.remote_launcher(
                {w, options.listen_address, port, target_name_})) {
          throw std::runtime_error(
              "CampaignEngine: remote launcher failed for shard " +
              std::to_string(w));
        }
      } else if (exec_mode) {
        const std::vector<std::string> argv = {
            "--necofuzz-shard-child",
            "--necofuzz-connect=" + options.listen_address + ":" +
                std::to_string(port),
            "--necofuzz-worker=" + std::to_string(w)};
        // No descriptors to keep: a socket child dials its own.
        if (supervisor.SpawnExec(w, options.shard_exec_path, argv, {}) < 0) {
          throw std::runtime_error("CampaignEngine: fork() failed");
        }
      } else {
        const HypervisorFactory factory = factory_;
        const std::string address = options.listen_address;
        const int listen_fd = socket_transport->listen_fd();
        const pid_t pid = supervisor.SpawnFork(w, [&, w] {
          ::close(listen_fd);  // Do not keep the parent's port alive.
          std::string dial_error;
          const int sock = DialShardSocket(address, port, w, &dial_error);
          if (sock < 0) {
            return 2;
          }
          // A fork child inherits its configuration through memory, but
          // reads the config frame anyway so the stream afterwards
          // carries feedback frames only.
          wire::Buffer frame;
          ShardChildConfigRecord config;
          if (!ReadPipeFrame(sock, &frame) || !wire::Decode(frame, &config)) {
            ::close(sock);
            return 2;
          }
          // Same for the snapshot state frame trailing the config on a
          // resume — decoded off the stream, like an exec'd child would.
          WorkerStateRecord restore;
          if (config.start_epoch > 0 &&
              (!ReadPipeFrame(sock, &frame) ||
               !wire::Decode(frame, &restore) || restore.worker != w)) {
            ::close(sock);
            return 2;
          }
          return RunShardChildLoop(factory, options, workers, w, samples,
                                   epochs, syncing, start_epoch,
                                   snapshot_every,
                                   config.start_epoch > 0 ? &restore : nullptr,
                                   sock, sock);
        });
        if (pid < 0) {
          throw std::runtime_error("CampaignEngine: fork() failed");
        }
      }
    }
  } else {
    // Pipe pairs are created per child, immediately before its fork, so a
    // child never inherits a sibling's write end (which would keep that
    // sibling's stream from ever reaching EOF when it dies). Parent-held
    // ends are O_CLOEXEC from birth, so exec'd children shed them without
    // any close sweep racing the exec.
    std::vector<PipeShardChannel> channels;
    FdCloser parent_ends;  // Until PipeTransport takes ownership.
    for (int w = 0; w < workers; ++w) {
      int delta[2] = {-1, -1};
      int feedback[2] = {-1, -1};
      if (::pipe2(delta, O_CLOEXEC) != 0) {
        throw std::runtime_error("CampaignEngine: pipe2() failed: " +
                                 SafeStrerror(errno));
      }
      parent_ends.Add(delta[0]);
      if (::pipe2(feedback, O_CLOEXEC) != 0) {
        ::close(delta[1]);
        throw std::runtime_error("CampaignEngine: pipe2() failed: " +
                                 SafeStrerror(errno));
      }
      parent_ends.Add(feedback[1]);
      channels.push_back({w, delta[0], feedback[1]});
      const int delta_wr = delta[1];
      const int feedback_rd = feedback[0];

      pid_t pid = -1;
      if (exec_mode) {
        const std::vector<std::string> argv = {
            "--necofuzz-shard-child",
            "--necofuzz-delta-fd=" + std::to_string(delta_wr),
            "--necofuzz-feedback-fd=" + std::to_string(feedback_rd)};
        // SpawnExec clears FD_CLOEXEC on the kept ends in the child.
        pid = supervisor.SpawnExec(w, options.shard_exec_path, argv,
                                   {delta_wr, feedback_rd});
      } else {
        // Fork mode: the child inherits everything it needs through
        // memory. It drops the parent-held ends created so far (CLOEXEC
        // cannot help a fork-only child); sibling child ends need no
        // hand-closing anymore — they are already gone from this process
        // by the time this fork happens.
        const HypervisorFactory factory = factory_;
        pid = supervisor.SpawnFork(w, [&, w, delta_wr, feedback_rd] {
          for (const PipeShardChannel& ch : channels) {
            ::close(ch.delta_fd);
            ::close(ch.feedback_fd);
          }
          // A fork child's snapshot state arrives through inherited
          // memory, like the rest of its configuration (no config frame
          // is sent on the pipe-fork path).
          return RunShardChildLoop(
              factory, options, workers, w, samples, epochs, syncing,
              start_epoch, snapshot_every,
              snapshot != nullptr
                  ? &snapshot->workers[static_cast<size_t>(w)]
                  : nullptr,
              delta_wr, feedback_rd);
        });
      }
      // Parent: the child-side ends live in the child now (or never will,
      // on failure).
      ::close(delta_wr);
      ::close(feedback_rd);
      if (pid < 0) {
        // parent_ends releases every parent pipe end; ~ShardSupervisor
        // reaps whatever was already spawned.
        throw std::runtime_error("CampaignEngine: fork() failed");
      }
    }
    // PipeTransport owns the parent ends from here (closing them itself
    // if its constructor fails).
    parent_ends.Release();
    transport = std::make_unique<PipeTransport>(std::move(channels));
  }

  MergePipelineOptions pipeline_options;
  pipeline_options.workers = workers;
  pipeline_options.epochs = epochs;
  pipeline_options.total_points = total_points;
  pipeline_options.merge_batch = options.merge_batch;
  pipeline_options.push_feedback = syncing;
  if (journal != nullptr) {
    pipeline_options.journal = journal;
    pipeline_options.resume_epochs =
        std::min(journal->committed_epochs(), epochs);
    pipeline_options.snapshot_every = snapshot_every;
    pipeline_options.restore =
        snapshot != nullptr ? &snapshot->merged : nullptr;
    pipeline_options.hypervisor = hv_name;
    pipeline_options.arch = std::string(ArchName(options.arch));
  }
  MergePipeline pipeline(pipeline_options, transport.get(), observers_);

  // There are no worker threads in the parent, so the merge loop runs
  // inline; any failure (corrupt delta, dead shard, failed handshake)
  // lands here.
  try {
    if (sockets) {
      // The handshake doubles as config delivery; with a local launcher a
      // child that dies before saying hello fails the wait early instead
      // of running out the accept timeout. A *clean* exit is not a death:
      // a fast shard can legitimately finish its whole workload (frames
      // parked in the socket buffers) and exit 0 while a slower sibling
      // is still dialing.
      auto children_alive = [&supervisor] {
        for (const ShardExit& shard_exit : supervisor.ReapExited()) {
          if (shard_exit.reaped && !shard_exit.clean()) {
            return false;
          }
        }
        return true;
      };
      if (!socket_transport->AcceptShards(
              child_config, remote ? std::function<bool()>()
                                   : std::function<bool()>(children_alive))) {
        throw std::runtime_error("CampaignEngine: " + transport->error());
      }
    } else if (exec_mode) {
      // Exec'd pipe children know nothing yet: ship each one its config
      // record before expecting the first delta.
      for (int w = 0; w < workers; ++w) {
        if (!transport->SendFeedback(w, child_config(w))) {
          throw std::runtime_error("CampaignEngine: " + transport->error());
        }
      }
    }
    pipeline.RunMergeLoop();
    if (pipeline.finalized_epochs() < epochs) {
      throw std::runtime_error("CampaignEngine: campaign aborted after " +
                               std::to_string(pipeline.finalized_epochs()) +
                               " of " + std::to_string(epochs) + " epochs");
    }
    if (!transport->CollectResults()) {
      throw std::runtime_error("CampaignEngine: " + transport->error());
    }
  } catch (const std::exception& e) {
    // Harvest whoever already died (the likely culprit) for the error
    // message, then tear the rest down so nothing outlives the campaign.
    pipeline.Abort();
    std::string message = e.what();
    // The transport knows which shard it saw die; reap that child for
    // its exit status ("killed by signal 9") before the teardown kill
    // makes every survivor look the same. Then harvest any other
    // already-dead children. (With a remote launcher there is nothing to
    // reap; the transport's attribution is the whole story.)
    const int dead_worker = transport->dead_worker();
    if (dead_worker >= 0) {
      const ShardExit shard_exit = supervisor.WaitWorker(dead_worker);
      if (shard_exit.reaped && !shard_exit.clean()) {
        message += "; shard " + std::to_string(shard_exit.worker) + " " +
                   shard_exit.Describe();
      }
    }
    for (const ShardExit& shard_exit : supervisor.ReapExited()) {
      if (shard_exit.worker != dead_worker && shard_exit.reaped &&
          !shard_exit.clean()) {
        message += "; shard " + std::to_string(shard_exit.worker) + " " +
                   shard_exit.Describe();
      }
    }
    supervisor.KillAll(SIGKILL);
    supervisor.WaitAll();
    throw std::runtime_error(message);
  }

  // Clean completion: every locally launched child must also exit
  // cleanly (remote-launched shards have no local pid; their clean "exit"
  // is the result record plus EOF the transport already verified).
  for (const ShardExit& shard_exit : supervisor.WaitAll()) {
    if (!shard_exit.clean()) {
      throw std::runtime_error("CampaignEngine: shard " +
                               std::to_string(shard_exit.worker) + " " +
                               shard_exit.Describe());
    }
  }

  std::vector<ShardOutcome> outcomes;
  outcomes.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    const ShardResultRecord* record = transport->shard_result(w);
    if (record == nullptr) {
      throw std::runtime_error("CampaignEngine: shard " + std::to_string(w) +
                               " never delivered its result record");
    }
    outcomes.push_back(OutcomeFromRecord(*record));
  }
  return AssembleResult(pipeline, *transport, std::move(outcomes), workers,
                        epochs, total_points, journal);
}

namespace {

// Strict fd parse: anything but a pure decimal number is -1, so a mangled
// argument can never alias stdin (fd 0) and pass validation.
int ParseFdArg(const std::string& arg, const std::string& prefix) {
  const char* text = arg.c_str() + prefix.size();
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 0 || value > 1 << 20) {
    return -1;
  }
  return static_cast<int>(value);
}

}  // namespace

int MaybeRunShardChild(int argc, char** argv) {
  bool is_child = false;
  int delta_fd = -1;
  int feedback_fd = -1;
  int worker_arg = -1;
  std::string connect;
  const std::string delta_prefix = "--necofuzz-delta-fd=";
  const std::string feedback_prefix = "--necofuzz-feedback-fd=";
  const std::string connect_prefix = "--necofuzz-connect=";
  const std::string worker_prefix = "--necofuzz-worker=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--necofuzz-shard-child") {
      is_child = true;
    } else if (arg.rfind(delta_prefix, 0) == 0) {
      delta_fd = ParseFdArg(arg, delta_prefix);
    } else if (arg.rfind(feedback_prefix, 0) == 0) {
      feedback_fd = ParseFdArg(arg, feedback_prefix);
    } else if (arg.rfind(connect_prefix, 0) == 0) {
      connect = arg.substr(connect_prefix.size());
    } else if (arg.rfind(worker_prefix, 0) == 0) {
      worker_arg = ParseFdArg(arg, worker_prefix);
    }
  }
  if (!is_child) {
    return -1;
  }
  ::signal(SIGPIPE, SIG_IGN);

  if (!connect.empty()) {
    // Socket mode: dial the parent's listener, introduce ourselves, and
    // run the shard over the connection. This is the exact invocation a
    // RemoteLauncher issues on another machine.
    const size_t colon = connect.rfind(':');
    if (colon == std::string::npos || worker_arg < 0) {
      return 2;
    }
    const std::string address = connect.substr(0, colon);
    const int port = ParseFdArg(connect.substr(colon + 1), std::string());
    if (port <= 0 || port > 65535) {
      return 2;
    }
    std::string dial_error;
    const int sock = DialShardSocket(address, static_cast<uint16_t>(port),
                                     worker_arg, &dial_error);
    if (sock < 0) {
      return 2;
    }
    delta_fd = sock;
    feedback_fd = sock;
  } else if (delta_fd < 0 || feedback_fd < 0) {
    return 2;
  }

  wire::Buffer frame;
  ShardChildConfigRecord config;
  if (!ReadPipeFrame(feedback_fd, &frame) || !wire::Decode(frame, &config) ||
      (worker_arg >= 0 && config.worker != worker_arg)) {
    return 2;
  }
  // Snapshot resume: a non-zero start epoch promises a WorkerStateRecord
  // frame right behind the config on the same stream.
  WorkerStateRecord restore;
  if (config.start_epoch > 0 &&
      (!ReadPipeFrame(feedback_fd, &frame) || !wire::Decode(frame, &restore) ||
       restore.worker != config.worker ||
       restore.epochs_covered != config.start_epoch)) {
    return 2;
  }
  try {
    const HypervisorFactory factory =
        ResolveHypervisorFactory(config.target);
    CampaignOptions options;
    options.arch = static_cast<Arch>(config.arch);
    options.iterations = config.iterations;
    options.samples = config.samples;
    options.seed = config.seed;
    options.workers = config.workers;
    options.fuzzer.coverage_guidance = config.coverage_guidance != 0;
    options.fuzzer.havoc_stack = config.havoc_stack;
    options.fuzzer.splice_percent = config.splice_percent;
    options.agent.use_harness = config.use_harness != 0;
    options.agent.use_validator = config.use_validator != 0;
    options.agent.use_configurator = config.use_configurator != 0;
    options.agent.oracle_interval = config.oracle_interval;
    options.agent.snapshot_cache_size =
        static_cast<size_t>(config.snapshot_cache_size);
    options.agent.crash_dir = config.crash_dir;
    return RunShardChildLoop(
        factory, options, config.workers, config.worker, config.samples,
        config.epochs, config.syncing != 0,
        static_cast<size_t>(config.start_epoch),
        static_cast<size_t>(config.snapshot_every),
        config.start_epoch > 0 ? &restore : nullptr, delta_fd, feedback_fd);
  } catch (...) {
    return 1;
  }
}

}  // namespace neco
