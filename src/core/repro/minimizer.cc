#include "src/core/repro/minimizer.h"

#include <algorithm>

#include "src/core/partition.h"

namespace neco {

size_t CountNonZero(const FuzzInput& input) {
  size_t n = 0;
  for (uint8_t b : input) {
    n += b != 0;
  }
  return n;
}

bool InputMinimizer::StillTriggers(const FuzzInput& input,
                                   const std::string& bug_id,
                                   uint64_t max_probes) {
  if (probes_ >= max_probes) {
    return false;  // Budget exhausted: treat as "don't apply".
  }
  ++probes_;
  return probe_(input) == bug_id;
}

MinimizeResult InputMinimizer::Minimize(const FuzzInput& crashing,
                                        const std::string& bug_id,
                                        uint64_t max_probes) {
  MinimizeResult result;
  result.nonzero_bytes_before = CountNonZero(crashing);
  probes_ = 0;
  FuzzInput current = crashing;

  // Stage 1: blank whole component partitions.
  struct Slice {
    size_t offset;
    size_t size;
  };
  constexpr Slice kSlices[] = {
      {InputPartition::kHarnessOffset, InputPartition::kHarnessSize},
      {InputPartition::kMsrAreaOffset, InputPartition::kMsrAreaSize},
      {InputPartition::kMutationOffset, InputPartition::kMutationSize},
      {InputPartition::kConfigOffset, InputPartition::kConfigSize},
      {InputPartition::kVmcsImageOffset, InputPartition::kVmcsImageSize},
  };
  for (const Slice& slice : kSlices) {
    FuzzInput candidate = current;
    const size_t end = std::min(candidate.size(), slice.offset + slice.size);
    for (size_t i = slice.offset; i < end; ++i) {
      candidate[i] = 0;
    }
    if (StillTriggers(candidate, bug_id, max_probes)) {
      current = std::move(candidate);
    }
  }

  // Stage 2: ddmin-style block zeroing, halving block size.
  for (size_t block = current.size() / 2; block >= 8; block /= 2) {
    bool progress = true;
    while (progress && probes_ < max_probes) {
      progress = false;
      for (size_t start = 0; start + block <= current.size();
           start += block) {
        // Skip already-zero blocks.
        bool all_zero = true;
        for (size_t i = start; i < start + block; ++i) {
          all_zero &= current[i] == 0;
        }
        if (all_zero) {
          continue;
        }
        FuzzInput candidate = current;
        std::fill(candidate.begin() + static_cast<long>(start),
                  candidate.begin() + static_cast<long>(start + block), 0);
        if (StillTriggers(candidate, bug_id, max_probes)) {
          current = std::move(candidate);
          progress = true;
        }
      }
    }
  }

  // Stage 3: single-byte sweep.
  for (size_t i = 0; i < current.size() && probes_ < max_probes; ++i) {
    if (current[i] == 0) {
      continue;
    }
    FuzzInput candidate = current;
    candidate[i] = 0;
    if (StillTriggers(candidate, bug_id, max_probes)) {
      current = std::move(candidate);
    }
  }

  result.input = std::move(current);
  result.nonzero_bytes_after = CountNonZero(result.input);
  result.probes = probes_;
  return result;
}

}  // namespace neco
