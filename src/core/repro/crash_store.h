// Crash-report persistence (paper Section 4.5): "the agent saves the
// current fuzzing input to a timestamped file within a designated
// directory specified in its configuration", so findings survive the
// campaign for reproduction.
//
// Each saved report is a pair of files under the store directory:
//   <seq>-<bug_id>.input   — the raw 2 KiB fuzzing input
//   <seq>-<bug_id>.report  — human-readable metadata (kind, message,
//                            hypervisor, architecture, iteration)
#ifndef SRC_CORE_REPRO_CRASH_STORE_H_
#define SRC_CORE_REPRO_CRASH_STORE_H_

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "src/fuzz/mutator.h"
#include "src/hv/sanitizer.h"

namespace neco {

struct CrashRecord {
  AnomalyReport report;
  FuzzInput input;
  std::string hypervisor;
  std::string arch;
  uint64_t iteration = 0;
};

class CrashStore {
 public:
  // In-memory only when `directory` is empty.
  explicit CrashStore(std::filesystem::path directory = {});

  // Records a finding; returns false if the bug id is already known
  // (deduplication), true if this is a new finding.
  bool Save(const CrashRecord& record);

  const std::vector<CrashRecord>& records() const { return records_; }
  bool Known(const std::string& bug_id) const;

  // Reload a persisted input by sequence number (round-trip support).
  std::optional<FuzzInput> LoadInput(size_t seq) const;

  const std::filesystem::path& directory() const { return directory_; }

 private:
  std::filesystem::path InputPath(size_t seq, const std::string& id) const;
  std::filesystem::path ReportPath(size_t seq, const std::string& id) const;

  std::filesystem::path directory_;
  std::vector<CrashRecord> records_;
};

}  // namespace neco

#endif  // SRC_CORE_REPRO_CRASH_STORE_H_
