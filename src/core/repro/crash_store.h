// Crash-report persistence (paper Section 4.5): "the agent saves the
// current fuzzing input to a timestamped file within a designated
// directory specified in its configuration", so findings survive the
// campaign for reproduction.
//
// Each saved crash is three files under the store directory, all written
// through the atomic commit primitive (src/core/state/commit.h):
//   <seq>-<bug_id>.input   — the raw 2 KiB fuzzing input
//   <seq>-<bug_id>.report  — human-readable metadata (kind, message,
//                            hypervisor, architecture, iteration)
//   <seq>-<bug_id>.record  — the authoritative wire-encoded
//                            CrashArtifactRecord, written LAST: it is the
//                            crash's commit marker. A crash interrupted
//                            mid-save leaves at most orphan .input/.report
//                            files, which reload ignores — no torn pair is
//                            ever observable through the API.
//
// A store pointed at an existing directory reloads every committed
// .record at construction, so deduplication and sequence numbering
// survive a restart.
#ifndef SRC_CORE_REPRO_CRASH_STORE_H_
#define SRC_CORE_REPRO_CRASH_STORE_H_

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/fuzz/mutator.h"
#include "src/hv/sanitizer.h"

namespace neco {

struct CrashRecord {
  AnomalyReport report;
  FuzzInput input;
  std::string hypervisor;
  std::string arch;
  uint64_t iteration = 0;
};

class CrashStore {
 public:
  // In-memory only when `directory` is empty. A non-empty directory is
  // created if missing and scanned for previously committed records
  // (restart continues where the last run stopped: same dedup set, fresh
  // sequence numbers after the highest committed one). Unreadable or
  // torn files are skipped, never trusted.
  //
  // `expected_records` is the manifest-recorded artifact count, when the
  // caller has one: 0 skips the directory scan outright (a fresh campaign
  // pays nothing for its empty store — any orphan record a kill left
  // behind is re-saved byte-identically by the replay), and a positive
  // count pre-sizes the reload instead of growth-doubling through it.
  // The scan itself still reads whatever is on disk — the count is a
  // hint, never a truncation.
  explicit CrashStore(std::filesystem::path directory = {},
                      std::optional<uint64_t> expected_records = std::nullopt);

  // Records a finding; returns false if the bug id is already known
  // (deduplication), true if this is a new finding. Throws
  // std::runtime_error when persisting fails (ENOSPC, EACCES, a torn
  // write, ...): a crash artifact that cannot be made durable is an
  // error, not a silent success.
  bool Save(const CrashRecord& record);

  // Committed crashes in sequence order (reloaded ones first).
  const std::vector<CrashRecord>& records() const { return records_; }
  bool Known(const std::string& bug_id) const {
    return known_ids_.count(bug_id) != 0;
  }

  // Reload a persisted input by records() index (round-trip support).
  std::optional<FuzzInput> LoadInput(size_t index) const;

  const std::filesystem::path& directory() const { return directory_; }

  // Wall-clock nanoseconds the constructor spent reloading committed
  // records (0 when the scan was skipped); feeds JournalStats::reload_ns.
  uint64_t reload_ns() const { return reload_ns_; }

 private:
  std::filesystem::path PathFor(uint64_t seq, const std::string& id,
                                const char* extension) const;
  void Reload(std::optional<uint64_t> expected_records);

  // Single-threaded by contract (hence no mutex / NECO_GUARDED_BY): every
  // Save() happens on the merge/drain thread — findings reach the store
  // only through the journal observer, which MergePipeline invokes from
  // the (single) merge loop — and reads happen after the campaign joined.
  std::filesystem::path directory_;
  std::vector<CrashRecord> records_;
  std::vector<uint64_t> seqs_;  // Parallel to records_: on-disk sequence.
  std::unordered_set<std::string> known_ids_;
  uint64_t next_seq_ = 0;
  uint64_t reload_ns_ = 0;
};

}  // namespace neco

#endif  // SRC_CORE_REPRO_CRASH_STORE_H_
