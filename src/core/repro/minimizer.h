// Crash-input minimization for manual analysis (paper Section 4.5: saved
// inputs exist so that "any crashes or unique behaviours can be reliably
// reproduced for subsequent manual analysis and debugging" — this module
// automates the first analysis step).
//
// The minimizer shrinks a 2 KiB crashing input towards a canonical form
// while preserving the triggered bug id:
//   1. partition zeroing — blank whole component slices that are not
//      needed (often the harness slice is irrelevant to a state bug),
//   2. block zeroing — ddmin-style halving over the remaining bytes,
//   3. byte sweep — zero single bytes left to right.
// The result is an input where every nonzero byte is load-bearing, which
// maps directly onto the triggering VM-state fields.
#ifndef SRC_CORE_REPRO_MINIMIZER_H_
#define SRC_CORE_REPRO_MINIMIZER_H_

#include <functional>
#include <string>

#include "src/fuzz/mutator.h"

namespace neco {

// Re-executes an input and reports which bug id (if any) it triggers.
// Must be deterministic for minimization to converge.
using BugProbe = std::function<std::string(const FuzzInput&)>;

struct MinimizeResult {
  FuzzInput input;
  size_t nonzero_bytes_before = 0;
  size_t nonzero_bytes_after = 0;
  uint64_t probes = 0;
};

class InputMinimizer {
 public:
  explicit InputMinimizer(BugProbe probe) : probe_(std::move(probe)) {}

  // Minimize `crashing` while preserving `bug_id`. `max_probes` bounds the
  // work (each probe is one full VM execution).
  MinimizeResult Minimize(const FuzzInput& crashing,
                          const std::string& bug_id,
                          uint64_t max_probes = 4096);

 private:
  bool StillTriggers(const FuzzInput& input, const std::string& bug_id,
                     uint64_t max_probes);

  BugProbe probe_;
  uint64_t probes_ = 0;
};

size_t CountNonZero(const FuzzInput& input);

}  // namespace neco

#endif  // SRC_CORE_REPRO_MINIMIZER_H_
