#include "src/core/repro/crash_store.h"

#include <fstream>

namespace neco {
namespace {

std::string SanitizeId(const std::string& id) {
  std::string out;
  for (char c : id) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
            c == '_')
               ? c
               : '_';
  }
  return out.empty() ? "unknown" : out;
}

}  // namespace

CrashStore::CrashStore(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  if (!directory_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
  }
}

bool CrashStore::Known(const std::string& bug_id) const {
  for (const CrashRecord& record : records_) {
    if (record.report.bug_id == bug_id) {
      return true;
    }
  }
  return false;
}

std::filesystem::path CrashStore::InputPath(size_t seq,
                                            const std::string& id) const {
  return directory_ /
         (std::to_string(seq) + "-" + SanitizeId(id) + ".input");
}

std::filesystem::path CrashStore::ReportPath(size_t seq,
                                             const std::string& id) const {
  return directory_ /
         (std::to_string(seq) + "-" + SanitizeId(id) + ".report");
}

bool CrashStore::Save(const CrashRecord& record) {
  if (Known(record.report.bug_id)) {
    return false;
  }
  const size_t seq = records_.size();
  records_.push_back(record);
  if (directory_.empty()) {
    return true;
  }
  {
    std::ofstream input(InputPath(seq, record.report.bug_id),
                        std::ios::binary);
    input.write(reinterpret_cast<const char*>(record.input.data()),
                static_cast<std::streamsize>(record.input.size()));
  }
  {
    std::ofstream report(ReportPath(seq, record.report.bug_id));
    report << "bug_id:     " << record.report.bug_id << "\n"
           << "detection:  " << AnomalyKindName(record.report.kind) << "\n"
           << "hypervisor: " << record.hypervisor << "\n"
           << "arch:       " << record.arch << "\n"
           << "iteration:  " << record.iteration << "\n"
           << "message:    " << record.report.message << "\n";
  }
  return true;
}

std::optional<FuzzInput> CrashStore::LoadInput(size_t seq) const {
  if (seq >= records_.size() || directory_.empty()) {
    return std::nullopt;
  }
  std::ifstream input(InputPath(seq, records_[seq].report.bug_id),
                      std::ios::binary);
  if (!input) {
    return std::nullopt;
  }
  FuzzInput data((std::istreambuf_iterator<char>(input)),
                 std::istreambuf_iterator<char>());
  return data;
}

}  // namespace neco
