#include "src/core/repro/crash_store.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/core/state/commit.h"
#include "src/core/wire.h"

namespace neco {
namespace {

std::string SanitizeId(const std::string& id) {
  std::string out;
  for (char c : id) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
            c == '_')
               ? c
               : '_';
  }
  return out.empty() ? "unknown" : out;
}

std::string RenderReport(const CrashRecord& record) {
  std::ostringstream text;
  text << "bug_id:     " << record.report.bug_id << "\n"
       << "detection:  " << AnomalyKindName(record.report.kind) << "\n"
       << "hypervisor: " << record.hypervisor << "\n"
       << "arch:       " << record.arch << "\n"
       << "iteration:  " << record.iteration << "\n"
       << "message:    " << record.report.message << "\n";
  return text.str();
}

}  // namespace

CrashStore::CrashStore(std::filesystem::path directory,
                       std::optional<uint64_t> expected_records)
    : directory_(std::move(directory)) {
  if (!directory_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    // A manifest-backed caller knows the committed artifact count; zero
    // means the scan would find nothing load-bearing, so skip it instead
    // of walking the directory on every fresh-campaign open.
    if (!expected_records.has_value() || *expected_records != 0) {
      const auto start = std::chrono::steady_clock::now();
      Reload(expected_records);
      reload_ns_ = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    }
  }
}

void CrashStore::Reload(std::optional<uint64_t> expected_records) {
  struct Loaded {
    uint64_t seq;
    CrashRecord record;
  };
  std::vector<Loaded> loaded;
  if (expected_records.has_value()) {
    loaded.reserve(static_cast<size_t>(*expected_records));
  }
  std::error_code ec;
  for (std::filesystem::directory_iterator it(directory_, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->path().extension() != ".record") {
      continue;
    }
    // Only a fully committed record decodes: the strict wire codec
    // rejects anything truncated or damaged, and the atomic-rename
    // protocol means a half-written record never carries this name.
    std::vector<uint8_t> bytes;
    CrashArtifactRecord artifact;
    if (!ReadFileBytes(it->path(), &bytes) ||
        !wire::Decode(bytes.data(), bytes.size(), &artifact)) {
      continue;
    }
    CrashRecord record;
    record.report = artifact.report;
    record.input = std::move(artifact.input);
    record.hypervisor = std::move(artifact.hypervisor);
    record.arch = std::move(artifact.arch);
    record.iteration = artifact.iteration;
    loaded.push_back({artifact.seq, std::move(record)});
  }
  std::sort(loaded.begin(), loaded.end(),
            [](const Loaded& a, const Loaded& b) { return a.seq < b.seq; });
  records_.reserve(loaded.size());
  seqs_.reserve(loaded.size());
  known_ids_.reserve(loaded.size());
  for (Loaded& entry : loaded) {
    if (!known_ids_.insert(entry.record.report.bug_id).second) {
      continue;  // A duplicate id can only be operator-planted; first wins.
    }
    next_seq_ = std::max(next_seq_, entry.seq + 1);
    seqs_.push_back(entry.seq);
    records_.push_back(std::move(entry.record));
  }
}

std::filesystem::path CrashStore::PathFor(uint64_t seq, const std::string& id,
                                          const char* extension) const {
  return directory_ /
         (std::to_string(seq) + "-" + SanitizeId(id) + extension);
}

bool CrashStore::Save(const CrashRecord& record) {
  if (Known(record.report.bug_id)) {
    return false;
  }
  const uint64_t seq = next_seq_;
  if (!directory_.empty()) {
    std::string error;
    // Derived files first, the authoritative .record last: its rename is
    // the commit point, so a kill between any two writes leaves orphans
    // that the next Reload() ignores — never a torn pair behind a
    // committed marker.
    const std::string& id = record.report.bug_id;
    if (!AtomicWriteFile(PathFor(seq, id, ".input"), record.input.data(),
                         record.input.size(), &error)) {
      throw std::runtime_error("CrashStore: " + error);
    }
    const std::string report = RenderReport(record);
    if (!AtomicWriteFile(PathFor(seq, id, ".report"),
                         reinterpret_cast<const uint8_t*>(report.data()),
                         report.size(), &error)) {
      throw std::runtime_error("CrashStore: " + error);
    }
    CrashArtifactRecord artifact;
    artifact.seq = seq;
    artifact.report = record.report;
    artifact.hypervisor = record.hypervisor;
    artifact.arch = record.arch;
    artifact.iteration = record.iteration;
    artifact.input = record.input;
    const wire::Buffer frame = wire::Encode(artifact);
    if (!AtomicWriteFile(PathFor(seq, id, ".record"), frame.data(),
                         frame.size(), &error)) {
      throw std::runtime_error("CrashStore: " + error);
    }
  }
  ++next_seq_;
  seqs_.push_back(seq);
  records_.push_back(record);
  known_ids_.insert(record.report.bug_id);
  return true;
}

std::optional<FuzzInput> CrashStore::LoadInput(size_t index) const {
  if (index >= records_.size() || directory_.empty()) {
    return std::nullopt;
  }
  std::ifstream input(
      PathFor(seqs_[index], records_[index].report.bug_id, ".input"),
      std::ios::binary);
  if (!input) {
    return std::nullopt;
  }
  FuzzInput data((std::istreambuf_iterator<char>(input)),
                 std::istreambuf_iterator<char>());
  return data;
}

}  // namespace neco
