#include "src/core/merge_pipeline.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "src/core/engine.h"
#include "src/core/state/journal.h"
#include "src/hv/coverage.h"

namespace neco {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// An epoch's observer events in barrier-era order: per worker the corpus
// sync first, then that worker's new findings; the coverage sample last.
// Collected during the fold (under state_mu_) and dispatched after it, so
// observer code never runs under a pipeline lock.
struct PendingEvents {
  std::vector<CorpusSyncEvent> syncs;      // At most one per worker.
  std::vector<FindingEvent> findings;
  std::vector<int> order;                  // 0 = next sync, 1 = next finding.
  SampleEvent sample;
};

}  // namespace

MergePipeline::MergePipeline(MergePipelineOptions options,
                             ShardTransport* transport,
                             std::vector<CampaignObserver*> observers)
    : options_(options),
      transport_(transport),
      observers_(std::move(observers)) {
  if (options_.workers < 1) {
    options_.workers = 1;
  }
  if (options_.merge_batch < 1) {
    options_.merge_batch = 1;
  }
  global_covered_.assign(options_.total_points, 0);
  cursors_.resize(static_cast<size_t>(options_.workers));
  if (options_.restore == nullptr) {
    return;
  }
  // Snapshot-seeded start: reinstate the merged state exactly as the fold
  // of epoch horizon-1 left it, cursors included, so the first live epoch
  // (the horizon) merges — and feeds back — bit-identically to the
  // uninterrupted run. No thread has the pipeline yet; the lock is taken
  // purely so the -Wthread-safety discipline holds without waivers.
  MutexLock lock(&state_mu_);
  const SnapshotMergedStateRecord& restore = *options_.restore;
  const size_t horizon = restore.epochs_covered;
  next_epoch_ = horizon;
  finalized_ = horizon;
  global_virgin_.ApplyDelta(restore.virgin);
  covered_count_ = CoverageUnit::ApplyDelta(restore.covered, global_covered_);
  for (const AnomalyReport& report : restore.findings) {
    global_findings_.emplace(report.bug_id, report);
  }
  // Pool entries below prior_pool_end were consumed by every cursor
  // before the snapshot, so placeholders keep the indices honest and the
  // bytes stay out of the snapshot.
  pool_.resize(restore.prior_pool_end);
  for (size_t i = 0; i < restore.pool_inputs.size(); ++i) {
    pool_.push_back({restore.pool_origins[i], restore.pool_inputs[i]});
  }
  const size_t samples = std::min(restore.series_iterations.size(),
                                  restore.series_percents.size());
  for (size_t i = 0; i < samples; ++i) {
    series_.push_back(
        {restore.series_iterations[i], restore.series_percents[i]});
  }
  total_iterations_ = restore.total_iterations;
  // Feedback entries below the horizon are placeholders no cursor can
  // reach; the horizon epoch's entry is live — it is what every worker's
  // first feedback request (for epoch horizon-1) drains.
  feedback_.resize(horizon);
  if (horizon > 0) {
    feedback_[horizon - 1].virgin = restore.feedback_virgin;
    feedback_[horizon - 1].pool_end = restore.pool_end;
  }
  for (WorkerCursor& cursor : cursors_) {
    cursor.pool = restore.prior_pool_end;
    cursor.epoch = horizon == 0 ? 0 : horizon - 1;
  }
}

// Note on memory: the transport bounds *encoded* deltas in flight, but the
// drainer must pop whatever is at the head, so when shards skew (only
// possible without feedback coupling) the decoded staging map can grow to
// O(workers × epochs) deltas — fine while epochs ≈ samples (tens), and a
// delta shrinks with coverage saturation anyway. Multi-machine transports
// with long campaigns should add per-worker admission (e.g. credit-based
// publishing) before building on this.
void MergePipeline::Stage(std::unique_ptr<ShardDelta> delta,
                          wire::Buffer raw) {
  if (delta->worker < 0 || delta->worker >= options_.workers ||
      delta->epoch >= options_.epochs || delta->epoch < next_epoch_) {
    throw std::runtime_error("MergePipeline: delta for impossible shard " +
                             std::to_string(delta->worker) + " / epoch " +
                             std::to_string(delta->epoch));
  }
  std::vector<StagedDelta>& slots = staged_[delta->epoch];
  slots.resize(static_cast<size_t>(options_.workers));
  StagedDelta& slot = slots[static_cast<size_t>(delta->worker)];
  if (slot.delta != nullptr) {
    throw std::runtime_error("MergePipeline: duplicate delta from shard " +
                             std::to_string(delta->worker));
  }
  slot.delta = std::move(delta);
  slot.raw = std::move(raw);
}

void MergePipeline::StageWorkerState(
    std::unique_ptr<WorkerStateRecord> record) {
  const size_t horizon = record->epochs_covered;
  const size_t epoch = horizon == 0 ? 0 : horizon - 1;
  if (record->worker < 0 || record->worker >= options_.workers ||
      horizon == 0 || epoch < next_epoch_ || epoch >= options_.epochs ||
      !SnapshotEpoch(epoch)) {
    throw std::runtime_error(
        "MergePipeline: worker state for impossible shard " +
        std::to_string(record->worker) + " / horizon " +
        std::to_string(horizon));
  }
  std::vector<std::unique_ptr<WorkerStateRecord>>& slots =
      staged_states_[epoch];
  slots.resize(static_cast<size_t>(options_.workers));
  std::unique_ptr<WorkerStateRecord>& slot =
      slots[static_cast<size_t>(record->worker)];
  if (slot != nullptr) {
    throw std::runtime_error(
        "MergePipeline: duplicate worker state from shard " +
        std::to_string(record->worker));
  }
  slot = std::move(record);
}

void MergePipeline::FoldReadyEpochs() {
  while (true) {
    const auto it = staged_.find(next_epoch_);
    if (it == staged_.end()) {
      return;
    }
    std::vector<StagedDelta>& deltas = it->second;
    if (std::any_of(deltas.begin(), deltas.end(),
                    [](const StagedDelta& d) { return d.delta == nullptr; })) {
      return;
    }
    const size_t epoch = next_epoch_;
    // A replayed epoch was committed by a previous incarnation: the fold
    // still advances every byte of merged state (that IS the resume), but
    // its events were already delivered before the original commit's
    // OnSample returned, so they are suppressed here.
    const bool replay = epoch < options_.resume_epochs;

    PendingEvents events;
    // Journal mode: the epoch's new crash artifacts, in fold order, and
    // the commit trailer's merged-state summary — both assembled under
    // the lock, persisted after it (fsync must not block WaitForFeedback).
    std::vector<CrashRecord> crashes;
    EpochCommitRecord summary;
    const bool snapshot_now =
        options_.journal != nullptr && !replay && SnapshotEpoch(epoch);
    CampaignSnapshot snapshot;
    {
      MutexLock lock(&state_mu_);
      EpochFeedback fb;
      // The barrier accumulated the epoch's iteration total before
      // merging any shard, so the sample reflects every worker.
      for (const StagedDelta& staged : deltas) {
        total_iterations_ += staged.delta->iterations;
      }
      for (StagedDelta& staged : deltas) {
        ShardDelta& delta = *staged.delta;
        const int w = delta.worker;
        if (!delta.queue_entries.empty() || delta.imported != 0) {
          events.syncs.push_back(
              {epoch, w, static_cast<uint64_t>(delta.queue_entries.size()),
               delta.imported});
          events.order.push_back(0);
        }
        for (FuzzInput& input : delta.queue_entries) {
          pool_.push_back({w, std::move(input)});
        }
        for (size_t i = 0; i < delta.virgin.size(); ++i) {
          const uint32_t cell = delta.virgin.cells[i];
          const uint8_t grown =
              global_virgin_.OrCell(cell, delta.virgin.bits[i]);
          if (grown != 0) {
            fb.virgin.Append(cell, grown);
          }
        }
        covered_count_ +=
            CoverageUnit::ApplyDelta(delta.covered_points, global_covered_);
        for (AnomalyReport& report : delta.findings) {
          if (global_findings_.emplace(report.bug_id, report).second) {
            events.findings.push_back({epoch, w, std::move(report)});
            events.order.push_back(1);
          }
        }
        if (options_.journal != nullptr) {
          // A crash's finding report always rides the same delta (both
          // diff against per-shard "already shipped" state at the same
          // boundary), so the global map has the report by now.
          const size_t crash_count =
              std::min(delta.crash_ids.size(), delta.crash_inputs.size());
          for (size_t i = 0; i < crash_count; ++i) {
            const std::string& id = delta.crash_ids[i];
            if (options_.journal->crash_store().Known(id)) {
              continue;  // Persisted by an earlier epoch (or incarnation).
            }
            CrashRecord record;
            const auto found = global_findings_.find(id);
            record.report = found != global_findings_.end()
                                ? found->second
                                : AnomalyReport{AnomalyKind::kAssertion, id,
                                                std::string()};
            record.input = std::move(delta.crash_inputs[i]);
            record.hypervisor = options_.hypervisor;
            record.arch = options_.arch;
            record.iteration = total_iterations_;
            crashes.push_back(std::move(record));
          }
        }
      }
      const double percent =
          options_.total_points == 0
              ? 0.0
              : 100.0 * static_cast<double>(covered_count_) /
                    static_cast<double>(options_.total_points);
      series_.push_back({total_iterations_, percent});
      events.sample = {epoch, total_iterations_, percent, covered_count_};
      fb.pool_end = pool_.size();
      summary.iterations = total_iterations_;
      summary.covered_points = covered_count_;
      summary.pool_end = fb.pool_end;
      summary.findings = global_findings_.size();
      summary.percent = percent;
      feedback_.push_back(std::move(fb));
      finalized_ = epoch + 1;
      if (snapshot_now) {
        // Materialize the merged half of the snapshot exactly as the fold
        // just left it — including the feedback entry and pool boundary a
        // restored incarnation's first feedback request will drain.
        snapshot.epochs_covered = epoch + 1;
        SnapshotMergedStateRecord& merged = snapshot.merged;
        merged.epochs_covered = epoch + 1;
        CoverageBitmap empty;
        merged.virgin = global_virgin_.ExtractDeltaSince(empty);
        for (size_t point = 0; point < global_covered_.size(); ++point) {
          if (global_covered_[point] != 0) {
            merged.covered.push_back(static_cast<uint32_t>(point));
          }
        }
        for (const auto& [id, report] : global_findings_) {
          merged.findings.push_back(report);
        }
        merged.prior_pool_end = epoch == 0 ? 0 : feedback_[epoch - 1].pool_end;
        merged.pool_end = feedback_[epoch].pool_end;
        for (size_t i = merged.prior_pool_end; i < merged.pool_end; ++i) {
          merged.pool_origins.push_back(pool_[i].origin);
          merged.pool_inputs.push_back(pool_[i].input);
        }
        for (const CoverageSample& sample : series_) {
          merged.series_iterations.push_back(sample.iteration);
          merged.series_percents.push_back(sample.percent);
        }
        merged.total_iterations = total_iterations_;
        merged.feedback_virgin = feedback_[epoch].virgin;
      }
      feedback_cv_.NotifyAll();
    }

    if (options_.journal != nullptr) {
      std::vector<wire::Buffer> frames;
      frames.reserve(deltas.size());
      for (StagedDelta& staged : deltas) {
        frames.push_back(std::move(staged.raw));
      }
      // Crash artifacts first: each save is its own idempotent commit
      // (dedup by bug id), so a kill between a crash and its epoch
      // recommits the epoch — and re-saves nothing — on resume. During
      // replay the saves self-heal a store the artifacts never reached.
      for (const CrashRecord& record : crashes) {
        options_.journal->SaveCrashArtifact(record);
      }
      if (replay) {
        options_.journal->VerifyEpoch(epoch, frames);
      } else {
        summary.crash_artifacts =
            options_.journal->crash_store().records().size();
        if (snapshot_now) {
          // Per-worker FIFO framing guarantees each worker's state frame
          // preceded its delta, so a foldable snapshot epoch has every
          // state staged; a gap means a shard skipped its contract.
          const auto states = staged_states_.find(epoch);
          if (states == staged_states_.end() ||
              std::any_of(states->second.begin(), states->second.end(),
                          [](const std::unique_ptr<WorkerStateRecord>& s) {
                            return s == nullptr;
                          })) {
            throw std::runtime_error(
                "MergePipeline: missing worker state for snapshot epoch " +
                std::to_string(epoch));
          }
          snapshot.workers.reserve(states->second.size());
          for (std::unique_ptr<WorkerStateRecord>& state : states->second) {
            snapshot.workers.push_back(std::move(*state));
          }
        }
        // Durability before visibility: the epoch is committed before any
        // of its events fire, so everything an observer ever saw survives
        // kill -9 — the resumed stream continues exactly where this one
        // stopped.
        options_.journal->CommitEpoch(epoch, frames, summary,
                                      snapshot_now ? &snapshot : nullptr);
      }
    }

    if (!replay) {
      size_t next_sync = 0;
      size_t next_finding = 0;
      for (int kind : events.order) {
        if (kind == 0) {
          const CorpusSyncEvent& event = events.syncs[next_sync++];
          Notify([&](CampaignObserver* obs) { obs->OnCorpusSync(event); });
        } else {
          const FindingEvent& event = events.findings[next_finding++];
          Notify([&](CampaignObserver* obs) { obs->OnFinding(event); });
        }
      }
      Notify([&](CampaignObserver* obs) { obs->OnSample(events.sample); });
    }

    // Process shards cannot reach WaitForFeedback, so the drainer pushes
    // each epoch's feedback through the transport instead — same cursors,
    // same content, replayed epochs included (the children re-execute
    // them too). The final epoch's feedback has no consumer (shards read
    // feedback *before* an epoch, and there is no next epoch).
    if (options_.push_feedback && epoch + 1 < options_.epochs) {
      PushEpochFeedback(epoch);
    }

    // Replayed snapshot epochs discard their staged states here (the
    // journal already holds that snapshot); committed ones were consumed.
    staged_states_.erase(epoch);
    staged_.erase(it);
    ++next_epoch_;
  }
}

void MergePipeline::PushEpochFeedback(size_t epoch) {
  for (int w = 0; w < options_.workers; ++w) {
    FeedbackRecord record;
    record.epoch = epoch;
    record.worker = w;
    Feedback feedback;
    {
      MutexLock lock(&state_mu_);
      BuildFeedbackLocked(epoch, w, &feedback);
    }
    record.pool_entries = std::move(feedback.pool_entries);
    record.virgin = std::move(feedback.virgin);
    if (!transport_->SendFeedback(w, wire::Encode(record))) {
      throw std::runtime_error("MergePipeline: " + transport_->error());
    }
  }
}

void MergePipeline::RunMergeLoop() {
  // Snapshot-seeded process campaign: the original incarnation pushed the
  // horizon epoch's feedback right after folding it, and the restored
  // children (which start AT the horizon) will block reading it — so
  // re-push it from the restored cursors before draining anything. The
  // cursors advance exactly as they did originally, keeping every later
  // feedback bit-identical.
  if (options_.push_feedback && options_.restore != nullptr &&
      next_epoch_ > 0 && next_epoch_ < options_.epochs) {
    PushEpochFeedback(next_epoch_ - 1);
  }
  std::vector<wire::Buffer> batch;
  while (next_epoch_ < options_.epochs) {
    if (!transport_->Drain(static_cast<size_t>(options_.merge_batch),
                           &batch)) {
      const std::string error = transport_->error();
      if (!error.empty()) {
        // A shard died mid-campaign (or the stream corrupted): fail loudly
        // rather than leaving the campaign waiting for an epoch that can
        // never complete.
        throw std::runtime_error("MergePipeline: " + error);
      }
      return;  // Aborted.
    }
    {
      MutexLock lock(&state_mu_);
      ++stats_.flushes;
    }
    for (wire::Buffer& buffer : batch) {
      wire::RecordType type = wire::RecordType::kShardDelta;
      wire::PeekType(buffer.data(), buffer.size(), &type);
      if (type == wire::RecordType::kWorkerState) {
        // A worker's full-state frame for its snapshot epoch, published
        // right before that epoch's delta. Never journaled as part of the
        // epoch file — it lands in the snapshot file instead.
        auto state = std::make_unique<WorkerStateRecord>();
        if (!wire::Decode(buffer, state.get())) {
          throw std::runtime_error(
              "MergePipeline: corrupt WorkerStateRecord on the merge queue");
        }
        StageWorkerState(std::move(state));
        continue;
      }
      auto delta = std::make_unique<ShardDelta>();
      if (!wire::Decode(buffer, delta.get())) {
        throw std::runtime_error(
            "MergePipeline: corrupt ShardDelta on the merge queue");
      }
      // Journal mode keeps the exact frame bytes: they are the unit of
      // commit (and of replay verification).
      Stage(std::move(delta), options_.journal != nullptr
                                  ? std::move(buffer)
                                  : wire::Buffer());
    }
    FoldReadyEpochs();
  }
}

void MergePipeline::BuildFeedbackLocked(size_t through_epoch, int worker,
                                        Feedback* out) {
  out->pool_entries.clear();
  out->virgin = {};
  WorkerCursor& cursor = cursors_[static_cast<size_t>(worker)];
  // The pool boundary recorded at `through_epoch` keeps the answer
  // identical however far ahead the drainer has folded by now.
  const size_t pool_end = feedback_[through_epoch].pool_end;
  // Upper bound (the worker's own entries are filtered out below); one
  // allocation instead of growth doubling across a large catch-up span.
  out->pool_entries.reserve(pool_end - cursor.pool);
  for (size_t i = cursor.pool; i < pool_end; ++i) {
    if (pool_[i].origin != worker) {
      out->pool_entries.push_back(pool_[i].input);
    }
  }
  cursor.pool = pool_end;
  for (size_t epoch = cursor.epoch; epoch <= through_epoch; ++epoch) {
    out->virgin.Append(feedback_[epoch].virgin);
  }
  cursor.epoch = through_epoch + 1;
}

bool MergePipeline::WaitForFeedback(size_t through_epoch, int worker,
                                    Feedback* out) {
  out->pool_entries.clear();
  out->virgin = {};
  MutexLock lock(&state_mu_);
  if (finalized_ <= through_epoch && !aborted_) {
    const auto start = Clock::now();
    while (finalized_ <= through_epoch && !aborted_) {
      feedback_cv_.Wait(state_mu_);
    }
    stats_.feedback_wait_seconds += SecondsSince(start);
  }
  if (aborted_) {
    return false;
  }
  BuildFeedbackLocked(through_epoch, worker, out);
  return true;
}

void MergePipeline::Abort() {
  aborted_ = true;
  transport_->Abort();
  {
    MutexLock lock(&state_mu_);
    feedback_cv_.NotifyAll();
  }
}

template <typename Fn>
void MergePipeline::Notify(Fn&& fn) {
  for (CampaignObserver* observer : observers_) {
    try {
      fn(observer);
    } catch (...) {
      MutexLock lock(&error_mu_);
      if (!observer_error_) {
        observer_error_ = std::current_exception();
      }
    }
  }
}

void MergePipeline::NotifyShardDone(const ShardDoneEvent& event) {
  Notify([&](CampaignObserver* obs) { obs->OnShardDone(event); });
}

void MergePipeline::NotifyFinish(const FinishEvent& event) {
  Notify([&](CampaignObserver* obs) { obs->OnFinish(event); });
}

std::exception_ptr MergePipeline::observer_error() const {
  MutexLock lock(&error_mu_);
  return observer_error_;
}

size_t MergePipeline::finalized_epochs() const {
  MutexLock lock(&state_mu_);
  return finalized_;
}

MergePipelineStats MergePipeline::stats() const {
  MutexLock lock(&state_mu_);
  return stats_;
}

// The merged-state accessors lock like every other reader. Before this
// they returned the members without state_mu_ — correct only because the
// engine calls them after joining the merge thread, but exactly the kind
// of by-convention discipline -Wthread-safety exists to replace.
const CoverageBitmap& MergePipeline::virgin() const {
  MutexLock lock(&state_mu_);
  return global_virgin_;
}

const std::vector<uint8_t>& MergePipeline::covered() const {
  MutexLock lock(&state_mu_);
  return global_covered_;
}

size_t MergePipeline::covered_points() const {
  MutexLock lock(&state_mu_);
  return covered_count_;
}

const std::map<std::string, AnomalyReport>& MergePipeline::findings() const {
  MutexLock lock(&state_mu_);
  return global_findings_;
}

const std::vector<CoverageSample>& MergePipeline::series() const {
  MutexLock lock(&state_mu_);
  return series_;
}

}  // namespace neco
