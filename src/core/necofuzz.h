// NecoFuzz umbrella header — the public API surface.
//
//   #include "src/core/necofuzz.h"
//
//   neco::CampaignOptions options;
//   options.arch = neco::Arch::kIntel;
//   options.iterations = 20000;
//   options.workers = 4;  // 1 = serial; N shards merge deterministically.
//   neco::CampaignEngine engine("kvm", options);  // registry name,
//                                                 // factory, or instance
//   engine.AddObserver(&my_observer);  // optional CampaignObserver stream
//   const neco::EngineResult result = engine.Run();
//   // result.merged.final_percent, result.merged.findings, ...
//
// Shards merge through the delta pipeline (src/core/merge_pipeline.h),
// whose records are wire-serializable (src/core/wire.h) and travel a
// pluggable ShardTransport (src/core/transport/): thread shards over the
// in-proc queue, or — options.shard_mode = ShardMode::kProcesses —
// fork/exec'd child processes over pipes, with identical results. See
// README.md for the architecture overview and examples/ for runnable
// programs.
#ifndef SRC_CORE_NECOFUZZ_H_
#define SRC_CORE_NECOFUZZ_H_

#include "src/core/agent.h"                      // IWYU pragma: export
#include "src/core/campaign.h"                   // IWYU pragma: export
#include "src/core/config/configurator.h"        // IWYU pragma: export
#include "src/core/engine.h"                     // IWYU pragma: export
#include "src/core/harness/harness.h"            // IWYU pragma: export
#include "src/core/merge_pipeline.h"             // IWYU pragma: export
#include "src/core/repro/crash_store.h"          // IWYU pragma: export
#include "src/core/state/commit.h"               // IWYU pragma: export
#include "src/core/state/journal.h"              // IWYU pragma: export
#include "src/core/transport/inproc.h"           // IWYU pragma: export
#include "src/core/transport/pipe.h"             // IWYU pragma: export
#include "src/core/transport/socket.h"           // IWYU pragma: export
#include "src/core/transport/supervisor.h"       // IWYU pragma: export
#include "src/core/transport/transport.h"        // IWYU pragma: export
#include "src/core/validator/oracle.h"           // IWYU pragma: export
#include "src/core/wire.h"                       // IWYU pragma: export
#include "src/core/validator/vmcb_validator.h"   // IWYU pragma: export
#include "src/core/validator/vmcs_validator.h"   // IWYU pragma: export
#include "src/hv/sim_kvm/kvm.h"                  // IWYU pragma: export
#include "src/hv/sim_vbox/vbox.h"                // IWYU pragma: export
#include "src/hv/sim_xen/xen.h"                  // IWYU pragma: export

#endif  // SRC_CORE_NECOFUZZ_H_
