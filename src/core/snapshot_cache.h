// Config-keyed throughput caches for the execution core.
//
// Two layers sit in front of the per-exec StartVm cost (paper Section 4.5's
// module reload + VM boot):
//
//   ConfiguratorMemo  — maps the raw 128-byte configurator input slice to
//                       the VcpuConfig it generates, so identical config
//                       bytes skip VcpuConfigurator::Generate entirely.
//   SnapshotCache     — bounded LRU of post-boot VmSnapshots keyed by a
//                       VcpuConfig fingerprint; a hit replaces module
//                       reload + boot with Hypervisor::RestoreVm.
//
// Both are pure accelerations: a hit must be observationally identical to
// the miss path (the snapshot equivalence tests pin this), so campaign
// results are invariant to cache capacity, including capacity 0.
#ifndef SRC_CORE_SNAPSHOT_CACHE_H_
#define SRC_CORE_SNAPSHOT_CACHE_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "src/core/partition.h"
#include "src/hv/snapshot.h"
#include "src/hv/vcpu_config.h"

namespace neco {

// FNV-1a over the semantic VcpuConfig fields. Configs that compare equal
// field-for-field fingerprint equal; the 64-bit space makes accidental
// collisions across a campaign's config diversity negligible.
inline uint64_t FingerprintConfig(const VcpuConfig& config) {
  uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<uint64_t>(config.arch));
  mix(config.features.raw());
  mix(config.vcpus);
  mix(config.memory_mb);
  return h;
}

// Bounded LRU cache of post-boot VM snapshots. Capacity 0 disables the
// cache (Get always misses, Put is a no-op).
class SnapshotCache {
 public:
  explicit SnapshotCache(size_t capacity) : capacity_(capacity) {}

  // Returns the cached snapshot for the key (marking it most recently
  // used), or nullptr. The pointer is invalidated by the next Put.
  const VmSnapshot* Get(uint64_t key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return nullptr;
    }
    entries_.splice(entries_.begin(), entries_, it->second);
    return &entries_.front().second;
  }

  void Put(uint64_t key, VmSnapshot snapshot) {
    if (capacity_ == 0) {
      return;
    }
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(snapshot);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    if (entries_.size() >= capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
    }
    entries_.emplace_front(key, std::move(snapshot));
    index_.emplace(key, entries_.begin());
  }

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<uint64_t, VmSnapshot>;

  size_t capacity_;
  std::list<Entry> entries_;  // Most recently used at the front.
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
};

// Direct-mapped memo from the raw configurator input slice to the
// VcpuConfig it generates. The key is the full 128-byte slice (not just
// the bytes Generate consumes), which is conservative: different bytes in
// the unread tail force a miss but can never alias two distinct configs.
// One memo serves one agent, whose target arch is fixed for its lifetime,
// so arch is not part of the key.
class ConfiguratorMemo {
 public:
  using Key = std::array<uint8_t, InputPartition::kConfigSize>;

  // Extracts the memo key from a fuzz input. False when the input is too
  // short to carry a full config slice (ByteReader then wraps over a
  // shorter slice, which the fixed-width key cannot represent) — callers
  // must fall back to Generate.
  static bool MakeKey(const FuzzInput& input, Key* key) {
    if (input.size() < InputPartition::kConfigOffset + key->size()) {
      return false;
    }
    std::copy_n(input.data() + InputPartition::kConfigOffset, key->size(),
                key->begin());
    return true;
  }

  // Returns the memoized config for the key, or nullptr on miss.
  const VcpuConfig* Lookup(const Key& key) const {
    const Slot& slot = slots_[SlotIndex(key)];
    if (!slot.valid || slot.key != key) {
      return nullptr;
    }
    return &slot.config;
  }

  void Insert(const Key& key, const VcpuConfig& config) {
    Slot& slot = slots_[SlotIndex(key)];
    slot.valid = true;
    slot.key = key;
    slot.config = config;
  }

 private:
  struct Slot {
    bool valid = false;
    Key key{};
    VcpuConfig config;
  };

  static size_t SlotIndex(const Key& key) {
    uint64_t h = 1469598103934665603ULL;
    for (uint8_t b : key) {
      h ^= b;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h % kSlots);
  }

  static constexpr size_t kSlots = 256;

  std::array<Slot, kSlots> slots_;
};

}  // namespace neco

#endif  // SRC_CORE_SNAPSHOT_CACHE_H_
