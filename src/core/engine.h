// CampaignEngine — the unified session API for fuzzing campaigns.
//
// One object covers what used to be split across RunCampaign (serial) and
// RunParallelCampaign (sharded): a session is constructed from a target —
// a registry name ("kvm"), an explicit HypervisorFactory, or a borrowed
// Hypervisor instance — configured with CampaignOptions, optionally wired
// to observers, and driven by Run(). Run() dispatches to one shard inline
// or options.workers worker threads; `workers = 1` reproduces the
// pre-engine serial RunCampaign schedule bit for bit (same fuzzer seed,
// same chunking, same merge math), so serial and sharded campaigns are the
// same code path at different widths.
//
// Sharded execution keeps the PR 1 design: every worker owns a private
// Hypervisor/Agent/Fuzzer (coverage units are not thread-safe), shards run
// in lock-step epochs, and at each epoch boundary exactly one thread
// merges shard states — virgin bitmaps, covered sets, deduplicated
// findings — into the global view and exchanges corpus entries.
//
// Observers stream the campaign instead of waiting for the final blob.
// Every event is a plain serializable record, and delivery is
// deterministic and merge-ordered: events fire only inside the
// single-threaded epoch merge (worker-id order within an epoch) and the
// final assembly, so two runs with identical (options, target) produce
// identical event sequences. This is the seam the ROADMAP's batched-merge,
// process-sharding, and async-executor items plug into — a process-level
// shard only has to ship these records over a pipe. Note: with workers > 1
// the merge step runs on whichever worker thread arrives last, so observer
// callbacks must not assume a particular thread (they are never called
// concurrently).
#ifndef SRC_CORE_ENGINE_H_
#define SRC_CORE_ENGINE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/core/campaign.h"
#include "src/hv/factory.h"

namespace neco {

// --- Event records -------------------------------------------------------

// One merged coverage sample (epoch boundary) — the streaming form of
// CampaignResult::series.
struct SampleEvent {
  size_t epoch = 0;        // 0-based merge epoch.
  uint64_t iteration = 0;  // Campaign-wide iterations completed.
  double percent = 0.0;    // Merged coverage after this epoch.
  size_t covered_points = 0;
};

// A finding entered the global deduplicated set for the first time.
struct FindingEvent {
  size_t epoch = 0;
  int worker = 0;  // Shard whose report won the (deterministic) merge.
  AnomalyReport report;
};

// One shard's corpus exchange at an epoch boundary. `published` counts
// queue entries pushed to the shared pool at this merge; `imported` counts
// pool entries the shard adopted since the previous merge.
struct CorpusSyncEvent {
  size_t epoch = 0;
  int worker = 0;
  uint64_t published = 0;
  uint64_t imported = 0;
};

// A shard finished its budget (fired per worker, in worker-id order).
struct ShardDoneEvent {
  int worker = 0;
  uint64_t iterations = 0;
  double final_percent = 0.0;
  size_t covered_points = 0;
  uint64_t queue_size = 0;
  size_t findings = 0;
  uint64_t corpus_imports = 0;
  uint64_t watchdog_restarts = 0;
};

// The campaign completed; the merged summary.
struct FinishEvent {
  int workers = 1;
  size_t epochs = 0;
  uint64_t iterations = 0;
  double final_percent = 0.0;
  size_t covered_points = 0;
  size_t total_points = 0;
  size_t findings = 0;
  uint64_t corpus_imports = 0;
};

// --- Observer ------------------------------------------------------------

// Default-no-op interface; override the events you care about. Observers
// are borrowed (caller keeps ownership) and must stay alive across Run().
// Callbacks run inside the barrier completion step and must not throw: an
// escaping exception would leave worker threads parked at the barrier
// (and, with workers > 1, terminate the process via the std::thread entry
// function). Record failures and surface them after Run() instead.
class CampaignObserver {
 public:
  virtual ~CampaignObserver() = default;
  virtual void OnSample(const SampleEvent& event) {}
  virtual void OnFinding(const FindingEvent& event) {}
  virtual void OnCorpusSync(const CorpusSyncEvent& event) {}
  virtual void OnShardDone(const ShardDoneEvent& event) {}
  virtual void OnFinish(const FinishEvent& event) {}
};

// --- Results -------------------------------------------------------------

struct EngineResult {
  // The global merged view, shaped exactly like a serial CampaignResult.
  // With workers == 1 it reproduces the pre-engine RunCampaign bit for bit.
  CampaignResult merged;
  // Each shard's own final state (per-worker coverage is a subset of the
  // merged coverage).
  std::vector<CampaignResult> per_worker;
  // Queue entries adopted across shards over the whole campaign.
  uint64_t corpus_imports = 0;
};

// --- The session object --------------------------------------------------

class CampaignEngine {
 public:
  // By registry name. Throws std::invalid_argument for an unknown name,
  // listing the registered targets (see ResolveHypervisorFactory).
  explicit CampaignEngine(std::string_view target,
                          CampaignOptions options = {});

  // By explicit factory, for targets that are not (or cannot be)
  // registered — e.g. factories capturing per-run configuration.
  explicit CampaignEngine(HypervisorFactory factory,
                          CampaignOptions options = {});

  // Borrowed-target session: runs against an existing instance the caller
  // keeps alive and owns. A single instance cannot shard, so this mode
  // always runs one inline shard regardless of options.workers (the
  // historical RunCampaign contract).
  explicit CampaignEngine(Hypervisor& target, CampaignOptions options = {});

  // Registers a borrowed observer for subsequent Run() calls.
  CampaignEngine& AddObserver(CampaignObserver* observer);

  CampaignOptions& options() { return options_; }
  const CampaignOptions& options() const { return options_; }

  // Executes one full campaign with the current options. Coverage is reset
  // at the start, so repeated Run() calls are independent sessions.
  EngineResult Run();

 private:
  HypervisorFactory factory_;
  Hypervisor* borrowed_ = nullptr;
  CampaignOptions options_;
  std::vector<CampaignObserver*> observers_;
};

}  // namespace neco

#endif  // SRC_CORE_ENGINE_H_
