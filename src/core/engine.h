// CampaignEngine — the unified session API for fuzzing campaigns.
//
// A session is constructed from a target — a registry name ("kvm"), an
// explicit HypervisorFactory, or a borrowed Hypervisor instance —
// configured with CampaignOptions, optionally wired to observers, and
// driven by Run(). Run() shards the iteration budget across
// options.workers worker threads; `workers = 1` reproduces the historical
// serial campaign schedule bit for bit (same fuzzer seed, same chunking,
// same merge math), so serial and sharded campaigns are the same code
// path at different widths.
//
// Since PR 3 the merge path is a delta pipeline, not a lock-step barrier:
// every worker owns a private Hypervisor/Agent/Fuzzer (coverage units are
// not thread-safe) and, once per epoch, publishes a wire-encoded
// ShardDelta (src/core/wire.h) into a ShardTransport
// (src/core/transport/). A single merge loop (src/core/merge_pipeline.h)
// drains the transport, folds deltas into the global view in
// deterministic (epoch, worker) order, and fires observer events in that
// same merge-ordered sequence, concurrently with the shards' next epoch.
// CampaignOptions::merge_batch sets how many deltas a flush folds;
// results and event sequences are identical for every value (1 recovers
// the barrier-era cadence).
//
// CampaignOptions::shard_mode picks the transport:
//  * threads (default) — worker threads publish into the in-proc bounded
//    queue (backpressure when full; corpus-syncing workers pull feedback
//    straight from the pipeline);
//  * processes — the engine fork(/exec)s one child process per shard
//    (ShardSupervisor), children ship the same wire frames over pipes
//    (PipeTransport), and the drainer pushes per-epoch FeedbackRecords
//    back;
//  * sockets — the engine listens on a TCP port (SocketTransport) and
//    shard children dial in, handshake (hello -> config record), and
//    stream the same frames over the connection. The launcher is
//    pluggable: by default children are local subprocesses (fork, or exec
//    when shard_exec_path is set), while options.remote_launcher starts
//    them on other machines. Crash reproduction inputs come home in each
//    shard's ShardResultRecord, so nothing stays resident on a remote
//    box.
// The merge math never changes, so process and socket campaigns produce
// bit-identical EngineResults and observer event sequences to thread
// campaigns at the same worker count (pinned in tests/engine_test.cc).
// A shard that dies (even kill -9, even mid-socket) surfaces as a thrown
// shard error — recorded, never a hang.
//
// Observers stream the campaign instead of waiting for the final blob.
// Every event is a plain serializable wire record, and delivery is
// deterministic and merge-ordered: two runs with identical (options,
// target) produce identical event sequences.
// Events fire on the merge thread (final-assembly events on the calling
// thread), never concurrently. Observer exceptions cannot strand or kill
// the campaign: every callback is guarded, the first exception is
// recorded, and Run() rethrows it after all shards joined.
#ifndef SRC_CORE_ENGINE_H_
#define SRC_CORE_ENGINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/campaign.h"
#include "src/core/merge_pipeline.h"
#include "src/core/state/journal.h"
#include "src/core/transport/transport.h"
#include "src/core/wire.h"
#include "src/hv/factory.h"

namespace neco {

// --- Observer ------------------------------------------------------------

// Default-no-op interface; override the events you care about. Observers
// are borrowed (caller keeps ownership) and must stay alive across Run().
// The event records themselves live in src/core/wire.h, next to their
// serialized form. Callbacks run on the merge thread (ShardDone/Finish on
// the thread calling Run()) and are never invoked concurrently. A
// callback that throws does not terminate the process: the engine records
// the first exception, keeps the campaign (and other observers) running,
// and rethrows it from Run() after every shard joined.
class CampaignObserver {
 public:
  virtual ~CampaignObserver() = default;
  virtual void OnSample(const SampleEvent& event) {}
  virtual void OnFinding(const FindingEvent& event) {}
  virtual void OnCorpusSync(const CorpusSyncEvent& event) {}
  virtual void OnShardDone(const ShardDoneEvent& event) {}
  virtual void OnFinish(const FinishEvent& event) {}
};

// --- Results -------------------------------------------------------------

struct EngineResult {
  // The global merged view, shaped exactly like a serial CampaignResult.
  // With workers == 1 it reproduces the historical serial campaign bit
  // for bit.
  CampaignResult merged;
  // Each shard's own final state (per-worker coverage is a subset of the
  // merged coverage).
  std::vector<CampaignResult> per_worker;
  // Queue entries adopted across shards over the whole campaign.
  uint64_t corpus_imports = 0;
  // Per-worker crash reproduction: the (bug id, input) pairs each shard's
  // fuzzer saved, in discovery order. Thread shards read them off their
  // own fuzzer; process and socket shards ship them home inside their
  // ShardResultRecord — which is what makes a crash found on a remote
  // machine reproducible on the parent. Identical across shard modes.
  std::vector<std::vector<std::pair<std::string, FuzzInput>>> crashes;
  // Merge-loop counters (flushes, thread-shard feedback waits).
  MergePipelineStats pipeline;
  // Transport counters: bytes and queue depth through whichever
  // ShardTransport carried the campaign (the per-transport columns of
  // bench/parallel_scaling).
  TransportStats transport;
  // Durable-state counters (all zero without CampaignOptions::state_dir):
  // epochs committed and replayed, bytes fsync'd, crash artifacts
  // persisted. Like the pipeline/transport stats, wall-clock fields are
  // excluded from any determinism comparison.
  JournalStats journal;
};

// --- The session object --------------------------------------------------

class CampaignEngine {
 public:
  // By registry name. Throws std::invalid_argument for an unknown name,
  // listing the registered targets (see ResolveHypervisorFactory).
  explicit CampaignEngine(std::string_view target,
                          CampaignOptions options = {});

  // By explicit factory, for targets that are not (or cannot be)
  // registered — e.g. factories capturing per-run configuration.
  explicit CampaignEngine(HypervisorFactory factory,
                          CampaignOptions options = {});

  // Borrowed-target session: runs against an existing instance the caller
  // keeps alive and owns. A single instance cannot shard, so this mode
  // always runs one inline shard regardless of options.workers (the
  // historical serial-campaign contract).
  explicit CampaignEngine(Hypervisor& target, CampaignOptions options = {});

  // Registers a borrowed observer for subsequent Run() calls.
  CampaignEngine& AddObserver(CampaignObserver* observer);

  CampaignOptions& options() { return options_; }
  const CampaignOptions& options() const { return options_; }

  // Executes one full campaign with the current options. Coverage is reset
  // at the start, so repeated Run() calls are independent sessions.
  EngineResult Run();

 private:
  // `snapshot` is the materialized resume point loaded from the journal
  // (null for a fresh or snapshot-less campaign): shards seed their
  // private state from snapshot->workers and start at the horizon, the
  // pipeline seeds its merged state from snapshot->merged, and only the
  // tail past the horizon is replayed.
  EngineResult RunWithThreadShards(int workers, int samples,
                                   CampaignJournal* journal,
                                   CampaignSnapshot* snapshot);
  EngineResult RunWithProcessShards(int workers, int samples,
                                    CampaignJournal* journal,
                                    CampaignSnapshot* snapshot);

  HypervisorFactory factory_;
  Hypervisor* borrowed_ = nullptr;
  std::string target_name_;  // Set for by-name sessions; exec'd process
                             // shards rebuild the target from this.
  CampaignOptions options_;
  std::vector<CampaignObserver*> observers_;
};

// --- Hidden process-shard entrypoint -------------------------------------

// When argv carries --necofuzz-shard-child, the process is an exec'd shard
// child of a shard_mode = processes or sockets campaign. Pipe children
// (--necofuzz-delta-fd / --necofuzz-feedback-fd) read their
// ShardChildConfigRecord off the inherited feedback pipe; socket children
// (--necofuzz-connect=<address:port> --necofuzz-worker=<n>) dial the
// parent's listener, send a ShardHelloRecord, and receive the config over
// the connection — this is the invocation a RemoteLauncher issues on
// another machine. Either way the shard then runs (publishing ShardDelta
// frames, absorbing FeedbackRecords, finishing with a ShardResultRecord)
// and this returns the process exit code — the caller's main() must
// return it without doing anything else. Returns -1 for a normal
// invocation (no flag), in which case main() proceeds as usual.
//
//   int main(int argc, char** argv) {
//     if (const int code = neco::MaybeRunShardChild(argc, argv); code >= 0)
//       return code;
//     ...
//   }
//
// Binaries that never set CampaignOptions::shard_exec_path (fork-mode
// process sharding, the default) do not need this hook.
int MaybeRunShardChild(int argc, char** argv);

}  // namespace neco

#endif  // SRC_CORE_ENGINE_H_
