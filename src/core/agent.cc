#include "src/core/agent.h"

#include <chrono>

#include "src/core/partition.h"
#include "src/core/wire.h"

namespace neco {
namespace {

// Guards the snapshot cache against 64-bit fingerprint collisions: a hit
// is only taken when the cached snapshot's config matches field for field.
bool SameConfig(const VcpuConfig& a, const VcpuConfig& b) {
  return a.arch == b.arch && a.features.raw() == b.features.raw() &&
         a.vcpus == b.vcpus && a.memory_mb == b.memory_mb;
}

// MSR indices the agent plants in VM-entry MSR-load areas, weighted toward
// the address-typed MSRs whose canonicality handling differs across
// hypervisors (the CVE-2024-21106 surface).
constexpr uint32_t kAreaMsrPool[] = {
    Msr::kKernelGsBase, Msr::kFsBase, Msr::kGsBase,  Msr::kKernelGsBase,
    Msr::kIa32Efer,     Msr::kIa32Pat, Msr::kStar,   Msr::kIa32SysenterEip,
};

constexpr uint64_t kAreaValuePool[] = {
    0x8000000000000000ULL,  // Non-canonical (the CVE trigger).
    0xffff800000000000ULL,  // Canonical kernel-half.
    0x0000800000000000ULL,  // First non-canonical address.
    0,
    ~0ULL,
    Efer::kLme | Efer::kLma,
};

}  // namespace

Agent::Agent(Hypervisor& target, AgentOptions options)
    : target_(target),
      options_(options),
      adapter_(MakeAdapterFor(target.name())),
      harness_(HarnessOptions{.enabled = true}),
      fixed_harness_(HarnessOptions{.enabled = false}),
      vmx_validator_(MakeVmxCapabilities(
          DefaultFeatureSet(Arch::kIntel).RestrictedTo(Arch::kIntel))),
      svm_validator_(SvmCaps{}),
      vmx_oracle_(oracle_vmx_cpu_, vmx_validator_),
      svm_oracle_(oracle_svm_cpu_, svm_validator_),
      crash_store_(options.crash_dir),
      snapshot_cache_(options.snapshot_cache_size) {}

void Agent::PlantGuestMemory(const HarnessProgram& prog, const Vmcs* vmcs12,
                             ByteReader& msr_bytes) {
  GuestMemory& mem = target_.guest_memory();
  // VMCS-region revision headers.
  mem.Write32(prog.vmxon_pa, prog.region_revision);
  mem.Write32(prog.vmcs12_pa, prog.region_revision);

  if (vmcs12 == nullptr) {
    return;
  }
  // VM-entry MSR-load area content at the address the VMCS names.
  const uint64_t count = vmcs12->Read(VmcsField::kVmEntryMsrLoadCount);
  const uint64_t base = vmcs12->Read(VmcsField::kVmEntryMsrLoadAddr);
  for (uint64_t i = 0; i < count && i < 16; ++i) {
    MsrAreaEntry e;
    e.index = kAreaMsrPool[msr_bytes.Below(sizeof(kAreaMsrPool) / 4)];
    e.value = msr_bytes.Chance(1, 2)
                  ? kAreaValuePool[msr_bytes.Below(sizeof(kAreaValuePool) / 8)]
                  : msr_bytes.U64();
    WriteMsrAreaEntry(mem, base, i, e);
  }
  // Sprinkle intercept bits over the I/O and MSR bitmaps so bitmap-driven
  // exit decisions see both polarities.
  const uint64_t io_a = vmcs12->Read(VmcsField::kIoBitmapA);
  const uint64_t io_b = vmcs12->Read(VmcsField::kIoBitmapB);
  const uint64_t msr_bm = vmcs12->Read(VmcsField::kMsrBitmap);
  for (int i = 0; i < 8; ++i) {
    mem.SetBit(io_a, msr_bytes.U16() & 0x7fff, true);
    mem.SetBit(io_b, msr_bytes.U16() & 0x7fff, true);
    mem.SetBit(msr_bm, msr_bytes.U16() & 0x3fff, true);
  }
}

void Agent::RunIntel(const FuzzInput& input, const VcpuConfig& config,
                     InputPartition& parts) {
  Vmcs vmcs12;
  if (options_.use_validator) {
    vmx_validator_.set_caps(
        MakeVmxCapabilities(config.features.RestrictedTo(Arch::kIntel)));
    vmcs12 = vmx_validator_.GenerateBoundaryState(parts.vmcs_image,
                                                  parts.mutation);
    if (options_.oracle_interval != 0 &&
        stats_.executions % options_.oracle_interval == 0) {
      vmx_oracle_.VerifyOnce(vmcs12);
    }
  } else {
    // Validator disabled (Table 3 ablation): fall back to the golden-seed
    // strategy prior fuzzers use — a known-good VMCS with raw input values
    // poked into a handful of fields. No rounding, no boundary targeting.
    vmcs12 = MakeDefaultVmcs();
    const auto table = VmcsFieldTable();
    const size_t overwrites = 1 + parts.vmcs_image.Below(8);
    for (size_t i = 0; i < overwrites; ++i) {
      const VmcsFieldInfo& info = table[parts.vmcs_image.Below(table.size())];
      if (info.group != VmcsFieldGroup::kReadOnlyData) {
        vmcs12.Write(info.field, parts.vmcs_image.U64());
      }
    }
  }

  const ExecutionHarness& h = options_.use_harness ? harness_ : fixed_harness_;
  HarnessProgram prog = h.BuildIntel(parts.harness, vmcs12);
  PlantGuestMemory(prog, &vmcs12, parts.msr_area);

  // --- Initialization phase ---
  for (const VmxInsn& op : prog.vmx_init) {
    target_.HandleVmxInstruction(op);
    if (target_.host_crashed()) {
      return;
    }
  }

  // --- Runtime phase ---
  for (const RuntimeStep& step : prog.runtime) {
    if (target_.host_crashed()) {
      return;
    }
    if (target_.in_l2()) {
      const HandledBy hb =
          target_.HandleGuestInstruction(step.l2, GuestLevel::kL2);
      if (hb == HandledBy::kL1) {
        for (const GuestInsn& insn : step.l1_insns) {
          target_.HandleGuestInstruction(insn, GuestLevel::kL1);
        }
        for (const VmxInsn& wr : step.l1_vmx_writes) {
          target_.HandleVmxInstruction(wr);
        }
        VmxInsn resume;
        resume.op =
            step.resume_with_launch ? VmxOp::kVmlaunch : VmxOp::kVmresume;
        target_.HandleVmxInstruction(resume);
      }
    } else {
      // Entry failed (or L1 never got to L2): let L1 rewrite state and
      // retry the launch — the harness's error-recovery template.
      for (const GuestInsn& insn : step.l1_insns) {
        target_.HandleGuestInstruction(insn, GuestLevel::kL1);
      }
      for (const VmxInsn& wr : step.l1_vmx_writes) {
        target_.HandleVmxInstruction(wr);
      }
      VmxInsn launch;
      launch.op = VmxOp::kVmlaunch;
      target_.HandleVmxInstruction(launch);
    }
  }
}

void Agent::RunAmd(const FuzzInput& input, const VcpuConfig& config,
                   InputPartition& parts) {
  Vmcb vmcb12;
  if (options_.use_validator) {
    vmcb12 = svm_validator_.GenerateBoundaryState(parts.vmcs_image,
                                                  parts.mutation);
    if (options_.oracle_interval != 0 &&
        stats_.executions % options_.oracle_interval == 0) {
      svm_oracle_.VerifyOnce(vmcb12);
    }
  } else {
    // Golden-seed fallback, as on the Intel side.
    vmcb12 = MakeDefaultVmcb();
    const auto table = VmcbFieldTable();
    const size_t overwrites = 1 + parts.vmcs_image.Below(8);
    for (size_t i = 0; i < overwrites; ++i) {
      const VmcbFieldInfo& info = table[parts.vmcs_image.Below(table.size())];
      vmcb12.Write(info.field, parts.vmcs_image.U64());
    }
  }

  const ExecutionHarness& h = options_.use_harness ? harness_ : fixed_harness_;
  HarnessProgram prog = h.BuildAmd(parts.harness, vmcb12);
  // MSR permission / IO permission maps in guest memory.
  GuestMemory& mem = target_.guest_memory();
  for (int i = 0; i < 8; ++i) {
    mem.SetBit(vmcb12.Read(VmcbField::kIopmBasePa),
               parts.msr_area.U16() & 0x7fff, true);
    mem.SetBit(vmcb12.Read(VmcbField::kMsrpmBasePa),
               parts.msr_area.U16() & 0x7fff, true);
  }

  for (const GuestInsn& insn : prog.l1_pre_init) {
    target_.HandleGuestInstruction(insn, GuestLevel::kL1);
  }
  for (const SvmInsn& op : prog.svm_init) {
    target_.HandleSvmInstruction(op);
    if (target_.host_crashed()) {
      return;
    }
  }

  SvmInsn rerun;
  rerun.op = SvmOp::kVmrun;
  rerun.operand = prog.vmcb12_pa;
  for (const RuntimeStep& step : prog.runtime) {
    if (target_.host_crashed()) {
      return;
    }
    if (target_.in_l2()) {
      const HandledBy hb =
          target_.HandleGuestInstruction(step.l2, GuestLevel::kL2);
      if (hb == HandledBy::kL1) {
        for (const GuestInsn& insn : step.l1_insns) {
          target_.HandleGuestInstruction(insn, GuestLevel::kL1);
        }
        for (const SvmInsn& wr : step.l1_svm_writes) {
          target_.HandleSvmInstruction(wr);
        }
        target_.HandleSvmInstruction(rerun);
      }
    } else {
      for (const GuestInsn& insn : step.l1_insns) {
        target_.HandleGuestInstruction(insn, GuestLevel::kL1);
      }
      for (const SvmInsn& wr : step.l1_svm_writes) {
        target_.HandleSvmInstruction(wr);
      }
      target_.HandleSvmInstruction(rerun);
    }
  }
}

ExecFeedback Agent::ExecuteOne(const FuzzInput& input) {
  ++stats_.executions;
  // Watchdog: if the previous test case took the host down, restart it
  // before this one (paper Section 3.2).
  if (target_.host_crashed()) {
    target_.RestartHost();
    ++stats_.watchdog_restarts;
  }

  InputPartition parts(input);
  VcpuConfig config = VcpuConfig::Default(options_.arch);
  if (options_.use_configurator) {
    // Identical config bytes generate identical configs; the memo skips
    // Generate entirely for repeats. Nothing downstream reads the config
    // slice after Generate, so leaving parts.config unconsumed on a memo
    // hit is invisible.
    ConfiguratorMemo::Key key;
    const bool keyed = ConfiguratorMemo::MakeKey(input, &key);
    const VcpuConfig* memo = keyed ? config_memo_.Lookup(key) : nullptr;
    if (memo != nullptr) {
      config = *memo;
      ++stats_.config_memo_hits;
    } else {
      config = configurator_.Generate(parts.config, options_.arch);
      if (keyed) {
        config_memo_.Insert(key, config);
      }
    }
  }

  // Snapshot cache: a hit replaces module reload + VM boot with a restore
  // that is bit-equivalent to the boot (the snapshot tests pin this); a
  // miss boots through the adapter as before and captures a snapshot.
  const uint64_t fingerprint = FingerprintConfig(config);
  const VmSnapshot* snap = snapshot_cache_.Get(fingerprint);
  if (snap != nullptr && SameConfig(snap->config, config)) {
    const auto start = std::chrono::steady_clock::now();
    target_.RestoreVm(*snap);
    stats_.restore_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    ++stats_.snapshot_hits;
  } else {
    if (adapter_ != nullptr) {
      adapter_->Apply(target_, config);
    } else {
      target_.StartVm(config);
    }
    ++stats_.snapshot_misses;
    if (snapshot_cache_.capacity() > 0) {
      VmSnapshot captured = target_.SnapshotVm();
      if (captured.data == nullptr) {
        // Base-class fallback snapshot: fix up the config it cannot know.
        captured.config = config;
      }
      snapshot_cache_.Put(fingerprint, std::move(captured));
    }
  }

  if (options_.arch == Arch::kIntel) {
    RunIntel(input, config, parts);
  } else {
    RunAmd(input, config, parts);
  }

  ExecFeedback feedback;
  feedback.edges = target_.nested_coverage(options_.arch).DrainTrace();
  for (AnomalyReport& report : target_.sanitizers().Drain()) {
    if (!feedback.anomaly) {
      feedback.anomaly = true;
      feedback.anomaly_id = report.bug_id;
    }
    auto [it, inserted] = findings_.try_emplace(report.bug_id);
    if (inserted) {
      CrashRecord record;
      record.report = report;
      record.input = input;
      record.hypervisor = std::string(target_.name());
      record.arch = std::string(ArchName(options_.arch));
      record.iteration = stats_.executions;
      // Save() throws when persisting fails (ENOSPC, EACCES, ...); the
      // exception propagates through the executor to the engine, which
      // fails the campaign — a crash artifact that cannot be made durable
      // must not be silently dropped.
      crash_store_.Save(record);
      it->second = std::move(report);
    }
  }
  return feedback;
}

void Agent::ExportState(WorkerStateRecord* out) const {
  out->executions = stats_.executions;
  out->watchdog_restarts = stats_.watchdog_restarts;
  out->snapshot_hits = stats_.snapshot_hits;
  out->snapshot_misses = stats_.snapshot_misses;
  out->config_memo_hits = stats_.config_memo_hits;
  out->restore_ns = stats_.restore_ns;
  out->findings.clear();
  out->findings.reserve(findings_.size());
  for (const auto& [id, report] : findings_) {
    out->findings.push_back(report);
  }
  // std::set iteration is sorted, so the quirk tables serialize in a
  // deterministic order.
  out->vmx_suppressed_checks.clear();
  for (CheckId check : vmx_validator_.quirks().suppressed_checks) {
    out->vmx_suppressed_checks.push_back(static_cast<uint16_t>(check));
  }
  out->vmx_learned_fixups.clear();
  for (VmxFixupId fixup : vmx_validator_.quirks().learned_fixups) {
    out->vmx_learned_fixups.push_back(static_cast<uint8_t>(fixup));
  }
  out->svm_suppressed_checks.clear();
  for (CheckId check : svm_validator_.quirks().suppressed_checks) {
    out->svm_suppressed_checks.push_back(static_cast<uint16_t>(check));
  }
}

void Agent::ImportState(const WorkerStateRecord& record) {
  stats_.executions = record.executions;
  stats_.watchdog_restarts = record.watchdog_restarts;
  stats_.snapshot_hits = record.snapshot_hits;
  stats_.snapshot_misses = record.snapshot_misses;
  stats_.config_memo_hits = record.config_memo_hits;
  stats_.restore_ns = record.restore_ns;
  findings_.clear();
  for (const AnomalyReport& report : record.findings) {
    findings_.emplace(report.bug_id, report);
  }
  VmxQuirkTable& vmx = vmx_validator_.quirks();
  vmx.suppressed_checks.clear();
  vmx.learned_fixups.clear();
  for (uint16_t check : record.vmx_suppressed_checks) {
    vmx.suppressed_checks.insert(static_cast<CheckId>(check));
  }
  for (uint8_t fixup : record.vmx_learned_fixups) {
    vmx.learned_fixups.insert(static_cast<VmxFixupId>(fixup));
  }
  SvmQuirkTable& svm = svm_validator_.quirks();
  svm.suppressed_checks.clear();
  for (uint16_t check : record.svm_suppressed_checks) {
    svm.suppressed_checks.insert(static_cast<CheckId>(check));
  }
}

}  // namespace neco
