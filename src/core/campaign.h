// A fuzzing campaign: the full NecoFuzz stack (fuzzer + agent + VM
// generator) run against one target hypervisor for a fixed iteration
// budget, with periodic coverage sampling for the time-series figures.
#ifndef SRC_CORE_CAMPAIGN_H_
#define SRC_CORE_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/agent.h"
#include "src/fuzz/fuzzer.h"
#include "src/hv/hypervisor.h"

namespace neco {

// How CampaignEngine runs its worker shards (src/core/transport/):
//  * kThreads — worker threads in this process, deltas over the in-proc
//    bounded queue (InProcTransport);
//  * kProcesses — fork/exec'd child processes, deltas and feedback over
//    pipes (PipeTransport + ShardSupervisor);
//  * kSockets — shard children dial a TCP listener and speak the same
//    wire frames over the connection (SocketTransport). The launcher is
//    pluggable (CampaignOptions::remote_launcher), so the children can
//    live on other machines; the default launcher spawns local
//    subprocesses, which makes the single-machine case and the tests
//    need no ssh.
// Same merge math in every mode, same deterministic results and observer
// event sequences; the medium is the only difference.
enum class ShardMode {
  kThreads,
  kProcesses,
  kSockets,
};

// What a remote launcher must do for one shard of a shard_mode = sockets
// campaign: start a process (ssh, container, job scheduler, ...) that runs
// a binary calling MaybeRunShardChild (src/core/engine.h) with
//   --necofuzz-shard-child --necofuzz-connect=<address:port>
//   --necofuzz-worker=<worker>
// The child dials the address, sends a ShardHelloRecord, receives its
// ShardChildConfigRecord, and runs the shard over the socket.
struct ShardLaunch {
  int worker = 0;
  std::string address;  // The listen address the child must dial.
  uint16_t port = 0;    // The resolved listen port (after an ephemeral bind).
  std::string target;   // Registry name the child rebuilds its target from.
};

// Returns false when the shard could not be launched; the campaign fails
// with a launcher error instead of waiting out the accept timeout.
using RemoteLauncher = std::function<bool(const ShardLaunch&)>;

struct CampaignOptions {
  Arch arch = Arch::kIntel;
  uint64_t iterations = 20000;
  // Number of evenly spaced coverage samples (Figure 3 / Figure 4 series).
  int samples = 24;
  uint64_t seed = 1;
  // Worker shards for CampaignEngine (a borrowed-target session ignores
  // this and always runs one shard inline). Each worker derives its
  // fuzzer seed as seed + worker_id, so worker 0 reproduces the serial
  // campaign exactly.
  int workers = 1;
  // Cross-shard corpus syncing: at every sample boundary each worker
  // publishes its new queue entries and adopts the other shards'. Only
  // effective in guided mode — breadth-first campaigns have no corpus,
  // so their shards run fully decoupled regardless of this flag.
  bool corpus_sync = true;
  // Shard deltas folded per merge-pipeline flush (src/core/merge_pipeline).
  // 1 reproduces the barrier-era one-merge-per-delta cadence; larger
  // values amortize drainer wake-ups. Merged results and observer event
  // sequences are identical for every value — the fold order is fixed —
  // so this only trades flush frequency against queue depth.
  int merge_batch = 1;
  // Thread shards, fork/exec'd process shards, or socket-dialing shard
  // children. Every mode produces bit-identical merged results and
  // observer event sequences for the same (options, target) — pinned in
  // tests/engine_test.cc. A borrowed-target session ignores this (single
  // inline shard, like `workers`).
  ShardMode shard_mode = ShardMode::kThreads;
  // With shard_mode = sockets: the address/port the parent listens on and
  // shard children dial. Port 0 binds an ephemeral port (the resolved
  // value is handed to the launcher). For multi-machine campaigns bind a
  // reachable interface (e.g. "0.0.0.0") and make sure remote_launcher
  // passes an address the remote host can route.
  std::string listen_address = "127.0.0.1";
  uint16_t listen_port = 0;
  // How long the parent waits for every shard to dial in and complete the
  // handshake before failing the campaign. Connections that handshake
  // badly (stray dialers, garbage, duplicate workers) are dropped and the
  // listener keeps accepting until this deadline — a launcher may retry a
  // failed dial — after which the campaign fails with an error naming the
  // missing shards (reconnect-or-fail).
  double socket_accept_timeout = 30.0;
  // With shard_mode = sockets: launches shard `worker` somewhere it can
  // dial the listener (ssh, container, ...). Null uses the built-in local
  // launcher: children are subprocesses of this process — fork'd shard
  // bodies, or exec'd via shard_exec_path when that is set — so tests and
  // single-machine campaigns need no infrastructure. A non-null launcher
  // requires a by-name session (remote children rebuild the target from
  // the registry).
  RemoteLauncher remote_launcher;
  // With shard_mode = processes: when non-empty, children are spawned by
  // fork + exec of this binary (e.g. "/proc/self/exe") with the hidden
  // --necofuzz-shard-child arguments — its main() must call
  // MaybeRunShardChild first (src/core/engine.h). Exec'd children rebuild
  // the target from the registry, so the session must be constructed by
  // name. Empty spawns plain fork children (works from any binary,
  // including the test suites) — but fork-without-exec assumes the
  // calling process is effectively single-threaded at Run() time: a
  // child forked while some unrelated embedder thread holds e.g. an
  // allocator lock can deadlock. Multithreaded embedders should set an
  // exec path.
  std::string shard_exec_path;
  // Durable campaign state (src/core/state/journal.h). Empty (the
  // default) keeps the campaign memory-resident. When set, CampaignEngine
  // opens or creates a CampaignJournal at this directory and commits the
  // campaign at epoch granularity — merged deltas, new crash artifacts,
  // and a versioned manifest, each write-to-temp + fsync + atomic rename
  // + directory fsync. A campaign killed at any point (kill -9 included)
  // and restarted with the same state_dir and options resumes from the
  // last committed epoch, bit-identical to an uninterrupted run: same
  // EngineResult, and the observer event stream continues exactly where
  // the committed prefix stopped. Works across all shard modes (the
  // journal lives in the parent; shard_mode and merge_batch may even
  // change between incarnations). A state_dir written by different
  // options, target, or binary is rejected at Run() with an error.
  std::string state_dir;
  // Materialized-snapshot cadence (src/core/state/snapshot.h): with a
  // state_dir, commit a full merged-state snapshot every N epochs, so a
  // resume replays at most N-1 epochs of tail instead of the whole
  // campaign, and journal files behind the previous snapshot horizon are
  // compacted away. 0 (the default) disables snapshots: resume replays
  // every committed epoch, exactly the pre-snapshot behavior. Results are
  // invariant to this knob — like merge_batch and shard_mode it is
  // excluded from the journal fingerprint, so the cadence may change
  // between incarnations of the same campaign.
  size_t snapshot_every_epochs = 0;
  // Test-only fault injection: when set, every fork-mode process shard
  // calls this at the start of each epoch (in the child process). Lets
  // tests kill a child mid-campaign and assert the parent surfaces a
  // shard error instead of hanging.
  std::function<void(int worker, size_t epoch)> shard_fault_for_test;
  AgentOptions agent;
  // NecoFuzz's default mode is the breadth-first boundary explorer: the
  // paper found coverage guidance counter-productive here, because the
  // validator's rounding collapses guided micro-variations into equivalent
  // post-rounding states (Section 5.6 / Table 5). Benches flip this on to
  // reproduce the "with coverage guidance" row.
  FuzzerOptions fuzzer{.seed = 1, .coverage_guidance = false};
};

struct CoverageSample {
  uint64_t iteration;
  double percent;
};

struct CampaignResult {
  std::vector<CoverageSample> series;
  double final_percent = 0.0;
  size_t covered_points = 0;
  size_t total_points = 0;
  std::vector<size_t> covered_set;
  std::vector<AnomalyReport> findings;
  FuzzerStats fuzzer_stats;
  uint64_t watchdog_restarts = 0;
  // Execution-core throughput counters (snapshot cache, configurator
  // memo, restore time). agent_stats.watchdog_restarts mirrors the
  // top-level field; restore_ns is wall-clock and excluded from
  // determinism comparisons.
  AgentStats agent_stats;
};

// The campaign's sampling cadence: `budget` iterations split into
// chunk-sized steps (one coverage sample after each), chunk =
// budget/samples with a minimum of 1 plus a remainder step. CampaignEngine
// applies it per shard, so a one-worker campaign replays the historical
// serial schedule exactly.
std::vector<uint64_t> ChunkSchedule(uint64_t budget, int samples);

}  // namespace neco

#endif  // SRC_CORE_CAMPAIGN_H_
