// A fuzzing campaign: the full NecoFuzz stack (fuzzer + agent + VM
// generator) run against one target hypervisor for a fixed iteration
// budget, with periodic coverage sampling for the time-series figures.
#ifndef SRC_CORE_CAMPAIGN_H_
#define SRC_CORE_CAMPAIGN_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/agent.h"
#include "src/fuzz/fuzzer.h"
#include "src/hv/hypervisor.h"

namespace neco {

// How CampaignEngine runs its worker shards (src/core/transport/):
//  * kThreads — worker threads in this process, deltas over the in-proc
//    bounded queue (InProcTransport);
//  * kProcesses — fork/exec'd child processes, deltas and feedback over
//    pipes (PipeTransport + ShardSupervisor). Same merge math, same
//    deterministic results and observer event sequences; the medium is
//    the only difference.
enum class ShardMode {
  kThreads,
  kProcesses,
};

struct CampaignOptions {
  Arch arch = Arch::kIntel;
  uint64_t iterations = 20000;
  // Number of evenly spaced coverage samples (Figure 3 / Figure 4 series).
  int samples = 24;
  uint64_t seed = 1;
  // Worker shards for CampaignEngine (a borrowed-target session ignores
  // this and always runs one shard inline). Each worker derives its
  // fuzzer seed as seed + worker_id, so worker 0 reproduces the serial
  // campaign exactly.
  int workers = 1;
  // Cross-shard corpus syncing: at every sample boundary each worker
  // publishes its new queue entries and adopts the other shards'. Only
  // effective in guided mode — breadth-first campaigns have no corpus,
  // so their shards run fully decoupled regardless of this flag.
  bool corpus_sync = true;
  // Shard deltas folded per merge-pipeline flush (src/core/merge_pipeline).
  // 1 reproduces the barrier-era one-merge-per-delta cadence; larger
  // values amortize drainer wake-ups. Merged results and observer event
  // sequences are identical for every value — the fold order is fixed —
  // so this only trades flush frequency against queue depth.
  int merge_batch = 1;
  // Thread shards or fork/exec'd process shards. Either mode produces
  // bit-identical merged results and observer event sequences for the
  // same (options, target) — pinned in tests/engine_test.cc. A
  // borrowed-target session ignores this (single inline shard, like
  // `workers`).
  ShardMode shard_mode = ShardMode::kThreads;
  // With shard_mode = processes: when non-empty, children are spawned by
  // fork + exec of this binary (e.g. "/proc/self/exe") with the hidden
  // --necofuzz-shard-child arguments — its main() must call
  // MaybeRunShardChild first (src/core/engine.h). Exec'd children rebuild
  // the target from the registry, so the session must be constructed by
  // name. Empty spawns plain fork children (works from any binary,
  // including the test suites) — but fork-without-exec assumes the
  // calling process is effectively single-threaded at Run() time: a
  // child forked while some unrelated embedder thread holds e.g. an
  // allocator lock can deadlock. Multithreaded embedders should set an
  // exec path.
  std::string shard_exec_path;
  // Test-only fault injection: when set, every fork-mode process shard
  // calls this at the start of each epoch (in the child process). Lets
  // tests kill a child mid-campaign and assert the parent surfaces a
  // shard error instead of hanging.
  std::function<void(int worker, size_t epoch)> shard_fault_for_test;
  AgentOptions agent;
  // NecoFuzz's default mode is the breadth-first boundary explorer: the
  // paper found coverage guidance counter-productive here, because the
  // validator's rounding collapses guided micro-variations into equivalent
  // post-rounding states (Section 5.6 / Table 5). Benches flip this on to
  // reproduce the "with coverage guidance" row.
  FuzzerOptions fuzzer{.seed = 1, .coverage_guidance = false};
};

struct CoverageSample {
  uint64_t iteration;
  double percent;
};

struct CampaignResult {
  std::vector<CoverageSample> series;
  double final_percent = 0.0;
  size_t covered_points = 0;
  size_t total_points = 0;
  std::vector<size_t> covered_set;
  std::vector<AnomalyReport> findings;
  FuzzerStats fuzzer_stats;
  uint64_t watchdog_restarts = 0;
};

// The campaign's sampling cadence: `budget` iterations split into
// chunk-sized steps (one coverage sample after each), chunk =
// budget/samples with a minimum of 1 plus a remainder step. CampaignEngine
// applies it per shard, so a one-worker campaign replays the historical
// serial schedule exactly.
std::vector<uint64_t> ChunkSchedule(uint64_t budget, int samples);

}  // namespace neco

#endif  // SRC_CORE_CAMPAIGN_H_
