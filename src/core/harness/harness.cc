#include "src/core/harness/harness.h"

#include "src/arch/vmx_bits.h"

namespace neco {
namespace {

// Interesting operand pools, mirroring the "minimal setup logic" the
// paper wraps around each exit-triggering template.
constexpr uint64_t kCr0Pool[] = {
    0x80000031ULL,                    // PE|ET|NE|PG: normal long mode.
    0x80000031ULL | Cr0::kCd,         // Cache disabled.
    0x00000031ULL,                    // Paging off.
    0x80000030ULL,                    // PG without PE (invalid).
    0x80000031ULL | Cr0::kNw,         // NW without CD (invalid).
    0x60000010ULL,                    // CD|NW|ET.
    ~0ULL,                            // Everything.
};

constexpr uint64_t kCr4Pool[] = {
    Cr4::kPae | Cr4::kVmxe,
    Cr4::kPae,
    0,
    Cr4::kPae | Cr4::kVmxe | Cr4::kPcide,
    Cr4::kVmxe | Cr4::kSmep | Cr4::kSmap,
    ~0ULL,
};

constexpr uint32_t kMsrPool[] = {
    Msr::kIa32Efer,    Msr::kIa32SysenterCs, Msr::kIa32SysenterEsp,
    Msr::kIa32SysenterEip, Msr::kStar,       Msr::kLstar,
    Msr::kFsBase,      Msr::kGsBase,         Msr::kKernelGsBase,
    Msr::kIa32FeatureControl, Msr::kIa32VmxBasic, Msr::kIa32VmxBasic + 2,
    Msr::kIa32VmxBasic + 0x0b, Msr::kIa32Pat, Msr::kIa32Debugctl,
    Msr::kVmCr,        0xdeadbeefu,
};

constexpr uint64_t kValuePool[] = {
    0,
    1,
    0x8000000000000000ULL,  // Non-canonical.
    0xffff800000000000ULL,  // Canonical, kernel-half.
    0x00007fffffffffffULL,  // Canonical boundary.
    0x0000800000000000ULL,  // Just past canonical.
    ~0ULL,
    Efer::kLme | Efer::kLma,
    Efer::kSvme,
    0x500,
};

// L2 instruction-template library (Table 1 classes).
constexpr GuestInsnKind kL2Templates[] = {
    GuestInsnKind::kCpuid,    GuestInsnKind::kHlt,
    GuestInsnKind::kRdtsc,    GuestInsnKind::kRdtscp,
    GuestInsnKind::kRdpmc,    GuestInsnKind::kPause,
    GuestInsnKind::kRdrand,   GuestInsnKind::kRdseed,
    GuestInsnKind::kInvd,     GuestInsnKind::kWbinvd,
    GuestInsnKind::kMovToCr0, GuestInsnKind::kMovToCr3,
    GuestInsnKind::kMovFromCr3, GuestInsnKind::kMovToCr4,
    GuestInsnKind::kMovToCr8, GuestInsnKind::kMovToDr,
    GuestInsnKind::kIoIn,     GuestInsnKind::kIoOut,
    GuestInsnKind::kRdmsr,    GuestInsnKind::kWrmsr,
    GuestInsnKind::kInvlpg,   GuestInsnKind::kInvpcid,
    GuestInsnKind::kMwait,    GuestInsnKind::kMonitor,
    GuestInsnKind::kVmcall,   GuestInsnKind::kXsetbv,
    GuestInsnKind::kRaiseException,
    GuestInsnKind::kMovToCr0Selective,
};

constexpr GuestInsnKind kL1Templates[] = {
    GuestInsnKind::kRdmsr,  GuestInsnKind::kWrmsr,
    GuestInsnKind::kCpuid,  GuestInsnKind::kVmcall,
    GuestInsnKind::kHlt,
};

uint64_t PickValue(ByteReader& bytes) {
  if (bytes.Chance(2, 3)) {
    return kValuePool[bytes.Below(sizeof(kValuePool) / sizeof(uint64_t))];
  }
  return bytes.U64();
}

// A handful of VMCS fields L1 plausibly rewrites between exits.
constexpr VmcsField kRuntimeWriteFields[] = {
    VmcsField::kGuestRip,
    VmcsField::kGuestRflags,
    VmcsField::kGuestCr0,
    VmcsField::kGuestCr4,
    VmcsField::kGuestActivityState,
    VmcsField::kGuestInterruptibilityInfo,
    VmcsField::kCpuBasedVmExecControl,
    VmcsField::kSecondaryVmExecControl,
    VmcsField::kExceptionBitmap,
    VmcsField::kVmEntryIntrInfoField,
    VmcsField::kVmEntryMsrLoadCount,
    VmcsField::kEptPointer,
    VmcsField::kCr0GuestHostMask,
    VmcsField::kCr0ReadShadow,
};

constexpr VmcbField kRuntimeVmcbWriteFields[] = {
    VmcbField::kRip,        VmcbField::kRflags,     VmcbField::kCr0,
    VmcbField::kCr4,        VmcbField::kEfer,       VmcbField::kVIntr,
    VmcbField::kInterceptVec3, VmcbField::kInterceptVec4,
    VmcbField::kGuestAsid,  VmcbField::kNestedCtl,  VmcbField::kNestedCr3,
    VmcbField::kEventInj,   VmcbField::kCsAttrib,
};

}  // namespace

GuestInsn ExecutionHarness::PickL2Insn(ByteReader& bytes, Arch arch) const {
  GuestInsn insn;
  insn.kind =
      kL2Templates[bytes.Below(sizeof(kL2Templates) / sizeof(GuestInsnKind))];
  switch (insn.kind) {
    case GuestInsnKind::kMovToCr0:
    case GuestInsnKind::kMovToCr0Selective:
      insn.arg0 = bytes.Chance(3, 4)
                      ? kCr0Pool[bytes.Below(sizeof(kCr0Pool) / 8)]
                      : bytes.U64();
      break;
    case GuestInsnKind::kMovToCr4:
      insn.arg0 = bytes.Chance(3, 4)
                      ? kCr4Pool[bytes.Below(sizeof(kCr4Pool) / 8)]
                      : bytes.U64();
      break;
    case GuestInsnKind::kMovToCr3:
    case GuestInsnKind::kInvlpg:
      insn.arg0 = PickValue(bytes);
      break;
    case GuestInsnKind::kMovToCr8:
      insn.arg0 = bytes.U8() & 0xf;
      break;
    case GuestInsnKind::kMovToDr:
      insn.arg0 = PickValue(bytes);
      insn.arg1 = bytes.U8() % 8;  // DR number.
      break;
    case GuestInsnKind::kIoIn:
    case GuestInsnKind::kIoOut:
      insn.arg0 = bytes.U16();
      insn.arg1 = bytes.U32();
      break;
    case GuestInsnKind::kRdmsr:
    case GuestInsnKind::kWrmsr:
      insn.arg0 = kMsrPool[bytes.Below(sizeof(kMsrPool) / 4)];
      insn.arg1 = PickValue(bytes);
      break;
    case GuestInsnKind::kCpuid:
      insn.arg0 = bytes.U8() & 0x1f;  // Leaf.
      break;
    case GuestInsnKind::kRaiseException:
      insn.arg0 = bytes.U8() & 0x1f;   // Vector.
      insn.arg1 = bytes.U16() & 0x1f;  // #PF-style error code.
      break;
    default:
      insn.arg0 = bytes.U16();
      break;
  }
  return insn;
}

GuestInsn ExecutionHarness::PickL1Insn(ByteReader& bytes, Arch arch) const {
  GuestInsn insn;
  insn.kind =
      kL1Templates[bytes.Below(sizeof(kL1Templates) / sizeof(GuestInsnKind))];
  if (insn.kind == GuestInsnKind::kRdmsr ||
      insn.kind == GuestInsnKind::kWrmsr) {
    insn.arg0 = kMsrPool[bytes.Below(sizeof(kMsrPool) / 4)];
    insn.arg1 = PickValue(bytes);
    if (arch == Arch::kAmd && insn.kind == GuestInsnKind::kWrmsr &&
        bytes.Chance(1, 2)) {
      // Keep SVME live most of the time on AMD or nothing runs.
      insn.arg0 = Msr::kIa32Efer;
      insn.arg1 |= Efer::kSvme;
    }
  }
  return insn;
}

void ExecutionHarness::MutateVmxInit(HarnessProgram& prog,
                                     ByteReader& bytes) const {
  auto& ops = prog.vmx_init;
  // Corrupt the region revision occasionally (revision-check path).
  if (bytes.Chance(1, 12)) {
    prog.region_revision = bytes.U32();
  }
  // Argument perturbations.
  if (bytes.Chance(1, 8)) {
    // Misaligned or null vmxon region.
    ops.front().operand = bytes.Chance(1, 2) ? 0 : 0x1001;
  }
  if (bytes.Chance(1, 8)) {
    // vmptrld of the VMXON pointer (dedicated VMfail).
    for (auto& op : ops) {
      if (op.op == VmxOp::kVmptrld) {
        op.operand = prog.vmxon_pa;
        break;
      }
    }
  }
  if (bytes.Chance(1, 8)) {
    // vmclear of a different (never-loaded) region.
    VmxInsn extra;
    extra.op = VmxOp::kVmclear;
    extra.operand = 0x5000 + (bytes.U8() & 0x7) * 0x1000;
    ops.insert(ops.begin() + 1 + bytes.Below(2), extra);
  }
  // Order perturbation: swap two adjacent setup steps.
  if (bytes.Chance(1, 6) && ops.size() > 3) {
    const size_t i = 1 + bytes.Below(2);
    std::swap(ops[i], ops[i + 1]);
  }
  // Step duplication and deletion.
  if (bytes.Chance(1, 8)) {
    const size_t i = bytes.Below(ops.size());
    ops.insert(ops.begin() + i, ops[i]);
  }
  if (bytes.Chance(1, 10) && ops.size() > 2) {
    ops.erase(ops.begin() + bytes.Below(ops.size() - 1));
  }
  // Corrupt one vmwrite's field encoding (unsupported-component VMfail).
  if (bytes.Chance(1, 6)) {
    for (auto& op : ops) {
      if (op.op == VmxOp::kVmwrite && bytes.Chance(1, 4)) {
        op.field = static_cast<VmcsField>(bytes.U16());
        break;
      }
    }
  }
  // vmresume before any launch (wrong-launch-state VMfail).
  if (bytes.Chance(1, 8)) {
    VmxInsn resume;
    resume.op = VmxOp::kVmresume;
    ops.insert(ops.end() - 1, resume);
  }
  // Repeated vmlaunch.
  if (bytes.Chance(1, 8)) {
    VmxInsn launch;
    launch.op = VmxOp::kVmlaunch;
    const unsigned reps = 1 + static_cast<unsigned>(bytes.Below(2));
    for (unsigned i = 0; i < reps; ++i) {
      ops.push_back(launch);
    }
  }
  // Stray invept/invvpid.
  if (bytes.Chance(1, 8)) {
    VmxInsn inv;
    inv.op = bytes.Chance(1, 2) ? VmxOp::kInvept : VmxOp::kInvvpid;
    inv.operand = bytes.U8() & 0x7;
    ops.insert(ops.begin() + bytes.Below(ops.size()), inv);
  }
}

HarnessProgram ExecutionHarness::BuildIntel(ByteReader& bytes,
                                            const Vmcs& vmcs12) const {
  HarnessProgram prog;

  // --- Initialization-phase template: the canonical VMX setup sequence.
  VmxInsn op;
  op.op = VmxOp::kVmxon;
  op.operand = prog.vmxon_pa;
  prog.vmx_init.push_back(op);
  op.op = VmxOp::kVmclear;
  op.operand = prog.vmcs12_pa;
  prog.vmx_init.push_back(op);
  op.op = VmxOp::kVmptrld;
  op.operand = prog.vmcs12_pa;
  prog.vmx_init.push_back(op);
  // vmwrite every writable field of the generated VMCS12.
  for (const VmcsFieldInfo& info : VmcsFieldTable()) {
    if (info.group == VmcsFieldGroup::kReadOnlyData) {
      continue;
    }
    VmxInsn wr;
    wr.op = VmxOp::kVmwrite;
    wr.field = info.field;
    wr.value = vmcs12.Read(info.field);
    prog.vmx_init.push_back(wr);
  }
  op = VmxInsn{};
  op.op = VmxOp::kVmlaunch;
  prog.vmx_init.push_back(op);

  if (options_.enabled) {
    MutateVmxInit(prog, bytes);
  }

  // --- Runtime phase ---
  const size_t steps =
      options_.enabled ? 4 + bytes.Below(12) : 4;
  for (size_t i = 0; i < steps; ++i) {
    RuntimeStep step;
    if (options_.enabled) {
      step.l2 = PickL2Insn(bytes, Arch::kIntel);
      const size_t l1n = bytes.Below(3);
      for (size_t j = 0; j < l1n; ++j) {
        step.l1_insns.push_back(PickL1Insn(bytes, Arch::kIntel));
      }
      const size_t wrn = bytes.Below(3);
      for (size_t j = 0; j < wrn; ++j) {
        VmxInsn wr;
        wr.op = VmxOp::kVmwrite;
        wr.field = kRuntimeWriteFields[bytes.Below(
            sizeof(kRuntimeWriteFields) / sizeof(VmcsField))];
        wr.value = PickValue(bytes);
        step.l1_vmx_writes.push_back(wr);
      }
      step.resume_with_launch = bytes.Chance(1, 10);
    } else {
      // Fixed minimal loop for the ablation: cpuid only.
      step.l2.kind = GuestInsnKind::kCpuid;
    }
    prog.runtime.push_back(std::move(step));
  }
  return prog;
}

void ExecutionHarness::MutateSvmInit(HarnessProgram& prog,
                                     ByteReader& bytes) const {
  // Skip the EFER.SVME write occasionally (#UD path).
  if (bytes.Chance(1, 10)) {
    prog.l1_pre_init.clear();
  }
  auto& ops = prog.svm_init;
  if (bytes.Chance(1, 8)) {
    // Misaligned VMCB.
    ops.back().operand = prog.vmcb12_pa | (1 + bytes.Below(0xfff));
  }
  if (bytes.Chance(1, 8)) {
    // Corrupt one VMCB field write.
    for (auto& o : ops) {
      if (o.op == SvmOp::kVmcbWrite && bytes.Chance(1, 4)) {
        o.field = static_cast<VmcbField>(bytes.U8() % kNumVmcbFields);
        o.value = bytes.U64();
        break;
      }
    }
  }
  if (bytes.Chance(1, 8)) {
    // CLGI/STGI around the run.
    SvmInsn gi;
    gi.op = bytes.Chance(1, 2) ? SvmOp::kClgi : SvmOp::kStgi;
    ops.insert(ops.begin() + bytes.Below(ops.size()), gi);
  }
  if (bytes.Chance(1, 8)) {
    SvmInsn vl;
    vl.op = bytes.Chance(1, 2) ? SvmOp::kVmload : SvmOp::kVmsave;
    vl.operand = prog.vmcb12_pa;
    ops.insert(ops.begin() + bytes.Below(ops.size()), vl);
  }
  if (bytes.Chance(1, 10)) {
    // Double vmrun.
    SvmInsn run;
    run.op = SvmOp::kVmrun;
    run.operand = prog.vmcb12_pa;
    ops.push_back(run);
  }
}

HarnessProgram ExecutionHarness::BuildAmd(ByteReader& bytes,
                                          const Vmcb& vmcb12) const {
  HarnessProgram prog;

  // L1 must first enable EFER.SVME.
  GuestInsn svme;
  svme.kind = GuestInsnKind::kWrmsr;
  svme.arg0 = Msr::kIa32Efer;
  svme.arg1 = Efer::kSvme | Efer::kLme | Efer::kLma;
  prog.l1_pre_init.push_back(svme);

  // Write the generated VMCB12 into guest memory field by field, then run.
  for (const VmcbFieldInfo& info : VmcbFieldTable()) {
    SvmInsn wr;
    wr.op = SvmOp::kVmcbWrite;
    wr.operand = prog.vmcb12_pa;
    wr.field = info.field;
    wr.value = vmcb12.Read(info.field);
    prog.svm_init.push_back(wr);
  }
  SvmInsn run;
  run.op = SvmOp::kVmrun;
  run.operand = prog.vmcb12_pa;
  prog.svm_init.push_back(run);

  if (options_.enabled) {
    MutateSvmInit(prog, bytes);
  }

  const size_t steps = options_.enabled ? 4 + bytes.Below(12) : 4;
  for (size_t i = 0; i < steps; ++i) {
    RuntimeStep step;
    if (options_.enabled) {
      step.l2 = PickL2Insn(bytes, Arch::kAmd);
      const size_t l1n = bytes.Below(3);
      for (size_t j = 0; j < l1n; ++j) {
        step.l1_insns.push_back(PickL1Insn(bytes, Arch::kAmd));
      }
      const size_t wrn = bytes.Below(3);
      for (size_t j = 0; j < wrn; ++j) {
        SvmInsn wr;
        wr.op = SvmOp::kVmcbWrite;
        wr.operand = prog.vmcb12_pa;
        wr.field = kRuntimeVmcbWriteFields[bytes.Below(
            sizeof(kRuntimeVmcbWriteFields) / sizeof(VmcbField))];
        wr.value = PickValue(bytes);
        step.l1_svm_writes.push_back(wr);
      }
    } else {
      step.l2.kind = GuestInsnKind::kCpuid;
    }
    prog.runtime.push_back(std::move(step));
  }
  return prog;
}

}  // namespace neco
