// The VM execution harness (paper Sections 3.3 and 4.2).
//
// The harness is the program of the fuzz-harness VM: it acts as both the
// L1 hypervisor (issuing hardware-assisted virtualization instructions
// that L0 must emulate) and the L2 guest (issuing exit-triggering
// instructions from the Table 1 template library).
//
// Two phases:
//  * Initialization: a domain-specific template of the standard VMX/SVM
//    setup sequence (vmxon, vmclear, vmptrld, vmwrite*, vmlaunch — or
//    EFER.SVME, VMCB writes, vmrun). Fuzzing input mutates instruction
//    ordering, argument values and repetition counts while preserving the
//    overall structure, so the sequence-emulation error paths in L0 get
//    exercised without aborting every run at the first step.
//  * Runtime: a loop of templated L2 exit-triggering instructions,
//    followed on each reflected exit by a few L1-context instructions and
//    VMCS12/VMCB12 re-writes, then a vmresume/vmrun.
#ifndef SRC_CORE_HARNESS_HARNESS_H_
#define SRC_CORE_HARNESS_HARNESS_H_

#include <optional>
#include <vector>

#include "src/arch/cpu_features.h"
#include "src/arch/vmcb.h"
#include "src/arch/vmcs.h"
#include "src/hv/guest_insn.h"
#include "src/support/byte_reader.h"

namespace neco {

// One runtime-phase step: the L2 instruction, and what L1 does if the
// resulting exit is reflected to it.
struct RuntimeStep {
  GuestInsn l2;
  std::vector<GuestInsn> l1_insns;
  // L1 may rewrite VM state between exit and re-entry.
  std::vector<VmxInsn> l1_vmx_writes;
  std::vector<SvmInsn> l1_svm_writes;
  // Resume with vmresume (normal) or a structure-violating vmlaunch.
  bool resume_with_launch = false;
};

struct HarnessProgram {
  uint64_t vmxon_pa = 0x1000;
  uint64_t vmcs12_pa = 0x2000;
  uint64_t vmcb12_pa = 0x3000;
  // Guest-memory revision word the harness writes before vmptrld (a
  // mutation may corrupt it to probe the revision-check path).
  uint32_t region_revision = Vmcs::kRevisionId;

  std::vector<VmxInsn> vmx_init;
  std::vector<SvmInsn> svm_init;
  // AMD init needs the L1 wrmsr that sets EFER.SVME.
  std::vector<GuestInsn> l1_pre_init;

  std::vector<RuntimeStep> runtime;
};

struct HarnessOptions {
  // Table 3 ablation: with the harness component disabled, the fixed
  // golden template is used verbatim and the runtime loop shrinks to a
  // fixed minimal instruction set.
  bool enabled = true;
};

class ExecutionHarness {
 public:
  explicit ExecutionHarness(HarnessOptions options = {})
      : options_(options) {}

  // Build the Intel program around a generated VMCS12.
  HarnessProgram BuildIntel(ByteReader& bytes, const Vmcs& vmcs12) const;

  // Build the AMD program around a generated VMCB12.
  HarnessProgram BuildAmd(ByteReader& bytes, const Vmcb& vmcb12) const;

 private:
  GuestInsn PickL2Insn(ByteReader& bytes, Arch arch) const;
  GuestInsn PickL1Insn(ByteReader& bytes, Arch arch) const;
  void MutateVmxInit(HarnessProgram& prog, ByteReader& bytes) const;
  void MutateSvmInit(HarnessProgram& prog, ByteReader& bytes) const;

  HarnessOptions options_;
};

}  // namespace neco

#endif  // SRC_CORE_HARNESS_HARNESS_H_
