// Layout of the 2 KiB fuzzing input.
//
// AFL++ hands the agent an opaque 2 KiB buffer; the agent partitions it and
// dispatches each slice to one VM-generator component (paper Section 3.2):
// the vCPU configurator, the VM execution harness, the VM state validator
// (raw VMCS image + boundary-mutation directives), and the MSR-load-area
// content the harness places in guest memory.
#ifndef SRC_CORE_PARTITION_H_
#define SRC_CORE_PARTITION_H_

#include <cstddef>

#include "src/fuzz/mutator.h"
#include "src/support/byte_reader.h"

namespace neco {

struct InputPartition {
  static constexpr size_t kConfigOffset = 0;
  static constexpr size_t kConfigSize = 128;
  static constexpr size_t kHarnessOffset = 128;
  static constexpr size_t kHarnessSize = 384;
  static constexpr size_t kVmcsImageOffset = 512;
  static constexpr size_t kVmcsImageSize = 1024;  // >= 8000-bit state image.
  static constexpr size_t kMutationOffset = 1536;
  static constexpr size_t kMutationSize = 256;
  static constexpr size_t kMsrAreaOffset = 1792;
  static constexpr size_t kMsrAreaSize = 256;

  static_assert(kMsrAreaOffset + kMsrAreaSize == kFuzzInputSize,
                "partition must cover the whole input");

  ByteReader config;
  ByteReader harness;
  ByteReader vmcs_image;
  ByteReader mutation;
  ByteReader msr_area;

  explicit InputPartition(const FuzzInput& input)
      : config(Slice(input, kConfigOffset, kConfigSize)),
        harness(Slice(input, kHarnessOffset, kHarnessSize)),
        vmcs_image(Slice(input, kVmcsImageOffset, kVmcsImageSize)),
        mutation(Slice(input, kMutationOffset, kMutationSize)),
        msr_area(Slice(input, kMsrAreaOffset, kMsrAreaSize)) {}

 private:
  static ByteReader Slice(const FuzzInput& input, size_t off, size_t len) {
    if (off >= input.size()) {
      return ByteReader();
    }
    const size_t avail = input.size() - off;
    return ByteReader(
        std::span<const uint8_t>(input.data() + off,
                                 len < avail ? len : avail));
  }
};

}  // namespace neco

#endif  // SRC_CORE_PARTITION_H_
