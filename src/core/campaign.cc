#include "src/core/campaign.h"

namespace neco {

std::vector<uint64_t> ChunkSchedule(uint64_t budget, int samples) {
  const uint64_t parts = samples > 0 ? static_cast<uint64_t>(samples) : 1;
  const uint64_t chunk = budget / parts > 0 ? budget / parts : 1;
  std::vector<uint64_t> steps;
  uint64_t done = 0;
  while (done < budget) {
    const uint64_t step = chunk < budget - done ? chunk : budget - done;
    steps.push_back(step);
    done += step;
  }
  return steps;
}

}  // namespace neco
