#include "src/core/campaign.h"

namespace neco {

CampaignResult RunCampaign(Hypervisor& target,
                           const CampaignOptions& options) {
  CampaignResult result;
  CoverageUnit& cov = target.nested_coverage(options.arch);
  cov.ResetCoverage();
  target.sanitizers().Clear();

  AgentOptions agent_options = options.agent;
  agent_options.arch = options.arch;
  Agent agent(target, agent_options);

  FuzzerOptions fuzzer_options = options.fuzzer;
  fuzzer_options.seed = options.seed;
  Fuzzer fuzzer(fuzzer_options, agent.MakeExecutor());

  const int samples = options.samples > 0 ? options.samples : 1;
  const uint64_t chunk =
      options.iterations / static_cast<uint64_t>(samples) > 0
          ? options.iterations / static_cast<uint64_t>(samples)
          : 1;
  uint64_t done = 0;
  while (done < options.iterations) {
    const uint64_t step =
        chunk < options.iterations - done ? chunk : options.iterations - done;
    fuzzer.Run(step);
    done += step;
    result.series.push_back({done, cov.percent()});
  }

  result.final_percent = cov.percent();
  result.covered_points = cov.covered_points();
  result.total_points = cov.total_points();
  result.covered_set = cov.CoveredSet();
  for (const auto& [id, report] : agent.findings()) {
    result.findings.push_back(report);
  }
  result.fuzzer_stats = fuzzer.stats();
  result.watchdog_restarts = agent.watchdog_restarts();
  return result;
}

}  // namespace neco
