#include "src/core/campaign.h"

namespace neco {

CampaignResult RunCampaign(Hypervisor& target,
                           const CampaignOptions& options) {
  CampaignResult result;
  CoverageUnit& cov = target.nested_coverage(options.arch);
  cov.ResetCoverage();
  target.sanitizers().Clear();

  AgentOptions agent_options = options.agent;
  agent_options.arch = options.arch;
  Agent agent(target, agent_options);

  FuzzerOptions fuzzer_options = options.fuzzer;
  fuzzer_options.seed = options.seed;
  Fuzzer fuzzer(fuzzer_options, agent.MakeExecutor());

  uint64_t done = 0;
  for (uint64_t step : ChunkSchedule(options.iterations, options.samples)) {
    fuzzer.Run(step);
    done += step;
    result.series.push_back({done, cov.percent()});
  }

  result.final_percent = cov.percent();
  result.covered_points = cov.covered_points();
  result.total_points = cov.total_points();
  result.covered_set = cov.CoveredSet();
  for (const auto& [id, report] : agent.findings()) {
    result.findings.push_back(report);
  }
  result.fuzzer_stats = fuzzer.stats();
  result.watchdog_restarts = agent.watchdog_restarts();
  return result;
}

std::vector<uint64_t> ChunkSchedule(uint64_t budget, int samples) {
  const uint64_t parts = samples > 0 ? static_cast<uint64_t>(samples) : 1;
  const uint64_t chunk = budget / parts > 0 ? budget / parts : 1;
  std::vector<uint64_t> steps;
  uint64_t done = 0;
  while (done < budget) {
    const uint64_t step = chunk < budget - done ? chunk : budget - done;
    steps.push_back(step);
    done += step;
  }
  return steps;
}

}  // namespace neco
