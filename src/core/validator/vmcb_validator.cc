#include "src/core/validator/vmcb_validator.h"

#include <algorithm>

#include "src/arch/vmx_bits.h"
#include "src/support/bits.h"

namespace neco {
namespace {

constexpr VmcbField kPriorityMutationFields[] = {
    VmcbField::kInterceptVec3,  VmcbField::kInterceptVec4,
    VmcbField::kInterceptCrWrite, VmcbField::kInterceptExceptions,
    VmcbField::kGuestAsid,      VmcbField::kNestedCtl,
    VmcbField::kNestedCr3,      VmcbField::kVIntr,
    VmcbField::kEventInj,       VmcbField::kEfer,
    VmcbField::kCr0,            VmcbField::kCr4,
    VmcbField::kCsAttrib,       VmcbField::kRflags,
};

}  // namespace

VmcbValidator::VmcbValidator(SvmCaps caps) : caps_(caps) {}

ViolationList VmcbValidator::Validate(const Vmcb& vmcb) const {
  SvmCheckProfile profile = SvmCheckProfile::Spec();
  if (quirks_.suppressed_checks.count(CheckId::kSvmLmeWithoutPg) != 0) {
    profile.reject_lme_without_pg = false;
  }
  ViolationList all = CheckVmrun(vmcb, caps_, profile);
  all.erase(std::remove_if(all.begin(), all.end(),
                           [this](CheckId id) {
                             return quirks_.suppressed_checks.count(id) != 0;
                           }),
            all.end());
  return all;
}

Vmcb VmcbValidator::RoundToValid(const Vmcb& raw) const {
  Vmcb v = raw;

  // --- Control area ---
  if (v.Read(VmcbField::kGuestAsid) == 0) {
    v.Write(VmcbField::kGuestAsid, 1);
  }
  v.Write(VmcbField::kInterceptVec4,
          v.Read(VmcbField::kInterceptVec4) | SvmIntercept4::kVmrun);
  v.Write(VmcbField::kIopmBasePa,
          AlignDown(v.Read(VmcbField::kIopmBasePa), 12) &
              (caps_.MaxPhysicalAddress() >> 1));
  v.Write(VmcbField::kMsrpmBasePa,
          AlignDown(v.Read(VmcbField::kMsrpmBasePa), 12) &
              (caps_.MaxPhysicalAddress() >> 1));
  if ((v.Read(VmcbField::kNestedCtl) & 1) != 0) {
    v.Write(VmcbField::kNestedCr3,
            AlignDown(v.Read(VmcbField::kNestedCr3), 12) &
                caps_.MaxPhysicalAddress());
  }
  uint64_t event_inj = v.Read(VmcbField::kEventInj);
  if (TestBit(event_inj, 31)) {
    uint64_t type = ExtractBits(event_inj, 8, 3);
    uint64_t vector = event_inj & 0xff;
    if (type == 1 || type > 4) {
      type = 0;
    }
    if (type == 2) {
      vector = 2;
    }
    if (type == 3) {
      vector &= 31;
    }
    event_inj = vector | (type << 8) | Bit(31);
    v.Write(VmcbField::kEventInj, event_inj);
  }

  // --- Save area ---
  uint64_t efer = v.Read(VmcbField::kEfer);
  efer = (efer | Efer::kSvme) & ~Efer::kReservedMask;
  uint64_t cr0 = v.Read(VmcbField::kCr0) & MaskLow(32);
  if ((cr0 & Cr0::kCd) == 0 && (cr0 & Cr0::kNw) != 0) {
    cr0 &= ~Cr0::kNw;
  }
  uint64_t cr4 = v.Read(VmcbField::kCr4) & ~Cr4::kReservedMask & ~Cr4::kVmxe;

  const bool lme = (efer & Efer::kLme) != 0;
  const bool pg = (cr0 & Cr0::kPg) != 0;
  if (lme && pg) {
    cr4 |= Cr4::kPae;
    cr0 |= Cr0::kPe;
    efer |= Efer::kLma;
    uint16_t cs_attrib = static_cast<uint16_t>(v.Read(VmcbField::kCsAttrib));
    if (TestBit(cs_attrib, 9) && TestBit(cs_attrib, 10)) {
      cs_attrib = static_cast<uint16_t>(ClearBit(cs_attrib, 10));
      v.Write(VmcbField::kCsAttrib, cs_attrib);
    }
  } else {
    // A strict spec reading also clears LME when paging is off (the
    // ambiguous state real silicon accepts; see SvmCheckProfile).
    if (lme && !pg) {
      efer &= ~Efer::kLme;
    }
    efer &= ~Efer::kLma;
  }
  v.Write(VmcbField::kEfer, efer);
  v.Write(VmcbField::kCr0, cr0);
  v.Write(VmcbField::kCr4, cr4);
  v.Write(VmcbField::kCr3,
          v.Read(VmcbField::kCr3) & caps_.MaxPhysicalAddress());
  v.Write(VmcbField::kDr6, v.Read(VmcbField::kDr6) & MaskLow(32));
  v.Write(VmcbField::kDr7, v.Read(VmcbField::kDr7) & MaskLow(32));
  v.Write(VmcbField::kRflags,
          (v.Read(VmcbField::kRflags) | Rflags::kFixed1) &
              ~Rflags::kReservedMask);
  return v;
}

void VmcbValidator::BoundaryMutate(Vmcb& vmcb, ByteReader& directives) const {
  const auto table = VmcbFieldTable();
  const unsigned num_fields = 1 + static_cast<unsigned>(directives.Below(3));
  for (unsigned i = 0; i < num_fields; ++i) {
    const VmcbFieldInfo* info = nullptr;
    if (directives.Chance(1, 2)) {
      const size_t pick = directives.Below(
          sizeof(kPriorityMutationFields) / sizeof(VmcbField));
      info = FindVmcbField(kPriorityMutationFields[pick]);
    } else {
      info = &table[directives.Below(table.size())];
    }
    if (info == nullptr) {
      continue;
    }
    const unsigned num_bits = 1 + static_cast<unsigned>(directives.Below(8));
    uint64_t value = vmcb.Read(info->field);
    for (unsigned b = 0; b < num_bits; ++b) {
      value = FlipBit(value,
                      static_cast<unsigned>(directives.Below(info->bits)));
    }
    vmcb.Write(info->field, value);
  }
}

Vmcb VmcbValidator::GenerateBoundaryState(ByteReader& image,
                                          ByteReader& directives) const {
  std::vector<uint8_t> bits(Vmcb::BitImageSize());
  for (auto& b : bits) {
    b = image.U8();
  }
  Vmcb raw;
  raw.FromBitImage(bits);
  Vmcb rounded = RoundToValid(raw);
  BoundaryMutate(rounded, directives);
  return rounded;
}

}  // namespace neco
