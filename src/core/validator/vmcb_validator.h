// The VM state validator — AMD side.
//
// Same recipe as the Intel validator, over the VMCB and the APM's VMRUN
// consistency rules: judge (Validate), round to a VMRUN-able state
// (RoundToValid), and perturb back across the boundary (BoundaryMutate).
#ifndef SRC_CORE_VALIDATOR_VMCB_VALIDATOR_H_
#define SRC_CORE_VALIDATOR_VMCB_VALIDATOR_H_

#include <set>

#include "src/arch/vmcb.h"
#include "src/cpu/svm_checks.h"
#include "src/support/byte_reader.h"

namespace neco {

struct SvmQuirkTable {
  std::set<CheckId> suppressed_checks;
};

class VmcbValidator {
 public:
  explicit VmcbValidator(SvmCaps caps = SvmCaps{});

  const SvmCaps& caps() const { return caps_; }
  void set_caps(SvmCaps caps) { caps_ = caps; }

  ViolationList Validate(const Vmcb& vmcb) const;
  Vmcb RoundToValid(const Vmcb& raw) const;
  void BoundaryMutate(Vmcb& vmcb, ByteReader& directives) const;
  Vmcb GenerateBoundaryState(ByteReader& image, ByteReader& directives) const;

  SvmQuirkTable& quirks() { return quirks_; }
  const SvmQuirkTable& quirks() const { return quirks_; }

 private:
  SvmCaps caps_;
  SvmQuirkTable quirks_;
};

}  // namespace neco

#endif  // SRC_CORE_VALIDATOR_VMCB_VALIDATOR_H_
