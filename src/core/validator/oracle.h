// Hardware-as-oracle self-correction (paper Section 3.4).
//
// The validator's specification model is necessarily approximate: the
// manual documents constraints real CPUs do not enforce, CPUs silently
// round some fields, and some behaviour is undocumented outright. The
// oracle sets candidate states on the (simulated) physical CPU, attempts a
// VM entry, and compares both the verdict and the post-entry state with
// the validator's prediction. Mismatches are folded back into the
// validator's quirk table, so the model converges onto real hardware
// behaviour at runtime — "verifying a component of the fuzzer itself".
#ifndef SRC_CORE_VALIDATOR_ORACLE_H_
#define SRC_CORE_VALIDATOR_ORACLE_H_

#include "src/core/validator/vmcb_validator.h"
#include "src/core/validator/vmcs_validator.h"
#include "src/cpu/svm_cpu.h"
#include "src/cpu/vmx_cpu.h"
#include "src/support/rng.h"

namespace neco {

struct OracleStats {
  uint64_t comparisons = 0;
  uint64_t verdict_mismatches = 0;  // Valid/invalid disagreement.
  uint64_t state_mismatches = 0;    // Post-entry field disagreement.
  uint64_t checks_suppressed = 0;   // Quirks learned: over-strict checks.
  uint64_t fixups_learned = 0;      // Quirks learned: silent roundings.
};

class VmxHardwareOracle {
 public:
  VmxHardwareOracle(VmxCpu& cpu, VmcsValidator& validator)
      : cpu_(cpu), validator_(validator) {}

  // Compare prediction vs. hardware for one candidate state, learning
  // quirks on mismatch. Returns true if prediction and hardware agreed.
  bool VerifyOnce(const Vmcs& candidate);

  // Calibration pass: run `n` boundary states derived from `rng` through
  // VerifyOnce. Returns the number of mismatches encountered (expected to
  // fall to zero as the quirk table fills).
  uint64_t Calibrate(Rng& rng, size_t n);

  const OracleStats& stats() const { return stats_; }

 private:
  VmxCpu& cpu_;
  VmcsValidator& validator_;
  OracleStats stats_;
};

class SvmHardwareOracle {
 public:
  SvmHardwareOracle(SvmCpu& cpu, VmcbValidator& validator)
      : cpu_(cpu), validator_(validator) {}

  bool VerifyOnce(const Vmcb& candidate);
  uint64_t Calibrate(Rng& rng, size_t n);
  const OracleStats& stats() const { return stats_; }

 private:
  SvmCpu& cpu_;
  VmcbValidator& validator_;
  OracleStats stats_;
};

}  // namespace neco

#endif  // SRC_CORE_VALIDATOR_ORACLE_H_
