#include "src/core/validator/vmcs_validator.h"

#include <algorithm>

#include "src/arch/vmx_bits.h"
#include "src/support/bits.h"

namespace neco {
namespace {

// Fields whose corruption is most likely to reach error-prone hypervisor
// logic: execution controls, access-rights bytes, and the state fields the
// discovered CVEs hinge on (paper Section 4.3, "focusing bit flips on
// security-critical areas").
constexpr VmcsField kPriorityMutationFields[] = {
    VmcsField::kPinBasedVmExecControl,
    VmcsField::kCpuBasedVmExecControl,
    VmcsField::kSecondaryVmExecControl,
    VmcsField::kVmExitControls,
    VmcsField::kVmEntryControls,
    VmcsField::kExceptionBitmap,
    VmcsField::kEptPointer,
    VmcsField::kVmEntryIntrInfoField,
    VmcsField::kVmEntryMsrLoadCount,
    VmcsField::kGuestCsArBytes,
    VmcsField::kGuestSsArBytes,
    VmcsField::kGuestDsArBytes,
    VmcsField::kGuestEsArBytes,
    VmcsField::kGuestTrArBytes,
    VmcsField::kGuestLdtrArBytes,
    VmcsField::kGuestCr0,
    VmcsField::kGuestCr4,
    VmcsField::kGuestIa32Efer,
    VmcsField::kGuestRflags,
    VmcsField::kGuestActivityState,
    VmcsField::kGuestInterruptibilityInfo,
    VmcsField::kGuestPendingDbgExceptions,
    VmcsField::kVmcsLinkPointer,
    VmcsField::kHostCr0,
    VmcsField::kHostCr4,
    VmcsField::kHostIa32Efer,
};

uint64_t FixPat(uint64_t pat) {
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    uint8_t type = static_cast<uint8_t>(pat >> (i * 8));
    if (type != 0 && type != 1 && type != 4 && type != 5 && type != 6 &&
        type != 7) {
      type = 6;  // Write-back.
    }
    out |= static_cast<uint64_t>(type) << (i * 8);
  }
  return out;
}

// Clamp a physical address to the supported range and the given alignment.
uint64_t ClampPhys(uint64_t addr, const VmxCapabilities& caps,
                   unsigned align_bits) {
  return AlignDown(addr, align_bits) & caps.MaxPhysicalAddress();
}

// Make a segment limit and granularity bit mutually consistent, preferring
// to adjust the limit (keeps more entropy in the AR byte).
void FixLimitGranularity(Vmcs& v, VmcsField limit_f, VmcsField ar_f) {
  uint32_t limit = static_cast<uint32_t>(v.Read(limit_f));
  uint32_t ar = static_cast<uint32_t>(v.Read(ar_f));
  if ((limit & 0xfff00000u) != 0) {
    // Big limit: needs G=1 and low 12 bits all ones.
    ar |= SegAr::kG;
    limit |= 0xfffu;
  } else if ((limit & 0xfffu) != 0xfffu) {
    ar &= ~SegAr::kG;
  }
  v.Write(limit_f, limit);
  v.Write(ar_f, ar);
}

}  // namespace

uint64_t Canonicalize(uint64_t addr) {
  if (TestBit(addr, 47)) {
    return addr | ~MaskLow(48);
  }
  return addr & MaskLow(48);
}

VmcsValidator::VmcsValidator(VmxCapabilities caps) : caps_(std::move(caps)) {}

ViolationList VmcsValidator::Validate(const Vmcs& vmcs) const {
  VmxCheckProfile profile = VmxCheckProfile::Spec();
  // Apply learned enforcement quirks to the profile-level knobs.
  if (quirks_.suppressed_checks.count(CheckId::kGuestCr4PaeForIa32e) != 0) {
    profile.enforce_cr4_pae_for_ia32e = false;
  }
  if (quirks_.suppressed_checks.count(CheckId::kGuestPendingDbgBsVsTf) != 0) {
    profile.enforce_pending_dbg_bs_vs_tf = false;
  }
  if (quirks_.suppressed_checks.count(CheckId::kTprThresholdVsVtpr) != 0) {
    profile.enforce_tpr_threshold_vs_vtpr = false;
  }
  ViolationList all = CheckVmxEntry(vmcs, caps_, profile);
  // Remove any other individually suppressed checks.
  all.erase(std::remove_if(all.begin(), all.end(),
                           [this](CheckId id) {
                             return quirks_.suppressed_checks.count(id) != 0;
                           }),
            all.end());
  return all;
}

Vmcs VmcsValidator::PredictPostEntryState(const Vmcs& vmcs) const {
  Vmcs predicted = vmcs;
  for (VmxFixupId f : quirks_.learned_fixups) {
    ApplyVmxFixup(f, predicted);
  }
  return predicted;
}

// ---------------------------------------------------------------------------
// Group 1: control fields.
// ---------------------------------------------------------------------------

void VmcsValidator::RoundControls(Vmcs& v) const {
  // Reserved bits against the capability MSRs.
  uint32_t pin = caps_.pinbased.Round(
      static_cast<uint32_t>(v.Read(VmcsField::kPinBasedVmExecControl)));
  uint32_t proc = caps_.procbased.Round(
      static_cast<uint32_t>(v.Read(VmcsField::kCpuBasedVmExecControl)));
  uint32_t sec = caps_.procbased2.Round(
      static_cast<uint32_t>(v.Read(VmcsField::kSecondaryVmExecControl)));
  uint32_t exit_ctl = caps_.exit.Round(
      static_cast<uint32_t>(v.Read(VmcsField::kVmExitControls)));
  uint32_t entry_ctl = caps_.entry.Round(
      static_cast<uint32_t>(v.Read(VmcsField::kVmEntryControls)));

  if ((proc & ProcCtl::kActivateSecondary) == 0) {
    sec = 0;  // Ignored by hardware; zero it for determinism.
  }

  // NMI coupling.
  if ((pin & PinCtl::kVirtualNmis) != 0) {
    pin |= PinCtl::kNmiExiting;
  }
  if ((pin & PinCtl::kVirtualNmis) == 0) {
    proc &= ~ProcCtl::kNmiWindowExiting;
  }
  // x2APIC mode excludes APIC-access virtualization.
  if ((sec & Proc2Ctl::kVirtX2apicMode) != 0) {
    sec &= ~Proc2Ctl::kVirtApicAccesses;
  }
  // Virtual-interrupt delivery requires external-interrupt exiting.
  if ((sec & Proc2Ctl::kVirtIntrDelivery) != 0) {
    pin |= PinCtl::kExtIntExiting;
  }
  // Posted interrupts require VID + ack-on-exit.
  if ((pin & PinCtl::kPostedInterrupts) != 0) {
    if ((caps_.procbased2.allowed1 & Proc2Ctl::kVirtIntrDelivery) == 0) {
      pin &= ~PinCtl::kPostedInterrupts;
    } else {
      sec |= Proc2Ctl::kVirtIntrDelivery;
      pin |= PinCtl::kExtIntExiting;
      exit_ctl |= ExitCtl::kAckIntrOnExit;
      v.Write(VmcsField::kPostedIntrDescAddr,
              ClampPhys(v.Read(VmcsField::kPostedIntrDescAddr), caps_, 6));
    }
  }
  // Features that depend on EPT.
  if ((sec & Proc2Ctl::kEnableEpt) == 0) {
    sec &= ~(Proc2Ctl::kUnrestrictedGuest | Proc2Ctl::kEnablePml |
             Proc2Ctl::kEnableVmfunc | Proc2Ctl::kModeBasedEptExec);
  }
  // VPID must be nonzero when enabled.
  if ((sec & Proc2Ctl::kEnableVpid) != 0 &&
      v.Read(VmcsField::kVirtualProcessorId) == 0) {
    v.Write(VmcsField::kVirtualProcessorId, 1);
  }
  // Preemption-timer save requires the timer itself.
  if ((pin & PinCtl::kPreemptionTimer) == 0) {
    exit_ctl &= ~ExitCtl::kSavePreemptionTimer;
  }
  // Secondary controls present => activate bit set (keep the controls the
  // raw input asked for rather than dropping them).
  if (sec != 0) {
    proc |= ProcCtl::kActivateSecondary;
    proc = caps_.procbased.Round(proc);
  }

  v.Write(VmcsField::kPinBasedVmExecControl, pin);
  v.Write(VmcsField::kCpuBasedVmExecControl, proc);
  v.Write(VmcsField::kSecondaryVmExecControl, sec);
  v.Write(VmcsField::kVmExitControls, exit_ctl);
  v.Write(VmcsField::kVmEntryControls, entry_ctl);

  v.Write(VmcsField::kCr3TargetCount, v.Read(VmcsField::kCr3TargetCount) % 5);

  // Bitmap and table addresses: page-aligned, within the address space.
  for (VmcsField f : {VmcsField::kIoBitmapA, VmcsField::kIoBitmapB,
                      VmcsField::kMsrBitmap, VmcsField::kVirtualApicPageAddr,
                      VmcsField::kApicAccessAddr, VmcsField::kPmlAddress,
                      VmcsField::kEptpListAddress, VmcsField::kVmreadBitmap,
                      VmcsField::kVmwriteBitmap,
                      VmcsField::kXssExitBitmap}) {
    v.Write(f, ClampPhys(v.Read(f), caps_, 12));
  }

  // EPTP: memory type, walk length, reserved bits, AD, address.
  if ((sec & Proc2Ctl::kEnableEpt) != 0) {
    uint64_t eptp = v.Read(VmcsField::kEptPointer);
    const uint64_t addr = ClampPhys(eptp, caps_, 12);
    uint64_t flags = 0;
    flags |= caps_.ept_wb_memtype ? 6 : 0;
    flags |= 3ULL << 3;  // 4-level walk.
    if (caps_.ept_ad_bits && TestBit(eptp, 6)) {
      flags |= Bit(6);
    }
    v.Write(VmcsField::kEptPointer, addr | flags);
  }

  // TPR threshold.
  if ((proc & ProcCtl::kUseTprShadow) != 0 &&
      (sec & Proc2Ctl::kVirtIntrDelivery) == 0) {
    uint64_t threshold = v.Read(VmcsField::kTprThreshold) & 0xf;
    if ((sec & Proc2Ctl::kVirtApicAccesses) == 0) {
      threshold = 0;  // Keep below the (zero) VTPR in the model.
    }
    v.Write(VmcsField::kTprThreshold, threshold);
  }

  // MSR-load/store areas: clamp counts, align addresses, keep the last
  // entry inside the physical address space.
  struct Area {
    VmcsField count;
    VmcsField addr;
  };
  for (const Area& a :
       {Area{VmcsField::kVmExitMsrStoreCount, VmcsField::kVmExitMsrStoreAddr},
        Area{VmcsField::kVmExitMsrLoadCount, VmcsField::kVmExitMsrLoadAddr},
        Area{VmcsField::kVmEntryMsrLoadCount,
             VmcsField::kVmEntryMsrLoadAddr}}) {
    uint64_t count = v.Read(a.count) % (caps_.max_msr_list_count + 1);
    // Keep generated areas small enough to stay practical.
    count %= 16;
    uint64_t addr = AlignDown(v.Read(a.addr), 4) & caps_.MaxPhysicalAddress();
    if (count != 0 && addr + count * 16 > caps_.MaxPhysicalAddress()) {
      addr = 0x10000;
    }
    v.Write(a.count, count);
    v.Write(a.addr, addr);
  }

  // Event injection.
  uint32_t intr_info =
      static_cast<uint32_t>(v.Read(VmcsField::kVmEntryIntrInfoField));
  if (TestBit(intr_info, 31)) {
    uint32_t type = ExtractBits(intr_info, 8, 3);
    uint32_t vector = intr_info & 0xff;
    if (type == 1) {
      type = 0;
    }
    if (type == 2) {
      vector = 2;
    }
    if (type == 3 || type == 6) {
      vector &= 31;
    }
    bool deliver_error = TestBit(intr_info, 11);
    const bool contributory =
        type == 3 && (vector == 8 || vector == 10 || vector == 11 ||
                      vector == 12 || vector == 13 || vector == 14 ||
                      vector == 17);
    if (!contributory) {
      deliver_error = false;
    }
    intr_info = vector | (type << 8) |
                (deliver_error ? Bit(11) : 0) | (1u << 31);
    v.Write(VmcsField::kVmEntryIntrInfoField, intr_info);
    v.Write(VmcsField::kVmEntryExceptionErrorCode,
            v.Read(VmcsField::kVmEntryExceptionErrorCode) & 0x7fff);
    if (type == 4 || type == 5 || type == 6) {
      uint64_t len = v.Read(VmcsField::kVmEntryInstructionLen);
      if (len == 0 || len > 15) {
        len = 1 + (len % 15);
      }
      v.Write(VmcsField::kVmEntryInstructionLen, len);
    }
  }
}

// ---------------------------------------------------------------------------
// Group 2: host-state fields (inter-group: reads the rounded exit controls).
// ---------------------------------------------------------------------------

void VmcsValidator::RoundHostState(Vmcs& v) const {
  const uint32_t exit_ctl =
      static_cast<uint32_t>(v.Read(VmcsField::kVmExitControls));
  const bool host64 = (exit_ctl & ExitCtl::kHostAddrSpaceSize) != 0;

  uint64_t cr0 = v.Read(VmcsField::kHostCr0);
  cr0 = (cr0 | caps_.cr0_fixed0) & ~Cr0::kReservedMask & caps_.cr0_fixed1;
  v.Write(VmcsField::kHostCr0, cr0);

  uint64_t cr4 = v.Read(VmcsField::kHostCr4);
  cr4 = (cr4 | caps_.cr4_fixed0) & ~Cr4::kReservedMask;
  if (host64) {
    cr4 |= Cr4::kPae;
  } else {
    cr4 &= ~Cr4::kPcide;
  }
  v.Write(VmcsField::kHostCr4, cr4);

  v.Write(VmcsField::kHostCr3,
          v.Read(VmcsField::kHostCr3) & caps_.MaxPhysicalAddress());

  for (VmcsField f : {VmcsField::kHostFsBase, VmcsField::kHostGsBase,
                      VmcsField::kHostTrBase, VmcsField::kHostGdtrBase,
                      VmcsField::kHostIdtrBase,
                      VmcsField::kHostIa32SysenterEsp,
                      VmcsField::kHostIa32SysenterEip}) {
    v.Write(f, Canonicalize(v.Read(f)));
  }

  // Selectors: clear RPL/TI; CS and TR must be non-null (SS too for
  // 32-bit hosts).
  for (VmcsField f :
       {VmcsField::kHostCsSelector, VmcsField::kHostSsSelector,
        VmcsField::kHostDsSelector, VmcsField::kHostEsSelector,
        VmcsField::kHostFsSelector, VmcsField::kHostGsSelector,
        VmcsField::kHostTrSelector}) {
    v.Write(f, v.Read(f) & ~0x7ULL);
  }
  if (v.Read(VmcsField::kHostCsSelector) == 0) {
    v.Write(VmcsField::kHostCsSelector, 0x08);
  }
  if (v.Read(VmcsField::kHostTrSelector) == 0) {
    v.Write(VmcsField::kHostTrSelector, 0x18);
  }
  if (!host64 && v.Read(VmcsField::kHostSsSelector) == 0) {
    v.Write(VmcsField::kHostSsSelector, 0x10);
  }

  if (host64) {
    v.Write(VmcsField::kHostRip, Canonicalize(v.Read(VmcsField::kHostRip)));
  } else {
    v.Write(VmcsField::kHostRip,
            v.Read(VmcsField::kHostRip) & MaskLow(32));
  }

  if ((exit_ctl & ExitCtl::kLoadEfer) != 0) {
    uint64_t efer = v.Read(VmcsField::kHostIa32Efer) & ~Efer::kReservedMask;
    efer = AssignBit(efer, 10, host64);  // LMA.
    efer = AssignBit(efer, 8, host64);   // LME.
    v.Write(VmcsField::kHostIa32Efer, efer);
  }
  if ((exit_ctl & ExitCtl::kLoadPat) != 0) {
    v.Write(VmcsField::kHostIa32Pat, FixPat(v.Read(VmcsField::kHostIa32Pat)));
  }
}

// ---------------------------------------------------------------------------
// Group 3: guest-state fields (inter-group: reads rounded entry controls
// and secondary controls).
// ---------------------------------------------------------------------------

void VmcsValidator::RoundGuestState(Vmcs& v) const {
  const uint32_t entry_ctl =
      static_cast<uint32_t>(v.Read(VmcsField::kVmEntryControls));
  const uint32_t proc =
      static_cast<uint32_t>(v.Read(VmcsField::kCpuBasedVmExecControl));
  const uint32_t sec =
      (proc & ProcCtl::kActivateSecondary) != 0
          ? static_cast<uint32_t>(v.Read(VmcsField::kSecondaryVmExecControl))
          : 0;
  const bool unrestricted = (sec & Proc2Ctl::kUnrestrictedGuest) != 0;
  const bool ia32e = (entry_ctl & EntryCtl::kIa32eModeGuest) != 0;
  const bool ept = (sec & Proc2Ctl::kEnableEpt) != 0;

  // --- CR0 / CR4 / CR3 ---
  uint64_t cr0 = v.Read(VmcsField::kGuestCr0);
  uint64_t fixed0 = caps_.cr0_fixed0;
  if (unrestricted) {
    fixed0 &= ~(Cr0::kPe | Cr0::kPg);
  }
  cr0 = (cr0 | fixed0) & ~Cr0::kReservedMask & caps_.cr0_fixed1;
  if ((cr0 & Cr0::kPg) != 0 && (cr0 & Cr0::kPe) == 0) {
    cr0 |= Cr0::kPe;
  }
  if ((cr0 & Cr0::kNw) != 0 && (cr0 & Cr0::kCd) == 0) {
    cr0 &= ~Cr0::kNw;
  }
  uint64_t cr4 = v.Read(VmcsField::kGuestCr4);
  cr4 = (cr4 | caps_.cr4_fixed0) & ~Cr4::kReservedMask;
  if (ia32e) {
    // The paper's running example (Section 4.3): IA-32e mode requires
    // CR4.PAE per the architecture; force the bit to satisfy it.
    cr4 |= Cr4::kPae;
    cr0 |= Cr0::kPg | Cr0::kPe;
  } else {
    cr4 &= ~Cr4::kPcide;
  }
  v.Write(VmcsField::kGuestCr0, cr0);
  v.Write(VmcsField::kGuestCr4, cr4);
  v.Write(VmcsField::kGuestCr3,
          v.Read(VmcsField::kGuestCr3) & caps_.MaxPhysicalAddress());

  // --- EFER ---
  if ((entry_ctl & EntryCtl::kLoadEfer) != 0) {
    uint64_t efer = v.Read(VmcsField::kGuestIa32Efer) & ~Efer::kReservedMask;
    efer = AssignBit(efer, 10, ia32e);  // LMA mirrors the entry control.
    if ((cr0 & Cr0::kPg) != 0) {
      efer = AssignBit(efer, 8, ia32e);  // LME == LMA when paging.
    }
    v.Write(VmcsField::kGuestIa32Efer, efer);
  }

  // --- Debug state ---
  if ((entry_ctl & EntryCtl::kLoadDebugControls) != 0) {
    v.Write(VmcsField::kGuestIa32Debugctl,
            v.Read(VmcsField::kGuestIa32Debugctl) & 0xdfc3ULL);
    v.Write(VmcsField::kGuestDr7, v.Read(VmcsField::kGuestDr7) & MaskLow(32));
  }

  // --- RFLAGS ---
  uint64_t rflags = v.Read(VmcsField::kGuestRflags);
  rflags = (rflags | Rflags::kFixed1) & ~Rflags::kReservedMask;
  if (ia32e || (cr0 & Cr0::kPe) == 0) {
    rflags &= ~Rflags::kVm;
  }
  const uint32_t intr_info =
      static_cast<uint32_t>(v.Read(VmcsField::kVmEntryIntrInfoField));
  if (TestBit(intr_info, 31) && ExtractBits(intr_info, 8, 3) == 0) {
    rflags |= Rflags::kIf;
  }
  v.Write(VmcsField::kGuestRflags, rflags);
  const bool v86 = (rflags & Rflags::kVm) != 0;

  // --- Segments ---
  struct Seg {
    VmcsField sel, base, limit, ar;
    bool is_cs, is_ss, fit32;
  };
  constexpr Seg kSegs[] = {
      {VmcsField::kGuestCsSelector, VmcsField::kGuestCsBase,
       VmcsField::kGuestCsLimit, VmcsField::kGuestCsArBytes, true, false,
       true},
      {VmcsField::kGuestSsSelector, VmcsField::kGuestSsBase,
       VmcsField::kGuestSsLimit, VmcsField::kGuestSsArBytes, false, true,
       true},
      {VmcsField::kGuestDsSelector, VmcsField::kGuestDsBase,
       VmcsField::kGuestDsLimit, VmcsField::kGuestDsArBytes, false, false,
       true},
      {VmcsField::kGuestEsSelector, VmcsField::kGuestEsBase,
       VmcsField::kGuestEsLimit, VmcsField::kGuestEsArBytes, false, false,
       true},
      {VmcsField::kGuestFsSelector, VmcsField::kGuestFsBase,
       VmcsField::kGuestFsLimit, VmcsField::kGuestFsArBytes, false, false,
       false},
      {VmcsField::kGuestGsSelector, VmcsField::kGuestGsBase,
       VmcsField::kGuestGsLimit, VmcsField::kGuestGsArBytes, false, false,
       false},
  };
  if (v86) {
    for (const Seg& s : kSegs) {
      const uint64_t sel = v.Read(s.sel) & 0xffff;
      v.Write(s.base, sel << 4);
      v.Write(s.limit, 0xffff);
      v.Write(s.ar, 0xf3);
    }
  } else {
    for (const Seg& s : kSegs) {
      uint32_t ar = static_cast<uint32_t>(v.Read(s.ar));
      if (s.is_cs) {
        ar &= ~SegAr::kUnusable;  // CS must be usable.
      }
      if (!SegAr::Usable(ar)) {
        v.Write(s.ar, SegAr::kUnusable);
        continue;
      }
      ar &= ~(SegAr::kReservedMask);  // Clear reserved bits.
      ar |= SegAr::kP | SegAr::kS;
      uint32_t type = SegAr::Type(ar);
      if (s.is_cs) {
        type = (type | 9) & 0xf;  // 9/11/13/15: accessed code.
        if (ia32e && (ar & SegAr::kL) != 0) {
          ar &= ~SegAr::kDb;
        }
        // CS.DPL vs SS.DPL is repaired in a post-pass once SS's final
        // state is known (the loop visits CS first).
      } else if (s.is_ss) {
        type = (type & 0x4) | 3;  // 3 or 7: read/write, accessed.
        if (!unrestricted) {
          // SS.DPL == SS.RPL == CS.RPL.
          const uint64_t cs_sel = v.Read(VmcsField::kGuestCsSelector);
          uint64_t sel = (v.Read(s.sel) & ~0x3ULL) | (cs_sel & 0x3);
          v.Write(s.sel, sel);
          ar = (ar & ~SegAr::kDplMask) |
               (static_cast<uint32_t>(cs_sel & 0x3) << SegAr::kDplShift);
        }
      } else {
        type |= 1;  // Accessed.
        if ((type & 0x8) != 0) {
          type |= 2;  // Code segments must be readable.
        }
        // Non-conforming data segment: DPL must be >= RPL.
        if (!unrestricted && (type & 0x8) == 0 && (type & 0x4) == 0) {
          const uint32_t rpl = static_cast<uint32_t>(v.Read(s.sel)) & 0x3;
          if (SegAr::Dpl(ar) < rpl) {
            ar = (ar & ~SegAr::kDplMask) | (rpl << SegAr::kDplShift);
          }
        }
      }
      ar = (ar & ~SegAr::kTypeMask) | type;
      v.Write(s.ar, ar);
      if (s.fit32) {
        v.Write(s.base, v.Read(s.base) & MaskLow(32));
      } else {
        v.Write(s.base, Canonicalize(v.Read(s.base)));
      }
      FixLimitGranularity(v, s.limit, s.ar);
    }
    // Post-pass: align CS.DPL with SS.DPL for non-conforming CS, now that
    // SS has reached its final rounded state.
    if (!unrestricted) {
      const uint32_t ss_ar =
          static_cast<uint32_t>(v.Read(VmcsField::kGuestSsArBytes));
      uint32_t cs_ar =
          static_cast<uint32_t>(v.Read(VmcsField::kGuestCsArBytes));
      const uint32_t cs_type = SegAr::Type(cs_ar);
      if (SegAr::Usable(ss_ar) && (cs_type == 9 || cs_type == 11)) {
        cs_ar = (cs_ar & ~SegAr::kDplMask) | (ss_ar & SegAr::kDplMask);
        v.Write(VmcsField::kGuestCsArBytes, cs_ar);
      }
    }
  }

  // TR: always usable, system type 11 (or 3 outside IA-32e), TI clear.
  {
    uint32_t ar = static_cast<uint32_t>(v.Read(VmcsField::kGuestTrArBytes));
    ar &= ~(SegAr::kUnusable | SegAr::kReservedMask | SegAr::kS);
    uint32_t type = SegAr::Type(ar);
    if (ia32e) {
      type = 11;
    } else if (type != 3 && type != 11) {
      type = 11;
    }
    ar = (ar & ~SegAr::kTypeMask) | type | SegAr::kP;
    v.Write(VmcsField::kGuestTrArBytes, ar);
    v.Write(VmcsField::kGuestTrSelector,
            v.Read(VmcsField::kGuestTrSelector) & ~0x4ULL);
    v.Write(VmcsField::kGuestTrBase,
            Canonicalize(v.Read(VmcsField::kGuestTrBase)));
    FixLimitGranularity(v, VmcsField::kGuestTrLimit,
                        VmcsField::kGuestTrArBytes);
  }
  // LDTR: if usable, force type 2 system descriptor.
  {
    uint32_t ar = static_cast<uint32_t>(v.Read(VmcsField::kGuestLdtrArBytes));
    if (SegAr::Usable(ar)) {
      ar &= ~(SegAr::kReservedMask | SegAr::kS);
      ar = (ar & ~SegAr::kTypeMask) | 2 | SegAr::kP;
      v.Write(VmcsField::kGuestLdtrArBytes, ar);
      v.Write(VmcsField::kGuestLdtrSelector,
              v.Read(VmcsField::kGuestLdtrSelector) & ~0x4ULL);
      v.Write(VmcsField::kGuestLdtrBase,
              Canonicalize(v.Read(VmcsField::kGuestLdtrBase)));
    }
  }

  // GDTR / IDTR.
  v.Write(VmcsField::kGuestGdtrBase,
          Canonicalize(v.Read(VmcsField::kGuestGdtrBase)));
  v.Write(VmcsField::kGuestIdtrBase,
          Canonicalize(v.Read(VmcsField::kGuestIdtrBase)));
  v.Write(VmcsField::kGuestGdtrLimit,
          v.Read(VmcsField::kGuestGdtrLimit) & 0xffff);
  v.Write(VmcsField::kGuestIdtrLimit,
          v.Read(VmcsField::kGuestIdtrLimit) & 0xffff);

  // RIP.
  const uint32_t cs_ar =
      static_cast<uint32_t>(v.Read(VmcsField::kGuestCsArBytes));
  if (!ia32e || (cs_ar & SegAr::kL) == 0) {
    v.Write(VmcsField::kGuestRip, v.Read(VmcsField::kGuestRip) & MaskLow(32));
  } else {
    v.Write(VmcsField::kGuestRip, Canonicalize(v.Read(VmcsField::kGuestRip)));
  }

  // Activity / interruptibility.
  uint64_t activity = v.Read(VmcsField::kGuestActivityState) % 4;
  if (activity != 0 &&
      (caps_.supported_activity_states & (1u << (activity - 1))) == 0) {
    activity = 0;
  }
  if (TestBit(intr_info, 31) &&
      (activity == static_cast<uint64_t>(ActivityState::kShutdown) ||
       activity == static_cast<uint64_t>(ActivityState::kWaitForSipi))) {
    activity = 0;
  }
  uint32_t interruptibility = static_cast<uint32_t>(
      v.Read(VmcsField::kGuestInterruptibilityInfo));
  interruptibility &= ~Interruptibility::kReservedMask;
  if (activity != 0) {
    interruptibility &= ~(Interruptibility::kStiBlocking |
                          Interruptibility::kMovSsBlocking);
  }
  if ((interruptibility & Interruptibility::kStiBlocking) != 0 &&
      (interruptibility & Interruptibility::kMovSsBlocking) != 0) {
    interruptibility &= ~Interruptibility::kMovSsBlocking;
  }
  if ((rflags & Rflags::kIf) == 0) {
    interruptibility &= ~Interruptibility::kStiBlocking;
  }
  v.Write(VmcsField::kGuestActivityState, activity);
  v.Write(VmcsField::kGuestInterruptibilityInfo, interruptibility);

  // Pending debug exceptions.
  uint64_t pending = v.Read(VmcsField::kGuestPendingDbgExceptions) &
                     ~PendingDbg::kReservedMask;
  const bool blocking =
      (interruptibility & (Interruptibility::kStiBlocking |
                           Interruptibility::kMovSsBlocking)) != 0 ||
      activity == static_cast<uint64_t>(ActivityState::kHlt);
  const bool tf = (rflags & Rflags::kTf) != 0;
  const bool btf = TestBit(v.Read(VmcsField::kGuestIa32Debugctl), 1);
  if (blocking) {
    if (tf && !btf) {
      pending |= PendingDbg::kBs;
    } else {
      pending &= ~PendingDbg::kBs;
    }
  }
  v.Write(VmcsField::kGuestPendingDbgExceptions, pending);

  // Link pointer: the model only supports the no-shadow value.
  if (v.Read(VmcsField::kVmcsLinkPointer) != ~0ULL) {
    v.Write(VmcsField::kVmcsLinkPointer, ~0ULL);
  }

  // PDPTEs for PAE-without-EPT guests.
  if ((cr0 & Cr0::kPg) != 0 && (cr4 & Cr4::kPae) != 0 && !ia32e && !ept) {
    for (VmcsField f : {VmcsField::kGuestPdptr0, VmcsField::kGuestPdptr1,
                        VmcsField::kGuestPdptr2, VmcsField::kGuestPdptr3}) {
      uint64_t pdpte = v.Read(f);
      if (TestBit(pdpte, 0)) {
        // Keep the page address, clear the reserved bits (2:1, 8:5), keep P.
        pdpte = (AlignDown(pdpte, 12) & caps_.MaxPhysicalAddress()) | 1;
        v.Write(f, pdpte);
      }
    }
  }

  if ((entry_ctl & EntryCtl::kLoadPat) != 0) {
    v.Write(VmcsField::kGuestIa32Pat,
            FixPat(v.Read(VmcsField::kGuestIa32Pat)));
  }
}

Vmcs VmcsValidator::RoundToValid(const Vmcs& raw) const {
  Vmcs v = raw;
  // Sequential group order with unidirectional dependencies (Section 4.3):
  // controls first, host second, guest third.
  RoundControls(v);
  RoundHostState(v);
  RoundGuestState(v);
  return v;
}

void VmcsValidator::BoundaryMutate(Vmcs& vmcs, ByteReader& directives) const {
  const auto table = VmcsFieldTable();
  const unsigned num_fields = 1 + static_cast<unsigned>(directives.Below(3));
  for (unsigned i = 0; i < num_fields; ++i) {
    const VmcsFieldInfo* info = nullptr;
    if (directives.Chance(1, 2)) {
      // Security-critical bias.
      const size_t pick = directives.Below(
          sizeof(kPriorityMutationFields) / sizeof(VmcsField));
      info = FindVmcsField(kPriorityMutationFields[pick]);
    } else {
      // Uniform over mutable fields.
      for (int attempts = 0; attempts < 8; ++attempts) {
        const VmcsFieldInfo& cand = table[directives.Below(table.size())];
        if (cand.group != VmcsFieldGroup::kReadOnlyData) {
          info = &cand;
          break;
        }
      }
    }
    if (info == nullptr) {
      continue;
    }
    const unsigned num_bits = 1 + static_cast<unsigned>(directives.Below(8));
    uint64_t value = vmcs.Read(info->field);
    for (unsigned b = 0; b < num_bits; ++b) {
      value = FlipBit(value, static_cast<unsigned>(
                                 directives.Below(info->bits)));
    }
    vmcs.Write(info->field, value);
  }
}

Vmcs VmcsValidator::GenerateBoundaryState(ByteReader& image,
                                          ByteReader& directives) const {
  // Raw VMCS content straight from fuzzing-input bytes.
  std::vector<uint8_t> bits(Vmcs::BitImageSize());
  for (auto& b : bits) {
    b = image.U8();
  }
  Vmcs raw;
  raw.FromBitImage(bits);
  // Round to the valid region, then step back across the boundary.
  Vmcs rounded = RoundToValid(raw);
  BoundaryMutate(rounded, directives);
  return rounded;
}

}  // namespace neco
