#include "src/core/validator/oracle.h"

#include "src/fuzz/mutator.h"
#include "src/support/byte_reader.h"

namespace neco {

bool VmxHardwareOracle::VerifyOnce(const Vmcs& candidate) {
  ++stats_.comparisons;
  const ViolationList predicted = validator_.Validate(candidate);

  Vmcs hw_state = candidate;
  hw_state.set_launch_state(Vmcs::LaunchState::kClear);
  const EntryOutcome hw = cpu_.TryEntry(hw_state, /*launch=*/true);

  bool agreed = true;
  if (hw.entered() && !predicted.empty()) {
    // The model rejected a state silicon accepts: the model over-enforces a
    // documented-but-unimplemented constraint. Suppress it.
    agreed = false;
    ++stats_.verdict_mismatches;
    validator_.quirks().suppressed_checks.insert(predicted.front());
    ++stats_.checks_suppressed;
  } else if (!hw.entered() && predicted.empty()) {
    // The model missed a constraint silicon enforces. There is no generic
    // automatic repair; record the gap (in this repository's model the
    // hardware check set is a subset of the spec model, so this indicates
    // a genuine validator bug — tests inject such bugs deliberately).
    agreed = false;
    ++stats_.verdict_mismatches;
  }

  if (hw.entered()) {
    // Compare post-entry state against the prediction and learn silent
    // fixups one at a time.
    Vmcs predicted_state = validator_.PredictPostEntryState(candidate);
    predicted_state.set_launch_state(hw_state.launch_state());
    if (!(predicted_state == hw_state)) {
      agreed = false;
      ++stats_.state_mismatches;
      for (size_t i = 0; i < static_cast<size_t>(VmxFixupId::kCount); ++i) {
        const auto fixup = static_cast<VmxFixupId>(i);
        if (validator_.quirks().learned_fixups.count(fixup) != 0) {
          continue;
        }
        Vmcs trial = predicted_state;
        ApplyVmxFixup(fixup, trial);
        if (trial == hw_state) {
          validator_.quirks().learned_fixups.insert(fixup);
          ++stats_.fixups_learned;
          break;
        }
        // A single fixup may not close the gap alone; try accumulating.
        ApplyVmxFixup(fixup, predicted_state);
        if (predicted_state == hw_state) {
          validator_.quirks().learned_fixups.insert(fixup);
          ++stats_.fixups_learned;
          break;
        }
      }
    }
  }
  return agreed;
}

uint64_t VmxHardwareOracle::Calibrate(Rng& rng, size_t n) {
  uint64_t mismatches = 0;
  for (size_t i = 0; i < n; ++i) {
    FuzzInput image = MakeRandomInput(rng);
    FuzzInput directive = MakeRandomInput(rng);
    ByteReader image_reader(image);
    ByteReader directive_reader(directive);
    const Vmcs candidate =
        validator_.GenerateBoundaryState(image_reader, directive_reader);
    if (!VerifyOnce(candidate)) {
      ++mismatches;
    }
  }
  return mismatches;
}

bool SvmHardwareOracle::VerifyOnce(const Vmcb& candidate) {
  ++stats_.comparisons;
  const ViolationList predicted = validator_.Validate(candidate);

  Vmcb hw_state = candidate;
  const bool saved_svme = cpu_.svme();
  cpu_.set_svme(true);
  const VmrunOutcome hw = cpu_.Vmrun(hw_state);
  cpu_.set_svme(saved_svme);

  bool agreed = true;
  if (hw.entered() && !predicted.empty()) {
    agreed = false;
    ++stats_.verdict_mismatches;
    validator_.quirks().suppressed_checks.insert(predicted.front());
    ++stats_.checks_suppressed;
  } else if (!hw.entered() && predicted.empty()) {
    agreed = false;
    ++stats_.verdict_mismatches;
  }
  return agreed;
}

uint64_t SvmHardwareOracle::Calibrate(Rng& rng, size_t n) {
  uint64_t mismatches = 0;
  for (size_t i = 0; i < n; ++i) {
    FuzzInput image = MakeRandomInput(rng);
    FuzzInput directive = MakeRandomInput(rng);
    ByteReader image_reader(image);
    ByteReader directive_reader(directive);
    const Vmcb candidate =
        validator_.GenerateBoundaryState(image_reader, directive_reader);
    if (!VerifyOnce(candidate)) {
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace neco
