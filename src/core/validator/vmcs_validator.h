// The VM state validator (paper Sections 3.4 and 4.3) — Intel side.
//
// The validator embodies an approximate model of the VT-x specification
// (the role Bochs's VMenterLoadCheck* routines play in the original): it
// can judge a VMCS (Validate), round an arbitrary VMCS to a specification-
// compliant one (RoundToValid), and then perturb the rounded state back
// across the validity boundary with targeted bit flips (BoundaryMutate).
//
// Rounding is sequential over the three field groups — control fields,
// host-state fields, guest-state fields — with intra-group corrections
// first and inter-group constraints resolved against already-processed
// groups, exactly as Section 4.3 describes; dependencies form a DAG, so a
// single pass converges.
//
// The quirk table records deviations between this model and real hardware
// learned by the oracle (Section 3.4): checks silicon does not enforce and
// silent post-entry fixups silicon applies.
#ifndef SRC_CORE_VALIDATOR_VMCS_VALIDATOR_H_
#define SRC_CORE_VALIDATOR_VMCS_VALIDATOR_H_

#include <set>

#include "src/arch/vmcs.h"
#include "src/arch/vmx_caps.h"
#include "src/cpu/vmx_checks.h"
#include "src/support/byte_reader.h"

namespace neco {

struct VmxQuirkTable {
  std::set<CheckId> suppressed_checks;
  std::set<VmxFixupId> learned_fixups;
};

class VmcsValidator {
 public:
  explicit VmcsValidator(VmxCapabilities caps);

  const VmxCapabilities& caps() const { return caps_; }

  // Retarget the capability model (e.g. after a vCPU reconfiguration)
  // while preserving the learned quirk table.
  void set_caps(VmxCapabilities caps) { caps_ = std::move(caps); }

  // Full specification-model validity check, with quirk-table suppression
  // applied. Empty result means "the model predicts VM entry succeeds".
  ViolationList Validate(const Vmcs& vmcs) const;

  // Predict the post-entry VMCS state (silent hardware fixups from the
  // quirk table applied), for oracle comparison.
  Vmcs PredictPostEntryState(const Vmcs& vmcs) const;

  // Round an arbitrary VMCS to a specification-compliant state.
  Vmcs RoundToValid(const Vmcs& raw) const;

  // Flip 1..3 fields x 1..8 bits, bounded by each field's width, biased
  // toward security-critical fields (controls, access rights, activity /
  // interruptibility state). Read-only fields are never touched.
  void BoundaryMutate(Vmcs& vmcs, ByteReader& directives) const;

  // raw-bytes -> rounded -> boundary-mutated, the full generation recipe.
  Vmcs GenerateBoundaryState(ByteReader& image, ByteReader& directives) const;

  VmxQuirkTable& quirks() { return quirks_; }
  const VmxQuirkTable& quirks() const { return quirks_; }

  // Rounding stages, exposed for tests (sequential group order).
  void RoundControls(Vmcs& v) const;
  void RoundHostState(Vmcs& v) const;
  void RoundGuestState(Vmcs& v) const;

 private:
  VmxCapabilities caps_;
  VmxQuirkTable quirks_;
};

// Sign-extend bit 47 so the address becomes canonical while preserving the
// low 48 bits (the validator's canonical-rounding primitive).
uint64_t Canonicalize(uint64_t addr);

}  // namespace neco

#endif  // SRC_CORE_VALIDATOR_VMCS_VALIDATOR_H_
