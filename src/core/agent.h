// The agent program (paper Section 4.5): the central coordinator between
// the fuzzer (AFL++ role), the fuzz-harness VM, and the target L0
// hypervisor.
//
// Per test case the agent:
//  1. partitions the 2 KiB fuzzing input among the VM-generator
//     components,
//  2. applies the vCPU configuration through the hypervisor's adapter
//     (module reload + VM boot),
//  3. embeds the generated VM state and harness program into the
//     fuzz-harness VM (revision word, MSR-load area and bitmap content in
//     guest memory; VMCS12/VMCB12 via emulated vmwrite),
//  4. drives the two-phase execution, collecting the coverage trace,
//  5. collects sanitizer reports and watches for host crashes,
//     restarting the hypervisor when the watchdog fires.
//
// The three VM-generator components can be disabled independently for the
// Table 3 / Figure 4 ablations.
#ifndef SRC_CORE_AGENT_H_
#define SRC_CORE_AGENT_H_

#include <map>
#include <memory>
#include <string>

#include "src/core/config/configurator.h"
#include "src/core/harness/harness.h"
#include "src/core/partition.h"
#include "src/core/repro/crash_store.h"
#include "src/core/snapshot_cache.h"
#include "src/core/validator/oracle.h"
#include "src/core/validator/vmcb_validator.h"
#include "src/core/validator/vmcs_validator.h"
#include "src/fuzz/fuzzer.h"
#include "src/hv/hypervisor.h"

namespace neco {

struct AgentOptions {
  Arch arch = Arch::kIntel;
  // Component toggles (Table 3 ablation).
  bool use_harness = true;
  bool use_validator = true;
  bool use_configurator = true;
  // Verify the validator against the physical CPU every N executions
  // (0 disables oracle self-correction).
  uint32_t oracle_interval = 64;
  // Directory for persisted crash reports and inputs (Section 4.5's
  // "designated directory"); empty keeps findings in memory only.
  std::string crash_dir;
  // Capacity of the post-boot snapshot cache (distinct vCPU configs kept
  // resident). 0 disables snapshot/restore: every execution cold-boots.
  // Results are invariant to this knob; only throughput changes.
  size_t snapshot_cache_size = 64;
};

// Execution-core throughput counters, surfaced through EngineResult. All
// fields except restore_ns are deterministic for a fixed input sequence
// and cache size; restore_ns is wall-clock and advisory only (excluded
// from determinism comparisons, like the pipeline/journal timings).
struct AgentStats {
  uint64_t executions = 0;
  uint64_t watchdog_restarts = 0;
  uint64_t snapshot_hits = 0;     // Boots replaced by RestoreVm.
  uint64_t snapshot_misses = 0;   // Cold boots (each captures a snapshot).
  uint64_t config_memo_hits = 0;  // Generate calls skipped by the memo.
  uint64_t restore_ns = 0;        // Wall-clock nanoseconds inside RestoreVm.
};

class Agent {
 public:
  // The agent owns a physical-CPU instance for the oracle loop: the
  // validator writes candidate states to the real CPU and compares
  // behaviour, independent of whichever CPU the target hypervisor runs on
  // (the hardware model is the same silicon).
  Agent(Hypervisor& target, AgentOptions options);

  // Run one 2 KiB test case end to end.
  ExecFeedback ExecuteOne(const FuzzInput& input);

  // Executor adapter for the Fuzzer.
  Executor MakeExecutor() {
    return [this](const FuzzInput& input) { return ExecuteOne(input); };
  }

  // Unique findings so far (deduplicated by bug id).
  const std::map<std::string, AnomalyReport>& findings() const {
    return findings_;
  }

  // Persisted crash records (inputs + metadata) for reproduction.
  const CrashStore& crash_store() const { return crash_store_; }

  uint64_t executions() const { return stats_.executions; }
  uint64_t watchdog_restarts() const { return stats_.watchdog_restarts; }
  const AgentStats& stats() const { return stats_; }
  const OracleStats& vmx_oracle_stats() const { return vmx_oracle_.stats(); }

  // --- Materialized snapshots (src/core/state/snapshot.h) ---
  //
  // Fills / restores the agent section of a WorkerStateRecord: the
  // execution counters (executions preserves the oracle-interval phase
  // exactly), the deduplicated findings map, and the oracle-learned quirk
  // tables that shape every subsequent GenerateBoundaryState. Advisory
  // caches — snapshot cache contents, configurator memo, oracle stats —
  // are deliberately not state: results are invariant to them, exactly
  // as they are across a replay resume.
  void ExportState(WorkerStateRecord* out) const;
  void ImportState(const WorkerStateRecord& record);

 private:
  void RunIntel(const FuzzInput& input, const VcpuConfig& config,
                InputPartition& parts);
  void RunAmd(const FuzzInput& input, const VcpuConfig& config,
              InputPartition& parts);
  void PlantGuestMemory(const HarnessProgram& prog, const Vmcs* vmcs12,
                        ByteReader& msr_bytes);

  Hypervisor& target_;
  AgentOptions options_;
  std::unique_ptr<HypervisorAdapter> adapter_;
  VcpuConfigurator configurator_;
  ExecutionHarness harness_;
  ExecutionHarness fixed_harness_;  // For the w/o-harness ablation.

  VmxCpu oracle_vmx_cpu_;
  SvmCpu oracle_svm_cpu_;
  VmcsValidator vmx_validator_;
  VmcbValidator svm_validator_;
  VmxHardwareOracle vmx_oracle_;
  SvmHardwareOracle svm_oracle_;

  std::map<std::string, AnomalyReport> findings_;
  CrashStore crash_store_;
  SnapshotCache snapshot_cache_;
  ConfiguratorMemo config_memo_;
  AgentStats stats_;
};

}  // namespace neco

#endif  // SRC_CORE_AGENT_H_
