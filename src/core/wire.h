// Wire format for campaign records: the serialized shapes shards and the
// merge pipeline exchange (src/core/merge_pipeline.h) over a
// ShardTransport (src/core/transport/transport.h).
//
// Three families of records live here:
//
//  * The five observer event records (SampleEvent .. FinishEvent) — the
//    streaming API of CampaignEngine (src/core/engine.h re-exports them).
//  * ShardDelta — everything one shard learned during one epoch, as a
//    self-contained record: new virgin-map bits, newly covered line ids,
//    new queue entries, new findings. Shards communicate with the merge
//    loop exclusively through these; nothing shares in-memory fuzzer
//    state across threads (or, with process shards, across processes).
//  * The process-sharding records: FeedbackRecord (the per-epoch merged
//    state a syncing shard absorbs — pool entries + the global-novelty
//    BitmapDelta — pushed from the drainer to child shards),
//    ShardResultRecord (a child shard's final per-worker summary, shipped
//    after its last delta — including the crash reproduction inputs, so
//    nothing stays resident in a child that may live on another machine),
//    ShardChildConfigRecord (the campaign configuration an exec'd
//    --necofuzz-shard-child process reads at startup), and
//    ShardHelloRecord (the socket-transport handshake: a dialing shard
//    identifies itself before receiving its config).
//
// A fourth family — the durable-state records further down — reuses the
// same framing as the storage format of src/core/state/: manifests, epoch
// journal files, crash artifacts, and (since v6) materialized campaign
// snapshots.
//
// The binary encoding is versioned, length-prefixed, and endian-stable
// (everything is serialized little-endian byte by byte, so records decode
// identically across hosts). Frame layout:
//
//   [u8 record type][u8 version][u32 payload length][payload]
//
// Decode() is strict: a wrong type, unknown version, bad length, truncated
// buffer, or out-of-range enum/count is rejected (returns false) without
// reading out of bounds. This is the exact payload a process-level shard
// ships over a pipe, so robustness against corrupt input is part of the
// contract and is fuzz-tested in tests/wire_test.cc.
#ifndef SRC_CORE_WIRE_H_
#define SRC_CORE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/fuzz/bitmap.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/mutator.h"
#include "src/hv/sanitizer.h"
#include "src/support/rng.h"

namespace neco {

// --- Observer event records ----------------------------------------------

// One merged coverage sample (epoch boundary) — the streaming form of
// CampaignResult::series.
struct SampleEvent {
  size_t epoch = 0;        // 0-based merge epoch.
  uint64_t iteration = 0;  // Campaign-wide iterations completed.
  double percent = 0.0;    // Merged coverage after this epoch.
  size_t covered_points = 0;
};

// A finding entered the global deduplicated set for the first time.
struct FindingEvent {
  size_t epoch = 0;
  int worker = 0;  // Shard whose report won the (deterministic) merge.
  AnomalyReport report;
};

// One shard's corpus exchange at an epoch boundary. `published` counts
// queue entries pushed to the shared pool at this merge; `imported` counts
// pool entries the shard adopted since the previous merge.
struct CorpusSyncEvent {
  size_t epoch = 0;
  int worker = 0;
  uint64_t published = 0;
  uint64_t imported = 0;
};

// A shard finished its budget (fired per worker, in worker-id order).
struct ShardDoneEvent {
  int worker = 0;
  uint64_t iterations = 0;
  double final_percent = 0.0;
  size_t covered_points = 0;
  uint64_t queue_size = 0;
  size_t findings = 0;
  uint64_t corpus_imports = 0;
  uint64_t watchdog_restarts = 0;
};

// The campaign completed; the merged summary.
struct FinishEvent {
  int workers = 1;
  size_t epochs = 0;
  uint64_t iterations = 0;
  double final_percent = 0.0;
  size_t covered_points = 0;
  size_t total_points = 0;
  size_t findings = 0;
  uint64_t corpus_imports = 0;
};

// --- ShardDelta ----------------------------------------------------------

// Everything one shard learned during one epoch that the global merge
// consumes. Folding every delta into the global view in (epoch, worker)
// order reconstructs exactly the state the old stop-the-world barrier
// merge produced. The merged view only dedups findings by bug id; the
// crash arrays below carry the *reproduction inputs* at epoch granularity
// so a journaling campaign (src/core/state/journal.h) can commit crash
// artifacts together with the epoch that discovered them — per-worker
// crash collection for EngineResult still rides the shard's final result.
struct ShardDelta {
  int worker = 0;
  uint64_t epoch = 0;       // The shard's 0-based epoch index.
  uint64_t iterations = 0;  // Executions spent this epoch.
  uint64_t imported = 0;    // Pool entries adopted at epoch start.
  BitmapDelta virgin;       // Edges newly seen by this shard.
  std::vector<uint32_t> covered_points;  // Line ids newly covered.
  std::vector<FuzzInput> queue_entries;  // New discoveries, for the pool.
  // New unique findings, sorted by bug id (merge dedup is first-wins in
  // fold order, so the sort makes FindingEvent order deterministic).
  std::vector<AnomalyReport> findings;
  // New crash reproduction pairs this epoch, in discovery order. Parallel
  // arrays; Decode() rejects a record whose lengths disagree.
  std::vector<std::string> crash_ids;
  std::vector<FuzzInput> crash_inputs;
};

// --- Process-sharding records --------------------------------------------

// The merged state a syncing shard absorbs at an epoch boundary, as the
// drainer pushes it to a process shard over its feedback pipe (the
// serialized form of MergePipeline::Feedback; thread shards pull the same
// content through MergePipeline::WaitForFeedback instead).
struct FeedbackRecord {
  uint64_t epoch = 0;  // Feedback covers merged state through this epoch.
  int worker = 0;      // Target shard (lets the child validate routing).
  // Other shards' pool entries, in deterministic pool order.
  std::vector<FuzzInput> pool_entries;
  // Global novelty (cells merged into the global virgin map) since this
  // worker's previous feedback.
  BitmapDelta virgin;
};

// A child shard's final per-worker state, shipped after its last delta so
// the parent can assemble EngineResult::per_worker (and the ShardDoneEvent
// stream) bit-identically to thread mode.
struct ShardResultRecord {
  int worker = 0;
  double final_percent = 0.0;
  uint64_t covered_points = 0;
  uint64_t total_points = 0;
  std::vector<uint32_t> covered_set;      // Covered line ids, ascending.
  std::vector<AnomalyReport> findings;    // Bug-id order (agent map order).
  uint64_t iterations = 0;
  uint64_t queue_size = 0;
  uint64_t unique_anomalies = 0;
  uint64_t bitmap_edges = 0;
  uint64_t watchdog_restarts = 0;
  uint64_t imports = 0;                   // Pool entries adopted (post-dedup).
  // Execution-core throughput counters (AgentStats). The first three are
  // deterministic for a fixed input sequence and cache size; restore_ns
  // is wall-clock and excluded from determinism comparisons.
  uint64_t snapshot_hits = 0;
  uint64_t snapshot_misses = 0;
  uint64_t config_memo_hits = 0;
  uint64_t restore_ns = 0;
  std::vector<std::string> crash_ids;     // Fuzzer crash bug ids, in
                                          // discovery order.
  // Parallel to crash_ids: the input that reproduces each crash. Shipping
  // them in the result record is what lets a process/socket campaign
  // collect reproduction inputs from children that exit (or live on
  // another machine) — they never stay resident in the shard. Decode()
  // rejects a record whose two crash arrays disagree in length.
  std::vector<FuzzInput> crash_inputs;
};

// The first frame a socket-mode shard child sends after dialing the
// parent's listener (src/core/transport/socket.h): which worker this
// connection carries. The parent validates it and replies with the
// shard's ShardChildConfigRecord; anything else on a fresh connection —
// stray dialers, port scanners, a corrupt hello — gets the connection
// dropped. The magic makes a non-NecoFuzz peer fail the handshake even
// when its bytes happen to parse as a frame.
struct ShardHelloRecord {
  static constexpr uint32_t kMagic = 0x4E43534Bu;  // "KSCN" little-endian.
  uint32_t magic = kMagic;
  int worker = 0;
};

// Everything an exec'd --necofuzz-shard-child process needs to rebuild its
// shard: the target (by registry name — factories cannot cross exec), the
// campaign options that shape the schedule, and this shard's identity.
// Fork-mode children inherit all of this through memory and skip the
// record.
struct ShardChildConfigRecord {
  std::string target;
  int worker = 0;
  int workers = 1;
  uint64_t epochs = 0;  // Global epoch count (parent's schedule authority).
  uint8_t arch = 0;     // static_cast<uint8_t>(Arch).
  uint64_t iterations = 0;
  int samples = 1;
  uint64_t seed = 1;
  uint8_t syncing = 0;  // Parent's resolved corpus-sync decision.
  // FuzzerOptions (seed is derived: campaign seed + worker).
  uint8_t coverage_guidance = 0;
  uint32_t havoc_stack = 16;
  uint32_t splice_percent = 15;
  // AgentOptions (arch comes from the campaign arch above).
  uint8_t use_harness = 1;
  uint8_t use_validator = 1;
  uint8_t use_configurator = 1;
  uint32_t oracle_interval = 64;
  // Snapshot-cache capacity, so exec'd children run the same execution
  // core as the parent. Not part of the campaign fingerprint: results are
  // invariant to it (like merge_batch/shard_mode), only throughput and
  // the advisory hit/miss counters change.
  uint64_t snapshot_cache_size = 64;
  std::string crash_dir;
  // Snapshot resume: the shard starts at this epoch instead of 0. When
  // non-zero, a WorkerStateRecord frame follows this config frame on the
  // same stream, carrying the shard's materialized state. Not part of the
  // campaign fingerprint (like snapshot_every below): results are
  // invariant to where the tail starts.
  uint64_t start_epoch = 0;
  // CampaignOptions::snapshot_every_epochs, so the child publishes its
  // WorkerStateRecord at exactly the parent's snapshot epochs.
  uint64_t snapshot_every = 0;
};

// --- Durable campaign state records (src/core/state/journal.h) -----------
//
// The wire format doubles as the storage format: a CampaignJournal's
// on-disk files are framed records from this header, so the same strict
// codecs that reject a corrupt pipe frame reject a torn or damaged state
// file on reopen.

// The journal's versioned manifest (file MANIFEST under the state dir).
// `committed_epochs` is the journal's commit point — it only advances
// after the epoch file it names is durable. The remaining fields
// fingerprint the campaign: a journal opened with a different fingerprint
// is a different campaign (different schedule, seeds, or target), so the
// open throws rather than silently mixing two runs' state. merge_batch
// and shard_mode are deliberately absent: results are invariant to both,
// so a campaign may resume under a different transport or batch size.
struct CampaignManifestRecord {
  static constexpr uint32_t kMagic = 0x4D4A434Eu;  // "NCJM" little-endian.
  uint32_t magic = kMagic;
  uint64_t committed_epochs = 0;
  // Snapshot horizon: epochs materialized in the newest snapshot file
  // (snapshot-<horizon>.state). 0 means no snapshot — resume is pure
  // replay. Advances in the same atomic manifest write as
  // committed_epochs, so the snapshot a manifest names is always durable
  // and always covers a prefix of the committed epochs.
  uint64_t snapshot_epochs = 0;
  // Crash artifacts persisted under <dir>/crashes as of this commit.
  // Reopen hands it to CrashStore as a sizing hint (reserve + skip the
  // directory scan when zero); it is advisory — the .record files stay
  // authoritative.
  uint64_t crash_artifacts = 0;
  // --- Fingerprint ---
  uint64_t epochs = 0;  // Global epoch count.
  int workers = 1;
  int samples = 1;
  uint8_t arch = 0;  // static_cast<uint8_t>(Arch).
  uint64_t iterations = 0;
  uint64_t seed = 1;
  uint8_t corpus_sync = 0;  // The resolved cross-shard syncing decision.
  uint8_t coverage_guidance = 0;
  uint32_t havoc_stack = 16;
  uint32_t splice_percent = 15;
  uint8_t use_harness = 1;
  uint8_t use_validator = 1;
  uint8_t use_configurator = 1;
  uint32_t oracle_interval = 64;
  std::string target;  // Registry name ("" for factory/borrowed sessions).
};

// The trailer of an epoch journal file: the epoch's identity, a checksum
// over the worker delta frames preceding it, and the merged-state summary
// after folding the epoch (for inspection; the merged state itself is
// reconstructed by replaying the delta frames).
struct EpochCommitRecord {
  uint64_t epoch = 0;
  int workers = 1;          // Delta frames in this epoch file.
  uint64_t checksum = 0;    // FNV-1a 64 over the delta frames' bytes.
  uint64_t iterations = 0;  // Campaign-cumulative after this epoch.
  uint64_t covered_points = 0;
  uint64_t pool_end = 0;    // Corpus pool size after this epoch.
  uint64_t findings = 0;    // Global deduplicated finding count.
  uint64_t crash_artifacts = 0;  // Persisted crash records so far.
  double percent = 0.0;     // Merged coverage after this epoch.
};

// One persisted crash: the authoritative `<seq>-<id>.record` file a
// CrashStore writes last (its commit marker — the human-readable .report
// and raw .input beside it are derived conveniences).
struct CrashArtifactRecord {
  uint64_t seq = 0;
  AnomalyReport report;
  std::string hypervisor;
  std::string arch;
  uint64_t iteration = 0;
  FuzzInput input;
};

// --- Materialized snapshot records (wire v6) -----------------------------
//
// A snapshot file (snapshot-<horizon>.state under the state dir) is the
// campaign's full merged state at an epoch boundary, framed as: one
// SnapshotMergedStateRecord, one WorkerStateRecord per shard (worker-id
// order), and a CampaignSnapshotRecord trailer whose checksum covers the
// preceding frames — the same shape as an epoch journal file, so the same
// strict decode path rejects a torn or damaged snapshot and resume falls
// back to replay.

// Everything one shard needs to continue exactly where the snapshot epoch
// ended: the fuzzer's full state (the full-state sibling of ShardDelta),
// the agent's history-dependent state, and the shard-level coverage and
// watchdog bookkeeping. Advisory caches (snapshot cache contents,
// configurator memo, oracle counters) are deliberately absent — results
// are invariant to them, exactly as they are across a replay resume.
struct WorkerStateRecord {
  int worker = 0;
  uint64_t epochs_covered = 0;  // State is as of the end of epoch
                                // epochs_covered - 1.
  // --- Fuzzer ---
  Rng::State mutator_rng;
  Rng::State corpus_rng;
  uint64_t iterations = 0;
  // Full queue with scheduling metadata (times_fuzzed, favored, ...); the
  // queue-hash index is rebuilt from the inputs on import.
  std::vector<QueueEntry> corpus;
  BitmapDelta virgin;  // Full virgin map, as a delta against empty.
  // Crash reproduction pairs in discovery order. Parallel arrays;
  // Decode() rejects a record whose lengths disagree. seen_bug_ids is
  // rebuilt from crash_ids on import.
  std::vector<std::string> crash_ids;
  std::vector<FuzzInput> crash_inputs;
  // --- Agent ---
  uint64_t executions = 0;  // Preserves the oracle-interval phase.
  uint64_t watchdog_restarts = 0;
  uint64_t snapshot_hits = 0;
  uint64_t snapshot_misses = 0;
  uint64_t config_memo_hits = 0;
  uint64_t restore_ns = 0;
  std::vector<AnomalyReport> findings;  // Bug-id order (agent map order).
  // Learned quirk tables, in sorted order (std::set iteration). Values
  // are CheckId / VmxFixupId; Decode() bounds them by the enums' kCount.
  std::vector<uint16_t> vmx_suppressed_checks;
  std::vector<uint8_t> vmx_learned_fixups;
  std::vector<uint16_t> svm_suppressed_checks;
  // --- Shard ---
  uint8_t host_crashed = 0;
  uint64_t host_restarts = 0;
  std::vector<uint32_t> covered;  // Accumulated line-coverage point ids.
  uint64_t hit_events = 0;
  uint64_t imports = 0;  // Pool entries adopted so far (post-dedup).
};

// The merge pipeline's global state at the snapshot horizon: the merged
// views plus exactly the feedback bookkeeping a resumed pipeline needs to
// push the next epoch's feedback (cursors resume from the horizon, so
// only the pool slice newer than the previous feedback round and the
// horizon epoch's virgin delta travel).
struct SnapshotMergedStateRecord {
  uint64_t epochs_covered = 0;
  BitmapDelta virgin;             // Global virgin map vs empty.
  std::vector<uint32_t> covered;  // Global covered point ids, ascending.
  std::vector<AnomalyReport> findings;  // Bug-id order (merge map order).
  // Shared corpus pool: entries at index < prior_pool_end were already
  // pulled by every cursor, so only [prior_pool_end, pool_end) ships.
  // Parallel arrays (origin worker + input bytes); Decode() rejects
  // disagreement, and rejects prior_pool_end > pool_end or a slice whose
  // length disagrees with the two bounds.
  uint64_t prior_pool_end = 0;
  uint64_t pool_end = 0;
  std::vector<int> pool_origins;
  std::vector<FuzzInput> pool_inputs;
  // Coverage time series through the horizon (parallel arrays, one count).
  std::vector<uint64_t> series_iterations;
  std::vector<double> series_percents;
  uint64_t total_iterations = 0;
  // The horizon epoch's feedback virgin delta (what a cursor that already
  // consumed epochs < horizon still needs).
  BitmapDelta feedback_virgin;
};

// The snapshot file's trailer: identity + checksum over the preceding
// frames, mirroring EpochCommitRecord's role in an epoch file.
struct CampaignSnapshotRecord {
  static constexpr uint32_t kMagic = 0x5053434Eu;  // "NCSP" little-endian.
  uint32_t magic = kMagic;
  uint64_t epochs_covered = 0;
  int workers = 1;        // WorkerStateRecord frames in this file.
  uint64_t checksum = 0;  // FNV-1a 64 over the preceding frames' bytes.
};

// --- Encode / decode -----------------------------------------------------

namespace wire {

inline constexpr uint8_t kVersion = 6;  // v2 added the process-sharding
                                        // records (kFeedback..kChildConfig);
                                        // v3 the socket handshake
                                        // (kShardHello) and crash-input
                                        // shipping in ShardResultRecord;
                                        // v4 per-epoch crash shipping in
                                        // ShardDelta and the durable-state
                                        // records (kManifest..
                                        // kCrashArtifact); v5 the
                                        // execution-core stats in
                                        // ShardResultRecord and the
                                        // snapshot-cache capacity in
                                        // ShardChildConfigRecord; v6 the
                                        // materialized-snapshot records
                                        // (kWorkerState..kCampaignSnapshot),
                                        // the snapshot horizon + crash
                                        // count in the manifest, and the
                                        // resume fields in
                                        // ShardChildConfigRecord.

enum class RecordType : uint8_t {
  kShardDelta = 1,
  kSample = 2,
  kFinding = 3,
  kCorpusSync = 4,
  kShardDone = 5,
  kFinish = 6,
  kFeedback = 7,
  kShardResult = 8,
  kChildConfig = 9,
  kShardHello = 10,
  kManifest = 11,
  kEpochCommit = 12,
  kCrashArtifact = 13,
  kWorkerState = 14,
  kSnapshotMerged = 15,
  kCampaignSnapshot = 16,
};

using Buffer = std::vector<uint8_t>;

// [u8 type][u8 version][u32 payload length] — what PipeTransport needs to
// cut frames out of a byte stream.
inline constexpr size_t kFrameHeaderSize = 1 + 1 + 4;

// Sanity bound on a single frame travelling a pipe: a real delta is a few
// KiB, so anything this large is a corrupt length field, and rejecting it
// beats letting four attacker-controlled bytes trigger a 4 GiB allocation.
inline constexpr size_t kMaxFramePayload = size_t{1} << 30;

Buffer Encode(const ShardDelta& record);
// Zero-copy variant for the publishing shard: the queue-entry section is
// serialized from `queue_entries` (pointers into the fuzzer's corpus —
// see FuzzerDelta::queue_entries for the lifetime rule) and
// `record.queue_entries` is ignored, so exporting discoveries never
// copies input bytes before they hit the wire. Produces a frame
// byte-identical to Encode() of a record owning the same entries.
Buffer Encode(const ShardDelta& record,
              const std::vector<const FuzzInput*>& queue_entries);
Buffer Encode(const SampleEvent& record);
Buffer Encode(const FindingEvent& record);
Buffer Encode(const CorpusSyncEvent& record);
Buffer Encode(const ShardDoneEvent& record);
Buffer Encode(const FinishEvent& record);
Buffer Encode(const FeedbackRecord& record);
Buffer Encode(const ShardResultRecord& record);
Buffer Encode(const ShardChildConfigRecord& record);
Buffer Encode(const ShardHelloRecord& record);
Buffer Encode(const CampaignManifestRecord& record);
Buffer Encode(const EpochCommitRecord& record);
Buffer Encode(const CrashArtifactRecord& record);
Buffer Encode(const WorkerStateRecord& record);
Buffer Encode(const SnapshotMergedStateRecord& record);
Buffer Encode(const CampaignSnapshotRecord& record);

// Strict decoding; `*out` is unspecified when false is returned.
bool Decode(const uint8_t* data, size_t size, ShardDelta* out);
bool Decode(const uint8_t* data, size_t size, SampleEvent* out);
bool Decode(const uint8_t* data, size_t size, FindingEvent* out);
bool Decode(const uint8_t* data, size_t size, CorpusSyncEvent* out);
bool Decode(const uint8_t* data, size_t size, ShardDoneEvent* out);
bool Decode(const uint8_t* data, size_t size, FinishEvent* out);
bool Decode(const uint8_t* data, size_t size, FeedbackRecord* out);
bool Decode(const uint8_t* data, size_t size, ShardResultRecord* out);
bool Decode(const uint8_t* data, size_t size, ShardChildConfigRecord* out);
bool Decode(const uint8_t* data, size_t size, ShardHelloRecord* out);
bool Decode(const uint8_t* data, size_t size, CampaignManifestRecord* out);
bool Decode(const uint8_t* data, size_t size, EpochCommitRecord* out);
bool Decode(const uint8_t* data, size_t size, CrashArtifactRecord* out);
bool Decode(const uint8_t* data, size_t size, WorkerStateRecord* out);
bool Decode(const uint8_t* data, size_t size, SnapshotMergedStateRecord* out);
bool Decode(const uint8_t* data, size_t size, CampaignSnapshotRecord* out);

template <typename Record>
bool Decode(const Buffer& buffer, Record* out) {
  return Decode(buffer.data(), buffer.size(), out);
}

// The record type of a framed buffer (for demultiplexing a stream);
// returns false for anything shorter than a frame header.
bool PeekType(const uint8_t* data, size_t size, RecordType* out);

// Stream framing: given the head of a byte stream, reports the total size
// (header + payload) of the frame it starts with, so a transport can tell
// whether a complete frame has arrived. Returns false while fewer than
// kFrameHeaderSize bytes are available, or when the header is invalid
// (unknown type byte, payload length above kMaxFramePayload).
bool FrameSize(const uint8_t* data, size_t size, size_t* out);

}  // namespace wire
}  // namespace neco

#endif  // SRC_CORE_WIRE_H_
