// Wire format for campaign records: the serialized shapes shards and the
// merge pipeline exchange (src/core/merge_pipeline.h).
//
// Two families of records live here:
//
//  * The five observer event records (SampleEvent .. FinishEvent) — the
//    streaming API of CampaignEngine (src/core/engine.h re-exports them).
//  * ShardDelta — everything one shard learned during one epoch, as a
//    self-contained record: new virgin-map bits, newly covered line ids,
//    new queue entries, new findings. Shards communicate with the merge
//    loop exclusively through these; nothing shares in-memory fuzzer
//    state across threads.
//
// The binary encoding is versioned, length-prefixed, and endian-stable
// (everything is serialized little-endian byte by byte, so records decode
// identically across hosts). Frame layout:
//
//   [u8 record type][u8 version][u32 payload length][payload]
//
// Decode() is strict: a wrong type, unknown version, bad length, truncated
// buffer, or out-of-range enum/count is rejected (returns false) without
// reading out of bounds. This is the exact payload a process-level shard
// ships over a pipe, so robustness against corrupt input is part of the
// contract and is fuzz-tested in tests/wire_test.cc.
#ifndef SRC_CORE_WIRE_H_
#define SRC_CORE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/fuzz/bitmap.h"
#include "src/fuzz/mutator.h"
#include "src/hv/sanitizer.h"

namespace neco {

// --- Observer event records ----------------------------------------------

// One merged coverage sample (epoch boundary) — the streaming form of
// CampaignResult::series.
struct SampleEvent {
  size_t epoch = 0;        // 0-based merge epoch.
  uint64_t iteration = 0;  // Campaign-wide iterations completed.
  double percent = 0.0;    // Merged coverage after this epoch.
  size_t covered_points = 0;
};

// A finding entered the global deduplicated set for the first time.
struct FindingEvent {
  size_t epoch = 0;
  int worker = 0;  // Shard whose report won the (deterministic) merge.
  AnomalyReport report;
};

// One shard's corpus exchange at an epoch boundary. `published` counts
// queue entries pushed to the shared pool at this merge; `imported` counts
// pool entries the shard adopted since the previous merge.
struct CorpusSyncEvent {
  size_t epoch = 0;
  int worker = 0;
  uint64_t published = 0;
  uint64_t imported = 0;
};

// A shard finished its budget (fired per worker, in worker-id order).
struct ShardDoneEvent {
  int worker = 0;
  uint64_t iterations = 0;
  double final_percent = 0.0;
  size_t covered_points = 0;
  uint64_t queue_size = 0;
  size_t findings = 0;
  uint64_t corpus_imports = 0;
  uint64_t watchdog_restarts = 0;
};

// The campaign completed; the merged summary.
struct FinishEvent {
  int workers = 1;
  size_t epochs = 0;
  uint64_t iterations = 0;
  double final_percent = 0.0;
  size_t covered_points = 0;
  size_t total_points = 0;
  size_t findings = 0;
  uint64_t corpus_imports = 0;
};

// --- ShardDelta ----------------------------------------------------------

// Everything one shard learned during one epoch that the global merge
// consumes. Folding every delta into the global view in (epoch, worker)
// order reconstructs exactly the state the old stop-the-world barrier
// merge produced. Crash *inputs* are deliberately not here: the merged
// view only dedups findings by bug id, while reproduction inputs stay in
// the shard's own result (per-worker crashes / the agent's CrashStore).
struct ShardDelta {
  int worker = 0;
  uint64_t epoch = 0;       // The shard's 0-based epoch index.
  uint64_t iterations = 0;  // Executions spent this epoch.
  uint64_t imported = 0;    // Pool entries adopted at epoch start.
  BitmapDelta virgin;       // Edges newly seen by this shard.
  std::vector<uint32_t> covered_points;  // Line ids newly covered.
  std::vector<FuzzInput> queue_entries;  // New discoveries, for the pool.
  // New unique findings, sorted by bug id (merge dedup is first-wins in
  // fold order, so the sort makes FindingEvent order deterministic).
  std::vector<AnomalyReport> findings;
};

// --- Encode / decode -----------------------------------------------------

namespace wire {

inline constexpr uint8_t kVersion = 1;

enum class RecordType : uint8_t {
  kShardDelta = 1,
  kSample = 2,
  kFinding = 3,
  kCorpusSync = 4,
  kShardDone = 5,
  kFinish = 6,
};

using Buffer = std::vector<uint8_t>;

Buffer Encode(const ShardDelta& record);
Buffer Encode(const SampleEvent& record);
Buffer Encode(const FindingEvent& record);
Buffer Encode(const CorpusSyncEvent& record);
Buffer Encode(const ShardDoneEvent& record);
Buffer Encode(const FinishEvent& record);

// Strict decoding; `*out` is unspecified when false is returned.
bool Decode(const uint8_t* data, size_t size, ShardDelta* out);
bool Decode(const uint8_t* data, size_t size, SampleEvent* out);
bool Decode(const uint8_t* data, size_t size, FindingEvent* out);
bool Decode(const uint8_t* data, size_t size, CorpusSyncEvent* out);
bool Decode(const uint8_t* data, size_t size, ShardDoneEvent* out);
bool Decode(const uint8_t* data, size_t size, FinishEvent* out);

template <typename Record>
bool Decode(const Buffer& buffer, Record* out) {
  return Decode(buffer.data(), buffer.size(), out);
}

// The record type of a framed buffer (for demultiplexing a stream);
// returns false for anything shorter than a frame header.
bool PeekType(const uint8_t* data, size_t size, RecordType* out);

}  // namespace wire
}  // namespace neco

#endif  // SRC_CORE_WIRE_H_
