// The vCPU configurator (paper Sections 3.5 and 4.4).
//
// A hypervisor-independent core derives a vCPU feature configuration from
// fuzzing-input bytes (the configuration "is generally represented as a
// bit array"); small per-hypervisor adapters translate it into the
// hypervisor's own interface — kernel-module parameters plus command-line
// options for KVM/QEMU, xl.cfg options for Xen, VBoxManage flags for
// VirtualBox — and apply it at VM startup.
#ifndef SRC_CORE_CONFIG_CONFIGURATOR_H_
#define SRC_CORE_CONFIG_CONFIGURATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/hv/hypervisor.h"
#include "src/hv/vcpu_config.h"
#include "src/support/byte_reader.h"

namespace neco {

class VcpuConfigurator {
 public:
  // Derive a configuration from input bytes. Nested virtualization is kept
  // enabled for most configurations (1/16 of them exercise the
  // nested-disabled error paths), since nothing downstream is reachable
  // without it.
  VcpuConfig Generate(ByteReader& reader, Arch arch) const;
};

// Translates a VcpuConfig into one hypervisor's own configuration surface.
class HypervisorAdapter {
 public:
  virtual ~HypervisorAdapter() = default;

  virtual std::string_view hypervisor_name() const = 0;

  // Kernel-module parameters / hypervisor boot options.
  virtual std::vector<std::string> ModuleParams(
      const VcpuConfig& config) const = 0;

  // Per-VM command line (QEMU argv, xl.cfg lines, VBoxManage args).
  virtual std::vector<std::string> VmCommandLine(
      const VcpuConfig& config) const = 0;

  // Parse a module-parameter list back into a feature set (round-trip
  // support, used to validate adapter encodings).
  virtual VcpuConfig ParseModuleParams(
      const std::vector<std::string>& params, Arch arch) const = 0;

  // Apply the configuration: module reload + VM start.
  void Apply(Hypervisor& hv, const VcpuConfig& config) const {
    hv.StartVm(config);
  }
};

class KvmAdapter : public HypervisorAdapter {
 public:
  std::string_view hypervisor_name() const override { return "kvm"; }
  std::vector<std::string> ModuleParams(
      const VcpuConfig& config) const override;
  std::vector<std::string> VmCommandLine(
      const VcpuConfig& config) const override;
  VcpuConfig ParseModuleParams(const std::vector<std::string>& params,
                               Arch arch) const override;
};

class XenAdapter : public HypervisorAdapter {
 public:
  std::string_view hypervisor_name() const override { return "xen"; }
  std::vector<std::string> ModuleParams(
      const VcpuConfig& config) const override;
  std::vector<std::string> VmCommandLine(
      const VcpuConfig& config) const override;
  VcpuConfig ParseModuleParams(const std::vector<std::string>& params,
                               Arch arch) const override;
};

class VboxAdapter : public HypervisorAdapter {
 public:
  std::string_view hypervisor_name() const override { return "virtualbox"; }
  std::vector<std::string> ModuleParams(
      const VcpuConfig& config) const override;
  std::vector<std::string> VmCommandLine(
      const VcpuConfig& config) const override;
  VcpuConfig ParseModuleParams(const std::vector<std::string>& params,
                               Arch arch) const override;
};

// Adapter factory keyed by Hypervisor::name().
std::unique_ptr<HypervisorAdapter> MakeAdapterFor(std::string_view name);

}  // namespace neco

#endif  // SRC_CORE_CONFIG_CONFIGURATOR_H_
