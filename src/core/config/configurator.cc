#include "src/core/config/configurator.h"

namespace neco {

VcpuConfig VcpuConfigurator::Generate(ByteReader& reader, Arch arch) const {
  VcpuConfig config;
  config.arch = arch;
  CpuFeatureSet features;
  features.set_raw(reader.U64());
  // Most configurations keep nested virtualization on; a small share
  // exercises the nested=0 rejection paths.
  if (!reader.Chance(1, 16)) {
    features.Set(CpuFeature::kNestedVirt);
  }
  config.features = features.RestrictedTo(arch);
  config.vcpus = 1;  // Single-vCPU harness (paper Section 6.4).
  config.memory_mb = static_cast<uint16_t>(64 + (reader.U8() % 4) * 64);
  return config;
}

namespace {

struct ParamName {
  CpuFeature feature;
  std::string_view kvm_param;  // kvm-intel.ko / kvm-amd.ko parameter.
};

constexpr ParamName kKvmIntelParams[] = {
    {CpuFeature::kEpt, "ept"},
    {CpuFeature::kUnrestrictedGuest, "unrestricted_guest"},
    {CpuFeature::kVpid, "vpid"},
    {CpuFeature::kVmcsShadowing, "enable_shadow_vmcs"},
    {CpuFeature::kApicRegisterVirt, "enable_apicv"},
    {CpuFeature::kPreemptionTimer, "preemption_timer"},
    {CpuFeature::kPml, "pml"},
    {CpuFeature::kEnlightenedVmcs, "enlightened_vmcs"},
    {CpuFeature::kNestedVirt, "nested"},
};

constexpr ParamName kKvmAmdParams[] = {
    {CpuFeature::kNpt, "npt"},
    {CpuFeature::kNrips, "nrips"},
    {CpuFeature::kVgif, "vgif"},
    {CpuFeature::kAvic, "avic"},
    {CpuFeature::kVls, "vls"},
    {CpuFeature::kLbrv, "lbrv"},
    {CpuFeature::kPauseFilter, "pause_filter_count"},
    {CpuFeature::kNestedVirt, "nested"},
};

std::span<const ParamName> KvmParamsFor(Arch arch) {
  return arch == Arch::kIntel ? std::span<const ParamName>(kKvmIntelParams)
                              : std::span<const ParamName>(kKvmAmdParams);
}

}  // namespace

// --- KVM ---

std::vector<std::string> KvmAdapter::ModuleParams(
    const VcpuConfig& config) const {
  std::vector<std::string> out;
  for (const auto& p : KvmParamsFor(config.arch)) {
    out.push_back(std::string(p.kvm_param) + "=" +
                  (config.features.Has(p.feature) ? "1" : "0"));
  }
  return out;
}

std::vector<std::string> KvmAdapter::VmCommandLine(
    const VcpuConfig& config) const {
  std::vector<std::string> argv = {"qemu-system-x86_64", "-enable-kvm"};
  std::string cpu = "-cpu host";
  if (config.nested()) {
    cpu += config.arch == Arch::kIntel ? ",+vmx" : ",+svm";
  } else {
    cpu += config.arch == Arch::kIntel ? ",-vmx" : ",-svm";
  }
  argv.push_back(cpu);
  argv.push_back("-smp " + std::to_string(config.vcpus));
  argv.push_back("-m " + std::to_string(config.memory_mb));
  argv.push_back("-bios fuzz-harness.efi");
  return argv;
}

VcpuConfig KvmAdapter::ParseModuleParams(
    const std::vector<std::string>& params, Arch arch) const {
  VcpuConfig config;
  config.arch = arch;
  CpuFeatureSet features;
  for (const std::string& p : params) {
    const size_t eq = p.find('=');
    if (eq == std::string::npos) {
      continue;
    }
    const std::string_view key = std::string_view(p).substr(0, eq);
    const bool on = p.substr(eq + 1) != "0";
    for (const auto& known : KvmParamsFor(arch)) {
      if (known.kvm_param == key) {
        features.Set(known.feature, on);
      }
    }
  }
  config.features = features.RestrictedTo(arch);
  return config;
}

// --- Xen ---

std::vector<std::string> XenAdapter::ModuleParams(
    const VcpuConfig& config) const {
  // Xen boot-time options.
  std::vector<std::string> out;
  out.push_back(std::string("hap=") +
                (config.features.Has(config.arch == Arch::kIntel
                                         ? CpuFeature::kEpt
                                         : CpuFeature::kNpt)
                     ? "1"
                     : "0"));
  out.push_back(std::string("apicv=") +
                (config.features.Has(CpuFeature::kApicRegisterVirt) ? "1"
                                                                    : "0"));
  return out;
}

std::vector<std::string> XenAdapter::VmCommandLine(
    const VcpuConfig& config) const {
  // xl.cfg lines for an HVM guest.
  std::vector<std::string> cfg;
  cfg.push_back("type = \"hvm\"");
  cfg.push_back(std::string("nestedhvm = ") +
                (config.nested() ? "1" : "0"));
  cfg.push_back("vcpus = " + std::to_string(config.vcpus));
  cfg.push_back("memory = " + std::to_string(config.memory_mb));
  cfg.push_back("firmware = \"fuzz-harness.efi\"");
  return cfg;
}

VcpuConfig XenAdapter::ParseModuleParams(
    const std::vector<std::string>& params, Arch arch) const {
  VcpuConfig config = VcpuConfig::Default(arch);
  for (const std::string& p : params) {
    if (p == "hap=0") {
      config.features.Set(
          arch == Arch::kIntel ? CpuFeature::kEpt : CpuFeature::kNpt, false);
    }
    if (p == "apicv=0") {
      config.features.Set(CpuFeature::kApicRegisterVirt, false);
    }
  }
  config.features = config.features.RestrictedTo(arch);
  return config;
}

// --- VirtualBox ---

std::vector<std::string> VboxAdapter::ModuleParams(
    const VcpuConfig& config) const {
  return {std::string("--nested-hw-virt ") +
          (config.nested() ? "on" : "off")};
}

std::vector<std::string> VboxAdapter::VmCommandLine(
    const VcpuConfig& config) const {
  std::vector<std::string> argv = {"VBoxManage", "modifyvm", "fuzz-harness"};
  argv.push_back(std::string("--nested-hw-virt=") +
                 (config.nested() ? "on" : "off"));
  argv.push_back(std::string("--nested-paging=") +
                 (config.features.Has(CpuFeature::kEpt) ? "on" : "off"));
  argv.push_back("--cpus=" + std::to_string(config.vcpus));
  argv.push_back("--memory=" + std::to_string(config.memory_mb));
  return argv;
}

VcpuConfig VboxAdapter::ParseModuleParams(
    const std::vector<std::string>& params, Arch arch) const {
  VcpuConfig config = VcpuConfig::Default(arch);
  for (const std::string& p : params) {
    if (p.find("--nested-hw-virt off") != std::string::npos) {
      config.features.Set(CpuFeature::kNestedVirt, false);
    }
  }
  return config;
}

std::unique_ptr<HypervisorAdapter> MakeAdapterFor(std::string_view name) {
  if (name == "kvm") {
    return std::make_unique<KvmAdapter>();
  }
  if (name == "xen") {
    return std::make_unique<XenAdapter>();
  }
  if (name == "virtualbox") {
    return std::make_unique<VboxAdapter>();
  }
  return nullptr;
}

}  // namespace neco
