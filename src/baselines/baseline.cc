#include "src/baselines/baseline.h"

#include "src/arch/vmx_bits.h"
#include "src/hv/sim_kvm/kvm.h"
#include "src/support/rng.h"

namespace neco {
namespace {

// Replays the canonical VMX init sequence for a given VMCS12, as every
// well-formed guest hypervisor would.
void RunGoldenVmxInit(Hypervisor& target, const Vmcs& vmcs12) {
  target.guest_memory().Write32(0x1000, Vmcs::kRevisionId);
  target.guest_memory().Write32(0x2000, Vmcs::kRevisionId);
  VmxInsn op;
  op.op = VmxOp::kVmxon;
  op.operand = 0x1000;
  target.HandleVmxInstruction(op);
  op.op = VmxOp::kVmclear;
  op.operand = 0x2000;
  target.HandleVmxInstruction(op);
  op.op = VmxOp::kVmptrld;
  target.HandleVmxInstruction(op);
  for (const VmcsFieldInfo& info : VmcsFieldTable()) {
    if (info.group == VmcsFieldGroup::kReadOnlyData) {
      continue;
    }
    VmxInsn wr;
    wr.op = VmxOp::kVmwrite;
    wr.field = info.field;
    wr.value = vmcs12.Read(info.field);
    target.HandleVmxInstruction(wr);
  }
  op = VmxInsn{};
  op.op = VmxOp::kVmlaunch;
  target.HandleVmxInstruction(op);
}

GuestInsn SimpleGuestInsn(Rng& rng) {
  static constexpr GuestInsnKind kKinds[] = {
      GuestInsnKind::kCpuid, GuestInsnKind::kHlt,   GuestInsnKind::kRdtsc,
      GuestInsnKind::kIoIn,  GuestInsnKind::kIoOut, GuestInsnKind::kRdmsr,
      GuestInsnKind::kWrmsr, GuestInsnKind::kVmcall,
  };
  GuestInsn insn;
  insn.kind = kKinds[rng.Below(sizeof(kKinds) / sizeof(GuestInsnKind))];
  insn.arg0 = rng.Next() & 0xffff;
  insn.arg1 = rng.Next();
  return insn;
}

}  // namespace

BaselineResult FinishBaseline(Hypervisor& target, Arch arch,
                              std::vector<CoverageSample> series,
                              bool terminated_early) {
  BaselineResult result;
  CoverageUnit& cov = target.nested_coverage(arch);
  result.series = std::move(series);
  result.final_percent = cov.percent();
  result.covered_points = cov.covered_points();
  result.total_points = cov.total_points();
  result.covered_set = cov.CoveredSet();
  result.findings = target.sanitizers().Drain();
  result.terminated_early = terminated_early;
  return result;
}

// ---------------------------------------------------------------------------
// Syzkaller
// ---------------------------------------------------------------------------

BaselineResult SyzkallerSim::Run(Hypervisor& target, Arch arch,
                                 uint64_t budget, int samples) {
  CoverageUnit& cov = target.nested_coverage(arch);
  cov.ResetCoverage();
  target.sanitizers().Clear();
  Rng rng(seed_);
  std::vector<CoverageSample> series;
  const uint64_t chunk = budget / (samples > 0 ? samples : 1) + 1;

  auto* kvm = dynamic_cast<SimKvm*>(&target);

  for (uint64_t iter = 0; iter < budget; ++iter) {
    if (target.host_crashed()) {
      target.RestartHost();
    }
    // Static vCPU configuration: syzkaller does not mutate module
    // parameters or the QEMU command line.
    target.StartVm(VcpuConfig::Default(arch));

    if (arch == Arch::kIntel) {
      // The manually written nested harness: golden VMCS with random
      // values poked into a few fields before launch. Random 64-bit values
      // rarely sit near the validity boundary, so most launches die at the
      // first reserved-bit check.
      Vmcs vmcs12 = MakeDefaultVmcs();
      const auto table = VmcsFieldTable();
      const size_t k = 1 + rng.Below(6);
      for (size_t i = 0; i < k; ++i) {
        const VmcsFieldInfo& f = table[rng.Below(table.size())];
        if (f.group != VmcsFieldGroup::kReadOnlyData) {
          vmcs12.Write(f.field, rng.Next());
        }
      }
      RunGoldenVmxInit(target, vmcs12);
      // A few random instructions at whatever level we ended up in.
      for (int i = 0; i < 3; ++i) {
        target.HandleGuestInstruction(
            SimpleGuestInsn(rng),
            target.in_l2() ? GuestLevel::kL2 : GuestLevel::kL1);
        if (target.in_l2() == false && rng.CoinFlip()) {
          VmxInsn resume;
          resume.op = VmxOp::kVmresume;
          target.HandleVmxInstruction(resume);
        }
      }
    } else {
      // No AMD harness exists: syzkaller only reaches the entry points
      // through random syscalls, which fail the SVME/permission checks.
      SvmInsn insn;
      insn.op = static_cast<SvmOp>(rng.Below(
          static_cast<uint64_t>(SvmOp::kCount)));
      insn.operand = rng.Next() & 0xffff000;
      insn.field = static_cast<VmcbField>(rng.Below(kNumVmcbFields));
      insn.value = rng.Next();
      target.HandleSvmInstruction(insn);
      target.HandleGuestInstruction(SimpleGuestInsn(rng), GuestLevel::kL1);
    }
    // Being a syscall fuzzer, syzkaller also pokes the host-side ioctl
    // surface (which guest-driven tools cannot reach).
    if (kvm != nullptr && rng.Chance(1, 4)) {
      kvm->IoctlGetNestedState();
      kvm->IoctlSetNestedState(rng.Next() & 0x7);
    }
    if ((iter + 1) % chunk == 0 || iter + 1 == budget) {
      series.push_back({iter + 1, cov.percent()});
    }
  }
  return FinishBaseline(target, arch, std::move(series), false);
}

// ---------------------------------------------------------------------------
// IRIS
// ---------------------------------------------------------------------------

BaselineResult IrisSim::Run(Hypervisor& target, Arch arch, uint64_t budget,
                            int samples) {
  CoverageUnit& cov = target.nested_coverage(arch);
  cov.ResetCoverage();
  target.sanitizers().Clear();
  std::vector<CoverageSample> series;

  if (arch != Arch::kIntel) {
    // IRIS is limited to Intel processors.
    return FinishBaseline(target, arch, std::move(series), true);
  }

  Rng rng(seed_);
  const uint64_t limit = budget < kStabilityLimit ? budget : kStabilityLimit;
  const uint64_t chunk = limit / (samples > 0 ? samples : 1) + 1;
  for (uint64_t iter = 0; iter < limit; ++iter) {
    if (target.host_crashed()) {
      target.RestartHost();
    }
    target.StartVm(VcpuConfig::Default(arch));
    // Record-and-replay: traces come from a well-behaved guest OS, so the
    // VMCS12 is the golden state with only benign value drift (stack and
    // instruction pointers, TSC offset, exception/IO filters an OS would
    // actually install) — states deep inside the valid region, never near
    // the boundary.
    Vmcs vmcs12 = MakeDefaultVmcs();
    vmcs12.Write(VmcsField::kGuestRip, 0x100000 + (rng.Next() & 0xffff));
    vmcs12.Write(VmcsField::kGuestRsp, 0x8000 + (rng.Next() & 0xfff0));
    vmcs12.Write(VmcsField::kTscOffset, rng.Next() & 0xffffff);
    vmcs12.Write(VmcsField::kVirtualProcessorId, 1 + (rng.Next() & 0x7));
    vmcs12.Write(VmcsField::kExceptionBitmap,
                 (1u << 14) | (1u << 6) | (1u << 13));
    vmcs12.Write(VmcsField::kCr3TargetCount, rng.Next() & 0x3);
    // A real OS trace toggles some I/O and MSR intercepts.
    target.guest_memory().SetBit(vmcs12.Read(VmcsField::kIoBitmapA),
                                 0x60 + (rng.Next() & 0x3f), true);
    target.guest_memory().SetBit(vmcs12.Read(VmcsField::kMsrBitmap),
                                 rng.Next() & 0x1ff, true);
    RunGoldenVmxInit(target, vmcs12);
    // Replayed workload: the varied-but-valid exit mix a booting OS emits.
    static constexpr GuestInsnKind kTrace[] = {
        GuestInsnKind::kCpuid,    GuestInsnKind::kIoOut,
        GuestInsnKind::kRdmsr,    GuestInsnKind::kWrmsr,
        GuestInsnKind::kMovToCr0, GuestInsnKind::kMovToCr3,
        GuestInsnKind::kMovToCr4, GuestInsnKind::kMovToCr8,
        GuestInsnKind::kHlt,      GuestInsnKind::kInvlpg,
        GuestInsnKind::kPause,    GuestInsnKind::kRaiseException,
        GuestInsnKind::kVmcall,   GuestInsnKind::kMovFromCr3,
        GuestInsnKind::kWbinvd,   GuestInsnKind::kMovToDr,
    };
    for (int i = 0; i < 8 && target.in_l2(); ++i) {
      GuestInsn insn;
      insn.kind = kTrace[rng.Below(sizeof(kTrace) / sizeof(kTrace[0]))];
      insn.arg0 = insn.kind == GuestInsnKind::kMovToCr0
                      ? (0x80000031ULL | (rng.CoinFlip() ? Cr0::kCd : 0))
                      : (rng.Next() & 0xffff);
      insn.arg1 = rng.Next() & 0x1f;
      const HandledBy hb =
          target.HandleGuestInstruction(insn, GuestLevel::kL2);
      if (hb == HandledBy::kL1) {
        VmxInsn resume;
        resume.op = VmxOp::kVmresume;
        target.HandleVmxInstruction(resume);
      }
    }
    if ((iter + 1) % chunk == 0 || iter + 1 == limit) {
      series.push_back({iter + 1, cov.percent()});
    }
  }
  // The run ends here regardless of remaining budget: in the paper's
  // nested setup IRIS crashed after a few minutes.
  return FinishBaseline(target, arch, std::move(series),
                        limit < budget);
}

}  // namespace neco
