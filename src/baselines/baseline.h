// Baseline testing/fuzzing tools the paper compares against (Section 5.1):
//
//  * Syzkaller — the only prior fuzzer with explicit nested-virtualization
//    support: a syscall fuzzer with a manually written Intel VMX harness
//    (golden VMCS + random field values) and no AMD harness.
//  * IRIS — record-and-replay fuzzing seeded from well-behaved guest OS
//    traces; Intel-only, and unstable when run inside an L1 VM (it
//    terminated after a few minutes in the paper's runs).
//  * Selftests — the Linux kernel's KVM selftests: a fixed deterministic
//    suite that drives nested virtualization both from the guest and
//    through host-side ioctls (the ioctl surface gives it lines nothing
//    guest-driven can reach).
//  * KVM-unit-tests — a minimal guest OS with systematic per-check entry
//    tests.
//  * XTF — the Xen Test Framework, a small functional suite.
//
// Each stand-in reproduces the *strategy* of the original tool against the
// simulated hypervisors, so the coverage comparison dynamics of Tables 2
// and 4 and Figure 3 can be regenerated.
#ifndef SRC_BASELINES_BASELINE_H_
#define SRC_BASELINES_BASELINE_H_

#include <string_view>
#include <vector>

#include "src/core/campaign.h"
#include "src/hv/hypervisor.h"

namespace neco {

struct BaselineResult {
  std::vector<CoverageSample> series;
  double final_percent = 0.0;
  size_t covered_points = 0;
  size_t total_points = 0;
  std::vector<size_t> covered_set;
  std::vector<AnomalyReport> findings;
  // True if the tool stopped before its budget (IRIS-style instability).
  bool terminated_early = false;
};

class BaselineTool {
 public:
  virtual ~BaselineTool() = default;
  virtual std::string_view name() const = 0;
  // Run against `target` for `budget` iterations with `samples` coverage
  // samples. Coverage for `arch` is reset at the start.
  virtual BaselineResult Run(Hypervisor& target, Arch arch, uint64_t budget,
                             int samples) = 0;
};

class SyzkallerSim : public BaselineTool {
 public:
  explicit SyzkallerSim(uint64_t seed = 7) : seed_(seed) {}
  std::string_view name() const override { return "syzkaller"; }
  BaselineResult Run(Hypervisor& target, Arch arch, uint64_t budget,
                     int samples) override;

 private:
  uint64_t seed_;
};

class IrisSim : public BaselineTool {
 public:
  explicit IrisSim(uint64_t seed = 11) : seed_(seed) {}
  std::string_view name() const override { return "iris"; }
  BaselineResult Run(Hypervisor& target, Arch arch, uint64_t budget,
                     int samples) override;

 private:
  // The paper observed IRIS crashing after a few minutes in the nested
  // environment; the stand-in stops after this many iterations.
  static constexpr uint64_t kStabilityLimit = 1500;
  uint64_t seed_;
};

class SelftestsSim : public BaselineTool {
 public:
  std::string_view name() const override { return "selftests"; }
  BaselineResult Run(Hypervisor& target, Arch arch, uint64_t budget,
                     int samples) override;
  // Number of test cases in the suite (paper: ~60).
  static size_t TestCount(Arch arch);
};

class KvmUnitTestsSim : public BaselineTool {
 public:
  std::string_view name() const override { return "kvm-unit-tests"; }
  BaselineResult Run(Hypervisor& target, Arch arch, uint64_t budget,
                     int samples) override;
  // Number of test cases in the suite (paper: 84).
  static size_t TestCount(Arch arch);
};

class XtfSim : public BaselineTool {
 public:
  std::string_view name() const override { return "xtf"; }
  BaselineResult Run(Hypervisor& target, Arch arch, uint64_t budget,
                     int samples) override;
};

// Shared tail: snapshot coverage into a BaselineResult.
BaselineResult FinishBaseline(Hypervisor& target, Arch arch,
                              std::vector<CoverageSample> series,
                              bool terminated_early);

}  // namespace neco

#endif  // SRC_BASELINES_BASELINE_H_
