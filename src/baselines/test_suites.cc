// Fixed deterministic test suites: KVM selftests, KVM-unit-tests, and the
// Xen Test Framework. Unlike the fuzzers these run a constant scenario
// list, so a single pass yields their full coverage (paper: "Selftests run
// only 60 test cases in about 80 seconds, and KVM-unit-tests run only 84").
#include "src/baselines/baseline.h"

#include "src/arch/vmx_bits.h"
#include "src/hv/sim_kvm/kvm.h"
#include "src/support/bits.h"

namespace neco {
namespace {

void WriteRevisions(Hypervisor& target) {
  target.guest_memory().Write32(0x1000, Vmcs::kRevisionId);
  target.guest_memory().Write32(0x2000, Vmcs::kRevisionId);
}

VmxInsn Vmx(VmxOp op, uint64_t operand = 0) {
  VmxInsn insn;
  insn.op = op;
  insn.operand = operand;
  return insn;
}

VmxInsn VmxWrite(VmcsField field, uint64_t value) {
  VmxInsn insn;
  insn.op = VmxOp::kVmwrite;
  insn.field = field;
  insn.value = value;
  return insn;
}

GuestInsn Insn(GuestInsnKind kind, uint64_t a0 = 0, uint64_t a1 = 0) {
  GuestInsn insn;
  insn.kind = kind;
  insn.arg0 = a0;
  insn.arg1 = a1;
  return insn;
}

// Launches the golden VMCS after applying `tweaks`, from a clean VM.
void VmxScenario(Hypervisor& target,
                 const std::vector<std::pair<VmcsField, uint64_t>>& tweaks,
                 const std::vector<GuestInsn>& l2_insns = {}) {
  target.StartVm(VcpuConfig::Default(Arch::kIntel));
  WriteRevisions(target);
  Vmcs vmcs12 = MakeDefaultVmcs();
  for (const auto& [field, value] : tweaks) {
    vmcs12.Write(field, value);
  }
  target.HandleVmxInstruction(Vmx(VmxOp::kVmxon, 0x1000));
  target.HandleVmxInstruction(Vmx(VmxOp::kVmclear, 0x2000));
  target.HandleVmxInstruction(Vmx(VmxOp::kVmptrld, 0x2000));
  for (const VmcsFieldInfo& info : VmcsFieldTable()) {
    if (info.group != VmcsFieldGroup::kReadOnlyData) {
      target.HandleVmxInstruction(VmxWrite(info.field,
                                           vmcs12.Read(info.field)));
    }
  }
  target.HandleVmxInstruction(Vmx(VmxOp::kVmlaunch));
  for (const GuestInsn& insn : l2_insns) {
    if (!target.in_l2()) {
      break;
    }
    const HandledBy hb = target.HandleGuestInstruction(insn, GuestLevel::kL2);
    if (hb == HandledBy::kL1) {
      target.HandleVmxInstruction(Vmx(VmxOp::kVmresume));
    }
  }
}

SvmInsn Svm(SvmOp op, uint64_t operand = 0) {
  SvmInsn insn;
  insn.op = op;
  insn.operand = operand;
  return insn;
}

void SvmScenario(Hypervisor& target,
                 const std::vector<std::pair<VmcbField, uint64_t>>& tweaks,
                 const std::vector<GuestInsn>& l2_insns = {},
                 bool set_svme = true) {
  target.StartVm(VcpuConfig::Default(Arch::kAmd));
  if (set_svme) {
    target.HandleGuestInstruction(
        Insn(GuestInsnKind::kWrmsr, Msr::kIa32Efer,
             Efer::kSvme | Efer::kLme | Efer::kLma),
        GuestLevel::kL1);
  }
  Vmcb vmcb12 = MakeDefaultVmcb();
  for (const auto& [field, value] : tweaks) {
    vmcb12.Write(field, value);
  }
  for (const VmcbFieldInfo& info : VmcbFieldTable()) {
    SvmInsn wr;
    wr.op = SvmOp::kVmcbWrite;
    wr.operand = 0x3000;
    wr.field = info.field;
    wr.value = vmcb12.Read(info.field);
    target.HandleSvmInstruction(wr);
  }
  target.HandleSvmInstruction(Svm(SvmOp::kVmrun, 0x3000));
  for (const GuestInsn& insn : l2_insns) {
    if (!target.in_l2()) {
      break;
    }
    const HandledBy hb = target.HandleGuestInstruction(insn, GuestLevel::kL2);
    if (hb == HandledBy::kL1) {
      target.HandleSvmInstruction(Svm(SvmOp::kVmrun, 0x3000));
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// KVM selftests
// ---------------------------------------------------------------------------

size_t SelftestsSim::TestCount(Arch arch) {
  return arch == Arch::kIntel ? 34 : 26;
}

BaselineResult SelftestsSim::Run(Hypervisor& target, Arch arch,
                                 uint64_t budget, int samples) {
  CoverageUnit& cov = target.nested_coverage(arch);
  cov.ResetCoverage();
  target.sanitizers().Clear();
  auto* kvm = dynamic_cast<SimKvm*>(&target);

  if (arch == Arch::kIntel) {
    // vmx_* selftests: positive launches, per-error negative tests, and
    // the state save/restore ioctls.
    VmxScenario(target, {}, {Insn(GuestInsnKind::kCpuid),
                             Insn(GuestInsnKind::kVmcall),
                             Insn(GuestInsnKind::kHlt)});
    VmxScenario(target, {}, {Insn(GuestInsnKind::kRdmsr, Msr::kIa32Efer),
                             Insn(GuestInsnKind::kWrmsr, Msr::kStar, 1),
                             Insn(GuestInsnKind::kIoOut, 0x80, 1)});
    // vmx_vmxon errors.
    target.StartVm(VcpuConfig::Default(arch));
    target.HandleVmxInstruction(Vmx(VmxOp::kVmxon, 0x1001));  // Misaligned.
    target.HandleVmxInstruction(Vmx(VmxOp::kVmxon, 0));       // Null.
    WriteRevisions(target);
    target.HandleVmxInstruction(Vmx(VmxOp::kVmxon, 0x1000));
    target.HandleVmxInstruction(Vmx(VmxOp::kVmxon, 0x1000));  // Double.
    // vmclear/vmptrld errors.
    target.HandleVmxInstruction(Vmx(VmxOp::kVmclear, 0x1000));  // VMXON ptr.
    target.HandleVmxInstruction(Vmx(VmxOp::kVmclear, 0x2001));  // Misaligned.
    target.HandleVmxInstruction(Vmx(VmxOp::kVmptrld, 0x1000));
    target.HandleVmxInstruction(Vmx(VmxOp::kVmptrld, 0x4000));  // Bad rev.
    // vmwrite/vmread errors.
    target.HandleVmxInstruction(Vmx(VmxOp::kVmclear, 0x2000));
    target.HandleVmxInstruction(Vmx(VmxOp::kVmptrld, 0x2000));
    {
      VmxInsn bad = VmxWrite(static_cast<VmcsField>(0xffff), 1);
      target.HandleVmxInstruction(bad);
      bad.op = VmxOp::kVmread;
      target.HandleVmxInstruction(bad);
      target.HandleVmxInstruction(
          VmxWrite(VmcsField::kVmExitReason, 0));  // Read-only field.
    }
    // Launch-state machine.
    target.HandleVmxInstruction(Vmx(VmxOp::kVmresume));  // Before launch.
    // Negative entries exercised by dedicated selftests.
    VmxScenario(target, {{VmcsField::kGuestActivityState, 5}});
    VmxScenario(target, {{VmcsField::kVmcsLinkPointer, 0x123}});
    VmxScenario(target, {{VmcsField::kGuestCr3,
                          (1ULL << 60)}});  // CR3 beyond MAXPHYADDR.
    VmxScenario(target, {{VmcsField::kHostCr0, 0}});
    VmxScenario(target, {{VmcsField::kCr3TargetCount, 9}});
    VmxScenario(target,
                {{VmcsField::kPinBasedVmExecControl, 0}});  // Reserved-0.
    VmxScenario(target, {{VmcsField::kVmEntryIntrInfoField,
                          (1u << 31) | (1u << 8)}});  // Reserved type.
    // MSR-load canonical test (vmx_msr selftest).
    {
      target.StartVm(VcpuConfig::Default(arch));
      WriteRevisions(target);
      Vmcs vmcs12 = MakeDefaultVmcs();
      vmcs12.Write(VmcsField::kVmEntryMsrLoadCount, 1);
      vmcs12.Write(VmcsField::kVmEntryMsrLoadAddr, 0x10000);
      WriteMsrAreaEntry(target.guest_memory(), 0x10000, 0,
                        {Msr::kKernelGsBase, 0x8000000000000000ULL});
      target.HandleVmxInstruction(Vmx(VmxOp::kVmxon, 0x1000));
      target.HandleVmxInstruction(Vmx(VmxOp::kVmclear, 0x2000));
      target.HandleVmxInstruction(Vmx(VmxOp::kVmptrld, 0x2000));
      for (const VmcsFieldInfo& info : VmcsFieldTable()) {
        if (info.group != VmcsFieldGroup::kReadOnlyData) {
          target.HandleVmxInstruction(
              VmxWrite(info.field, vmcs12.Read(info.field)));
        }
      }
      target.HandleVmxInstruction(Vmx(VmxOp::kVmlaunch));
    }
    // invept / invvpid.
    VmxScenario(target, {});
    target.HandleVmxInstruction(Vmx(VmxOp::kInvept, 1));
    target.HandleVmxInstruction(Vmx(VmxOp::kInvept, 7));
    target.HandleVmxInstruction(Vmx(VmxOp::kInvvpid, 0));
    target.HandleVmxInstruction(Vmx(VmxOp::kInvvpid, 9));
    target.HandleVmxInstruction(Vmx(VmxOp::kVmptrst));
    target.HandleVmxInstruction(Vmx(VmxOp::kVmxoff));
    // State save/restore ioctls — host-side-only lines.
    if (kvm != nullptr) {
      VmxScenario(target, {}, {Insn(GuestInsnKind::kCpuid)});
      kvm->IoctlGetNestedState();
      kvm->IoctlSetNestedState(0x7);
      kvm->IoctlSetNestedState(0x4);  // Rejected combination.
      kvm->IoctlSetNestedState(0);
      kvm->IoctlLeaveNested();
    }
  } else {
    // svm_* selftests.
    SvmScenario(target, {}, {Insn(GuestInsnKind::kCpuid),
                             Insn(GuestInsnKind::kVmcall),
                             Insn(GuestInsnKind::kHlt)});
    SvmScenario(target, {}, {Insn(GuestInsnKind::kRdmsr, Msr::kIa32Efer),
                             Insn(GuestInsnKind::kIoOut, 0x80, 1),
                             Insn(GuestInsnKind::kMovToCr0, 0x80000031ULL)});
    SvmScenario(target, {}, {}, /*set_svme=*/false);  // #UD path.
    SvmScenario(target, {{VmcbField::kGuestAsid, 0}});
    SvmScenario(target, {{VmcbField::kInterceptVec4, 0}});  // No VMRUN icpt.
    SvmScenario(target, {{VmcbField::kCr0, Cr0::kNw | Cr0::kPe}});
    SvmScenario(target, {{VmcbField::kEfer, 0}});            // SVME clear.
    SvmScenario(target, {{VmcbField::kCr4, ~0ULL}});
    SvmScenario(target, {{VmcbField::kDr7, ~0ULL}});
    SvmScenario(target,
                {{VmcbField::kEfer,
                  Efer::kSvme | Efer::kLme | Efer::kLma},
                 {VmcbField::kCr4, 0}});  // Long mode without PAE.
    SvmScenario(target, {{VmcbField::kEventInj, (1ULL << 31) | (1ULL << 8)}});
    SvmScenario(target, {{VmcbField::kNestedCtl, 0}});  // NP off for L2.
    SvmScenario(target, {{VmcbField::kPauseFilterCount, 100}},
                {Insn(GuestInsnKind::kPause)});
    // Valid event injection (NMI), exception intercepts, selective CR0.
    SvmScenario(target, {{VmcbField::kEventInj, (1ULL << 31) | (2ULL << 8) | 2}},
                {Insn(GuestInsnKind::kCpuid)});
    SvmScenario(target, {{VmcbField::kInterceptExceptions, 1u << 13}},
                {Insn(GuestInsnKind::kRaiseException, 13, 0),
                 Insn(GuestInsnKind::kRaiseException, 6, 0)});
    SvmScenario(target,
                {{VmcbField::kInterceptVec3,
                  SvmIntercept3::kCpuid | SvmIntercept3::kCr0SelWrite |
                      SvmIntercept3::kInvlpg | SvmIntercept3::kRdtsc}},
                {Insn(GuestInsnKind::kMovToCr0Selective, 0x80000011ULL),
                 Insn(GuestInsnKind::kInvlpg, 0x2000),
                 Insn(GuestInsnKind::kRdtsc),
                 Insn(GuestInsnKind::kRdtscp),
                 Insn(GuestInsnKind::kMonitor),
                 Insn(GuestInsnKind::kMwait),
                 Insn(GuestInsnKind::kXsetbv)});
    {
      // NPT disabled at module level.
      VcpuConfig config = VcpuConfig::Default(Arch::kAmd);
      config.features.Set(CpuFeature::kNpt, false);
      target.StartVm(config);
      target.HandleGuestInstruction(
          Insn(GuestInsnKind::kWrmsr, Msr::kIa32Efer,
               Efer::kSvme | Efer::kLme | Efer::kLma),
          GuestLevel::kL1);
      Vmcb vmcb12 = MakeDefaultVmcb();
      for (const VmcbFieldInfo& info : VmcbFieldTable()) {
        SvmInsn wr;
        wr.op = SvmOp::kVmcbWrite;
        wr.operand = 0x3000;
        wr.field = info.field;
        wr.value = vmcb12.Read(info.field);
        target.HandleSvmInstruction(wr);
      }
      target.HandleSvmInstruction(Svm(SvmOp::kVmrun, 0x3000));
    }
    // vmload/vmsave/stgi/clgi.
    target.StartVm(VcpuConfig::Default(arch));
    target.HandleGuestInstruction(
        Insn(GuestInsnKind::kWrmsr, Msr::kIa32Efer, Efer::kSvme),
        GuestLevel::kL1);
    target.HandleSvmInstruction(Svm(SvmOp::kVmload, 0x3000));
    target.HandleSvmInstruction(Svm(SvmOp::kVmsave, 0x3000));
    target.HandleSvmInstruction(Svm(SvmOp::kVmload, 0x3001));  // Misaligned.
    target.HandleSvmInstruction(Svm(SvmOp::kClgi));
    target.HandleSvmInstruction(Svm(SvmOp::kVmrun, 0x3000));  // GIF clear.
    target.HandleSvmInstruction(Svm(SvmOp::kStgi));
    target.HandleSvmInstruction(Svm(SvmOp::kInvlpga, 0x1000));
    target.HandleSvmInstruction(Svm(SvmOp::kSkinit));
    target.HandleSvmInstruction(Svm(SvmOp::kVmmcall));
    // MSR intercept bitmap exercise.
    {
      Vmcb vmcb12 = MakeDefaultVmcb();
      target.guest_memory().SetBit(vmcb12.Read(VmcbField::kMsrpmBasePa),
                                   Msr::kIa32SysenterCs * 2, true);
      SvmScenario(target, {},
                  {Insn(GuestInsnKind::kRdmsr, Msr::kIa32SysenterCs),
                   Insn(GuestInsnKind::kWrmsr, Msr::kIa32SysenterCs, 5)});
    }
    // State ioctls.
    if (kvm != nullptr) {
      SvmScenario(target, {}, {Insn(GuestInsnKind::kCpuid)});
      kvm->IoctlGetNestedState();
      kvm->IoctlSetNestedState(0x3);
      kvm->IoctlSetNestedState(0x2);  // Rejected: in L2 without SVME.
      kvm->IoctlSetNestedState(0);
    }
  }

  std::vector<CoverageSample> series{{TestCount(arch), cov.percent()}};
  return FinishBaseline(target, arch, std::move(series), false);
}

// ---------------------------------------------------------------------------
// KVM-unit-tests
// ---------------------------------------------------------------------------

size_t KvmUnitTestsSim::TestCount(Arch arch) {
  return arch == Arch::kIntel ? 52 : 32;
}

BaselineResult KvmUnitTestsSim::Run(Hypervisor& target, Arch arch,
                                    uint64_t budget, int samples) {
  CoverageUnit& cov = target.nested_coverage(arch);
  cov.ResetCoverage();
  target.sanitizers().Clear();

  if (arch == Arch::kIntel) {
    // vmx_tests.c style: one targeted invalid value per consistency check,
    // each launched from a fresh golden state.
    const std::vector<std::pair<VmcsField, uint64_t>> corruptions = {
        {VmcsField::kPinBasedVmExecControl, 0},
        {VmcsField::kPinBasedVmExecControl, ~0ULL},
        {VmcsField::kCpuBasedVmExecControl, 0},
        {VmcsField::kCpuBasedVmExecControl, ~0ULL},
        {VmcsField::kSecondaryVmExecControl, ~0ULL},
        {VmcsField::kVmExitControls, 0},
        {VmcsField::kVmEntryControls, 0},
        {VmcsField::kCr3TargetCount, 5},
        {VmcsField::kIoBitmapA, 0x123},
        {VmcsField::kMsrBitmap, 0x7},
        {VmcsField::kEptPointer, 0x2},        // Bad memtype.
        {VmcsField::kEptPointer, 0x1e | (1ULL << 50)},
        {VmcsField::kVirtualProcessorId, 0},
        {VmcsField::kPostedIntrDescAddr, 0x1},
        {VmcsField::kVmEntryMsrLoadCount, 5000},
        {VmcsField::kVmEntryIntrInfoField, (1u << 31) | (1u << 8)},
        {VmcsField::kVmEntryIntrInfoField, (1u << 31) | (2u << 8) | 9},
        {VmcsField::kVmEntryIntrInfoField,
         (1u << 31) | (3u << 8) | (1u << 11) | 1},
        {VmcsField::kHostCr0, 0},
        {VmcsField::kHostCr4, 0},
        {VmcsField::kHostCr3, 1ULL << 60},
        {VmcsField::kHostFsBase, 0x0000900000000000ULL},
        {VmcsField::kHostCsSelector, 0},
        {VmcsField::kHostTrSelector, 0},
        {VmcsField::kHostCsSelector, 0x0b},  // RPL set.
        {VmcsField::kHostIa32Efer, 0xd00},
        {VmcsField::kHostRip, 0x0000900000000000ULL},
        {VmcsField::kGuestCr0, 0},
        {VmcsField::kGuestCr0, 0x80000030ULL},  // PG && !PE.
        {VmcsField::kGuestCr4, 0},
        {VmcsField::kGuestCr3, 1ULL << 60},
        {VmcsField::kGuestIa32Efer, 0xd00},
        {VmcsField::kGuestIa32Efer, 0},        // LMA vs IA-32e mismatch.
        {VmcsField::kGuestRflags, 0},
        {VmcsField::kGuestRflags, Rflags::kFixed1 | Rflags::kVm},
        {VmcsField::kGuestCsArBytes, SegAr::kUnusable},
        {VmcsField::kGuestCsArBytes, 0xa09bu | (1u << 14)},  // L && D/B.
        {VmcsField::kGuestTrArBytes, SegAr::kUnusable},
        {VmcsField::kGuestTrSelector, 0x1c},   // TI set.
        {VmcsField::kGuestActivityState, 1},
        {VmcsField::kGuestActivityState, 2},
        {VmcsField::kGuestActivityState, 3},
        {VmcsField::kGuestActivityState, 9},
        {VmcsField::kGuestInterruptibilityInfo, 0x3},
        {VmcsField::kGuestInterruptibilityInfo, 0xffff0000u},
        {VmcsField::kGuestPendingDbgExceptions, ~0ULL},
        {VmcsField::kVmcsLinkPointer, 0},
    };
    for (const auto& corruption : corruptions) {
      VmxScenario(target, {corruption});
    }
    // Positive tests with runtime exits: vmx_tests.c toggles every
    // configurable intercept in both directions.
    struct InterceptToggle {
      GuestInsnKind kind;
      uint32_t proc_bit;
    };
    constexpr InterceptToggle kToggles[] = {
        {GuestInsnKind::kHlt, ProcCtl::kHltExiting},
        {GuestInsnKind::kRdtsc, ProcCtl::kRdtscExiting},
        {GuestInsnKind::kRdtscp, ProcCtl::kRdtscExiting},
        {GuestInsnKind::kRdpmc, ProcCtl::kRdpmcExiting},
        {GuestInsnKind::kPause, ProcCtl::kPauseExiting},
        {GuestInsnKind::kInvlpg, ProcCtl::kInvlpgExiting},
        {GuestInsnKind::kMwait, ProcCtl::kMwaitExiting},
        {GuestInsnKind::kMonitor, ProcCtl::kMonitorExiting},
        {GuestInsnKind::kMovToDr, ProcCtl::kMovDrExiting},
        {GuestInsnKind::kMovToCr8, ProcCtl::kCr8LoadExiting},
        {GuestInsnKind::kMovFromCr3, ProcCtl::kCr3StoreExiting},
    };
    const Vmcs golden = MakeDefaultVmcs();
    const uint32_t base_proc =
        static_cast<uint32_t>(golden.Read(VmcsField::kCpuBasedVmExecControl));
    for (const InterceptToggle& toggle : kToggles) {
      VmxScenario(target,
                  {{VmcsField::kCpuBasedVmExecControl,
                    base_proc | toggle.proc_bit}},
                  {Insn(toggle.kind, 0x400, 7)});
      VmxScenario(target,
                  {{VmcsField::kCpuBasedVmExecControl,
                    base_proc & ~toggle.proc_bit}},
                  {Insn(toggle.kind, 0x400, 7)});
    }
    // Secondary-control intercepts.
    const uint32_t base_sec = static_cast<uint32_t>(
        golden.Read(VmcsField::kSecondaryVmExecControl));
    for (const uint32_t bit :
         {Proc2Ctl::kRdrandExiting, Proc2Ctl::kRdseedExiting,
          Proc2Ctl::kWbinvdExiting, Proc2Ctl::kPauseLoopExiting,
          Proc2Ctl::kEnableRdtscp, Proc2Ctl::kEnableInvpcid}) {
      VmxScenario(target,
                  {{VmcsField::kSecondaryVmExecControl, base_sec | bit}},
                  {Insn(GuestInsnKind::kRdrand), Insn(GuestInsnKind::kRdseed),
                   Insn(GuestInsnKind::kWbinvd), Insn(GuestInsnKind::kPause),
                   Insn(GuestInsnKind::kRdtscp),
                   Insn(GuestInsnKind::kInvpcid)});
    }
    // MSR-bitmap polarity tests.
    {
      target.StartVm(VcpuConfig::Default(Arch::kIntel));
      WriteRevisions(target);
      Vmcs vmcs12 = MakeDefaultVmcs();
      target.guest_memory().SetBit(vmcs12.Read(VmcsField::kMsrBitmap),
                                   Msr::kIa32SysenterCs, true);
      target.HandleVmxInstruction(Vmx(VmxOp::kVmxon, 0x1000));
      target.HandleVmxInstruction(Vmx(VmxOp::kVmclear, 0x2000));
      target.HandleVmxInstruction(Vmx(VmxOp::kVmptrld, 0x2000));
      for (const VmcsFieldInfo& info : VmcsFieldTable()) {
        if (info.group != VmcsFieldGroup::kReadOnlyData) {
          target.HandleVmxInstruction(
              VmxWrite(info.field, vmcs12.Read(info.field)));
        }
      }
      target.HandleVmxInstruction(Vmx(VmxOp::kVmlaunch));
      for (const GuestInsn& insn :
           {Insn(GuestInsnKind::kRdmsr, Msr::kIa32SysenterCs),
            Insn(GuestInsnKind::kRdmsr, Msr::kStar),
            Insn(GuestInsnKind::kWrmsr, Msr::kIa32SysenterCs, 1),
            Insn(GuestInsnKind::kRdmsr, 0xdeadbeef),
            Insn(GuestInsnKind::kRdmsr, Msr::kIa32VmxBasic)}) {
        if (!target.in_l2()) {
          break;
        }
        if (target.HandleGuestInstruction(insn, GuestLevel::kL2) ==
            HandledBy::kL1) {
          target.HandleVmxInstruction(Vmx(VmxOp::kVmresume));
        }
      }
    }
    // Unconditional-I/O vs bitmap-I/O tests.
    VmxScenario(target,
                {{VmcsField::kCpuBasedVmExecControl,
                  (base_proc | ProcCtl::kUncondIoExiting) &
                      ~ProcCtl::kUseIoBitmaps}},
                {Insn(GuestInsnKind::kIoIn, 0x60),
                 Insn(GuestInsnKind::kIoOut, 0x80, 1)});
    // CR3-target list suppression.
    VmxScenario(target,
                {{VmcsField::kCr3TargetCount, 2},
                 {VmcsField::kCr3TargetValue0, 0x2000},
                 {VmcsField::kCr3TargetValue1, 0x6000}},
                {Insn(GuestInsnKind::kMovToCr3, 0x6000),
                 Insn(GuestInsnKind::kMovToCr3, 0x7000)});
    // TPR threshold interaction.
    VmxScenario(target,
                {{VmcsField::kCpuBasedVmExecControl,
                  base_proc | ProcCtl::kUseTprShadow},
                 {VmcsField::kTprThreshold, 0}},
                {Insn(GuestInsnKind::kMovToCr8, 5)});
    // invept/invvpid operand tests and the pointer instructions.
    VmxScenario(target, {});
    target.HandleVmxInstruction(Vmx(VmxOp::kInvept, 1));
    target.HandleVmxInstruction(Vmx(VmxOp::kInvept, 2));
    target.HandleVmxInstruction(Vmx(VmxOp::kInvept, 0));
    target.HandleVmxInstruction(Vmx(VmxOp::kInvvpid, 1));
    target.HandleVmxInstruction(Vmx(VmxOp::kInvvpid, 5));
    target.HandleVmxInstruction(Vmx(VmxOp::kVmptrst));
    target.HandleVmxInstruction(Vmx(VmxOp::kVmxoff));
    // Exception-bitmap polarity sweep.
    VmxScenario(target, {{VmcsField::kExceptionBitmap, (1u << 6) | (1u << 13)}},
                {Insn(GuestInsnKind::kRaiseException, 6),
                 Insn(GuestInsnKind::kRaiseException, 13),
                 Insn(GuestInsnKind::kRaiseException, 3)});
    VmxScenario(target, {},
                {Insn(GuestInsnKind::kMovToCr0, 0x80000031ULL | Cr0::kCd),
                 Insn(GuestInsnKind::kMovToCr3, 0x5000),
                 Insn(GuestInsnKind::kMovToCr4, Cr4::kPae | Cr4::kVmxe),
                 Insn(GuestInsnKind::kMovToCr8, 3),
                 Insn(GuestInsnKind::kMovToDr, 0x400, 7)});
    VmxScenario(target, {},
                {Insn(GuestInsnKind::kRaiseException, 6),
                 Insn(GuestInsnKind::kRaiseException, 14, 0x2),
                 Insn(GuestInsnKind::kXsetbv, 0),
                 Insn(GuestInsnKind::kMonitor), Insn(GuestInsnKind::kMwait),
                 Insn(GuestInsnKind::kInvlpg, 0x1000)});
  } else {
    const std::vector<std::pair<VmcbField, uint64_t>> corruptions = {
        {VmcbField::kGuestAsid, 0},
        {VmcbField::kInterceptVec4, SvmIntercept4::kVmmcall},  // No VMRUN.
        {VmcbField::kEfer, 0},
        {VmcbField::kEfer, Efer::kSvme | 0x4},  // Reserved bit.
        {VmcbField::kCr0, Cr0::kNw | Cr0::kPe},
        {VmcbField::kCr0, 0x1ffffffffULL},      // High bits.
        {VmcbField::kCr3, 1ULL << 60},
        {VmcbField::kCr4, Cr4::kVmxe},
        {VmcbField::kCr4, ~0ULL},
        {VmcbField::kDr6, ~0ULL},
        {VmcbField::kDr7, ~0ULL},
        {VmcbField::kEventInj, (1ULL << 31) | (1ULL << 8)},
        {VmcbField::kEventInj, (1ULL << 31) | (2ULL << 8) | 5},
        {VmcbField::kNestedCr3, (1ULL << 60) | 1},
    };
    for (const auto& corruption : corruptions) {
      SvmScenario(target, {corruption});
    }
    SvmScenario(target, {}, {Insn(GuestInsnKind::kCpuid),
                             Insn(GuestInsnKind::kHlt),
                             Insn(GuestInsnKind::kRdtsc),
                             Insn(GuestInsnKind::kRdtscp),
                             Insn(GuestInsnKind::kPause),
                             Insn(GuestInsnKind::kWbinvd)});
    SvmScenario(target, {},
                {Insn(GuestInsnKind::kMovToCr0, 0x80000031ULL),
                 Insn(GuestInsnKind::kMovToCr0Selective, 0x80000011ULL),
                 Insn(GuestInsnKind::kMovToCr3, 0x5000),
                 Insn(GuestInsnKind::kMovToCr4, Cr4::kPae),
                 Insn(GuestInsnKind::kMovToDr, 0x400, 7),
                 Insn(GuestInsnKind::kRaiseException, 13, 0)});
    SvmScenario(target, {},
                {Insn(GuestInsnKind::kIoIn, 0x70), Insn(GuestInsnKind::kIoOut, 0x80, 1),
                 Insn(GuestInsnKind::kRdmsr, Msr::kIa32Efer),
                 Insn(GuestInsnKind::kWrmsr, Msr::kStar, 0x10),
                 Insn(GuestInsnKind::kVmcall),
                 Insn(GuestInsnKind::kMonitor), Insn(GuestInsnKind::kMwait)});
  }

  std::vector<CoverageSample> series{{TestCount(arch), cov.percent()}};
  return FinishBaseline(target, arch, std::move(series), false);
}

// ---------------------------------------------------------------------------
// Xen Test Framework
// ---------------------------------------------------------------------------

BaselineResult XtfSim::Run(Hypervisor& target, Arch arch, uint64_t budget,
                           int samples) {
  CoverageUnit& cov = target.nested_coverage(arch);
  cov.ResetCoverage();
  target.sanitizers().Clear();

  // XTF's nested tests are a small functional smoke set: bring up VMX/SVM,
  // run one guest, probe a couple of MSRs. No systematic negative testing.
  if (arch == Arch::kIntel) {
    VmxScenario(target, {}, {Insn(GuestInsnKind::kCpuid)});
    target.StartVm(VcpuConfig::Default(arch));
    WriteRevisions(target);
    target.HandleVmxInstruction(Vmx(VmxOp::kVmxon, 0x1000));
    target.HandleVmxInstruction(Vmx(VmxOp::kVmptrst));
    target.HandleGuestInstruction(
        Insn(GuestInsnKind::kRdmsr, Msr::kIa32VmxBasic), GuestLevel::kL1);
    target.HandleVmxInstruction(Vmx(VmxOp::kVmxoff));
  } else {
    // XTF's SVM side is thinner still: probe instructions without ever
    // reaching a nested guest (paper Table 4: 10.8%).
    target.StartVm(VcpuConfig::Default(arch));
    target.HandleSvmInstruction(Svm(SvmOp::kVmrun, 0x3000));  // No SVME.
    target.HandleGuestInstruction(
        Insn(GuestInsnKind::kWrmsr, Msr::kIa32Efer, Efer::kSvme),
        GuestLevel::kL1);
    target.HandleSvmInstruction(Svm(SvmOp::kStgi));
    target.HandleSvmInstruction(Svm(SvmOp::kVmload, 0x3001));  // Misaligned.
    target.HandleSvmInstruction(Svm(SvmOp::kVmrun, 0x3000));   // Zero VMCB.
    target.HandleGuestInstruction(
        Insn(GuestInsnKind::kRdmsr, Msr::kVmCr), GuestLevel::kL1);
  }

  std::vector<CoverageSample> series{{1, cov.percent()}};
  return FinishBaseline(target, arch, std::move(series), false);
}

}  // namespace neco
