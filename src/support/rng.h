// Deterministic pseudo-random number generation for reproducible fuzzing.
//
// The engine is xoshiro256** seeded through splitmix64, which is the
// combination AFL++ and libFuzzer derivatives use for cheap, high-quality,
// fully deterministic streams. All campaign results in this repository are
// reproducible from a single 64-bit seed.
#ifndef SRC_SUPPORT_RNG_H_
#define SRC_SUPPORT_RNG_H_

#include <cstdint>
#include <cstddef>

namespace neco {

// splitmix64 step; used for seeding and as a standalone mixer.
constexpr uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0. Not thread-safe; create one per campaign/thread.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x6e65636f66757a7aULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& w : s_) {
      w = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). bound == 0 returns 0.
  uint64_t Below(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    // Lemire's multiply-shift rejection-free reduction is fine here: the
    // slight modulo bias is irrelevant for fuzzing entropy.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform value in [lo, hi] inclusive.
  uint64_t Between(uint64_t lo, uint64_t hi) {
    if (hi <= lo) {
      return lo;
    }
    return lo + Below(hi - lo + 1);
  }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

  bool CoinFlip() { return (Next() & 1) != 0; }

  double NextDouble() {  // in [0, 1)
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Raw generator state, for durable campaign snapshots: a restored
  // stream must continue exactly where the saved one stopped, so the
  // four state words travel through the wire codec verbatim.
  struct State {
    uint64_t s[4] = {};
  };

  State GetState() const {
    State state;
    for (size_t i = 0; i < 4; ++i) {
      state.s[i] = s_[i];
    }
    return state;
  }

  void SetState(const State& state) {
    for (size_t i = 0; i < 4; ++i) {
      s_[i] = state.s[i];
    }
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4] = {};
};

}  // namespace neco

#endif  // SRC_SUPPORT_RNG_H_
