// Thread-safe errno formatting.
//
// std::strerror returns a pointer into storage that glibc may share
// between threads (and other libcs definitely do) — and nearly every
// caller in this codebase is on a merge/poll thread racing worker shards,
// so the classic "error text from one failure, errno from another"
// corruption is a live hazard, not a theoretical one. SafeStrerror wraps
// strerror_r, papering over the XSI (int return, POSIX) vs GNU (char*
// return, _GNU_SOURCE on glibc) signature split, and returns a plain
// std::string the caller owns.
//
// necolint enforces the boundary: a raw strerror( call anywhere in src/
// outside this wrapper is a lint error (gai_strerror, which formats
// getaddrinfo's own error space and is thread-safe, is exempt).
#ifndef SRC_SUPPORT_ERRNO_UTIL_H_
#define SRC_SUPPORT_ERRNO_UTIL_H_

#include <string>

namespace neco {

// The message for `err` (an errno value), e.g. "Broken pipe"; for an
// unknown value, a stable "Unknown error <n>"-style text. Never returns
// an empty string, never touches global state.
std::string SafeStrerror(int err);

}  // namespace neco

#endif  // SRC_SUPPORT_ERRNO_UTIL_H_
