// Structured consumption of raw fuzzing-input bytes.
//
// NecoFuzz partitions each 2 KiB AFL++ input among the three VM-generator
// components (harness, validator, configurator). Each component consumes its
// slice through a ByteReader, which provides deterministic primitives for
// deriving integers and bounded choices. When the slice is exhausted the
// reader wraps around; an input is therefore always "long enough", matching
// the paper's fixed-size-input design.
#ifndef SRC_SUPPORT_BYTE_READER_H_
#define SRC_SUPPORT_BYTE_READER_H_

#include <cstdint>
#include <cstddef>
#include <span>

namespace neco {

class ByteReader {
 public:
  ByteReader() = default;
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  bool empty() const { return data_.empty(); }
  size_t size() const { return data_.size(); }
  size_t consumed() const { return consumed_; }

  uint8_t U8() {
    if (data_.empty()) {
      return 0;
    }
    const uint8_t b = data_[pos_];
    pos_ = (pos_ + 1) % data_.size();
    ++consumed_;
    return b;
  }

  uint16_t U16() {
    return static_cast<uint16_t>(U8()) | static_cast<uint16_t>(U8()) << 8;
  }

  uint32_t U32() {
    return static_cast<uint32_t>(U16()) | static_cast<uint32_t>(U16()) << 16;
  }

  uint64_t U64() {
    return static_cast<uint64_t>(U32()) | static_cast<uint64_t>(U32()) << 32;
  }

  // Uniform-ish value in [0, bound). bound == 0 returns 0.
  // Uses 32 input bits which keeps the mapping stable under byte mutation.
  uint64_t Below(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    return U32() % bound;
  }

  uint64_t Between(uint64_t lo, uint64_t hi) {
    if (hi <= lo) {
      return lo;
    }
    return lo + Below(hi - lo + 1);
  }

  bool Bool() { return (U8() & 1) != 0; }

  // True with probability num/den, driven by input bytes.
  bool Chance(uint32_t num, uint32_t den) {
    if (den == 0) {
      return false;
    }
    return (U16() % den) < num;
  }

  // Sub-reader over a slice of the underlying data (absolute offsets).
  ByteReader Slice(size_t offset, size_t length) const {
    if (offset >= data_.size()) {
      return ByteReader();
    }
    const size_t avail = data_.size() - offset;
    return ByteReader(data_.subspan(offset, length < avail ? length : avail));
  }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  size_t consumed_ = 0;
};

}  // namespace neco

#endif  // SRC_SUPPORT_BYTE_READER_H_
