#include "src/support/errno_util.h"

#include <string.h>

#include <cstdio>

namespace neco {
namespace {

// Overload resolution untangles the strerror_r signature split without
// any #ifdef on feature-test macros (glibc's depend on inclusion order):
// the XSI variant returns int (0 on success), the GNU variant returns the
// message pointer — which is `buf` only when the message was actually
// copied there.

// XSI: int strerror_r(int, char*, size_t).
const char* ResolveStrerrorResult(int rc, const char* buf) {
  return rc == 0 ? buf : nullptr;
}

// GNU: char* strerror_r(int, char*, size_t).
const char* ResolveStrerrorResult(const char* result, const char* /*buf*/) {
  return result;
}

}  // namespace

std::string SafeStrerror(int err) {
  char buf[256];
  buf[0] = '\0';
  const char* text = ResolveStrerrorResult(::strerror_r(err, buf, sizeof(buf)),
                                           buf);
  if (text != nullptr && text[0] != '\0') {
    return text;
  }
  char fallback[64];
  std::snprintf(fallback, sizeof(fallback), "Unknown error %d", err);
  return fallback;
}

}  // namespace neco
