// Clang thread-safety annotation macros (no-ops elsewhere).
//
// The engine's determinism contract rests on a small set of locking
// invariants — MergePipeline's state_mu_ over the merged campaign state,
// each transport's mu_ over its queue/error/stats — that used to be kept
// by code review alone. These macros hand those invariants to the
// compiler: clang's -Wthread-safety analysis (enabled with
// -Werror=thread-safety for clang builds, see the top-level
// CMakeLists.txt) statically proves that every access to a
// NECO_GUARDED_BY member happens with the named mutex held, and that
// every NECO_REQUIRES function is only called under it. GCC and other
// compilers see empty macros and compile the same code.
//
// Convention for new code (see README "Correctness tooling"):
//  * every member a mutex protects gets NECO_GUARDED_BY(mu_);
//  * a private helper that expects the caller to hold the lock gets
//    NECO_REQUIRES(mu_) — and a "Locked" name suffix;
//  * members touched by only one thread (e.g. drainer-only staging) get a
//    comment naming that thread instead of a fake guard;
//  * NECO_NO_THREAD_SAFETY_ANALYSIS is a last resort and must carry a
//    justification comment.
#ifndef SRC_SUPPORT_THREAD_ANNOTATIONS_H_
#define SRC_SUPPORT_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define NECO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NECO_THREAD_ANNOTATION(x)
#endif

// Documents that a member is protected by the given capability (mutex).
#define NECO_GUARDED_BY(x) NECO_THREAD_ANNOTATION(guarded_by(x))

// Documents that the *pointee* of a pointer member is protected.
#define NECO_PT_GUARDED_BY(x) NECO_THREAD_ANNOTATION(pt_guarded_by(x))

// The function may only be called while holding the capability.
#define NECO_REQUIRES(...) \
  NECO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// The function acquires / releases the capability and holds it across the
// call boundary (lock/unlock wrappers).
#define NECO_ACQUIRE(...) \
  NECO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define NECO_RELEASE(...) \
  NECO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// The function must be called WITHOUT the capability held (it acquires it
// itself; calling it under the lock would deadlock).
#define NECO_EXCLUDES(...) NECO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Declares a type as a capability (for hand-rolled lock types).
#define NECO_CAPABILITY(x) NECO_THREAD_ANNOTATION(capability(x))

// RAII types that acquire on construction and release on destruction.
#define NECO_SCOPED_CAPABILITY NECO_THREAD_ANNOTATION(scoped_lockable)

// The function returns a reference to the given capability.
#define NECO_RETURN_CAPABILITY(x) NECO_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: the function's locking is correct for a reason the
// analysis cannot see. Every use must explain why in a comment.
#define NECO_NO_THREAD_SAFETY_ANALYSIS \
  NECO_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SRC_SUPPORT_THREAD_ANNOTATIONS_H_
