// Bit-manipulation helpers shared across the architecture model, the
// validator, and the fuzzing engine.
#ifndef SRC_SUPPORT_BITS_H_
#define SRC_SUPPORT_BITS_H_

#include <bit>
#include <cstdint>
#include <cstddef>
#include <span>

namespace neco {

// Mask with the low `width` bits set. width in [0, 64].
constexpr uint64_t MaskLow(unsigned width) {
  if (width >= 64) {
    return ~0ULL;
  }
  return (1ULL << width) - 1;
}

constexpr uint64_t Bit(unsigned pos) { return 1ULL << pos; }

constexpr bool TestBit(uint64_t value, unsigned pos) {
  return (value & Bit(pos)) != 0;
}

constexpr uint64_t SetBit(uint64_t value, unsigned pos) {
  return value | Bit(pos);
}

constexpr uint64_t ClearBit(uint64_t value, unsigned pos) {
  return value & ~Bit(pos);
}

constexpr uint64_t AssignBit(uint64_t value, unsigned pos, bool on) {
  return on ? SetBit(value, pos) : ClearBit(value, pos);
}

constexpr uint64_t FlipBit(uint64_t value, unsigned pos) {
  return value ^ Bit(pos);
}

// Extract bits [lo, lo+width) as an unshifted value.
constexpr uint64_t ExtractBits(uint64_t value, unsigned lo, unsigned width) {
  return (value >> lo) & MaskLow(width);
}

// Replace bits [lo, lo+width) of `value` with `field`.
constexpr uint64_t DepositBits(uint64_t value, unsigned lo, unsigned width,
                               uint64_t field) {
  const uint64_t mask = MaskLow(width) << lo;
  return (value & ~mask) | ((field << lo) & mask);
}

// x86-64 canonical-address check for a 48-bit virtual address space:
// bits 63:47 must all equal bit 47.
constexpr bool IsCanonical(uint64_t addr) {
  const int64_t s = static_cast<int64_t>(addr);
  return (s >> 47) == 0 || (s >> 47) == -1;
}

// Round a value down so that its low `align_bits` bits are zero (e.g. page
// alignment for bitmap addresses stored in the VMCS).
constexpr uint64_t AlignDown(uint64_t value, unsigned align_bits) {
  return value & ~MaskLow(align_bits);
}

constexpr bool IsAligned(uint64_t value, unsigned align_bits) {
  return (value & MaskLow(align_bits)) == 0;
}

inline int Popcount64(uint64_t v) { return std::popcount(v); }

// Hamming distance between two equally-long byte spans. If lengths differ,
// the tail of the longer span counts every set bit as a difference.
inline size_t HammingDistance(std::span<const uint8_t> a,
                              std::span<const uint8_t> b) {
  size_t dist = 0;
  const size_t common = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < common; ++i) {
    dist += static_cast<size_t>(std::popcount(
        static_cast<unsigned>(a[i] ^ b[i])));
  }
  const auto& longer = a.size() > b.size() ? a : b;
  for (size_t i = common; i < longer.size(); ++i) {
    dist += static_cast<size_t>(std::popcount(
        static_cast<unsigned>(longer[i])));
  }
  return dist;
}

}  // namespace neco

#endif  // SRC_SUPPORT_BITS_H_
