// Annotated locking primitives: std::mutex / std::condition_variable with
// clang thread-safety capability attributes attached.
//
// Why wrappers instead of std types directly: clang's -Wthread-safety
// analysis only tracks lock state through functions that carry acquire/
// release attributes. libc++ can annotate its std::mutex, but libstdc++
// (what Linux builds link) does not — so NECO_GUARDED_BY members locked
// through a bare std::lock_guard would be flagged on every access. These
// wrappers are the thinnest possible shim (same fast path, zero extra
// state) that makes the analysis sound on every standard library:
//
//   neco::Mutex mu_;                      // the capability
//   int value_ NECO_GUARDED_BY(mu_);      // compiler-checked from here on
//   neco::MutexLock lock(&mu_);           // RAII acquire
//   while (value_ == 0) cv_.Wait(mu_);    // condition loop, lock held
//
// CondVar wraps std::condition_variable_any waiting on the Mutex itself
// (a BasicLockable); the unlock/relock inside the standard header is
// invisible to the analysis (system headers are exempt), while Wait's
// NECO_REQUIRES keeps callers honest about holding the lock.
#ifndef SRC_SUPPORT_MUTEX_H_
#define SRC_SUPPORT_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/support/thread_annotations.h"

namespace neco {

class NECO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NECO_ACQUIRE() { mu_.lock(); }
  void unlock() NECO_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII lock for a Mutex; the scoped-capability attribute lets the
// analysis treat its lifetime as the critical section.
class NECO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) NECO_ACQUIRE(*mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() NECO_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

class CondVar {
 public:
  // One blocking wait; spurious wakeups are possible, so callers loop:
  //
  //   while (!ConditionLocked()) cv_.Wait(mu_);
  //
  // The loop lives in the (annotated) calling function rather than in a
  // predicate lambda on purpose — the analysis checks lambda bodies as
  // separate unannotated functions, so a predicate reading guarded state
  // could not be verified. The caller must hold `mu` (typically via a
  // MutexLock in the same scope); Wait unlocks/relocks it while sleeping,
  // exactly like std::condition_variable.
  void Wait(Mutex& mu) NECO_REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace neco

#endif  // SRC_SUPPORT_MUTEX_H_
