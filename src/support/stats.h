// Small online-statistics helpers used by the benches (Figure 5 reports
// means and standard deviations of Hamming-distance distributions; the
// coverage benches report medians and 95% confidence intervals per the
// Klees et al. fuzzing-evaluation guidelines followed in the paper).
#ifndef SRC_SUPPORT_STATS_H_
#define SRC_SUPPORT_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace neco {

// Welford's online mean/variance.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  size_t count() const { return n_; }
  double mean() const { return mean_; }

  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  double stddev() const { return std::sqrt(variance()); }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

inline double Median(std::vector<double> v) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const size_t mid = v.size() / 2;
  if (v.size() % 2 == 1) {
    return v[mid];
  }
  return 0.5 * (v[mid - 1] + v[mid]);
}

// Normal-approximation 95% confidence half-width around the mean.
inline double ConfidenceHalfWidth95(const RunningStats& s) {
  if (s.count() < 2) {
    return 0.0;
  }
  return 1.96 * s.stddev() / std::sqrt(static_cast<double>(s.count()));
}

// Cohen's d effect size between two samples.
inline double CohensD(const RunningStats& a, const RunningStats& b) {
  if (a.count() < 2 || b.count() < 2) {
    return 0.0;
  }
  const double na = static_cast<double>(a.count());
  const double nb = static_cast<double>(b.count());
  const double pooled =
      ((na - 1) * a.variance() + (nb - 1) * b.variance()) / (na + nb - 2);
  if (pooled <= 0.0) {
    return 0.0;
  }
  return (a.mean() - b.mean()) / std::sqrt(pooled);
}

// Two-sided Mann-Whitney U test p-value (normal approximation), as used for
// the coverage comparisons in the paper's Section 5.1 methodology.
inline double MannWhitneyUP(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) {
    return 1.0;
  }
  struct Tagged {
    double v;
    int group;
  };
  std::vector<Tagged> all;
  all.reserve(a.size() + b.size());
  for (double x : a) {
    all.push_back({x, 0});
  }
  for (double x : b) {
    all.push_back({x, 1});
  }
  std::sort(all.begin(), all.end(),
            [](const Tagged& l, const Tagged& r) { return l.v < r.v; });
  // Assign mid-ranks for ties.
  std::vector<double> ranks(all.size());
  size_t i = 0;
  while (i < all.size()) {
    size_t j = i;
    while (j + 1 < all.size() && all[j + 1].v == all[i].v) {
      ++j;
    }
    const double rank = 0.5 * (static_cast<double>(i + 1) +
                               static_cast<double>(j + 1));
    for (size_t k = i; k <= j; ++k) {
      ranks[k] = rank;
    }
    i = j + 1;
  }
  double ra = 0.0;
  for (size_t k = 0; k < all.size(); ++k) {
    if (all[k].group == 0) {
      ra += ranks[k];
    }
  }
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double u = ra - na * (na + 1) / 2.0;
  const double mu = na * nb / 2.0;
  const double sigma = std::sqrt(na * nb * (na + nb + 1) / 12.0);
  if (sigma == 0.0) {
    return 1.0;
  }
  const double z = std::abs((u - mu) / sigma);
  // Two-sided p from the normal tail via erfc.
  return std::erfc(z / std::sqrt(2.0));
}

}  // namespace neco

#endif  // SRC_SUPPORT_STATS_H_
