#include "src/fuzz/mutator.h"

#include <cstring>

namespace neco {
namespace {

constexpr int8_t kInteresting8[] = {-128, -1, 0, 1, 16, 32, 64, 100, 127};
constexpr int16_t kInteresting16[] = {-32768, -129, 128, 255, 256, 512, 1000,
                                      1024, 4096, 32767};
constexpr int32_t kInteresting32[] = {-2147483647 - 1, -100663046, -32769,
                                      32768, 65535, 65536, 100663045,
                                      2147483647};

}  // namespace

FuzzInput MakeZeroInput() { return FuzzInput(kFuzzInputSize, 0); }

FuzzInput MakeRandomInput(Rng& rng) {
  FuzzInput input;
  FillRandomInput(rng, &input);
  return input;
}

void FillRandomInput(Rng& rng, FuzzInput* out) {
  out->resize(kFuzzInputSize);
  for (auto& b : *out) {
    b = static_cast<uint8_t>(rng.Next());
  }
}

void Mutator::FlipBit(FuzzInput& input, size_t bit) {
  if (input.empty()) {
    return;
  }
  const size_t idx = (bit / 8) % input.size();
  input[idx] ^= static_cast<uint8_t>(1u << (bit % 8));
}

void Mutator::SetByte(FuzzInput& input, size_t pos, uint8_t value) {
  if (input.empty()) {
    return;
  }
  input[pos % input.size()] = value;
}

void Mutator::OneHavocStep(FuzzInput& input) {
  if (input.empty()) {
    return;
  }
  const size_t n = input.size();
  switch (rng_.Below(12)) {
    case 0:  // Flip a single bit.
      FlipBit(input, rng_.Below(n * 8));
      break;
    case 1: {  // Interesting 8-bit value.
      input[rng_.Below(n)] = static_cast<uint8_t>(
          kInteresting8[rng_.Below(sizeof(kInteresting8))]);
      break;
    }
    case 2: {  // Interesting 16-bit value.
      if (n < 2) break;
      const size_t pos = rng_.Below(n - 1);
      const int16_t v = kInteresting16[rng_.Below(
          sizeof(kInteresting16) / sizeof(int16_t))];
      std::memcpy(&input[pos], &v, 2);
      break;
    }
    case 3: {  // Interesting 32-bit value.
      if (n < 4) break;
      const size_t pos = rng_.Below(n - 3);
      const int32_t v = kInteresting32[rng_.Below(
          sizeof(kInteresting32) / sizeof(int32_t))];
      std::memcpy(&input[pos], &v, 4);
      break;
    }
    case 4: {  // 8-bit arithmetic.
      const size_t pos = rng_.Below(n);
      const uint8_t delta = static_cast<uint8_t>(1 + rng_.Below(35));
      input[pos] = rng_.CoinFlip() ? input[pos] + delta : input[pos] - delta;
      break;
    }
    case 5: {  // 16-bit arithmetic.
      if (n < 2) break;
      const size_t pos = rng_.Below(n - 1);
      uint16_t v;
      std::memcpy(&v, &input[pos], 2);
      const uint16_t delta = static_cast<uint16_t>(1 + rng_.Below(35));
      v = rng_.CoinFlip() ? v + delta : v - delta;
      std::memcpy(&input[pos], &v, 2);
      break;
    }
    case 6: {  // 32-bit arithmetic.
      if (n < 4) break;
      const size_t pos = rng_.Below(n - 3);
      uint32_t v;
      std::memcpy(&v, &input[pos], 4);
      const uint32_t delta = static_cast<uint32_t>(1 + rng_.Below(35));
      v = rng_.CoinFlip() ? v + delta : v - delta;
      std::memcpy(&input[pos], &v, 4);
      break;
    }
    case 7:  // Random byte.
      input[rng_.Below(n)] = static_cast<uint8_t>(rng_.Next());
      break;
    case 8: {  // Block overwrite with a constant.
      const size_t len = 1 + rng_.Below(n / 16 + 1);
      const size_t pos = rng_.Below(n - len + 1);
      std::memset(&input[pos], static_cast<int>(rng_.Next() & 0xff), len);
      break;
    }
    case 9: {  // Block copy within the input.
      const size_t len = 1 + rng_.Below(n / 16 + 1);
      const size_t src = rng_.Below(n - len + 1);
      const size_t dst = rng_.Below(n - len + 1);
      std::memmove(&input[dst], &input[src], len);
      break;
    }
    case 10: {  // Random 64-bit word.
      if (n < 8) break;
      const size_t pos = rng_.Below(n - 7);
      const uint64_t v = rng_.Next();
      std::memcpy(&input[pos], &v, 8);
      break;
    }
    case 11: {  // Byte swap (order perturbation for the harness slices).
      const size_t a = rng_.Below(n);
      const size_t b = rng_.Below(n);
      std::swap(input[a], input[b]);
      break;
    }
    default:
      break;
  }
}

void Mutator::Havoc(FuzzInput& input, unsigned max_stack) {
  const unsigned steps = 1 + static_cast<unsigned>(rng_.Below(max_stack));
  for (unsigned i = 0; i < steps; ++i) {
    OneHavocStep(input);
  }
}

void Mutator::Splice(FuzzInput& input, const FuzzInput& donor) {
  if (input.empty() || donor.empty()) {
    return;
  }
  const size_t n = std::min(input.size(), donor.size());
  const size_t start = rng_.Below(n);
  const size_t len = 1 + rng_.Below(n - start);
  std::memcpy(&input[start], &donor[start], len);
}

}  // namespace neco
