// AFL++-style havoc mutation over fixed-size binary inputs.
//
// NecoFuzz feeds each component of the VM generator from a 2 KiB input
// (paper Section 4.1); the mutator is the stock AFL++ havoc stage: bit
// flips, interesting-value substitution, bounded arithmetic, block copy
// and overwrite, plus splicing between corpus entries.
#ifndef SRC_FUZZ_MUTATOR_H_
#define SRC_FUZZ_MUTATOR_H_

#include <cstdint>
#include <vector>

#include "src/support/rng.h"

namespace neco {

// Fixed fuzzing-input size: "2KiB of binary data" per the paper.
constexpr size_t kFuzzInputSize = 2048;

using FuzzInput = std::vector<uint8_t>;

FuzzInput MakeZeroInput();
FuzzInput MakeRandomInput(Rng& rng);

// In-place variant: refills `out` with fresh random bytes, reusing its
// allocation. Byte-identical to assigning MakeRandomInput(rng).
void FillRandomInput(Rng& rng, FuzzInput* out);

class Mutator {
 public:
  explicit Mutator(uint64_t seed) : rng_(seed) {}

  // In-place havoc: applies 1..`max_stack` stacked random mutations.
  void Havoc(FuzzInput& input, unsigned max_stack = 16);

  // Splice: overwrite a random extent of `input` with bytes from `donor`.
  void Splice(FuzzInput& input, const FuzzInput& donor);

  // Single deterministic-stage style mutations (exposed for tests and for
  // the deterministic sweep at queue-entry birth).
  void FlipBit(FuzzInput& input, size_t bit);
  void SetByte(FuzzInput& input, size_t pos, uint8_t value);

  Rng& rng() { return rng_; }

 private:
  void OneHavocStep(FuzzInput& input);

  Rng rng_;
};

}  // namespace neco

#endif  // SRC_FUZZ_MUTATOR_H_
