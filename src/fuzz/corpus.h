// Fuzzing corpus (AFL queue) with favored-entry scheduling.
#ifndef SRC_FUZZ_CORPUS_H_
#define SRC_FUZZ_CORPUS_H_

#include <cstdint>
#include <vector>

#include "src/fuzz/mutator.h"
#include "src/support/rng.h"

namespace neco {

struct QueueEntry {
  FuzzInput input;
  uint64_t discovered_at_iter = 0;
  uint64_t times_fuzzed = 0;
  size_t new_edges = 0;   // Edges this entry contributed when found.
  bool favored = false;
};

class Corpus {
 public:
  explicit Corpus(uint64_t seed) : rng_(seed) {}

  void Add(FuzzInput input, uint64_t iter, size_t new_edges) {
    QueueEntry e;
    e.input = std::move(input);
    e.discovered_at_iter = iter;
    e.new_edges = new_edges;
    e.favored = new_edges >= kFavorThreshold;
    entries_.push_back(std::move(e));
  }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  // Energy-weighted pick: favored and recently discovered entries are
  // chosen more often; a small fraction of picks is uniform to avoid
  // starvation.
  QueueEntry& Pick() {
    if (rng_.Chance(1, 8) || entries_.size() == 1) {
      return entries_[rng_.Below(entries_.size())];
    }
    // Two tournament rounds over favored-ness and fuzz count.
    QueueEntry* best = &entries_[rng_.Below(entries_.size())];
    for (int i = 0; i < 2; ++i) {
      QueueEntry* cand = &entries_[rng_.Below(entries_.size())];
      const bool cand_better =
          (cand->favored && !best->favored) ||
          (cand->favored == best->favored &&
           cand->times_fuzzed < best->times_fuzzed);
      if (cand_better) {
        best = cand;
      }
    }
    return *best;
  }

  const QueueEntry& at(size_t i) const { return entries_[i]; }
  QueueEntry& at(size_t i) { return entries_[i]; }

  // Random donor for splicing.
  const FuzzInput& RandomDonor() {
    return entries_[rng_.Below(entries_.size())].input;
  }

  // Snapshot hooks: the scheduler RNG and the full entry metadata
  // (times_fuzzed, favored, ...) are campaign state — a resumed corpus
  // must Pick() the same sequence the interrupted one would have.
  Rng::State rng_state() const { return rng_.GetState(); }
  void set_rng_state(const Rng::State& state) { rng_.SetState(state); }

  // Bulk restore for snapshot resume: one reserve, then entries appended
  // with their exact saved metadata (Add() would recompute favored).
  void RestoreEntries(std::vector<QueueEntry> entries) {
    entries_ = std::move(entries);
  }
  void Reserve(size_t n) { entries_.reserve(n); }

 private:
  static constexpr size_t kFavorThreshold = 4;

  Rng rng_;
  std::vector<QueueEntry> entries_;
};

}  // namespace neco

#endif  // SRC_FUZZ_CORPUS_H_
