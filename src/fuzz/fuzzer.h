// The coverage-guided fuzzing loop (the AFL++ role in the paper).
//
// The fuzzer owns the corpus, the virgin bitmap, and the mutation
// schedule; the embedder supplies an executor callback that runs one
// 2 KiB input end to end (agent -> fuzz-harness VM -> target hypervisor)
// and reports the edges it touched plus any detected anomalies.
//
// Coverage guidance is optional (paper Table 5 / Section 5.6): with
// guidance off the loop becomes the breadth-first boundary explorer the
// paper found nearly as effective, drawing fresh random inputs instead of
// mutating interesting queue entries.
#ifndef SRC_FUZZ_FUZZER_H_
#define SRC_FUZZ_FUZZER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/fuzz/bitmap.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/mutator.h"

namespace neco {

struct WorkerStateRecord;  // src/core/wire.h

// What one execution of the harness reported back to the fuzzer.
struct ExecFeedback {
  std::vector<uint32_t> edges;   // Edge ids hit during the run.
  bool anomaly = false;          // A sanitizer/log anomaly fired.
  std::string anomaly_id;        // Stable bug id, for crash dedup.
};

using Executor = std::function<ExecFeedback(const FuzzInput&)>;

struct FuzzerOptions {
  uint64_t seed = 1;
  bool coverage_guidance = true;
  // Havoc intensity.
  unsigned havoc_stack = 16;
  // Probability (percent) of splicing instead of plain havoc.
  unsigned splice_percent = 15;
};

struct FuzzerStats {
  uint64_t iterations = 0;
  uint64_t queue_size = 0;
  uint64_t unique_anomalies = 0;
  uint64_t bitmap_edges = 0;
};

// One shard's per-epoch progress as a self-contained record (everything
// since the previous export), the fuzz-layer half of the ShardDelta the
// merge pipeline serializes (src/core/wire.h). Finding reports are not
// here: the agent layer contributes those to the ShardDelta directly
// (one execution can surface several anomalies but reports only the
// first through ExecFeedback, so the agent's findings map — not the
// crash list — is the complete per-shard set).
struct FuzzerDelta {
  BitmapDelta virgin;  // Edges newly seen.
  // Discoveries past the export cursor, as pointers into the fuzzer's
  // corpus — the entries are only serialized (wire::Encode(ShardDelta,
  // queue_entries) references them), so exporting does not copy 2 KiB
  // per entry. Valid until the corpus next grows (the fuzzer's next
  // Run or ImportCorpusEntry call).
  std::vector<const FuzzInput*> queue_entries;
  uint64_t iterations = 0;  // Executions spent.
  // Crash reproduction pairs discovered since the previous export, in
  // discovery order — what lets a journaling campaign commit crash
  // artifacts with the epoch that found them.
  std::vector<std::pair<std::string, FuzzInput>> crashes;
};

class Fuzzer {
 public:
  Fuzzer(FuzzerOptions options, Executor executor);

  // Runs `iterations` executions; may be called repeatedly to continue.
  void Run(uint64_t iterations);

  // Saved inputs that triggered anomalies, deduplicated by bug id.
  const std::vector<std::pair<std::string, FuzzInput>>& crashes() const {
    return crashes_;
  }

  FuzzerStats stats() const;
  const Corpus& corpus() const { return corpus_; }
  uint64_t iterations() const { return iterations_; }

  // --- Cross-shard campaign hooks (src/core/merge_pipeline) ---
  //
  // Shards communicate exclusively through self-contained delta records:
  // instead of exposing the whole virgin map for a lock-step merge, the
  // fuzzer exports what changed since the last export and absorbs other
  // shards' novelty as deltas. See src/core/wire.h for the serialized
  // form these feed into.

  // The accumulated seen-edges map (AFL "virgin" map, with seen bits set).
  const CoverageBitmap& virgin_map() const { return virgin_; }

  // Everything this fuzzer learned since the previous ExportDelta() call:
  // newly seen edges, queue entries discovered past the export cursor, and
  // the iterations spent. Consecutive calls yield disjoint deltas;
  // replaying every delta in order reconstructs the fuzzer's contribution
  // exactly.
  FuzzerDelta ExportDelta();

  // Marks edges another shard (or the merged global view) already saw as
  // non-novel here, so syncing shards stop re-queueing each other's
  // discoveries. Absorbed bits are also excluded from future ExportDelta
  // results — they are someone else's news.
  void ApplyVirginDelta(const BitmapDelta& delta);

  // Excludes the current queue contents (e.g. just-imported entries) from
  // the next ExportDelta: re-publishing imports would bounce inputs
  // between shards, duplicating traffic without bound.
  void MarkQueueExported() { export_cursor_ = corpus_.size(); }

  // Adopts an input another shard found interesting, unless an identical
  // input is already queued here (every shard re-publishes to every other,
  // so without this hash guard the same entry would bloat each queue once
  // per publisher in guided mode). An adopted entry joins the queue
  // directly (unexecuted, never favored) so imports consume no iteration
  // budget. Returns whether the entry actually joined the queue.
  bool ImportCorpusEntry(const FuzzInput& input);

  // --- Materialized snapshots (src/core/state/snapshot.h) ---
  //
  // Full-state siblings of ExportDelta/ApplyVirginDelta: the fuzzer
  // section of a WorkerStateRecord is everything needed to continue this
  // fuzzer bit-exactly — both RNG streams, the full queue with its
  // scheduling metadata, the virgin map, the crash pairs, and the
  // iteration count.

  // Fills the fuzzer section of `*out` (other sections untouched).
  void ExportState(WorkerStateRecord* out);

  // Restores from the fuzzer section of `*record`, consuming its corpus
  // and crash-input vectors (bulk moves — reload stays O(entries) with
  // one reserve even at millions of entries). Derived state — the
  // queue-hash index, seen bug ids, and the export cursors — is rebuilt
  // here, positioned as if every restored entry had already been
  // exported (the merged side of the snapshot already has them).
  void ImportState(WorkerStateRecord* record);

 private:
  void NextInput(FuzzInput* out);

  FuzzerOptions options_;
  // Scratch input reused across Run iterations (allocation-free steady
  // state); only Run and NextInput touch it.
  FuzzInput scratch_;
  Executor executor_;
  Mutator mutator_;
  Corpus corpus_;
  // Per-exec trace accumulator, reused across executions so the classify
  // + merge + reset cycle is O(trace), not O(64 KiB bitmap).
  SparseTrace trace_;
  // Content hashes of every queued input (own discoveries and imports),
  // the dedup guard for cross-shard imports.
  std::unordered_set<uint64_t> queue_hashes_;
  CoverageBitmap virgin_;
  std::vector<std::pair<std::string, FuzzInput>> crashes_;
  std::unordered_set<std::string> seen_bug_ids_;
  uint64_t iterations_ = 0;
  // ExportDelta cursor state: what the last export already shipped.
  CoverageBitmap virgin_exported_;
  size_t export_cursor_ = 0;
  uint64_t iterations_exported_ = 0;
  size_t crashes_exported_ = 0;
};

}  // namespace neco

#endif  // SRC_FUZZ_FUZZER_H_
