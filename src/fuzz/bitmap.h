// AFL-style edge-coverage bitmap.
//
// The agent maps hypervisor coverage points into this 64 KiB shared bitmap
// (the same size AFL++ uses); hit counts are bucketed into the classic
// power-of-two classes before novelty comparison against the virgin map.
//
// The per-exec hot path (classify the trace, merge it into the virgin
// map) used to walk all 65,536 cells byte at a time even though one
// execution touches only dozens of them. Two layers fix that:
//
//  * CoverageBitmap's full-map operations (ClassifyCounts, MergeInto,
//    ExtractDeltaSince) are word-at-a-time: a uint64 load per 8 cells,
//    and `(cur & ~virgin) == 0` skips an uninteresting word in one
//    compare. The straightforward byte loops are retained as
//    *Scalar reference implementations; tests/bitmap_test.cc proves the
//    word paths bit-identical on randomized maps.
//  * SparseTrace wraps a trace bitmap with a touched-word set, so the
//    per-exec classify + merge + clear visit only the words the trace
//    actually dirtied — O(trace), not O(64 KiB).
//
// bench/hot_path measures both layers; BENCH_hotpath.json tracks them.
#ifndef SRC_FUZZ_BITMAP_H_
#define SRC_FUZZ_BITMAP_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

namespace neco {

// Sparse difference between two coverage bitmaps: the cells whose bit set
// grew, with the bits that appeared there. This is the unit shards ship to
// the merge pipeline instead of whole 64 KiB virgin maps — applying every
// delta a map ever produced reconstructs the map exactly (ApplyDelta is an
// OR, so duplicated cells are harmless).
struct BitmapDelta {
  std::vector<uint32_t> cells;  // Parallel arrays: cell index ...
  std::vector<uint8_t> bits;    // ... and the bits that appeared there.

  bool empty() const { return cells.empty(); }
  size_t size() const { return cells.size(); }

  void Reserve(size_t n) {
    cells.reserve(n);
    bits.reserve(n);
  }

  void Append(uint32_t cell, uint8_t grown) {
    cells.push_back(cell);
    bits.push_back(grown);
  }

  // Concatenates another delta (used to hand several epochs' global
  // novelty to a shard in one feedback record).
  void Append(const BitmapDelta& other) {
    cells.insert(cells.end(), other.cells.begin(), other.cells.end());
    bits.insert(bits.end(), other.bits.begin(), other.bits.end());
  }
};

class CoverageBitmap {
 public:
  static constexpr size_t kSize = 1 << 16;
  // Cells per uint64 word, and the word count of the map.
  static constexpr size_t kCellsPerWord = sizeof(uint64_t);
  static constexpr size_t kWords = kSize / kCellsPerWord;

  CoverageBitmap() { Clear(); }

  void Clear() { map_.fill(0); }

  void Add(uint32_t edge_id) {
    uint8_t& cell = map_[edge_id % kSize];
    if (cell < 255) {
      ++cell;
    }
  }

  // Classic AFL hit-count bucketing: 1, 2, 3, 4-7, 8-15, 16-31, 32-127,
  // 128+ collapse into distinct bits. Word-at-a-time: zero words (the
  // vast majority of any real trace) are skipped with one compare, and
  // non-zero words go through the 16-bit bucket lookup table two cells
  // at a time.
  void ClassifyCounts();

  // Byte-at-a-time reference implementation of ClassifyCounts; the
  // equivalence tests pin the word path against it.
  void ClassifyCountsScalar() {
    for (auto& cell : map_) {
      cell = Bucket(cell);
    }
  }

  // Merges this (classified) map into `virgin`, reporting whether any new
  // bits appeared. Returns 2 for new edges, 1 for new hit-count buckets
  // only, 0 for nothing new (AFL semantics). Word-at-a-time: a word with
  // `cur == 0` or `(cur & ~virgin) == 0` is skipped in one compare; only
  // words carrying novelty fall back to per-cell classification.
  int MergeInto(CoverageBitmap& virgin) const {
    int ret = 0;
    for (size_t w = 0; w < kWords; ++w) {
      const uint64_t cur = LoadWord(w);
      if (cur == 0) {
        continue;
      }
      const uint64_t vw = virgin.LoadWord(w);
      if ((cur & ~vw) == 0) {
        continue;
      }
      ret = MergeWordCells(w, virgin, ret);
    }
    return ret;
  }

  // Byte-at-a-time reference implementation of MergeInto, kept for the
  // randomized equivalence tests (this is the collapsed form of the
  // original loop, whose ternary-then-if/else branch pair computed the
  // same value twice).
  int MergeIntoScalar(CoverageBitmap& virgin) const {
    int ret = 0;
    for (size_t i = 0; i < kSize; ++i) {
      const uint8_t cur = map_[i];
      if (cur == 0) {
        continue;
      }
      uint8_t& v = virgin.map_[i];
      if ((cur & ~v) != 0) {
        if (v == 0) {
          ret = 2;
        } else if (ret < 1) {
          ret = 1;
        }
        v |= cur;
      }
    }
    return ret;
  }

  // Every cell whose bit set grew relative to `snapshot`, with the newly
  // appearing bits; advances `snapshot` to match this map, so consecutive
  // calls yield disjoint deltas. Word-at-a-time: words where
  // `(map & ~snapshot) == 0` — everything once coverage saturates — cost
  // one load and one compare.
  BitmapDelta ExtractDeltaSince(CoverageBitmap& snapshot) const {
    BitmapDelta delta;
    for (size_t w = 0; w < kWords; ++w) {
      const uint64_t cur = LoadWord(w);
      if (cur == 0) {
        continue;
      }
      if ((cur & ~snapshot.LoadWord(w)) == 0) {
        continue;
      }
      for (size_t i = w * kCellsPerWord; i < (w + 1) * kCellsPerWord; ++i) {
        const uint8_t grown =
            static_cast<uint8_t>(map_[i] & ~snapshot.map_[i]);
        if (grown != 0) {
          delta.Append(static_cast<uint32_t>(i), grown);
          snapshot.map_[i] |= grown;
        }
      }
    }
    return delta;
  }

  // Byte-at-a-time reference implementation of ExtractDeltaSince.
  BitmapDelta ExtractDeltaSinceScalar(CoverageBitmap& snapshot) const {
    BitmapDelta delta;
    for (size_t i = 0; i < kSize; ++i) {
      const uint8_t grown =
          static_cast<uint8_t>(map_[i] & ~snapshot.map_[i]);
      if (grown != 0) {
        delta.Append(static_cast<uint32_t>(i), grown);
        snapshot.map_[i] |= grown;
      }
    }
    return delta;
  }

  // Folds a delta in (the merge side of ExtractDeltaSince).
  void ApplyDelta(const BitmapDelta& delta) {
    for (size_t i = 0; i < delta.cells.size(); ++i) {
      map_[delta.cells[i] % kSize] |= delta.bits[i];
    }
  }

  // ORs `bits` into one cell, returning the bits that were new there (the
  // merge pipeline uses this to record per-epoch global novelty).
  uint8_t OrCell(size_t cell, uint8_t bits) {
    uint8_t& v = map_[cell % kSize];
    const uint8_t grown = static_cast<uint8_t>(bits & ~v);
    v |= bits;
    return grown;
  }

  size_t CountNonZero() const {
    size_t n = 0;
    for (size_t w = 0; w < kWords; ++w) {
      if (LoadWord(w) == 0) {
        continue;
      }
      for (size_t i = w * kCellsPerWord; i < (w + 1) * kCellsPerWord; ++i) {
        n += map_[i] != 0;
      }
    }
    return n;
  }

  const uint8_t* data() const { return map_.data(); }
  uint8_t at(size_t i) const { return map_[i % kSize]; }

  // The classic AFL hit-count bucket of one cell (exposed for tests and
  // the lookup-table build in bitmap.cc).
  static uint8_t Bucket(uint8_t count) {
    if (count == 0) return 0;
    if (count == 1) return 1 << 0;
    if (count == 2) return 1 << 1;
    if (count == 3) return 1 << 2;
    if (count <= 7) return 1 << 3;
    if (count <= 15) return 1 << 4;
    if (count <= 31) return 1 << 5;
    if (count <= 127) return 1 << 6;
    return 1 << 7;
  }

 private:
  friend class SparseTrace;

  // One aligned 8-cell load; the memcpy compiles to a single mov. The
  // alignas guarantees the tail never crosses the array bound: kSize is a
  // multiple of 8, so word kWords-1 covers exactly cells kSize-8..kSize-1
  // (no out-of-bounds word read for ASan to object to).
  uint64_t LoadWord(size_t w) const {
    uint64_t v;
    std::memcpy(&v, map_.data() + w * kCellsPerWord, sizeof(v));
    return v;
  }
  void StoreWord(size_t w, uint64_t v) {
    std::memcpy(map_.data() + w * kCellsPerWord, &v, sizeof(v));
  }

  // Per-cell novelty classification for one word that is known to carry
  // new bits (defined in bitmap.cc alongside the classify table).
  int MergeWordCells(size_t w, CoverageBitmap& virgin, int ret) const;

  alignas(alignof(uint64_t)) std::array<uint8_t, kSize> map_;
};

// Per-execution trace accumulator: a coverage bitmap plus the set of words
// any Add() dirtied, so the per-exec classify + merge-into-virgin + reset
// cycle visits only the touched words instead of all 64 KiB. Reused across
// executions (Clear() zeroes touched words only); produces bit-identical
// results to running the full-map operations on a fresh CoverageBitmap —
// tests/bitmap_test.cc pins the equivalence on randomized traces.
class SparseTrace {
 public:
  SparseTrace() = default;

  // Records one edge hit (same cell mapping and 255-saturation as
  // CoverageBitmap::Add).
  void Add(uint32_t edge_id) {
    const size_t cell = edge_id % CoverageBitmap::kSize;
    const uint32_t word =
        static_cast<uint32_t>(cell / CoverageBitmap::kCellsPerWord);
    if (dirty_[word] == 0) {
      dirty_[word] = 1;
      touched_.push_back(word);
    }
    uint8_t& c = map_.map_[cell];
    if (c < 255) {
      ++c;
    }
  }

  // Buckets hit counts in the touched words (identical to a full-map
  // ClassifyCounts because every untouched word is zero).
  void ClassifyCounts();

  // MergeInto restricted to the touched words; same 0/1/2 novelty result
  // and the same virgin-map effect as the full-map form. Word order does
  // not matter: the result is a max over cells and the merge is an OR.
  int MergeInto(CoverageBitmap& virgin) const;

  // Zeroes the touched words and forgets them — O(trace), not O(64 KiB).
  void Clear() {
    for (const uint32_t w : touched_) {
      map_.StoreWord(w, 0);
      dirty_[w] = 0;
    }
    touched_.clear();
  }

  const CoverageBitmap& bitmap() const { return map_; }
  size_t touched_words() const { return touched_.size(); }

 private:
  CoverageBitmap map_;
  std::vector<uint32_t> touched_;  // Dirty word indexes, insertion order.
  std::array<uint8_t, CoverageBitmap::kWords> dirty_{};  // Dedup flags.
};

}  // namespace neco

#endif  // SRC_FUZZ_BITMAP_H_
