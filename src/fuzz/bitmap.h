// AFL-style edge-coverage bitmap.
//
// The agent maps hypervisor coverage points into this 64 KiB shared bitmap
// (the same size AFL++ uses); hit counts are bucketed into the classic
// power-of-two classes before novelty comparison against the virgin map.
#ifndef SRC_FUZZ_BITMAP_H_
#define SRC_FUZZ_BITMAP_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

namespace neco {

// Sparse difference between two coverage bitmaps: the cells whose bit set
// grew, with the bits that appeared there. This is the unit shards ship to
// the merge pipeline instead of whole 64 KiB virgin maps — applying every
// delta a map ever produced reconstructs the map exactly (ApplyDelta is an
// OR, so duplicated cells are harmless).
struct BitmapDelta {
  std::vector<uint32_t> cells;  // Parallel arrays: cell index ...
  std::vector<uint8_t> bits;    // ... and the bits that appeared there.

  bool empty() const { return cells.empty(); }
  size_t size() const { return cells.size(); }

  void Append(uint32_t cell, uint8_t grown) {
    cells.push_back(cell);
    bits.push_back(grown);
  }

  // Concatenates another delta (used to hand several epochs' global
  // novelty to a shard in one feedback record).
  void Append(const BitmapDelta& other) {
    cells.insert(cells.end(), other.cells.begin(), other.cells.end());
    bits.insert(bits.end(), other.bits.begin(), other.bits.end());
  }
};

class CoverageBitmap {
 public:
  static constexpr size_t kSize = 1 << 16;

  CoverageBitmap() { Clear(); }

  void Clear() { map_.fill(0); }

  void Add(uint32_t edge_id) {
    uint8_t& cell = map_[edge_id % kSize];
    if (cell < 255) {
      ++cell;
    }
  }

  // Classic AFL hit-count bucketing: 1, 2, 3, 4-7, 8-15, 16-31, 32-127,
  // 128+ collapse into distinct bits.
  void ClassifyCounts() {
    for (auto& cell : map_) {
      cell = Bucket(cell);
    }
  }

  // Merges this (classified) map into `virgin`, reporting whether any new
  // bits appeared. Returns 2 for new edges, 1 for new hit-count buckets
  // only, 0 for nothing new (AFL semantics).
  int MergeInto(CoverageBitmap& virgin) const {
    int ret = 0;
    for (size_t i = 0; i < kSize; ++i) {
      const uint8_t cur = map_[i];
      if (cur == 0) {
        continue;
      }
      uint8_t& v = virgin.map_[i];
      if ((cur & ~v) != 0) {
        ret = v == 0 ? 2 : (ret < 1 ? 1 : ret);
        if (v == 0) {
          ret = 2;
        } else if (ret < 1) {
          ret = 1;
        }
        v |= cur;
      }
    }
    return ret;
  }

  // Every cell whose bit set grew relative to `snapshot`, with the newly
  // appearing bits; advances `snapshot` to match this map, so consecutive
  // calls yield disjoint deltas.
  BitmapDelta ExtractDeltaSince(CoverageBitmap& snapshot) const {
    BitmapDelta delta;
    for (size_t i = 0; i < kSize; ++i) {
      const uint8_t grown =
          static_cast<uint8_t>(map_[i] & ~snapshot.map_[i]);
      if (grown != 0) {
        delta.Append(static_cast<uint32_t>(i), grown);
        snapshot.map_[i] |= grown;
      }
    }
    return delta;
  }

  // Folds a delta in (the merge side of ExtractDeltaSince).
  void ApplyDelta(const BitmapDelta& delta) {
    for (size_t i = 0; i < delta.cells.size(); ++i) {
      map_[delta.cells[i] % kSize] |= delta.bits[i];
    }
  }

  // ORs `bits` into one cell, returning the bits that were new there (the
  // merge pipeline uses this to record per-epoch global novelty).
  uint8_t OrCell(size_t cell, uint8_t bits) {
    uint8_t& v = map_[cell % kSize];
    const uint8_t grown = static_cast<uint8_t>(bits & ~v);
    v |= bits;
    return grown;
  }

  size_t CountNonZero() const {
    size_t n = 0;
    for (uint8_t cell : map_) {
      n += cell != 0;
    }
    return n;
  }

  const uint8_t* data() const { return map_.data(); }
  uint8_t at(size_t i) const { return map_[i % kSize]; }

 private:
  static uint8_t Bucket(uint8_t count) {
    if (count == 0) return 0;
    if (count == 1) return 1 << 0;
    if (count == 2) return 1 << 1;
    if (count == 3) return 1 << 2;
    if (count <= 7) return 1 << 3;
    if (count <= 15) return 1 << 4;
    if (count <= 31) return 1 << 5;
    if (count <= 127) return 1 << 6;
    return 1 << 7;
  }

  std::array<uint8_t, kSize> map_;
};

}  // namespace neco

#endif  // SRC_FUZZ_BITMAP_H_
