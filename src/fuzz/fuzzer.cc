#include "src/fuzz/fuzzer.h"

#include <utility>

#include "src/core/wire.h"

namespace neco {
namespace {

// FNV-1a over the input bytes; 64 bits make accidental collisions across
// a campaign's queue sizes (thousands of entries) negligible.
uint64_t HashInput(const FuzzInput& input) {
  uint64_t h = 1469598103934665603ULL;
  for (uint8_t b : input) {
    h = (h ^ b) * 1099511628211ULL;
  }
  return h;
}

}  // namespace

Fuzzer::Fuzzer(FuzzerOptions options, Executor executor)
    : options_(options),
      executor_(std::move(executor)),
      mutator_(options.seed),
      corpus_(options.seed ^ 0x9e3779b97f4a7c15ULL) {}

// Fills the reusable scratch buffer in place (copy-assignment from the
// picked queue entry / random refill) so the steady-state loop never
// allocates; `out` keeps its 2 KiB capacity across iterations.
void Fuzzer::NextInput(FuzzInput* out) {
  if (!options_.coverage_guidance || corpus_.empty()) {
    // Breadth-first mode: fresh random bytes every time. The VM state
    // validator downstream rounds them to the valid/invalid boundary, so
    // raw entropy is productive here (paper Section 5.6).
    FillRandomInput(mutator_.rng(), out);
    return;
  }
  QueueEntry& entry = corpus_.Pick();
  ++entry.times_fuzzed;
  *out = entry.input;
  if (mutator_.rng().Chance(options_.splice_percent, 100) &&
      corpus_.size() > 1) {
    mutator_.Splice(*out, corpus_.RandomDonor());
  }
  mutator_.Havoc(*out, options_.havoc_stack);
}

void Fuzzer::Run(uint64_t iterations) {
  for (uint64_t i = 0; i < iterations; ++i) {
    NextInput(&scratch_);
    const FuzzInput& input = scratch_;
    const ExecFeedback feedback = executor_(input);
    ++iterations_;

    trace_.Clear();
    for (uint32_t edge : feedback.edges) {
      trace_.Add(edge);
    }
    trace_.ClassifyCounts();
    const int novelty = trace_.MergeInto(virgin_);

    if (options_.coverage_guidance && novelty == 2) {
      queue_hashes_.insert(HashInput(input));
      corpus_.Add(input, iterations_, feedback.edges.size());
    }
    if (feedback.anomaly &&
        seen_bug_ids_.insert(feedback.anomaly_id).second) {
      crashes_.emplace_back(feedback.anomaly_id, input);
    }
  }
}

FuzzerDelta Fuzzer::ExportDelta() {
  FuzzerDelta delta;
  delta.virgin = virgin_.ExtractDeltaSince(virgin_exported_);
  delta.queue_entries.reserve(corpus_.size() - export_cursor_);
  for (size_t i = export_cursor_; i < corpus_.size(); ++i) {
    // The input stays owned by the corpus; the caller serializes through
    // the pointer (see FuzzerDelta::queue_entries for the lifetime rule).
    delta.queue_entries.push_back(&corpus_.at(i).input);
  }
  export_cursor_ = corpus_.size();
  delta.iterations = iterations_ - iterations_exported_;
  iterations_exported_ = iterations_;
  for (size_t i = crashes_exported_; i < crashes_.size(); ++i) {
    delta.crashes.push_back(crashes_[i]);
  }
  crashes_exported_ = crashes_.size();
  return delta;
}

void Fuzzer::ApplyVirginDelta(const BitmapDelta& delta) {
  virgin_.ApplyDelta(delta);
  // Absorbed bits count as already exported: they are not this shard's
  // discoveries, so the next ExportDelta must not re-publish them.
  virgin_exported_.ApplyDelta(delta);
}

bool Fuzzer::ImportCorpusEntry(const FuzzInput& input) {
  if (!queue_hashes_.insert(HashInput(input)).second) {
    return false;
  }
  corpus_.Add(input, iterations_, 0);
  return true;
}

void Fuzzer::ExportState(WorkerStateRecord* out) {
  out->mutator_rng = mutator_.rng().GetState();
  out->corpus_rng = corpus_.rng_state();
  out->iterations = iterations_;
  out->corpus.clear();
  out->corpus.reserve(corpus_.size());
  for (size_t i = 0; i < corpus_.size(); ++i) {
    out->corpus.push_back(corpus_.at(i));
  }
  // The full virgin map as a delta against empty — the same sparse wire
  // form ExportDelta ships, just with a zero baseline.
  CoverageBitmap empty;
  out->virgin = virgin_.ExtractDeltaSince(empty);
  out->crash_ids.clear();
  out->crash_inputs.clear();
  out->crash_ids.reserve(crashes_.size());
  out->crash_inputs.reserve(crashes_.size());
  for (const auto& [id, input] : crashes_) {
    out->crash_ids.push_back(id);
    out->crash_inputs.push_back(input);
  }
}

void Fuzzer::ImportState(WorkerStateRecord* record) {
  mutator_.rng().SetState(record->mutator_rng);
  corpus_.set_rng_state(record->corpus_rng);
  iterations_ = record->iterations;
  corpus_.RestoreEntries(std::move(record->corpus));
  // Rebuild the dedup index: queue_hashes_ holds exactly the hashes of
  // the queued inputs, so rehashing the restored queue is an exact
  // reconstruction, not an approximation.
  queue_hashes_.clear();
  queue_hashes_.reserve(corpus_.size());
  for (size_t i = 0; i < corpus_.size(); ++i) {
    queue_hashes_.insert(HashInput(corpus_.at(i).input));
  }
  virgin_.Clear();
  virgin_.ApplyDelta(record->virgin);
  crashes_.clear();
  seen_bug_ids_.clear();
  crashes_.reserve(record->crash_ids.size());
  for (size_t i = 0; i < record->crash_ids.size(); ++i) {
    seen_bug_ids_.insert(record->crash_ids[i]);
    crashes_.emplace_back(record->crash_ids[i],
                          std::move(record->crash_inputs[i]));
  }
  // A snapshot is taken after the epoch's export, so everything restored
  // counts as already shipped: the next ExportDelta publishes only what
  // the resumed tail discovers.
  virgin_exported_ = virgin_;
  export_cursor_ = corpus_.size();
  iterations_exported_ = iterations_;
  crashes_exported_ = crashes_.size();
}

FuzzerStats Fuzzer::stats() const {
  FuzzerStats s;
  s.iterations = iterations_;
  s.queue_size = corpus_.size();
  s.unique_anomalies = crashes_.size();
  s.bitmap_edges = virgin_.CountNonZero();
  return s;
}

}  // namespace neco
