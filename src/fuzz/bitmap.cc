#include "src/fuzz/bitmap.h"

namespace neco {
namespace {

// The classic AFL count_class_lookup16: buckets two cells per table
// lookup. Index and value are a (low byte, high byte) cell pair, so the
// mapping is position-preserving for any byte order — composing four
// lookups rebuilds the word with every cell bucketed in place.
const std::array<uint16_t, 65536>& ClassifyLookup16() {
  static const std::array<uint16_t, 65536> table = [] {
    std::array<uint16_t, 65536> t{};
    for (uint32_t hi = 0; hi < 256; ++hi) {
      const uint16_t hi_bucket =
          static_cast<uint16_t>(CoverageBitmap::Bucket(
              static_cast<uint8_t>(hi)))
          << 8;
      for (uint32_t lo = 0; lo < 256; ++lo) {
        t[(hi << 8) | lo] = static_cast<uint16_t>(
            hi_bucket | CoverageBitmap::Bucket(static_cast<uint8_t>(lo)));
      }
    }
    return t;
  }();
  return table;
}

uint64_t ClassifyWord(uint64_t v) {
  const std::array<uint16_t, 65536>& lut = ClassifyLookup16();
  return static_cast<uint64_t>(lut[v & 0xffff]) |
         static_cast<uint64_t>(lut[(v >> 16) & 0xffff]) << 16 |
         static_cast<uint64_t>(lut[(v >> 32) & 0xffff]) << 32 |
         static_cast<uint64_t>(lut[(v >> 48) & 0xffff]) << 48;
}

}  // namespace

void CoverageBitmap::ClassifyCounts() {
  for (size_t w = 0; w < kWords; ++w) {
    const uint64_t v = LoadWord(w);
    if (v == 0) {
      continue;
    }
    StoreWord(w, ClassifyWord(v));
  }
}

int CoverageBitmap::MergeWordCells(size_t w, CoverageBitmap& virgin,
                                   int ret) const {
  for (size_t i = w * kCellsPerWord; i < (w + 1) * kCellsPerWord; ++i) {
    const uint8_t cur = map_[i];
    if (cur == 0) {
      continue;
    }
    uint8_t& v = virgin.map_[i];
    if ((cur & ~v) != 0) {
      if (v == 0) {
        ret = 2;
      } else if (ret < 1) {
        ret = 1;
      }
      v |= cur;
    }
  }
  return ret;
}

void SparseTrace::ClassifyCounts() {
  // A touched word always carries a count (Add bumps a cell from zero or
  // holds it at 255), so no zero-skip is needed here.
  for (const uint32_t w : touched_) {
    map_.StoreWord(w, ClassifyWord(map_.LoadWord(w)));
  }
}

int SparseTrace::MergeInto(CoverageBitmap& virgin) const {
  int ret = 0;
  for (const uint32_t w : touched_) {
    const uint64_t cur = map_.LoadWord(w);
    if ((cur & ~virgin.LoadWord(w)) == 0) {
      continue;
    }
    ret = map_.MergeWordCells(w, virgin, ret);
  }
  return ret;
}

}  // namespace neco
