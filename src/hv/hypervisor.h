// Abstract L0 hypervisor — the fuzz target.
//
// A Hypervisor owns the nested-virtualization emulation state for one guest
// VM (the fuzz-harness VM): the VMCS01/VMCS02 pair (or VMCB equivalents),
// its cached copy of the L1-provided VMCS12/VMCB12, and the physical-CPU
// handle it runs on. The harness calls HandleVmxInstruction /
// HandleSvmInstruction for hardware-assisted virtualization instructions
// executed by L1, and HandleGuestInstruction for ordinary exit-triggering
// instructions in L1 or L2 context.
//
// Coverage (per nested-virtualization "source file") and sanitizer reports
// accumulate across VM restarts so a fuzzing campaign can aggregate them.
#ifndef SRC_HV_HYPERVISOR_H_
#define SRC_HV_HYPERVISOR_H_

#include <memory>
#include <string_view>

#include "src/hv/coverage.h"
#include "src/hv/guest_insn.h"
#include "src/hv/guest_memory.h"
#include "src/hv/sanitizer.h"
#include "src/hv/snapshot.h"
#include "src/hv/vcpu_config.h"

namespace neco {

// Result of emulating one L1 virtualization instruction.
struct VmxEmuResult {
  bool ok = false;          // Instruction succeeded from L1's view.
  bool entered_l2 = false;  // vmlaunch/vmresume reached L2.
  uint64_t read_value = 0;  // For vmread/vmptrst.
};

struct SvmEmuResult {
  bool ok = false;
  bool entered_l2 = false;
};

class Hypervisor {
 public:
  virtual ~Hypervisor() = default;

  virtual std::string_view name() const = 0;
  virtual Arch arch() const = 0;

  // (Re)start the guest VM with the given vCPU configuration. Models a
  // module reload plus VM boot; clears per-VM nested state but preserves
  // accumulated coverage.
  virtual void StartVm(const VcpuConfig& config) = 0;

  // Capture the guest VM's post-boot state (call right after StartVm,
  // before any guest activity). Backends override this to attach a cooked
  // image that makes RestoreVm a few copy-assignments; the base default
  // returns a config-only snapshot whose config the caller should fix up
  // to the configuration it actually booted (the Agent does) since the
  // base class does not track it.
  virtual VmSnapshot SnapshotVm() {
    VmSnapshot snap;
    snap.hypervisor = std::string(name());
    snap.config = VcpuConfig::Default(arch());
    return snap;
  }

  // Return the guest VM to the snapshot's post-boot state, bit-equivalent
  // to StartVm(snapshot.config): identical subsequent emulation, coverage
  // trace, and sanitizer behaviour. Accumulated coverage, pending
  // sanitizer reports, and the host-crash flag/counters are preserved
  // exactly as a cold boot preserves them. The default (and any backend
  // handed a foreign or config-only snapshot) degrades to StartVm.
  virtual void RestoreVm(const VmSnapshot& snapshot) {
    StartVm(snapshot.config);
  }

  // L1 hypervisor instruction emulation.
  virtual VmxEmuResult HandleVmxInstruction(const VmxInsn& insn) = 0;
  virtual SvmEmuResult HandleSvmInstruction(const SvmInsn& insn) = 0;

  // Ordinary instruction executed at the given level; returns who handled
  // the resulting VM exit (if any).
  virtual HandledBy HandleGuestInstruction(const GuestInsn& insn,
                                           GuestLevel level) = 0;

  // True while the nested L2 guest is the running context.
  virtual bool in_l2() const = 0;

  // Nested-virtualization coverage of this hypervisor for the given vendor
  // (the analog of vmx/nested.c vs svm/nested.c).
  virtual CoverageUnit& nested_coverage(Arch arch) = 0;

  // L1 guest-physical memory (harness-writable, hypervisor-readable).
  GuestMemory& guest_memory() { return guest_memory_; }

  SanitizerSink& sanitizers() { return sanitizers_; }

  // Host-crash handling (paper Section 3.2's watchdog): a triggered bug may
  // take down the L0 hypervisor; the agent detects this and restarts it.
  bool host_crashed() const { return host_crashed_; }

  void RestartHost() {
    host_crashed_ = false;
    ++host_restarts_;
  }

  uint64_t host_restarts() const { return host_restarts_; }

  // Snapshot restore: reinstates the watchdog's accumulated view (crash
  // flag + restart counter) so a resumed campaign continues the exact
  // restart bookkeeping of the interrupted one.
  void RestoreHostCrashState(bool crashed, uint64_t restarts) {
    host_crashed_ = crashed;
    host_restarts_ = restarts;
  }

 protected:
  void MarkHostCrashed() { host_crashed_ = true; }

  GuestMemory guest_memory_;
  SanitizerSink sanitizers_;
  bool host_crashed_ = false;
  uint64_t host_restarts_ = 0;
};

}  // namespace neco

#endif  // SRC_HV_HYPERVISOR_H_
