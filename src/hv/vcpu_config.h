// vCPU configuration applied to an L0 hypervisor at VM startup.
//
// The hypervisor-independent core of the paper's vCPU configurator
// (Section 3.5) produces these; per-hypervisor adapters translate them into
// module parameters / command-line options and apply them.
#ifndef SRC_HV_VCPU_CONFIG_H_
#define SRC_HV_VCPU_CONFIG_H_

#include <cstdint>

#include "src/arch/cpu_features.h"

namespace neco {

struct VcpuConfig {
  Arch arch = Arch::kIntel;
  CpuFeatureSet features = DefaultFeatureSet(Arch::kIntel);
  // General VM shape knobs exposed on hypervisor command lines.
  uint8_t vcpus = 1;
  uint16_t memory_mb = 256;

  bool nested() const { return features.Has(CpuFeature::kNestedVirt); }

  static VcpuConfig Default(Arch arch) {
    VcpuConfig c;
    c.arch = arch;
    c.features = DefaultFeatureSet(arch);
    return c;
  }
};

}  // namespace neco

#endif  // SRC_HV_VCPU_CONFIG_H_
