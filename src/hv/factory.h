// Factories and the target registry for the simulated L0 hypervisors.
//
// The campaign engine gives every worker shard a private Hypervisor
// instance: CoverageUnit (and the nested state machines behind it) are not
// thread-safe, so simulators must never be shared across threads. A
// HypervisorFactory packages "how to build one isolated target" so
// campaign code can stay target-agnostic.
//
// Targets are looked up by name through a process-wide registry. The
// built-in simulators ("kvm", "xen", "virtualbox") are seeded into the
// registry on first use (so they are visible even from other TUs' static
// initializers); an out-of-tree simulator plugs a new target into
// CampaignEngine("my-hv", ...) with one RegisterHypervisor call and no
// edits under src/hv. Registration and lookup are thread-safe;
// ListHypervisors returns names in sorted order so registry-driven output
// is deterministic.
#ifndef SRC_HV_FACTORY_H_
#define SRC_HV_FACTORY_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/hv/hypervisor.h"

namespace neco {

using HypervisorFactory = std::function<std::unique_ptr<Hypervisor>()>;

// Registers `factory` under `name`. Returns true on success; returns false
// (keeping the existing entry) when the name is already taken, empty, or
// the factory is empty. Safe to call from static initializers.
bool RegisterHypervisor(std::string name, HypervisorFactory factory);

// All registered target names, sorted.
std::vector<std::string> ListHypervisors();

// The factory registered under `name`, or an empty function when the name
// is unknown.
HypervisorFactory FindHypervisorFactory(std::string_view name);

// Like FindHypervisorFactory, but an unknown name throws
// std::invalid_argument naming the target and listing the registered
// alternatives. CampaignEngine's construct-by-name path resolves through
// this, so a typo'd target fails loudly instead of yielding an empty
// std::function that explodes later.
//
// (The historical MakeHypervisorFactory wrapper — deprecated since the
// registry landed — is gone; its "vbox" alias maps to "virtualbox".)
HypervisorFactory ResolveHypervisorFactory(std::string_view name);

}  // namespace neco

#endif  // SRC_HV_FACTORY_H_
