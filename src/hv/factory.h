// Factories for the simulated L0 hypervisors.
//
// The parallel campaign engine gives every worker thread a private
// Hypervisor instance: CoverageUnit (and the nested state machines behind
// it) are not thread-safe, so simulators must never be shared across
// threads. A HypervisorFactory packages "how to build one isolated target"
// so campaign code can stay target-agnostic.
#ifndef SRC_HV_FACTORY_H_
#define SRC_HV_FACTORY_H_

#include <functional>
#include <memory>
#include <string_view>

#include "src/hv/hypervisor.h"

namespace neco {

using HypervisorFactory = std::function<std::unique_ptr<Hypervisor>()>;

// Factory for one of the built-in simulators: "kvm", "xen" or
// "virtualbox". Returns an empty function for unknown names.
HypervisorFactory MakeHypervisorFactory(std::string_view name);

}  // namespace neco

#endif  // SRC_HV_FACTORY_H_
