#include "src/hv/guest_insn.h"
#include "src/hv/sanitizer.h"

namespace neco {

std::string_view VmxOpName(VmxOp op) {
  switch (op) {
    case VmxOp::kVmxon: return "vmxon";
    case VmxOp::kVmxoff: return "vmxoff";
    case VmxOp::kVmclear: return "vmclear";
    case VmxOp::kVmptrld: return "vmptrld";
    case VmxOp::kVmptrst: return "vmptrst";
    case VmxOp::kVmwrite: return "vmwrite";
    case VmxOp::kVmread: return "vmread";
    case VmxOp::kVmlaunch: return "vmlaunch";
    case VmxOp::kVmresume: return "vmresume";
    case VmxOp::kInvept: return "invept";
    case VmxOp::kInvvpid: return "invvpid";
    case VmxOp::kCount: break;
  }
  return "<invalid>";
}

std::string_view SvmOpName(SvmOp op) {
  switch (op) {
    case SvmOp::kVmrun: return "vmrun";
    case SvmOp::kVmload: return "vmload";
    case SvmOp::kVmsave: return "vmsave";
    case SvmOp::kStgi: return "stgi";
    case SvmOp::kClgi: return "clgi";
    case SvmOp::kVmmcall: return "vmmcall";
    case SvmOp::kInvlpga: return "invlpga";
    case SvmOp::kSkinit: return "skinit";
    case SvmOp::kVmcbWrite: return "vmcb_write";
    case SvmOp::kCount: break;
  }
  return "<invalid>";
}

std::string_view GuestInsnKindName(GuestInsnKind kind) {
  switch (kind) {
    case GuestInsnKind::kCpuid: return "cpuid";
    case GuestInsnKind::kHlt: return "hlt";
    case GuestInsnKind::kRdtsc: return "rdtsc";
    case GuestInsnKind::kRdtscp: return "rdtscp";
    case GuestInsnKind::kRdpmc: return "rdpmc";
    case GuestInsnKind::kPause: return "pause";
    case GuestInsnKind::kRdrand: return "rdrand";
    case GuestInsnKind::kRdseed: return "rdseed";
    case GuestInsnKind::kInvd: return "invd";
    case GuestInsnKind::kWbinvd: return "wbinvd";
    case GuestInsnKind::kMovToCr0: return "mov_to_cr0";
    case GuestInsnKind::kMovToCr3: return "mov_to_cr3";
    case GuestInsnKind::kMovFromCr3: return "mov_from_cr3";
    case GuestInsnKind::kMovToCr4: return "mov_to_cr4";
    case GuestInsnKind::kMovToCr8: return "mov_to_cr8";
    case GuestInsnKind::kMovToDr: return "mov_to_dr";
    case GuestInsnKind::kIoIn: return "in";
    case GuestInsnKind::kIoOut: return "out";
    case GuestInsnKind::kRdmsr: return "rdmsr";
    case GuestInsnKind::kWrmsr: return "wrmsr";
    case GuestInsnKind::kInvlpg: return "invlpg";
    case GuestInsnKind::kInvpcid: return "invpcid";
    case GuestInsnKind::kMwait: return "mwait";
    case GuestInsnKind::kMonitor: return "monitor";
    case GuestInsnKind::kVmcall: return "vmcall";
    case GuestInsnKind::kXsetbv: return "xsetbv";
    case GuestInsnKind::kRaiseException: return "raise_exception";
    case GuestInsnKind::kMovToCr0Selective: return "mov_to_cr0_selective";
    case GuestInsnKind::kCount: break;
  }
  return "<invalid>";
}

std::string_view AnomalyKindName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kUbsan: return "UBSAN";
    case AnomalyKind::kKasan: return "KASAN";
    case AnomalyKind::kAssertion: return "Assertion";
    case AnomalyKind::kHostCrash: return "Host Crash";
    case AnomalyKind::kVmCrash: return "VM Crash";
    case AnomalyKind::kGpFault: return "GP Fault";
    case AnomalyKind::kLogWarning: return "Log Warning";
  }
  return "<invalid>";
}

}  // namespace neco
