#include "src/hv/sim_vbox/vbox.h"

#include <sstream>

#include "src/arch/vmx_bits.h"
#include "src/support/bits.h"

namespace neco {
namespace {

// Cooked post-boot image for SimVbox: the forced-Intel config plus the
// two boot-derived members (advertised capabilities, vmcs01).
struct VboxSnapshotData : VmSnapshotData {
  VcpuConfig config;
  VmxCapabilities nested_caps;
  Vmcs vmcs01;
};

}  // namespace

SimVbox::SimVbox()
    : cov_("vbox/VMMR0/HMVMXR0+IEM-nested", kVboxNestedVmxCoveragePoints),
      config_(VcpuConfig::Default(Arch::kIntel)),
      nested_caps_(MakeVmxCapabilities(config_.features)) {}

void SimVbox::StartVm(const VcpuConfig& config) {
  config_ = config;
  config_.arch = Arch::kIntel;  // VirtualBox nested VMX is Intel-only here.
  nested_caps_ =
      MakeVmxCapabilities(config_.features.RestrictedTo(Arch::kIntel));
  guest_memory_.Clear();
  vmxon_ = false;
  vmxon_ptr_ = kNoPtr;
  current_ptr_ = kNoPtr;
  vmcs12_cache_.clear();
  launched_.clear();
  vmcs01_ = MakeDefaultVmcs();
  vmcs02_ = Vmcs();
  in_l2_ = false;
  vm_dead_ = false;
}

VmSnapshot SimVbox::SnapshotVm() {
  VmSnapshot snap;
  snap.hypervisor = std::string(name());
  snap.config = config_;
  auto data = std::make_shared<VboxSnapshotData>();
  data->config = config_;  // Already forced to Intel by StartVm.
  data->nested_caps = nested_caps_;
  data->vmcs01 = vmcs01_;
  snap.data = std::move(data);
  return snap;
}

// Mirrors StartVm() field for field, with the derived members copied from
// the image instead of recomputed. Keep in sync with StartVm — the
// snapshot equivalence tests pin this.
void SimVbox::RestoreVm(const VmSnapshot& snapshot) {
  const auto* data =
      dynamic_cast<const VboxSnapshotData*>(snapshot.data.get());
  if (data == nullptr) {
    StartVm(snapshot.config);  // Foreign or config-only snapshot.
    return;
  }
  config_ = data->config;
  nested_caps_ = data->nested_caps;
  guest_memory_.Clear();
  vmxon_ = false;
  vmxon_ptr_ = kNoPtr;
  current_ptr_ = kNoPtr;
  vmcs12_cache_.clear();
  launched_.clear();
  vmcs01_ = data->vmcs01;
  vmcs02_ = Vmcs();
  in_l2_ = false;
  vm_dead_ = false;
}

bool SimVbox::CheckPermission() {
  if (vm_dead_) {
    NVCOV(cov_);
    return false;
  }
  if (!config_.nested()) {
    NVCOV(cov_);
    return false;
  }
  if (!vmxon_) {
    NVCOV(cov_);
    return false;
  }
  NVCOV(cov_);
  return true;
}

VmxEmuResult SimVbox::HandleVmxInstruction(const VmxInsn& insn) {
  VmxEmuResult r;
  if (host_crashed_ || vm_dead_) {
    return r;
  }
  switch (insn.op) {
    case VmxOp::kVmxon:
      if (!config_.nested() || vmxon_) {
        NVCOV(cov_);
        return r;
      }
      if (!IsAligned(insn.operand, 12) || insn.operand == 0) {
        NVCOV(cov_);
        return r;
      }
      NVCOV(cov_);
      vmxon_ = true;
      vmxon_ptr_ = insn.operand;
      r.ok = true;
      return r;
    case VmxOp::kVmxoff:
      if (!CheckPermission()) {
        return r;
      }
      NVCOV(cov_);
      vmxon_ = false;
      current_ptr_ = kNoPtr;
      in_l2_ = false;
      r.ok = true;
      return r;
    case VmxOp::kVmclear:
      if (!CheckPermission()) {
        return r;
      }
      if (!IsAligned(insn.operand, 12) || insn.operand == vmxon_ptr_) {
        NVCOV(cov_);
        return r;
      }
      NVCOV(cov_);
      launched_[insn.operand] = false;
      r.ok = true;
      return r;
    case VmxOp::kVmptrld:
      if (!CheckPermission()) {
        return r;
      }
      if (!IsAligned(insn.operand, 12) || insn.operand == 0 ||
          insn.operand == vmxon_ptr_) {
        NVCOV(cov_);
        return r;
      }
      if (guest_memory_.Read32(insn.operand) != Vmcs::kRevisionId) {
        NVCOV(cov_);
        return r;
      }
      NVCOV(cov_);
      vmcs12_cache_[insn.operand];
      current_ptr_ = insn.operand;
      r.ok = true;
      return r;
    case VmxOp::kVmptrst:
      if (!CheckPermission()) {
        return r;
      }
      NVCOV(cov_);
      r.ok = true;
      r.read_value = current_ptr_;
      return r;
    case VmxOp::kVmwrite: {
      if (!CheckPermission()) {
        return r;
      }
      auto it = vmcs12_cache_.find(current_ptr_);
      if (it == vmcs12_cache_.end()) {
        NVCOV(cov_);
        return r;
      }
      if (FindVmcsField(insn.field) == nullptr ||
          IsReadOnlyField(insn.field)) {
        NVCOV(cov_);
        return r;
      }
      NVCOV(cov_);
      it->second.Write(insn.field, insn.value);
      r.ok = true;
      return r;
    }
    case VmxOp::kVmread: {
      if (!CheckPermission()) {
        return r;
      }
      auto it = vmcs12_cache_.find(current_ptr_);
      if (it == vmcs12_cache_.end() ||
          FindVmcsField(insn.field) == nullptr) {
        NVCOV(cov_);
        return r;
      }
      NVCOV(cov_);
      r.ok = true;
      r.read_value = it->second.Read(insn.field);
      return r;
    }
    case VmxOp::kVmlaunch:
      return VmlaunchVmresume(/*launch=*/true);
    case VmxOp::kVmresume:
      return VmlaunchVmresume(/*launch=*/false);
    case VmxOp::kInvept:
      if (!CheckPermission()) {
        return r;
      }
      NVCOV(cov_);
      r.ok = config_.features.Has(CpuFeature::kEpt);
      return r;
    case VmxOp::kInvvpid:
      if (!CheckPermission()) {
        return r;
      }
      NVCOV(cov_);
      r.ok = config_.features.Has(CpuFeature::kVpid);
      return r;
    case VmxOp::kCount:
      break;
  }
  return r;
}

bool SimVbox::IemCheckControls(const Vmcs& v12) {
  if (!nested_caps_.pinbased.Permits(static_cast<uint32_t>(
          v12.Read(VmcsField::kPinBasedVmExecControl)))) {
    NVCOV(cov_);
    return false;
  }
  const uint32_t proc =
      static_cast<uint32_t>(v12.Read(VmcsField::kCpuBasedVmExecControl));
  if (!nested_caps_.procbased.Permits(proc)) {
    NVCOV(cov_);
    return false;
  }
  if ((proc & ProcCtl::kActivateSecondary) != 0 &&
      !nested_caps_.procbased2.Permits(static_cast<uint32_t>(
          v12.Read(VmcsField::kSecondaryVmExecControl)))) {
    NVCOV(cov_);
    return false;
  }
  if (!nested_caps_.exit.Permits(static_cast<uint32_t>(
          v12.Read(VmcsField::kVmExitControls)))) {
    NVCOV(cov_);
    return false;
  }
  if (!nested_caps_.entry.Permits(static_cast<uint32_t>(
          v12.Read(VmcsField::kVmEntryControls)))) {
    NVCOV(cov_);
    return false;
  }
  // MSR-load area: VirtualBox validates the COUNT and ALIGNMENT of the
  // area, but not the values inside it (CVE-2024-21106 gap is in
  // LoadEntryMsrs below).
  const uint64_t count = v12.Read(VmcsField::kVmEntryMsrLoadCount);
  if (count != 0) {
    NVCOV(cov_);
    if (count > nested_caps_.max_msr_list_count ||
        !IsAligned(v12.Read(VmcsField::kVmEntryMsrLoadAddr), 4)) {
      NVCOV(cov_);
      return false;
    }
  }
  NVCOV(cov_);
  return true;
}

bool SimVbox::IemCheckGuest(const Vmcs& v12) {
  const uint64_t cr0 = v12.Read(VmcsField::kGuestCr0);
  if ((cr0 & nested_caps_.cr0_fixed0) != nested_caps_.cr0_fixed0) {
    NVCOV(cov_);
    return false;
  }
  if ((v12.Read(VmcsField::kGuestCr4) & nested_caps_.cr4_fixed0) !=
      nested_caps_.cr4_fixed0) {
    NVCOV(cov_);
    return false;
  }
  if ((v12.Read(VmcsField::kGuestRflags) & Rflags::kFixed1) == 0) {
    NVCOV(cov_);
    return false;
  }
  NVCOV(cov_);
  return true;
}

bool SimVbox::LoadEntryMsrs(const Vmcs& v12) {
  const uint64_t count = v12.Read(VmcsField::kVmEntryMsrLoadCount);
  if (count == 0) {
    NVCOV(cov_);
    return true;
  }
  NVCOV(cov_);
  const uint64_t base = v12.Read(VmcsField::kVmEntryMsrLoadAddr);
  for (uint64_t i = 0; i < count && i < nested_caps_.max_msr_list_count;
       ++i) {
    const MsrAreaEntry e = ReadMsrAreaEntry(guest_memory_, base, i);
    switch (e.index) {
      case Msr::kKernelGsBase:
      case Msr::kFsBase:
      case Msr::kGsBase: {
        // CVE-2024-21106: the value is written to the real MSR with NO
        // canonicality check. A non-canonical address #GPs in the host.
        NVCOV(cov_);
        if (!IsCanonical(e.value)) {
          NVCOV(cov_);
          std::ostringstream msg;
          msg << "general protection fault, probably for non-canonical "
                 "address 0x"
              << std::hex << e.value << " (wrmsr 0x" << e.index
              << " during nested VM entry)";
          sanitizers_.Report(AnomalyKind::kVmCrash, "vbox-msr-noncanonical",
                             msg.str());
          vm_dead_ = true;  // The VM process dies / hangs on shutdown.
          return false;
        }
        break;
      }
      case Msr::kIa32Efer:
        NVCOV(cov_);  // EFER handled via dedicated logic, values masked.
        break;
      default:
        NVCOV(cov_);
        break;
    }
  }
  NVCOV(cov_);
  return true;
}

VmxEmuResult SimVbox::VmlaunchVmresume(bool launch) {
  VmxEmuResult r;
  if (!CheckPermission()) {
    return r;
  }
  auto it = vmcs12_cache_.find(current_ptr_);
  if (it == vmcs12_cache_.end()) {
    NVCOV(cov_);
    return r;
  }
  const bool launched = launched_[current_ptr_];
  if (launch == launched) {
    NVCOV(cov_);  // Launch-state mismatch VMfail.
    return r;
  }
  Vmcs& v12 = it->second;

  if (!IemCheckControls(v12)) {
    NVCOV(cov_);
    return r;
  }
  if (!IemCheckGuest(v12)) {
    NVCOV(cov_);
    v12.Write(VmcsField::kVmExitReason,
              static_cast<uint32_t>(ExitReason::kInvalidGuestState) |
                  kExitReasonFailedEntryBit);
    r.ok = true;
    return r;
  }
  // The vulnerable ordering: MSRs are loaded onto the host before the
  // final hardware entry.
  if (!LoadEntryMsrs(v12)) {
    NVCOV(cov_);
    return r;  // VM process is gone.
  }

  // Merge and enter. vmcs01 is the boot-built default image, never written
  // after StartVm, so copying it is byte-identical to rebuilding
  // MakeDefaultVmcs per entry.
  vmcs02_ = vmcs01_;
  vmcs02_.set_launch_state(Vmcs::LaunchState::kClear);
  static constexpr VmcsField kGuestCopy[] = {
      VmcsField::kGuestCr0, VmcsField::kGuestCr3, VmcsField::kGuestCr4,
      VmcsField::kGuestIa32Efer, VmcsField::kGuestRflags,
      VmcsField::kGuestRip, VmcsField::kGuestRsp,
      VmcsField::kGuestCsSelector, VmcsField::kGuestCsArBytes,
      VmcsField::kGuestActivityState,
  };
  for (VmcsField f : kGuestCopy) {
    vmcs02_.Write(f, v12.Read(f));
  }
  // VirtualBox sanitizes the activity state (no Xen-style bug here).
  const uint64_t activity = vmcs02_.Read(VmcsField::kGuestActivityState);
  if (activity > static_cast<uint64_t>(ActivityState::kHlt)) {
    NVCOV(cov_);
    vmcs02_.Write(VmcsField::kGuestActivityState, 0);
  }
  vmcs02_.Write(VmcsField::kVmcsLinkPointer, ~0ULL);

  const EntryOutcome hw = vmx_cpu_.TryEntry(vmcs02_, /*launch=*/true);
  if (hw.status == EntryStatus::kEntered) {
    NVCOV(cov_);
    in_l2_ = true;
    launched_[current_ptr_] = true;
    r.ok = true;
    r.entered_l2 = true;
    return r;
  }
  if (hw.status == EntryStatus::kEntryFailGuest) {
    NVCOV(cov_);
    v12.Write(VmcsField::kVmExitReason,
              static_cast<uint32_t>(ExitReason::kInvalidGuestState) |
                  kExitReasonFailedEntryBit);
    r.ok = true;
    return r;
  }
  NVCOV(cov_);
  return r;
}

void SimVbox::ReflectExit(ExitReason reason, uint64_t qual) {
  NVCOV(cov_);
  auto it = vmcs12_cache_.find(current_ptr_);
  if (it != vmcs12_cache_.end()) {
    NVCOV(cov_);
    it->second.Write(VmcsField::kVmExitReason,
                     static_cast<uint32_t>(reason));
    it->second.Write(VmcsField::kExitQualification, qual);
  }
  in_l2_ = false;
}

SvmEmuResult SimVbox::HandleSvmInstruction(const SvmInsn& insn) {
  // No nested SVM support in this model.
  return {};
}

HandledBy SimVbox::HandleGuestInstruction(const GuestInsn& insn,
                                          GuestLevel level) {
  if (host_crashed_ || vm_dead_) {
    return HandledBy::kHostCrash;
  }
  if (level == GuestLevel::kL1) {
    NVCOV(cov_);
    return HandledBy::kL0;
  }
  if (!in_l2_) {
    NVCOV(cov_);
    return HandledBy::kNoExit;
  }
  auto it = vmcs12_cache_.find(current_ptr_);
  if (it == vmcs12_cache_.end()) {
    NVCOV(cov_);
    return HandledBy::kNoExit;
  }
  const Vmcs& v12 = it->second;
  const uint32_t proc =
      static_cast<uint32_t>(v12.Read(VmcsField::kCpuBasedVmExecControl));

  switch (insn.kind) {
    case GuestInsnKind::kCpuid:
      NVCOV(cov_);
      ReflectExit(ExitReason::kCpuid, 0);
      return HandledBy::kL1;
    case GuestInsnKind::kVmcall:
      NVCOV(cov_);
      ReflectExit(ExitReason::kVmcall, 0);
      return HandledBy::kL1;
    case GuestInsnKind::kHlt:
      if ((proc & ProcCtl::kHltExiting) != 0) {
        NVCOV(cov_);
        ReflectExit(ExitReason::kHlt, 0);
        return HandledBy::kL1;
      }
      NVCOV(cov_);
      return HandledBy::kL0;
    case GuestInsnKind::kRdmsr:
    case GuestInsnKind::kWrmsr:
      if ((proc & ProcCtl::kUseMsrBitmaps) == 0) {
        NVCOV(cov_);
        ReflectExit(insn.kind == GuestInsnKind::kRdmsr
                        ? ExitReason::kMsrRead
                        : ExitReason::kMsrWrite,
                    insn.arg0);
        return HandledBy::kL1;
      }
      NVCOV(cov_);
      return HandledBy::kL0;
    case GuestInsnKind::kIoIn:
    case GuestInsnKind::kIoOut:
      if ((proc & ProcCtl::kUncondIoExiting) != 0) {
        NVCOV(cov_);
        ReflectExit(ExitReason::kIoInstruction, insn.arg0);
        return HandledBy::kL1;
      }
      NVCOV(cov_);
      return HandledBy::kL0;
    case GuestInsnKind::kMovToCr0: {
      const uint64_t mask = v12.Read(VmcsField::kCr0GuestHostMask);
      const uint64_t shadow = v12.Read(VmcsField::kCr0ReadShadow);
      if (((insn.arg0 ^ shadow) & mask) != 0) {
        NVCOV(cov_);
        ReflectExit(ExitReason::kCrAccess, 0);
        return HandledBy::kL1;
      }
      NVCOV(cov_);
      return HandledBy::kL0;
    }
    default:
      NVCOV(cov_);
      return HandledBy::kL0;
  }
}

const size_t kVboxNestedVmxCoveragePoints = __COUNTER__;

}  // namespace neco
