// The simulated Oracle VirtualBox host hypervisor (L0 fuzz target).
//
// VirtualBox's nested VMX (VMM/VMMR0/HMVMXR0 + IEM nested-VMX code) is
// modelled as a single engine; it is Intel-only, like the original. The
// re-seeded vulnerability is CVE-2024-21106: during nested VM entry the
// VM-entry MSR-load area is applied to real MSRs without validating that
// address-typed MSR values are canonical. Loading a non-canonical value
// into MSR_K8_KERNEL_GS_BASE raises a general-protection fault in the
// host ("general protection fault, probably for non-canonical address"),
// killing the VM process.
#ifndef SRC_HV_SIM_VBOX_VBOX_H_
#define SRC_HV_SIM_VBOX_VBOX_H_

#include <cstdint>
#include <map>

#include "src/arch/vmcs.h"
#include "src/arch/vmx_caps.h"
#include "src/cpu/vmx_cpu.h"
#include "src/hv/coverage.h"
#include "src/hv/hypervisor.h"

namespace neco {

extern const size_t kVboxNestedVmxCoveragePoints;

class SimVbox : public Hypervisor {
 public:
  SimVbox();

  std::string_view name() const override { return "virtualbox"; }
  Arch arch() const override { return Arch::kIntel; }
  void StartVm(const VcpuConfig& config) override;
  VmSnapshot SnapshotVm() override;
  void RestoreVm(const VmSnapshot& snapshot) override;
  VmxEmuResult HandleVmxInstruction(const VmxInsn& insn) override;
  SvmEmuResult HandleSvmInstruction(const SvmInsn& insn) override;
  HandledBy HandleGuestInstruction(const GuestInsn& insn,
                                   GuestLevel level) override;
  bool in_l2() const override { return in_l2_; }
  CoverageUnit& nested_coverage(Arch arch) override { return cov_; }

  // True once the VM process has been killed by a host fault; further
  // guest activity is impossible until StartVm.
  bool vm_dead() const { return vm_dead_; }

 private:
  static constexpr uint64_t kNoPtr = ~0ULL;

  bool CheckPermission();
  bool IemCheckControls(const Vmcs& v12);
  bool IemCheckGuest(const Vmcs& v12);
  // The vulnerable routine: applies the VM-entry MSR-load area.
  bool LoadEntryMsrs(const Vmcs& v12);
  VmxEmuResult VmlaunchVmresume(bool launch);
  void ReflectExit(ExitReason reason, uint64_t qual);

  VmxCpu vmx_cpu_;
  CoverageUnit cov_;
  VcpuConfig config_;
  VmxCapabilities nested_caps_;

  bool vmxon_ = false;
  uint64_t vmxon_ptr_ = kNoPtr;
  uint64_t current_ptr_ = kNoPtr;
  std::map<uint64_t, Vmcs> vmcs12_cache_;
  std::map<uint64_t, bool> launched_;
  // The L0 container VMCS for the L1 guest, built once at boot (same
  // fidelity as KVM's vmcs01) and copied into vmcs02 per nested entry.
  // Never written after StartVm/RestoreVm.
  Vmcs vmcs01_;
  Vmcs vmcs02_;
  bool in_l2_ = false;
  bool vm_dead_ = false;
};

}  // namespace neco

#endif  // SRC_HV_SIM_VBOX_VBOX_H_
