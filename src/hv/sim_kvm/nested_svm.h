// KVM-shaped nested SVM emulation — the analog of Linux
// arch/x86/kvm/svm/nested.c, the file the paper measures AMD-side KVM
// coverage over.
//
// Carries the AMD flavour of bug K2 (dummy-root): a VMCB12 nested CR3
// beyond the physical address width passes nested_vmcb_check_controls
// (range check missing) but fails mmu_check_root, after which the
// vulnerable code synthesizes a shutdown exit to L1 although L2 never ran.
#ifndef SRC_HV_SIM_KVM_NESTED_SVM_H_
#define SRC_HV_SIM_KVM_NESTED_SVM_H_

#include <cstdint>
#include <map>

#include "src/arch/vmcb.h"
#include "src/cpu/svm_cpu.h"
#include "src/hv/coverage.h"
#include "src/hv/guest_insn.h"
#include "src/hv/guest_memory.h"
#include "src/hv/hypervisor.h"
#include "src/hv/sanitizer.h"
#include "src/hv/vcpu_config.h"

namespace neco {

extern const size_t kKvmNestedSvmCoveragePoints;

class KvmNestedSvm {
 public:
  KvmNestedSvm(CoverageUnit& cov, SanitizerSink& san, GuestMemory& mem,
               SvmCpu& cpu);

  void Reset(const VcpuConfig& config);

  SvmEmuResult HandleInstruction(const SvmInsn& insn);
  HandledBy HandleL2Instruction(const GuestInsn& insn);
  HandledBy HandleL1Instruction(const GuestInsn& insn);
  bool in_l2() const { return in_l2_; }

  // Host-side ioctl surface (out of the guest-reachable threat model).
  uint64_t IoctlGetNestedState();
  bool IoctlSetNestedState(uint64_t blob);

  const Vmcb* vmcb12(uint64_t pa) const;

 private:
  static constexpr uint64_t kNoPtr = ~0ULL;

  bool NestedSvmCheckPermission();
  bool CheckControls(const Vmcb& v12);
  bool CheckSaveArea(const Vmcb& v12);
  bool MmuCheckRoot(uint64_t root_gpa);
  void PrepareVmcb02(const Vmcb& v12);
  SvmEmuResult HandleVmrun(uint64_t pa);
  void NestedSvmVmexit(SvmExitCode code, uint64_t info1);
  bool ShouldReflectToL1(const GuestInsn& insn, SvmExitCode* code);

  CoverageUnit& cov_;
  SanitizerSink& san_;
  GuestMemory& mem_;
  SvmCpu& cpu_;

  VcpuConfig config_;
  bool l1_svme_ = false;   // L1's EFER.SVME (wrmsr-controlled).
  bool l1_gif_ = true;     // L1's virtualized GIF.
  std::map<uint64_t, Vmcb> vmcb12_cache_;
  uint64_t current_vmcb12_ = kNoPtr;
  Vmcb vmcb02_;
  bool in_l2_ = false;
  bool l2_ever_ran_ = false;
};

}  // namespace neco

#endif  // SRC_HV_SIM_KVM_NESTED_SVM_H_
