// The simulated KVM host hypervisor (L0 fuzz target).
//
// Combines the nested VMX and nested SVM engines behind the Hypervisor
// interface, owns the simulated physical CPUs, and models KVM's module
// parameters (kvm-intel.ko / kvm-amd.ko) applied at StartVm time.
#ifndef SRC_HV_SIM_KVM_KVM_H_
#define SRC_HV_SIM_KVM_KVM_H_

#include <memory>

#include "src/cpu/svm_cpu.h"
#include "src/cpu/vmx_cpu.h"
#include "src/hv/hypervisor.h"
#include "src/hv/sim_kvm/nested_svm.h"
#include "src/hv/sim_kvm/nested_vmx.h"

namespace neco {

class SimKvm : public Hypervisor {
 public:
  SimKvm();

  std::string_view name() const override { return "kvm"; }
  Arch arch() const override { return config_.arch; }
  void StartVm(const VcpuConfig& config) override;
  VmSnapshot SnapshotVm() override;
  void RestoreVm(const VmSnapshot& snapshot) override;
  VmxEmuResult HandleVmxInstruction(const VmxInsn& insn) override;
  SvmEmuResult HandleSvmInstruction(const SvmInsn& insn) override;
  HandledBy HandleGuestInstruction(const GuestInsn& insn,
                                   GuestLevel level) override;
  bool in_l2() const override;
  CoverageUnit& nested_coverage(Arch arch) override;

  // Host-side ioctl surface exercised by the selftests baseline only.
  uint64_t IoctlGetNestedState();
  bool IoctlSetNestedState(uint64_t blob);
  void IoctlLeaveNested();

  KvmNestedVmx& nested_vmx() { return nested_vmx_; }
  KvmNestedSvm& nested_svm() { return nested_svm_; }
  VmxCpu& vmx_cpu() { return vmx_cpu_; }
  SvmCpu& svm_cpu() { return svm_cpu_; }

 private:
  VmxCpu vmx_cpu_;
  SvmCpu svm_cpu_;
  CoverageUnit vmx_cov_;
  CoverageUnit svm_cov_;
  VcpuConfig config_;
  KvmNestedVmx nested_vmx_;
  KvmNestedSvm nested_svm_;
};

}  // namespace neco

#endif  // SRC_HV_SIM_KVM_KVM_H_
