#include "src/hv/sim_kvm/nested_svm.h"

#include "src/arch/vmx_bits.h"
#include "src/support/bits.h"

namespace neco {

KvmNestedSvm::KvmNestedSvm(CoverageUnit& cov, SanitizerSink& san,
                           GuestMemory& mem, SvmCpu& cpu)
    : cov_(cov), san_(san), mem_(mem), cpu_(cpu) {
  Reset(VcpuConfig::Default(Arch::kAmd));
}

void KvmNestedSvm::Reset(const VcpuConfig& config) {
  config_ = config;
  l1_svme_ = false;
  l1_gif_ = true;
  vmcb12_cache_.clear();
  current_vmcb12_ = kNoPtr;
  vmcb02_ = Vmcb();
  in_l2_ = false;
  l2_ever_ran_ = false;
  cpu_.set_svme(true);  // L0 itself runs with SVME enabled.
}

const Vmcb* KvmNestedSvm::vmcb12(uint64_t pa) const {
  auto it = vmcb12_cache_.find(pa);
  return it != vmcb12_cache_.end() ? &it->second : nullptr;
}

bool KvmNestedSvm::NestedSvmCheckPermission() {
  if (!config_.nested()) {
    NVCOV(cov_);  // SVM not exposed: #UD.
    return false;
  }
  if (!l1_svme_) {
    NVCOV(cov_);  // EFER.SVME clear in L1: #UD.
    return false;
  }
  NVCOV(cov_);
  return true;
}

SvmEmuResult KvmNestedSvm::HandleInstruction(const SvmInsn& insn) {
  SvmEmuResult r;
  switch (insn.op) {
    case SvmOp::kVmrun:
      return HandleVmrun(insn.operand);
    case SvmOp::kVmload:
      if (!NestedSvmCheckPermission()) {
        return r;
      }
      if (!IsAligned(insn.operand, 12)) {
        NVCOV(cov_);  // #GP on unaligned VMCB address.
        return r;
      }
      NVCOV(cov_);  // Load FS/GS/TR/LDTR and MSR state from the VMCB.
      r.ok = true;
      return r;
    case SvmOp::kVmsave:
      if (!NestedSvmCheckPermission()) {
        return r;
      }
      if (!IsAligned(insn.operand, 12)) {
        NVCOV(cov_);
        return r;
      }
      NVCOV(cov_);
      r.ok = true;
      return r;
    case SvmOp::kStgi:
      if (!NestedSvmCheckPermission()) {
        return r;
      }
      NVCOV(cov_);
      l1_gif_ = true;
      r.ok = true;
      return r;
    case SvmOp::kClgi:
      if (!NestedSvmCheckPermission()) {
        return r;
      }
      NVCOV(cov_);
      l1_gif_ = false;
      r.ok = true;
      return r;
    case SvmOp::kVmmcall:
      NVCOV(cov_);  // Hypercall to L0 (allowed regardless of SVME).
      r.ok = true;
      return r;
    case SvmOp::kInvlpga:
      if (!NestedSvmCheckPermission()) {
        return r;
      }
      NVCOV(cov_);
      r.ok = true;
      return r;
    case SvmOp::kSkinit:
      NVCOV(cov_);  // SKINIT is never exposed to guests.
      return r;
    case SvmOp::kVmcbWrite: {
      // L1 writes a VMCB12 field in its guest memory; L0 observes the
      // memory content at the next VMRUN.
      NVCOV(cov_);
      Vmcb& v = vmcb12_cache_[insn.operand];
      v.Write(insn.field, insn.value);
      r.ok = true;
      return r;
    }
    case SvmOp::kCount:
      break;
  }
  return r;
}

bool KvmNestedSvm::CheckControls(const Vmcb& v12) {
  if (v12.Read(VmcbField::kGuestAsid) == 0) {
    NVCOV(cov_);
    return false;
  }
  if ((v12.Read(VmcbField::kInterceptVec4) & SvmIntercept4::kVmrun) == 0) {
    NVCOV(cov_);
    return false;
  }
  if ((v12.Read(VmcbField::kNestedCtl) & 1) != 0 &&
      !config_.features.Has(CpuFeature::kNpt)) {
    NVCOV(cov_);  // L1 asks for nested paging L0 did not expose.
    return false;
  }
  // NOTE (bug K2, AMD flavour): no range check on kNestedCr3 here.
  const uint64_t event_inj = v12.Read(VmcbField::kEventInj);
  if (TestBit(event_inj, 31)) {
    NVCOV(cov_);
    const uint64_t type = ExtractBits(event_inj, 8, 3);
    if (type == 1 || type > 4) {
      NVCOV(cov_);
      return false;
    }
  }
  NVCOV(cov_);
  return true;
}

bool KvmNestedSvm::CheckSaveArea(const Vmcb& v12) {
  const uint64_t efer = v12.Read(VmcbField::kEfer);
  const uint64_t cr0 = v12.Read(VmcbField::kCr0);
  const uint64_t cr4 = v12.Read(VmcbField::kCr4);

  if ((efer & Efer::kSvme) == 0) {
    NVCOV(cov_);
    return false;
  }
  if ((efer & Efer::kReservedMask) != 0) {
    NVCOV(cov_);
    return false;
  }
  if ((cr0 >> 32) != 0) {
    NVCOV(cov_);
    return false;
  }
  if ((cr0 & Cr0::kCd) == 0 && (cr0 & Cr0::kNw) != 0) {
    NVCOV(cov_);
    return false;
  }
  if ((cr4 & Cr4::kReservedMask) != 0 || (cr4 & Cr4::kVmxe) != 0) {
    NVCOV(cov_);
    return false;
  }
  const bool lme = (efer & Efer::kLme) != 0;
  const bool pg = (cr0 & Cr0::kPg) != 0;
  if (lme && pg) {
    NVCOV(cov_);
    if ((cr4 & Cr4::kPae) == 0 || (cr0 & Cr0::kPe) == 0) {
      NVCOV(cov_);
      return false;
    }
    const uint16_t cs_attrib =
        static_cast<uint16_t>(v12.Read(VmcbField::kCsAttrib));
    if (TestBit(cs_attrib, 9) && TestBit(cs_attrib, 10)) {
      NVCOV(cov_);  // CS.L and CS.D both set in long mode.
      return false;
    }
  }
  if ((v12.Read(VmcbField::kDr6) >> 32) != 0 ||
      (v12.Read(VmcbField::kDr7) >> 32) != 0) {
    NVCOV(cov_);
    return false;
  }
  NVCOV(cov_);
  return true;
}

bool KvmNestedSvm::MmuCheckRoot(uint64_t root_gpa) {
  if (root_gpa > cpu_.caps().MaxPhysicalAddress()) {
    NVCOV(cov_);
    return false;
  }
  NVCOV(cov_);
  return true;
}

void KvmNestedSvm::PrepareVmcb02(const Vmcb& v12) {
  NVCOV(cov_);
  vmcb02_ = MakeDefaultVmcb();
  // Intercepts: union of L1's and L0's.
  vmcb02_.Write(VmcbField::kInterceptVec3,
                v12.Read(VmcbField::kInterceptVec3) |
                    SvmIntercept3::kIntr | SvmIntercept3::kNmi |
                    SvmIntercept3::kShutdown);
  vmcb02_.Write(VmcbField::kInterceptVec4,
                v12.Read(VmcbField::kInterceptVec4) | SvmIntercept4::kVmrun);
  vmcb02_.Write(VmcbField::kGuestAsid, 2);  // L0-owned ASID for L2.
  if (config_.features.Has(CpuFeature::kNpt)) {
    NVCOV(cov_);
    vmcb02_.Write(VmcbField::kNestedCtl, 1);
    vmcb02_.Write(VmcbField::kNestedCr3, 0x9000);  // L0's NPT root.
  } else {
    NVCOV(cov_);
    vmcb02_.Write(VmcbField::kNestedCtl, 0);
  }
  // V_INTR: KVM sanitizes — masks out AVIC enable and copies only the
  // virtual-interrupt request bits (contrast the Xen bug that leaks AVIC).
  const uint64_t vintr12 = v12.Read(VmcbField::kVIntr);
  vmcb02_.Write(VmcbField::kVIntr,
                vintr12 & (SvmVintr::kVTprMask | SvmVintr::kVIrq |
                           SvmVintr::kVIntrMasking));
  if (config_.features.Has(CpuFeature::kVgif)) {
    NVCOV(cov_);
    vmcb02_.Write(VmcbField::kVIntr,
                  vmcb02_.Read(VmcbField::kVIntr) | SvmVintr::kVGifEnable |
                      (l1_gif_ ? SvmVintr::kVGif : 0));
  }
  // Save area copied from VMCB12.
  static constexpr VmcbField kSaveCopy[] = {
      VmcbField::kEfer, VmcbField::kCr0, VmcbField::kCr3, VmcbField::kCr4,
      VmcbField::kDr6, VmcbField::kDr7, VmcbField::kRflags, VmcbField::kRip,
      VmcbField::kRsp, VmcbField::kRax, VmcbField::kCpl,
      VmcbField::kCsSelector, VmcbField::kCsAttrib, VmcbField::kCsLimit,
      VmcbField::kCsBase, VmcbField::kSsSelector, VmcbField::kSsAttrib,
      VmcbField::kSsLimit, VmcbField::kSsBase, VmcbField::kDsSelector,
      VmcbField::kDsAttrib, VmcbField::kEsSelector, VmcbField::kEsAttrib,
      VmcbField::kGdtrBase, VmcbField::kGdtrLimit, VmcbField::kIdtrBase,
      VmcbField::kIdtrLimit, VmcbField::kGPat,
  };
  for (VmcbField f : kSaveCopy) {
    vmcb02_.Write(f, v12.Read(f));
  }
}

SvmEmuResult KvmNestedSvm::HandleVmrun(uint64_t pa) {
  SvmEmuResult r;
  if (!NestedSvmCheckPermission()) {
    return r;
  }
  if (!l1_gif_) {
    NVCOV(cov_);  // VMRUN with GIF clear stalls; modelled as a no-op.
    return r;
  }
  if (!IsAligned(pa, 12) || pa == 0) {
    NVCOV(cov_);  // #GP.
    return r;
  }
  auto it = vmcb12_cache_.find(pa);
  if (it == vmcb12_cache_.end()) {
    NVCOV(cov_);  // Unmapped VMCB page: all-zero VMCB fails control checks.
    vmcb12_cache_[pa];
    it = vmcb12_cache_.find(pa);
  }
  Vmcb& v12 = it->second;
  current_vmcb12_ = pa;

  if (!CheckControls(v12)) {
    NVCOV(cov_);  // VMEXIT_INVALID reflected to L1.
    v12.Write(VmcbField::kExitCode,
              static_cast<uint64_t>(SvmExitCode::kInvalid));
    r.ok = true;
    return r;
  }
  if (!CheckSaveArea(v12)) {
    NVCOV(cov_);
    v12.Write(VmcbField::kExitCode,
              static_cast<uint64_t>(SvmExitCode::kInvalid));
    r.ok = true;
    return r;
  }

  // Nested paging root from L1, if L1 enabled NP for L2.
  if ((v12.Read(VmcbField::kNestedCtl) & 1) != 0) {
    NVCOV(cov_);
    if (!MmuCheckRoot(AlignDown(v12.Read(VmcbField::kNestedCr3), 12))) {
      // Bug K2 (AMD flavour): synthesize a shutdown exit to L1 instead of
      // failing the VMRUN; L2 never ran.
      NVCOV(cov_);
      san_.Report(AnomalyKind::kAssertion, "kvm-nsvm-dummy-root",
                  "WARN_ON_ONCE: shutdown exit synthesized before L2 entry "
                  "(mmu_check_root failed for nested CR3)");
      NestedSvmVmexit(SvmExitCode::kShutdown, 0);
      r.ok = true;
      return r;
    }
    NVCOV(cov_);
  }

  PrepareVmcb02(v12);
  const VmrunOutcome hw = cpu_.Vmrun(vmcb02_);
  switch (hw.status) {
    case VmrunStatus::kEntered:
      NVCOV(cov_);
      in_l2_ = true;
      l2_ever_ran_ = true;
      r.ok = true;
      r.entered_l2 = true;
      return r;
    case VmrunStatus::kInvalidVmcb:
      NVCOV(cov_);  // Hardware rejected what KVM's checks admitted.
      v12.Write(VmcbField::kExitCode,
                static_cast<uint64_t>(SvmExitCode::kInvalid));
      r.ok = true;
      return r;
    case VmrunStatus::kSvmeDisabled:
      NVCOV(cov_);
      return r;
  }
  return r;
}

void KvmNestedSvm::NestedSvmVmexit(SvmExitCode code, uint64_t info1) {
  NVCOV(cov_);
  auto it = vmcb12_cache_.find(current_vmcb12_);
  if (it != vmcb12_cache_.end()) {
    NVCOV(cov_);
    Vmcb& v12 = it->second;
    // Sync L2 state back into VMCB12's save area.
    static constexpr VmcbField kSync[] = {
        VmcbField::kEfer, VmcbField::kCr0, VmcbField::kCr3, VmcbField::kCr4,
        VmcbField::kRflags, VmcbField::kRip, VmcbField::kRsp,
        VmcbField::kRax, VmcbField::kCpl,
    };
    for (VmcbField f : kSync) {
      v12.Write(f, vmcb02_.Read(f));
    }
    v12.Write(VmcbField::kExitCode, static_cast<uint64_t>(code));
    v12.Write(VmcbField::kExitInfo1, info1);
  }
  in_l2_ = false;
}

bool KvmNestedSvm::ShouldReflectToL1(const GuestInsn& insn,
                                     SvmExitCode* code) {
  auto it = vmcb12_cache_.find(current_vmcb12_);
  if (it == vmcb12_cache_.end()) {
    NVCOV(cov_);
    *code = SvmExitCode::kCpuid;
    return false;
  }
  const Vmcb& v12 = it->second;
  const uint32_t vec3 =
      static_cast<uint32_t>(v12.Read(VmcbField::kInterceptVec3));
  const uint32_t vec4 =
      static_cast<uint32_t>(v12.Read(VmcbField::kInterceptVec4));

  switch (insn.kind) {
    case GuestInsnKind::kCpuid:
      *code = SvmExitCode::kCpuid;
      if ((vec3 & SvmIntercept3::kCpuid) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kHlt:
      *code = SvmExitCode::kHlt;
      if ((vec3 & SvmIntercept3::kHlt) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kRdtsc:
      *code = SvmExitCode::kCpuid;
      if ((vec3 & SvmIntercept3::kRdtsc) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kRdtscp:
      *code = SvmExitCode::kRdtscp;
      if ((vec4 & SvmIntercept4::kRdtscp) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kRdpmc:
      *code = SvmExitCode::kCpuid;
      if ((vec3 & SvmIntercept3::kRdpmc) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kPause:
      *code = SvmExitCode::kPause;
      if ((vec3 & SvmIntercept3::kPause) != 0) {
        NVCOV(cov_);
        if (config_.features.Has(CpuFeature::kPauseFilter) &&
            v12.Read(VmcbField::kPauseFilterCount) > 0) {
          NVCOV(cov_);  // Pause filter absorbs short spins.
          return false;
        }
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kInvd:
      *code = SvmExitCode::kCpuid;
      if ((vec3 & SvmIntercept3::kInvd) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kWbinvd:
      *code = SvmExitCode::kWbinvd;
      if ((vec4 & SvmIntercept4::kWbinvd) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kMovToCr0:
      *code = SvmExitCode::kCr0Write;
      if ((static_cast<uint32_t>(v12.Read(VmcbField::kInterceptCrWrite)) &
           (1u << 0)) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kMovToCr0Selective:
      *code = SvmExitCode::kCr0Write;
      if ((vec3 & SvmIntercept3::kCr0SelWrite) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kMovToCr3:
      *code = SvmExitCode::kCr3Write;
      if ((static_cast<uint32_t>(v12.Read(VmcbField::kInterceptCrWrite)) &
           (1u << 3)) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kMovToCr4:
      *code = SvmExitCode::kCr4Write;
      if ((static_cast<uint32_t>(v12.Read(VmcbField::kInterceptCrWrite)) &
           (1u << 4)) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kMovToDr:
      *code = SvmExitCode::kCpuid;
      if ((static_cast<uint32_t>(v12.Read(VmcbField::kInterceptDrWrite)) &
           (1u << (insn.arg1 & 0xf))) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kIoIn:
    case GuestInsnKind::kIoOut:
      *code = SvmExitCode::kIoio;
      if ((vec3 & SvmIntercept3::kIoioProt) != 0) {
        NVCOV(cov_);
        // IOPM bit per port.
        if (mem_.TestBit(v12.Read(VmcbField::kIopmBasePa),
                         insn.arg0 & 0xffff)) {
          NVCOV(cov_);
          return true;
        }
        NVCOV(cov_);
        return false;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kRdmsr:
    case GuestInsnKind::kWrmsr: {
      *code = SvmExitCode::kMsr;
      if ((vec3 & SvmIntercept3::kMsrProt) == 0) {
        NVCOV(cov_);
        return false;
      }
      const uint32_t msr = static_cast<uint32_t>(insn.arg0);
      uint64_t bit;
      if (msr < 0x2000) {
        bit = msr * 2;
      } else if (msr >= 0xc0000000 && msr < 0xc0002000) {
        bit = 0x4000 + (msr - 0xc0000000) * 2;
      } else {
        NVCOV(cov_);  // Out-of-map MSRs always intercept.
        return true;
      }
      if (insn.kind == GuestInsnKind::kWrmsr) {
        bit += 1;
      }
      if (mem_.TestBit(v12.Read(VmcbField::kMsrpmBasePa), bit)) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    }
    case GuestInsnKind::kInvlpg:
      *code = SvmExitCode::kInvlpg;
      if ((vec3 & SvmIntercept3::kInvlpg) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kMwait:
      *code = SvmExitCode::kMwait;
      if ((vec4 & SvmIntercept4::kMwait) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kMonitor:
      *code = SvmExitCode::kMonitor;
      if ((vec4 & SvmIntercept4::kMonitor) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kVmcall:
      *code = SvmExitCode::kVmmcall;
      if ((vec4 & SvmIntercept4::kVmmcall) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kXsetbv:
      *code = SvmExitCode::kXsetbv;
      if ((vec4 & SvmIntercept4::kXsetbv) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kRaiseException: {
      *code = static_cast<SvmExitCode>(
          static_cast<uint64_t>(SvmExitCode::kExcpBase) + (insn.arg0 & 31));
      const uint32_t bitmap = static_cast<uint32_t>(
          v12.Read(VmcbField::kInterceptExceptions));
      if ((bitmap & (1u << (insn.arg0 & 31))) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    }
    default:
      NVCOV(cov_);
      *code = SvmExitCode::kCpuid;
      return false;
  }
}

HandledBy KvmNestedSvm::HandleL2Instruction(const GuestInsn& insn) {
  if (!in_l2_) {
    NVCOV(cov_);
    return HandledBy::kNoExit;
  }
  SvmExitCode code = SvmExitCode::kCpuid;
  if (ShouldReflectToL1(insn, &code)) {
    NVCOV(cov_);
    NestedSvmVmexit(code, insn.arg0);
    return HandledBy::kL1;
  }
  // Handled by L0: emulate and resume L2.
  switch (insn.kind) {
    case GuestInsnKind::kHlt:
    case GuestInsnKind::kPause:
      NVCOV(cov_);
      return HandledBy::kL0;
    case GuestInsnKind::kRdmsr:
    case GuestInsnKind::kWrmsr:
      NVCOV(cov_);
      return HandledBy::kL0;
    case GuestInsnKind::kMovToCr0:
    case GuestInsnKind::kMovToCr3:
    case GuestInsnKind::kMovToCr4:
      NVCOV(cov_);
      vmcb02_.Write(insn.kind == GuestInsnKind::kMovToCr0
                        ? VmcbField::kCr0
                        : insn.kind == GuestInsnKind::kMovToCr3
                              ? VmcbField::kCr3
                              : VmcbField::kCr4,
                    insn.arg0);
      return HandledBy::kNoExit;
    default:
      NVCOV(cov_);
      return HandledBy::kNoExit;
  }
}

HandledBy KvmNestedSvm::HandleL1Instruction(const GuestInsn& insn) {
  switch (insn.kind) {
    case GuestInsnKind::kWrmsr:
      if (static_cast<uint32_t>(insn.arg0) == Msr::kIa32Efer) {
        NVCOV(cov_);  // EFER.SVME toggles nested availability.
        if (!config_.nested() && (insn.arg1 & Efer::kSvme) != 0) {
          NVCOV(cov_);  // SVME set while SVM hidden: #GP.
          return HandledBy::kL0;
        }
        l1_svme_ = (insn.arg1 & Efer::kSvme) != 0;
        return HandledBy::kL0;
      }
      if (static_cast<uint32_t>(insn.arg0) == Msr::kVmCr) {
        NVCOV(cov_);  // VM_CR.SVMDIS probing.
        return HandledBy::kL0;
      }
      NVCOV(cov_);
      return HandledBy::kL0;
    case GuestInsnKind::kRdmsr:
      if (static_cast<uint32_t>(insn.arg0) == Msr::kVmCr) {
        NVCOV(cov_);
        return HandledBy::kL0;
      }
      NVCOV(cov_);
      return HandledBy::kL0;
    case GuestInsnKind::kVmcall:
      NVCOV(cov_);
      return HandledBy::kL0;
    default:
      NVCOV(cov_);
      return HandledBy::kNoExit;
  }
}

uint64_t KvmNestedSvm::IoctlGetNestedState() {
  NVCOV(cov_);
  uint64_t blob = l1_svme_ ? 1 : 0;
  if (in_l2_) {
    NVCOV(cov_);
    blob |= 2;
  }
  if (current_vmcb12_ != kNoPtr) {
    NVCOV(cov_);
    blob |= current_vmcb12_ << 12;
  }
  return blob;
}

bool KvmNestedSvm::IoctlSetNestedState(uint64_t blob) {
  NVCOV(cov_);
  l1_svme_ = (blob & 1) != 0;
  if ((blob & 2) != 0) {
    NVCOV(cov_);
    if (!l1_svme_) {
      NVCOV(cov_);  // Rejected: cannot be in L2 without SVME.
      return false;
    }
    current_vmcb12_ = blob >> 12 != 0 ? (blob >> 12) << 12 : 0x3000;
    vmcb12_cache_[current_vmcb12_];
    in_l2_ = true;
  } else {
    NVCOV(cov_);
    in_l2_ = false;
  }
  return true;
}

const size_t kKvmNestedSvmCoveragePoints = __COUNTER__;

}  // namespace neco
