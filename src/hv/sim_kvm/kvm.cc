#include "src/hv/sim_kvm/kvm.h"

namespace neco {
namespace {

// Cooked post-boot image for SimKvm. Only the Intel engine does expensive
// work at boot (building vmcs01 and the advertised capability MSRs); AMD
// boots are a handful of scalar stores, so AMD snapshots stay config-only
// and restore through the StartVm fallback.
struct KvmSnapshotData : VmSnapshotData {
  KvmNestedVmx::BootImage vmx_boot;
};

}  // namespace

SimKvm::SimKvm()
    : vmx_cov_("kvm/vmx/nested.c", kKvmNestedVmxCoveragePoints),
      svm_cov_("kvm/svm/nested.c", kKvmNestedSvmCoveragePoints),
      config_(VcpuConfig::Default(Arch::kIntel)),
      nested_vmx_(vmx_cov_, sanitizers_, guest_memory_, vmx_cpu_),
      nested_svm_(svm_cov_, sanitizers_, guest_memory_, svm_cpu_) {}

void SimKvm::StartVm(const VcpuConfig& config) {
  config_ = config;
  guest_memory_.Clear();
  if (config.arch == Arch::kIntel) {
    nested_vmx_.Reset(config);
  } else {
    nested_svm_.Reset(config);
  }
}

VmSnapshot SimKvm::SnapshotVm() {
  VmSnapshot snap;
  snap.hypervisor = std::string(name());
  snap.config = config_;
  if (config_.arch == Arch::kIntel) {
    auto data = std::make_shared<KvmSnapshotData>();
    data->vmx_boot = nested_vmx_.CaptureBoot();
    snap.data = std::move(data);
  }
  return snap;
}

void SimKvm::RestoreVm(const VmSnapshot& snapshot) {
  const auto* data = dynamic_cast<const KvmSnapshotData*>(snapshot.data.get());
  if (data == nullptr) {
    StartVm(snapshot.config);  // Foreign or config-only snapshot.
    return;
  }
  config_ = snapshot.config;
  guest_memory_.Clear();
  nested_vmx_.RestoreBoot(data->vmx_boot);
}

VmxEmuResult SimKvm::HandleVmxInstruction(const VmxInsn& insn) {
  if (config_.arch != Arch::kIntel || host_crashed_) {
    return {};
  }
  return nested_vmx_.HandleInstruction(insn);
}

SvmEmuResult SimKvm::HandleSvmInstruction(const SvmInsn& insn) {
  if (config_.arch != Arch::kAmd || host_crashed_) {
    return {};
  }
  return nested_svm_.HandleInstruction(insn);
}

HandledBy SimKvm::HandleGuestInstruction(const GuestInsn& insn,
                                         GuestLevel level) {
  if (host_crashed_) {
    return HandledBy::kHostCrash;
  }
  if (config_.arch == Arch::kIntel) {
    return level == GuestLevel::kL2 ? nested_vmx_.HandleL2Instruction(insn)
                                    : nested_vmx_.HandleL1Instruction(insn);
  }
  return level == GuestLevel::kL2 ? nested_svm_.HandleL2Instruction(insn)
                                  : nested_svm_.HandleL1Instruction(insn);
}

bool SimKvm::in_l2() const {
  return config_.arch == Arch::kIntel ? nested_vmx_.in_l2()
                                      : nested_svm_.in_l2();
}

CoverageUnit& SimKvm::nested_coverage(Arch arch) {
  return arch == Arch::kIntel ? vmx_cov_ : svm_cov_;
}

uint64_t SimKvm::IoctlGetNestedState() {
  return config_.arch == Arch::kIntel ? nested_vmx_.IoctlGetNestedState()
                                      : nested_svm_.IoctlGetNestedState();
}

bool SimKvm::IoctlSetNestedState(uint64_t blob) {
  return config_.arch == Arch::kIntel
             ? nested_vmx_.IoctlSetNestedState(blob)
             : nested_svm_.IoctlSetNestedState(blob);
}

void SimKvm::IoctlLeaveNested() {
  if (config_.arch == Arch::kIntel) {
    nested_vmx_.IoctlLeaveNested();
  }
}

}  // namespace neco
