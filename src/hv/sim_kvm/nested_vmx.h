// KVM-shaped nested VMX emulation — the analog of Linux
// arch/x86/kvm/vmx/nested.c, which is the exact file the paper measures
// Intel-side coverage over (Section 5.1).
//
// Structure mirrors the original: per-instruction handlers (handle_vmxon,
// handle_vmclear, handle_vmptrld, handle_vmread/vmwrite, ...), the VMCS12
// consistency checks (nested_vmx_check_controls / _host_state /
// _guest_state), VMCS02 preparation, nested VM-exit reflection and the
// VMCS12<-VMCS02 sync on exit. Two real KVM vulnerabilities are re-seeded:
//
//  * Bug K1 (CVE-2023-30456): with EPT disabled (shadow paging), a VMCS12
//    with "IA-32e mode guest" set but guest CR4.PAE clear passes every
//    consistency check (hardware silently tolerates the combination), yet
//    the shadow-MMU root-level computation trusts CR4.PAE literally and
//    indexes the page-walk array out of bounds -> UBSAN.
//  * Bug K2 (dummy-root bug, fixed by Linux commit 0e3223d8d): a VMCS12
//    EPTP whose address exceeds the physical address width passes
//    nested_vmx_check_eptp (range check missing) but fails mmu_check_root
//    later; KVM then synthesizes a triple-fault VM exit to L1 although L2
//    never ran -> internal assertion.
#ifndef SRC_HV_SIM_KVM_NESTED_VMX_H_
#define SRC_HV_SIM_KVM_NESTED_VMX_H_

#include <cstdint>
#include <map>

#include "src/arch/vmcs.h"
#include "src/arch/vmx_caps.h"
#include "src/cpu/vmx_cpu.h"
#include "src/hv/coverage.h"
#include "src/hv/guest_insn.h"
#include "src/hv/guest_memory.h"
#include "src/hv/hypervisor.h"
#include "src/hv/sanitizer.h"
#include "src/hv/vcpu_config.h"

namespace neco {

// Total NVCOV points in nested_vmx.cc (defined at the end of that TU).
extern const size_t kKvmNestedVmxCoveragePoints;

class KvmNestedVmx {
 public:
  KvmNestedVmx(CoverageUnit& cov, SanitizerSink& san, GuestMemory& mem,
               VmxCpu& cpu);

  // Module reload + VM boot with a fresh configuration.
  void Reset(const VcpuConfig& config);

  // Cooked post-boot state: everything Reset derives from the config
  // (advertised capabilities, the L0-built vmcs01), captured so a restore
  // is copy-assignment instead of recompute. RestoreBoot(CaptureBoot())
  // right after Reset(config) is bit-equivalent to Reset(config).
  struct BootImage {
    VcpuConfig config;
    VmxCapabilities nested_caps;
    Vmcs vmcs01;
  };
  BootImage CaptureBoot() const { return {config_, nested_caps_, vmcs01_}; }
  void RestoreBoot(const BootImage& image);

  VmxEmuResult HandleInstruction(const VmxInsn& insn);
  HandledBy HandleL2Instruction(const GuestInsn& insn);
  HandledBy HandleL1Instruction(const GuestInsn& insn);
  bool in_l2() const { return in_l2_; }

  // Host-side ioctl surface (KVM_GET/SET_NESTED_STATE and friends).
  // Reachable only from the host — never from guest-driven fuzzing — and
  // therefore part of the coverage the paper classifies as out of scope
  // for its threat model (Section 5.2's first uncovered category).
  uint64_t IoctlGetNestedState();
  bool IoctlSetNestedState(uint64_t blob);
  void IoctlLeaveNested();

  // Test hook: the cached VMCS12, if any.
  const Vmcs* current_vmcs12() const;

 private:
  struct CachedVmcs12 {
    Vmcs vmcs;
    bool launched = false;
  };

  static constexpr uint64_t kNoPtr = ~0ULL;

  // nested.c-style internals.
  bool NestedVmxCheckPermission();
  bool CheckVmControls(const Vmcs& v12);
  bool CheckHostStateArea(const Vmcs& v12);
  bool CheckGuestStateArea(const Vmcs& v12, CheckId* failed);
  bool CheckEntryMsrLoadArea(const Vmcs& v12);
  bool NestedVmxCheckEptp(uint64_t eptp);
  bool MmuCheckRoot(uint64_t root_gpa);
  void PrepareVmcs02(const Vmcs& v12);
  void LoadShadowMmu(const Vmcs& v12);
  VmxEmuResult NestedVmxRun(bool launch);
  void NestedVmxVmexit(ExitReason reason, uint64_t qualification);
  void SyncVmcs02ToVmcs12();
  void LoadVmcs12HostState();
  bool ShouldReflectToL1(const GuestInsn& insn, ExitReason* reason);
  HandledBy HandleByL0(const GuestInsn& insn);

  VmxEmuResult HandleVmxon(uint64_t pa);
  VmxEmuResult HandleVmxoff();
  VmxEmuResult HandleVmclear(uint64_t pa);
  VmxEmuResult HandleVmptrld(uint64_t pa);
  VmxEmuResult HandleVmptrst();
  VmxEmuResult HandleVmwrite(VmcsField field, uint64_t value);
  VmxEmuResult HandleVmread(VmcsField field);
  VmxEmuResult HandleInvept(uint64_t type);
  VmxEmuResult HandleInvvpid(uint64_t type);

  CoverageUnit& cov_;
  SanitizerSink& san_;
  GuestMemory& mem_;
  VmxCpu& cpu_;

  VcpuConfig config_;
  VmxCapabilities nested_caps_;  // What L0 advertises to L1.

  bool vmxon_ = false;
  uint64_t vmxon_ptr_ = kNoPtr;
  uint64_t current_ptr_ = kNoPtr;
  std::map<uint64_t, CachedVmcs12> vmcs12_cache_;

  Vmcs vmcs01_;
  Vmcs vmcs02_;
  bool in_l2_ = false;
  bool l2_ever_ran_ = false;
  // Fault-injection hook kept for parity with error-injection kernel
  // builds; never set during normal fuzzing.
  bool host_note_pending_ = false;
};

}  // namespace neco

#endif  // SRC_HV_SIM_KVM_NESTED_VMX_H_
