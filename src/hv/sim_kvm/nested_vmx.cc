#include "src/hv/sim_kvm/nested_vmx.h"

#include "src/arch/vmx_bits.h"
#include "src/support/bits.h"

namespace neco {

KvmNestedVmx::KvmNestedVmx(CoverageUnit& cov, SanitizerSink& san,
                           GuestMemory& mem, VmxCpu& cpu)
    : cov_(cov), san_(san), mem_(mem), cpu_(cpu) {
  Reset(VcpuConfig::Default(Arch::kIntel));
}

void KvmNestedVmx::Reset(const VcpuConfig& config) {
  config_ = config;
  nested_caps_ = MakeVmxCapabilities(config.features.RestrictedTo(Arch::kIntel));
  vmxon_ = false;
  vmxon_ptr_ = kNoPtr;
  current_ptr_ = kNoPtr;
  vmcs12_cache_.clear();
  vmcs01_ = MakeDefaultVmcs();
  vmcs02_ = Vmcs();
  in_l2_ = false;
  l2_ever_ran_ = false;
}

// Mirrors Reset() field for field; the derived members (nested_caps_,
// vmcs01_) come from the image instead of being recomputed. Keep the two
// in sync — the snapshot equivalence tests pin this.
void KvmNestedVmx::RestoreBoot(const BootImage& image) {
  config_ = image.config;
  nested_caps_ = image.nested_caps;
  vmxon_ = false;
  vmxon_ptr_ = kNoPtr;
  current_ptr_ = kNoPtr;
  vmcs12_cache_.clear();
  vmcs01_ = image.vmcs01;
  vmcs02_ = Vmcs();
  in_l2_ = false;
  l2_ever_ran_ = false;
}

const Vmcs* KvmNestedVmx::current_vmcs12() const {
  auto it = vmcs12_cache_.find(current_ptr_);
  return it != vmcs12_cache_.end() ? &it->second.vmcs : nullptr;
}

// ---------------------------------------------------------------------------
// Permission / instruction entry points (handle_vmx_instruction dispatch).
// ---------------------------------------------------------------------------

bool KvmNestedVmx::NestedVmxCheckPermission() {
  if (!config_.nested()) {
    NVCOV(cov_);  // nested=0: VMX instructions raise #UD in the guest.
    return false;
  }
  if (!vmxon_) {
    NVCOV(cov_);  // Outside VMX operation: #UD.
    return false;
  }
  NVCOV(cov_);
  return true;
}

VmxEmuResult KvmNestedVmx::HandleInstruction(const VmxInsn& insn) {
  switch (insn.op) {
    case VmxOp::kVmxon:
      return HandleVmxon(insn.operand);
    case VmxOp::kVmxoff:
      return HandleVmxoff();
    case VmxOp::kVmclear:
      return HandleVmclear(insn.operand);
    case VmxOp::kVmptrld:
      return HandleVmptrld(insn.operand);
    case VmxOp::kVmptrst:
      return HandleVmptrst();
    case VmxOp::kVmwrite:
      return HandleVmwrite(insn.field, insn.value);
    case VmxOp::kVmread:
      return HandleVmread(insn.field);
    case VmxOp::kVmlaunch:
      return NestedVmxRun(/*launch=*/true);
    case VmxOp::kVmresume:
      return NestedVmxRun(/*launch=*/false);
    case VmxOp::kInvept:
      return HandleInvept(insn.operand);
    case VmxOp::kInvvpid:
      return HandleInvvpid(insn.operand);
    case VmxOp::kCount:
      break;
  }
  return {};
}

VmxEmuResult KvmNestedVmx::HandleVmxon(uint64_t pa) {
  VmxEmuResult r;
  if (!config_.nested()) {
    NVCOV(cov_);  // CPUID.VMX clear: #UD.
    return r;
  }
  if (vmxon_) {
    NVCOV(cov_);  // VMXON within VMX operation: VMfail.
    return r;
  }
  if (!IsAligned(pa, 12) || pa == 0) {
    NVCOV(cov_);
    return r;
  }
  if (pa > nested_caps_.MaxPhysicalAddress()) {
    NVCOV(cov_);
    return r;
  }
  // The VMXON region header carries the revision identifier.
  if (mem_.Read32(pa) != Vmcs::kRevisionId) {
    NVCOV(cov_);
    return r;
  }
  NVCOV(cov_);
  vmxon_ = true;
  vmxon_ptr_ = pa;
  current_ptr_ = kNoPtr;
  r.ok = true;
  return r;
}

VmxEmuResult KvmNestedVmx::HandleVmxoff() {
  VmxEmuResult r;
  if (!NestedVmxCheckPermission()) {
    return r;
  }
  NVCOV(cov_);
  // free_nested(): drop all nested state.
  vmxon_ = false;
  vmxon_ptr_ = kNoPtr;
  current_ptr_ = kNoPtr;
  in_l2_ = false;
  r.ok = true;
  return r;
}

VmxEmuResult KvmNestedVmx::HandleVmclear(uint64_t pa) {
  VmxEmuResult r;
  if (!NestedVmxCheckPermission()) {
    return r;
  }
  if (!IsAligned(pa, 12) || pa == 0 ||
      pa > nested_caps_.MaxPhysicalAddress()) {
    NVCOV(cov_);  // VMfail(VMCLEAR with invalid address).
    return r;
  }
  if (pa == vmxon_ptr_) {
    NVCOV(cov_);  // VMfail(VMCLEAR with VMXON pointer).
    return r;
  }
  NVCOV(cov_);
  CachedVmcs12& entry = vmcs12_cache_[pa];
  entry.launched = false;
  if (pa == current_ptr_) {
    NVCOV(cov_);  // Clearing the current VMCS releases it.
    current_ptr_ = kNoPtr;
  }
  r.ok = true;
  return r;
}

VmxEmuResult KvmNestedVmx::HandleVmptrld(uint64_t pa) {
  VmxEmuResult r;
  if (!NestedVmxCheckPermission()) {
    return r;
  }
  if (!IsAligned(pa, 12) || pa == 0 ||
      pa > nested_caps_.MaxPhysicalAddress()) {
    NVCOV(cov_);
    return r;
  }
  if (pa == vmxon_ptr_) {
    NVCOV(cov_);
    return r;
  }
  if (config_.features.Has(CpuFeature::kEnlightenedVmcs)) {
    // Hyper-V enlightened VMCS path: only reachable when the guest
    // negotiated evmcs via Hyper-V hypercalls, which the fuzz harness does
    // not model (paper Section 5.2, residual-coverage category).
    NVCOV(cov_);
  }
  // The region header in guest memory carries the revision identifier.
  if (mem_.Read32(pa) != Vmcs::kRevisionId) {
    NVCOV(cov_);  // VMfail(VMPTRLD with incorrect VMCS revision id).
    return r;
  }
  NVCOV(cov_);
  vmcs12_cache_[pa];  // Materialize the cache entry (copy_vmcs12 on load).
  current_ptr_ = pa;
  r.ok = true;
  return r;
}

VmxEmuResult KvmNestedVmx::HandleVmptrst() {
  VmxEmuResult r;
  if (!NestedVmxCheckPermission()) {
    return r;
  }
  NVCOV(cov_);
  r.ok = true;
  r.read_value = current_ptr_;
  return r;
}

VmxEmuResult KvmNestedVmx::HandleVmwrite(VmcsField field, uint64_t value) {
  VmxEmuResult r;
  if (!NestedVmxCheckPermission()) {
    return r;
  }
  auto it = vmcs12_cache_.find(current_ptr_);
  if (it == vmcs12_cache_.end()) {
    NVCOV(cov_);  // VMfailInvalid: no current VMCS.
    return r;
  }
  if (FindVmcsField(field) == nullptr) {
    NVCOV(cov_);  // VMfail(unsupported VMCS component).
    return r;
  }
  if (IsReadOnlyField(field)) {
    NVCOV(cov_);  // VMfail(read-only VMCS component).
    return r;
  }
  NVCOV(cov_);
  it->second.vmcs.Write(field, value);
  r.ok = true;
  return r;
}

VmxEmuResult KvmNestedVmx::HandleVmread(VmcsField field) {
  VmxEmuResult r;
  if (!NestedVmxCheckPermission()) {
    return r;
  }
  auto it = vmcs12_cache_.find(current_ptr_);
  if (it == vmcs12_cache_.end()) {
    NVCOV(cov_);
    return r;
  }
  if (FindVmcsField(field) == nullptr) {
    NVCOV(cov_);
    return r;
  }
  NVCOV(cov_);
  r.ok = true;
  r.read_value = it->second.vmcs.Read(field);
  return r;
}

VmxEmuResult KvmNestedVmx::HandleInvept(uint64_t type) {
  VmxEmuResult r;
  if (!NestedVmxCheckPermission()) {
    return r;
  }
  if (!config_.features.Has(CpuFeature::kEpt)) {
    NVCOV(cov_);  // INVEPT without EPT exposure: #UD.
    return r;
  }
  if (type != 1 && type != 2) {
    NVCOV(cov_);  // VMfail(invalid operand to INVEPT).
    return r;
  }
  if (type == 1) {
    NVCOV(cov_);  // Single-context invalidation.
  } else {
    NVCOV(cov_);  // Global invalidation.
  }
  r.ok = true;
  return r;
}

VmxEmuResult KvmNestedVmx::HandleInvvpid(uint64_t type) {
  VmxEmuResult r;
  if (!NestedVmxCheckPermission()) {
    return r;
  }
  if (!config_.features.Has(CpuFeature::kVpid)) {
    NVCOV(cov_);
    return r;
  }
  if (type > 3) {
    NVCOV(cov_);  // VMfail(invalid operand to INVVPID).
    return r;
  }
  NVCOV(cov_);
  r.ok = true;
  return r;
}

// ---------------------------------------------------------------------------
// VMCS12 consistency checks (nested_vmx_check_* family).
// ---------------------------------------------------------------------------

bool KvmNestedVmx::NestedVmxCheckEptp(uint64_t eptp) {
  const uint64_t memtype = eptp & 0x7;
  if (memtype != 0 && memtype != 6) {
    NVCOV(cov_);
    return false;
  }
  if (ExtractBits(eptp, 3, 3) != 3) {
    NVCOV(cov_);  // Only 4-level EPT walks are exposed to L1.
    return false;
  }
  if (ExtractBits(eptp, 7, 5) != 0) {
    NVCOV(cov_);
    return false;
  }
  if (TestBit(eptp, 6) && !nested_caps_.ept_ad_bits) {
    NVCOV(cov_);
    return false;
  }
  NVCOV(cov_);
  // NOTE (bug K2): the address-range check is missing here — a huge EPTP
  // address sails through and only trips mmu_check_root() much later.
  return true;
}

bool KvmNestedVmx::CheckVmControls(const Vmcs& v12) {
  const uint32_t pin =
      static_cast<uint32_t>(v12.Read(VmcsField::kPinBasedVmExecControl));
  const uint32_t proc =
      static_cast<uint32_t>(v12.Read(VmcsField::kCpuBasedVmExecControl));
  const bool has_sec = (proc & ProcCtl::kActivateSecondary) != 0;
  const uint32_t sec =
      has_sec ? static_cast<uint32_t>(
                    v12.Read(VmcsField::kSecondaryVmExecControl))
              : 0;
  const uint32_t exit_ctl =
      static_cast<uint32_t>(v12.Read(VmcsField::kVmExitControls));
  const uint32_t entry_ctl =
      static_cast<uint32_t>(v12.Read(VmcsField::kVmEntryControls));

  if (!nested_caps_.pinbased.Permits(pin)) {
    NVCOV(cov_);
    return false;
  }
  if (!nested_caps_.procbased.Permits(proc)) {
    NVCOV(cov_);
    return false;
  }
  if (has_sec) {
    NVCOV(cov_);
    if (!nested_caps_.procbased2.Permits(sec)) {
      NVCOV(cov_);
      return false;
    }
  }
  if (!nested_caps_.exit.Permits(exit_ctl)) {
    NVCOV(cov_);
    return false;
  }
  if (!nested_caps_.entry.Permits(entry_ctl)) {
    NVCOV(cov_);
    return false;
  }
  if (v12.Read(VmcsField::kCr3TargetCount) > 4) {
    NVCOV(cov_);
    return false;
  }

  if ((proc & ProcCtl::kUseIoBitmaps) != 0) {
    NVCOV(cov_);
    const uint64_t a = v12.Read(VmcsField::kIoBitmapA);
    const uint64_t b = v12.Read(VmcsField::kIoBitmapB);
    if (!IsAligned(a, 12) || !IsAligned(b, 12) ||
        a > nested_caps_.MaxPhysicalAddress() ||
        b > nested_caps_.MaxPhysicalAddress()) {
      NVCOV(cov_);
      return false;
    }
  }
  if ((proc & ProcCtl::kUseMsrBitmaps) != 0) {
    NVCOV(cov_);
    const uint64_t m = v12.Read(VmcsField::kMsrBitmap);
    if (!IsAligned(m, 12) || m > nested_caps_.MaxPhysicalAddress()) {
      NVCOV(cov_);
      return false;
    }
  }
  if ((proc & ProcCtl::kUseTprShadow) != 0) {
    NVCOV(cov_);
    const uint64_t vapic = v12.Read(VmcsField::kVirtualApicPageAddr);
    if (!IsAligned(vapic, 12) ||
        vapic > nested_caps_.MaxPhysicalAddress()) {
      NVCOV(cov_);
      return false;
    }
    if ((sec & Proc2Ctl::kVirtIntrDelivery) == 0 &&
        (v12.Read(VmcsField::kTprThreshold) & ~0xfULL) != 0) {
      NVCOV(cov_);
      return false;
    }
  }

  const bool nmi_exiting = (pin & PinCtl::kNmiExiting) != 0;
  const bool vnmi = (pin & PinCtl::kVirtualNmis) != 0;
  if (!nmi_exiting && vnmi) {
    NVCOV(cov_);
    return false;
  }
  if (!vnmi && (proc & ProcCtl::kNmiWindowExiting) != 0) {
    NVCOV(cov_);
    return false;
  }

  if ((sec & Proc2Ctl::kVirtX2apicMode) != 0 &&
      (sec & Proc2Ctl::kVirtApicAccesses) != 0) {
    NVCOV(cov_);
    return false;
  }
  if ((sec & Proc2Ctl::kVirtIntrDelivery) != 0 &&
      (pin & PinCtl::kExtIntExiting) == 0) {
    NVCOV(cov_);
    return false;
  }
  if ((pin & PinCtl::kPostedInterrupts) != 0) {
    NVCOV(cov_);
    if ((sec & Proc2Ctl::kVirtIntrDelivery) == 0 ||
        (exit_ctl & ExitCtl::kAckIntrOnExit) == 0) {
      NVCOV(cov_);
      return false;
    }
    const uint64_t desc = v12.Read(VmcsField::kPostedIntrDescAddr);
    if (!IsAligned(desc, 6) || desc > nested_caps_.MaxPhysicalAddress()) {
      NVCOV(cov_);
      return false;
    }
  }
  if ((sec & Proc2Ctl::kEnableVpid) != 0 &&
      v12.Read(VmcsField::kVirtualProcessorId) == 0) {
    NVCOV(cov_);
    return false;
  }
  if ((sec & Proc2Ctl::kEnableEpt) != 0) {
    NVCOV(cov_);
    if (!NestedVmxCheckEptp(v12.Read(VmcsField::kEptPointer))) {
      NVCOV(cov_);
      return false;
    }
  }
  if ((sec & Proc2Ctl::kUnrestrictedGuest) != 0 &&
      (sec & Proc2Ctl::kEnableEpt) == 0) {
    NVCOV(cov_);
    return false;
  }
  if ((sec & Proc2Ctl::kEnablePml) != 0) {
    NVCOV(cov_);
    const uint64_t pml = v12.Read(VmcsField::kPmlAddress);
    if ((sec & Proc2Ctl::kEnableEpt) == 0 || !IsAligned(pml, 12) ||
        pml > nested_caps_.MaxPhysicalAddress()) {
      NVCOV(cov_);
      return false;
    }
  }
  if ((sec & Proc2Ctl::kVmcsShadowing) != 0) {
    NVCOV(cov_);
    const uint64_t rd = v12.Read(VmcsField::kVmreadBitmap);
    const uint64_t wr = v12.Read(VmcsField::kVmwriteBitmap);
    if (!IsAligned(rd, 12) || !IsAligned(wr, 12) ||
        rd > nested_caps_.MaxPhysicalAddress() ||
        wr > nested_caps_.MaxPhysicalAddress()) {
      NVCOV(cov_);
      return false;
    }
  }
  if ((sec & Proc2Ctl::kEnableVmfunc) != 0) {
    NVCOV(cov_);
    const uint64_t list = v12.Read(VmcsField::kEptpListAddress);
    if ((sec & Proc2Ctl::kEnableEpt) == 0 || !IsAligned(list, 12) ||
        list > nested_caps_.MaxPhysicalAddress()) {
      NVCOV(cov_);
      return false;
    }
  }

  // VM-entry interruption-information checks.
  const uint32_t intr_info =
      static_cast<uint32_t>(v12.Read(VmcsField::kVmEntryIntrInfoField));
  if (TestBit(intr_info, 31)) {
    NVCOV(cov_);
    const uint32_t vector = intr_info & 0xff;
    const uint32_t type = ExtractBits(intr_info, 8, 3);
    if (type == 1) {
      NVCOV(cov_);
      return false;
    }
    if (type == 2 && vector != 2) {
      NVCOV(cov_);
      return false;
    }
    if ((type == 3 || type == 6) && vector > 31) {
      NVCOV(cov_);
      return false;
    }
    if (TestBit(intr_info, 11)) {
      NVCOV(cov_);
      const bool contributory =
          type == 3 && (vector == 8 || vector == 10 || vector == 11 ||
                        vector == 12 || vector == 13 || vector == 14 ||
                        vector == 17);
      if (!contributory) {
        NVCOV(cov_);
        return false;
      }
      if ((v12.Read(VmcsField::kVmEntryExceptionErrorCode) & ~0x7fffULL) !=
          0) {
        NVCOV(cov_);
        return false;
      }
    }
    if (type == 4 || type == 5 || type == 6) {
      NVCOV(cov_);
      const uint64_t len = v12.Read(VmcsField::kVmEntryInstructionLen);
      if (len == 0 || len > 15) {
        NVCOV(cov_);
        return false;
      }
    }
  }
  NVCOV(cov_);
  return true;
}

bool KvmNestedVmx::CheckHostStateArea(const Vmcs& v12) {
  const uint64_t cr0 = v12.Read(VmcsField::kHostCr0);
  const uint64_t cr4 = v12.Read(VmcsField::kHostCr4);
  const uint32_t exit_ctl =
      static_cast<uint32_t>(v12.Read(VmcsField::kVmExitControls));
  const bool host64 = (exit_ctl & ExitCtl::kHostAddrSpaceSize) != 0;

  if ((cr0 & nested_caps_.cr0_fixed0) != nested_caps_.cr0_fixed0 ||
      (cr0 & Cr0::kReservedMask) != 0) {
    NVCOV(cov_);
    return false;
  }
  if ((cr4 & nested_caps_.cr4_fixed0) != nested_caps_.cr4_fixed0 ||
      (cr4 & Cr4::kReservedMask) != 0) {
    NVCOV(cov_);
    return false;
  }
  if (v12.Read(VmcsField::kHostCr3) > nested_caps_.MaxPhysicalAddress()) {
    NVCOV(cov_);
    return false;
  }
  for (VmcsField f : {VmcsField::kHostFsBase, VmcsField::kHostGsBase,
                      VmcsField::kHostTrBase, VmcsField::kHostGdtrBase,
                      VmcsField::kHostIdtrBase}) {
    if (!IsCanonical(v12.Read(f))) {
      NVCOV(cov_);
      return false;
    }
  }
  if (!IsCanonical(v12.Read(VmcsField::kHostIa32SysenterEsp)) ||
      !IsCanonical(v12.Read(VmcsField::kHostIa32SysenterEip))) {
    NVCOV(cov_);
    return false;
  }
  for (VmcsField f :
       {VmcsField::kHostCsSelector, VmcsField::kHostSsSelector,
        VmcsField::kHostDsSelector, VmcsField::kHostEsSelector,
        VmcsField::kHostFsSelector, VmcsField::kHostGsSelector,
        VmcsField::kHostTrSelector}) {
    if ((v12.Read(f) & 0x7) != 0) {
      NVCOV(cov_);
      return false;
    }
  }
  if (v12.Read(VmcsField::kHostCsSelector) == 0 ||
      v12.Read(VmcsField::kHostTrSelector) == 0) {
    NVCOV(cov_);
    return false;
  }
  if (!host64 && v12.Read(VmcsField::kHostSsSelector) == 0) {
    NVCOV(cov_);
    return false;
  }
  if (host64) {
    NVCOV(cov_);
    if ((cr4 & Cr4::kPae) == 0 ||
        !IsCanonical(v12.Read(VmcsField::kHostRip))) {
      NVCOV(cov_);
      return false;
    }
  } else {
    NVCOV(cov_);
    if ((cr4 & Cr4::kPcide) != 0 ||
        (v12.Read(VmcsField::kHostRip) >> 32) != 0) {
      NVCOV(cov_);
      return false;
    }
  }
  if ((exit_ctl & ExitCtl::kLoadEfer) != 0) {
    NVCOV(cov_);
    const uint64_t efer = v12.Read(VmcsField::kHostIa32Efer);
    if ((efer & Efer::kReservedMask) != 0 ||
        ((efer & Efer::kLma) != 0) != host64 ||
        ((efer & Efer::kLme) != 0) != host64) {
      NVCOV(cov_);
      return false;
    }
  }
  NVCOV(cov_);
  return true;
}

bool KvmNestedVmx::CheckGuestStateArea(const Vmcs& v12, CheckId* failed) {
  *failed = CheckId::kNone;
  const uint64_t cr0 = v12.Read(VmcsField::kGuestCr0);
  const uint64_t cr4 = v12.Read(VmcsField::kGuestCr4);
  const uint64_t rflags = v12.Read(VmcsField::kGuestRflags);
  const uint32_t entry_ctl =
      static_cast<uint32_t>(v12.Read(VmcsField::kVmEntryControls));
  const uint32_t proc =
      static_cast<uint32_t>(v12.Read(VmcsField::kCpuBasedVmExecControl));
  const uint32_t sec =
      (proc & ProcCtl::kActivateSecondary) != 0
          ? static_cast<uint32_t>(
                v12.Read(VmcsField::kSecondaryVmExecControl))
          : 0;
  const bool unrestricted = (sec & Proc2Ctl::kUnrestrictedGuest) != 0;
  const bool ia32e = (entry_ctl & EntryCtl::kIa32eModeGuest) != 0;

  uint64_t cr0_fixed0 = nested_caps_.cr0_fixed0;
  if (unrestricted) {
    NVCOV(cov_);
    cr0_fixed0 &= ~(Cr0::kPe | Cr0::kPg);
  }
  if ((cr0 & cr0_fixed0) != cr0_fixed0 || (cr0 & Cr0::kReservedMask) != 0) {
    NVCOV(cov_);
    *failed = CheckId::kGuestCr0Fixed;
    return false;
  }
  if ((cr0 & Cr0::kPg) != 0 && (cr0 & Cr0::kPe) == 0) {
    NVCOV(cov_);
    *failed = CheckId::kGuestCr0PgWithoutPe;
    return false;
  }
  if ((cr4 & nested_caps_.cr4_fixed0) != nested_caps_.cr4_fixed0 ||
      (cr4 & Cr4::kReservedMask) != 0) {
    NVCOV(cov_);
    *failed = CheckId::kGuestCr4Fixed;
    return false;
  }
  if (v12.Read(VmcsField::kGuestCr3) > nested_caps_.MaxPhysicalAddress()) {
    NVCOV(cov_);
    *failed = CheckId::kGuestCr3Range;
    return false;
  }
  // NOTE (bug K1 / CVE-2023-30456): the SDM requires CR4.PAE=1 whenever
  // the "IA-32e mode guest" entry control is set, but no check exists
  // here — mirroring the vulnerable KVM, which relied on hardware... which
  // also does not enforce it.
  if (!ia32e && (cr4 & Cr4::kPcide) != 0) {
    NVCOV(cov_);
    *failed = CheckId::kGuestPcideWithoutIa32e;
    return false;
  }
  if ((entry_ctl & EntryCtl::kLoadEfer) != 0) {
    NVCOV(cov_);
    const uint64_t efer = v12.Read(VmcsField::kGuestIa32Efer);
    if ((efer & Efer::kReservedMask) != 0) {
      NVCOV(cov_);
      *failed = CheckId::kGuestEferReserved;
      return false;
    }
    if (((efer & Efer::kLma) != 0) != ia32e) {
      NVCOV(cov_);
      *failed = CheckId::kGuestEferLmaVsEntryCtl;
      return false;
    }
    if ((cr0 & Cr0::kPg) != 0 &&
        ((efer & Efer::kLma) != 0) != ((efer & Efer::kLme) != 0)) {
      NVCOV(cov_);
      *failed = CheckId::kGuestEferLmaVsLme;
      return false;
    }
  }
  if ((rflags & Rflags::kFixed1) == 0 ||
      (rflags & Rflags::kReservedMask) != 0) {
    NVCOV(cov_);
    *failed = CheckId::kGuestRflagsReserved;
    return false;
  }
  if ((rflags & Rflags::kVm) != 0 && (ia32e || (cr0 & Cr0::kPe) == 0)) {
    NVCOV(cov_);
    *failed = CheckId::kGuestRflagsVmInIa32e;
    return false;
  }

  // Segment subset KVM replicates (full fidelity lives in hardware).
  const uint32_t cs_ar =
      static_cast<uint32_t>(v12.Read(VmcsField::kGuestCsArBytes));
  if (!SegAr::Usable(cs_ar)) {
    NVCOV(cov_);
    *failed = CheckId::kGuestCsType;
    return false;
  }
  if (ia32e && (cs_ar & SegAr::kL) != 0 && (cs_ar & SegAr::kDb) != 0) {
    NVCOV(cov_);
    *failed = CheckId::kGuestCsLAndDb;
    return false;
  }
  const uint32_t tr_ar =
      static_cast<uint32_t>(v12.Read(VmcsField::kGuestTrArBytes));
  if (!SegAr::Usable(tr_ar)) {
    NVCOV(cov_);
    *failed = CheckId::kGuestTrUsable;
    return false;
  }
  if ((v12.Read(VmcsField::kGuestTrSelector) & 0x4) != 0) {
    NVCOV(cov_);
    *failed = CheckId::kGuestTrTiFlag;
    return false;
  }

  const uint64_t activity = v12.Read(VmcsField::kGuestActivityState);
  const uint32_t interruptibility = static_cast<uint32_t>(
      v12.Read(VmcsField::kGuestInterruptibilityInfo));
  if (activity > kMaxActivityState) {
    NVCOV(cov_);
    *failed = CheckId::kGuestActivityStateRange;
    return false;
  }
  if (activity != 0) {
    NVCOV(cov_);
    if ((nested_caps_.supported_activity_states &
         (1u << (activity - 1))) == 0) {
      NVCOV(cov_);
      *failed = CheckId::kGuestActivityStateSupported;
      return false;
    }
    if ((interruptibility & (Interruptibility::kStiBlocking |
                             Interruptibility::kMovSsBlocking)) != 0) {
      NVCOV(cov_);
      *failed = CheckId::kGuestActivityVsInterruptibility;
      return false;
    }
  }
  if ((interruptibility & Interruptibility::kReservedMask) != 0) {
    NVCOV(cov_);
    *failed = CheckId::kGuestInterruptibilityReserved;
    return false;
  }
  if ((interruptibility & Interruptibility::kStiBlocking) != 0 &&
      (interruptibility & Interruptibility::kMovSsBlocking) != 0) {
    NVCOV(cov_);
    *failed = CheckId::kGuestStiMovssExclusive;
    return false;
  }

  const uint64_t link = v12.Read(VmcsField::kVmcsLinkPointer);
  if (link != ~0ULL) {
    NVCOV(cov_);
    if (!IsAligned(link, 12) || link > nested_caps_.MaxPhysicalAddress()) {
      NVCOV(cov_);
      *failed = CheckId::kGuestVmcsLinkPointer;
      return false;
    }
  }

  // PAE PDPTE validation when shadowing a PAE guest without EPT.
  if ((cr0 & Cr0::kPg) != 0 && (cr4 & Cr4::kPae) != 0 && !ia32e &&
      (sec & Proc2Ctl::kEnableEpt) == 0) {
    NVCOV(cov_);
    for (VmcsField f : {VmcsField::kGuestPdptr0, VmcsField::kGuestPdptr1,
                        VmcsField::kGuestPdptr2, VmcsField::kGuestPdptr3}) {
      const uint64_t pdpte = v12.Read(f);
      if (TestBit(pdpte, 0) && (pdpte & 0x1e6ULL) != 0) {
        NVCOV(cov_);
        *failed = CheckId::kGuestPdpteReserved;
        return false;
      }
    }
  }
  NVCOV(cov_);
  return true;
}

bool KvmNestedVmx::CheckEntryMsrLoadArea(const Vmcs& v12) {
  const uint64_t count = v12.Read(VmcsField::kVmEntryMsrLoadCount);
  if (count == 0) {
    NVCOV(cov_);
    return true;
  }
  NVCOV(cov_);
  if (count > nested_caps_.max_msr_list_count) {
    NVCOV(cov_);
    return false;
  }
  const uint64_t base = v12.Read(VmcsField::kVmEntryMsrLoadAddr);
  for (uint64_t i = 0; i < count; ++i) {
    const MsrAreaEntry e = ReadMsrAreaEntry(mem_, base, i);
    switch (e.index) {
      case Msr::kIa32Efer:
        NVCOV(cov_);
        if ((e.value & Efer::kReservedMask) != 0) {
          NVCOV(cov_);
          return false;
        }
        break;
      case Msr::kFsBase:
      case Msr::kGsBase:
      case Msr::kKernelGsBase:
        // KVM validates canonicality of base-address MSRs — the check
        // VirtualBox is missing (CVE-2024-21106).
        NVCOV(cov_);
        if (!IsCanonical(e.value)) {
          NVCOV(cov_);
          return false;
        }
        break;
      case Msr::kIa32Pat:
        NVCOV(cov_);
        break;
      default:
        NVCOV(cov_);
        break;
    }
  }
  NVCOV(cov_);
  return true;
}

// ---------------------------------------------------------------------------
// VMCS02 preparation and the shadow MMU (bug sites).
// ---------------------------------------------------------------------------

bool KvmNestedVmx::MmuCheckRoot(uint64_t root_gpa) {
  if (root_gpa > nested_caps_.MaxPhysicalAddress()) {
    NVCOV(cov_);
    return false;
  }
  NVCOV(cov_);
  return true;
}

void KvmNestedVmx::LoadShadowMmu(const Vmcs& v12) {
  const uint64_t cr0 = v12.Read(VmcsField::kGuestCr0);
  const uint64_t cr4 = v12.Read(VmcsField::kGuestCr4);
  const uint64_t efer = v12.Read(VmcsField::kGuestIa32Efer);
  const uint32_t proc =
      static_cast<uint32_t>(v12.Read(VmcsField::kCpuBasedVmExecControl));
  const uint32_t sec =
      (proc & ProcCtl::kActivateSecondary) != 0
          ? static_cast<uint32_t>(
                v12.Read(VmcsField::kSecondaryVmExecControl))
          : 0;
  const bool l2_uses_ept = (sec & Proc2Ctl::kEnableEpt) != 0;
  const bool lma = (efer & Efer::kLma) != 0;

  if (!config_.features.Has(CpuFeature::kEpt)) {
    // Shadow paging: L0 walks L2's page tables in software. The root level
    // is derived from CR4.PAE *literally* — the vulnerable computation.
    NVCOV(cov_);
    if ((cr0 & Cr0::kPg) == 0) {
      NVCOV(cov_);  // Non-paged guest: identity shadow.
      return;
    }
    const int root_level =
        (cr4 & Cr4::kPae) != 0 ? (lma ? 4 : 3) : 2;
    // Hardware walks 4 levels whenever the guest is in long mode,
    // regardless of what CR4.PAE claims (it "assumes" PAE). The walk
    // cache below is sized by root_level; a long-mode guest with
    // CR4.PAE=0 underflows the index. This is CVE-2023-30456.
    uint8_t walk_cache[4] = {0, 0, 0, 0};
    const int hw_levels = lma ? 4 : root_level;
    for (int level = hw_levels; level >= 1; --level) {
      const int idx = root_level - level;
      if (idx < 0 || idx >= root_level) {
        NVCOV(cov_);
        san_.Report(AnomalyKind::kUbsan, "kvm-nvmx-cr4pae-oob",
                    "UBSAN: array-index-out-of-bounds in paging_tmpl walk: "
                    "index " + std::to_string(idx) +
                    " (root_level=" + std::to_string(root_level) +
                    ", guest IA-32e with CR4.PAE=0)");
        return;  // Sim clamps where the real kernel corrupted memory.
      }
      walk_cache[idx] = static_cast<uint8_t>(level);
    }
    NVCOV(cov_);
    (void)walk_cache;
    return;
  }

  if (l2_uses_ept) {
    // Nested EPT: L0 shadows L1's EPT tables.
    NVCOV(cov_);
    const uint64_t eptp12 = v12.Read(VmcsField::kEptPointer);
    if (!MmuCheckRoot(AlignDown(eptp12, 12))) {
      // Bug K2: instead of failing the VM entry, the vulnerable code
      // synthesizes a triple-fault exit to L1 — even though L2 never ran.
      NVCOV(cov_);
      san_.Report(AnomalyKind::kAssertion, "kvm-nvmx-dummy-root",
                  "WARN_ON_ONCE: triple-fault VM exit synthesized before L2 "
                  "entry (mmu_check_root failed for nested EPTP)");
      NestedVmxVmexit(ExitReason::kTripleFault, 0);
      return;
    }
    NVCOV(cov_);
    return;
  }

  // EPT on the L0 side but the L1 hypervisor runs L2 with shadow paging of
  // its own: two-dimensional paging against L1's CR3.
  NVCOV(cov_);
}

void KvmNestedVmx::PrepareVmcs02(const Vmcs& v12) {
  NVCOV(cov_);
  // L0-owned base state: vmcs01 is the boot-built default image and is
  // never written after Reset, so copying it is byte-identical to (and
  // much cheaper than) rebuilding MakeDefaultVmcs per entry.
  vmcs02_ = vmcs01_;
  vmcs02_.set_launch_state(Vmcs::LaunchState::kClear);

  // Controls: L1's requests merged with L0's own requirements.
  const uint32_t pin =
      static_cast<uint32_t>(v12.Read(VmcsField::kPinBasedVmExecControl));
  vmcs02_.Write(VmcsField::kPinBasedVmExecControl,
                nested_caps_.pinbased.Round(pin));
  const uint32_t proc =
      static_cast<uint32_t>(v12.Read(VmcsField::kCpuBasedVmExecControl));
  // L0 always intercepts I/O and MSR accesses itself.
  vmcs02_.Write(VmcsField::kCpuBasedVmExecControl,
                nested_caps_.procbased.Round(proc) | ProcCtl::kUseIoBitmaps |
                    ProcCtl::kUseMsrBitmaps);
  uint32_t sec = 0;
  if ((proc & ProcCtl::kActivateSecondary) != 0) {
    NVCOV(cov_);
    sec = nested_caps_.procbased2.Round(static_cast<uint32_t>(
        v12.Read(VmcsField::kSecondaryVmExecControl)));
  }
  if (config_.features.Has(CpuFeature::kEpt)) {
    NVCOV(cov_);
    // L0 runs L2 on its own EPT (shadowing L1's if L1 uses EPT).
    sec |= Proc2Ctl::kEnableEpt;
    vmcs02_.Write(VmcsField::kEptPointer, 0x1000 | 0x6 | (3u << 3));
  } else {
    NVCOV(cov_);
    sec &= ~Proc2Ctl::kEnableEpt;
    vmcs02_.Write(VmcsField::kEptPointer, 0);
  }
  if (config_.features.Has(CpuFeature::kVpid)) {
    NVCOV(cov_);
    sec |= Proc2Ctl::kEnableVpid;
    vmcs02_.Write(VmcsField::kVirtualProcessorId, 2);  // vpid02.
  }
  vmcs02_.Write(VmcsField::kSecondaryVmExecControl,
                sec | (sec != 0 ? 0u : 0u));
  if (sec != 0) {
    NVCOV(cov_);
    vmcs02_.Write(
        VmcsField::kCpuBasedVmExecControl,
        vmcs02_.Read(VmcsField::kCpuBasedVmExecControl) |
            ProcCtl::kActivateSecondary);
  }

  vmcs02_.Write(VmcsField::kVmExitControls,
                nested_caps_.exit.Round(static_cast<uint32_t>(
                    v12.Read(VmcsField::kVmExitControls))) |
                    ExitCtl::kHostAddrSpaceSize | ExitCtl::kSaveEfer |
                    ExitCtl::kLoadEfer);
  vmcs02_.Write(VmcsField::kVmEntryControls,
                nested_caps_.entry.Round(static_cast<uint32_t>(
                    v12.Read(VmcsField::kVmEntryControls))));

  // Exception bitmap: union of L1's and L0's needs.
  vmcs02_.Write(VmcsField::kExceptionBitmap,
                v12.Read(VmcsField::kExceptionBitmap) | (1u << 14));

  // TSC offset composes across levels.
  if ((proc & ProcCtl::kUseTscOffsetting) != 0) {
    NVCOV(cov_);
    vmcs02_.Write(VmcsField::kTscOffset, v12.Read(VmcsField::kTscOffset));
  }

  // Guest state: copied from VMCS12 wholesale. KVM sanitizes the activity
  // state against what it can actually virtualize (cf. the Xen bug that
  // skips this).
  static constexpr VmcsField kGuestCopy[] = {
      VmcsField::kGuestCr0, VmcsField::kGuestCr3, VmcsField::kGuestCr4,
      VmcsField::kGuestIa32Efer, VmcsField::kGuestRflags,
      VmcsField::kGuestRip, VmcsField::kGuestRsp, VmcsField::kGuestDr7,
      VmcsField::kGuestIa32Pat, VmcsField::kGuestIa32Debugctl,
      VmcsField::kGuestCsSelector, VmcsField::kGuestCsBase,
      VmcsField::kGuestCsLimit, VmcsField::kGuestCsArBytes,
      VmcsField::kGuestSsSelector, VmcsField::kGuestSsBase,
      VmcsField::kGuestSsLimit, VmcsField::kGuestSsArBytes,
      VmcsField::kGuestDsSelector, VmcsField::kGuestDsBase,
      VmcsField::kGuestDsLimit, VmcsField::kGuestDsArBytes,
      VmcsField::kGuestEsSelector, VmcsField::kGuestEsBase,
      VmcsField::kGuestEsLimit, VmcsField::kGuestEsArBytes,
      VmcsField::kGuestFsSelector, VmcsField::kGuestFsBase,
      VmcsField::kGuestFsLimit, VmcsField::kGuestFsArBytes,
      VmcsField::kGuestGsSelector, VmcsField::kGuestGsBase,
      VmcsField::kGuestGsLimit, VmcsField::kGuestGsArBytes,
      VmcsField::kGuestLdtrSelector, VmcsField::kGuestLdtrBase,
      VmcsField::kGuestLdtrLimit, VmcsField::kGuestLdtrArBytes,
      VmcsField::kGuestTrSelector, VmcsField::kGuestTrBase,
      VmcsField::kGuestTrLimit, VmcsField::kGuestTrArBytes,
      VmcsField::kGuestGdtrBase, VmcsField::kGuestGdtrLimit,
      VmcsField::kGuestIdtrBase, VmcsField::kGuestIdtrLimit,
      VmcsField::kGuestInterruptibilityInfo,
      VmcsField::kGuestPendingDbgExceptions,
      VmcsField::kGuestSysenterCs, VmcsField::kGuestSysenterEsp,
      VmcsField::kGuestSysenterEip,
      VmcsField::kGuestPdptr0, VmcsField::kGuestPdptr1,
      VmcsField::kGuestPdptr2, VmcsField::kGuestPdptr3,
  };
  for (VmcsField f : kGuestCopy) {
    vmcs02_.Write(f, v12.Read(f));
  }
  // Activity-state sanitization: only ACTIVE and HLT are virtualized for
  // L2; SHUTDOWN / WAIT-FOR-SIPI are forced to ACTIVE (contrast Xen bug X1).
  const uint64_t activity = v12.Read(VmcsField::kGuestActivityState);
  if (activity == static_cast<uint64_t>(ActivityState::kActive) ||
      activity == static_cast<uint64_t>(ActivityState::kHlt)) {
    NVCOV(cov_);
    vmcs02_.Write(VmcsField::kGuestActivityState, activity);
  } else {
    NVCOV(cov_);
    vmcs02_.Write(VmcsField::kGuestActivityState, 0);
  }
  vmcs02_.Write(VmcsField::kVmcsLinkPointer, ~0ULL);

  // Host state of VMCS02 is always L0's own (vmcs01's host area).
  static constexpr VmcsField kHostCopy[] = {
      VmcsField::kHostCr0, VmcsField::kHostCr3, VmcsField::kHostCr4,
      VmcsField::kHostIa32Efer, VmcsField::kHostRip, VmcsField::kHostRsp,
      VmcsField::kHostCsSelector, VmcsField::kHostSsSelector,
      VmcsField::kHostDsSelector, VmcsField::kHostEsSelector,
      VmcsField::kHostFsSelector, VmcsField::kHostGsSelector,
      VmcsField::kHostTrSelector, VmcsField::kHostFsBase,
      VmcsField::kHostGsBase, VmcsField::kHostTrBase,
      VmcsField::kHostGdtrBase, VmcsField::kHostIdtrBase,
      VmcsField::kHostIa32Pat,
  };
  for (VmcsField f : kHostCopy) {
    vmcs02_.Write(f, vmcs01_.Read(f));
  }
}

// ---------------------------------------------------------------------------
// nested_vmx_run: the vmlaunch/vmresume emulation core.
// ---------------------------------------------------------------------------

VmxEmuResult KvmNestedVmx::NestedVmxRun(bool launch) {
  VmxEmuResult r;
  if (!NestedVmxCheckPermission()) {
    return r;
  }
  if (in_l2_) {
    NVCOV(cov_);  // vmlaunch/vmresume from L2 reflects to L1.
    return r;
  }
  auto it = vmcs12_cache_.find(current_ptr_);
  if (it == vmcs12_cache_.end()) {
    NVCOV(cov_);  // VMfailInvalid: no current VMCS.
    return r;
  }
  CachedVmcs12& cached = it->second;
  if (launch && cached.launched) {
    NVCOV(cov_);  // VMfail(VMLAUNCH with non-clear VMCS).
    return r;
  }
  if (!launch && !cached.launched) {
    NVCOV(cov_);  // VMfail(VMRESUME with non-launched VMCS).
    return r;
  }
  const Vmcs& v12 = cached.vmcs;

  if (!CheckVmControls(v12)) {
    NVCOV(cov_);  // VMfail(invalid control fields).
    return r;
  }
  if (!CheckHostStateArea(v12)) {
    NVCOV(cov_);  // VMfail(invalid host-state fields).
    return r;
  }
  CheckId guest_fail = CheckId::kNone;
  if (!CheckGuestStateArea(v12, &guest_fail)) {
    // VM-entry failure due to invalid guest state: reflected to L1 as exit
    // reason 33 with the VMCS12 untouched otherwise.
    NVCOV(cov_);
    cached.vmcs.Write(
        VmcsField::kVmExitReason,
        static_cast<uint32_t>(ExitReason::kInvalidGuestState) |
            kExitReasonFailedEntryBit);
    cached.vmcs.Write(VmcsField::kExitQualification,
                      static_cast<uint64_t>(guest_fail));
    r.ok = true;
    return r;
  }
  if (!CheckEntryMsrLoadArea(v12)) {
    NVCOV(cov_);  // VM-entry failure loading MSRs: exit reason 34.
    cached.vmcs.Write(VmcsField::kVmExitReason,
                      static_cast<uint32_t>(ExitReason::kMsrLoadFail) |
                          kExitReasonFailedEntryBit);
    r.ok = true;
    return r;
  }

  PrepareVmcs02(v12);
  LoadShadowMmu(v12);
  if (!san_.empty() && host_note_pending_) {
    // Placeholder branch kept for parity with the error-injection build of
    // the real module; unreachable without fault injection.
    NVCOV(cov_);
  }

  const EntryOutcome hw = cpu_.TryEntry(vmcs02_, /*launch=*/true);
  switch (hw.status) {
    case EntryStatus::kEntered:
      NVCOV(cov_);
      in_l2_ = true;
      l2_ever_ran_ = true;
      cached.launched = true;
      r.ok = true;
      r.entered_l2 = true;
      return r;
    case EntryStatus::kEntryFailGuest:
      // Hardware rejected state that passed KVM's replica checks: reflect
      // an entry failure to L1 (and remember the discrepancy — this is
      // exactly the boundary region the paper targets).
      NVCOV(cov_);
      cached.vmcs.Write(
          VmcsField::kVmExitReason,
          static_cast<uint32_t>(ExitReason::kInvalidGuestState) |
              kExitReasonFailedEntryBit);
      cached.vmcs.Write(VmcsField::kExitQualification,
                        static_cast<uint64_t>(hw.failed_check));
      r.ok = true;
      return r;
    case EntryStatus::kVmFailValid:
      NVCOV(cov_);  // L0's own VMCS02 was malformed; treated as VMfail.
      return r;
    case EntryStatus::kWrongLaunchState:
    case EntryStatus::kNotReady:
      NVCOV(cov_);
      return r;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Nested VM exits.
// ---------------------------------------------------------------------------

void KvmNestedVmx::SyncVmcs02ToVmcs12() {
  auto it = vmcs12_cache_.find(current_ptr_);
  if (it == vmcs12_cache_.end()) {
    NVCOV(cov_);
    return;
  }
  NVCOV(cov_);
  Vmcs& v12 = it->second.vmcs;
  static constexpr VmcsField kSyncFields[] = {
      VmcsField::kGuestCr0, VmcsField::kGuestCr3, VmcsField::kGuestCr4,
      VmcsField::kGuestRflags, VmcsField::kGuestRip, VmcsField::kGuestRsp,
      VmcsField::kGuestDr7, VmcsField::kGuestInterruptibilityInfo,
      VmcsField::kGuestActivityState,
      VmcsField::kGuestPendingDbgExceptions,
      VmcsField::kGuestCsSelector, VmcsField::kGuestCsBase,
      VmcsField::kGuestCsLimit, VmcsField::kGuestCsArBytes,
      VmcsField::kGuestSsSelector, VmcsField::kGuestSsArBytes,
      VmcsField::kGuestDsSelector, VmcsField::kGuestDsArBytes,
      VmcsField::kGuestEsSelector, VmcsField::kGuestEsArBytes,
      VmcsField::kGuestFsBase, VmcsField::kGuestGsBase,
      VmcsField::kGuestGdtrBase, VmcsField::kGuestGdtrLimit,
      VmcsField::kGuestIdtrBase, VmcsField::kGuestIdtrLimit,
  };
  for (VmcsField f : kSyncFields) {
    v12.Write(f, vmcs02_.Read(f));
  }
}

void KvmNestedVmx::LoadVmcs12HostState() {
  auto it = vmcs12_cache_.find(current_ptr_);
  if (it == vmcs12_cache_.end()) {
    NVCOV(cov_);
    return;
  }
  const Vmcs& v12 = it->second.vmcs;
  // On a nested exit, L1 resumes in the state described by VMCS12's host
  // area. KVM validates the critical pieces once more; inconsistencies at
  // this point trigger a "VMX abort" in the architecture.
  if (!IsCanonical(v12.Read(VmcsField::kHostRip))) {
    NVCOV(cov_);  // VMX abort path.
    san_.Report(AnomalyKind::kLogWarning, "kvm-nvmx-vmx-abort",
                "nested exit with non-canonical HOST_RIP: VMX abort");
    return;
  }
  if ((v12.Read(VmcsField::kVmExitControls) & ExitCtl::kLoadEfer) != 0) {
    NVCOV(cov_);  // L1 EFER restored from the host area.
  } else {
    NVCOV(cov_);  // L1 keeps its pre-entry EFER.
  }
  NVCOV(cov_);
}

void KvmNestedVmx::NestedVmxVmexit(ExitReason reason,
                                   uint64_t qualification) {
  NVCOV(cov_);
  SyncVmcs02ToVmcs12();
  auto it = vmcs12_cache_.find(current_ptr_);
  if (it != vmcs12_cache_.end()) {
    NVCOV(cov_);
    it->second.vmcs.Write(VmcsField::kVmExitReason,
                          static_cast<uint32_t>(reason));
    it->second.vmcs.Write(VmcsField::kExitQualification, qualification);
  }
  LoadVmcs12HostState();
  in_l2_ = false;
}

// ---------------------------------------------------------------------------
// Exit-reason dispatch: does the L2 instruction reflect to L1?
// ---------------------------------------------------------------------------

bool KvmNestedVmx::ShouldReflectToL1(const GuestInsn& insn,
                                     ExitReason* reason) {
  const Vmcs* v12p = current_vmcs12();
  if (v12p == nullptr) {
    NVCOV(cov_);
    *reason = ExitReason::kCpuid;
    return false;
  }
  const Vmcs& v12 = *v12p;
  const uint32_t proc =
      static_cast<uint32_t>(v12.Read(VmcsField::kCpuBasedVmExecControl));
  const uint32_t sec =
      (proc & ProcCtl::kActivateSecondary) != 0
          ? static_cast<uint32_t>(
                v12.Read(VmcsField::kSecondaryVmExecControl))
          : 0;

  switch (insn.kind) {
    case GuestInsnKind::kCpuid:
      NVCOV(cov_);  // CPUID unconditionally exits.
      *reason = ExitReason::kCpuid;
      return true;
    case GuestInsnKind::kVmcall:
      NVCOV(cov_);  // VMCALL from L2 always reflects to L1.
      *reason = ExitReason::kVmcall;
      return true;
    case GuestInsnKind::kHlt:
      *reason = ExitReason::kHlt;
      if ((proc & ProcCtl::kHltExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kRdtsc:
      *reason = ExitReason::kRdtsc;
      if ((proc & ProcCtl::kRdtscExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kRdtscp:
      *reason = ExitReason::kRdtscp;
      if ((proc & ProcCtl::kRdtscExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      if ((sec & Proc2Ctl::kEnableRdtscp) == 0) {
        NVCOV(cov_);  // #UD in L2; surfaced as an exception exit.
        *reason = ExitReason::kExceptionNmi;
        return (v12.Read(VmcsField::kExceptionBitmap) & (1u << 6)) != 0;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kRdpmc:
      *reason = ExitReason::kRdpmc;
      if ((proc & ProcCtl::kRdpmcExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kPause:
      *reason = ExitReason::kPause;
      if ((proc & ProcCtl::kPauseExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      if ((sec & Proc2Ctl::kPauseLoopExiting) != 0) {
        NVCOV(cov_);  // PLE window accounting.
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kRdrand:
      *reason = ExitReason::kRdrand;
      if ((sec & Proc2Ctl::kRdrandExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kRdseed:
      *reason = ExitReason::kRdseed;
      if ((sec & Proc2Ctl::kRdseedExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kInvd:
      NVCOV(cov_);  // INVD unconditionally exits.
      *reason = ExitReason::kInvd;
      return true;
    case GuestInsnKind::kWbinvd:
      *reason = ExitReason::kWbinvd;
      if ((sec & Proc2Ctl::kWbinvdExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kMovToCr0: {
      // CR0 guest/host mask: bits owned by L1 trap when modified.
      const uint64_t mask = v12.Read(VmcsField::kCr0GuestHostMask);
      const uint64_t shadow = v12.Read(VmcsField::kCr0ReadShadow);
      *reason = ExitReason::kCrAccess;
      if (((insn.arg0 ^ shadow) & mask) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    }
    case GuestInsnKind::kMovToCr4: {
      const uint64_t mask = v12.Read(VmcsField::kCr4GuestHostMask);
      const uint64_t shadow = v12.Read(VmcsField::kCr4ReadShadow);
      *reason = ExitReason::kCrAccess;
      if (((insn.arg0 ^ shadow) & mask) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    }
    case GuestInsnKind::kMovToCr3: {
      *reason = ExitReason::kCrAccess;
      if ((proc & ProcCtl::kCr3LoadExiting) == 0) {
        NVCOV(cov_);
        return false;
      }
      // CR3-target list suppresses the exit on a match.
      const uint64_t count = v12.Read(VmcsField::kCr3TargetCount);
      static constexpr VmcsField kTargets[] = {
          VmcsField::kCr3TargetValue0, VmcsField::kCr3TargetValue1,
          VmcsField::kCr3TargetValue2, VmcsField::kCr3TargetValue3};
      for (uint64_t i = 0; i < count && i < 4; ++i) {
        if (v12.Read(kTargets[i]) == insn.arg0) {
          NVCOV(cov_);
          return false;
        }
      }
      NVCOV(cov_);
      return true;
    }
    case GuestInsnKind::kMovFromCr3:
      *reason = ExitReason::kCrAccess;
      if ((proc & ProcCtl::kCr3StoreExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kMovToCr8:
      *reason = ExitReason::kCrAccess;
      if ((proc & ProcCtl::kCr8LoadExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      if ((proc & ProcCtl::kUseTprShadow) != 0) {
        NVCOV(cov_);  // TPR shadow absorbs the write.
        *reason = ExitReason::kTprBelowThreshold;
        return insn.arg0 < (v12.Read(VmcsField::kTprThreshold) & 0xf);
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kMovToDr:
      *reason = ExitReason::kDrAccess;
      if ((proc & ProcCtl::kMovDrExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kIoIn:
    case GuestInsnKind::kIoOut: {
      *reason = ExitReason::kIoInstruction;
      if ((proc & ProcCtl::kUncondIoExiting) != 0 &&
          (proc & ProcCtl::kUseIoBitmaps) == 0) {
        NVCOV(cov_);
        return true;
      }
      if ((proc & ProcCtl::kUseIoBitmaps) != 0) {
        const uint64_t port = insn.arg0 & 0xffff;
        const uint64_t bitmap = port < 0x8000
                                    ? v12.Read(VmcsField::kIoBitmapA)
                                    : v12.Read(VmcsField::kIoBitmapB);
        if (mem_.TestBit(bitmap, port & 0x7fff)) {
          NVCOV(cov_);
          return true;
        }
        NVCOV(cov_);
        return false;
      }
      NVCOV(cov_);
      return false;
    }
    case GuestInsnKind::kRdmsr:
    case GuestInsnKind::kWrmsr: {
      *reason = insn.kind == GuestInsnKind::kRdmsr ? ExitReason::kMsrRead
                                                   : ExitReason::kMsrWrite;
      if ((proc & ProcCtl::kUseMsrBitmaps) == 0) {
        NVCOV(cov_);  // Without bitmaps every MSR access exits.
        return true;
      }
      const uint64_t bitmap = v12.Read(VmcsField::kMsrBitmap);
      const uint32_t msr = static_cast<uint32_t>(insn.arg0);
      // Bitmap layout: low MSRs then high MSRs, read then write halves.
      uint64_t bit;
      if (msr < 0x2000) {
        bit = msr;
      } else if (msr >= 0xc0000000 && msr < 0xc0002000) {
        bit = 0x2000 + (msr - 0xc0000000);
      } else {
        NVCOV(cov_);  // Out-of-range MSRs always exit.
        return true;
      }
      const uint64_t half =
          insn.kind == GuestInsnKind::kWrmsr ? 0x4000u : 0u;
      if (mem_.TestBit(bitmap + half / 8, bit)) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    }
    case GuestInsnKind::kInvlpg:
      *reason = ExitReason::kInvlpg;
      if ((proc & ProcCtl::kInvlpgExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kInvpcid:
      *reason = ExitReason::kInvpcid;
      if ((sec & Proc2Ctl::kEnableInvpcid) == 0) {
        NVCOV(cov_);  // #UD.
        *reason = ExitReason::kExceptionNmi;
        return (v12.Read(VmcsField::kExceptionBitmap) & (1u << 6)) != 0;
      }
      if ((proc & ProcCtl::kInvlpgExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kMwait:
      *reason = ExitReason::kMwait;
      if ((proc & ProcCtl::kMwaitExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kMonitor:
      *reason = ExitReason::kMonitor;
      if ((proc & ProcCtl::kMonitorExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kXsetbv:
      NVCOV(cov_);  // XSETBV unconditionally exits.
      *reason = ExitReason::kXsetbv;
      return true;
    case GuestInsnKind::kRaiseException: {
      *reason = ExitReason::kExceptionNmi;
      const uint64_t vector = insn.arg0 & 31;
      const uint64_t bitmap = v12.Read(VmcsField::kExceptionBitmap);
      if (vector == 14) {
        // #PF filtering via error-code mask/match.
        NVCOV(cov_);
        const uint64_t mask =
            v12.Read(VmcsField::kPageFaultErrorCodeMask);
        const uint64_t match =
            v12.Read(VmcsField::kPageFaultErrorCodeMatch);
        const bool bit = (bitmap & (1u << 14)) != 0;
        const bool code_match = (insn.arg1 & mask) == match;
        if (bit == code_match) {
          NVCOV(cov_);
          return bit;
        }
        NVCOV(cov_);
        return !bit ? code_match : false;
      }
      if ((bitmap & (1ULL << vector)) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    }
    case GuestInsnKind::kMovToCr0Selective:
      NVCOV(cov_);  // Intel has no selective CR0 intercept; plain CR0 path.
      *reason = ExitReason::kCrAccess;
      return true;
    case GuestInsnKind::kCount:
      break;
  }
  NVCOV(cov_);
  *reason = ExitReason::kCpuid;
  return false;
}

HandledBy KvmNestedVmx::HandleByL0(const GuestInsn& insn) {
  // Exits not owned by L1 are handled by L0 directly and L2 is resumed.
  switch (insn.kind) {
    case GuestInsnKind::kHlt:
      NVCOV(cov_);  // L0 emulates HLT for L2 (idle loop).
      return HandledBy::kL0;
    case GuestInsnKind::kRdtsc:
    case GuestInsnKind::kRdtscp:
      NVCOV(cov_);  // TSC offset/scaling applied by L0.
      return HandledBy::kL0;
    case GuestInsnKind::kIoIn:
    case GuestInsnKind::kIoOut:
      NVCOV(cov_);  // L0's own I/O bitmap intercepted the access.
      return HandledBy::kL0;
    case GuestInsnKind::kRdmsr:
    case GuestInsnKind::kWrmsr:
      NVCOV(cov_);  // L0 MSR emulation.
      return HandledBy::kL0;
    case GuestInsnKind::kMovToCr0:
    case GuestInsnKind::kMovToCr3:
    case GuestInsnKind::kMovToCr4:
      NVCOV(cov_);  // L0 tracks guest CR state for its shadow/EPT MMU.
      vmcs02_.Write(insn.kind == GuestInsnKind::kMovToCr0
                        ? VmcsField::kGuestCr0
                        : insn.kind == GuestInsnKind::kMovToCr3
                              ? VmcsField::kGuestCr3
                              : VmcsField::kGuestCr4,
                    insn.arg0);
      return HandledBy::kNoExit;
    default:
      NVCOV(cov_);
      return HandledBy::kNoExit;
  }
}

HandledBy KvmNestedVmx::HandleL2Instruction(const GuestInsn& insn) {
  if (!in_l2_) {
    NVCOV(cov_);
    return HandledBy::kNoExit;
  }
  ExitReason reason = ExitReason::kCpuid;
  if (ShouldReflectToL1(insn, &reason)) {
    NVCOV(cov_);
    NestedVmxVmexit(reason, insn.arg0);
    return HandledBy::kL1;
  }
  return HandleByL0(insn);
}

HandledBy KvmNestedVmx::HandleL1Instruction(const GuestInsn& insn) {
  // L1 runs under VMCS01; only the VMX capability MSR surface touches
  // nested code.
  switch (insn.kind) {
    case GuestInsnKind::kRdmsr: {
      const uint32_t msr = static_cast<uint32_t>(insn.arg0);
      if (msr >= Msr::kIa32VmxBasic && msr <= Msr::kIa32VmxBasic + 0x11) {
        NVCOV(cov_);  // vmx_get_vmx_msr(): advertise nested capabilities.
        return HandledBy::kL0;
      }
      NVCOV(cov_);
      return HandledBy::kL0;
    }
    case GuestInsnKind::kWrmsr:
      if (static_cast<uint32_t>(insn.arg0) == Msr::kIa32FeatureControl) {
        NVCOV(cov_);  // Feature-control writes gate vmxon.
        return HandledBy::kL0;
      }
      NVCOV(cov_);
      return HandledBy::kL0;
    case GuestInsnKind::kVmcall:
      NVCOV(cov_);  // L1 hypercall to L0.
      return HandledBy::kL0;
    default:
      NVCOV(cov_);
      return HandledBy::kNoExit;
  }
}

// ---------------------------------------------------------------------------
// Host-side ioctl surface (out of the guest-reachable threat model).
// ---------------------------------------------------------------------------

uint64_t KvmNestedVmx::IoctlGetNestedState() {
  NVCOV(cov_);
  uint64_t blob = vmxon_ ? 1 : 0;
  if (current_ptr_ != kNoPtr) {
    NVCOV(cov_);
    blob |= 2;
  }
  if (in_l2_) {
    NVCOV(cov_);
    blob |= 4;
  }
  const Vmcs* v12 = current_vmcs12();
  if (v12 != nullptr) {
    NVCOV(cov_);
    blob |= v12->Read(VmcsField::kGuestRip) << 8;
  }
  return blob;
}

bool KvmNestedVmx::IoctlSetNestedState(uint64_t blob) {
  NVCOV(cov_);
  if ((blob & 1) == 0) {
    NVCOV(cov_);  // Clearing nested state entirely.
    vmxon_ = false;
    current_ptr_ = kNoPtr;
    in_l2_ = false;
    return true;
  }
  NVCOV(cov_);
  vmxon_ = true;
  vmxon_ptr_ = 0x1000;
  if ((blob & 2) != 0) {
    NVCOV(cov_);
    current_ptr_ = 0x2000;
    vmcs12_cache_[current_ptr_];
  }
  if ((blob & 4) != 0) {
    NVCOV(cov_);
    if (current_ptr_ == kNoPtr) {
      NVCOV(cov_);  // Rejected: cannot be in L2 without a current VMCS12.
      return false;
    }
    in_l2_ = true;
  }
  return true;
}

void KvmNestedVmx::IoctlLeaveNested() {
  NVCOV(cov_);
  if (in_l2_) {
    NVCOV(cov_);  // Forced exit from L2 (e.g. before live migration).
    NestedVmxVmexit(ExitReason::kTripleFault, 0);
  }
  vmxon_ = false;
  current_ptr_ = kNoPtr;
}

// Total coverage-point count for this translation unit; must be the last
// use of __COUNTER__ in the file.
const size_t kKvmNestedVmxCoveragePoints = __COUNTER__;

}  // namespace neco
