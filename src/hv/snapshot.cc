#include "src/hv/snapshot.h"

namespace neco {
namespace {

constexpr uint32_t kMagic = 0x4E534E56u;  // "VNSN" little-endian.
constexpr uint8_t kVersion = 1;

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

// Bounds-checked little-endian reader over the serialized buffer.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  uint8_t U8() { return Fits(1) ? bytes_[pos_++] : Fail(); }

  uint16_t U16() {
    const uint16_t lo = U8();
    return static_cast<uint16_t>(lo | (static_cast<uint16_t>(U8()) << 8));
  }

  uint32_t U32() {
    const uint32_t lo = U16();
    return lo | (static_cast<uint32_t>(U16()) << 16);
  }

  uint64_t U64() {
    const uint64_t lo = U32();
    return lo | (static_cast<uint64_t>(U32()) << 32);
  }

  std::string Str(size_t len) {
    if (!Fits(len)) {
      ok_ = false;
      return {};
    }
    std::string s(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
                  bytes_.begin() + static_cast<ptrdiff_t>(pos_ + len));
    pos_ += len;
    return s;
  }

  bool Done() const { return ok_ && pos_ == bytes_.size(); }

 private:
  bool Fits(size_t n) const { return ok_ && bytes_.size() - pos_ >= n; }
  uint8_t Fail() {
    ok_ = false;
    return 0;
  }

  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::vector<uint8_t> SerializeVmSnapshot(const VmSnapshot& snapshot) {
  std::vector<uint8_t> out;
  out.reserve(4 + 1 + 1 + snapshot.hypervisor.size() + 1 + 8 + 1 + 2);
  PutU32(&out, kMagic);
  out.push_back(kVersion);
  out.push_back(static_cast<uint8_t>(snapshot.hypervisor.size()));
  for (char c : snapshot.hypervisor) {
    out.push_back(static_cast<uint8_t>(c));
  }
  out.push_back(static_cast<uint8_t>(snapshot.config.arch));
  PutU64(&out, snapshot.config.features.raw());
  out.push_back(snapshot.config.vcpus);
  PutU16(&out, snapshot.config.memory_mb);
  return out;
}

bool DeserializeVmSnapshot(const std::vector<uint8_t>& bytes,
                           VmSnapshot* out) {
  Reader r(bytes);
  if (r.U32() != kMagic || r.U8() != kVersion) {
    return false;
  }
  const uint8_t name_len = r.U8();
  out->hypervisor = r.Str(name_len);
  const uint8_t arch = r.U8();
  if (arch > 1) {  // Arch::{kIntel,kAmd}.
    return false;
  }
  out->config.arch = static_cast<Arch>(arch);
  CpuFeatureSet features;
  features.set_raw(r.U64());
  out->config.features = features;
  out->config.vcpus = r.U8();
  out->config.memory_mb = r.U16();
  out->data.reset();  // Serialized snapshots are always config-only.
  return r.Done();
}

}  // namespace neco
