// Instruction vocabulary of the fuzz-harness VM.
//
// The VM execution harness drives two instruction families at the L0
// hypervisor (paper Section 4.2 and Table 1):
//  * hardware-assisted virtualization instructions executed by L1 (VMX on
//    Intel, SVM on AMD), which L0 must emulate, and
//  * ordinary exit-triggering instructions executed in L1 or L2 context
//    (privileged register access, I/O, MSR access, miscellaneous).
#ifndef SRC_HV_GUEST_INSN_H_
#define SRC_HV_GUEST_INSN_H_

#include <cstdint>
#include <string_view>

#include "src/arch/vmx_fields.h"
#include "src/arch/vmcb.h"

namespace neco {

// --- Intel VMX instructions issued by the L1 hypervisor ---
enum class VmxOp : uint8_t {
  kVmxon,
  kVmxoff,
  kVmclear,
  kVmptrld,
  kVmptrst,
  kVmwrite,
  kVmread,
  kVmlaunch,
  kVmresume,
  kInvept,
  kInvvpid,
  kCount,
};

std::string_view VmxOpName(VmxOp op);

struct VmxInsn {
  VmxOp op = VmxOp::kVmxon;
  uint64_t operand = 0;    // Physical address for pointer-typed ops;
                           // INVEPT/INVVPID type for invalidation ops.
  VmcsField field = VmcsField::kGuestRip;  // For vmread/vmwrite.
  uint64_t value = 0;      // For vmwrite.
};

// --- AMD SVM instructions issued by the L1 hypervisor ---
enum class SvmOp : uint8_t {
  kVmrun,
  kVmload,
  kVmsave,
  kStgi,
  kClgi,
  kVmmcall,
  kInvlpga,
  kSkinit,
  kVmcbWrite,  // L1 writes a VMCB12 field in its guest memory.
  kCount,
};

std::string_view SvmOpName(SvmOp op);

struct SvmInsn {
  SvmOp op = SvmOp::kVmrun;
  uint64_t operand = 0;            // VMCB physical address / ASID.
  VmcbField field = VmcbField::kRip;  // For kVmcbWrite.
  uint64_t value = 0;
};

// --- Ordinary exit-triggering instructions (Table 1) ---
enum class GuestInsnKind : uint8_t {
  kCpuid,
  kHlt,
  kRdtsc,
  kRdtscp,
  kRdpmc,
  kPause,
  kRdrand,
  kRdseed,
  kInvd,
  kWbinvd,
  kMovToCr0,
  kMovToCr3,
  kMovFromCr3,
  kMovToCr4,
  kMovToCr8,
  kMovToDr,
  kIoIn,
  kIoOut,
  kRdmsr,
  kWrmsr,
  kInvlpg,
  kInvpcid,
  kMwait,
  kMonitor,
  kVmcall,     // Hypercall from L2 -> L1 (or L1 -> L0).
  kXsetbv,
  kRaiseException,  // Executes an instruction that faults with vector arg0.
  kMovToCr0Selective,  // AMD: CR0 write intercepted selectively.
  kCount,
};

std::string_view GuestInsnKindName(GuestInsnKind kind);

struct GuestInsn {
  GuestInsnKind kind = GuestInsnKind::kCpuid;
  uint64_t arg0 = 0;  // CR/DR value, MSR index, port, vector, leaf...
  uint64_t arg1 = 0;  // MSR value, I/O data...
};

// Which context the fuzz-harness VM executes the instruction in.
enum class GuestLevel : uint8_t {
  kL1,
  kL2,
};

// Who ended up handling an instruction executed in the guest.
enum class HandledBy : uint8_t {
  kNoExit,      // Executed directly; no VM exit.
  kL0,          // Exit consumed by the host hypervisor.
  kL1,          // Nested exit reflected to the L1 hypervisor.
  kHostCrash,   // The instruction took the host down (bug).
};

// Well-known MSR indices the harness and hypervisors reference.
struct Msr {
  static constexpr uint32_t kIa32SysenterCs = 0x174;
  static constexpr uint32_t kIa32SysenterEsp = 0x175;
  static constexpr uint32_t kIa32SysenterEip = 0x176;
  static constexpr uint32_t kIa32Efer = 0xC0000080;
  static constexpr uint32_t kStar = 0xC0000081;
  static constexpr uint32_t kLstar = 0xC0000082;
  static constexpr uint32_t kCstar = 0xC0000083;
  static constexpr uint32_t kSfmask = 0xC0000084;
  static constexpr uint32_t kFsBase = 0xC0000100;
  static constexpr uint32_t kGsBase = 0xC0000101;
  static constexpr uint32_t kKernelGsBase = 0xC0000102;
  static constexpr uint32_t kIa32FeatureControl = 0x3A;
  static constexpr uint32_t kIa32VmxBasic = 0x480;
  static constexpr uint32_t kIa32Pat = 0x277;
  static constexpr uint32_t kIa32Debugctl = 0x1D9;
  static constexpr uint32_t kVmCr = 0xC0010114;  // AMD SVM control.
};

}  // namespace neco

#endif  // SRC_HV_GUEST_INSN_H_
