// Anomaly reporting — the simulated counterpart of KASAN/UBSAN, hypervisor
// assertion failures, host crashes, and kernel-log monitoring (paper
// Sections 4.5 and 5.5 / Table 6's "Detection Method" column).
#ifndef SRC_HV_SANITIZER_H_
#define SRC_HV_SANITIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace neco {

enum class AnomalyKind : uint8_t {
  kUbsan,       // Undefined Behavior Sanitizer report.
  kKasan,       // Kernel Address Sanitizer report.
  kAssertion,   // Hypervisor assertion / BUG().
  kHostCrash,   // Host unresponsive or panicked.
  kVmCrash,     // The VM terminated unexpectedly.
  kGpFault,     // General-protection fault in the host.
  kLogWarning,  // Suspicious diagnostic log line.
};

std::string_view AnomalyKindName(AnomalyKind kind);

struct AnomalyReport {
  AnomalyKind kind;
  // Stable identity of the underlying bug (used to deduplicate findings
  // and to match against Table 6).
  std::string bug_id;
  // Human-readable detail, styled after the real report lines.
  std::string message;
};

class SanitizerSink {
 public:
  void Report(AnomalyKind kind, std::string bug_id, std::string message) {
    reports_.push_back({kind, std::move(bug_id), std::move(message)});
  }

  const std::vector<AnomalyReport>& reports() const { return reports_; }
  bool empty() const { return reports_.empty(); }
  void Clear() { reports_.clear(); }

  // Moves out accumulated reports (agent collects per-execution).
  std::vector<AnomalyReport> Drain() {
    std::vector<AnomalyReport> out = std::move(reports_);
    reports_.clear();
    return out;
  }

 private:
  std::vector<AnomalyReport> reports_;
};

}  // namespace neco

#endif  // SRC_HV_SANITIZER_H_
