// Line-coverage instrumentation for the simulated hypervisors.
//
// The paper measures line coverage of the nested-virtualization source
// files (KVM's vmx/nested.c and svm/nested.c, Xen's vvmx.c/nestedsvm.c)
// via kcov/gcov. Here every instrumentable basic block in a simulator
// translation unit is marked with the NVCOV() macro, which uses
// __COUNTER__ to assign dense per-unit point ids at compile time; the
// sentinel taken at the end of the TU yields the unit's total point count.
// A CoverageUnit therefore knows both "which lines ran" and "how many
// lines exist", giving the same cov%/#line metric as the paper's tables.
#ifndef SRC_HV_COVERAGE_H_
#define SRC_HV_COVERAGE_H_

#include <cstdint>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace neco {

class CoverageUnit {
 public:
  CoverageUnit(std::string name, size_t total_points)
      : name_(std::move(name)), hits_(total_points, 0) {}

  void Hit(size_t point) {
    if (point < hits_.size()) {
      hits_[point] = 1;
      ++hit_events_;
      trace_.push_back(static_cast<uint32_t>(point));
    }
  }

  // Per-execution trace: every Hit() since the last drain, in order. The
  // fuzzing agent drains this after each run to feed the AFL bitmap.
  std::vector<uint32_t> DrainTrace() {
    std::vector<uint32_t> out = std::move(trace_);
    trace_.clear();
    return out;
  }

  std::string_view name() const { return name_; }
  size_t total_points() const { return hits_.size(); }

  size_t covered_points() const {
    size_t n = 0;
    for (uint8_t h : hits_) {
      n += h;
    }
    return n;
  }

  double percent() const {
    if (hits_.empty()) {
      return 0.0;
    }
    return 100.0 * static_cast<double>(covered_points()) /
           static_cast<double>(hits_.size());
  }

  bool IsCovered(size_t point) const {
    return point < hits_.size() && hits_[point] != 0;
  }

  // Set of covered point ids (for the A∩B / A−B rows of Tables 2 and 4).
  std::vector<size_t> CoveredSet() const;

  // Point ids newly covered relative to `snapshot` (grown to total_points
  // on first use); advances the snapshot so consecutive calls yield
  // disjoint deltas. The covered-set half of the shard-delta protocol
  // (src/core/wire.h): shipping these instead of the whole hits vector
  // keeps per-epoch merge records proportional to actual progress.
  // Word-at-a-time: 8 hit bytes are compared against the snapshot per
  // load (unaligned-safe, tail handled byte-wise), so the per-epoch scan
  // is one compare per 8 points once coverage saturates.
  std::vector<uint32_t> ExtractDeltaSince(std::vector<uint8_t>& snapshot) const;

  // Byte-at-a-time reference implementation of ExtractDeltaSince, kept
  // for the randomized equivalence tests (tests/bitmap_test.cc).
  std::vector<uint32_t> ExtractDeltaSinceScalar(
      std::vector<uint8_t>& snapshot) const;

  // Folds a delta into a covered-set byte vector (the merge side of
  // ExtractDeltaSince), returning how many points were newly covered;
  // out-of-range points are ignored.
  static size_t ApplyDelta(const std::vector<uint32_t>& delta,
                           std::vector<uint8_t>& covered);

  // Raw hit vector for bitmap mapping by the fuzzing agent.
  const std::vector<uint8_t>& hits() const { return hits_; }

  // Total Hit() calls (edge-ish signal used for guidance).
  uint64_t hit_events() const { return hit_events_; }

  void ResetCoverage() {
    std::fill(hits_.begin(), hits_.end(), 0);
    trace_.clear();
    hit_events_ = 0;
  }

  // Snapshot restore: reinstates accumulated coverage at an epoch
  // boundary (trace_ is drained after every execution, so it is empty
  // there by construction). Out-of-range points are ignored, mirroring
  // ApplyDelta.
  void RestoreCoverage(const std::vector<uint32_t>& covered,
                       uint64_t hit_events) {
    std::fill(hits_.begin(), hits_.end(), 0);
    for (uint32_t point : covered) {
      if (point < hits_.size()) {
        hits_[point] = 1;
      }
    }
    trace_.clear();
    hit_events_ = hit_events;
  }

 private:
  std::string name_;
  std::vector<uint8_t> hits_;
  std::vector<uint32_t> trace_;
  uint64_t hit_events_ = 0;
};

// Marks one basic block in a simulator TU. `unit` is a CoverageUnit&.
#define NVCOV(unit) (unit).Hit(__COUNTER__)

// Set algebra over covered-point sets, reported in Tables 2/4 as A−B, A∩B.
std::vector<size_t> CoverageIntersect(const std::vector<size_t>& a,
                                      const std::vector<size_t>& b);
std::vector<size_t> CoverageSubtract(const std::vector<size_t>& a,
                                     const std::vector<size_t>& b);

}  // namespace neco

#endif  // SRC_HV_COVERAGE_H_
