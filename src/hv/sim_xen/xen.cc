#include "src/hv/sim_xen/xen.h"

namespace neco {
namespace {

// Cooked post-boot image for SimXen. AMD boots are a handful of scalar
// stores, so only the Intel engine (which builds vmcs01 and the advertised
// capability MSRs at boot) carries a cooked image; AMD snapshots stay
// config-only and restore via the StartVm fallback.
struct XenSnapshotData : VmSnapshotData {
  XenNestedVmx::BootImage vmx_boot;
};

}  // namespace

SimXen::SimXen()
    : vmx_cov_("xen/hvm/vmx/vvmx.c", kXenNestedVmxCoveragePoints),
      svm_cov_("xen/hvm/svm/nestedsvm.c", kXenNestedSvmCoveragePoints),
      config_(VcpuConfig::Default(Arch::kIntel)),
      nested_vmx_(vmx_cov_, sanitizers_, guest_memory_, vmx_cpu_,
                  &host_crashed_),
      nested_svm_(svm_cov_, sanitizers_, guest_memory_, svm_cpu_,
                  &host_crashed_) {}

void SimXen::StartVm(const VcpuConfig& config) {
  config_ = config;
  guest_memory_.Clear();
  if (config.arch == Arch::kIntel) {
    nested_vmx_.Reset(config);
  } else {
    nested_svm_.Reset(config);
  }
}

VmSnapshot SimXen::SnapshotVm() {
  VmSnapshot snap;
  snap.hypervisor = std::string(name());
  snap.config = config_;
  if (config_.arch == Arch::kIntel) {
    auto data = std::make_shared<XenSnapshotData>();
    data->vmx_boot = nested_vmx_.CaptureBoot();
    snap.data = std::move(data);
  }
  return snap;
}

void SimXen::RestoreVm(const VmSnapshot& snapshot) {
  const auto* data = dynamic_cast<const XenSnapshotData*>(snapshot.data.get());
  if (data == nullptr) {
    StartVm(snapshot.config);  // Foreign or config-only snapshot.
    return;
  }
  config_ = snapshot.config;
  guest_memory_.Clear();
  nested_vmx_.RestoreBoot(data->vmx_boot);
}

VmxEmuResult SimXen::HandleVmxInstruction(const VmxInsn& insn) {
  if (config_.arch != Arch::kIntel || host_crashed_) {
    return {};
  }
  return nested_vmx_.HandleInstruction(insn);
}

SvmEmuResult SimXen::HandleSvmInstruction(const SvmInsn& insn) {
  if (config_.arch != Arch::kAmd || host_crashed_) {
    return {};
  }
  return nested_svm_.HandleInstruction(insn);
}

HandledBy SimXen::HandleGuestInstruction(const GuestInsn& insn,
                                         GuestLevel level) {
  if (host_crashed_) {
    return HandledBy::kHostCrash;
  }
  if (config_.arch == Arch::kIntel) {
    return level == GuestLevel::kL2 ? nested_vmx_.HandleL2Instruction(insn)
                                    : nested_vmx_.HandleL1Instruction(insn);
  }
  return level == GuestLevel::kL2 ? nested_svm_.HandleL2Instruction(insn)
                                  : nested_svm_.HandleL1Instruction(insn);
}

bool SimXen::in_l2() const {
  return config_.arch == Arch::kIntel ? nested_vmx_.in_l2()
                                      : nested_svm_.in_l2();
}

CoverageUnit& SimXen::nested_coverage(Arch arch) {
  return arch == Arch::kIntel ? vmx_cov_ : svm_cov_;
}

}  // namespace neco
