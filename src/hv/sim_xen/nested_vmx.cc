// Xen nested VMX engine (vvmx.c analog). One translation unit so the
// NVCOV/__COUNTER__ point ids stay dense and private to this "source file".
#include "src/hv/sim_xen/xen.h"

#include "src/arch/vmx_bits.h"
#include "src/support/bits.h"

namespace neco {

XenNestedVmx::XenNestedVmx(CoverageUnit& cov, SanitizerSink& san,
                           GuestMemory& mem, VmxCpu& cpu, bool* host_crashed)
    : cov_(cov), san_(san), mem_(mem), cpu_(cpu),
      host_crashed_(host_crashed) {
  Reset(VcpuConfig::Default(Arch::kIntel));
}

void XenNestedVmx::Reset(const VcpuConfig& config) {
  config_ = config;
  nested_caps_ =
      MakeVmxCapabilities(config.features.RestrictedTo(Arch::kIntel));
  vmxon_ = false;
  vmxon_ptr_ = kNoPtr;
  vvmcs_ptr_ = kNoPtr;
  vvmcs_cache_.clear();
  launched_.clear();
  vmcs01_ = MakeDefaultVmcs();
  vmcs02_ = Vmcs();
  in_l2_ = false;
}

// Mirrors Reset() field for field, with the derived members copied from
// the image instead of recomputed. Keep in sync with Reset — the snapshot
// equivalence tests pin this.
void XenNestedVmx::RestoreBoot(const BootImage& image) {
  config_ = image.config;
  nested_caps_ = image.nested_caps;
  vmxon_ = false;
  vmxon_ptr_ = kNoPtr;
  vvmcs_ptr_ = kNoPtr;
  vvmcs_cache_.clear();
  launched_.clear();
  vmcs01_ = image.vmcs01;
  vmcs02_ = Vmcs();
  in_l2_ = false;
}

bool XenNestedVmx::CheckPermission() {
  if (!config_.nested()) {
    NVCOV(cov_);  // nestedhvm=0: #UD.
    return false;
  }
  if (!vmxon_) {
    NVCOV(cov_);
    return false;
  }
  NVCOV(cov_);
  return true;
}

VmxEmuResult XenNestedVmx::HandleInstruction(const VmxInsn& insn) {
  VmxEmuResult r;
  switch (insn.op) {
    case VmxOp::kVmxon: {
      if (!config_.nested()) {
        NVCOV(cov_);
        return r;
      }
      if (vmxon_) {
        NVCOV(cov_);
        return r;
      }
      if (!IsAligned(insn.operand, 12) || insn.operand == 0) {
        NVCOV(cov_);
        return r;
      }
      NVCOV(cov_);
      vmxon_ = true;
      vmxon_ptr_ = insn.operand;
      r.ok = true;
      return r;
    }
    case VmxOp::kVmxoff:
      if (!CheckPermission()) {
        return r;
      }
      NVCOV(cov_);
      vmxon_ = false;
      vvmcs_ptr_ = kNoPtr;
      in_l2_ = false;
      r.ok = true;
      return r;
    case VmxOp::kVmclear:
      if (!CheckPermission()) {
        return r;
      }
      if (!IsAligned(insn.operand, 12) || insn.operand == vmxon_ptr_) {
        NVCOV(cov_);
        return r;
      }
      NVCOV(cov_);
      launched_[insn.operand] = false;
      if (insn.operand == vvmcs_ptr_) {
        NVCOV(cov_);
        vvmcs_ptr_ = kNoPtr;
      }
      r.ok = true;
      return r;
    case VmxOp::kVmptrld:
      if (!CheckPermission()) {
        return r;
      }
      if (!IsAligned(insn.operand, 12) || insn.operand == 0 ||
          insn.operand == vmxon_ptr_) {
        NVCOV(cov_);
        return r;
      }
      // Xen maps the vvmcs page; a bad revision shows up as a map failure.
      if (mem_.Read32(insn.operand) != Vmcs::kRevisionId) {
        NVCOV(cov_);
        return r;
      }
      NVCOV(cov_);
      vvmcs_cache_[insn.operand];
      vvmcs_ptr_ = insn.operand;
      r.ok = true;
      return r;
    case VmxOp::kVmptrst:
      if (!CheckPermission()) {
        return r;
      }
      NVCOV(cov_);
      r.ok = true;
      r.read_value = vvmcs_ptr_;
      return r;
    case VmxOp::kVmwrite: {
      if (!CheckPermission()) {
        return r;
      }
      auto it = vvmcs_cache_.find(vvmcs_ptr_);
      if (it == vvmcs_cache_.end()) {
        NVCOV(cov_);
        return r;
      }
      if (FindVmcsField(insn.field) == nullptr) {
        NVCOV(cov_);
        return r;
      }
      NVCOV(cov_);  // Xen permits vmwrite to read-only fields in the vvmcs.
      it->second.Write(insn.field, insn.value);
      r.ok = true;
      return r;
    }
    case VmxOp::kVmread: {
      if (!CheckPermission()) {
        return r;
      }
      auto it = vvmcs_cache_.find(vvmcs_ptr_);
      if (it == vvmcs_cache_.end()) {
        NVCOV(cov_);
        return r;
      }
      if (FindVmcsField(insn.field) == nullptr) {
        NVCOV(cov_);
        return r;
      }
      NVCOV(cov_);
      r.ok = true;
      r.read_value = it->second.Read(insn.field);
      return r;
    }
    case VmxOp::kVmlaunch:
      return VirtualVmentry(/*launch=*/true);
    case VmxOp::kVmresume:
      return VirtualVmentry(/*launch=*/false);
    case VmxOp::kInvept:
      if (!CheckPermission()) {
        return r;
      }
      if (!config_.features.Has(CpuFeature::kEpt)) {
        NVCOV(cov_);
        return r;
      }
      NVCOV(cov_);
      r.ok = true;
      return r;
    case VmxOp::kInvvpid:
      if (!CheckPermission()) {
        return r;
      }
      if (!config_.features.Has(CpuFeature::kVpid)) {
        NVCOV(cov_);
        return r;
      }
      NVCOV(cov_);
      r.ok = true;
      return r;
    case VmxOp::kCount:
      break;
  }
  return r;
}

// Xen's replica checks are sparser than KVM's: controls and host checks
// exist, guest-state validation is delegated to hardware almost entirely.
bool XenNestedVmx::NvmxCheckControls(const Vmcs& v12) {
  const uint32_t pin =
      static_cast<uint32_t>(v12.Read(VmcsField::kPinBasedVmExecControl));
  const uint32_t proc =
      static_cast<uint32_t>(v12.Read(VmcsField::kCpuBasedVmExecControl));
  if (!nested_caps_.pinbased.Permits(pin)) {
    NVCOV(cov_);
    return false;
  }
  if (!nested_caps_.procbased.Permits(proc)) {
    NVCOV(cov_);
    return false;
  }
  if ((proc & ProcCtl::kActivateSecondary) != 0) {
    NVCOV(cov_);
    const uint32_t sec = static_cast<uint32_t>(
        v12.Read(VmcsField::kSecondaryVmExecControl));
    if (!nested_caps_.procbased2.Permits(sec)) {
      NVCOV(cov_);
      return false;
    }
    if ((sec & Proc2Ctl::kEnableEpt) != 0) {
      NVCOV(cov_);
      const uint64_t eptp = v12.Read(VmcsField::kEptPointer);
      if ((eptp & 0x7) != 6 || ExtractBits(eptp, 3, 3) != 3) {
        NVCOV(cov_);
        return false;
      }
    }
  }
  if (!nested_caps_.exit.Permits(static_cast<uint32_t>(
          v12.Read(VmcsField::kVmExitControls)))) {
    NVCOV(cov_);
    return false;
  }
  if (!nested_caps_.entry.Permits(static_cast<uint32_t>(
          v12.Read(VmcsField::kVmEntryControls)))) {
    NVCOV(cov_);
    return false;
  }
  if ((proc & ProcCtl::kUseMsrBitmaps) != 0 &&
      !IsAligned(v12.Read(VmcsField::kMsrBitmap), 12)) {
    NVCOV(cov_);
    return false;
  }
  if ((proc & ProcCtl::kUseIoBitmaps) != 0) {
    NVCOV(cov_);
    if (!IsAligned(v12.Read(VmcsField::kIoBitmapA), 12) ||
        !IsAligned(v12.Read(VmcsField::kIoBitmapB), 12)) {
      NVCOV(cov_);
      return false;
    }
  }
  NVCOV(cov_);
  return true;
}

bool XenNestedVmx::NvmxCheckHost(const Vmcs& v12) {
  if ((v12.Read(VmcsField::kHostCr0) & nested_caps_.cr0_fixed0) !=
      nested_caps_.cr0_fixed0) {
    NVCOV(cov_);
    return false;
  }
  if ((v12.Read(VmcsField::kHostCr4) & nested_caps_.cr4_fixed0) !=
      nested_caps_.cr4_fixed0) {
    NVCOV(cov_);
    return false;
  }
  if (!IsCanonical(v12.Read(VmcsField::kHostRip))) {
    NVCOV(cov_);
    return false;
  }
  if (v12.Read(VmcsField::kHostCsSelector) == 0) {
    NVCOV(cov_);
    return false;
  }
  NVCOV(cov_);
  return true;
}

bool XenNestedVmx::NvmxCheckGuest(const Vmcs& v12) {
  // Xen only pre-validates the few pieces it must interpret itself; the
  // rest rides on the hardware checks over VMCS02.
  const uint64_t cr0 = v12.Read(VmcsField::kGuestCr0);
  uint64_t cr0_fixed0 = nested_caps_.cr0_fixed0;
  const uint32_t proc =
      static_cast<uint32_t>(v12.Read(VmcsField::kCpuBasedVmExecControl));
  if ((proc & ProcCtl::kActivateSecondary) != 0 &&
      (v12.Read(VmcsField::kSecondaryVmExecControl) &
       Proc2Ctl::kUnrestrictedGuest) != 0) {
    NVCOV(cov_);
    cr0_fixed0 &= ~(Cr0::kPe | Cr0::kPg);
  }
  if ((cr0 & cr0_fixed0) != cr0_fixed0) {
    NVCOV(cov_);
    return false;
  }
  if ((v12.Read(VmcsField::kGuestCr4) & nested_caps_.cr4_fixed0) !=
      nested_caps_.cr4_fixed0) {
    NVCOV(cov_);
    return false;
  }
  NVCOV(cov_);
  return true;
  // NOTE (bug X1): no activity-state sanitization anywhere in this path.
}

void XenNestedVmx::LoadVvmcs(const Vmcs& v12) {
  NVCOV(cov_);
  // vmcs01 is the boot-built default image, never written after Reset, so
  // copying it is byte-identical to rebuilding MakeDefaultVmcs per entry.
  vmcs02_ = vmcs01_;
  vmcs02_.set_launch_state(Vmcs::LaunchState::kClear);
  const uint32_t proc =
      static_cast<uint32_t>(v12.Read(VmcsField::kCpuBasedVmExecControl));
  vmcs02_.Write(VmcsField::kPinBasedVmExecControl,
                nested_caps_.pinbased.Round(static_cast<uint32_t>(
                    v12.Read(VmcsField::kPinBasedVmExecControl))));
  vmcs02_.Write(VmcsField::kCpuBasedVmExecControl,
                nested_caps_.procbased.Round(proc) |
                    ProcCtl::kUseMsrBitmaps | ProcCtl::kUseIoBitmaps);
  if ((proc & ProcCtl::kActivateSecondary) != 0) {
    NVCOV(cov_);
    vmcs02_.Write(VmcsField::kSecondaryVmExecControl,
                  nested_caps_.procbased2.Round(static_cast<uint32_t>(
                      v12.Read(VmcsField::kSecondaryVmExecControl))) |
                      (config_.features.Has(CpuFeature::kEpt)
                           ? Proc2Ctl::kEnableEpt
                           : 0u));
  } else if (config_.features.Has(CpuFeature::kEpt)) {
    NVCOV(cov_);
    vmcs02_.Write(VmcsField::kCpuBasedVmExecControl,
                  vmcs02_.Read(VmcsField::kCpuBasedVmExecControl) |
                      ProcCtl::kActivateSecondary);
    vmcs02_.Write(VmcsField::kSecondaryVmExecControl, Proc2Ctl::kEnableEpt);
  }
  if (config_.features.Has(CpuFeature::kEpt)) {
    NVCOV(cov_);
    vmcs02_.Write(VmcsField::kEptPointer, 0x1000 | 0x6 | (3u << 3));
  }
  vmcs02_.Write(VmcsField::kVmExitControls,
                nested_caps_.exit.Round(static_cast<uint32_t>(
                    v12.Read(VmcsField::kVmExitControls))) |
                    ExitCtl::kHostAddrSpaceSize | ExitCtl::kSaveEfer |
                    ExitCtl::kLoadEfer);
  vmcs02_.Write(VmcsField::kVmEntryControls,
                nested_caps_.entry.Round(static_cast<uint32_t>(
                    v12.Read(VmcsField::kVmEntryControls))));

  static constexpr VmcsField kGuestCopy[] = {
      VmcsField::kGuestCr0, VmcsField::kGuestCr3, VmcsField::kGuestCr4,
      VmcsField::kGuestIa32Efer, VmcsField::kGuestRflags,
      VmcsField::kGuestRip, VmcsField::kGuestRsp, VmcsField::kGuestDr7,
      VmcsField::kGuestCsSelector, VmcsField::kGuestCsBase,
      VmcsField::kGuestCsLimit, VmcsField::kGuestCsArBytes,
      VmcsField::kGuestSsSelector, VmcsField::kGuestSsBase,
      VmcsField::kGuestSsLimit, VmcsField::kGuestSsArBytes,
      VmcsField::kGuestDsSelector, VmcsField::kGuestDsArBytes,
      VmcsField::kGuestEsSelector, VmcsField::kGuestEsArBytes,
      VmcsField::kGuestFsSelector, VmcsField::kGuestFsArBytes,
      VmcsField::kGuestGsSelector, VmcsField::kGuestGsArBytes,
      VmcsField::kGuestLdtrSelector, VmcsField::kGuestLdtrArBytes,
      VmcsField::kGuestTrSelector, VmcsField::kGuestTrBase,
      VmcsField::kGuestTrLimit, VmcsField::kGuestTrArBytes,
      VmcsField::kGuestGdtrBase, VmcsField::kGuestGdtrLimit,
      VmcsField::kGuestIdtrBase, VmcsField::kGuestIdtrLimit,
      VmcsField::kGuestInterruptibilityInfo,
      VmcsField::kGuestPendingDbgExceptions,
      // Bug X1: the activity state is copied VERBATIM into VMCS02. Xen
      // never filters SHUTDOWN / WAIT-FOR-SIPI here.
      VmcsField::kGuestActivityState,
      VmcsField::kGuestFsBase, VmcsField::kGuestGsBase,
      VmcsField::kGuestSysenterCs, VmcsField::kGuestSysenterEsp,
      VmcsField::kGuestSysenterEip,
  };
  for (VmcsField f : kGuestCopy) {
    vmcs02_.Write(f, v12.Read(f));
  }
  vmcs02_.Write(VmcsField::kVmcsLinkPointer, ~0ULL);
}

VmxEmuResult XenNestedVmx::VirtualVmentry(bool launch) {
  VmxEmuResult r;
  if (!CheckPermission()) {
    return r;
  }
  auto it = vvmcs_cache_.find(vvmcs_ptr_);
  if (it == vvmcs_cache_.end()) {
    NVCOV(cov_);
    return r;
  }
  const bool launched = launched_[vvmcs_ptr_];
  if (launch && launched) {
    NVCOV(cov_);
    return r;
  }
  if (!launch && !launched) {
    NVCOV(cov_);
    return r;
  }
  Vmcs& v12 = it->second;

  if (!NvmxCheckControls(v12)) {
    NVCOV(cov_);
    return r;
  }
  if (!NvmxCheckHost(v12)) {
    NVCOV(cov_);
    return r;
  }
  if (!NvmxCheckGuest(v12)) {
    NVCOV(cov_);
    v12.Write(VmcsField::kVmExitReason,
              static_cast<uint32_t>(ExitReason::kInvalidGuestState) |
                  kExitReasonFailedEntryBit);
    r.ok = true;
    return r;
  }

  LoadVvmcs(v12);
  const EntryOutcome hw = cpu_.TryEntry(vmcs02_, /*launch=*/true);
  if (hw.status == EntryStatus::kEntered) {
    NVCOV(cov_);
    in_l2_ = true;
    launched_[vvmcs_ptr_] = true;
    r.ok = true;
    r.entered_l2 = true;
    // Bug X1 manifestation: entering L2 in WAIT-FOR-SIPI blocks every
    // interrupt except SIPI; SHUTDOWN resets the platform. Either way the
    // host never regains control of this CPU.
    const uint64_t activity =
        vmcs02_.Read(VmcsField::kGuestActivityState);
    if (activity == static_cast<uint64_t>(ActivityState::kWaitForSipi) ||
        activity == static_cast<uint64_t>(ActivityState::kShutdown)) {
      NVCOV(cov_);
      san_.Report(AnomalyKind::kHostCrash, "xen-nvmx-activity-state",
                  "host unresponsive: VMCS02 entered with activity state " +
                      std::to_string(activity) +
                      " copied unsanitized from VMCS12");
      *host_crashed_ = true;
    }
    return r;
  }
  if (hw.status == EntryStatus::kEntryFailGuest) {
    NVCOV(cov_);  // Hardware rejected the merged state; reflect to L1.
    v12.Write(VmcsField::kVmExitReason,
              static_cast<uint32_t>(ExitReason::kInvalidGuestState) |
                  kExitReasonFailedEntryBit);
    v12.Write(VmcsField::kExitQualification,
              static_cast<uint64_t>(hw.failed_check));
    r.ok = true;
    return r;
  }
  NVCOV(cov_);  // VMfail on the merged controls.
  return r;
}

void XenNestedVmx::VirtualVmexit(ExitReason reason, uint64_t qual) {
  NVCOV(cov_);
  auto it = vvmcs_cache_.find(vvmcs_ptr_);
  if (it != vvmcs_cache_.end()) {
    NVCOV(cov_);
    Vmcs& v12 = it->second;
    static constexpr VmcsField kSync[] = {
        VmcsField::kGuestCr0, VmcsField::kGuestCr3, VmcsField::kGuestCr4,
        VmcsField::kGuestRflags, VmcsField::kGuestRip, VmcsField::kGuestRsp,
        VmcsField::kGuestInterruptibilityInfo,
        VmcsField::kGuestActivityState,
    };
    for (VmcsField f : kSync) {
      v12.Write(f, vmcs02_.Read(f));
    }
    v12.Write(VmcsField::kVmExitReason, static_cast<uint32_t>(reason));
    v12.Write(VmcsField::kExitQualification, qual);
    if (!IsCanonical(v12.Read(VmcsField::kHostRip))) {
      NVCOV(cov_);  // Xen domain_crash() on bad L1 host state.
      san_.Report(AnomalyKind::kLogWarning, "xen-nvmx-domain-crash",
                  "domain_crash: invalid VMCS12 host state on nested exit");
    }
  }
  in_l2_ = false;
}

bool XenNestedVmx::InterceptedByL1(const GuestInsn& insn,
                                   ExitReason* reason) {
  auto it = vvmcs_cache_.find(vvmcs_ptr_);
  if (it == vvmcs_cache_.end()) {
    NVCOV(cov_);
    *reason = ExitReason::kCpuid;
    return false;
  }
  const Vmcs& v12 = it->second;
  const uint32_t proc =
      static_cast<uint32_t>(v12.Read(VmcsField::kCpuBasedVmExecControl));
  const uint32_t sec =
      (proc & ProcCtl::kActivateSecondary) != 0
          ? static_cast<uint32_t>(
                v12.Read(VmcsField::kSecondaryVmExecControl))
          : 0;
  switch (insn.kind) {
    case GuestInsnKind::kCpuid:
      NVCOV(cov_);
      *reason = ExitReason::kCpuid;
      return true;
    case GuestInsnKind::kVmcall:
      NVCOV(cov_);
      *reason = ExitReason::kVmcall;
      return true;
    case GuestInsnKind::kHlt:
      *reason = ExitReason::kHlt;
      if ((proc & ProcCtl::kHltExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kRdtsc:
    case GuestInsnKind::kRdtscp:
      *reason = ExitReason::kRdtsc;
      if ((proc & ProcCtl::kRdtscExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kMovToCr0: {
      *reason = ExitReason::kCrAccess;
      const uint64_t mask = v12.Read(VmcsField::kCr0GuestHostMask);
      const uint64_t shadow = v12.Read(VmcsField::kCr0ReadShadow);
      if (((insn.arg0 ^ shadow) & mask) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    }
    case GuestInsnKind::kMovToCr4: {
      *reason = ExitReason::kCrAccess;
      const uint64_t mask = v12.Read(VmcsField::kCr4GuestHostMask);
      const uint64_t shadow = v12.Read(VmcsField::kCr4ReadShadow);
      if (((insn.arg0 ^ shadow) & mask) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    }
    case GuestInsnKind::kMovToCr3:
      *reason = ExitReason::kCrAccess;
      if ((proc & ProcCtl::kCr3LoadExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kIoIn:
    case GuestInsnKind::kIoOut:
      *reason = ExitReason::kIoInstruction;
      if ((proc & ProcCtl::kUseIoBitmaps) != 0) {
        NVCOV(cov_);
        const uint64_t port = insn.arg0 & 0xffff;
        const uint64_t bitmap = port < 0x8000
                                    ? v12.Read(VmcsField::kIoBitmapA)
                                    : v12.Read(VmcsField::kIoBitmapB);
        return mem_.TestBit(bitmap, port & 0x7fff);
      }
      if ((proc & ProcCtl::kUncondIoExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kRdmsr:
    case GuestInsnKind::kWrmsr: {
      *reason = insn.kind == GuestInsnKind::kRdmsr ? ExitReason::kMsrRead
                                                   : ExitReason::kMsrWrite;
      if ((proc & ProcCtl::kUseMsrBitmaps) == 0) {
        NVCOV(cov_);
        return true;
      }
      const uint32_t msr = static_cast<uint32_t>(insn.arg0);
      const uint64_t bitmap = v12.Read(VmcsField::kMsrBitmap);
      uint64_t bit;
      if (msr < 0x2000) {
        bit = msr;
      } else if (msr >= 0xc0000000 && msr < 0xc0002000) {
        bit = 0x2000 + (msr - 0xc0000000);
      } else {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return mem_.TestBit(bitmap, bit);
    }
    case GuestInsnKind::kInvlpg:
      *reason = ExitReason::kInvlpg;
      if ((proc & ProcCtl::kInvlpgExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kPause:
      *reason = ExitReason::kPause;
      if ((proc & ProcCtl::kPauseExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kWbinvd:
      *reason = ExitReason::kWbinvd;
      if ((sec & Proc2Ctl::kWbinvdExiting) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    case GuestInsnKind::kRaiseException: {
      *reason = ExitReason::kExceptionNmi;
      const uint64_t bitmap = v12.Read(VmcsField::kExceptionBitmap);
      if ((bitmap & (1ULL << (insn.arg0 & 31))) != 0) {
        NVCOV(cov_);
        return true;
      }
      NVCOV(cov_);
      return false;
    }
    default:
      NVCOV(cov_);
      *reason = ExitReason::kCpuid;
      return false;
  }
}

HandledBy XenNestedVmx::HandleL2Instruction(const GuestInsn& insn) {
  if (!in_l2_) {
    NVCOV(cov_);
    return HandledBy::kNoExit;
  }
  ExitReason reason = ExitReason::kCpuid;
  if (InterceptedByL1(insn, &reason)) {
    NVCOV(cov_);
    VirtualVmexit(reason, insn.arg0);
    return HandledBy::kL1;
  }
  NVCOV(cov_);  // Handled by Xen itself; L2 resumes.
  return HandledBy::kL0;
}

HandledBy XenNestedVmx::HandleL1Instruction(const GuestInsn& insn) {
  switch (insn.kind) {
    case GuestInsnKind::kRdmsr: {
      const uint32_t msr = static_cast<uint32_t>(insn.arg0);
      if (msr >= Msr::kIa32VmxBasic && msr <= Msr::kIa32VmxBasic + 0x11) {
        NVCOV(cov_);  // nvmx_msr_read_intercept().
        return HandledBy::kL0;
      }
      NVCOV(cov_);
      return HandledBy::kL0;
    }
    case GuestInsnKind::kVmcall:
      NVCOV(cov_);
      return HandledBy::kL0;
    default:
      NVCOV(cov_);
      return HandledBy::kNoExit;
  }
}

const size_t kXenNestedVmxCoveragePoints = __COUNTER__;

}  // namespace neco
