// The simulated Xen host hypervisor (L0 fuzz target).
//
// The nested VMX engine is the analog of xen/arch/x86/hvm/vmx/vvmx.c and
// the nested SVM engine of xen/arch/x86/hvm/svm/nestedsvm.c — the files the
// paper measures Xen coverage over (Table 4). Xen's nested code is leaner
// than KVM's and leans harder on hardware to reject bad states, which is
// precisely where its three re-seeded bugs live:
//
//  * Bug X1 (Intel, fixed upstream): nvmx_update_apic/activity logic copies
//    the VMCS12 activity state into VMCS02 without sanitizing. An L1 that
//    sets WAIT-FOR-SIPI (3) or SHUTDOWN (2) wedges the whole host.
//  * Bug X2 (AMD, gitlab issue 216): a VMCB12 with EFER.LME=1, CR0.PG=0 —
//    accepted by hardware, ambiguous in the APM — corrupts the nested
//    state and erroneously enables AVIC in VMCB02; the subsequent
//    AVIC_NOACCEL exit hits BUG().
//  * Bug X3 (AMD, gitlab issue 215): when a VMRUN fails and the exit is
//    injected back into L1, nsvm_vcpu_vmexit_inject() asserts that the
//    virtual GIF is set whenever VGIF is enabled; an L1 that enables VGIF
//    with the GIF value bit clear trips the assertion.
#ifndef SRC_HV_SIM_XEN_XEN_H_
#define SRC_HV_SIM_XEN_XEN_H_

#include <cstdint>
#include <map>

#include "src/arch/vmcb.h"
#include "src/arch/vmcs.h"
#include "src/arch/vmx_caps.h"
#include "src/cpu/svm_cpu.h"
#include "src/cpu/vmx_cpu.h"
#include "src/hv/coverage.h"
#include "src/hv/hypervisor.h"

namespace neco {

extern const size_t kXenNestedVmxCoveragePoints;
extern const size_t kXenNestedSvmCoveragePoints;

class XenNestedVmx {
 public:
  XenNestedVmx(CoverageUnit& cov, SanitizerSink& san, GuestMemory& mem,
               VmxCpu& cpu, bool* host_crashed);
  void Reset(const VcpuConfig& config);

  // Cooked post-boot state (advertised capabilities, the boot-built
  // vmcs01) so a restore is copy-assignment instead of recompute.
  // RestoreBoot(CaptureBoot()) after Reset(config) == Reset(config).
  struct BootImage {
    VcpuConfig config;
    VmxCapabilities nested_caps;
    Vmcs vmcs01;
  };
  BootImage CaptureBoot() const { return {config_, nested_caps_, vmcs01_}; }
  void RestoreBoot(const BootImage& image);

  VmxEmuResult HandleInstruction(const VmxInsn& insn);
  HandledBy HandleL2Instruction(const GuestInsn& insn);
  HandledBy HandleL1Instruction(const GuestInsn& insn);
  bool in_l2() const { return in_l2_; }

 private:
  static constexpr uint64_t kNoPtr = ~0ULL;

  bool CheckPermission();
  bool NvmxCheckControls(const Vmcs& v12);
  bool NvmxCheckHost(const Vmcs& v12);
  bool NvmxCheckGuest(const Vmcs& v12);
  void LoadVvmcs(const Vmcs& v12);
  VmxEmuResult VirtualVmentry(bool launch);
  void VirtualVmexit(ExitReason reason, uint64_t qual);
  bool InterceptedByL1(const GuestInsn& insn, ExitReason* reason);

  CoverageUnit& cov_;
  SanitizerSink& san_;
  GuestMemory& mem_;
  VmxCpu& cpu_;
  bool* host_crashed_;

  VcpuConfig config_;
  VmxCapabilities nested_caps_;
  bool vmxon_ = false;
  uint64_t vmxon_ptr_ = kNoPtr;
  uint64_t vvmcs_ptr_ = kNoPtr;  // Xen's name for the active VMCS12.
  std::map<uint64_t, Vmcs> vvmcs_cache_;
  std::map<uint64_t, bool> launched_;
  // The L0 container VMCS for the L1 guest, built once at boot (same
  // fidelity as KVM's vmcs01) and copied into vmcs02 per nested entry.
  // Never written after Reset/RestoreBoot.
  Vmcs vmcs01_;
  Vmcs vmcs02_;
  bool in_l2_ = false;
};

class XenNestedSvm {
 public:
  XenNestedSvm(CoverageUnit& cov, SanitizerSink& san, GuestMemory& mem,
               SvmCpu& cpu, bool* host_crashed);
  void Reset(const VcpuConfig& config);
  SvmEmuResult HandleInstruction(const SvmInsn& insn);
  HandledBy HandleL2Instruction(const GuestInsn& insn);
  HandledBy HandleL1Instruction(const GuestInsn& insn);
  bool in_l2() const { return in_l2_; }

 private:
  static constexpr uint64_t kNoPtr = ~0ULL;

  bool CheckPermission();
  bool NsvmCheckControls(const Vmcb& v12);
  void PrepareVmcb02(const Vmcb& v12);
  SvmEmuResult HandleVmrun(uint64_t pa);
  // The vulnerable exit-injection path (bug X3 lives here).
  void NsvmVcpuVmexitInject(SvmExitCode code);

  CoverageUnit& cov_;
  SanitizerSink& san_;
  GuestMemory& mem_;
  SvmCpu& cpu_;
  bool* host_crashed_;

  VcpuConfig config_;
  bool l1_svme_ = false;
  std::map<uint64_t, Vmcb> vmcb12_cache_;
  uint64_t current_vmcb12_ = kNoPtr;
  Vmcb vmcb02_;
  bool in_l2_ = false;
  bool l2_was_long_mode_ = false;  // Set after a 64-bit L2 ran (bug X2).
};

class SimXen : public Hypervisor {
 public:
  SimXen();

  std::string_view name() const override { return "xen"; }
  Arch arch() const override { return config_.arch; }
  void StartVm(const VcpuConfig& config) override;
  VmSnapshot SnapshotVm() override;
  void RestoreVm(const VmSnapshot& snapshot) override;
  VmxEmuResult HandleVmxInstruction(const VmxInsn& insn) override;
  SvmEmuResult HandleSvmInstruction(const SvmInsn& insn) override;
  HandledBy HandleGuestInstruction(const GuestInsn& insn,
                                   GuestLevel level) override;
  bool in_l2() const override;
  CoverageUnit& nested_coverage(Arch arch) override;

 private:
  VmxCpu vmx_cpu_;
  SvmCpu svm_cpu_;
  CoverageUnit vmx_cov_;
  CoverageUnit svm_cov_;
  VcpuConfig config_;
  XenNestedVmx nested_vmx_;
  XenNestedSvm nested_svm_;
};

}  // namespace neco

#endif  // SRC_HV_SIM_XEN_XEN_H_
