// Xen nested SVM engine (nestedsvm.c analog). Bugs X2 (LME/!PG -> AVIC
// corruption) and X3 (VGIF assertion in the exit-injection path) live here.
#include "src/hv/sim_xen/xen.h"

#include "src/arch/vmx_bits.h"
#include "src/support/bits.h"

namespace neco {

XenNestedSvm::XenNestedSvm(CoverageUnit& cov, SanitizerSink& san,
                           GuestMemory& mem, SvmCpu& cpu, bool* host_crashed)
    : cov_(cov), san_(san), mem_(mem), cpu_(cpu),
      host_crashed_(host_crashed) {
  Reset(VcpuConfig::Default(Arch::kAmd));
}

void XenNestedSvm::Reset(const VcpuConfig& config) {
  config_ = config;
  l1_svme_ = false;
  vmcb12_cache_.clear();
  current_vmcb12_ = kNoPtr;
  vmcb02_ = Vmcb();
  in_l2_ = false;
  l2_was_long_mode_ = false;
  cpu_.set_svme(true);
}

bool XenNestedSvm::CheckPermission() {
  if (!config_.nested()) {
    NVCOV(cov_);
    return false;
  }
  if (!l1_svme_) {
    NVCOV(cov_);
    return false;
  }
  NVCOV(cov_);
  return true;
}

SvmEmuResult XenNestedSvm::HandleInstruction(const SvmInsn& insn) {
  SvmEmuResult r;
  switch (insn.op) {
    case SvmOp::kVmrun:
      return HandleVmrun(insn.operand);
    case SvmOp::kVmload:
    case SvmOp::kVmsave:
      if (!CheckPermission()) {
        return r;
      }
      if (!IsAligned(insn.operand, 12)) {
        NVCOV(cov_);
        return r;
      }
      NVCOV(cov_);
      r.ok = true;
      return r;
    case SvmOp::kStgi:
      if (!CheckPermission()) {
        return r;
      }
      NVCOV(cov_);
      r.ok = true;
      return r;
    case SvmOp::kClgi:
      if (!CheckPermission()) {
        return r;
      }
      NVCOV(cov_);
      r.ok = true;
      return r;
    case SvmOp::kVmmcall:
      NVCOV(cov_);
      r.ok = true;
      return r;
    case SvmOp::kInvlpga:
      if (!CheckPermission()) {
        return r;
      }
      NVCOV(cov_);
      r.ok = true;
      return r;
    case SvmOp::kSkinit:
      NVCOV(cov_);
      return r;
    case SvmOp::kVmcbWrite: {
      NVCOV(cov_);
      vmcb12_cache_[insn.operand].Write(insn.field, insn.value);
      r.ok = true;
      return r;
    }
    case SvmOp::kCount:
      break;
  }
  return r;
}

bool XenNestedSvm::NsvmCheckControls(const Vmcb& v12) {
  // Xen's nsvm checks are minimal: ASID and the VMRUN intercept.
  if (v12.Read(VmcbField::kGuestAsid) == 0) {
    NVCOV(cov_);
    return false;
  }
  if ((v12.Read(VmcbField::kInterceptVec4) & SvmIntercept4::kVmrun) == 0) {
    NVCOV(cov_);
    return false;
  }
  NVCOV(cov_);
  return true;
}

void XenNestedSvm::PrepareVmcb02(const Vmcb& v12) {
  NVCOV(cov_);
  vmcb02_ = MakeDefaultVmcb();
  vmcb02_.Write(VmcbField::kInterceptVec3,
                v12.Read(VmcbField::kInterceptVec3) | SvmIntercept3::kIntr |
                    SvmIntercept3::kShutdown);
  vmcb02_.Write(VmcbField::kInterceptVec4,
                v12.Read(VmcbField::kInterceptVec4) | SvmIntercept4::kVmrun);
  vmcb02_.Write(VmcbField::kGuestAsid, 2);
  if (config_.features.Has(CpuFeature::kNpt)) {
    NVCOV(cov_);
    vmcb02_.Write(VmcbField::kNestedCtl, 1);
    vmcb02_.Write(VmcbField::kNestedCr3, 0x9000);
  } else {
    NVCOV(cov_);
  }
  // V_INTR handling: Xen copies the guest-interrupt fields through. The
  // AVIC-enable bit is masked... under normal conditions (see bug X2 in
  // HandleVmrun for the corrupting path).
  vmcb02_.Write(VmcbField::kVIntr,
                v12.Read(VmcbField::kVIntr) &
                    (SvmVintr::kVTprMask | SvmVintr::kVIrq |
                     SvmVintr::kVIntrMasking | SvmVintr::kVGif |
                     SvmVintr::kVGifEnable));
  static constexpr VmcbField kSaveCopy[] = {
      VmcbField::kEfer, VmcbField::kCr0, VmcbField::kCr3, VmcbField::kCr4,
      VmcbField::kDr6, VmcbField::kDr7, VmcbField::kRflags, VmcbField::kRip,
      VmcbField::kRsp, VmcbField::kRax, VmcbField::kCpl,
      VmcbField::kCsSelector, VmcbField::kCsAttrib, VmcbField::kCsLimit,
      VmcbField::kCsBase, VmcbField::kSsSelector, VmcbField::kSsAttrib,
      VmcbField::kDsSelector, VmcbField::kEsSelector,
      VmcbField::kGdtrBase, VmcbField::kGdtrLimit,
      VmcbField::kIdtrBase, VmcbField::kIdtrLimit, VmcbField::kGPat,
  };
  for (VmcbField f : kSaveCopy) {
    vmcb02_.Write(f, v12.Read(f));
  }
}

// nsvm_vcpu_vmexit_inject(): reflect a #VMEXIT into L1. Bug X3: when VGIF
// is enabled the code ASSERTs that the virtual GIF value bit is set —
// untrue when L1 handed us a VMCB with V_GIF_ENABLE=1 and V_GIF=0.
void XenNestedSvm::NsvmVcpuVmexitInject(SvmExitCode code) {
  NVCOV(cov_);
  auto it = vmcb12_cache_.find(current_vmcb12_);
  if (it == vmcb12_cache_.end()) {
    NVCOV(cov_);
    return;
  }
  Vmcb& v12 = it->second;
  if (config_.features.Has(CpuFeature::kVgif)) {
    NVCOV(cov_);
    const uint64_t vintr = v12.Read(VmcbField::kVIntr);
    if ((vintr & SvmVintr::kVGifEnable) != 0 &&
        (vintr & SvmVintr::kVGif) == 0) {
      NVCOV(cov_);
      san_.Report(AnomalyKind::kAssertion, "xen-nsvm-vgif-assert",
                  "Assertion 'vmcb->_vintr.fields.vgif' failed in "
                  "nsvm_vcpu_vmexit_inject (V_GIF_ENABLE=1, V_GIF=0)");
      // The assertion does not crash the host; execution continues.
    }
  }
  v12.Write(VmcbField::kExitCode, static_cast<uint64_t>(code));
  in_l2_ = false;
}

SvmEmuResult XenNestedSvm::HandleVmrun(uint64_t pa) {
  SvmEmuResult r;
  if (!CheckPermission()) {
    return r;
  }
  if (!IsAligned(pa, 12) || pa == 0) {
    NVCOV(cov_);
    return r;
  }
  auto it = vmcb12_cache_.find(pa);
  if (it == vmcb12_cache_.end()) {
    NVCOV(cov_);
    vmcb12_cache_[pa];
    it = vmcb12_cache_.find(pa);
  }
  Vmcb& v12 = it->second;
  current_vmcb12_ = pa;

  if (!NsvmCheckControls(v12)) {
    NVCOV(cov_);
    v12.Write(VmcbField::kExitCode,
              static_cast<uint64_t>(SvmExitCode::kInvalid));
    r.ok = true;
    return r;
  }

  PrepareVmcb02(v12);

  // Bug X2: after a 64-bit L2 has run, an L1 that flips CR0.PG off while
  // leaving EFER.LME set creates the LMA && !PG contradiction. Hardware
  // accepts the state (the APM leaves it undefined); Xen's mode-tracking
  // scribbles past the paging-state union and the AVIC-enable bit in
  // VMCB02 is what the stray write lands on.
  const uint64_t efer = v12.Read(VmcbField::kEfer);
  const uint64_t cr0 = v12.Read(VmcbField::kCr0);
  if (l2_was_long_mode_ && (efer & Efer::kLme) != 0 &&
      (cr0 & Cr0::kPg) == 0) {
    NVCOV(cov_);
    vmcb02_.Write(VmcbField::kVIntr,
                  vmcb02_.Read(VmcbField::kVIntr) | SvmVintr::kAvicEnable);
  }

  const VmrunOutcome hw = cpu_.Vmrun(vmcb02_);
  if (hw.status == VmrunStatus::kEntered) {
    NVCOV(cov_);
    in_l2_ = true;
    if ((efer & Efer::kLma) != 0 && (cr0 & Cr0::kPg) != 0) {
      NVCOV(cov_);
      l2_was_long_mode_ = true;
    }
    // If the stray AVIC enable went through, the very next L2 execution
    // takes an AVIC_NOACCEL exit Xen has no handler for — Xen does not
    // support AVIC at all, on any configuration: BUG().
    if ((vmcb02_.Read(VmcbField::kVIntr) & SvmVintr::kAvicEnable) != 0) {
      NVCOV(cov_);
      san_.Report(AnomalyKind::kAssertion, "xen-nsvm-lma-pg",
                  "BUG: unexpected VMEXIT_AVIC_NOACCEL (AVIC erroneously "
                  "enabled in VMCB02 after LME && !PG state)");
      in_l2_ = false;
    }
    r.ok = true;
    r.entered_l2 = in_l2_;
    return r;
  }
  if (hw.status == VmrunStatus::kInvalidVmcb) {
    NVCOV(cov_);  // Hardware rejected VMCB02; reflect through the
                  // vulnerable injection path (bug X3 site).
    NsvmVcpuVmexitInject(SvmExitCode::kInvalid);
    r.ok = true;
    return r;
  }
  NVCOV(cov_);
  return r;
}

HandledBy XenNestedSvm::HandleL2Instruction(const GuestInsn& insn) {
  if (!in_l2_) {
    NVCOV(cov_);
    return HandledBy::kNoExit;
  }
  auto it = vmcb12_cache_.find(current_vmcb12_);
  if (it == vmcb12_cache_.end()) {
    NVCOV(cov_);
    return HandledBy::kNoExit;
  }
  const Vmcb& v12 = it->second;
  const uint32_t vec3 =
      static_cast<uint32_t>(v12.Read(VmcbField::kInterceptVec3));
  const uint32_t vec4 =
      static_cast<uint32_t>(v12.Read(VmcbField::kInterceptVec4));

  bool reflect = false;
  SvmExitCode code = SvmExitCode::kCpuid;
  switch (insn.kind) {
    case GuestInsnKind::kCpuid:
      code = SvmExitCode::kCpuid;
      if ((vec3 & SvmIntercept3::kCpuid) != 0) {
        NVCOV(cov_);
        reflect = true;
      } else {
        NVCOV(cov_);
      }
      break;
    case GuestInsnKind::kHlt:
      code = SvmExitCode::kHlt;
      if ((vec3 & SvmIntercept3::kHlt) != 0) {
        NVCOV(cov_);
        reflect = true;
      } else {
        NVCOV(cov_);
      }
      break;
    case GuestInsnKind::kIoIn:
    case GuestInsnKind::kIoOut:
      code = SvmExitCode::kIoio;
      if ((vec3 & SvmIntercept3::kIoioProt) != 0 &&
          mem_.TestBit(v12.Read(VmcbField::kIopmBasePa),
                       insn.arg0 & 0xffff)) {
        NVCOV(cov_);
        reflect = true;
      } else {
        NVCOV(cov_);
      }
      break;
    case GuestInsnKind::kRdmsr:
    case GuestInsnKind::kWrmsr: {
      code = SvmExitCode::kMsr;
      if ((vec3 & SvmIntercept3::kMsrProt) != 0) {
        NVCOV(cov_);
        const uint32_t msr = static_cast<uint32_t>(insn.arg0);
        uint64_t bit = msr < 0x2000
                           ? msr * 2
                           : (msr >= 0xc0000000 && msr < 0xc0002000
                                  ? 0x4000 + (msr - 0xc0000000) * 2
                                  : ~0ULL);
        if (bit == ~0ULL) {
          NVCOV(cov_);
          reflect = true;
        } else {
          if (insn.kind == GuestInsnKind::kWrmsr) {
            bit += 1;
          }
          reflect = mem_.TestBit(v12.Read(VmcbField::kMsrpmBasePa), bit);
        }
      } else {
        NVCOV(cov_);
      }
      break;
    }
    case GuestInsnKind::kVmcall:
      code = SvmExitCode::kVmmcall;
      if ((vec4 & SvmIntercept4::kVmmcall) != 0) {
        NVCOV(cov_);
        reflect = true;
      } else {
        NVCOV(cov_);
      }
      break;
    case GuestInsnKind::kMovToCr0:
      code = SvmExitCode::kCr0Write;
      if ((static_cast<uint32_t>(v12.Read(VmcbField::kInterceptCrWrite)) &
           1u) != 0) {
        NVCOV(cov_);
        reflect = true;
      } else {
        NVCOV(cov_);
      }
      break;
    case GuestInsnKind::kRaiseException:
      code = static_cast<SvmExitCode>(
          static_cast<uint64_t>(SvmExitCode::kExcpBase) + (insn.arg0 & 31));
      if ((static_cast<uint32_t>(v12.Read(VmcbField::kInterceptExceptions)) &
           (1u << (insn.arg0 & 31))) != 0) {
        NVCOV(cov_);
        reflect = true;
      } else {
        NVCOV(cov_);
      }
      break;
    default:
      NVCOV(cov_);
      break;
  }

  if (reflect) {
    NVCOV(cov_);
    NsvmVcpuVmexitInject(code);
    return HandledBy::kL1;
  }
  NVCOV(cov_);
  return HandledBy::kL0;
}

HandledBy XenNestedSvm::HandleL1Instruction(const GuestInsn& insn) {
  switch (insn.kind) {
    case GuestInsnKind::kWrmsr:
      if (static_cast<uint32_t>(insn.arg0) == Msr::kIa32Efer) {
        NVCOV(cov_);
        if (!config_.nested() && (insn.arg1 & Efer::kSvme) != 0) {
          NVCOV(cov_);
          return HandledBy::kL0;
        }
        l1_svme_ = (insn.arg1 & Efer::kSvme) != 0;
        return HandledBy::kL0;
      }
      NVCOV(cov_);
      return HandledBy::kL0;
    case GuestInsnKind::kVmcall:
      NVCOV(cov_);
      return HandledBy::kL0;
    default:
      NVCOV(cov_);
      return HandledBy::kNoExit;
  }
}

const size_t kXenNestedSvmCoveragePoints = __COUNTER__;

}  // namespace neco
