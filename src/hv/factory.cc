#include "src/hv/factory.h"

#include "src/hv/sim_kvm/kvm.h"
#include "src/hv/sim_vbox/vbox.h"
#include "src/hv/sim_xen/xen.h"

namespace neco {

HypervisorFactory MakeHypervisorFactory(std::string_view name) {
  if (name == "kvm") {
    return [] { return std::make_unique<SimKvm>(); };
  }
  if (name == "xen") {
    return [] { return std::make_unique<SimXen>(); };
  }
  if (name == "virtualbox" || name == "vbox") {
    return [] { return std::make_unique<SimVbox>(); };
  }
  return {};
}

}  // namespace neco
