#include "src/hv/factory.h"

#include <map>
#include <stdexcept>
#include <utility>

#include "src/hv/sim_kvm/kvm.h"
#include "src/hv/sim_vbox/vbox.h"
#include "src/hv/sim_xen/xen.h"
#include "src/support/mutex.h"
#include "src/support/thread_annotations.h"

namespace neco {
namespace {

struct RegistryState {
  Mutex mu;
  // Ordered so ListHypervisors is sorted without an extra pass.
  std::map<std::string, HypervisorFactory, std::less<>> targets
      NECO_GUARDED_BY(mu);
};

RegistryState& Registry() {
  // Leaked intentionally: out-of-tree targets may register from static
  // initializers, so the registry must survive static destruction order.
  // The built-ins are seeded here, on first use, so they are visible even
  // to registry calls made from another TU's static initializer (whose
  // order relative to this TU is unspecified).
  static RegistryState* state = [] {
    auto* s = new RegistryState;
    // No other thread can see `s` yet, but the seeding happens outside
    // RegistryState's constructor, so the analysis (correctly) demands
    // the lock for these guarded writes.
    MutexLock lock(&s->mu);
    s->targets.emplace("kvm", [] { return std::make_unique<SimKvm>(); });
    s->targets.emplace("xen", [] { return std::make_unique<SimXen>(); });
    s->targets.emplace("virtualbox",
                       [] { return std::make_unique<SimVbox>(); });
    return s;
  }();
  return *state;
}

}  // namespace

bool RegisterHypervisor(std::string name, HypervisorFactory factory) {
  if (name.empty() || !factory) {
    return false;
  }
  RegistryState& registry = Registry();
  MutexLock lock(&registry.mu);
  return registry.targets.emplace(std::move(name), std::move(factory)).second;
}

std::vector<std::string> ListHypervisors() {
  RegistryState& registry = Registry();
  MutexLock lock(&registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.targets.size());
  for (const auto& [name, factory] : registry.targets) {
    names.push_back(name);
  }
  return names;
}

HypervisorFactory FindHypervisorFactory(std::string_view name) {
  RegistryState& registry = Registry();
  MutexLock lock(&registry.mu);
  const auto it = registry.targets.find(name);
  return it == registry.targets.end() ? HypervisorFactory{} : it->second;
}

HypervisorFactory ResolveHypervisorFactory(std::string_view name) {
  if (HypervisorFactory factory = FindHypervisorFactory(name)) {
    return factory;
  }
  std::string message = "unknown hypervisor target '";
  message += name;
  message += "'; registered targets:";
  for (const std::string& target : ListHypervisors()) {
    message += ' ';
    message += target;
  }
  throw std::invalid_argument(message);
}

}  // namespace neco
