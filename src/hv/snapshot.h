// VM snapshot/restore support for the execution core.
//
// A VmSnapshot is a post-boot state capture of the guest VM: restoring it
// must leave the hypervisor bit-equivalent to a fresh StartVm(config) —
// same emulation behaviour, same coverage trace, same sanitizer reports
// for any subsequent input. Accumulated cross-execution state (coverage
// units, the sanitizer sink, host-restart counters) is deliberately NOT
// part of a snapshot: a campaign aggregates those across VM restarts, so
// a restore must leave them untouched exactly like a cold boot does.
//
// Backends attach an opaque cooked image (VmSnapshotData subclass) holding
// the expensive boot products — the container VMCS L0 builds for the L1
// guest, derived capability MSRs — so RestoreVm is a handful of
// copy-assignments instead of a recompute. A snapshot without cooked data
// (the base-class default, or one that crossed a process boundary) is
// still valid: RestoreVm degrades to StartVm(config).
//
// The serialized form is {hypervisor name, config} only. Post-boot state
// is a pure function of the configuration in every sim target, so the
// config is the complete durable representation; the cooked image is a
// per-process acceleration that never needs to travel.
#ifndef SRC_HV_SNAPSHOT_H_
#define SRC_HV_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/hv/vcpu_config.h"

namespace neco {

// Backend-opaque cooked boot state. Backends subclass this and
// dynamic_cast it back in their RestoreVm; a mismatched or absent payload
// falls back to a cold boot.
struct VmSnapshotData {
  virtual ~VmSnapshotData() = default;
};

struct VmSnapshot {
  std::string hypervisor;  // Hypervisor::name() of the capturing target.
  VcpuConfig config;       // The configuration the VM was booted with.
  // Cooked post-boot image, shared so cache entries copy cheaply. Null
  // means config-only: RestoreVm degrades to StartVm(config).
  std::shared_ptr<const VmSnapshotData> data;
};

// Durable form: [magic u32][version u8][name len u8][name bytes]
// [arch u8][features u64][vcpus u8][memory_mb u16], little-endian.
std::vector<uint8_t> SerializeVmSnapshot(const VmSnapshot& snapshot);

// Strict decode of the serialized form; returns false on a short, corrupt,
// or version-mismatched buffer. The result carries no cooked data (it is
// the StartVm-fallback form by construction).
bool DeserializeVmSnapshot(const std::vector<uint8_t>& bytes,
                           VmSnapshot* out);

}  // namespace neco

#endif  // SRC_HV_SNAPSHOT_H_
