// Sparse model of L1 guest-physical memory.
//
// The fuzz-harness VM places structures the L0 hypervisor must read from
// guest memory — MSR-load/store areas, I/O and MSR bitmaps — at addresses
// it chooses. This sparse map stands in for the guest address space: reads
// of unwritten locations return zero, as freshly allocated guest pages do.
#ifndef SRC_HV_GUEST_MEMORY_H_
#define SRC_HV_GUEST_MEMORY_H_

#include <cstdint>
#include <map>

namespace neco {

class GuestMemory {
 public:
  uint64_t Read64(uint64_t addr) const {
    auto it = words_.find(addr & ~7ULL);
    return it != words_.end() ? it->second : 0;
  }

  void Write64(uint64_t addr, uint64_t value) {
    words_[addr & ~7ULL] = value;
  }

  uint32_t Read32(uint64_t addr) const {
    const uint64_t w = Read64(addr);
    return (addr & 4) != 0 ? static_cast<uint32_t>(w >> 32)
                           : static_cast<uint32_t>(w);
  }

  void Write32(uint64_t addr, uint32_t value) {
    uint64_t w = Read64(addr);
    if ((addr & 4) != 0) {
      w = (w & 0x00000000ffffffffULL) | (static_cast<uint64_t>(value) << 32);
    } else {
      w = (w & 0xffffffff00000000ULL) | value;
    }
    Write64(addr, w);
  }

  // Bit test within a byte-addressed bitmap (I/O bitmap, MSR bitmap
  // semantics: bit N of the page starting at `base`).
  bool TestBit(uint64_t base, uint64_t bit) const {
    const uint64_t addr = base + (bit / 64) * 8;
    return (Read64(addr) >> (bit % 64)) & 1;
  }

  void SetBit(uint64_t base, uint64_t bit, bool on) {
    const uint64_t addr = base + (bit / 64) * 8;
    uint64_t w = Read64(addr);
    const uint64_t mask = 1ULL << (bit % 64);
    Write64(addr, on ? (w | mask) : (w & ~mask));
  }

  void Clear() { words_.clear(); }
  size_t touched_words() const { return words_.size(); }

 private:
  std::map<uint64_t, uint64_t> words_;
};

// Layout of one VM-entry/exit MSR area entry in guest memory (16 bytes:
// MSR index, reserved, value).
struct MsrAreaEntry {
  uint32_t index = 0;
  uint64_t value = 0;
};

inline MsrAreaEntry ReadMsrAreaEntry(const GuestMemory& mem, uint64_t base,
                                     uint64_t i) {
  MsrAreaEntry e;
  e.index = static_cast<uint32_t>(mem.Read64(base + i * 16));
  e.value = mem.Read64(base + i * 16 + 8);
  return e;
}

inline void WriteMsrAreaEntry(GuestMemory& mem, uint64_t base, uint64_t i,
                              const MsrAreaEntry& e) {
  mem.Write64(base + i * 16, e.index);
  mem.Write64(base + i * 16 + 8, e.value);
}

}  // namespace neco

#endif  // SRC_HV_GUEST_MEMORY_H_
