#include "src/hv/coverage.h"

#include <algorithm>
#include <cstring>

namespace neco {

std::vector<size_t> CoverageUnit::CoveredSet() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < hits_.size(); ++i) {
    if (hits_[i] != 0) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<uint32_t> CoverageUnit::ExtractDeltaSince(
    std::vector<uint8_t>& snapshot) const {
  snapshot.resize(hits_.size(), 0);
  std::vector<uint32_t> delta;
  const size_t n = hits_.size();
  size_t i = 0;
  // Full 8-byte chunks: one load pair and one compare skips a chunk with
  // nothing new. The memcpy loads are unaligned-safe; the loop bound
  // guarantees both reads stay inside the vectors (no word read past the
  // tail), and the remainder below finishes byte-wise.
  for (; i + sizeof(uint64_t) <= n; i += sizeof(uint64_t)) {
    uint64_t hit_word;
    uint64_t seen_word;
    std::memcpy(&hit_word, hits_.data() + i, sizeof(hit_word));
    std::memcpy(&seen_word, snapshot.data() + i, sizeof(seen_word));
    if ((hit_word & ~seen_word) == 0) {
      continue;
    }
    for (size_t j = i; j < i + sizeof(uint64_t); ++j) {
      if (hits_[j] != 0 && snapshot[j] == 0) {
        delta.push_back(static_cast<uint32_t>(j));
        snapshot[j] = 1;
      }
    }
  }
  for (; i < n; ++i) {
    if (hits_[i] != 0 && snapshot[i] == 0) {
      delta.push_back(static_cast<uint32_t>(i));
      snapshot[i] = 1;
    }
  }
  return delta;
}

std::vector<uint32_t> CoverageUnit::ExtractDeltaSinceScalar(
    std::vector<uint8_t>& snapshot) const {
  snapshot.resize(hits_.size(), 0);
  std::vector<uint32_t> delta;
  for (size_t i = 0; i < hits_.size(); ++i) {
    if (hits_[i] != 0 && snapshot[i] == 0) {
      delta.push_back(static_cast<uint32_t>(i));
      snapshot[i] = 1;
    }
  }
  return delta;
}

size_t CoverageUnit::ApplyDelta(const std::vector<uint32_t>& delta,
                                std::vector<uint8_t>& covered) {
  size_t newly_covered = 0;
  for (uint32_t point : delta) {
    if (point < covered.size() && covered[point] == 0) {
      covered[point] = 1;
      ++newly_covered;
    }
  }
  return newly_covered;
}

std::vector<size_t> CoverageIntersect(const std::vector<size_t>& a,
                                      const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<size_t> CoverageSubtract(const std::vector<size_t>& a,
                                     const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace neco
