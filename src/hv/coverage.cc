#include "src/hv/coverage.h"

#include <algorithm>

namespace neco {

std::vector<size_t> CoverageUnit::CoveredSet() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < hits_.size(); ++i) {
    if (hits_[i] != 0) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<size_t> CoverageIntersect(const std::vector<size_t>& a,
                                      const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<size_t> CoverageSubtract(const std::vector<size_t>& a,
                                     const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace neco
