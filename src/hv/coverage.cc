#include "src/hv/coverage.h"

#include <algorithm>

namespace neco {

std::vector<size_t> CoverageUnit::CoveredSet() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < hits_.size(); ++i) {
    if (hits_[i] != 0) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<uint32_t> CoverageUnit::ExtractDeltaSince(
    std::vector<uint8_t>& snapshot) const {
  snapshot.resize(hits_.size(), 0);
  std::vector<uint32_t> delta;
  for (size_t i = 0; i < hits_.size(); ++i) {
    if (hits_[i] != 0 && snapshot[i] == 0) {
      delta.push_back(static_cast<uint32_t>(i));
      snapshot[i] = 1;
    }
  }
  return delta;
}

size_t CoverageUnit::ApplyDelta(const std::vector<uint32_t>& delta,
                                std::vector<uint8_t>& covered) {
  size_t newly_covered = 0;
  for (uint32_t point : delta) {
    if (point < covered.size() && covered[point] == 0) {
      covered[point] = 1;
      ++newly_covered;
    }
  }
  return newly_covered;
}

std::vector<size_t> CoverageIntersect(const std::vector<size_t>& a,
                                      const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<size_t> CoverageSubtract(const std::vector<size_t>& a,
                                     const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace neco
