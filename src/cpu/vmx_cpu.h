// Simulated physical CPU with Intel VT-x.
//
// Models the architectural state machine of VMX operation: the VMXON
// region, memory-resident VMCS regions addressed by guest-physical address,
// the current-VMCS pointer, launch state, and the vmxon/vmclear/vmptrld/
// vmread/vmwrite/vmlaunch/vmresume/vmxoff instruction semantics, including
// VMfailInvalid/VMfailValid error reporting.
//
// Two consumers use this model:
//  * The L0 hypervisor simulators "run on" this CPU: after preparing a
//    VMCS02 they call TryEntry(), which performs the HARDWARE-profile
//    VM-entry checks and the silent post-entry fixups.
//  * The validator's hardware-as-oracle loop (paper Section 3.4) uses the
//    instruction interface to compare its spec-model predictions against
//    what "silicon" actually does.
#ifndef SRC_CPU_VMX_CPU_H_
#define SRC_CPU_VMX_CPU_H_

#include <cstdint>
#include <map>
#include <optional>

#include "src/arch/vmcs.h"
#include "src/arch/vmx_bits.h"
#include "src/arch/vmx_caps.h"
#include "src/cpu/entry_check.h"
#include "src/cpu/vmx_checks.h"

namespace neco {

// Flag-register outcome of a VMX instruction (SDM 31.2).
enum class VmxFlag : uint8_t {
  kSucceed,      // CF=0, ZF=0.
  kFailInvalid,  // CF=1: no current VMCS or bad pointer.
  kFailValid,    // ZF=1: error number stored in VM-instruction-error.
};

struct VmxInsnResult {
  VmxFlag flag = VmxFlag::kSucceed;
  VmxError error = VmxError::kNone;

  bool ok() const { return flag == VmxFlag::kSucceed; }

  static VmxInsnResult Ok() { return {}; }
  static VmxInsnResult Invalid() { return {VmxFlag::kFailInvalid, VmxError::kNone}; }
  static VmxInsnResult Valid(VmxError e) { return {VmxFlag::kFailValid, e}; }
};

// Outcome of a VM-entry attempt.
enum class EntryStatus : uint8_t {
  kEntered,            // Guest is running.
  kVmFailValid,        // Control/host-state check failed (VMfailValid).
  kEntryFailGuest,     // Guest-state check failed (VM-exit 33, no entry).
  kNotReady,           // No current VMCS / not in VMX operation.
  kWrongLaunchState,   // vmlaunch on launched VMCS or vmresume on clear.
};

struct EntryOutcome {
  EntryStatus status = EntryStatus::kNotReady;
  CheckId failed_check = CheckId::kNone;
  VmxError error = VmxError::kNone;

  bool entered() const { return status == EntryStatus::kEntered; }
};

class VmxCpu {
 public:
  explicit VmxCpu(VmxCapabilities caps = HostVmxCapabilities());

  const VmxCapabilities& caps() const { return caps_; }
  void set_caps(VmxCapabilities caps) { caps_ = std::move(caps); }

  // --- Instruction semantics (guest-physical addressed) ---
  VmxInsnResult Vmxon(uint64_t pa);
  VmxInsnResult Vmxoff();
  VmxInsnResult Vmclear(uint64_t pa);
  VmxInsnResult Vmptrld(uint64_t pa);
  VmxInsnResult Vmwrite(VmcsField field, uint64_t value);
  VmxInsnResult Vmread(VmcsField field, uint64_t* value_out);
  EntryOutcome Vmlaunch();
  EntryOutcome Vmresume();

  // --- Direct (hypervisor-internal) entry: what KVM's asm stub does with
  // a loaded hardware VMCS. Checks + fixups applied to `vmcs` in place. ---
  EntryOutcome TryEntry(Vmcs& vmcs, bool launch);

  bool in_vmx_operation() const { return vmxon_ptr_.has_value(); }
  uint64_t current_vmcs_ptr() const { return current_ptr_.value_or(~0ULL); }
  Vmcs* current_vmcs();

  // Region revision override, letting harnesses model a guest writing a
  // wrong revision identifier into the VMCS region header.
  void SetRegionRevision(uint64_t pa, uint32_t revision);

  // Test/inspection hook: direct access to a memory-resident VMCS region.
  Vmcs* RegionAt(uint64_t pa);

  void Reset();

 private:
  struct Region {
    uint32_t revision = Vmcs::kRevisionId;
    Vmcs vmcs;
  };

  VmxCapabilities caps_;
  std::optional<uint64_t> vmxon_ptr_;
  std::optional<uint64_t> current_ptr_;
  std::map<uint64_t, Region> regions_;
};

}  // namespace neco

#endif  // SRC_CPU_VMX_CPU_H_
