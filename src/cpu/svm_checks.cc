#include "src/cpu/svm_checks.h"

#include "src/arch/vmx_bits.h"
#include "src/support/bits.h"

namespace neco {
namespace {

bool Report(ViolationList& out, const SvmCheckProfile& profile, CheckId id) {
  out.push_back(id);
  return !profile.stop_at_first;
}

}  // namespace

ViolationList CheckVmrun(const Vmcb& v, const SvmCaps& caps,
                         const SvmCheckProfile& profile) {
  ViolationList out;
  const uint64_t efer = v.Read(VmcbField::kEfer);
  const uint64_t cr0 = v.Read(VmcbField::kCr0);
  const uint64_t cr3 = v.Read(VmcbField::kCr3);
  const uint64_t cr4 = v.Read(VmcbField::kCr4);

  if ((efer & Efer::kSvme) == 0) {
    if (!Report(out, profile, CheckId::kSvmEferSvme)) return out;
  }
  if ((efer & Efer::kReservedMask) != 0) {
    if (!Report(out, profile, CheckId::kSvmEferMbz)) return out;
  }
  if ((cr0 & Cr0::kCd) == 0 && (cr0 & Cr0::kNw) != 0) {
    if (!Report(out, profile, CheckId::kSvmCr0CdNw)) return out;
  }
  if ((cr0 >> 32) != 0) {
    if (!Report(out, profile, CheckId::kSvmCr0High32)) return out;
  }
  if (cr3 > caps.MaxPhysicalAddress()) {
    if (!Report(out, profile, CheckId::kSvmCr3Mbz)) return out;
  }
  if ((cr4 & Cr4::kReservedMask) != 0 || (cr4 & Cr4::kVmxe) != 0) {
    // CR4.VMXE is Intel-only; it is MBZ on AMD parts.
    if (!Report(out, profile, CheckId::kSvmCr4Mbz)) return out;
  }

  const bool lme = (efer & Efer::kLme) != 0;
  const bool pg = (cr0 & Cr0::kPg) != 0;
  const bool pe = (cr0 & Cr0::kPe) != 0;
  const bool pae = (cr4 & Cr4::kPae) != 0;
  if (lme && pg && !pae) {
    if (!Report(out, profile, CheckId::kSvmLongModeNeedsPae)) return out;
  }
  if (lme && pg && !pe) {
    if (!Report(out, profile, CheckId::kSvmLongModeNeedsPe)) return out;
  }
  if (lme && pg && pae) {
    const uint16_t cs_attrib =
        static_cast<uint16_t>(v.Read(VmcbField::kCsAttrib));
    // VMCB attrib layout: bit 9 = L, bit 10 = D (compressed AR format).
    const bool cs_l = TestBit(cs_attrib, 9);
    const bool cs_d = TestBit(cs_attrib, 10);
    if (cs_l && cs_d) {
      if (!Report(out, profile, CheckId::kSvmLongModeCsLandD)) return out;
    }
  }
  // The ambiguous corner: LME set while paging is off. The APM permits the
  // state without defining VMRUN semantics; a strict reading rejects it.
  if (profile.reject_lme_without_pg && lme && !pg) {
    if (!Report(out, profile, CheckId::kSvmLmeWithoutPg)) return out;
  }

  if ((v.Read(VmcbField::kDr6) >> 32) != 0) {
    if (!Report(out, profile, CheckId::kSvmDr6High32)) return out;
  }
  if ((v.Read(VmcbField::kDr7) >> 32) != 0) {
    if (!Report(out, profile, CheckId::kSvmDr7High32)) return out;
  }
  if (v.Read(VmcbField::kGuestAsid) == 0) {
    if (!Report(out, profile, CheckId::kSvmAsidZero)) return out;
  }
  if ((v.Read(VmcbField::kInterceptVec4) & SvmIntercept4::kVmrun) == 0) {
    if (!Report(out, profile, CheckId::kSvmVmrunInterceptClear)) return out;
  }
  // IOPM spans 12 KiB, MSRPM 8 KiB; both must lie inside the physical
  // address space.
  if (v.Read(VmcbField::kIopmBasePa) + 0x3000 > caps.MaxPhysicalAddress()) {
    if (!Report(out, profile, CheckId::kSvmIopmAddressRange)) return out;
  }
  if (v.Read(VmcbField::kMsrpmBasePa) + 0x2000 > caps.MaxPhysicalAddress()) {
    if (!Report(out, profile, CheckId::kSvmMsrpmAddressRange)) return out;
  }
  if ((v.Read(VmcbField::kNestedCtl) & 1) != 0 &&
      v.Read(VmcbField::kNestedCr3) > caps.MaxPhysicalAddress()) {
    if (!Report(out, profile, CheckId::kSvmNestedCr3Mbz)) return out;
  }

  const uint64_t event_inj = v.Read(VmcbField::kEventInj);
  if (TestBit(event_inj, 31)) {  // V (valid) bit.
    const uint64_t type = ExtractBits(event_inj, 8, 3);
    const uint64_t vector = event_inj & 0xff;
    if (type == 1 || type > 4) {  // Reserved event types.
      if (!Report(out, profile, CheckId::kSvmEventInjValidity)) return out;
    }
    if (type == 2 && vector != 2) {  // NMI must use vector 2.
      if (!Report(out, profile, CheckId::kSvmEventInjValidity)) return out;
    }
    if (type == 3 && vector > 31) {  // Hardware exception vectors.
      if (!Report(out, profile, CheckId::kSvmEventInjValidity)) return out;
    }
  }
  return out;
}

}  // namespace neco
