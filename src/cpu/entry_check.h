// VM-entry / VMRUN consistency-check identities.
//
// Every architectural check the simulated physical CPU (and the validator's
// specification model) can perform has a stable identity. The hardware
// oracle compares *which* check fired against the validator's prediction;
// mismatches are the "undocumented behaviour" surface the paper's
// hardware-as-oracle loop exists to discover (Section 3.4).
#ifndef SRC_CPU_ENTRY_CHECK_H_
#define SRC_CPU_ENTRY_CHECK_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace neco {

enum class CheckId : uint16_t {
  kNone = 0,
  // --- VM-execution control checks (SDM 27.2.1) ---
  kPinBasedReserved,
  kProcBasedReserved,
  kProc2Reserved,
  kCr3TargetCountRange,
  kIoBitmapAlignment,
  kMsrBitmapAlignment,
  kTprShadowVirtApicPage,
  kTprThresholdReserved,
  kTprThresholdVsVtpr,
  kNmiCtlConsistency,
  kVirtualNmiWindowConsistency,
  kVirtX2apicExclusive,
  kVirtIntrDeliveryNeedsExtInt,
  kPostedIntrRequirements,
  kPostedIntrDescAlignment,
  kVpidNonZero,
  kEptpMemType,
  kEptpWalkLength,
  kEptpReservedBits,
  kEptpAccessDirty,
  kEptpAddressRange,
  kUnrestrictedGuestNeedsEpt,
  kPmlRequirements,
  kVmfuncRequirements,
  kVmcsShadowBitmapAlignment,
  kExitCtlReserved,
  kEntryCtlReserved,
  kExitMsrStoreArea,
  kExitMsrLoadArea,
  kEntryMsrLoadArea,
  kEntryMsrLoadCountRange,
  kEntryIntrInfoType,
  kEntryIntrInfoVector,
  kEntryIntrInfoErrorCode,
  kEntryInstructionLength,
  kPreemptionTimerSaveNeedsEnable,
  // --- Host-state checks (SDM 27.2.2) ---
  kHostCr0Fixed,
  kHostCr4Fixed,
  kHostCr3Range,
  kHostCanonicalBase,
  kHostSysenterCanonical,
  kHostSelectorRplTi,
  kHostCsNotNull,
  kHostTrNotNull,
  kHostSsNotNull,
  kHostAddrSpaceConsistency,
  kHostEferReserved,
  kHostEferLmaLme,
  kHostPatValidity,
  kHostRipCanonical,
  // --- Guest-state checks (SDM 27.3.1) ---
  kGuestCr0Fixed,
  kGuestCr0PgWithoutPe,
  kGuestCr0NwWithoutCd,
  kGuestCr0Reserved,
  kGuestCr4Fixed,
  kGuestCr4Reserved,
  kGuestCr3Range,
  kGuestCr4PaeForIa32e,     // Documented; real CPUs do not enforce (quirk).
  kGuestPcideWithoutIa32e,
  kGuestDebugctlReserved,
  kGuestDr7High32,
  kGuestEferReserved,
  kGuestEferLmaVsEntryCtl,
  kGuestEferLmaVsLme,
  kGuestPatValidity,
  kGuestRflagsReserved,
  kGuestRflagsVmInIa32e,
  kGuestRflagsIfForExtInt,
  kGuestV86SegmentInvariants,
  kGuestTrUsable,
  kGuestTrType,
  kGuestTrTiFlag,
  kGuestLdtrType,
  kGuestCsType,
  kGuestCsDplVsSs,
  kGuestCsLAndDb,
  kGuestSsType,
  kGuestSsRplVsCs,
  kGuestSsDpl,
  kGuestDataSegType,
  kGuestDataSegDpl,
  kGuestSegNullUsable,
  kGuestSegBaseCanonical,
  kGuestSegBaseHigh32,
  kGuestSegLimitGranularity,
  kGuestSegArReserved,
  kGuestGdtrIdtrCanonical,
  kGuestGdtrIdtrLimit,
  kGuestRipHigh32,
  kGuestRipCanonical,
  kGuestActivityStateRange,
  kGuestActivityStateSupported,
  kGuestActivityVsInterruptibility,
  kGuestActivityVsEventInjection,
  kGuestInterruptibilityReserved,
  kGuestStiMovssExclusive,
  kGuestStiWithIfClear,
  kGuestPendingDbgReserved,
  kGuestPendingDbgBsVsTf,
  kGuestVmcsLinkPointer,
  kGuestPdpteReserved,
  // --- AMD VMRUN consistency checks (APM 15.5.1) ---
  kSvmEferSvme,
  kSvmCr0CdNw,
  kSvmCr0High32,
  kSvmCr3Mbz,
  kSvmCr4Mbz,
  kSvmEferMbz,
  kSvmLongModeNeedsPae,     // EFER.LME && CR0.PG && !CR4.PAE.
  kSvmLongModeNeedsPe,      // EFER.LME && CR0.PG && !CR0.PE.
  kSvmLongModeCsLandD,      // Long mode CS.L && CS.D both set.
  kSvmDr6High32,
  kSvmDr7High32,
  kSvmAsidZero,
  kSvmVmrunInterceptClear,
  kSvmIopmAddressRange,
  kSvmMsrpmAddressRange,
  kSvmEventInjValidity,
  kSvmNestedCr3Mbz,
  kSvmLmeWithoutPg,         // Ambiguous per APM; real CPUs accept (quirk).
  kCount,
};

std::string_view CheckIdName(CheckId id);

// Whether failing this check produces an early VMfail (bad control/host
// state) or a VM-entry failure exit (bad guest state). Mirrors the SDM's
// distinction between control/host checks (VMfailValid) and guest checks
// (VM-exit 33).
enum class CheckClass : uint8_t {
  kControl,
  kHostState,
  kGuestState,
  kSvm,
};

CheckClass ClassOfCheck(CheckId id);

// Outcome of a hardware entry attempt or a validator prediction.
struct EntryCheckResult {
  bool ok = true;
  CheckId failed_check = CheckId::kNone;

  static EntryCheckResult Ok() { return {}; }
  static EntryCheckResult Fail(CheckId id) { return {false, id}; }
};

// Ordered list of violations (the validator reports all, hardware reports
// the first in check order).
using ViolationList = std::vector<CheckId>;

}  // namespace neco

#endif  // SRC_CPU_ENTRY_CHECK_H_
