#include "src/cpu/svm_cpu.h"

namespace neco {

VmrunOutcome SvmCpu::Vmrun(Vmcb& vmcb) {
  VmrunOutcome outcome;
  if (!svme_) {
    outcome.status = VmrunStatus::kSvmeDisabled;
    return outcome;
  }
  const ViolationList violations =
      CheckVmrun(vmcb, caps_, SvmCheckProfile::Hardware());
  if (!violations.empty()) {
    outcome.status = VmrunStatus::kInvalidVmcb;
    outcome.failed_check = violations.front();
    vmcb.Write(VmcbField::kExitCode,
               static_cast<uint64_t>(SvmExitCode::kInvalid));
    return outcome;
  }
  outcome.status = VmrunStatus::kEntered;
  return outcome;
}

}  // namespace neco
