// The architectural VM-entry check algorithm (Intel SDM chapter 27).
//
// Both the simulated physical CPU and the validator's specification model
// run this algorithm, but under different *profiles*:
//
//  * The SPEC profile enforces everything the manual documents. This is
//    what a Bochs-derived validator implements.
//  * The HARDWARE profile reflects what real silicon does, including the
//    documented-but-unenforced constraints the paper exploits (e.g. real
//    CPUs silently tolerate CR4.PAE=0 with IA-32e mode — the root cause of
//    CVE-2023-30456) and silent state fixups applied on successful entry.
//
// The delta between the profiles is the "undocumented behaviour" surface
// that NecoFuzz's hardware-as-oracle loop (Section 3.4) detects and learns.
#ifndef SRC_CPU_VMX_CHECKS_H_
#define SRC_CPU_VMX_CHECKS_H_

#include "src/arch/vmcs.h"
#include "src/arch/vmx_caps.h"
#include "src/cpu/entry_check.h"

namespace neco {

struct VmxCheckProfile {
  // Enforce the documented "CR4.PAE must be 1 when IA-32e mode guest"
  // consistency check. Real CPUs skip it; the spec requires it.
  bool enforce_cr4_pae_for_ia32e = true;
  // Enforce strict pending-debug-exception BS-vs-TF coupling.
  bool enforce_pending_dbg_bs_vs_tf = true;
  // Enforce TPR-threshold-vs-VTPR ordering (subtle, often mis-modelled).
  bool enforce_tpr_threshold_vs_vtpr = true;
  // Stop at the first violation (hardware) or collect all (validator).
  bool stop_at_first = false;

  static VmxCheckProfile Spec() { return VmxCheckProfile{}; }

  static VmxCheckProfile Hardware() {
    VmxCheckProfile p;
    p.enforce_cr4_pae_for_ia32e = false;   // Silicon tolerates it.
    p.enforce_pending_dbg_bs_vs_tf = true;
    p.enforce_tpr_threshold_vs_vtpr = true;
    p.stop_at_first = true;
    return p;
  }
};

// Individual check groups, mirroring the three Bochs routines the paper
// adapts: VMenterLoadCheckVmControls, VMenterLoadCheckHostState, and
// VMenterLoadCheckGuestState (Section 4.3).
void CheckVmControls(const Vmcs& v, const VmxCapabilities& caps,
                     const VmxCheckProfile& profile, ViolationList& out);
void CheckHostState(const Vmcs& v, const VmxCapabilities& caps,
                    const VmxCheckProfile& profile, ViolationList& out);
void CheckGuestState(const Vmcs& v, const VmxCapabilities& caps,
                     const VmxCheckProfile& profile, ViolationList& out);

// Full entry check in architectural order (controls, host, guest).
ViolationList CheckVmxEntry(const Vmcs& v, const VmxCapabilities& caps,
                            const VmxCheckProfile& profile);

// Silent fixups hardware applies to guest state on a *successful* entry
// (visible on subsequent vmread). Identities are enumerated so the
// validator's quirk table can learn them one by one.
enum class VmxFixupId : uint8_t {
  kUnusableSegArClear,       // Unusable segments read back AR == UNUSABLE.
  kCsAccessedBitSet,         // CS type accessed bit is forced set.
  kPendingDbgReservedClear,  // Reserved pending-debug bits read back as 0.
  kCount,
};

// Apply one fixup in place.
void ApplyVmxFixup(VmxFixupId id, Vmcs& v);

// Apply the full hardware fixup set (what real silicon does).
void ApplyHardwareVmxFixups(Vmcs& v);

}  // namespace neco

#endif  // SRC_CPU_VMX_CHECKS_H_
