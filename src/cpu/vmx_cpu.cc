#include "src/cpu/vmx_cpu.h"

#include "src/support/bits.h"

namespace neco {

VmxCpu::VmxCpu(VmxCapabilities caps) : caps_(std::move(caps)) {}

void VmxCpu::Reset() {
  vmxon_ptr_.reset();
  current_ptr_.reset();
  regions_.clear();
}

VmxInsnResult VmxCpu::Vmxon(uint64_t pa) {
  if (vmxon_ptr_.has_value()) {
    return VmxInsnResult::Valid(VmxError::kVmxonInRoot);
  }
  if (!IsAligned(pa, 12) || pa == 0 || pa > caps_.MaxPhysicalAddress()) {
    return VmxInsnResult::Invalid();
  }
  vmxon_ptr_ = pa;
  current_ptr_.reset();
  return VmxInsnResult::Ok();
}

VmxInsnResult VmxCpu::Vmxoff() {
  if (!vmxon_ptr_.has_value()) {
    return VmxInsnResult::Invalid();
  }
  vmxon_ptr_.reset();
  current_ptr_.reset();
  return VmxInsnResult::Ok();
}

VmxInsnResult VmxCpu::Vmclear(uint64_t pa) {
  if (!vmxon_ptr_.has_value()) {
    return VmxInsnResult::Invalid();
  }
  if (!IsAligned(pa, 12) || pa == 0 || pa > caps_.MaxPhysicalAddress()) {
    return VmxInsnResult::Valid(VmxError::kVmclearInvalidAddress);
  }
  if (pa == *vmxon_ptr_) {
    return VmxInsnResult::Valid(VmxError::kVmclearVmxonPointer);
  }
  Region& region = regions_[pa];  // Creates the region on first use.
  region.vmcs.set_launch_state(Vmcs::LaunchState::kClear);
  if (current_ptr_ == pa) {
    current_ptr_.reset();
  }
  return VmxInsnResult::Ok();
}

VmxInsnResult VmxCpu::Vmptrld(uint64_t pa) {
  if (!vmxon_ptr_.has_value()) {
    return VmxInsnResult::Invalid();
  }
  if (!IsAligned(pa, 12) || pa == 0 || pa > caps_.MaxPhysicalAddress()) {
    return VmxInsnResult::Valid(VmxError::kVmptrldInvalidAddress);
  }
  if (pa == *vmxon_ptr_) {
    return VmxInsnResult::Valid(VmxError::kVmptrldVmxonPointer);
  }
  auto it = regions_.find(pa);
  if (it == regions_.end()) {
    // A region never vmcleared reads as an uninitialized header.
    regions_[pa];  // Materialize with default revision.
    it = regions_.find(pa);
  }
  if (it->second.revision != caps_.revision_id) {
    return VmxInsnResult::Valid(VmxError::kVmptrldWrongRevision);
  }
  current_ptr_ = pa;
  return VmxInsnResult::Ok();
}

Vmcs* VmxCpu::current_vmcs() {
  if (!current_ptr_.has_value()) {
    return nullptr;
  }
  auto it = regions_.find(*current_ptr_);
  return it != regions_.end() ? &it->second.vmcs : nullptr;
}

VmxInsnResult VmxCpu::Vmwrite(VmcsField field, uint64_t value) {
  Vmcs* vmcs = current_vmcs();
  if (vmcs == nullptr) {
    return VmxInsnResult::Invalid();
  }
  if (FindVmcsField(field) == nullptr) {
    return VmxInsnResult::Valid(VmxError::kVmreadVmwriteInvalidField);
  }
  if (IsReadOnlyField(field)) {
    return VmxInsnResult::Valid(VmxError::kVmwriteReadOnlyField);
  }
  vmcs->Write(field, value);
  return VmxInsnResult::Ok();
}

VmxInsnResult VmxCpu::Vmread(VmcsField field, uint64_t* value_out) {
  Vmcs* vmcs = current_vmcs();
  if (vmcs == nullptr) {
    return VmxInsnResult::Invalid();
  }
  if (FindVmcsField(field) == nullptr) {
    return VmxInsnResult::Valid(VmxError::kVmreadVmwriteInvalidField);
  }
  if (value_out != nullptr) {
    *value_out = vmcs->Read(field);
  }
  return VmxInsnResult::Ok();
}

EntryOutcome VmxCpu::TryEntry(Vmcs& vmcs, bool launch) {
  EntryOutcome outcome;
  if (launch && vmcs.launch_state() != Vmcs::LaunchState::kClear) {
    outcome.status = EntryStatus::kWrongLaunchState;
    outcome.error = VmxError::kVmlaunchNonClear;
    return outcome;
  }
  if (!launch && vmcs.launch_state() != Vmcs::LaunchState::kLaunched) {
    outcome.status = EntryStatus::kWrongLaunchState;
    outcome.error = VmxError::kVmresumeNonLaunched;
    return outcome;
  }

  const VmxCheckProfile hw = VmxCheckProfile::Hardware();
  ViolationList violations;
  CheckVmControls(vmcs, caps_, hw, violations);
  if (!violations.empty()) {
    outcome.status = EntryStatus::kVmFailValid;
    outcome.failed_check = violations.front();
    outcome.error = VmxError::kEntryInvalidControls;
    return outcome;
  }
  CheckHostState(vmcs, caps_, hw, violations);
  if (!violations.empty()) {
    outcome.status = EntryStatus::kVmFailValid;
    outcome.failed_check = violations.front();
    outcome.error = VmxError::kEntryInvalidHostState;
    return outcome;
  }
  CheckGuestState(vmcs, caps_, hw, violations);
  if (!violations.empty()) {
    // Entry began, then failed: VM-exit 33 with the guest state untouched.
    outcome.status = EntryStatus::kEntryFailGuest;
    outcome.failed_check = violations.front();
    vmcs.Write(VmcsField::kVmExitReason,
               static_cast<uint32_t>(ExitReason::kInvalidGuestState) |
                   kExitReasonFailedEntryBit);
    return outcome;
  }

  // Success: hardware silently normalizes some guest fields.
  ApplyHardwareVmxFixups(vmcs);
  if (launch) {
    vmcs.set_launch_state(Vmcs::LaunchState::kLaunched);
  }
  outcome.status = EntryStatus::kEntered;
  return outcome;
}

EntryOutcome VmxCpu::Vmlaunch() {
  EntryOutcome outcome;
  Vmcs* vmcs = current_vmcs();
  if (!vmxon_ptr_.has_value() || vmcs == nullptr) {
    outcome.status = EntryStatus::kNotReady;
    return outcome;
  }
  return TryEntry(*vmcs, /*launch=*/true);
}

EntryOutcome VmxCpu::Vmresume() {
  EntryOutcome outcome;
  Vmcs* vmcs = current_vmcs();
  if (!vmxon_ptr_.has_value() || vmcs == nullptr) {
    outcome.status = EntryStatus::kNotReady;
    return outcome;
  }
  return TryEntry(*vmcs, /*launch=*/false);
}

void VmxCpu::SetRegionRevision(uint64_t pa, uint32_t revision) {
  regions_[pa].revision = revision;
}

Vmcs* VmxCpu::RegionAt(uint64_t pa) {
  auto it = regions_.find(pa);
  return it != regions_.end() ? &it->second.vmcs : nullptr;
}

}  // namespace neco
