#include "src/cpu/entry_check.h"

namespace neco {

std::string_view CheckIdName(CheckId id) {
  switch (id) {
    case CheckId::kNone: return "none";
    case CheckId::kPinBasedReserved: return "pin_based_reserved";
    case CheckId::kProcBasedReserved: return "proc_based_reserved";
    case CheckId::kProc2Reserved: return "proc2_reserved";
    case CheckId::kCr3TargetCountRange: return "cr3_target_count_range";
    case CheckId::kIoBitmapAlignment: return "io_bitmap_alignment";
    case CheckId::kMsrBitmapAlignment: return "msr_bitmap_alignment";
    case CheckId::kTprShadowVirtApicPage: return "tpr_shadow_virt_apic_page";
    case CheckId::kTprThresholdReserved: return "tpr_threshold_reserved";
    case CheckId::kTprThresholdVsVtpr: return "tpr_threshold_vs_vtpr";
    case CheckId::kNmiCtlConsistency: return "nmi_ctl_consistency";
    case CheckId::kVirtualNmiWindowConsistency:
      return "virtual_nmi_window_consistency";
    case CheckId::kVirtX2apicExclusive: return "virt_x2apic_exclusive";
    case CheckId::kVirtIntrDeliveryNeedsExtInt:
      return "virt_intr_delivery_needs_ext_int";
    case CheckId::kPostedIntrRequirements: return "posted_intr_requirements";
    case CheckId::kPostedIntrDescAlignment:
      return "posted_intr_desc_alignment";
    case CheckId::kVpidNonZero: return "vpid_non_zero";
    case CheckId::kEptpMemType: return "eptp_mem_type";
    case CheckId::kEptpWalkLength: return "eptp_walk_length";
    case CheckId::kEptpReservedBits: return "eptp_reserved_bits";
    case CheckId::kEptpAccessDirty: return "eptp_access_dirty";
    case CheckId::kEptpAddressRange: return "eptp_address_range";
    case CheckId::kUnrestrictedGuestNeedsEpt:
      return "unrestricted_guest_needs_ept";
    case CheckId::kPmlRequirements: return "pml_requirements";
    case CheckId::kVmfuncRequirements: return "vmfunc_requirements";
    case CheckId::kVmcsShadowBitmapAlignment:
      return "vmcs_shadow_bitmap_alignment";
    case CheckId::kExitCtlReserved: return "exit_ctl_reserved";
    case CheckId::kEntryCtlReserved: return "entry_ctl_reserved";
    case CheckId::kExitMsrStoreArea: return "exit_msr_store_area";
    case CheckId::kExitMsrLoadArea: return "exit_msr_load_area";
    case CheckId::kEntryMsrLoadArea: return "entry_msr_load_area";
    case CheckId::kEntryMsrLoadCountRange: return "entry_msr_load_count_range";
    case CheckId::kEntryIntrInfoType: return "entry_intr_info_type";
    case CheckId::kEntryIntrInfoVector: return "entry_intr_info_vector";
    case CheckId::kEntryIntrInfoErrorCode: return "entry_intr_info_error_code";
    case CheckId::kEntryInstructionLength: return "entry_instruction_length";
    case CheckId::kPreemptionTimerSaveNeedsEnable:
      return "preemption_timer_save_needs_enable";
    case CheckId::kHostCr0Fixed: return "host_cr0_fixed";
    case CheckId::kHostCr4Fixed: return "host_cr4_fixed";
    case CheckId::kHostCr3Range: return "host_cr3_range";
    case CheckId::kHostCanonicalBase: return "host_canonical_base";
    case CheckId::kHostSysenterCanonical: return "host_sysenter_canonical";
    case CheckId::kHostSelectorRplTi: return "host_selector_rpl_ti";
    case CheckId::kHostCsNotNull: return "host_cs_not_null";
    case CheckId::kHostTrNotNull: return "host_tr_not_null";
    case CheckId::kHostSsNotNull: return "host_ss_not_null";
    case CheckId::kHostAddrSpaceConsistency:
      return "host_addr_space_consistency";
    case CheckId::kHostEferReserved: return "host_efer_reserved";
    case CheckId::kHostEferLmaLme: return "host_efer_lma_lme";
    case CheckId::kHostPatValidity: return "host_pat_validity";
    case CheckId::kHostRipCanonical: return "host_rip_canonical";
    case CheckId::kGuestCr0Fixed: return "guest_cr0_fixed";
    case CheckId::kGuestCr0PgWithoutPe: return "guest_cr0_pg_without_pe";
    case CheckId::kGuestCr0NwWithoutCd: return "guest_cr0_nw_without_cd";
    case CheckId::kGuestCr0Reserved: return "guest_cr0_reserved";
    case CheckId::kGuestCr4Fixed: return "guest_cr4_fixed";
    case CheckId::kGuestCr4Reserved: return "guest_cr4_reserved";
    case CheckId::kGuestCr3Range: return "guest_cr3_range";
    case CheckId::kGuestCr4PaeForIa32e: return "guest_cr4_pae_for_ia32e";
    case CheckId::kGuestPcideWithoutIa32e: return "guest_pcide_without_ia32e";
    case CheckId::kGuestDebugctlReserved: return "guest_debugctl_reserved";
    case CheckId::kGuestDr7High32: return "guest_dr7_high32";
    case CheckId::kGuestEferReserved: return "guest_efer_reserved";
    case CheckId::kGuestEferLmaVsEntryCtl:
      return "guest_efer_lma_vs_entry_ctl";
    case CheckId::kGuestEferLmaVsLme: return "guest_efer_lma_vs_lme";
    case CheckId::kGuestPatValidity: return "guest_pat_validity";
    case CheckId::kGuestRflagsReserved: return "guest_rflags_reserved";
    case CheckId::kGuestRflagsVmInIa32e: return "guest_rflags_vm_in_ia32e";
    case CheckId::kGuestRflagsIfForExtInt:
      return "guest_rflags_if_for_ext_int";
    case CheckId::kGuestV86SegmentInvariants:
      return "guest_v86_segment_invariants";
    case CheckId::kGuestTrUsable: return "guest_tr_usable";
    case CheckId::kGuestTrType: return "guest_tr_type";
    case CheckId::kGuestTrTiFlag: return "guest_tr_ti_flag";
    case CheckId::kGuestLdtrType: return "guest_ldtr_type";
    case CheckId::kGuestCsType: return "guest_cs_type";
    case CheckId::kGuestCsDplVsSs: return "guest_cs_dpl_vs_ss";
    case CheckId::kGuestCsLAndDb: return "guest_cs_l_and_db";
    case CheckId::kGuestSsType: return "guest_ss_type";
    case CheckId::kGuestSsRplVsCs: return "guest_ss_rpl_vs_cs";
    case CheckId::kGuestSsDpl: return "guest_ss_dpl";
    case CheckId::kGuestDataSegType: return "guest_data_seg_type";
    case CheckId::kGuestDataSegDpl: return "guest_data_seg_dpl";
    case CheckId::kGuestSegNullUsable: return "guest_seg_null_usable";
    case CheckId::kGuestSegBaseCanonical: return "guest_seg_base_canonical";
    case CheckId::kGuestSegBaseHigh32: return "guest_seg_base_high32";
    case CheckId::kGuestSegLimitGranularity:
      return "guest_seg_limit_granularity";
    case CheckId::kGuestSegArReserved: return "guest_seg_ar_reserved";
    case CheckId::kGuestGdtrIdtrCanonical: return "guest_gdtr_idtr_canonical";
    case CheckId::kGuestGdtrIdtrLimit: return "guest_gdtr_idtr_limit";
    case CheckId::kGuestRipHigh32: return "guest_rip_high32";
    case CheckId::kGuestRipCanonical: return "guest_rip_canonical";
    case CheckId::kGuestActivityStateRange:
      return "guest_activity_state_range";
    case CheckId::kGuestActivityStateSupported:
      return "guest_activity_state_supported";
    case CheckId::kGuestActivityVsInterruptibility:
      return "guest_activity_vs_interruptibility";
    case CheckId::kGuestActivityVsEventInjection:
      return "guest_activity_vs_event_injection";
    case CheckId::kGuestInterruptibilityReserved:
      return "guest_interruptibility_reserved";
    case CheckId::kGuestStiMovssExclusive:
      return "guest_sti_movss_exclusive";
    case CheckId::kGuestStiWithIfClear: return "guest_sti_with_if_clear";
    case CheckId::kGuestPendingDbgReserved:
      return "guest_pending_dbg_reserved";
    case CheckId::kGuestPendingDbgBsVsTf: return "guest_pending_dbg_bs_vs_tf";
    case CheckId::kGuestVmcsLinkPointer: return "guest_vmcs_link_pointer";
    case CheckId::kGuestPdpteReserved: return "guest_pdpte_reserved";
    case CheckId::kSvmEferSvme: return "svm_efer_svme";
    case CheckId::kSvmCr0CdNw: return "svm_cr0_cd_nw";
    case CheckId::kSvmCr0High32: return "svm_cr0_high32";
    case CheckId::kSvmCr3Mbz: return "svm_cr3_mbz";
    case CheckId::kSvmCr4Mbz: return "svm_cr4_mbz";
    case CheckId::kSvmEferMbz: return "svm_efer_mbz";
    case CheckId::kSvmLongModeNeedsPae: return "svm_long_mode_needs_pae";
    case CheckId::kSvmLongModeNeedsPe: return "svm_long_mode_needs_pe";
    case CheckId::kSvmLongModeCsLandD: return "svm_long_mode_cs_l_and_d";
    case CheckId::kSvmDr6High32: return "svm_dr6_high32";
    case CheckId::kSvmDr7High32: return "svm_dr7_high32";
    case CheckId::kSvmAsidZero: return "svm_asid_zero";
    case CheckId::kSvmVmrunInterceptClear: return "svm_vmrun_intercept_clear";
    case CheckId::kSvmIopmAddressRange: return "svm_iopm_address_range";
    case CheckId::kSvmMsrpmAddressRange: return "svm_msrpm_address_range";
    case CheckId::kSvmEventInjValidity: return "svm_event_inj_validity";
    case CheckId::kSvmNestedCr3Mbz: return "svm_nested_cr3_mbz";
    case CheckId::kSvmLmeWithoutPg: return "svm_lme_without_pg";
    case CheckId::kCount: return "<count>";
  }
  return "<unknown>";
}

CheckClass ClassOfCheck(CheckId id) {
  const auto raw = static_cast<uint16_t>(id);
  if (raw >= static_cast<uint16_t>(CheckId::kSvmEferSvme)) {
    return CheckClass::kSvm;
  }
  if (raw >= static_cast<uint16_t>(CheckId::kGuestCr0Fixed)) {
    return CheckClass::kGuestState;
  }
  if (raw >= static_cast<uint16_t>(CheckId::kHostCr0Fixed)) {
    return CheckClass::kHostState;
  }
  return CheckClass::kControl;
}

}  // namespace neco
