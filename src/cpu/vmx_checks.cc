#include "src/cpu/vmx_checks.h"

#include "src/arch/vmx_bits.h"
#include "src/support/bits.h"

namespace neco {
namespace {

// Appends `id` and reports whether checking should continue.
bool Report(ViolationList& out, const VmxCheckProfile& profile, CheckId id) {
  out.push_back(id);
  return !profile.stop_at_first;
}

bool PatIsValid(uint64_t pat) {
  for (int i = 0; i < 8; ++i) {
    const uint8_t type = static_cast<uint8_t>(pat >> (i * 8));
    if (type != 0 && type != 1 && type != 4 && type != 5 && type != 6 &&
        type != 7) {
      return false;
    }
  }
  return true;
}

struct GuestSeg {
  VmcsField selector;
  VmcsField base;
  VmcsField limit;
  VmcsField ar;
  bool is_cs;
  bool is_ss;
  bool base_must_fit_32;  // CS/SS/DS/ES: base bits 63:32 must be zero.
};

constexpr GuestSeg kGuestSegs[] = {
    {VmcsField::kGuestCsSelector, VmcsField::kGuestCsBase,
     VmcsField::kGuestCsLimit, VmcsField::kGuestCsArBytes, true, false, true},
    {VmcsField::kGuestSsSelector, VmcsField::kGuestSsBase,
     VmcsField::kGuestSsLimit, VmcsField::kGuestSsArBytes, false, true, true},
    {VmcsField::kGuestDsSelector, VmcsField::kGuestDsBase,
     VmcsField::kGuestDsLimit, VmcsField::kGuestDsArBytes, false, false, true},
    {VmcsField::kGuestEsSelector, VmcsField::kGuestEsBase,
     VmcsField::kGuestEsLimit, VmcsField::kGuestEsArBytes, false, false, true},
    {VmcsField::kGuestFsSelector, VmcsField::kGuestFsBase,
     VmcsField::kGuestFsLimit, VmcsField::kGuestFsArBytes, false, false,
     false},
    {VmcsField::kGuestGsSelector, VmcsField::kGuestGsBase,
     VmcsField::kGuestGsLimit, VmcsField::kGuestGsArBytes, false, false,
     false},
};

// Limit/granularity coupling: if any of limit[11:0] is 0 G must be 0; if
// limit[31:20] is nonzero G must be 1.
bool LimitGranularityOk(uint32_t limit, uint32_t ar) {
  const bool g = (ar & SegAr::kG) != 0;
  if ((limit & 0xfffu) != 0xfffu && g) {
    return false;
  }
  if ((limit & 0xfff00000u) != 0 && !g) {
    return false;
  }
  return true;
}

}  // namespace

void CheckVmControls(const Vmcs& v, const VmxCapabilities& caps,
                     const VmxCheckProfile& profile, ViolationList& out) {
  const uint32_t pin = static_cast<uint32_t>(
      v.Read(VmcsField::kPinBasedVmExecControl));
  const uint32_t proc = static_cast<uint32_t>(
      v.Read(VmcsField::kCpuBasedVmExecControl));
  const bool has_secondary = (proc & ProcCtl::kActivateSecondary) != 0;
  // A deactivated secondary-controls field is ignored by hardware.
  const uint32_t proc2 =
      has_secondary
          ? static_cast<uint32_t>(v.Read(VmcsField::kSecondaryVmExecControl))
          : 0;
  const uint32_t exit_ctl =
      static_cast<uint32_t>(v.Read(VmcsField::kVmExitControls));
  const uint32_t entry_ctl =
      static_cast<uint32_t>(v.Read(VmcsField::kVmEntryControls));

  if (!caps.pinbased.Permits(pin)) {
    if (!Report(out, profile, CheckId::kPinBasedReserved)) return;
  }
  if (!caps.procbased.Permits(proc)) {
    if (!Report(out, profile, CheckId::kProcBasedReserved)) return;
  }
  if (has_secondary && !caps.procbased2.Permits(proc2)) {
    if (!Report(out, profile, CheckId::kProc2Reserved)) return;
  }
  if (v.Read(VmcsField::kCr3TargetCount) > 4) {
    if (!Report(out, profile, CheckId::kCr3TargetCountRange)) return;
  }

  if ((proc & ProcCtl::kUseIoBitmaps) != 0) {
    const uint64_t a = v.Read(VmcsField::kIoBitmapA);
    const uint64_t b = v.Read(VmcsField::kIoBitmapB);
    if (!IsAligned(a, 12) || !IsAligned(b, 12) ||
        a > caps.MaxPhysicalAddress() || b > caps.MaxPhysicalAddress()) {
      if (!Report(out, profile, CheckId::kIoBitmapAlignment)) return;
    }
  }
  if ((proc & ProcCtl::kUseMsrBitmaps) != 0) {
    const uint64_t m = v.Read(VmcsField::kMsrBitmap);
    if (!IsAligned(m, 12) || m > caps.MaxPhysicalAddress()) {
      if (!Report(out, profile, CheckId::kMsrBitmapAlignment)) return;
    }
  }

  if ((proc & ProcCtl::kUseTprShadow) != 0) {
    const uint64_t vapic = v.Read(VmcsField::kVirtualApicPageAddr);
    if (!IsAligned(vapic, 12) || vapic > caps.MaxPhysicalAddress()) {
      if (!Report(out, profile, CheckId::kTprShadowVirtApicPage)) return;
    }
    const uint64_t threshold = v.Read(VmcsField::kTprThreshold);
    const bool vid = (proc2 & Proc2Ctl::kVirtIntrDelivery) != 0;
    if (!vid) {
      if ((threshold & ~0xfULL) != 0) {
        if (!Report(out, profile, CheckId::kTprThresholdReserved)) return;
      }
      // Threshold must not exceed the VTPR in the virtual-APIC page; the
      // model keeps VTPR at 0 so any nonzero threshold is suspect. This is
      // one of the subtle couplings validators frequently mis-model.
      if (profile.enforce_tpr_threshold_vs_vtpr &&
          (proc2 & Proc2Ctl::kVirtApicAccesses) == 0 && threshold != 0) {
        if (!Report(out, profile, CheckId::kTprThresholdVsVtpr)) return;
      }
    }
  }

  const bool nmi_exiting = (pin & PinCtl::kNmiExiting) != 0;
  const bool virtual_nmis = (pin & PinCtl::kVirtualNmis) != 0;
  if (!nmi_exiting && virtual_nmis) {
    if (!Report(out, profile, CheckId::kNmiCtlConsistency)) return;
  }
  if (!virtual_nmis && (proc & ProcCtl::kNmiWindowExiting) != 0) {
    if (!Report(out, profile, CheckId::kVirtualNmiWindowConsistency)) return;
  }

  if ((proc2 & Proc2Ctl::kVirtX2apicMode) != 0 &&
      (proc2 & Proc2Ctl::kVirtApicAccesses) != 0) {
    if (!Report(out, profile, CheckId::kVirtX2apicExclusive)) return;
  }
  if ((proc2 & Proc2Ctl::kVirtIntrDelivery) != 0 &&
      (pin & PinCtl::kExtIntExiting) == 0) {
    if (!Report(out, profile, CheckId::kVirtIntrDeliveryNeedsExtInt)) return;
  }

  if ((pin & PinCtl::kPostedInterrupts) != 0) {
    if ((proc2 & Proc2Ctl::kVirtIntrDelivery) == 0 ||
        (exit_ctl & ExitCtl::kAckIntrOnExit) == 0) {
      if (!Report(out, profile, CheckId::kPostedIntrRequirements)) return;
    }
    const uint64_t desc = v.Read(VmcsField::kPostedIntrDescAddr);
    if (!IsAligned(desc, 6) || desc > caps.MaxPhysicalAddress()) {
      if (!Report(out, profile, CheckId::kPostedIntrDescAlignment)) return;
    }
  }

  if ((proc2 & Proc2Ctl::kEnableVpid) != 0 &&
      v.Read(VmcsField::kVirtualProcessorId) == 0) {
    if (!Report(out, profile, CheckId::kVpidNonZero)) return;
  }

  if ((proc2 & Proc2Ctl::kEnableEpt) != 0) {
    const uint64_t eptp = v.Read(VmcsField::kEptPointer);
    const uint64_t memtype = eptp & 0x7;
    const bool memtype_ok = (memtype == 0 && caps.ept_uc_memtype) ||
                            (memtype == 6 && caps.ept_wb_memtype);
    if (!memtype_ok) {
      if (!Report(out, profile, CheckId::kEptpMemType)) return;
    }
    const uint64_t walk = ExtractBits(eptp, 3, 3);
    if (!(walk == 3 && caps.ept_4level) && !(walk == 4 && caps.ept_5level)) {
      if (!Report(out, profile, CheckId::kEptpWalkLength)) return;
    }
    if (ExtractBits(eptp, 7, 5) != 0) {
      if (!Report(out, profile, CheckId::kEptpReservedBits)) return;
    }
    if (TestBit(eptp, 6) && !caps.ept_ad_bits) {
      if (!Report(out, profile, CheckId::kEptpAccessDirty)) return;
    }
    if (AlignDown(eptp, 12) > caps.MaxPhysicalAddress()) {
      if (!Report(out, profile, CheckId::kEptpAddressRange)) return;
    }
  }
  if ((proc2 & Proc2Ctl::kUnrestrictedGuest) != 0 &&
      (proc2 & Proc2Ctl::kEnableEpt) == 0) {
    if (!Report(out, profile, CheckId::kUnrestrictedGuestNeedsEpt)) return;
  }
  if ((proc2 & Proc2Ctl::kEnablePml) != 0) {
    const uint64_t pml = v.Read(VmcsField::kPmlAddress);
    if ((proc2 & Proc2Ctl::kEnableEpt) == 0 || !IsAligned(pml, 12) ||
        pml > caps.MaxPhysicalAddress()) {
      if (!Report(out, profile, CheckId::kPmlRequirements)) return;
    }
  }
  if ((proc2 & Proc2Ctl::kEnableVmfunc) != 0) {
    const uint64_t list = v.Read(VmcsField::kEptpListAddress);
    if ((proc2 & Proc2Ctl::kEnableEpt) == 0 || !IsAligned(list, 12) ||
        list > caps.MaxPhysicalAddress()) {
      if (!Report(out, profile, CheckId::kVmfuncRequirements)) return;
    }
  }
  if ((proc2 & Proc2Ctl::kVmcsShadowing) != 0) {
    const uint64_t rd = v.Read(VmcsField::kVmreadBitmap);
    const uint64_t wr = v.Read(VmcsField::kVmwriteBitmap);
    if (!IsAligned(rd, 12) || !IsAligned(wr, 12) ||
        rd > caps.MaxPhysicalAddress() || wr > caps.MaxPhysicalAddress()) {
      if (!Report(out, profile, CheckId::kVmcsShadowBitmapAlignment)) return;
    }
  }

  if (!caps.exit.Permits(exit_ctl)) {
    if (!Report(out, profile, CheckId::kExitCtlReserved)) return;
  }
  if (!caps.entry.Permits(entry_ctl)) {
    if (!Report(out, profile, CheckId::kEntryCtlReserved)) return;
  }
  if ((exit_ctl & ExitCtl::kSavePreemptionTimer) != 0 &&
      (pin & PinCtl::kPreemptionTimer) == 0) {
    if (!Report(out, profile, CheckId::kPreemptionTimerSaveNeedsEnable)) {
      return;
    }
  }

  // MSR-load/store areas: 16-byte aligned, within the physical address
  // space, count below the architectural maximum.
  struct MsrArea {
    VmcsField count_field;
    VmcsField addr_field;
    CheckId check;
  };
  const MsrArea areas[] = {
      {VmcsField::kVmExitMsrStoreCount, VmcsField::kVmExitMsrStoreAddr,
       CheckId::kExitMsrStoreArea},
      {VmcsField::kVmExitMsrLoadCount, VmcsField::kVmExitMsrLoadAddr,
       CheckId::kExitMsrLoadArea},
      {VmcsField::kVmEntryMsrLoadCount, VmcsField::kVmEntryMsrLoadAddr,
       CheckId::kEntryMsrLoadArea},
  };
  for (const auto& area : areas) {
    const uint64_t count = v.Read(area.count_field);
    if (count == 0) {
      continue;
    }
    if (count > caps.max_msr_list_count) {
      if (area.check == CheckId::kEntryMsrLoadArea) {
        if (!Report(out, profile, CheckId::kEntryMsrLoadCountRange)) return;
      } else {
        if (!Report(out, profile, area.check)) return;
      }
      continue;
    }
    const uint64_t addr = v.Read(area.addr_field);
    const uint64_t last = addr + count * 16 - 1;
    if (!IsAligned(addr, 4) || last > caps.MaxPhysicalAddress()) {
      if (!Report(out, profile, area.check)) return;
    }
  }

  // VM-entry interruption information.
  const uint32_t intr_info =
      static_cast<uint32_t>(v.Read(VmcsField::kVmEntryIntrInfoField));
  if (TestBit(intr_info, 31)) {
    const uint32_t vector = intr_info & 0xff;
    const uint32_t type = ExtractBits(intr_info, 8, 3);
    const bool deliver_error = TestBit(intr_info, 11);
    if (type == 1) {  // Reserved interruption type.
      if (!Report(out, profile, CheckId::kEntryIntrInfoType)) return;
    }
    if ((type == 2 || type == 3 || type == 6) && vector > 31) {
      // NMI must be vector 2; hardware exceptions are vectors 0..31.
      if (!Report(out, profile, CheckId::kEntryIntrInfoVector)) return;
    }
    if (type == 2 && vector != 2) {
      if (!Report(out, profile, CheckId::kEntryIntrInfoVector)) return;
    }
    if (deliver_error) {
      // Error codes are only delivered for contributory hardware
      // exceptions.
      const bool contributory = type == 3 && (vector == 8 || vector == 10 ||
                                              vector == 11 || vector == 12 ||
                                              vector == 13 || vector == 14 ||
                                              vector == 17);
      if (!contributory) {
        if (!Report(out, profile, CheckId::kEntryIntrInfoErrorCode)) return;
      }
      if ((v.Read(VmcsField::kVmEntryExceptionErrorCode) & ~0x7fffULL) != 0) {
        if (!Report(out, profile, CheckId::kEntryIntrInfoErrorCode)) return;
      }
    }
    if (type == 4 || type == 5 || type == 6) {  // Software-delivered events.
      const uint64_t len = v.Read(VmcsField::kVmEntryInstructionLen);
      if (len == 0 || len > 15) {
        if (!Report(out, profile, CheckId::kEntryInstructionLength)) return;
      }
    }
  }
}

void CheckHostState(const Vmcs& v, const VmxCapabilities& caps,
                    const VmxCheckProfile& profile, ViolationList& out) {
  const uint64_t cr0 = v.Read(VmcsField::kHostCr0);
  const uint64_t cr4 = v.Read(VmcsField::kHostCr4);
  const uint32_t exit_ctl =
      static_cast<uint32_t>(v.Read(VmcsField::kVmExitControls));
  const bool host64 = (exit_ctl & ExitCtl::kHostAddrSpaceSize) != 0;

  if ((cr0 & caps.cr0_fixed0) != caps.cr0_fixed0 ||
      (cr0 & ~caps.cr0_fixed1 & MaskLow(32)) != 0 ||
      (cr0 & Cr0::kReservedMask) != 0) {
    if (!Report(out, profile, CheckId::kHostCr0Fixed)) return;
  }
  if ((cr4 & caps.cr4_fixed0) != caps.cr4_fixed0 ||
      (cr4 & Cr4::kReservedMask) != 0) {
    if (!Report(out, profile, CheckId::kHostCr4Fixed)) return;
  }
  if (v.Read(VmcsField::kHostCr3) > caps.MaxPhysicalAddress()) {
    if (!Report(out, profile, CheckId::kHostCr3Range)) return;
  }

  for (VmcsField f : {VmcsField::kHostFsBase, VmcsField::kHostGsBase,
                      VmcsField::kHostTrBase, VmcsField::kHostGdtrBase,
                      VmcsField::kHostIdtrBase}) {
    if (!IsCanonical(v.Read(f))) {
      if (!Report(out, profile, CheckId::kHostCanonicalBase)) return;
      break;
    }
  }
  if (!IsCanonical(v.Read(VmcsField::kHostIa32SysenterEsp)) ||
      !IsCanonical(v.Read(VmcsField::kHostIa32SysenterEip))) {
    if (!Report(out, profile, CheckId::kHostSysenterCanonical)) return;
  }

  for (VmcsField f :
       {VmcsField::kHostCsSelector, VmcsField::kHostSsSelector,
        VmcsField::kHostDsSelector, VmcsField::kHostEsSelector,
        VmcsField::kHostFsSelector, VmcsField::kHostGsSelector,
        VmcsField::kHostTrSelector}) {
    if ((v.Read(f) & 0x7) != 0) {  // RPL and TI must be zero.
      if (!Report(out, profile, CheckId::kHostSelectorRplTi)) return;
      break;
    }
  }
  if (v.Read(VmcsField::kHostCsSelector) == 0) {
    if (!Report(out, profile, CheckId::kHostCsNotNull)) return;
  }
  if (v.Read(VmcsField::kHostTrSelector) == 0) {
    if (!Report(out, profile, CheckId::kHostTrNotNull)) return;
  }
  if (!host64 && v.Read(VmcsField::kHostSsSelector) == 0) {
    if (!Report(out, profile, CheckId::kHostSsNotNull)) return;
  }

  if (host64) {
    if ((cr4 & Cr4::kPae) == 0) {
      if (!Report(out, profile, CheckId::kHostAddrSpaceConsistency)) return;
    }
    if (!IsCanonical(v.Read(VmcsField::kHostRip))) {
      if (!Report(out, profile, CheckId::kHostRipCanonical)) return;
    }
  } else {
    if ((cr4 & Cr4::kPcide) != 0) {
      if (!Report(out, profile, CheckId::kHostAddrSpaceConsistency)) return;
    }
    if ((v.Read(VmcsField::kHostRip) >> 32) != 0) {
      if (!Report(out, profile, CheckId::kHostRipCanonical)) return;
    }
  }

  if ((exit_ctl & ExitCtl::kLoadEfer) != 0) {
    const uint64_t efer = v.Read(VmcsField::kHostIa32Efer);
    if ((efer & Efer::kReservedMask) != 0) {
      if (!Report(out, profile, CheckId::kHostEferReserved)) return;
    }
    const bool lma = (efer & Efer::kLma) != 0;
    const bool lme = (efer & Efer::kLme) != 0;
    if (lma != host64 || lme != host64) {
      if (!Report(out, profile, CheckId::kHostEferLmaLme)) return;
    }
  }
  if ((exit_ctl & ExitCtl::kLoadPat) != 0 &&
      !PatIsValid(v.Read(VmcsField::kHostIa32Pat))) {
    if (!Report(out, profile, CheckId::kHostPatValidity)) return;
  }
}

void CheckGuestState(const Vmcs& v, const VmxCapabilities& caps,
                     const VmxCheckProfile& profile, ViolationList& out) {
  const uint64_t cr0 = v.Read(VmcsField::kGuestCr0);
  const uint64_t cr4 = v.Read(VmcsField::kGuestCr4);
  const uint64_t rflags = v.Read(VmcsField::kGuestRflags);
  const uint32_t entry_ctl =
      static_cast<uint32_t>(v.Read(VmcsField::kVmEntryControls));
  const uint32_t proc = static_cast<uint32_t>(
      v.Read(VmcsField::kCpuBasedVmExecControl));
  const uint32_t proc2 =
      (proc & ProcCtl::kActivateSecondary) != 0
          ? static_cast<uint32_t>(v.Read(VmcsField::kSecondaryVmExecControl))
          : 0;
  const bool unrestricted = (proc2 & Proc2Ctl::kUnrestrictedGuest) != 0;
  const bool ept = (proc2 & Proc2Ctl::kEnableEpt) != 0;
  const bool ia32e = (entry_ctl & EntryCtl::kIa32eModeGuest) != 0;
  const bool v86 = (rflags & Rflags::kVm) != 0;

  // --- Control registers ---
  uint64_t cr0_fixed0 = caps.cr0_fixed0;
  if (unrestricted) {
    cr0_fixed0 &= ~(Cr0::kPe | Cr0::kPg);
  }
  if ((cr0 & cr0_fixed0) != cr0_fixed0 ||
      (cr0 & ~caps.cr0_fixed1 & MaskLow(32)) != 0) {
    if (!Report(out, profile, CheckId::kGuestCr0Fixed)) return;
  }
  if ((cr0 & Cr0::kReservedMask) != 0) {
    if (!Report(out, profile, CheckId::kGuestCr0Reserved)) return;
  }
  if ((cr0 & Cr0::kPg) != 0 && (cr0 & Cr0::kPe) == 0) {
    if (!Report(out, profile, CheckId::kGuestCr0PgWithoutPe)) return;
  }
  if ((cr0 & Cr0::kNw) != 0 && (cr0 & Cr0::kCd) == 0) {
    if (!Report(out, profile, CheckId::kGuestCr0NwWithoutCd)) return;
  }
  if ((cr4 & caps.cr4_fixed0) != caps.cr4_fixed0) {
    if (!Report(out, profile, CheckId::kGuestCr4Fixed)) return;
  }
  if ((cr4 & Cr4::kReservedMask) != 0) {
    if (!Report(out, profile, CheckId::kGuestCr4Reserved)) return;
  }
  if (v.Read(VmcsField::kGuestCr3) > caps.MaxPhysicalAddress()) {
    if (!Report(out, profile, CheckId::kGuestCr3Range)) return;
  }
  // The SDM documents that IA-32e mode guests must have CR4.PAE = 1, but
  // real processors do not enforce it at entry (they behave as if it were
  // set). Hypervisor code that trusts the manual here mishandles paging —
  // the root cause of CVE-2023-30456.
  if (profile.enforce_cr4_pae_for_ia32e && ia32e && (cr4 & Cr4::kPae) == 0) {
    if (!Report(out, profile, CheckId::kGuestCr4PaeForIa32e)) return;
  }
  if (!ia32e && (cr4 & Cr4::kPcide) != 0) {
    if (!Report(out, profile, CheckId::kGuestPcideWithoutIa32e)) return;
  }

  if ((entry_ctl & EntryCtl::kLoadDebugControls) != 0) {
    const uint64_t dbgctl = v.Read(VmcsField::kGuestIa32Debugctl);
    if ((dbgctl & ~0xdfc3ULL) != 0) {
      if (!Report(out, profile, CheckId::kGuestDebugctlReserved)) return;
    }
    if ((v.Read(VmcsField::kGuestDr7) >> 32) != 0) {
      if (!Report(out, profile, CheckId::kGuestDr7High32)) return;
    }
  }

  if ((entry_ctl & EntryCtl::kLoadEfer) != 0) {
    const uint64_t efer = v.Read(VmcsField::kGuestIa32Efer);
    if ((efer & Efer::kReservedMask) != 0) {
      if (!Report(out, profile, CheckId::kGuestEferReserved)) return;
    }
    const bool lma = (efer & Efer::kLma) != 0;
    if (lma != ia32e) {
      if (!Report(out, profile, CheckId::kGuestEferLmaVsEntryCtl)) return;
    }
    if ((cr0 & Cr0::kPg) != 0 &&
        lma != ((efer & Efer::kLme) != 0)) {
      if (!Report(out, profile, CheckId::kGuestEferLmaVsLme)) return;
    }
  }
  if ((entry_ctl & EntryCtl::kLoadPat) != 0 &&
      !PatIsValid(v.Read(VmcsField::kGuestIa32Pat))) {
    if (!Report(out, profile, CheckId::kGuestPatValidity)) return;
  }

  // --- RFLAGS ---
  if ((rflags & Rflags::kFixed1) == 0 || (rflags & Rflags::kReservedMask) != 0) {
    if (!Report(out, profile, CheckId::kGuestRflagsReserved)) return;
  }
  if (v86 && (ia32e || (cr0 & Cr0::kPe) == 0)) {
    if (!Report(out, profile, CheckId::kGuestRflagsVmInIa32e)) return;
  }
  const uint32_t intr_info =
      static_cast<uint32_t>(v.Read(VmcsField::kVmEntryIntrInfoField));
  if (TestBit(intr_info, 31) && ExtractBits(intr_info, 8, 3) == 0 &&
      (rflags & Rflags::kIf) == 0) {
    if (!Report(out, profile, CheckId::kGuestRflagsIfForExtInt)) return;
  }

  // --- Segment registers ---
  if (v86) {
    // Virtual-8086 invariants: base == selector<<4, limit == 0xffff,
    // AR == 0xf3 for all data/code segments.
    for (const auto& seg : kGuestSegs) {
      const uint64_t sel = v.Read(seg.selector);
      if (v.Read(seg.base) != (sel << 4) || v.Read(seg.limit) != 0xffff ||
          v.Read(seg.ar) != 0xf3) {
        if (!Report(out, profile, CheckId::kGuestV86SegmentInvariants)) return;
        break;
      }
    }
  } else {
    for (const auto& seg : kGuestSegs) {
      const uint32_t ar = static_cast<uint32_t>(v.Read(seg.ar));
      const uint32_t limit = static_cast<uint32_t>(v.Read(seg.limit));
      const uint64_t base = v.Read(seg.base);
      const uint16_t sel = static_cast<uint16_t>(v.Read(seg.selector));
      const bool usable = SegAr::Usable(ar);

      if (seg.is_cs && !usable) {
        if (!Report(out, profile, CheckId::kGuestCsType)) return;
        continue;
      }
      if (!usable) {
        continue;
      }
      // Reserved AR bits must be zero for usable segments.
      if ((ar & SegAr::kReservedMask & ~SegAr::kUnusable) != 0) {
        if (!Report(out, profile, CheckId::kGuestSegArReserved)) return;
      }
      if (!SegAr::Present(ar)) {
        if (!Report(out, profile, CheckId::kGuestSegNullUsable)) return;
      }
      if ((ar & SegAr::kS) == 0) {
        // Code/data segments must have S=1.
        if (!Report(out, profile,
                    seg.is_cs ? CheckId::kGuestCsType
                              : CheckId::kGuestDataSegType)) {
          return;
        }
      }
      const uint32_t type = SegAr::Type(ar);
      if (seg.is_cs) {
        const bool code_ok =
            type == 9 || type == 11 || type == 13 || type == 15 ||
            (unrestricted && type == 3);
        if (!code_ok) {
          if (!Report(out, profile, CheckId::kGuestCsType)) return;
        }
        if (type == 3 && SegAr::Dpl(ar) != 0) {
          if (!Report(out, profile, CheckId::kGuestCsType)) return;
        }
        if (ia32e && (ar & SegAr::kL) != 0 && (ar & SegAr::kDb) != 0) {
          if (!Report(out, profile, CheckId::kGuestCsLAndDb)) return;
        }
        // Non-conforming CS: DPL must equal SS DPL.
        const uint32_t ss_ar =
            static_cast<uint32_t>(v.Read(VmcsField::kGuestSsArBytes));
        if (!unrestricted && (type == 9 || type == 11) &&
            SegAr::Usable(ss_ar) && SegAr::Dpl(ar) != SegAr::Dpl(ss_ar)) {
          if (!Report(out, profile, CheckId::kGuestCsDplVsSs)) return;
        }
      } else if (seg.is_ss) {
        if (type != 3 && type != 7) {
          if (!Report(out, profile, CheckId::kGuestSsType)) return;
        }
        if (!unrestricted) {
          const uint16_t cs_sel =
              static_cast<uint16_t>(v.Read(VmcsField::kGuestCsSelector));
          if ((sel & 0x3) != (cs_sel & 0x3)) {
            if (!Report(out, profile, CheckId::kGuestSsRplVsCs)) return;
          }
          if (SegAr::Dpl(ar) != (sel & 0x3)) {
            if (!Report(out, profile, CheckId::kGuestSsDpl)) return;
          }
        }
      } else {
        // DS/ES/FS/GS: must be accessed data or readable code.
        const bool data_ok = (type & 0x1) != 0 &&     // Accessed.
                             ((type & 0x8) == 0 ||    // Data segment, or
                              (type & 0x2) != 0);     // readable code.
        if (!data_ok) {
          if (!Report(out, profile, CheckId::kGuestDataSegType)) return;
        }
        if (!unrestricted && (type & 0x8) == 0 && (type & 0x4) == 0 &&
            SegAr::Dpl(ar) < (sel & 0x3)) {
          // Non-conforming data segment: DPL >= RPL.
          if (!Report(out, profile, CheckId::kGuestDataSegDpl)) return;
        }
      }
      if (seg.base_must_fit_32) {
        if ((base >> 32) != 0) {
          if (!Report(out, profile, CheckId::kGuestSegBaseHigh32)) return;
        }
      } else if (!IsCanonical(base)) {
        if (!Report(out, profile, CheckId::kGuestSegBaseCanonical)) return;
      }
      if (!LimitGranularityOk(limit, ar)) {
        if (!Report(out, profile, CheckId::kGuestSegLimitGranularity)) return;
      }
    }

    // TR: must be usable, TI clear, correct type.
    const uint32_t tr_ar =
        static_cast<uint32_t>(v.Read(VmcsField::kGuestTrArBytes));
    const uint16_t tr_sel =
        static_cast<uint16_t>(v.Read(VmcsField::kGuestTrSelector));
    if (!SegAr::Usable(tr_ar)) {
      if (!Report(out, profile, CheckId::kGuestTrUsable)) return;
    } else {
      const uint32_t type = SegAr::Type(tr_ar);
      const bool type_ok = ia32e ? (type == 11) : (type == 3 || type == 11);
      if (!type_ok || (tr_ar & SegAr::kS) != 0 || !SegAr::Present(tr_ar)) {
        if (!Report(out, profile, CheckId::kGuestTrType)) return;
      }
      if (!LimitGranularityOk(
              static_cast<uint32_t>(v.Read(VmcsField::kGuestTrLimit)), tr_ar)) {
        if (!Report(out, profile, CheckId::kGuestSegLimitGranularity)) return;
      }
    }
    if ((tr_sel & 0x4) != 0) {
      if (!Report(out, profile, CheckId::kGuestTrTiFlag)) return;
    }
    if (!IsCanonical(v.Read(VmcsField::kGuestTrBase))) {
      if (!Report(out, profile, CheckId::kGuestSegBaseCanonical)) return;
    }

    // LDTR, if usable: type 2, S=0, present, TI clear.
    const uint32_t ldtr_ar =
        static_cast<uint32_t>(v.Read(VmcsField::kGuestLdtrArBytes));
    if (SegAr::Usable(ldtr_ar)) {
      const uint16_t ldtr_sel =
          static_cast<uint16_t>(v.Read(VmcsField::kGuestLdtrSelector));
      if (SegAr::Type(ldtr_ar) != 2 || (ldtr_ar & SegAr::kS) != 0 ||
          !SegAr::Present(ldtr_ar) || (ldtr_sel & 0x4) != 0) {
        if (!Report(out, profile, CheckId::kGuestLdtrType)) return;
      }
      if (!IsCanonical(v.Read(VmcsField::kGuestLdtrBase))) {
        if (!Report(out, profile, CheckId::kGuestSegBaseCanonical)) return;
      }
    }
  }

  // --- GDTR/IDTR ---
  if (!IsCanonical(v.Read(VmcsField::kGuestGdtrBase)) ||
      !IsCanonical(v.Read(VmcsField::kGuestIdtrBase))) {
    if (!Report(out, profile, CheckId::kGuestGdtrIdtrCanonical)) return;
  }
  if ((v.Read(VmcsField::kGuestGdtrLimit) >> 16) != 0 ||
      (v.Read(VmcsField::kGuestIdtrLimit) >> 16) != 0) {
    if (!Report(out, profile, CheckId::kGuestGdtrIdtrLimit)) return;
  }

  // --- RIP ---
  const uint64_t rip = v.Read(VmcsField::kGuestRip);
  const uint32_t cs_ar =
      static_cast<uint32_t>(v.Read(VmcsField::kGuestCsArBytes));
  if (!ia32e || (cs_ar & SegAr::kL) == 0) {
    if ((rip >> 32) != 0) {
      if (!Report(out, profile, CheckId::kGuestRipHigh32)) return;
    }
  } else if (!IsCanonical(rip)) {
    if (!Report(out, profile, CheckId::kGuestRipCanonical)) return;
  }

  // --- Activity and interruptibility state ---
  const uint64_t activity = v.Read(VmcsField::kGuestActivityState);
  const uint32_t interruptibility =
      static_cast<uint32_t>(v.Read(VmcsField::kGuestInterruptibilityInfo));
  if (activity > kMaxActivityState) {
    if (!Report(out, profile, CheckId::kGuestActivityStateRange)) return;
  } else if (activity != 0 &&
             (caps.supported_activity_states & (1u << (activity - 1))) == 0) {
    if (!Report(out, profile, CheckId::kGuestActivityStateSupported)) return;
  }
  if (activity != 0 &&
      (interruptibility &
       (Interruptibility::kStiBlocking | Interruptibility::kMovSsBlocking)) !=
          0) {
    if (!Report(out, profile, CheckId::kGuestActivityVsInterruptibility)) {
      return;
    }
  }
  if (TestBit(intr_info, 31) &&
      (activity == static_cast<uint64_t>(ActivityState::kShutdown) ||
       activity == static_cast<uint64_t>(ActivityState::kWaitForSipi))) {
    if (!Report(out, profile, CheckId::kGuestActivityVsEventInjection)) return;
  }
  if ((interruptibility & Interruptibility::kReservedMask) != 0) {
    if (!Report(out, profile, CheckId::kGuestInterruptibilityReserved)) return;
  }
  if ((interruptibility & Interruptibility::kStiBlocking) != 0 &&
      (interruptibility & Interruptibility::kMovSsBlocking) != 0) {
    if (!Report(out, profile, CheckId::kGuestStiMovssExclusive)) return;
  }
  if ((rflags & Rflags::kIf) == 0 &&
      (interruptibility & Interruptibility::kStiBlocking) != 0) {
    if (!Report(out, profile, CheckId::kGuestStiWithIfClear)) return;
  }

  // --- Pending debug exceptions ---
  const uint64_t pending_dbg = v.Read(VmcsField::kGuestPendingDbgExceptions);
  if ((pending_dbg & PendingDbg::kReservedMask) != 0) {
    if (!Report(out, profile, CheckId::kGuestPendingDbgReserved)) return;
  }
  if (profile.enforce_pending_dbg_bs_vs_tf) {
    const bool blocking =
        (interruptibility & (Interruptibility::kStiBlocking |
                             Interruptibility::kMovSsBlocking)) != 0 ||
        activity == static_cast<uint64_t>(ActivityState::kHlt);
    const bool tf = (rflags & Rflags::kTf) != 0;
    const bool btf = TestBit(v.Read(VmcsField::kGuestIa32Debugctl), 1);
    if (blocking && tf && !btf && (pending_dbg & PendingDbg::kBs) == 0) {
      if (!Report(out, profile, CheckId::kGuestPendingDbgBsVsTf)) return;
    }
    if (blocking && (!tf || btf) && (pending_dbg & PendingDbg::kBs) != 0) {
      if (!Report(out, profile, CheckId::kGuestPendingDbgBsVsTf)) return;
    }
  }

  // --- VMCS link pointer ---
  const uint64_t link = v.Read(VmcsField::kVmcsLinkPointer);
  if (link != ~0ULL) {
    if (!IsAligned(link, 12) || link > caps.MaxPhysicalAddress()) {
      if (!Report(out, profile, CheckId::kGuestVmcsLinkPointer)) return;
    }
  }

  // --- PDPTEs (PAE paging without EPT) ---
  if ((cr0 & Cr0::kPg) != 0 && (cr4 & Cr4::kPae) != 0 && !ia32e && !ept) {
    for (VmcsField f : {VmcsField::kGuestPdptr0, VmcsField::kGuestPdptr1,
                        VmcsField::kGuestPdptr2, VmcsField::kGuestPdptr3}) {
      const uint64_t pdpte = v.Read(f);
      // Present PDPTEs must have reserved bits (2:1, 8:5, beyond maxphys)
      // clear.
      if (TestBit(pdpte, 0) &&
          ((pdpte & 0x1e6ULL) != 0 ||
           AlignDown(pdpte, 12) > caps.MaxPhysicalAddress())) {
        if (!Report(out, profile, CheckId::kGuestPdpteReserved)) return;
        break;
      }
    }
  }
}

ViolationList CheckVmxEntry(const Vmcs& v, const VmxCapabilities& caps,
                            const VmxCheckProfile& profile) {
  ViolationList out;
  CheckVmControls(v, caps, profile, out);
  if (profile.stop_at_first && !out.empty()) {
    return out;
  }
  CheckHostState(v, caps, profile, out);
  if (profile.stop_at_first && !out.empty()) {
    return out;
  }
  CheckGuestState(v, caps, profile, out);
  return out;
}

void ApplyVmxFixup(VmxFixupId id, Vmcs& v) {
  switch (id) {
    case VmxFixupId::kUnusableSegArClear: {
      for (VmcsField f :
           {VmcsField::kGuestEsArBytes, VmcsField::kGuestSsArBytes,
            VmcsField::kGuestDsArBytes, VmcsField::kGuestFsArBytes,
            VmcsField::kGuestGsArBytes, VmcsField::kGuestLdtrArBytes}) {
        const uint32_t ar = static_cast<uint32_t>(v.Read(f));
        if (!SegAr::Usable(ar)) {
          v.Write(f, SegAr::kUnusable);
        }
      }
      break;
    }
    case VmxFixupId::kCsAccessedBitSet: {
      const uint32_t ar =
          static_cast<uint32_t>(v.Read(VmcsField::kGuestCsArBytes));
      if (SegAr::Usable(ar) && (ar & SegAr::kS) != 0) {
        v.Write(VmcsField::kGuestCsArBytes, ar | 1u);
      }
      break;
    }
    case VmxFixupId::kPendingDbgReservedClear: {
      const uint64_t pending =
          v.Read(VmcsField::kGuestPendingDbgExceptions);
      v.Write(VmcsField::kGuestPendingDbgExceptions,
              pending & ~PendingDbg::kReservedMask);
      break;
    }
    case VmxFixupId::kCount:
      break;
  }
}

void ApplyHardwareVmxFixups(Vmcs& v) {
  ApplyVmxFixup(VmxFixupId::kUnusableSegArClear, v);
  ApplyVmxFixup(VmxFixupId::kCsAccessedBitSet, v);
  ApplyVmxFixup(VmxFixupId::kPendingDbgReservedClear, v);
}

}  // namespace neco
