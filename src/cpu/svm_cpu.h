// Simulated physical CPU with AMD-V (SVM).
//
// Models VMRUN semantics: EFER.SVME gating, the hardware consistency checks
// over the VMCB (HARDWARE profile, including the EFER.LME/CR0.PG ambiguity),
// and the GIF (global interrupt flag) state toggled by STGI/CLGI.
#ifndef SRC_CPU_SVM_CPU_H_
#define SRC_CPU_SVM_CPU_H_

#include <cstdint>

#include "src/arch/vmcb.h"
#include "src/cpu/entry_check.h"
#include "src/cpu/svm_checks.h"

namespace neco {

enum class VmrunStatus : uint8_t {
  kEntered,        // Guest running; a later #VMEXIT ends it.
  kInvalidVmcb,    // Consistency check failed: immediate VMEXIT_INVALID.
  kSvmeDisabled,   // EFER.SVME clear: #UD.
};

struct VmrunOutcome {
  VmrunStatus status = VmrunStatus::kSvmeDisabled;
  CheckId failed_check = CheckId::kNone;

  bool entered() const { return status == VmrunStatus::kEntered; }
};

class SvmCpu {
 public:
  explicit SvmCpu(SvmCaps caps = SvmCaps{}) : caps_(caps) {}

  const SvmCaps& caps() const { return caps_; }

  // Host EFER.SVME control (set by the hypervisor during init).
  void set_svme(bool on) { svme_ = on; }
  bool svme() const { return svme_; }

  // GIF manipulation (STGI / CLGI).
  void Stgi() { gif_ = true; }
  void Clgi() { gif_ = false; }
  bool gif() const { return gif_; }

  // Attempt VMRUN with the given VMCB. On consistency failure the VMCB's
  // exit code is set to VMEXIT_INVALID, as real hardware does.
  VmrunOutcome Vmrun(Vmcb& vmcb);

 private:
  SvmCaps caps_;
  bool svme_ = false;
  bool gif_ = true;
};

}  // namespace neco

#endif  // SRC_CPU_SVM_CPU_H_
