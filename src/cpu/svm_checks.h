// AMD-V VMRUN consistency checks (APM Vol. 2, 15.5.1 "Canonicalization and
// Consistency Checks"). As on the Intel side, the SPEC profile enforces the
// documented rule set while the HARDWARE profile reflects silicon behaviour
// including the EFER.LME/CR0.PG ambiguity the paper's Xen bug #5 hinges on.
#ifndef SRC_CPU_SVM_CHECKS_H_
#define SRC_CPU_SVM_CHECKS_H_

#include "src/arch/vmcb.h"
#include "src/cpu/entry_check.h"

namespace neco {

struct SvmCheckProfile {
  // The APM "permits" a VMCB with EFER.LME=1 and CR0.PG=0 but leaves VMRUN
  // behaviour unspecified. Real CPUs accept it; a conservative spec model
  // flags it.
  bool reject_lme_without_pg = true;
  bool stop_at_first = false;

  static SvmCheckProfile Spec() { return SvmCheckProfile{}; }

  static SvmCheckProfile Hardware() {
    SvmCheckProfile p;
    p.reject_lme_without_pg = false;  // Silicon tolerates it.
    p.stop_at_first = true;
    return p;
  }
};

struct SvmCaps {
  unsigned physical_address_bits = 48;
  constexpr uint64_t MaxPhysicalAddress() const {
    return (1ULL << physical_address_bits) - 1;
  }
};

// Run the VMRUN consistency checks over a VMCB.
ViolationList CheckVmrun(const Vmcb& v, const SvmCaps& caps,
                         const SvmCheckProfile& profile);

}  // namespace neco

#endif  // SRC_CPU_SVM_CHECKS_H_
