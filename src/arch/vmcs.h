// In-memory VMCS representation.
//
// A Vmcs stores one value per field of the layout in vmx_fields.h. Values
// are masked to the field's semantic width on write. The class also
// supports flattening to/from the dense bit image used for raw fuzz-input
// interpretation and for the paper's Hamming-distance analysis.
#ifndef SRC_ARCH_VMCS_H_
#define SRC_ARCH_VMCS_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/arch/vmx_fields.h"

namespace neco {

class Vmcs {
 public:
  // The VMCS revision identifier this model uses (stored at offset 0 of the
  // VMCS region in guest memory; checked by vmptrld/vmclear emulation).
  static constexpr uint32_t kRevisionId = 0x4e65636f;  // 'Neco'

  Vmcs();

  // Field accessors; out-of-table fields read as 0 / ignore writes and
  // return false.
  uint64_t Read(VmcsField field) const;
  bool Write(VmcsField field, uint64_t value);
  bool Has(VmcsField field) const { return VmcsFieldIndex(field) >= 0; }

  // Launch-state tracking (vmclear -> clear; vmlaunch -> launched).
  enum class LaunchState : uint8_t { kClear, kLaunched };
  LaunchState launch_state() const { return launch_state_; }
  void set_launch_state(LaunchState s) { launch_state_ = s; }

  // Flatten all fields into a packed little-endian bit image of
  // VmcsTotalBits() bits (VmcsTotalBits()/8 bytes). Field order follows the
  // field table.
  std::vector<uint8_t> ToBitImage() const;

  // Populate fields from a packed bit image; missing tail bits read as 0.
  void FromBitImage(std::span<const uint8_t> image);

  // Byte size of the full bit image.
  static size_t BitImageSize() { return (VmcsTotalBits() + 7) / 8; }

  bool operator==(const Vmcs& other) const { return values_ == other.values_; }

 private:
  std::vector<uint64_t> values_;  // Indexed by VmcsFieldIndex.
  LaunchState launch_state_ = LaunchState::kClear;
};

// A default VMCS describing a minimal but *valid* 64-bit guest and host, the
// "golden" configuration a well-behaved hypervisor would produce. Used as
// the reference point for Figure 5's "Default vs Validated" distribution and
// as the seed for baseline tools.
Vmcs MakeDefaultVmcs();

}  // namespace neco

#endif  // SRC_ARCH_VMCS_H_
