#include "src/arch/vmx_fields.h"

#include <array>

namespace neco {
namespace {

constexpr VmcsFieldInfo MakeInfo(VmcsField f, std::string_view name,
                                 VmcsFieldGroup g, VmcsFieldWidth w,
                                 uint8_t bits) {
  return VmcsFieldInfo{f, name, g, w, bits};
}

// Shorthand for table construction.
constexpr auto kControl = VmcsFieldGroup::kControl;
constexpr auto kGuest = VmcsFieldGroup::kGuestState;
constexpr auto kHost = VmcsFieldGroup::kHostState;
constexpr auto kRo = VmcsFieldGroup::kReadOnlyData;
constexpr auto w16 = VmcsFieldWidth::k16;
constexpr auto w32 = VmcsFieldWidth::k32;
constexpr auto w64 = VmcsFieldWidth::k64;
constexpr auto wNat = VmcsFieldWidth::kNatural;

// The full VMCS layout: 165 fields spanning 8,000 bits, matching the state
// geometry the paper reports for its Hamming-distance analysis (Section
// 5.3.2). Natural-width fields are 64 bits on x86-64.
constexpr std::array<VmcsFieldInfo, 165> kTable = {{
    // --- 16-bit control fields ---
    MakeInfo(VmcsField::kVirtualProcessorId, "virtual_processor_id", kControl, w16, 16),
    MakeInfo(VmcsField::kPostedIntrNotificationVector, "posted_intr_nv", kControl, w16, 16),
    MakeInfo(VmcsField::kEptpIndex, "eptp_index", kControl, w16, 16),
    // --- 16-bit guest-state fields ---
    MakeInfo(VmcsField::kGuestEsSelector, "guest_es_selector", kGuest, w16, 16),
    MakeInfo(VmcsField::kGuestCsSelector, "guest_cs_selector", kGuest, w16, 16),
    MakeInfo(VmcsField::kGuestSsSelector, "guest_ss_selector", kGuest, w16, 16),
    MakeInfo(VmcsField::kGuestDsSelector, "guest_ds_selector", kGuest, w16, 16),
    MakeInfo(VmcsField::kGuestFsSelector, "guest_fs_selector", kGuest, w16, 16),
    MakeInfo(VmcsField::kGuestGsSelector, "guest_gs_selector", kGuest, w16, 16),
    MakeInfo(VmcsField::kGuestLdtrSelector, "guest_ldtr_selector", kGuest, w16, 16),
    MakeInfo(VmcsField::kGuestTrSelector, "guest_tr_selector", kGuest, w16, 16),
    MakeInfo(VmcsField::kGuestIntrStatus, "guest_intr_status", kGuest, w16, 16),
    MakeInfo(VmcsField::kGuestPmlIndex, "guest_pml_index", kGuest, w16, 16),
    // --- 16-bit host-state fields ---
    MakeInfo(VmcsField::kHostEsSelector, "host_es_selector", kHost, w16, 16),
    MakeInfo(VmcsField::kHostCsSelector, "host_cs_selector", kHost, w16, 16),
    MakeInfo(VmcsField::kHostSsSelector, "host_ss_selector", kHost, w16, 16),
    MakeInfo(VmcsField::kHostDsSelector, "host_ds_selector", kHost, w16, 16),
    MakeInfo(VmcsField::kHostFsSelector, "host_fs_selector", kHost, w16, 16),
    MakeInfo(VmcsField::kHostGsSelector, "host_gs_selector", kHost, w16, 16),
    MakeInfo(VmcsField::kHostTrSelector, "host_tr_selector", kHost, w16, 16),
    // --- 64-bit control fields ---
    MakeInfo(VmcsField::kIoBitmapA, "io_bitmap_a", kControl, w64, 64),
    MakeInfo(VmcsField::kIoBitmapB, "io_bitmap_b", kControl, w64, 64),
    MakeInfo(VmcsField::kMsrBitmap, "msr_bitmap", kControl, w64, 64),
    MakeInfo(VmcsField::kVmExitMsrStoreAddr, "vm_exit_msr_store_addr", kControl, w64, 64),
    MakeInfo(VmcsField::kVmExitMsrLoadAddr, "vm_exit_msr_load_addr", kControl, w64, 64),
    MakeInfo(VmcsField::kVmEntryMsrLoadAddr, "vm_entry_msr_load_addr", kControl, w64, 64),
    MakeInfo(VmcsField::kExecutiveVmcsPointer, "executive_vmcs_pointer", kControl, w64, 64),
    MakeInfo(VmcsField::kPmlAddress, "pml_address", kControl, w64, 64),
    MakeInfo(VmcsField::kTscOffset, "tsc_offset", kControl, w64, 64),
    MakeInfo(VmcsField::kVirtualApicPageAddr, "virtual_apic_page_addr", kControl, w64, 64),
    MakeInfo(VmcsField::kApicAccessAddr, "apic_access_addr", kControl, w64, 64),
    MakeInfo(VmcsField::kPostedIntrDescAddr, "posted_intr_desc_addr", kControl, w64, 64),
    MakeInfo(VmcsField::kVmFunctionControl, "vm_function_control", kControl, w64, 64),
    MakeInfo(VmcsField::kEptPointer, "ept_pointer", kControl, w64, 64),
    MakeInfo(VmcsField::kEoiExitBitmap0, "eoi_exit_bitmap0", kControl, w64, 64),
    MakeInfo(VmcsField::kEoiExitBitmap1, "eoi_exit_bitmap1", kControl, w64, 64),
    MakeInfo(VmcsField::kEoiExitBitmap2, "eoi_exit_bitmap2", kControl, w64, 64),
    MakeInfo(VmcsField::kEoiExitBitmap3, "eoi_exit_bitmap3", kControl, w64, 64),
    MakeInfo(VmcsField::kEptpListAddress, "eptp_list_address", kControl, w64, 64),
    MakeInfo(VmcsField::kVmreadBitmap, "vmread_bitmap", kControl, w64, 64),
    MakeInfo(VmcsField::kVmwriteBitmap, "vmwrite_bitmap", kControl, w64, 64),
    MakeInfo(VmcsField::kVirtExceptionInfoAddr, "virt_exception_info_addr", kControl, w64, 64),
    MakeInfo(VmcsField::kXssExitBitmap, "xss_exit_bitmap", kControl, w64, 64),
    MakeInfo(VmcsField::kEnclsExitingBitmap, "encls_exiting_bitmap", kControl, w64, 64),
    MakeInfo(VmcsField::kSppTablePointer, "spp_table_pointer", kControl, w64, 64),
    MakeInfo(VmcsField::kTscMultiplier, "tsc_multiplier", kControl, w64, 64),
    MakeInfo(VmcsField::kTertiaryVmExecControl, "tertiary_vm_exec_control", kControl, w64, 64),
    // --- 64-bit read-only data field ---
    MakeInfo(VmcsField::kGuestPhysicalAddress, "guest_physical_address", kRo, w64, 64),
    // --- 64-bit guest-state fields ---
    MakeInfo(VmcsField::kVmcsLinkPointer, "vmcs_link_pointer", kGuest, w64, 64),
    MakeInfo(VmcsField::kGuestIa32Debugctl, "guest_ia32_debugctl", kGuest, w64, 64),
    MakeInfo(VmcsField::kGuestIa32Pat, "guest_ia32_pat", kGuest, w64, 64),
    MakeInfo(VmcsField::kGuestIa32Efer, "guest_ia32_efer", kGuest, w64, 64),
    MakeInfo(VmcsField::kGuestIa32PerfGlobalCtrl, "guest_ia32_perf_global_ctrl", kGuest, w64, 64),
    MakeInfo(VmcsField::kGuestPdptr0, "guest_pdptr0", kGuest, w64, 64),
    MakeInfo(VmcsField::kGuestPdptr1, "guest_pdptr1", kGuest, w64, 64),
    MakeInfo(VmcsField::kGuestPdptr2, "guest_pdptr2", kGuest, w64, 64),
    MakeInfo(VmcsField::kGuestPdptr3, "guest_pdptr3", kGuest, w64, 64),
    MakeInfo(VmcsField::kGuestIa32Bndcfgs, "guest_ia32_bndcfgs", kGuest, w64, 64),
    MakeInfo(VmcsField::kGuestIa32RtitCtl, "guest_ia32_rtit_ctl", kGuest, w64, 64),
    MakeInfo(VmcsField::kGuestIa32LbrCtl, "guest_ia32_lbr_ctl", kGuest, w64, 64),
    // --- 64-bit host-state fields ---
    MakeInfo(VmcsField::kHostIa32Pat, "host_ia32_pat", kHost, w64, 64),
    MakeInfo(VmcsField::kHostIa32Efer, "host_ia32_efer", kHost, w64, 64),
    MakeInfo(VmcsField::kHostIa32PerfGlobalCtrl, "host_ia32_perf_global_ctrl", kHost, w64, 64),
    // --- 32-bit control fields ---
    MakeInfo(VmcsField::kPinBasedVmExecControl, "pin_based_vm_exec_control", kControl, w32, 32),
    MakeInfo(VmcsField::kCpuBasedVmExecControl, "cpu_based_vm_exec_control", kControl, w32, 32),
    MakeInfo(VmcsField::kExceptionBitmap, "exception_bitmap", kControl, w32, 32),
    MakeInfo(VmcsField::kPageFaultErrorCodeMask, "page_fault_error_code_mask", kControl, w32, 32),
    MakeInfo(VmcsField::kPageFaultErrorCodeMatch, "page_fault_error_code_match", kControl, w32, 32),
    MakeInfo(VmcsField::kCr3TargetCount, "cr3_target_count", kControl, w32, 32),
    MakeInfo(VmcsField::kVmExitControls, "vm_exit_controls", kControl, w32, 32),
    MakeInfo(VmcsField::kVmExitMsrStoreCount, "vm_exit_msr_store_count", kControl, w32, 32),
    MakeInfo(VmcsField::kVmExitMsrLoadCount, "vm_exit_msr_load_count", kControl, w32, 32),
    MakeInfo(VmcsField::kVmEntryControls, "vm_entry_controls", kControl, w32, 32),
    MakeInfo(VmcsField::kVmEntryMsrLoadCount, "vm_entry_msr_load_count", kControl, w32, 32),
    MakeInfo(VmcsField::kVmEntryIntrInfoField, "vm_entry_intr_info", kControl, w32, 32),
    MakeInfo(VmcsField::kVmEntryExceptionErrorCode, "vm_entry_exception_error_code", kControl, w32, 32),
    MakeInfo(VmcsField::kVmEntryInstructionLen, "vm_entry_instruction_len", kControl, w32, 32),
    MakeInfo(VmcsField::kTprThreshold, "tpr_threshold", kControl, w32, 32),
    MakeInfo(VmcsField::kSecondaryVmExecControl, "secondary_vm_exec_control", kControl, w32, 32),
    MakeInfo(VmcsField::kPleGap, "ple_gap", kControl, w32, 32),
    MakeInfo(VmcsField::kPleWindow, "ple_window", kControl, w32, 32),
    // --- 32-bit read-only data fields ---
    MakeInfo(VmcsField::kVmInstructionError, "vm_instruction_error", kRo, w32, 32),
    MakeInfo(VmcsField::kVmExitReason, "vm_exit_reason", kRo, w32, 32),
    MakeInfo(VmcsField::kVmExitIntrInfo, "vm_exit_intr_info", kRo, w32, 32),
    MakeInfo(VmcsField::kVmExitIntrErrorCode, "vm_exit_intr_error_code", kRo, w32, 32),
    MakeInfo(VmcsField::kIdtVectoringInfoField, "idt_vectoring_info", kRo, w32, 32),
    MakeInfo(VmcsField::kIdtVectoringErrorCode, "idt_vectoring_error_code", kRo, w32, 32),
    MakeInfo(VmcsField::kVmExitInstructionLen, "vm_exit_instruction_len", kRo, w32, 32),
    MakeInfo(VmcsField::kVmxInstructionInfo, "vmx_instruction_info", kRo, w32, 32),
    // --- 32-bit guest-state fields ---
    MakeInfo(VmcsField::kGuestEsLimit, "guest_es_limit", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestCsLimit, "guest_cs_limit", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestSsLimit, "guest_ss_limit", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestDsLimit, "guest_ds_limit", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestFsLimit, "guest_fs_limit", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestGsLimit, "guest_gs_limit", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestLdtrLimit, "guest_ldtr_limit", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestTrLimit, "guest_tr_limit", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestGdtrLimit, "guest_gdtr_limit", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestIdtrLimit, "guest_idtr_limit", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestEsArBytes, "guest_es_ar_bytes", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestCsArBytes, "guest_cs_ar_bytes", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestSsArBytes, "guest_ss_ar_bytes", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestDsArBytes, "guest_ds_ar_bytes", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestFsArBytes, "guest_fs_ar_bytes", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestGsArBytes, "guest_gs_ar_bytes", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestLdtrArBytes, "guest_ldtr_ar_bytes", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestTrArBytes, "guest_tr_ar_bytes", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestInterruptibilityInfo, "guest_interruptibility_info", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestActivityState, "guest_activity_state", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestSmbase, "guest_smbase", kGuest, w32, 32),
    MakeInfo(VmcsField::kGuestSysenterCs, "guest_sysenter_cs", kGuest, w32, 32),
    MakeInfo(VmcsField::kVmxPreemptionTimerValue, "vmx_preemption_timer_value", kGuest, w32, 32),
    // --- 32-bit host-state field ---
    MakeInfo(VmcsField::kHostIa32SysenterCs, "host_ia32_sysenter_cs", kHost, w32, 32),
    // --- Natural-width control fields ---
    MakeInfo(VmcsField::kCr0GuestHostMask, "cr0_guest_host_mask", kControl, wNat, 64),
    MakeInfo(VmcsField::kCr4GuestHostMask, "cr4_guest_host_mask", kControl, wNat, 64),
    MakeInfo(VmcsField::kCr0ReadShadow, "cr0_read_shadow", kControl, wNat, 64),
    MakeInfo(VmcsField::kCr4ReadShadow, "cr4_read_shadow", kControl, wNat, 64),
    MakeInfo(VmcsField::kCr3TargetValue0, "cr3_target_value0", kControl, wNat, 64),
    MakeInfo(VmcsField::kCr3TargetValue1, "cr3_target_value1", kControl, wNat, 64),
    MakeInfo(VmcsField::kCr3TargetValue2, "cr3_target_value2", kControl, wNat, 64),
    MakeInfo(VmcsField::kCr3TargetValue3, "cr3_target_value3", kControl, wNat, 64),
    // --- Natural-width read-only data fields ---
    MakeInfo(VmcsField::kExitQualification, "exit_qualification", kRo, wNat, 64),
    MakeInfo(VmcsField::kIoRcx, "io_rcx", kRo, wNat, 64),
    MakeInfo(VmcsField::kIoRsi, "io_rsi", kRo, wNat, 64),
    MakeInfo(VmcsField::kIoRdi, "io_rdi", kRo, wNat, 64),
    MakeInfo(VmcsField::kIoRip, "io_rip", kRo, wNat, 64),
    MakeInfo(VmcsField::kGuestLinearAddress, "guest_linear_address", kRo, wNat, 64),
    // --- Natural-width guest-state fields ---
    MakeInfo(VmcsField::kGuestCr0, "guest_cr0", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestCr3, "guest_cr3", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestCr4, "guest_cr4", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestEsBase, "guest_es_base", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestCsBase, "guest_cs_base", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestSsBase, "guest_ss_base", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestDsBase, "guest_ds_base", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestFsBase, "guest_fs_base", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestGsBase, "guest_gs_base", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestLdtrBase, "guest_ldtr_base", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestTrBase, "guest_tr_base", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestGdtrBase, "guest_gdtr_base", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestIdtrBase, "guest_idtr_base", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestDr7, "guest_dr7", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestRsp, "guest_rsp", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestRip, "guest_rip", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestRflags, "guest_rflags", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestPendingDbgExceptions, "guest_pending_dbg_exceptions", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestSysenterEsp, "guest_sysenter_esp", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestSysenterEip, "guest_sysenter_eip", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestSCet, "guest_s_cet", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestSsp, "guest_ssp", kGuest, wNat, 64),
    MakeInfo(VmcsField::kGuestIntrSspTable, "guest_intr_ssp_table", kGuest, wNat, 64),
    // --- Natural-width host-state fields ---
    MakeInfo(VmcsField::kHostCr0, "host_cr0", kHost, wNat, 64),
    MakeInfo(VmcsField::kHostCr3, "host_cr3", kHost, wNat, 64),
    MakeInfo(VmcsField::kHostCr4, "host_cr4", kHost, wNat, 64),
    MakeInfo(VmcsField::kHostFsBase, "host_fs_base", kHost, wNat, 64),
    MakeInfo(VmcsField::kHostGsBase, "host_gs_base", kHost, wNat, 64),
    MakeInfo(VmcsField::kHostTrBase, "host_tr_base", kHost, wNat, 64),
    MakeInfo(VmcsField::kHostGdtrBase, "host_gdtr_base", kHost, wNat, 64),
    MakeInfo(VmcsField::kHostIdtrBase, "host_idtr_base", kHost, wNat, 64),
    MakeInfo(VmcsField::kHostIa32SysenterEsp, "host_ia32_sysenter_esp", kHost, wNat, 64),
    MakeInfo(VmcsField::kHostIa32SysenterEip, "host_ia32_sysenter_eip", kHost, wNat, 64),
    MakeInfo(VmcsField::kHostSCet, "host_s_cet", kHost, wNat, 64),
    MakeInfo(VmcsField::kHostSsp, "host_ssp", kHost, wNat, 64),
    MakeInfo(VmcsField::kHostIntrSspTable, "host_intr_ssp_table", kHost, wNat, 64),
    MakeInfo(VmcsField::kHostRsp, "host_rsp", kHost, wNat, 64),
    MakeInfo(VmcsField::kHostRip, "host_rip", kHost, wNat, 64),
}};

}  // namespace

std::span<const VmcsFieldInfo> VmcsFieldTable() { return kTable; }

size_t VmcsFieldCount() { return kTable.size(); }

size_t VmcsTotalBits() {
  size_t total = 0;
  for (const auto& info : kTable) {
    total += info.bits;
  }
  return total;
}

const VmcsFieldInfo* FindVmcsField(VmcsField field) {
  for (const auto& info : kTable) {
    if (info.field == field) {
      return &info;
    }
  }
  return nullptr;
}

const VmcsFieldInfo* FindVmcsField(uint32_t encoding) {
  return FindVmcsField(static_cast<VmcsField>(encoding));
}

int VmcsFieldIndex(VmcsField field) {
  for (size_t i = 0; i < kTable.size(); ++i) {
    if (kTable[i].field == field) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

VmcsFieldWidth WidthClassOfEncoding(uint32_t encoding) {
  return static_cast<VmcsFieldWidth>((encoding >> 13) & 0x3);
}

bool IsReadOnlyField(VmcsField field) {
  const VmcsFieldInfo* info = FindVmcsField(field);
  return info != nullptr && info->group == VmcsFieldGroup::kReadOnlyData;
}

std::string_view VmcsFieldName(VmcsField field) {
  const VmcsFieldInfo* info = FindVmcsField(field);
  return info != nullptr ? info->name : std::string_view("<unknown>");
}

}  // namespace neco
