// AMD-V VMCB model (control area + state-save area).
//
// Field names follow the AMD APM Vol. 2 Appendix B layout. Like the Vmcs
// model, a Vmcb stores one value per named field with a declared semantic
// width, and supports flattening to a dense bit image for raw fuzz-input
// interpretation and mutation.
#ifndef SRC_ARCH_VMCB_H_
#define SRC_ARCH_VMCB_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/support/bits.h"

namespace neco {

enum class VmcbField : uint16_t {
  // --- Control area ---
  kInterceptCrRead = 0,
  kInterceptCrWrite,
  kInterceptDrRead,
  kInterceptDrWrite,
  kInterceptExceptions,
  kInterceptVec3,      // Instruction intercepts incl. VMRUN/VMMCALL/...
  kInterceptVec4,      // VMLOAD/VMSAVE/STGI/CLGI/SKINIT/...
  kPauseFilterThresh,
  kPauseFilterCount,
  kIopmBasePa,
  kMsrpmBasePa,
  kTscOffset,
  kGuestAsid,
  kTlbControl,
  kVIntr,              // V_TPR / V_IRQ / V_INTR_MASKING / V_GIF / V_GIF_ENABLE.
  kInterruptShadow,
  kExitCode,
  kExitInfo1,
  kExitInfo2,
  kExitIntInfo,
  kNestedCtl,          // Bit 0: NP_ENABLE.
  kAvicApicBar,
  kEventInj,
  kNestedCr3,
  kVirtExt,            // Bit 0: LBR virt, bit 1: virtualized VMLOAD/VMSAVE.
  kVmcbClean,
  kNextRip,
  kAvicBackingPage,
  kAvicLogicalTable,
  kAvicPhysicalTable,
  // --- State-save area: segments ---
  kEsSelector, kEsAttrib, kEsLimit, kEsBase,
  kCsSelector, kCsAttrib, kCsLimit, kCsBase,
  kSsSelector, kSsAttrib, kSsLimit, kSsBase,
  kDsSelector, kDsAttrib, kDsLimit, kDsBase,
  kFsSelector, kFsAttrib, kFsLimit, kFsBase,
  kGsSelector, kGsAttrib, kGsLimit, kGsBase,
  kGdtrSelector, kGdtrAttrib, kGdtrLimit, kGdtrBase,
  kLdtrSelector, kLdtrAttrib, kLdtrLimit, kLdtrBase,
  kIdtrSelector, kIdtrAttrib, kIdtrLimit, kIdtrBase,
  kTrSelector, kTrAttrib, kTrLimit, kTrBase,
  // --- State-save area: system state ---
  kCpl,
  kEfer,
  kCr4,
  kCr3,
  kCr0,
  kDr7,
  kDr6,
  kRflags,
  kRip,
  kRsp,
  kRax,
  kStar,
  kLstar,
  kCstar,
  kSfmask,
  kKernelGsBase,
  kSysenterCs,
  kSysenterEsp,
  kSysenterEip,
  kCr2,
  kGPat,
  kDbgCtl,
  kBrFrom,
  kBrTo,
  kLastExcpFrom,
  kLastExcpTo,
  kCount,
};

constexpr size_t kNumVmcbFields = static_cast<size_t>(VmcbField::kCount);

enum class VmcbArea : uint8_t { kControl, kSave };

struct VmcbFieldInfo {
  VmcbField field;
  std::string_view name;
  VmcbArea area;
  uint8_t bits;
};

std::span<const VmcbFieldInfo> VmcbFieldTable();
size_t VmcbTotalBits();
const VmcbFieldInfo* FindVmcbField(VmcbField field);
std::string_view VmcbFieldName(VmcbField field);

// Intercept bits in kInterceptVec3 (APM vector 3).
struct SvmIntercept3 {
  static constexpr uint32_t kIntr = 1u << 0;
  static constexpr uint32_t kNmi = 1u << 1;
  static constexpr uint32_t kSmi = 1u << 2;
  static constexpr uint32_t kInit = 1u << 3;
  static constexpr uint32_t kVintr = 1u << 4;
  static constexpr uint32_t kCr0SelWrite = 1u << 5;
  static constexpr uint32_t kRdtsc = 1u << 9;
  static constexpr uint32_t kRdpmc = 1u << 10;
  static constexpr uint32_t kPushf = 1u << 11;
  static constexpr uint32_t kPopf = 1u << 12;
  static constexpr uint32_t kCpuid = 1u << 13;
  static constexpr uint32_t kRsm = 1u << 14;
  static constexpr uint32_t kIret = 1u << 15;
  static constexpr uint32_t kIntN = 1u << 16;
  static constexpr uint32_t kInvd = 1u << 17;
  static constexpr uint32_t kPause = 1u << 18;
  static constexpr uint32_t kHlt = 1u << 19;
  static constexpr uint32_t kInvlpg = 1u << 20;
  static constexpr uint32_t kInvlpga = 1u << 21;
  static constexpr uint32_t kIoioProt = 1u << 27;
  static constexpr uint32_t kMsrProt = 1u << 28;
  static constexpr uint32_t kTaskSwitch = 1u << 29;
  static constexpr uint32_t kFerrFreeze = 1u << 30;
  static constexpr uint32_t kShutdown = 1u << 31;
};

// Intercept bits in kInterceptVec4 (APM vector 4).
struct SvmIntercept4 {
  static constexpr uint32_t kVmrun = 1u << 0;
  static constexpr uint32_t kVmmcall = 1u << 1;
  static constexpr uint32_t kVmload = 1u << 2;
  static constexpr uint32_t kVmsave = 1u << 3;
  static constexpr uint32_t kStgi = 1u << 4;
  static constexpr uint32_t kClgi = 1u << 5;
  static constexpr uint32_t kSkinit = 1u << 6;
  static constexpr uint32_t kRdtscp = 1u << 7;
  static constexpr uint32_t kIcebp = 1u << 8;
  static constexpr uint32_t kWbinvd = 1u << 9;
  static constexpr uint32_t kMonitor = 1u << 10;
  static constexpr uint32_t kMwait = 1u << 11;
  static constexpr uint32_t kXsetbv = 1u << 13;
};

// kVIntr sub-fields.
struct SvmVintr {
  static constexpr uint64_t kVTprMask = 0xffULL;
  static constexpr uint64_t kVIrq = Bit(8);
  static constexpr uint64_t kVGif = Bit(9);
  static constexpr uint64_t kVIntrMasking = Bit(24);
  static constexpr uint64_t kVGifEnable = Bit(25);
  static constexpr uint64_t kAvicEnable = Bit(31);
};

// SVM exit codes (APM Appendix C) — subset the simulators dispatch on.
enum class SvmExitCode : uint64_t {
  kCr0Read = 0x000,
  kCr0Write = 0x010,
  kCr3Write = 0x013,
  kCr4Write = 0x014,
  kExcpBase = 0x040,
  kIntr = 0x060,
  kNmi = 0x061,
  kVintr = 0x064,
  kCpuid = 0x072,
  kIret = 0x074,
  kPause = 0x077,
  kHlt = 0x078,
  kInvlpg = 0x079,
  kInvlpga = 0x07a,
  kIoio = 0x07b,
  kMsr = 0x07c,
  kTaskSwitch = 0x07d,
  kShutdown = 0x07f,
  kVmrun = 0x080,
  kVmmcall = 0x081,
  kVmload = 0x082,
  kVmsave = 0x083,
  kStgi = 0x084,
  kClgi = 0x085,
  kSkinit = 0x086,
  kRdtscp = 0x087,
  kWbinvd = 0x089,
  kMonitor = 0x08a,
  kMwait = 0x08b,
  kXsetbv = 0x08d,
  kNpf = 0x400,
  kAvicIncompleteIpi = 0x401,
  kAvicNoAccel = 0x402,
  kVmgexit = 0x403,
  kInvalid = ~0ULL,  // VMEXIT_INVALID: consistency-check failure.
};

class Vmcb {
 public:
  Vmcb();

  uint64_t Read(VmcbField field) const;
  bool Write(VmcbField field, uint64_t value);

  std::vector<uint8_t> ToBitImage() const;
  void FromBitImage(std::span<const uint8_t> image);
  static size_t BitImageSize() { return (VmcbTotalBits() + 7) / 8; }

  bool operator==(const Vmcb& other) const { return values_ == other.values_; }

 private:
  std::vector<uint64_t> values_;
};

// A minimally valid VMCB for a 64-bit L2 guest (golden configuration).
Vmcb MakeDefaultVmcb();

}  // namespace neco

#endif  // SRC_ARCH_VMCB_H_
