// Intel VT-x VMCS field model.
//
// Field encodings follow the Intel SDM Vol. 3 Appendix B layout (the same
// constants Linux carries in arch/x86/include/asm/vmx.h). The table also
// records, per field, the *semantic* bit width used when flattening a VMCS
// into the bit image that the paper's Section 5.3.2 measures Hamming
// distances over ("an 8,000-bit VM state across 165 fields with predefined
// widths").
#ifndef SRC_ARCH_VMX_FIELDS_H_
#define SRC_ARCH_VMX_FIELDS_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace neco {

// VMCS field encodings (Intel SDM Vol. 3, Appendix B).
enum class VmcsField : uint32_t {
  // 16-bit control fields.
  kVirtualProcessorId = 0x0000,
  kPostedIntrNotificationVector = 0x0002,
  kEptpIndex = 0x0004,
  // 16-bit guest-state fields.
  kGuestEsSelector = 0x0800,
  kGuestCsSelector = 0x0802,
  kGuestSsSelector = 0x0804,
  kGuestDsSelector = 0x0806,
  kGuestFsSelector = 0x0808,
  kGuestGsSelector = 0x080a,
  kGuestLdtrSelector = 0x080c,
  kGuestTrSelector = 0x080e,
  kGuestIntrStatus = 0x0810,
  kGuestPmlIndex = 0x0812,
  // 16-bit host-state fields.
  kHostEsSelector = 0x0c00,
  kHostCsSelector = 0x0c02,
  kHostSsSelector = 0x0c04,
  kHostDsSelector = 0x0c06,
  kHostFsSelector = 0x0c08,
  kHostGsSelector = 0x0c0a,
  kHostTrSelector = 0x0c0c,
  // 64-bit control fields.
  kIoBitmapA = 0x2000,
  kIoBitmapB = 0x2002,
  kMsrBitmap = 0x2004,
  kVmExitMsrStoreAddr = 0x2006,
  kVmExitMsrLoadAddr = 0x2008,
  kVmEntryMsrLoadAddr = 0x200a,
  kExecutiveVmcsPointer = 0x200c,
  kPmlAddress = 0x200e,
  kTscOffset = 0x2010,
  kVirtualApicPageAddr = 0x2012,
  kApicAccessAddr = 0x2014,
  kPostedIntrDescAddr = 0x2016,
  kVmFunctionControl = 0x2018,
  kEptPointer = 0x201a,
  kEoiExitBitmap0 = 0x201c,
  kEoiExitBitmap1 = 0x201e,
  kEoiExitBitmap2 = 0x2020,
  kEoiExitBitmap3 = 0x2022,
  kEptpListAddress = 0x2024,
  kVmreadBitmap = 0x2026,
  kVmwriteBitmap = 0x2028,
  kVirtExceptionInfoAddr = 0x202a,
  kXssExitBitmap = 0x202c,
  kEnclsExitingBitmap = 0x202e,
  kSppTablePointer = 0x2030,
  kTscMultiplier = 0x2032,
  kTertiaryVmExecControl = 0x2034,
  // 64-bit read-only data field.
  kGuestPhysicalAddress = 0x2400,
  // 64-bit guest-state fields.
  kVmcsLinkPointer = 0x2800,
  kGuestIa32Debugctl = 0x2802,
  kGuestIa32Pat = 0x2804,
  kGuestIa32Efer = 0x2806,
  kGuestIa32PerfGlobalCtrl = 0x2808,
  kGuestPdptr0 = 0x280a,
  kGuestPdptr1 = 0x280c,
  kGuestPdptr2 = 0x280e,
  kGuestPdptr3 = 0x2810,
  kGuestIa32Bndcfgs = 0x2812,
  kGuestIa32RtitCtl = 0x2814,
  kGuestIa32LbrCtl = 0x2816,
  // 64-bit host-state fields.
  kHostIa32Pat = 0x2c00,
  kHostIa32Efer = 0x2c02,
  kHostIa32PerfGlobalCtrl = 0x2c04,
  // 32-bit control fields.
  kPinBasedVmExecControl = 0x4000,
  kCpuBasedVmExecControl = 0x4002,
  kExceptionBitmap = 0x4004,
  kPageFaultErrorCodeMask = 0x4006,
  kPageFaultErrorCodeMatch = 0x4008,
  kCr3TargetCount = 0x400a,
  kVmExitControls = 0x400c,
  kVmExitMsrStoreCount = 0x400e,
  kVmExitMsrLoadCount = 0x4010,
  kVmEntryControls = 0x4012,
  kVmEntryMsrLoadCount = 0x4014,
  kVmEntryIntrInfoField = 0x4016,
  kVmEntryExceptionErrorCode = 0x4018,
  kVmEntryInstructionLen = 0x401a,
  kTprThreshold = 0x401c,
  kSecondaryVmExecControl = 0x401e,
  kPleGap = 0x4020,
  kPleWindow = 0x4022,
  // 32-bit read-only data fields.
  kVmInstructionError = 0x4400,
  kVmExitReason = 0x4402,
  kVmExitIntrInfo = 0x4404,
  kVmExitIntrErrorCode = 0x4406,
  kIdtVectoringInfoField = 0x4408,
  kIdtVectoringErrorCode = 0x440a,
  kVmExitInstructionLen = 0x440c,
  kVmxInstructionInfo = 0x440e,
  // 32-bit guest-state fields.
  kGuestEsLimit = 0x4800,
  kGuestCsLimit = 0x4802,
  kGuestSsLimit = 0x4804,
  kGuestDsLimit = 0x4806,
  kGuestFsLimit = 0x4808,
  kGuestGsLimit = 0x480a,
  kGuestLdtrLimit = 0x480c,
  kGuestTrLimit = 0x480e,
  kGuestGdtrLimit = 0x4810,
  kGuestIdtrLimit = 0x4812,
  kGuestEsArBytes = 0x4814,
  kGuestCsArBytes = 0x4816,
  kGuestSsArBytes = 0x4818,
  kGuestDsArBytes = 0x481a,
  kGuestFsArBytes = 0x481c,
  kGuestGsArBytes = 0x481e,
  kGuestLdtrArBytes = 0x4820,
  kGuestTrArBytes = 0x4822,
  kGuestInterruptibilityInfo = 0x4824,
  kGuestActivityState = 0x4826,
  kGuestSmbase = 0x4828,
  kGuestSysenterCs = 0x482a,
  kVmxPreemptionTimerValue = 0x482e,
  // 32-bit host-state field.
  kHostIa32SysenterCs = 0x4c00,
  // Natural-width control fields.
  kCr0GuestHostMask = 0x6000,
  kCr4GuestHostMask = 0x6002,
  kCr0ReadShadow = 0x6004,
  kCr4ReadShadow = 0x6006,
  kCr3TargetValue0 = 0x6008,
  kCr3TargetValue1 = 0x600a,
  kCr3TargetValue2 = 0x600c,
  kCr3TargetValue3 = 0x600e,
  // Natural-width read-only data fields.
  kExitQualification = 0x6400,
  kIoRcx = 0x6402,
  kIoRsi = 0x6404,
  kIoRdi = 0x6406,
  kIoRip = 0x6408,
  kGuestLinearAddress = 0x640a,
  // Natural-width guest-state fields.
  kGuestCr0 = 0x6800,
  kGuestCr3 = 0x6802,
  kGuestCr4 = 0x6804,
  kGuestEsBase = 0x6806,
  kGuestCsBase = 0x6808,
  kGuestSsBase = 0x680a,
  kGuestDsBase = 0x680c,
  kGuestFsBase = 0x680e,
  kGuestGsBase = 0x6810,
  kGuestLdtrBase = 0x6812,
  kGuestTrBase = 0x6814,
  kGuestGdtrBase = 0x6816,
  kGuestIdtrBase = 0x6818,
  kGuestDr7 = 0x681a,
  kGuestRsp = 0x681c,
  kGuestRip = 0x681e,
  kGuestRflags = 0x6820,
  kGuestPendingDbgExceptions = 0x6822,
  kGuestSysenterEsp = 0x6824,
  kGuestSysenterEip = 0x6826,
  kGuestSCet = 0x6828,
  kGuestSsp = 0x682a,
  kGuestIntrSspTable = 0x682c,
  // Natural-width host-state fields.
  kHostCr0 = 0x6c00,
  kHostCr3 = 0x6c02,
  kHostCr4 = 0x6c04,
  kHostFsBase = 0x6c06,
  kHostGsBase = 0x6c08,
  kHostTrBase = 0x6c0a,
  kHostGdtrBase = 0x6c0c,
  kHostIdtrBase = 0x6c0e,
  kHostIa32SysenterEsp = 0x6c10,
  kHostIa32SysenterEip = 0x6c12,
  kHostRsp = 0x6c14,
  kHostRip = 0x6c16,
  kHostSCet = 0x6c18,
  kHostSsp = 0x6c1a,
  kHostIntrSspTable = 0x6c1c,
};

// VMCS field groups. Rounding proceeds control -> host -> guest
// (Section 4.3 of the paper); read-only fields are never inputs to
// VM entry and are excluded from mutation.
enum class VmcsFieldGroup : uint8_t {
  kControl,
  kGuestState,
  kHostState,
  kReadOnlyData,
};

// Architectural access width class (SDM encoding bits 14:13).
enum class VmcsFieldWidth : uint8_t {
  k16 = 0,
  k64 = 1,
  k32 = 2,
  kNatural = 3,
};

struct VmcsFieldInfo {
  VmcsField field;
  std::string_view name;
  VmcsFieldGroup group;
  VmcsFieldWidth width_class;
  // Semantic bit width used for the flattened bit image and for bounding
  // bit-selection during boundary mutation.
  uint8_t bits;
};

// Full field table, ordered by encoding. The count and the total bit size
// are exposed so the Figure 5 bench can report the state-space geometry.
std::span<const VmcsFieldInfo> VmcsFieldTable();

// Number of fields in the table (the paper's layout has 165).
size_t VmcsFieldCount();

// Sum of semantic widths in bits (the paper's layout spans 8,000 bits).
size_t VmcsTotalBits();

// Lookup; returns nullptr for an encoding outside the table.
const VmcsFieldInfo* FindVmcsField(VmcsField field);
const VmcsFieldInfo* FindVmcsField(uint32_t encoding);

// Dense index of a field within the table, or -1.
int VmcsFieldIndex(VmcsField field);

// Derive the width class from the raw encoding (SDM bits 14:13).
VmcsFieldWidth WidthClassOfEncoding(uint32_t encoding);

// True if the encoding denotes a read-only (VM-exit information) field.
bool IsReadOnlyField(VmcsField field);

std::string_view VmcsFieldName(VmcsField field);

}  // namespace neco

#endif  // SRC_ARCH_VMX_FIELDS_H_
