// vCPU feature model.
//
// The paper's vCPU configurator mutates "a bit array, where each bit
// indicates whether a specific CPU feature is enabled or disabled"
// (Section 4.4). This header enumerates the hardware-assisted
// virtualization features that configuration space covers, for both Intel
// VT-x and AMD-V.
#ifndef SRC_ARCH_CPU_FEATURES_H_
#define SRC_ARCH_CPU_FEATURES_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace neco {

enum class Arch : uint8_t {
  kIntel,
  kAmd,
};

std::string_view ArchName(Arch arch);

// Configurable hardware-assisted virtualization features. The first block
// applies to Intel VT-x, the second to AMD-V; a few are cross-vendor.
enum class CpuFeature : uint8_t {
  // Intel VT-x.
  kEpt = 0,               // Extended page tables.
  kUnrestrictedGuest,     // Real-mode guests without emulation.
  kVpid,                  // Virtual processor IDs.
  kVmcsShadowing,         // vmread/vmwrite bitmaps.
  kApicRegisterVirt,      // APIC register virtualization.
  kVirtIntrDelivery,      // Virtual interrupt delivery.
  kPostedInterrupts,      // Posted-interrupt processing.
  kPreemptionTimer,       // VMX preemption timer.
  kEptAccessedDirty,      // EPT A/D bits.
  kPml,                   // Page-modification logging.
  kTscScaling,            // TSC multiplier.
  kXsaves,                // XSAVES/XRSTORS in non-root.
  kInvpcid,               // INVPCID in non-root.
  kVmfunc,                // VM functions (EPTP switching).
  kEnclsExiting,          // SGX ENCLS exiting.
  kModeBasedEptExec,      // MBEC.
  // AMD-V.
  kNpt,                   // Nested page tables.
  kNrips,                 // Next-RIP save.
  kVgif,                  // Virtual global interrupt flag.
  kAvic,                  // Advanced virtual interrupt controller.
  kVls,                   // Virtual VMLOAD/VMSAVE.
  kLbrv,                  // LBR virtualization.
  kPauseFilter,           // PAUSE intercept filter.
  kDecodeAssists,         // Decode assists.
  kTscRateMsr,            // TSC ratio.
  kFlushByAsid,           // TLB flush by ASID.
  // Cross-vendor knobs exposed by hypervisor command lines.
  kNestedVirt,            // Expose VMX/SVM to the L1 guest at all.
  kEnlightenedVmcs,       // Hyper-V enlightened VMCS (Intel only in KVM).
  kCount,                 // Sentinel.
};

constexpr size_t kNumCpuFeatures = static_cast<size_t>(CpuFeature::kCount);

std::string_view CpuFeatureName(CpuFeature f);

// True if the feature is meaningful on the given architecture.
bool FeatureAppliesTo(CpuFeature f, Arch arch);

// Dense bit-set over CpuFeature.
class CpuFeatureSet {
 public:
  CpuFeatureSet() = default;

  bool Has(CpuFeature f) const {
    return (bits_ & (1ULL << static_cast<unsigned>(f))) != 0;
  }

  CpuFeatureSet& Set(CpuFeature f, bool on = true) {
    const uint64_t bit = 1ULL << static_cast<unsigned>(f);
    bits_ = on ? (bits_ | bit) : (bits_ & ~bit);
    return *this;
  }

  uint64_t raw() const { return bits_; }
  void set_raw(uint64_t raw) {
    bits_ = raw & ((1ULL << kNumCpuFeatures) - 1);
  }

  // Drop features that do not apply to `arch`.
  CpuFeatureSet RestrictedTo(Arch arch) const;

  // Human-readable comma-separated list of enabled features.
  std::string ToString() const;

  bool operator==(const CpuFeatureSet&) const = default;

 private:
  uint64_t bits_ = 0;
};

// Everything a modern part of the given vendor supports.
CpuFeatureSet FullFeatureSet(Arch arch);

// The configuration hypervisors ship by default (nested enabled, all
// acceleration features on). Used when the vCPU configurator is disabled in
// the Table 3 ablation.
CpuFeatureSet DefaultFeatureSet(Arch arch);

}  // namespace neco

#endif  // SRC_ARCH_CPU_FEATURES_H_
