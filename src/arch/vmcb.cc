#include "src/arch/vmcb.h"

#include <array>

#include "src/arch/vmx_bits.h"

namespace neco {
namespace {

constexpr auto kCtl = VmcbArea::kControl;
constexpr auto kSave = VmcbArea::kSave;

constexpr std::array<VmcbFieldInfo, kNumVmcbFields> BuildTable() {
  std::array<VmcbFieldInfo, kNumVmcbFields> t{};
  auto set = [&t](VmcbField f, std::string_view name, VmcbArea a,
                  uint8_t bits) {
    t[static_cast<size_t>(f)] = VmcbFieldInfo{f, name, a, bits};
  };
  set(VmcbField::kInterceptCrRead, "intercept_cr_read", kCtl, 16);
  set(VmcbField::kInterceptCrWrite, "intercept_cr_write", kCtl, 16);
  set(VmcbField::kInterceptDrRead, "intercept_dr_read", kCtl, 16);
  set(VmcbField::kInterceptDrWrite, "intercept_dr_write", kCtl, 16);
  set(VmcbField::kInterceptExceptions, "intercept_exceptions", kCtl, 32);
  set(VmcbField::kInterceptVec3, "intercept_vec3", kCtl, 32);
  set(VmcbField::kInterceptVec4, "intercept_vec4", kCtl, 32);
  set(VmcbField::kPauseFilterThresh, "pause_filter_thresh", kCtl, 16);
  set(VmcbField::kPauseFilterCount, "pause_filter_count", kCtl, 16);
  set(VmcbField::kIopmBasePa, "iopm_base_pa", kCtl, 64);
  set(VmcbField::kMsrpmBasePa, "msrpm_base_pa", kCtl, 64);
  set(VmcbField::kTscOffset, "tsc_offset", kCtl, 64);
  set(VmcbField::kGuestAsid, "guest_asid", kCtl, 32);
  set(VmcbField::kTlbControl, "tlb_control", kCtl, 8);
  set(VmcbField::kVIntr, "v_intr", kCtl, 64);
  set(VmcbField::kInterruptShadow, "interrupt_shadow", kCtl, 64);
  set(VmcbField::kExitCode, "exit_code", kCtl, 64);
  set(VmcbField::kExitInfo1, "exit_info1", kCtl, 64);
  set(VmcbField::kExitInfo2, "exit_info2", kCtl, 64);
  set(VmcbField::kExitIntInfo, "exit_int_info", kCtl, 64);
  set(VmcbField::kNestedCtl, "nested_ctl", kCtl, 64);
  set(VmcbField::kAvicApicBar, "avic_apic_bar", kCtl, 64);
  set(VmcbField::kEventInj, "event_inj", kCtl, 64);
  set(VmcbField::kNestedCr3, "nested_cr3", kCtl, 64);
  set(VmcbField::kVirtExt, "virt_ext", kCtl, 64);
  set(VmcbField::kVmcbClean, "vmcb_clean", kCtl, 32);
  set(VmcbField::kNextRip, "next_rip", kCtl, 64);
  set(VmcbField::kAvicBackingPage, "avic_backing_page", kCtl, 64);
  set(VmcbField::kAvicLogicalTable, "avic_logical_table", kCtl, 64);
  set(VmcbField::kAvicPhysicalTable, "avic_physical_table", kCtl, 64);

  struct Seg {
    VmcbField sel, attrib, limit, base;
    std::string_view prefix;
  };
  constexpr Seg segs[] = {
      {VmcbField::kEsSelector, VmcbField::kEsAttrib, VmcbField::kEsLimit, VmcbField::kEsBase, "es"},
      {VmcbField::kCsSelector, VmcbField::kCsAttrib, VmcbField::kCsLimit, VmcbField::kCsBase, "cs"},
      {VmcbField::kSsSelector, VmcbField::kSsAttrib, VmcbField::kSsLimit, VmcbField::kSsBase, "ss"},
      {VmcbField::kDsSelector, VmcbField::kDsAttrib, VmcbField::kDsLimit, VmcbField::kDsBase, "ds"},
      {VmcbField::kFsSelector, VmcbField::kFsAttrib, VmcbField::kFsLimit, VmcbField::kFsBase, "fs"},
      {VmcbField::kGsSelector, VmcbField::kGsAttrib, VmcbField::kGsLimit, VmcbField::kGsBase, "gs"},
      {VmcbField::kGdtrSelector, VmcbField::kGdtrAttrib, VmcbField::kGdtrLimit, VmcbField::kGdtrBase, "gdtr"},
      {VmcbField::kLdtrSelector, VmcbField::kLdtrAttrib, VmcbField::kLdtrLimit, VmcbField::kLdtrBase, "ldtr"},
      {VmcbField::kIdtrSelector, VmcbField::kIdtrAttrib, VmcbField::kIdtrLimit, VmcbField::kIdtrBase, "idtr"},
      {VmcbField::kTrSelector, VmcbField::kTrAttrib, VmcbField::kTrLimit, VmcbField::kTrBase, "tr"},
  };
  // Static names: table entries need stable string_views, so spell them out.
  constexpr std::string_view sel_names[] = {
      "es_selector", "cs_selector", "ss_selector", "ds_selector",
      "fs_selector", "gs_selector", "gdtr_selector", "ldtr_selector",
      "idtr_selector", "tr_selector"};
  constexpr std::string_view attrib_names[] = {
      "es_attrib", "cs_attrib", "ss_attrib", "ds_attrib", "fs_attrib",
      "gs_attrib", "gdtr_attrib", "ldtr_attrib", "idtr_attrib", "tr_attrib"};
  constexpr std::string_view limit_names[] = {
      "es_limit", "cs_limit", "ss_limit", "ds_limit", "fs_limit",
      "gs_limit", "gdtr_limit", "ldtr_limit", "idtr_limit", "tr_limit"};
  constexpr std::string_view base_names[] = {
      "es_base", "cs_base", "ss_base", "ds_base", "fs_base",
      "gs_base", "gdtr_base", "ldtr_base", "idtr_base", "tr_base"};
  for (size_t i = 0; i < 10; ++i) {
    set(segs[i].sel, sel_names[i], kSave, 16);
    set(segs[i].attrib, attrib_names[i], kSave, 16);
    set(segs[i].limit, limit_names[i], kSave, 32);
    set(segs[i].base, base_names[i], kSave, 64);
  }

  set(VmcbField::kCpl, "cpl", kSave, 8);
  set(VmcbField::kEfer, "efer", kSave, 64);
  set(VmcbField::kCr4, "cr4", kSave, 64);
  set(VmcbField::kCr3, "cr3", kSave, 64);
  set(VmcbField::kCr0, "cr0", kSave, 64);
  set(VmcbField::kDr7, "dr7", kSave, 64);
  set(VmcbField::kDr6, "dr6", kSave, 64);
  set(VmcbField::kRflags, "rflags", kSave, 64);
  set(VmcbField::kRip, "rip", kSave, 64);
  set(VmcbField::kRsp, "rsp", kSave, 64);
  set(VmcbField::kRax, "rax", kSave, 64);
  set(VmcbField::kStar, "star", kSave, 64);
  set(VmcbField::kLstar, "lstar", kSave, 64);
  set(VmcbField::kCstar, "cstar", kSave, 64);
  set(VmcbField::kSfmask, "sfmask", kSave, 64);
  set(VmcbField::kKernelGsBase, "kernel_gs_base", kSave, 64);
  set(VmcbField::kSysenterCs, "sysenter_cs", kSave, 64);
  set(VmcbField::kSysenterEsp, "sysenter_esp", kSave, 64);
  set(VmcbField::kSysenterEip, "sysenter_eip", kSave, 64);
  set(VmcbField::kCr2, "cr2", kSave, 64);
  set(VmcbField::kGPat, "g_pat", kSave, 64);
  set(VmcbField::kDbgCtl, "dbgctl", kSave, 64);
  set(VmcbField::kBrFrom, "br_from", kSave, 64);
  set(VmcbField::kBrTo, "br_to", kSave, 64);
  set(VmcbField::kLastExcpFrom, "last_excp_from", kSave, 64);
  set(VmcbField::kLastExcpTo, "last_excp_to", kSave, 64);
  return t;
}

constexpr std::array<VmcbFieldInfo, kNumVmcbFields> kTable = BuildTable();

}  // namespace

std::span<const VmcbFieldInfo> VmcbFieldTable() { return kTable; }

size_t VmcbTotalBits() {
  size_t total = 0;
  for (const auto& info : kTable) {
    total += info.bits;
  }
  return total;
}

const VmcbFieldInfo* FindVmcbField(VmcbField field) {
  if (static_cast<size_t>(field) >= kNumVmcbFields) {
    return nullptr;
  }
  return &kTable[static_cast<size_t>(field)];
}

std::string_view VmcbFieldName(VmcbField field) {
  const VmcbFieldInfo* info = FindVmcbField(field);
  return info != nullptr ? info->name : std::string_view("<unknown>");
}

Vmcb::Vmcb() : values_(kNumVmcbFields, 0) {}

uint64_t Vmcb::Read(VmcbField field) const {
  if (static_cast<size_t>(field) >= kNumVmcbFields) {
    return 0;
  }
  return values_[static_cast<size_t>(field)];
}

bool Vmcb::Write(VmcbField field, uint64_t value) {
  if (static_cast<size_t>(field) >= kNumVmcbFields) {
    return false;
  }
  const auto& info = kTable[static_cast<size_t>(field)];
  values_[static_cast<size_t>(field)] = value & MaskLow(info.bits);
  return true;
}

std::vector<uint8_t> Vmcb::ToBitImage() const {
  std::vector<uint8_t> image(BitImageSize(), 0);
  size_t bitpos = 0;
  for (size_t i = 0; i < kNumVmcbFields; ++i) {
    const uint64_t v = values_[i];
    for (unsigned b = 0; b < kTable[i].bits; ++b, ++bitpos) {
      if (TestBit(v, b)) {
        image[bitpos / 8] |= static_cast<uint8_t>(1u << (bitpos % 8));
      }
    }
  }
  return image;
}

void Vmcb::FromBitImage(std::span<const uint8_t> image) {
  size_t bitpos = 0;
  const size_t total_bits = image.size() * 8;
  for (size_t i = 0; i < kNumVmcbFields; ++i) {
    uint64_t v = 0;
    for (unsigned b = 0; b < kTable[i].bits; ++b, ++bitpos) {
      if (bitpos < total_bits &&
          (image[bitpos / 8] & (1u << (bitpos % 8))) != 0) {
        v = SetBit(v, b);
      }
    }
    values_[i] = v;
  }
}

Vmcb MakeDefaultVmcb() {
  Vmcb v;
  // Control: intercept VMRUN (architecturally required) plus the standard
  // KVM-style intercept set; nested paging on; ASID 1.
  v.Write(VmcbField::kInterceptVec3,
          SvmIntercept3::kIntr | SvmIntercept3::kNmi | SvmIntercept3::kCpuid |
              SvmIntercept3::kHlt | SvmIntercept3::kIoioProt |
              SvmIntercept3::kMsrProt | SvmIntercept3::kShutdown);
  v.Write(VmcbField::kInterceptVec4,
          SvmIntercept4::kVmrun | SvmIntercept4::kVmmcall |
              SvmIntercept4::kVmload | SvmIntercept4::kVmsave |
              SvmIntercept4::kStgi | SvmIntercept4::kClgi |
              SvmIntercept4::kSkinit);
  v.Write(VmcbField::kGuestAsid, 1);
  v.Write(VmcbField::kNestedCtl, 1);  // NP_ENABLE.
  v.Write(VmcbField::kNestedCr3, 0x9000);
  v.Write(VmcbField::kIopmBasePa, 0xa000);
  v.Write(VmcbField::kMsrpmBasePa, 0xc000);

  // Save area: 64-bit long-mode guest.
  v.Write(VmcbField::kEfer, Efer::kSvme | Efer::kLme | Efer::kLma);
  v.Write(VmcbField::kCr0, Cr0::kPe | Cr0::kPg | Cr0::kNe | Cr0::kEt);
  v.Write(VmcbField::kCr3, 0x2000);
  v.Write(VmcbField::kCr4, Cr4::kPae);
  v.Write(VmcbField::kRflags, Rflags::kFixed1);
  v.Write(VmcbField::kRip, 0x100000);
  v.Write(VmcbField::kRsp, 0x8000);
  v.Write(VmcbField::kDr6, 0xffff0ff0);
  v.Write(VmcbField::kDr7, 0x400);
  v.Write(VmcbField::kGPat, 0x0007040600070406ULL);

  v.Write(VmcbField::kCsSelector, 0x08);
  v.Write(VmcbField::kCsAttrib, 0x029b);  // Long-mode code, present.
  v.Write(VmcbField::kCsLimit, 0xffffffff);
  v.Write(VmcbField::kEsSelector, 0x10);
  v.Write(VmcbField::kEsAttrib, 0x0093);
  v.Write(VmcbField::kEsLimit, 0xffffffff);
  v.Write(VmcbField::kSsSelector, 0x10);
  v.Write(VmcbField::kSsAttrib, 0x0093);
  v.Write(VmcbField::kSsLimit, 0xffffffff);
  v.Write(VmcbField::kDsSelector, 0x10);
  v.Write(VmcbField::kDsAttrib, 0x0093);
  v.Write(VmcbField::kDsLimit, 0xffffffff);
  v.Write(VmcbField::kTrSelector, 0x18);
  v.Write(VmcbField::kTrAttrib, 0x008b);
  v.Write(VmcbField::kTrLimit, 0x67);
  v.Write(VmcbField::kTrBase, 0x3000);
  v.Write(VmcbField::kGdtrLimit, 0x7f);
  v.Write(VmcbField::kGdtrBase, 0x5000);
  v.Write(VmcbField::kIdtrLimit, 0xfff);
  v.Write(VmcbField::kIdtrBase, 0x5800);
  return v;
}

}  // namespace neco
